The socket daemon end to end: tre_serverd broadcasts a bounded number of
epochs over a Unix socket and exits cleanly — under both poller
backends — and the E13 load harness drives a 1000-client (8 real
connections) run through subscribe -> broadcast -> slow-reader
eviction -> archive recovery -> verify -> decrypt. Timing lines are
suppressed with --quiet; every line below is deterministic, and "clean
shutdown" is the assertion the CI smoke job greps for.

  $ ../bin/tre_serverd.exe --unix ./serverd.sock --ticks 2 --period 0 \
  >   --seed smoke --params toy64 --quiet --backend select
  clean shutdown

epoll is Linux-only; elsewhere fall back to the same select run so the
output stays identical.

  $ if ../bin/tre_serverd.exe --backend epoll --unix ./x.sock --ticks 1 \
  >      --period 0 --quiet 2>&1 | grep -q unavailable; then \
  >   backend=select; else backend=epoll; fi
  $ ../bin/tre_serverd.exe --unix ./serverd.sock --ticks 2 --period 0 \
  >   --seed smoke --params toy64 --quiet --backend $backend
  clean shutdown

  $ ../bench/loadgen.exe --quiet --params toy64 --clients 1000 --conns 8 \
  >   --slow-readers 2 --archive-conns 2 --archive-lookups 30 --ticks 5 \
  >   --verify-sample 4 --decrypt-sample 3 --seed smoke --json ""
  loadgen: 1000 simulated clients over 8 connections (+2 slow, 2 archive)
  subscribed 8 connections
  broadcast 5 epochs to all connections
  slow readers evicted 2/2 under bounded queues
  archive served 30 lookups (30 hits), refused future + foreign labels
  verified every distinct update (one BGR batch + 4 singles)
  decrypted 3 ciphertexts end-to-end
  encode-once: one frame per epoch, byte-identical across 10 subscribers
  clean shutdown

The thin-client tier: the sampled single verifies are outsourced to two
delegation helper daemons over their own Unix sockets, under the
hardened (Liu-Cao-resistant) check — same verdicts, no Miller loops on
the client:

  $ ../bench/loadgen.exe --quiet --params toy64 --clients 1000 --conns 8 \
  >   --slow-readers 2 --archive-conns 2 --archive-lookups 30 --ticks 5 \
  >   --verify-sample 4 --decrypt-sample 3 --seed smoke --json "" \
  >   --client-tier thin
  loadgen: 1000 simulated clients over 8 connections (+2 slow, 2 archive)
  subscribed 8 connections
  broadcast 5 epochs to all connections
  slow readers evicted 2/2 under bounded queues
  archive served 30 lookups (30 hits), refused future + foreign labels
  thin tier: 2 delegation helpers up, hardened check active
  verified every distinct update (one BGR batch + 4 delegated singles)
  decrypted 3 ciphertexts end-to-end
  encode-once: one frame per epoch, byte-identical across 10 subscribers
  clean shutdown

The harness itself under an explicit backend and the one-write-per-frame
fallback path (the deterministic lines are unchanged; only the measured
syscall counts differ, and those are timing lines):

  $ ../bench/loadgen.exe --quiet --params toy64 --clients 100 --conns 4 \
  >   --slow-readers 1 --archive-conns 1 --archive-lookups 5 --ticks 3 \
  >   --verify-sample 2 --decrypt-sample 1 --seed smoke --json "" \
  >   --backend $backend --no-writev
  loadgen: 100 simulated clients over 4 connections (+1 slow, 1 archive)
  subscribed 4 connections
  broadcast 3 epochs to all connections
  slow readers evicted 1/1 under bounded queues
  archive served 5 lookups (5 hits), refused future + foreign labels
  verified every distinct update (one BGR batch + 2 singles)
  decrypted 1 ciphertexts end-to-end
  encode-once: one frame per epoch, byte-identical across 5 subscribers
  clean shutdown
