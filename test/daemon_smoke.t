The socket daemon end to end: tre_serverd broadcasts a bounded number of
epochs over a Unix socket and exits cleanly, and the E13 load harness
drives a 1000-client (8 real connections) run through subscribe ->
broadcast -> slow-reader eviction -> archive recovery -> verify ->
decrypt. Timing lines are suppressed with --quiet; every line below is
deterministic, and "clean shutdown" is the assertion the CI smoke job
greps for.

  $ ../bin/tre_serverd.exe --unix ./serverd.sock --ticks 2 --period 0 \
  >   --seed smoke --params toy64 --quiet
  clean shutdown

  $ ../bench/loadgen.exe --quiet --params toy64 --clients 1000 --conns 8 \
  >   --slow-readers 2 --archive-conns 2 --archive-lookups 30 --ticks 5 \
  >   --verify-sample 4 --decrypt-sample 3 --seed smoke --json ""
  loadgen: 1000 simulated clients over 8 connections (+2 slow, 2 archive)
  subscribed 8 connections
  broadcast 5 epochs to all connections
  slow readers evicted 2/2 under bounded queues
  archive served 30 lookups (30 hits), refused future + foreign labels
  verified every distinct update (one BGR batch + 4 singles)
  decrypted 3 ciphertexts end-to-end
  encode-once: one frame per epoch, byte-identical across 10 subscribers
  clean shutdown
