(* Robustness fuzzing of the wire formats: corrupted or truncated inputs
   must be rejected or produce garbage — never crash with an unexpected
   exception, and never (for the CCA scheme) silently yield a wrong
   plaintext. Also cross-parameter-set confusion. *)

let prms = Pairing.toy64 ()
let mid = Pairing.mid128 ()
let rng = Hashing.Drbg.create ~seed:"fuzz-tests" ()
let srv_sec, srv_pub = Tre.Server.keygen prms rng
let alice_sec, alice_pub = Tre.User.keygen prms srv_pub rng
let t_release = "fuzz-epoch"
let upd = Tre.issue_update prms srv_sec t_release

let flip_byte s pos bit =
  String.mapi
    (fun i c -> if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
    s

let test_ciphertext_corruption () =
  let msg = "fuzzable plaintext content" in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  let wire = Tre.ciphertext_to_bytes prms ct in
  for pos = 0 to String.length wire - 1 do
    let corrupted = flip_byte wire pos (pos mod 8) in
    match Tre.ciphertext_of_bytes prms corrupted with
    | Error _ -> () (* rejected: fine *)
    | Ok ct' -> (
        (* decodes: decryption must not produce the original message
           unless the flip only touched V in a position past... actually
           any accepted single-bit change must change the plaintext. *)
        match Tre.decrypt prms alice_sec upd ct' with
        | out -> if out = msg then Alcotest.fail (Printf.sprintf "undetected flip at %d" pos)
        | exception Tre.Update_mismatch -> ())
  done

let test_fo_corruption_never_silently_wrong () =
  let msg = "cca fuzz" in
  let ct = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  let wire = Tre_fo.ciphertext_to_bytes prms ct in
  for pos = 0 to String.length wire - 1 do
    let corrupted = flip_byte wire pos (pos mod 8) in
    match Tre_fo.ciphertext_of_bytes prms corrupted with
    | Error _ -> ()
    | Ok ct' -> (
        match Tre_fo.decrypt prms srv_pub alice_pub alice_sec upd ct' with
        | _ -> Alcotest.fail (Printf.sprintf "CCA accepted a flip at %d" pos)
        | exception (Tre_fo.Decryption_failed | Tre.Update_mismatch) -> ())
  done

let test_update_corruption () =
  let wire = Tre.update_to_bytes prms upd in
  for pos = 0 to String.length wire - 1 do
    let corrupted = flip_byte wire pos (pos mod 8) in
    match Tre.update_of_bytes prms corrupted with
    | Error _ -> ()
    | Ok upd' ->
        if Tre.verify_update prms srv_pub upd' then
          Alcotest.fail (Printf.sprintf "corrupted update verified (flip at %d)" pos)
  done

let test_truncation_never_crashes () =
  let msg = "truncate me" in
  let ct_wire =
    Tre.ciphertext_to_bytes prms
      (Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg)
  in
  let upd_wire = Tre.update_to_bytes prms upd in
  let pk_wire = Tre.user_public_to_bytes prms alice_pub in
  List.iter
    (fun wire ->
      for len = 0 to String.length wire - 1 do
        let prefix = String.sub wire 0 len in
        ignore (Tre.ciphertext_of_bytes prms prefix);
        ignore (Tre.update_of_bytes prms prefix);
        ignore (Tre.user_public_of_bytes prms prefix);
        ignore (Tre.server_public_of_bytes prms prefix)
      done)
    [ ct_wire; upd_wire; pk_wire ]

let test_cross_parameter_rejection () =
  (* toy64 material must not parse as mid128 material and vice versa
     (different point widths make framing fail or points invalid). *)
  let ct_wire =
    Tre.ciphertext_to_bytes prms
      (Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng "cross")
  in
  Alcotest.(check bool) "toy64 ct under mid128" true
    (Result.is_error (Tre.ciphertext_of_bytes mid ct_wire));
  Alcotest.(check bool) "toy64 update under mid128" true
    (Result.is_error (Tre.update_of_bytes mid (Tre.update_to_bytes prms upd)));
  Alcotest.(check bool) "toy64 user key under mid128" true
    (Result.is_error (Tre.user_public_of_bytes mid (Tre.user_public_to_bytes prms alice_pub)))

let test_random_garbage_decoding () =
  let grng = Hashing.Drbg.create ~seed:"garbage" () in
  for _ = 1 to 500 do
    let len = 1 + Char.code (Hashing.Drbg.generate grng 1).[0] in
    let junk = Hashing.Drbg.generate grng len in
    (* None of these may raise. *)
    ignore (Tre.ciphertext_of_bytes prms junk);
    ignore (Tre.update_of_bytes prms junk);
    ignore (Tre.user_public_of_bytes prms junk);
    ignore (Tre_fo.ciphertext_of_bytes prms junk);
    ignore (Tre_react.ciphertext_of_bytes prms junk);
    ignore (Bls.signature_of_bytes prms junk);
    ignore (Bls.public_of_bytes prms junk);
    ignore (Key_insulation.of_bytes prms junk);
    ignore (Armor.unwrap junk)
  done

let test_out_of_subgroup_points_rejected () =
  (* A curve point OUTSIDE the order-q subgroup must be rejected by every
     decoder (small-subgroup attacks). Build one: a random point times q
     is infinity iff it started in the subgroup; h*point is in-subgroup,
     so take a point with full order p+1 component. *)
  let fp = prms.Pairing.fp in
  let curve = prms.Pairing.curve in
  let rec find_outside x =
    let xf = Fp.of_int fp x in
    match Curve.lift_x curve xf with
    | Some (p, _) when not (Pairing.in_g1 prms p) -> p
    | _ -> find_outside (x + 1)
  in
  let outside = find_outside 2 in
  let sig_framed =
    Codec.encode prms Codec.Bls_signature (fun buf -> Codec.add_point prms buf outside)
  in
  Alcotest.(check bool) "bls signature decoder" true
    (Result.is_error (Bls.signature_of_bytes prms sig_framed));
  (* Update decoder: embed in the update framing. *)
  let framed =
    Codec.encode prms Codec.Key_update (fun buf ->
        Codec.add_label buf "x";
        Codec.add_point prms buf outside)
  in
  Alcotest.(check bool) "update decoder" true
    (Result.is_error (Tre.update_of_bytes prms framed))

let () =
  Alcotest.run "fuzz"
    [
      ( "corruption",
        [
          Alcotest.test_case "ciphertext bit flips" `Slow test_ciphertext_corruption;
          Alcotest.test_case "FO never silently wrong" `Slow test_fo_corruption_never_silently_wrong;
          Alcotest.test_case "update bit flips" `Slow test_update_corruption;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "truncation" `Quick test_truncation_never_crashes;
          Alcotest.test_case "cross-parameter" `Quick test_cross_parameter_rejection;
          Alcotest.test_case "random garbage" `Quick test_random_garbage_decoding;
          Alcotest.test_case "out-of-subgroup points" `Quick test_out_of_subgroup_points_rejected;
        ] );
    ]
