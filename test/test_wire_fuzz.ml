(* Deterministic decode-fuzzing harness for the strict wire codec.

   For every parameter set and every wire kind it builds one valid sample
   object and then, from a seeded HMAC-DRBG, derives thousands of mutated
   inputs (bit flips, truncations, extensions, random splices, pure
   garbage). The invariants:

   - decoders NEVER raise, on any input;
   - canonicality: any input a decoder accepts re-encodes bit-identically
     (so there is exactly one wire form per value — no mutation can
     produce a second accepted encoding of the same object, and no
     accepted encoding contains ignored bytes);
   - cross-kind confusion: a valid object of kind A is rejected by every
     kind-B decoder;
   - cross-params confusion: a valid object under parameter set P is
     rejected by every decoder running under parameter set P'.

   Iteration counts are bounded so `dune runtest` stays quick; set
   TRE_WIRE_FUZZ_ITERS (e.g. 10000) for the deeper CI pass. *)

let iters_per_kind =
  match Sys.getenv_opt "TRE_WIRE_FUZZ_ITERS" with
  | Some s -> (try max 100 (int_of_string s) with Failure _ -> 600)
  | None -> 600

(* One fuzz target: a named decoder that, on success, re-encodes the
   decoded value so the harness can check canonicality without knowing
   the value's type. *)
type target = {
  kind : Codec.kind;
  sample : string; (* a valid encoding under [prms] *)
  decode_reencode : Pairing.params -> string -> (string, string) result;
}

let targets prms =
  let rng = Hashing.Drbg.create ~seed:("wire-fuzz|" ^ prms.Pairing.name) () in
  let srv_sec, srv_pub = Tre.Server.keygen prms rng in
  let alice_sec, alice_pub = Tre.User.keygen prms srv_pub rng in
  let t = "fuzz-epoch" in
  let upd = Tre.issue_update prms srv_sec t in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t rng "wire fuzz payload" in
  let ct_fo = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:t rng "fo payload" in
  let ct_react =
    Tre_react.encrypt prms srv_pub alice_pub ~release_time:t rng "react payload"
  in
  let id_sec, id_pub = Id_tre.Server.keygen prms rng in
  let ct_id = Id_tre.encrypt prms id_pub "bob@fuzz" ~release_time:t rng "id payload" in
  ignore id_sec;
  let multi_pubs = [ srv_pub; snd (Tre.Server.keygen prms rng) ] in
  let _, multi_pk = Multi_server.receiver_keygen prms multi_pubs rng in
  let ct_multi =
    Multi_server.encrypt prms multi_pubs multi_pk ~release_time:t rng "multi payload"
  in
  let ek = Key_insulation.derive prms alice_sec upd in
  let bls_sec, bls_pub = Bls.keygen prms rng in
  let bls_sig = Bls.sign prms bls_sec "fuzz message" in
  let tsys, tservers = Threshold_server.setup prms rng ~k:2 ~n:3 in
  ignore tsys;
  let partial = Threshold_server.issue_partial prms (List.hd tservers) t in
  let re decode encode p s = Result.map (encode p) (decode p s) in
  [
    {
      kind = Codec.Ciphertext;
      sample = Tre.ciphertext_to_bytes prms ct;
      decode_reencode = re Tre.ciphertext_of_bytes Tre.ciphertext_to_bytes;
    };
    {
      kind = Codec.Ciphertext_fo;
      sample = Tre_fo.ciphertext_to_bytes prms ct_fo;
      decode_reencode = re Tre_fo.ciphertext_of_bytes Tre_fo.ciphertext_to_bytes;
    };
    {
      kind = Codec.Ciphertext_react;
      sample = Tre_react.ciphertext_to_bytes prms ct_react;
      decode_reencode = re Tre_react.ciphertext_of_bytes Tre_react.ciphertext_to_bytes;
    };
    {
      kind = Codec.Ciphertext_id;
      sample = Id_tre.ciphertext_to_bytes prms ct_id;
      decode_reencode = re Id_tre.ciphertext_of_bytes Id_tre.ciphertext_to_bytes;
    };
    {
      kind = Codec.Ciphertext_multi;
      sample = Multi_server.ciphertext_to_bytes prms ct_multi;
      decode_reencode =
        re Multi_server.ciphertext_of_bytes Multi_server.ciphertext_to_bytes;
    };
    {
      kind = Codec.Key_update;
      sample = Tre.update_to_bytes prms upd;
      decode_reencode = re Tre.update_of_bytes Tre.update_to_bytes;
    };
    {
      kind = Codec.User_public;
      sample = Tre.user_public_to_bytes prms alice_pub;
      decode_reencode = re Tre.user_public_of_bytes Tre.user_public_to_bytes;
    };
    {
      kind = Codec.Server_public;
      sample = Tre.server_public_to_bytes prms srv_pub;
      decode_reencode = re Tre.server_public_of_bytes Tre.server_public_to_bytes;
    };
    {
      kind = Codec.Bls_public;
      sample = Bls.public_to_bytes prms bls_pub;
      decode_reencode = re Bls.public_of_bytes Bls.public_to_bytes;
    };
    {
      kind = Codec.Bls_signature;
      sample = Bls.signature_to_bytes prms bls_sig;
      decode_reencode = re Bls.signature_of_bytes Bls.signature_to_bytes;
    };
    {
      kind = Codec.Epoch_key;
      sample = Key_insulation.to_bytes prms ek;
      decode_reencode = re Key_insulation.of_bytes Key_insulation.to_bytes;
    };
    {
      kind = Codec.Threshold_partial;
      sample = Threshold_server.partial_to_bytes prms partial;
      decode_reencode =
        re Threshold_server.partial_of_bytes Threshold_server.partial_to_bytes;
    };
    {
      kind = Codec.Multi_receiver;
      sample = Multi_server.receiver_public_to_bytes prms multi_pk;
      decode_reencode =
        re Multi_server.receiver_public_of_bytes Multi_server.receiver_public_to_bytes;
    };
    (* Daemon protocol messages: adversary-facing by definition (they
       arrive over a listening socket), so they get the same treatment
       as the cryptographic objects. *)
    {
      kind = Codec.Net_hello;
      sample =
        Netmsg.hello_to_bytes prms
          {
            Netmsg.origin = "utc";
            granularity_us = 1_000_000;
            current_epoch = 42;
            server_g = srv_pub.Tre.Server.g;
            server_sg = srv_pub.Tre.Server.sg;
          };
      decode_reencode = re Netmsg.hello_of_bytes Netmsg.hello_to_bytes;
    };
    {
      kind = Codec.Net_subscribe;
      sample = Netmsg.subscribe_to_bytes prms;
      decode_reencode =
        re Netmsg.subscribe_of_bytes (fun p () -> Netmsg.subscribe_to_bytes p);
    };
    {
      kind = Codec.Net_archive_query;
      sample = Netmsg.archive_query_to_bytes prms "utc#17";
      decode_reencode =
        re Netmsg.archive_query_of_bytes (fun p lbl ->
            Netmsg.archive_query_to_bytes p lbl);
    };
    {
      kind = Codec.Net_archive_miss;
      sample = Netmsg.archive_miss_to_bytes prms "utc#99" Netmsg.Future_refused;
      decode_reencode =
        re Netmsg.archive_miss_of_bytes (fun p (lbl, r) ->
            Netmsg.archive_miss_to_bytes p lbl r);
    };
    {
      kind = Codec.Net_tick;
      sample =
        Netmsg.tick_to_bytes prms
          { Netmsg.tick_label = "utc#17"; sent_at_us = 1_700_000_000_000_000 };
      decode_reencode = re Netmsg.tick_of_bytes Netmsg.tick_to_bytes;
    };
    {
      kind = Codec.Net_stats_query;
      sample = Netmsg.stats_query_to_bytes prms;
      decode_reencode =
        re Netmsg.stats_query_of_bytes (fun p () -> Netmsg.stats_query_to_bytes p);
    };
    {
      kind = Codec.Net_stats;
      sample =
        Netmsg.stats_to_bytes prms
          {
            Netmsg.conns_accepted = 9;
            conns_open = 5;
            subscribers = 4;
            updates_encoded = 17;
            frames_sent = 170;
            bytes_sent = 12_345;
            archive_hits = 3;
            archive_misses = 1;
            protocol_errors = 2;
            slow_disconnects = 1;
            queue_bytes = 0;
            queue_bytes_peak = 4_096;
            send_syscalls = 321;
            poll_wakeups = 55;
            shard_conns = [ 3; 2; 0 ];
          };
      decode_reencode = re Netmsg.stats_of_bytes Netmsg.stats_to_bytes;
    };
    (* Pairing-delegation traffic: blinded queries and the untrusted
       helpers' replies. The response decoder accepts any canonical
       nonzero GF(p^2) value (no subgroup filter — the hardened check
       upstairs needs the raw value), so its sample uses an honest
       serve over a real wrap. *)
    {
      kind = Codec.Delegate_query;
      sample =
        (let dctx = Delegate.make prms in
         let bl = Delegate.blind dctx rng in
         let w =
           Delegate.wrap dctx bl ~a:srv_pub.Tre.Server.sg ~b:alice_pub.Tre.User.ag
         in
         Netmsg.delegate_query_to_bytes prms
           { Netmsg.query_id = 7; pairs = Delegate.queries2 w });
      decode_reencode = re Netmsg.delegate_query_of_bytes Netmsg.delegate_query_to_bytes;
    };
    {
      kind = Codec.Delegate_response;
      sample =
        (let dctx = Delegate.make prms in
         let bl = Delegate.blind dctx rng in
         let w =
           Delegate.wrap dctx bl ~a:srv_pub.Tre.Server.sg ~b:alice_pub.Tre.User.ag
         in
         Netmsg.delegate_response_to_bytes prms
           { Netmsg.response_id = 7; values = Delegate.serve prms (Delegate.queries1 w) });
      decode_reencode =
        re Netmsg.delegate_response_of_bytes Netmsg.delegate_response_to_bytes;
    };
  ]

let kind_name k = Codec.kind_label k

(* DRBG-driven helpers. *)
let byte rng = Char.code (Hashing.Drbg.generate rng 1).[0]
let u16 rng = (byte rng lsl 8) lor byte rng
let pick rng n = if n <= 0 then 0 else u16 rng mod n

let mutate rng s =
  let n = String.length s in
  match pick rng 6 with
  | 0 ->
      (* single bit flip *)
      if n = 0 then s
      else begin
        let pos = pick rng n and bit = pick rng 8 in
        String.mapi
          (fun i c -> if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
          s
      end
  | 1 ->
      (* truncation *)
      String.sub s 0 (pick rng (n + 1))
  | 2 ->
      (* extension with random bytes *)
      s ^ Hashing.Drbg.generate rng (1 + pick rng 16)
  | 3 ->
      (* random splice: overwrite a window *)
      if n = 0 then s
      else begin
        let pos = pick rng n in
        let len = min (n - pos) (1 + pick rng 8) in
        let repl = Hashing.Drbg.generate rng len in
        String.init n (fun i ->
            if i >= pos && i < pos + len then repl.[i - pos] else s.[i])
      end
  | 4 ->
      (* byte swap *)
      if n < 2 then s
      else begin
        let i = pick rng n and j = pick rng n in
        String.init n (fun k -> if k = i then s.[j] else if k = j then s.[i] else s.[k])
      end
  | _ ->
      (* pure garbage of similar length *)
      Hashing.Drbg.generate rng (max 1 (pick rng (n + 20)))

let check_decode ~ctx prms target input =
  match target.decode_reencode prms input with
  | Ok reenc ->
      if reenc <> input then
        Alcotest.fail
          (Printf.sprintf "%s %s: accepted a non-canonical encoding (len %d)" ctx
             (kind_name target.kind) (String.length input))
  | Error _ -> ()
  | exception e ->
      Alcotest.fail
        (Printf.sprintf "%s %s: decoder raised %s" ctx (kind_name target.kind)
           (Printexc.to_string e))

let fuzz_params prms () =
  let ts = targets prms in
  let rng = Hashing.Drbg.create ~seed:("mutations|" ^ prms.Pairing.name) () in
  List.iter
    (fun target ->
      (* The untouched sample must round-trip bit-identically. *)
      (match target.decode_reencode prms target.sample with
      | Ok reenc ->
          if reenc <> target.sample then
            Alcotest.fail (kind_name target.kind ^ ": sample does not re-encode")
      | Error e -> Alcotest.fail (kind_name target.kind ^ ": sample rejected: " ^ e)
      | exception e ->
          Alcotest.fail
            (kind_name target.kind ^ ": sample raised " ^ Printexc.to_string e));
      (* Exhaustive truncations: every proper prefix must be rejected. *)
      for len = 0 to String.length target.sample - 1 do
        let prefix = String.sub target.sample 0 len in
        match target.decode_reencode prms prefix with
        | Ok _ -> Alcotest.fail (kind_name target.kind ^ ": accepted a truncation")
        | Error _ -> ()
        | exception e ->
            Alcotest.fail
              (kind_name target.kind ^ ": truncation raised " ^ Printexc.to_string e)
      done;
      (* Extension by a single zero byte must be rejected (full-consumption). *)
      (match target.decode_reencode prms (target.sample ^ "\x00") with
      | Ok _ -> Alcotest.fail (kind_name target.kind ^ ": accepted trailing garbage")
      | Error _ -> ()
      | exception e ->
          Alcotest.fail
            (kind_name target.kind ^ ": extension raised " ^ Printexc.to_string e));
      (* Seeded mutations. *)
      for _ = 1 to iters_per_kind do
        check_decode ~ctx:"mutation" prms target (mutate rng target.sample)
      done)
    ts

let confusion_params prms () =
  let ts = targets prms in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a.kind <> b.kind then begin
            match b.decode_reencode prms a.sample with
            | Ok _ ->
                Alcotest.fail
                  (Printf.sprintf "%s accepted as %s" (kind_name a.kind)
                     (kind_name b.kind))
            | Error _ -> ()
            | exception e ->
                Alcotest.fail
                  (Printf.sprintf "%s -> %s raised %s" (kind_name a.kind)
                     (kind_name b.kind) (Printexc.to_string e))
          end)
        ts)
    ts

let cross_params_rejection () =
  (* Same kind, different parameter set: the fingerprint must reject even
     when point widths coincide (toy64 vs toy64b, mid128 vs mid128b). The
     small sets keep this all-pairs sweep fast. *)
  let sets = List.filter_map Pairing.by_name [ "toy64"; "toy64b"; "mid128"; "mid128b" ] in
  let with_targets = List.map (fun p -> (p, targets p)) sets in
  List.iter
    (fun (pa, tsa) ->
      List.iter
        (fun (pb, tsb) ->
          if pa.Pairing.name <> pb.Pairing.name then
            List.iter
              (fun ta ->
                let tb_same_kind = List.find (fun t -> t.kind = ta.kind) tsb in
                match tb_same_kind.decode_reencode pb ta.sample with
                | Ok _ ->
                    Alcotest.fail
                      (Printf.sprintf "%s of %s accepted under %s" (kind_name ta.kind)
                         pa.Pairing.name pb.Pairing.name)
                | Error _ -> ()
                | exception e ->
                    Alcotest.fail
                      (Printf.sprintf "%s cross-params raised %s" (kind_name ta.kind)
                         (Printexc.to_string e)))
              tsa)
        with_targets)
    with_targets

let garbage_never_crashes () =
  let prms = Pairing.toy64 () in
  let ts = targets prms in
  let rng = Hashing.Drbg.create ~seed:"pure-garbage" () in
  for _ = 1 to 400 do
    let junk = Hashing.Drbg.generate rng (1 + pick rng 200) in
    List.iter (fun t -> check_decode ~ctx:"garbage" prms t junk) ts;
    (* Garbage prefixed with a plausible envelope for each kind. *)
    List.iter
      (fun t ->
        let framed = String.sub t.sample 0 Codec.header_bytes ^ junk in
        check_decode ~ctx:"framed garbage" prms t framed)
      ts
  done

let () =
  let per_params name =
    match Pairing.by_name name with
    | None -> []
    | Some prms ->
        [
          Alcotest.test_case (name ^ " mutations") `Quick (fuzz_params prms);
          Alcotest.test_case (name ^ " kind confusion") `Quick (confusion_params prms);
        ]
  in
  Alcotest.run "wire-fuzz"
    [
      ("toy64", per_params "toy64");
      ("toy64b", per_params "toy64b");
      ("mid128", per_params "mid128");
      ( "cross",
        [
          Alcotest.test_case "params confusion" `Quick cross_params_rejection;
          Alcotest.test_case "garbage never crashes" `Quick garbage_never_crashes;
        ] );
    ]
