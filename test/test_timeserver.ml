(* The simulated distributed system: event queue determinism, network
   delivery/loss, timeline mapping, the passive server's no-early-release
   invariant, client update handling and missed-update recovery. *)

let prms = Pairing.toy64 ()

(* --- event queue --- *)

let test_event_queue_ordering () =
  let q = Event_queue.create () in
  let order = ref [] in
  List.iter
    (fun (at, tag) -> Event_queue.push q ~at tag)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (1.0, "a2"); (0.5, "z") ];
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, tag) ->
        order := tag :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted, stable ties" [ "z"; "a"; "a2"; "b"; "c" ]
    (List.rev !order)

let test_event_queue_interleaved () =
  let q = Event_queue.create () in
  for i = 99 downto 0 do
    Event_queue.push q ~at:(float_of_int (i mod 10)) i
  done;
  let last = ref neg_infinity and count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (at, _) ->
        if at < !last then Alcotest.fail "out of order";
        last := at;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all delivered" 100 !count;
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

(* Regression for a space leak: [pop] used to leave the vacated heap slot
   pointing at the last entry, so a drained queue kept every delivered
   payload reachable until the slot was overwritten. The fix blanks the
   slot; a weak pointer observes that the payload really becomes
   collectable. *)
let test_event_queue_drops_payload_refs () =
  let q = Event_queue.create () in
  let w = Weak.create 1 in
  (* Allocate the payload inside a function so no local keeps it alive. *)
  let push_one () =
    let payload = Bytes.make 64 'p' in
    Weak.set w 0 (Some payload);
    Event_queue.push q ~at:1.0 payload
  in
  push_one ();
  (match Event_queue.pop q with
  | Some (_, p) -> ignore (Sys.opaque_identity p)
  | None -> Alcotest.fail "queue should pop");
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q);
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "payload collected after drain" false (Weak.check w 0)

(* --- simnet --- *)

let test_simnet_delivery_and_clock () =
  let net = Simnet.create ~seed:"t1" ~latency:0.1 ~jitter:0.0 () in
  let got = ref [] in
  Simnet.send net ~src:"a" ~dst:"b" ~kind:"ping" ~bytes:3 (fun () ->
      got := ("ping", Simnet.now net) :: !got);
  Simnet.schedule net ~at:1.0 (fun () -> got := ("timer", Simnet.now net) :: !got);
  Simnet.run net;
  (match List.rev !got with
  | [ ("ping", at1); ("timer", at2) ] ->
      Alcotest.(check (float 1e-9)) "latency applied" 0.1 at1;
      Alcotest.(check (float 1e-9)) "timer at 1.0" 1.0 at2
  | _ -> Alcotest.fail "wrong delivery sequence");
  Alcotest.(check int) "trace has the send" 1 (List.length (Simnet.sent_by net "a"))

let test_simnet_determinism () =
  let run () =
    let net = Simnet.create ~seed:"same-seed" ~jitter:0.05 () in
    let stamps = ref [] in
    for i = 0 to 9 do
      Simnet.send net ~src:"s" ~dst:"d" ~kind:"m" ~bytes:i (fun () ->
          stamps := Simnet.now net :: !stamps)
    done;
    Simnet.run net;
    !stamps
  in
  Alcotest.(check bool) "reproducible" true (run () = run ())

let test_simnet_loss () =
  let net = Simnet.create ~seed:"lossy" ~loss:0.5 () in
  let delivered = ref 0 in
  for _ = 1 to 200 do
    Simnet.send net ~src:"s" ~dst:"d" ~kind:"m" ~bytes:1 (fun () -> incr delivered)
  done;
  Simnet.run net;
  Alcotest.(check bool) "some dropped" true (!delivered < 200);
  Alcotest.(check bool) "some delivered" true (!delivered > 0);
  let lost = List.length (Simnet.sent_to net "(lost)") in
  Alcotest.(check int) "trace accounts for all" 200 (lost + !delivered)

let test_simnet_run_until () =
  let net = Simnet.create ~seed:"ru" ~latency:0.0 ~jitter:0.0 () in
  let fired = ref [] in
  List.iter
    (fun at -> Simnet.schedule net ~at (fun () -> fired := at :: !fired))
    [ 1.0; 2.0; 3.0 ];
  Simnet.run_until net 2.0;
  Alcotest.(check (list (float 0.0))) "only <= 2.0" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock advanced" 2.0 (Simnet.now net);
  Simnet.run net;
  Alcotest.(check int) "rest runs later" 3 (List.length !fired)

let test_simnet_validation () =
  let net = Simnet.create () in
  Alcotest.check_raises "past" (Invalid_argument "Simnet.schedule: time in the past")
    (fun () -> Simnet.run_until net 5.0; Simnet.schedule net ~at:1.0 ignore);
  Alcotest.check_raises "bad loss" (Invalid_argument "Simnet.create: loss must be in [0,1)")
    (fun () -> ignore (Simnet.create ~loss:1.0 ()))

(* --- timeline --- *)

let test_timeline () =
  let tl = Timeline.create ~granularity:60.0 () in
  Alcotest.(check int) "epoch_at 0" 0 (Timeline.epoch_at tl 0.0);
  Alcotest.(check int) "epoch_at 59.9" 0 (Timeline.epoch_at tl 59.9);
  Alcotest.(check int) "epoch_at 60" 1 (Timeline.epoch_at tl 60.0);
  Alcotest.(check (float 0.0)) "start_of 2" 120.0 (Timeline.start_of tl 2);
  Alcotest.(check (option int)) "label roundtrip" (Some 42)
    (Timeline.epoch_of_label tl (Timeline.label tl 42));
  Alcotest.(check (option int)) "foreign label" None (Timeline.epoch_of_label tl "gps#3");
  Alcotest.check_raises "bad granularity"
    (Invalid_argument "Timeline.create: granularity <= 0") (fun () ->
      ignore (Timeline.create ~granularity:0.0 ()))

(* --- passive server + clients, end to end --- *)

let run_system ~n_clients ~epochs ~loss =
  let net = Simnet.create ~seed:"system" ~latency:0.01 ~jitter:0.005 ~loss () in
  let tl = Timeline.create ~granularity:10.0 () in
  let server = Passive_server.create prms ~net ~timeline:tl ~name:"time-server" in
  let clients =
    List.init n_clients (fun i ->
        Client.create prms ~net ~server:(Passive_server.public server)
          ~name:(Printf.sprintf "client-%d" i))
  in
  let recipients = List.map (fun c -> (Client.name c, Client.on_wire c)) clients in
  Passive_server.start server ~net ~first_epoch:1 ~epochs ~recipients;
  (net, tl, server, clients)

let test_end_to_end_release () =
  let net, tl, server, clients = run_system ~n_clients:3 ~epochs:4 ~loss:0.0 in
  let sender_rng = Hashing.Drbg.create ~seed:"sender" () in
  (* The sender encrypts at t=0 for epoch 3, to each client, with zero
     server interaction. *)
  List.iter
    (fun c ->
      let ct =
        Tre.encrypt prms (Passive_server.public server) (Client.public_key c)
          ~release_time:(Timeline.label tl 3) sender_rng
          ("for " ^ Client.name c)
      in
      Client.enqueue_ciphertext c ct)
    clients;
  (* Before epoch 3: nobody can read. *)
  Simnet.run_until net (Timeline.start_of tl 3 -. 0.5);
  List.iter
    (fun c ->
      Alcotest.(check int) "still locked" 0 (List.length (Client.deliveries c));
      Alcotest.(check int) "pending" 1 (Client.pending_count c))
    clients;
  (* After epoch 3's broadcast: everyone reads. *)
  Simnet.run net;
  List.iter
    (fun c ->
      match Client.deliveries c with
      | [ d ] ->
          Alcotest.(check string) "content" ("for " ^ Client.name c) d.Client.plaintext;
          Alcotest.(check bool) "not before release" true
            (d.Client.decrypted_at >= Timeline.start_of tl 3)
      | _ -> Alcotest.fail "expected exactly one delivery")
    clients

let test_single_update_serves_all () =
  (* Server-side cost must not grow with the number of clients. *)
  let _, _, server_small, _ = run_system ~n_clients:1 ~epochs:5 ~loss:0.0 in
  let _, _, server_large, _ = run_system ~n_clients:50 ~epochs:5 ~loss:0.0 in
  let net_small, _, srv_s, _ = run_system ~n_clients:1 ~epochs:5 ~loss:0.0 in
  let net_large, _, srv_l, _ = run_system ~n_clients:50 ~epochs:5 ~loss:0.0 in
  ignore server_small;
  ignore server_large;
  Simnet.run net_small;
  Simnet.run net_large;
  Alcotest.(check int) "same updates issued" (Passive_server.updates_issued srv_s)
    (Passive_server.updates_issued srv_l);
  Alcotest.(check int) "same bytes broadcast" (Passive_server.bytes_broadcast srv_s)
    (Passive_server.bytes_broadcast srv_l)

let test_no_early_release () =
  let net, tl, server, _ = run_system ~n_clients:1 ~epochs:3 ~loss:0.0 in
  Simnet.run_until net 15.0 (* inside epoch 1 *);
  (* Archive gives epoch 1 (started) but refuses epoch 2 (future). *)
  (match Passive_server.archive_lookup server net (Timeline.label tl 1) with
  | Some upd ->
      Alcotest.(check bool) "past update valid" true
        (Tre.verify_update prms (Passive_server.public server) upd)
  | None -> Alcotest.fail "archive must serve past epochs");
  Alcotest.check_raises "future refused" Passive_server.Future_update_refused
    (fun () ->
      ignore (Passive_server.archive_lookup server net (Timeline.label tl 2)));
  Alcotest.(check bool) "foreign label" true
    (Passive_server.archive_lookup server net "mars#1" = None)

let test_missed_update_recovery () =
  (* With a very lossy broadcast channel some client misses an update; it
     recovers via the public archive and still decrypts. *)
  let net, tl, server, clients = run_system ~n_clients:1 ~epochs:2 ~loss:0.5 in
  let client = List.hd clients in
  let sender_rng = Hashing.Drbg.create ~seed:"sender2" () in
  let ct =
    Tre.encrypt prms (Passive_server.public server) (Client.public_key client)
      ~release_time:(Timeline.label tl 2) sender_rng "recovered"
  in
  Client.enqueue_ciphertext client ct;
  Simnet.run net;
  (* The archive pull also rides the lossy network; retry like any client
     fetching a webpage would. *)
  let attempts = ref 0 in
  while Client.deliveries client = [] && !attempts < 100 do
    incr attempts;
    Client.fetch_missing client net server (Timeline.label tl 2);
    Simnet.run net
  done;
  match Client.deliveries client with
  | [ d ] -> Alcotest.(check string) "recovered" "recovered" d.Client.plaintext
  | _ -> Alcotest.fail "recovery failed"

let test_recovery_out_of_order_and_duplicates () =
  (* A client that missed several epochs pulls them from the archive in
     the WRONG order, twice each — recovery must be insensitive to both
     (the update cache is keyed by label and idempotent). *)
  let net, tl, server, clients = run_system ~n_clients:1 ~epochs:4 ~loss:0.0 in
  let client = List.hd clients in
  let sender_rng = Hashing.Drbg.create ~seed:"sender3" () in
  let cts =
    List.map
      (fun e ->
        Tre.encrypt prms (Passive_server.public server)
          (Client.public_key client)
          ~release_time:(Timeline.label tl e) sender_rng
          (Printf.sprintf "msg-%d" e))
      [ 1; 2; 3 ]
  in
  List.iter (Client.enqueue_ciphertext client) cts;
  (* let all epochs pass WITHOUT delivering the broadcasts: pull-only *)
  Simnet.run net;
  let fresh = Client.create prms ~net ~server:(Passive_server.public server)
      ~name:"late-joiner" in
  List.iter (Client.enqueue_ciphertext fresh)
    (List.map
       (fun e ->
         Tre.encrypt prms (Passive_server.public server)
           (Client.public_key fresh)
           ~release_time:(Timeline.label tl e) sender_rng
           (Printf.sprintf "late-%d" e))
       [ 1; 2; 3 ]);
  (* out of order, and every label twice *)
  List.iter
    (fun e ->
      Client.fetch_missing fresh net server (Timeline.label tl e);
      Simnet.run net)
    [ 3; 1; 2; 2; 3; 1 ];
  Alcotest.(check int) "three distinct updates cached" 3
    (Client.updates_cached fresh);
  Alcotest.(check int) "no rejections from duplicates" 0
    (Client.rejected_updates fresh);
  let got = List.map (fun d -> d.Client.plaintext) (Client.deliveries fresh) in
  List.iter
    (fun e ->
      let want = Printf.sprintf "late-%d" e in
      Alcotest.(check bool) want true (List.mem want got))
    [ 1; 2; 3 ];
  (* duplicate delivery on the BROADCAST path is idempotent too: replay
     a wire frame the client already processed *)
  (match Passive_server.archive_lookup_bytes server net (Timeline.label tl 1) with
  | Some payload ->
      Client.on_wire fresh payload;
      Client.on_wire fresh payload;
      Alcotest.(check int) "cache unchanged by replay" 3
        (Client.updates_cached fresh)
  | None -> Alcotest.fail "archive bytes missing")

let test_broadcast_encode_once () =
  (* The per-epoch serialization count must not scale with the audience:
     1 client or 40, each epoch is encoded exactly once. *)
  let count_encodes n_clients =
    let net, _, server, _ = run_system ~n_clients ~epochs:5 ~loss:0.0 in
    Simnet.run net;
    ignore net;
    Passive_server.updates_encoded server
  in
  Alcotest.(check int) "1 client: 5 encodes" 5 (count_encodes 1);
  Alcotest.(check int) "40 clients: still 5 encodes" 5 (count_encodes 40)

let test_forged_broadcast_rejected () =
  let net, _, server, clients = run_system ~n_clients:1 ~epochs:1 ~loss:0.0 in
  let client = List.hd clients in
  ignore server;
  (* An attacker injects a bogus update into the broadcast channel. *)
  let fake = { Tre.update_time = "utc#1"; update_value = prms.Pairing.g } in
  Client.handler client fake;
  Simnet.run net;
  Alcotest.(check int) "rejected count" 1 (Client.rejected_updates client);
  (* The genuine broadcast still lands. *)
  Alcotest.(check int) "genuine cached" 1 (Client.updates_cached client)

let test_clock_skew_bounded_and_never_early () =
  (* Section 3 trust model: broadcasts drift late by at most max_skew and
     are never early. *)
  let net = Simnet.create ~seed:"skew" ~latency:0.0 ~jitter:0.0 () in
  let tl = Timeline.create ~granularity:10.0 () in
  let server = Passive_server.create ~max_skew:2.0 prms ~net ~timeline:tl ~name:"skewed" in
  Alcotest.(check (float 0.0)) "skew recorded" 2.0 (Passive_server.max_skew server);
  let stamps = ref [] in
  let handler _ = stamps := Simnet.now net :: !stamps in
  Passive_server.start server ~net ~first_epoch:1 ~epochs:5
    ~recipients:[ ("observer", handler) ];
  Simnet.run net;
  Alcotest.(check int) "all epochs heard" 5 (List.length !stamps);
  List.iteri
    (fun i at ->
      let epoch = 5 - i in
      let nominal = Timeline.start_of tl epoch in
      if at < nominal then Alcotest.fail "update released early";
      if at > nominal +. 2.0 +. 0.001 then Alcotest.fail "drift beyond bound")
    !stamps

let test_clock_monotone_updates () =
  (* Updates are issued in epoch order and never before their epoch. *)
  let net, tl, server, clients = run_system ~n_clients:2 ~epochs:6 ~loss:0.0 in
  ignore clients;
  Simnet.run net;
  Alcotest.(check int) "all issued" 6 (Passive_server.updates_issued server);
  List.iter
    (fun (m : Simnet.message) ->
      if m.Simnet.kind = "key-update" then begin
        (* broadcast trace timestamp is the issue instant *)
        let e = Timeline.epoch_at tl (m.Simnet.at +. 1e-9) in
        if Timeline.start_of tl e > m.Simnet.at +. 0.001 then
          Alcotest.fail "update broadcast before its epoch"
      end)
    (Simnet.sent_by net "time-server")

let () =
  Alcotest.run "timeserver"
    [
      ( "event-queue",
        [
          Alcotest.test_case "ordering" `Quick test_event_queue_ordering;
          Alcotest.test_case "interleaved" `Quick test_event_queue_interleaved;
          Alcotest.test_case "no payload retention" `Quick test_event_queue_drops_payload_refs;
        ] );
      ( "simnet",
        [
          Alcotest.test_case "delivery+clock" `Quick test_simnet_delivery_and_clock;
          Alcotest.test_case "determinism" `Quick test_simnet_determinism;
          Alcotest.test_case "loss" `Quick test_simnet_loss;
          Alcotest.test_case "run_until" `Quick test_simnet_run_until;
          Alcotest.test_case "validation" `Quick test_simnet_validation;
        ] );
      ("timeline", [ Alcotest.test_case "mapping" `Quick test_timeline ]);
      ( "system",
        [
          Alcotest.test_case "end-to-end release" `Quick test_end_to_end_release;
          Alcotest.test_case "single update serves all" `Quick test_single_update_serves_all;
          Alcotest.test_case "no early release" `Quick test_no_early_release;
          Alcotest.test_case "missed update recovery" `Quick test_missed_update_recovery;
          Alcotest.test_case "recovery out-of-order + duplicates" `Quick
            test_recovery_out_of_order_and_duplicates;
          Alcotest.test_case "broadcast encode-once" `Quick
            test_broadcast_encode_once;
          Alcotest.test_case "forged broadcast rejected" `Quick test_forged_broadcast_rejected;
          Alcotest.test_case "monotone updates" `Quick test_clock_monotone_updates;
          Alcotest.test_case "bounded clock skew" `Quick test_clock_skew_bounded_and_never_early;
        ] );
    ]
