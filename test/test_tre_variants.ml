(* The scheme variants: FO and REACT CCA wrappers, ID-TRE (with its escrow
   demonstrated), multi-server, policy lock, key insulation, and the hybrid
   footnote-3 baseline. *)

module B = Bigint

let prms = Pairing.toy64 ()
let rng = Hashing.Drbg.create ~seed:"tre-variant-tests" ()
let srv_sec, srv_pub = Tre.Server.keygen prms rng
let alice_sec, alice_pub = Tre.User.keygen prms srv_pub rng
let t_release = "2005-06-01T00:00:00Z"
let upd = Tre.issue_update prms srv_sec t_release

(* --- Fujisaki-Okamoto --- *)

let test_fo_roundtrip () =
  List.iter
    (fun msg ->
      let ct = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
      Alcotest.(check string) "roundtrip" msg
        (Tre_fo.decrypt prms srv_pub alice_pub alice_sec upd ct))
    [ ""; "short"; String.make 5000 'q' ]

let test_fo_tamper_rejected () =
  let ct = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:t_release rng "payload" in
  let flip s i =
    String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s
  in
  (* Tampering with any component must raise, not return garbage. *)
  Alcotest.check_raises "tampered W" Tre_fo.Decryption_failed (fun () ->
      ignore
        (Tre_fo.decrypt prms srv_pub alice_pub alice_sec upd
           { ct with Tre_fo.w = flip ct.Tre_fo.w 0 }));
  Alcotest.check_raises "tampered V" Tre_fo.Decryption_failed (fun () ->
      ignore
        (Tre_fo.decrypt prms srv_pub alice_pub alice_sec upd
           { ct with Tre_fo.v = flip ct.Tre_fo.v 3 }));
  Alcotest.check_raises "tampered U" Tre_fo.Decryption_failed (fun () ->
      ignore
        (Tre_fo.decrypt prms srv_pub alice_pub alice_sec upd
           { ct with Tre_fo.u = Curve.add prms.Pairing.curve ct.Tre_fo.u prms.Pairing.g }))

let test_fo_wrong_time_raises () =
  let ct = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:t_release rng "m" in
  let other = Tre.issue_update prms srv_sec "other" in
  Alcotest.check_raises "mismatch" Tre.Update_mismatch (fun () ->
      ignore (Tre_fo.decrypt prms srv_pub alice_pub alice_sec other ct))

let test_fo_codec () =
  let msg = "fo serialization" in
  let ct = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  match Tre_fo.ciphertext_of_bytes prms (Tre_fo.ciphertext_to_bytes prms ct) with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok ct' ->
      Alcotest.(check string) "decrypts" msg
        (Tre_fo.decrypt prms srv_pub alice_pub alice_sec upd ct')

let test_fo_h3_domain_separation () =
  (* Regression: H3 used to hash seed || T || M by bare concatenation, so
     (T="A", m="Bx") and (T="AB", m="x") derived the same scalar (and
     hence the same U) from the same seed. *)
  let seed = String.make 32 's' in
  let r1 = Tre_fo.h3 prms ~seed ~msg:"Bx" ~release_time:"A" in
  let r2 = Tre_fo.h3 prms ~seed ~msg:"x" ~release_time:"AB" in
  Alcotest.(check bool) "shifted boundary, distinct scalars" false (B.equal r1 r2);
  (* And through the full scheme: identical DRBG streams, colliding
     concatenations, distinct U points. *)
  let rng1 = Hashing.Drbg.create ~seed:"fo-collide" () in
  let rng2 = Hashing.Drbg.create ~seed:"fo-collide" () in
  let ct1 = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:"A" rng1 "Bx" in
  let ct2 = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:"AB" rng2 "x" in
  Alcotest.(check bool) "distinct U" false (Curve.equal ct1.Tre_fo.u ct2.Tre_fo.u)

(* --- REACT --- *)

let test_react_roundtrip () =
  List.iter
    (fun msg ->
      let ct = Tre_react.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
      Alcotest.(check string) "roundtrip" msg (Tre_react.decrypt prms alice_sec upd ct))
    [ ""; "short"; String.make 5000 'q' ]

let test_react_tamper_rejected () =
  let ct = Tre_react.encrypt prms srv_pub alice_pub ~release_time:t_release rng "payload" in
  let flip s i =
    String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s
  in
  Alcotest.check_raises "tampered C2" Tre_react.Decryption_failed (fun () ->
      ignore (Tre_react.decrypt prms alice_sec upd { ct with Tre_react.c2 = flip ct.Tre_react.c2 0 }));
  Alcotest.check_raises "tampered C1" Tre_react.Decryption_failed (fun () ->
      ignore (Tre_react.decrypt prms alice_sec upd { ct with Tre_react.c1 = flip ct.Tre_react.c1 0 }));
  Alcotest.check_raises "tampered tag" Tre_react.Decryption_failed (fun () ->
      ignore (Tre_react.decrypt prms alice_sec upd { ct with Tre_react.tag = flip ct.Tre_react.tag 0 }))

let test_react_codec () =
  let msg = "react serialization" in
  let ct = Tre_react.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  match Tre_react.ciphertext_of_bytes prms (Tre_react.ciphertext_to_bytes prms ct) with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok ct' ->
      Alcotest.(check string) "decrypts" msg (Tre_react.decrypt prms alice_sec upd ct')

let test_react_tag_domain_separation () =
  (* Regression: the tag used to hash r || msg || u_bytes || c1 || c2 by
     bare concatenation, so shifting bytes between msg and u_bytes kept
     the tag unchanged. *)
  let r = String.make 32 'r' and c1 = String.make 32 '1' and c2 = "cc" in
  let t1 = Tre_react.tag ~r ~msg:"AB" ~u_bytes:"cd" ~c1 ~c2 in
  let t2 = Tre_react.tag ~r ~msg:"A" ~u_bytes:"Bcd" ~c1 ~c2 in
  Alcotest.(check bool) "shifted boundary, distinct tags" false (t1 = t2)

let test_short_fixed_fields_rejected () =
  (* Fixed-width fields (FO's V, REACT's C1/tag) that are too short must be
     refused at encode time, and crafted wires carrying them must fail to
     decode rather than swallow neighbouring bytes. *)
  let fo = Tre_fo.encrypt prms srv_pub alice_pub ~release_time:t_release rng "m" in
  (match Tre_fo.ciphertext_to_bytes prms { fo with Tre_fo.v = "short" } with
  | _ -> Alcotest.fail "FO short V encoded"
  | exception Invalid_argument _ -> ());
  let rc = Tre_react.encrypt prms srv_pub alice_pub ~release_time:t_release rng "m" in
  (match Tre_react.ciphertext_to_bytes prms { rc with Tre_react.c1 = "short" } with
  | _ -> Alcotest.fail "REACT short C1 encoded"
  | exception Invalid_argument _ -> ());
  (match Tre_react.ciphertext_to_bytes prms { rc with Tre_react.tag = "short" } with
  | _ -> Alcotest.fail "REACT short tag encoded"
  | exception Invalid_argument _ -> ());
  (* Hand-built wire whose V field is 16 bytes instead of 32: the strict
     reader runs out of input and reports an error. *)
  let crafted =
    Codec.encode prms Codec.Ciphertext_fo (fun buf ->
        Codec.add_label buf t_release;
        Codec.add_point prms buf fo.Tre_fo.u;
        Codec.add_fixed buf (String.sub fo.Tre_fo.v 0 16))
  in
  Alcotest.(check bool) "crafted short V rejected" true
    (Result.is_error (Tre_fo.ciphertext_of_bytes prms crafted))

(* --- ID-TRE --- *)

let id_sec, id_pub = Id_tre.Server.keygen prms rng
let bob_id = "bob@example.org"
let bob_key = Id_tre.Server.extract prms id_sec bob_id

let test_id_tre_roundtrip () =
  let msg = "identity-based timed release" in
  let ct = Id_tre.encrypt prms id_pub bob_id ~release_time:t_release rng msg in
  let u = Id_tre.Server.issue_update prms id_sec t_release in
  Alcotest.(check string) "roundtrip" msg
    (Id_tre.decrypt prms ~private_key:bob_key u ct)

let test_id_tre_private_key_verifies () =
  Alcotest.(check bool) "genuine" true
    (Id_tre.verify_private_key prms id_pub bob_id bob_key);
  Alcotest.(check bool) "wrong id" false
    (Id_tre.verify_private_key prms id_pub "carol@example.org" bob_key)

let test_id_tre_wrong_identity_garbage () =
  let ct = Id_tre.encrypt prms id_pub bob_id ~release_time:t_release rng "for bob" in
  let u = Id_tre.Server.issue_update prms id_sec t_release in
  let carol_key = Id_tre.Server.extract prms id_sec "carol@example.org" in
  Alcotest.(check bool) "carol fails" false
    (Id_tre.decrypt prms ~private_key:carol_key u ct = "for bob")

let test_id_tre_escrow_is_real () =
  (* The key-escrow weakness the paper attributes to ID-based schemes: the
     server alone reads Bob's mail. TRE's analogue is test_server_cannot_decrypt. *)
  let msg = "the server reads this" in
  let ct = Id_tre.encrypt prms id_pub bob_id ~release_time:t_release rng msg in
  Alcotest.(check string) "escrow decrypts" msg (Id_tre.escrow_decrypt prms id_sec bob_id ct)

let test_id_tre_update_mismatch () =
  let ct = Id_tre.encrypt prms id_pub bob_id ~release_time:t_release rng "m" in
  let u = Id_tre.Server.issue_update prms id_sec "wrong" in
  Alcotest.check_raises "mismatch" Id_tre.Update_mismatch (fun () ->
      ignore (Id_tre.decrypt prms ~private_key:bob_key u ct))

(* --- Multi-server --- *)

let test_multi_server_roundtrip () =
  List.iter
    (fun n ->
      let servers = List.init n (fun i ->
          let g = Curve.mul prms.Pairing.curve (B.of_int (3 + i)) prms.Pairing.g in
          Tre.Server.keygen ~g prms rng)
      in
      let secs = List.map fst servers and pubs = List.map snd servers in
      let a, pk = Multi_server.receiver_keygen prms pubs rng in
      let msg = Printf.sprintf "guarded by %d servers" n in
      let ct = Multi_server.encrypt prms pubs pk ~release_time:t_release rng msg in
      Alcotest.(check int) "one point per server" n (Array.length ct.Multi_server.us);
      let updates = List.map (fun s -> Tre.issue_update prms s t_release) secs in
      Alcotest.(check string) "roundtrip" msg (Multi_server.decrypt prms a updates ct))
    [ 1; 2; 3; 5 ]

let test_multi_server_needs_all_updates () =
  let servers = List.init 3 (fun _ -> Tre.Server.keygen prms rng) in
  let secs = List.map fst servers and pubs = List.map snd servers in
  let a, pk = Multi_server.receiver_keygen prms pubs rng in
  let msg = "all or nothing" in
  let ct = Multi_server.encrypt prms pubs pk ~release_time:t_release rng msg in
  let updates = List.map (fun s -> Tre.issue_update prms s t_release) secs in
  (* Missing one update: wrong count. *)
  Alcotest.check_raises "missing" Multi_server.Wrong_update_count (fun () ->
      ignore (Multi_server.decrypt prms a (List.tl updates) ct));
  (* N-1 colluding servers replacing the third's update with a forgery:
     garbage out. *)
  let forged =
    match updates with
    | first :: _ :: rest -> first :: first :: rest
    | _ -> assert false
  in
  Alcotest.(check bool) "collusion of N-1 fails" false
    (Multi_server.decrypt prms a forged ct = msg)

let test_multi_server_validation () =
  let servers = List.init 2 (fun _ -> Tre.Server.keygen prms rng) in
  let pubs = List.map snd servers in
  let _, pk = Multi_server.receiver_keygen prms pubs rng in
  Alcotest.(check bool) "honest" true (Multi_server.validate_receiver_key prms pubs pk);
  let bogus = { pk with Multi_server.k_new = prms.Pairing.g } in
  Alcotest.(check bool) "bogus" false (Multi_server.validate_receiver_key prms pubs bogus);
  Alcotest.check_raises "encrypt refuses" Multi_server.Invalid_receiver_key (fun () ->
      ignore (Multi_server.encrypt prms pubs bogus ~release_time:t_release rng "m"))

let test_multi_server_codec () =
  let servers = List.init 3 (fun _ -> Tre.Server.keygen prms rng) in
  let secs = List.map fst servers and pubs = List.map snd servers in
  let a, pk = Multi_server.receiver_keygen prms pubs rng in
  let msg = "multi wire" in
  let ct = Multi_server.encrypt prms pubs pk ~release_time:t_release rng msg in
  (match
     Multi_server.ciphertext_of_bytes prms (Multi_server.ciphertext_to_bytes prms ct)
   with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok ct' ->
      let updates = List.map (fun s -> Tre.issue_update prms s t_release) secs in
      Alcotest.(check string) "decrypts" msg (Multi_server.decrypt prms a updates ct'));
  match
    Multi_server.receiver_public_of_bytes prms
      (Multi_server.receiver_public_to_bytes prms pk)
  with
  | Error e -> Alcotest.fail ("receiver key decode failed: " ^ e)
  | Ok pk' ->
      Alcotest.(check bool) "receiver key roundtrip" true
        (Curve.equal pk.Multi_server.ag pk'.Multi_server.ag
        && Curve.equal pk.Multi_server.k_new pk'.Multi_server.k_new)

let test_id_tre_codec () =
  let msg = "id wire" in
  let ct = Id_tre.encrypt prms id_pub bob_id ~release_time:t_release rng msg in
  let wire = Id_tre.ciphertext_to_bytes prms ct in
  (match Id_tre.ciphertext_of_bytes prms wire with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok ct' ->
      let u = Id_tre.Server.issue_update prms id_sec t_release in
      Alcotest.(check string) "decrypts" msg
        (Id_tre.decrypt prms ~private_key:bob_key u ct'));
  (* Cross-kind confusion dies on the envelope tag. *)
  Alcotest.(check bool) "not a base ciphertext" true
    (Result.is_error (Tre.ciphertext_of_bytes prms wire))

(* --- Policy lock --- *)

let test_policy_lock_single_condition () =
  let cond = "The receiver has completed task X" in
  let ct = Policy_lock.encrypt prms srv_pub alice_pub ~conditions:[ cond ] rng "unlock!" in
  let w = Policy_lock.issue_witness prms srv_sec cond in
  Alcotest.(check bool) "witness verifies" true (Policy_lock.verify_witness prms srv_pub w);
  Alcotest.(check string) "roundtrip" "unlock!" (Policy_lock.decrypt prms alice_sec [ w ] ct)

let test_policy_lock_conjunction () =
  let conds = [ "It is an emergency"; "Two officers concur"; "It is after 2005" ] in
  let ct = Policy_lock.encrypt prms srv_pub alice_pub ~conditions:conds rng "launch code" in
  let ws = List.map (Policy_lock.issue_witness prms srv_sec) conds in
  Alcotest.(check string) "all witnesses" "launch code"
    (Policy_lock.decrypt prms alice_sec ws ct);
  (* Any proper subset is insufficient. *)
  Alcotest.check_raises "missing witness" Policy_lock.Missing_witness (fun () ->
      ignore (Policy_lock.decrypt prms alice_sec (List.tl ws) ct));
  (* A witness for a different condition cannot substitute. *)
  let wrong = Policy_lock.issue_witness prms srv_sec "Unrelated condition" in
  let substituted = wrong :: List.tl ws in
  Alcotest.check_raises "substituted witness" Policy_lock.Missing_witness (fun () ->
      ignore (Policy_lock.decrypt prms alice_sec substituted ct))

let test_policy_lock_dedup_and_order () =
  (* Condition sets are canonicalized: duplicates and order do not matter. *)
  let c1 = Policy_lock.encrypt prms srv_pub alice_pub ~conditions:[ "b"; "a"; "b" ] rng "m" in
  Alcotest.(check (list string)) "canonical" [ "a"; "b" ] c1.Policy_lock.conditions;
  let ws = List.map (Policy_lock.issue_witness prms srv_sec) [ "a"; "b" ] in
  Alcotest.(check string) "decrypts" "m" (Policy_lock.decrypt prms alice_sec ws c1)

let test_policy_lock_empty_conditions () =
  Alcotest.check_raises "empty" (Invalid_argument "Policy_lock.encrypt: no conditions")
    (fun () ->
      ignore (Policy_lock.encrypt prms srv_pub alice_pub ~conditions:[] rng "m"))

let test_policy_lock_time_release_is_special_case () =
  (* Locking under the single condition "it is now T" must interoperate
     with plain TRE updates. *)
  let ct = Policy_lock.encrypt prms srv_pub alice_pub ~conditions:[ t_release ] rng "tre" in
  Alcotest.(check string) "tre update as witness" "tre"
    (Policy_lock.decrypt prms alice_sec [ upd ] ct)

(* --- Key insulation --- *)

let test_key_insulation_roundtrip () =
  let msg = "decrypted on the insecure device" in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  let ek = Key_insulation.derive prms alice_sec upd in
  Alcotest.(check string) "epoch label" t_release (Key_insulation.epoch ek);
  Alcotest.(check string) "roundtrip" msg (Key_insulation.decrypt prms ek ct)

let test_key_insulation_wrong_epoch () =
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:"epoch-7" rng "m" in
  let ek = Key_insulation.derive prms alice_sec upd in
  Alcotest.check_raises "wrong epoch" Tre.Update_mismatch (fun () ->
      ignore (Key_insulation.decrypt prms ek ct))

let test_key_insulation_exposure_contained () =
  (* An adversary holding epoch key K_i decrypts epoch i but not epoch j:
     simulate by using K_i's point against a ciphertext for epoch j with
     the label forced. *)
  let ct_j = Tre.encrypt prms srv_pub alice_pub ~release_time:"epoch-j" rng "other epoch" in
  let ek_i = Key_insulation.derive prms alice_sec upd in
  (* Relabel K_i as epoch-j via serialization surgery: keep the point,
     rebuild the envelope with the other epoch label. *)
  let bytes = Key_insulation.to_bytes prms ek_i in
  let w = Pairing.point_bytes prms in
  let point = String.sub bytes (String.length bytes - w) w in
  let relabeled =
    Codec.encode prms Codec.Epoch_key (fun buf ->
        Codec.add_label buf "epoch-j";
        Codec.add_fixed buf point)
  in
  match Key_insulation.of_bytes prms relabeled with
  | Error e -> Alcotest.fail ("relabel decode failed: " ^ e)
  | Ok ek_forged ->
      Alcotest.(check bool) "epoch-j not decryptable with K_i" false
        (Key_insulation.decrypt prms ek_forged ct_j = "other epoch")

let test_key_insulation_codec () =
  let ek = Key_insulation.derive prms alice_sec upd in
  (match Key_insulation.of_bytes prms (Key_insulation.to_bytes prms ek) with
  | Ok ek' ->
      let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng "m" in
      Alcotest.(check string) "works after roundtrip" "m" (Key_insulation.decrypt prms ek' ct)
  | Error e -> Alcotest.fail ("decode failed: " ^ e));
  (* An epoch key has its own wire kind: its bytes must NOT decode as a
     key update (and vice versa), even though both are (label, point). *)
  let ek_bytes = Key_insulation.to_bytes prms ek in
  Alcotest.(check bool) "epoch key is not an update" true
    (Result.is_error (Tre.update_of_bytes prms ek_bytes));
  Alcotest.(check bool) "update is not an epoch key" true
    (Result.is_error (Key_insulation.of_bytes prms (Tre.update_to_bytes prms upd)))

(* --- Hybrid baseline --- *)

let hyb_sec, hyb_pub = Hybrid_baseline.receiver_keygen prms rng

let test_hybrid_roundtrip () =
  let msg = "two encapsulations" in
  let ct = Hybrid_baseline.encrypt prms srv_pub hyb_pub ~release_time:t_release rng msg in
  Alcotest.(check string) "roundtrip" msg (Hybrid_baseline.decrypt prms hyb_sec upd ct)

let test_hybrid_needs_both () =
  let msg = "needs secret AND update" in
  let ct = Hybrid_baseline.encrypt prms srv_pub hyb_pub ~release_time:t_release rng msg in
  (* Wrong secret, right update. *)
  let eve_sec, _ = Hybrid_baseline.receiver_keygen prms rng in
  Alcotest.(check bool) "wrong secret" false
    (Hybrid_baseline.decrypt prms eve_sec upd ct = msg);
  (* Right secret, forged update (label forced). *)
  let other = Tre.issue_update prms srv_sec "not the time" in
  let forged = { other with Tre.update_time = t_release } in
  Alcotest.(check bool) "forged update" false
    (Hybrid_baseline.decrypt prms hyb_sec forged ct = msg)

let test_hybrid_overhead_vs_tre () =
  (* The paper's "50% reduction in most cases": the hybrid ciphertext
     carries two encapsulations. Structurally its overhead must be at
     least ~2x TRE's. *)
  let tre_oh = Tre.ciphertext_overhead prms in
  let hyb_oh = Hybrid_baseline.ciphertext_overhead prms in
  Alcotest.(check bool) "hybrid >= 2x TRE overhead" true (hyb_oh >= 2 * tre_oh - 8)

let () =
  Alcotest.run "tre-variants"
    [
      ( "fujisaki-okamoto",
        [
          Alcotest.test_case "roundtrip" `Quick test_fo_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_fo_tamper_rejected;
          Alcotest.test_case "wrong time" `Quick test_fo_wrong_time_raises;
          Alcotest.test_case "codec" `Quick test_fo_codec;
          Alcotest.test_case "H3 domain separation" `Quick test_fo_h3_domain_separation;
        ] );
      ( "react",
        [
          Alcotest.test_case "roundtrip" `Quick test_react_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_react_tamper_rejected;
          Alcotest.test_case "codec" `Quick test_react_codec;
          Alcotest.test_case "tag domain separation" `Quick test_react_tag_domain_separation;
          Alcotest.test_case "short fixed fields" `Quick test_short_fixed_fields_rejected;
        ] );
      ( "id-tre",
        [
          Alcotest.test_case "roundtrip" `Quick test_id_tre_roundtrip;
          Alcotest.test_case "private key verifies" `Quick test_id_tre_private_key_verifies;
          Alcotest.test_case "wrong identity" `Quick test_id_tre_wrong_identity_garbage;
          Alcotest.test_case "escrow is real" `Quick test_id_tre_escrow_is_real;
          Alcotest.test_case "update mismatch" `Quick test_id_tre_update_mismatch;
          Alcotest.test_case "codec" `Quick test_id_tre_codec;
        ] );
      ( "multi-server",
        [
          Alcotest.test_case "roundtrip 1..5" `Quick test_multi_server_roundtrip;
          Alcotest.test_case "needs all updates" `Quick test_multi_server_needs_all_updates;
          Alcotest.test_case "key validation" `Quick test_multi_server_validation;
          Alcotest.test_case "codec" `Quick test_multi_server_codec;
        ] );
      ( "policy-lock",
        [
          Alcotest.test_case "single condition" `Quick test_policy_lock_single_condition;
          Alcotest.test_case "conjunction" `Quick test_policy_lock_conjunction;
          Alcotest.test_case "dedup and order" `Quick test_policy_lock_dedup_and_order;
          Alcotest.test_case "empty refused" `Quick test_policy_lock_empty_conditions;
          Alcotest.test_case "TRE special case" `Quick test_policy_lock_time_release_is_special_case;
        ] );
      ( "key-insulation",
        [
          Alcotest.test_case "roundtrip" `Quick test_key_insulation_roundtrip;
          Alcotest.test_case "wrong epoch" `Quick test_key_insulation_wrong_epoch;
          Alcotest.test_case "exposure contained" `Quick test_key_insulation_exposure_contained;
          Alcotest.test_case "codec" `Quick test_key_insulation_codec;
        ] );
      ( "hybrid-baseline",
        [
          Alcotest.test_case "roundtrip" `Quick test_hybrid_roundtrip;
          Alcotest.test_case "needs both" `Quick test_hybrid_needs_both;
          Alcotest.test_case "overhead vs TRE" `Quick test_hybrid_overhead_vs_tre;
        ] );
    ]
