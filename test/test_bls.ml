(* BLS short signatures: correctness, forgery rejection, batching, codecs. *)

module B = Bigint

let prms = Pairing.toy64 ()
let rng = Hashing.Drbg.create ~seed:"bls-tests" ()
let sk, pk = Bls.keygen prms rng

let test_sign_verify () =
  let msgs = [ ""; "a"; "hello world"; String.make 1000 'x' ] in
  List.iter
    (fun m ->
      let s = Bls.sign prms sk m in
      Alcotest.(check bool) ("verify " ^ String.escaped (String.sub m 0 (min 8 (String.length m))))
        true (Bls.verify prms pk m s))
    msgs

let test_wrong_message_rejected () =
  let s = Bls.sign prms sk "message one" in
  Alcotest.(check bool) "wrong msg" false (Bls.verify prms pk "message two" s)

let test_wrong_key_rejected () =
  let _, pk2 = Bls.keygen prms rng in
  let s = Bls.sign prms sk "msg" in
  Alcotest.(check bool) "wrong key" false (Bls.verify prms pk2 "msg" s)

let test_tampered_signature_rejected () =
  let s = Bls.sign prms sk "msg" in
  let tampered = Curve.add prms.Pairing.curve s prms.Pairing.g in
  Alcotest.(check bool) "tampered" false (Bls.verify prms pk "msg" tampered)

let test_infinity_signature_rejected () =
  Alcotest.(check bool) "infinity not valid for random msg" false
    (Bls.verify prms pk "some message" Curve.infinity)

let test_custom_generator () =
  let g2 = Curve.mul prms.Pairing.curve (B.of_int 7) prms.Pairing.g in
  let sk2, pk2 = Bls.keygen ~g:g2 prms rng in
  let s = Bls.sign prms sk2 "msg" in
  Alcotest.(check bool) "custom generator verify" true (Bls.verify prms pk2 "msg" s);
  Alcotest.(check bool) "not under default pk" false (Bls.verify prms pk "msg" s)

let test_secret_of_scalar () =
  let sk1, pk1 = Bls.secret_of_scalar prms (B.of_int 12345) () in
  let sk2, pk2 = Bls.secret_of_scalar prms (B.of_int 12345) () in
  Alcotest.(check bool) "deterministic" true
    (Bls.public_to_bytes prms pk1 = Bls.public_to_bytes prms pk2);
  let s = Bls.sign prms sk1 "m" in
  Alcotest.(check bool) "cross verify" true (Bls.verify prms pk2 "m" (Bls.sign prms sk2 "m"));
  Alcotest.(check bool) "verify" true (Bls.verify prms pk1 "m" s);
  Alcotest.check_raises "zero scalar"
    (Invalid_argument "Bls.secret_of_scalar: scalar out of range") (fun () ->
      ignore (Bls.secret_of_scalar prms B.zero ()))

let test_batch_verify () =
  let pairs = List.init 10 (fun i ->
      let m = Printf.sprintf "update-%d" i in
      (m, Bls.sign prms sk m))
  in
  Alcotest.(check bool) "good batch" true (Bls.verify_batch prms pk pairs);
  Alcotest.(check bool) "empty batch" true (Bls.verify_batch prms pk []);
  (* One bad signature poisons the batch. *)
  let poisoned =
    ("poisoned", Bls.sign prms sk "other") :: List.tl pairs
  in
  Alcotest.(check bool) "poisoned batch" false (Bls.verify_batch prms pk poisoned);
  (* Duplicate messages are sound under random-exponent batching: each
     occurrence gets its own d_i, so a repeated valid pair still verifies
     and a tampered duplicate still poisons. *)
  let dup = List.hd pairs :: pairs in
  Alcotest.(check bool) "duplicates fine" true (Bls.verify_batch prms pk dup);
  let m0, s0 = List.hd pairs in
  let bad_dup = (m0, Curve.add prms.Pairing.curve s0 prms.Pairing.g) :: pairs in
  Alcotest.(check bool) "tampered duplicate" false (Bls.verify_batch prms pk bad_dup)

let test_batch_cancellation_attack () =
  (* The attack random exponents exist to stop: shift one signature by +D
     and another by -D. The unweighted sums are unchanged, so a naive
     aggregate check would accept; with per-item d_i the shifts pick up
     different coefficients and must be caught. *)
  let curve = prms.Pairing.curve in
  let d = Curve.mul curve (B.of_int 424242) prms.Pairing.g in
  let s1 = Bls.sign prms sk "cancel-1" and s2 = Bls.sign prms sk "cancel-2" in
  let forged =
    [ ("cancel-1", Curve.add curve s1 d);
      ("cancel-2", Curve.add curve s2 (Curve.neg curve d)) ]
  in
  Alcotest.(check bool) "sanity: honest pair verifies" true
    (Bls.verify_batch prms pk [ ("cancel-1", s1); ("cancel-2", s2) ]);
  Alcotest.(check bool) "cancellation rejected" false (Bls.verify_batch prms pk forged)

let test_batch_with_matches_batch () =
  let pairs = List.init 6 (fun i ->
      let m = Printf.sprintf "with-%d" i in
      (m, Bls.sign prms sk m))
  in
  let vrf = Bls.make_verifier prms pk in
  Alcotest.(check bool) "prepared batch agrees" true (Bls.verify_batch_with prms vrf pairs);
  let poisoned = ("with-0", prms.Pairing.g) :: List.tl pairs in
  Alcotest.(check bool) "prepared poisoned agrees" false
    (Bls.verify_batch_with prms vrf poisoned)

let test_signature_codec () =
  let s = Bls.sign prms sk "roundtrip" in
  let bytes = Bls.signature_to_bytes prms s in
  Alcotest.(check int) "short signature width" (Bls.signature_bytes prms)
    (String.length bytes);
  (match Bls.signature_of_bytes prms bytes with
  | Ok s' -> Alcotest.(check bool) "roundtrip" true (Curve.equal s s')
  | Error e -> Alcotest.fail ("decode failed: " ^ e));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error
       (Bls.signature_of_bytes prms (String.make (Bls.signature_bytes prms) '\xff')))

let test_public_codec () =
  let bytes = Bls.public_to_bytes prms pk in
  (match Bls.public_of_bytes prms bytes with
  | Ok pk' ->
      Alcotest.(check bool) "roundtrip" true
        (Curve.equal pk.Bls.g pk'.Bls.g && Curve.equal pk.Bls.pk pk'.Bls.pk)
  | Error e -> Alcotest.fail ("decode failed: " ^ e));
  Alcotest.(check bool) "truncated rejected" true
    (Result.is_error (Bls.public_of_bytes prms "xx"))

let prop_sign_verify =
  QCheck2.Test.make ~name:"sign/verify roundtrip" ~count:20
    QCheck2.Gen.(small_string ~gen:printable)
    (fun m -> Bls.verify prms pk m (Bls.sign prms sk m))

let prop_signature_determinism =
  QCheck2.Test.make ~name:"signatures deterministic" ~count:20
    QCheck2.Gen.(small_string ~gen:printable)
    (fun m -> Curve.equal (Bls.sign prms sk m) (Bls.sign prms sk m))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bls"
    [
      ( "sign-verify",
        [
          Alcotest.test_case "roundtrip" `Quick test_sign_verify;
          Alcotest.test_case "wrong message" `Quick test_wrong_message_rejected;
          Alcotest.test_case "wrong key" `Quick test_wrong_key_rejected;
          Alcotest.test_case "tampered" `Quick test_tampered_signature_rejected;
          Alcotest.test_case "infinity" `Quick test_infinity_signature_rejected;
          Alcotest.test_case "custom generator" `Quick test_custom_generator;
          Alcotest.test_case "secret_of_scalar" `Quick test_secret_of_scalar;
        ] );
      ( "batch",
        [
          Alcotest.test_case "batch verify" `Quick test_batch_verify;
          Alcotest.test_case "cancellation attack" `Quick test_batch_cancellation_attack;
          Alcotest.test_case "prepared verifier" `Quick test_batch_with_matches_batch;
        ] );
      ( "codec",
        [
          Alcotest.test_case "signature" `Quick test_signature_codec;
          Alcotest.test_case "public key" `Quick test_public_codec;
        ] );
      ("properties", qc [ prop_sign_verify; prop_signature_determinism ]);
    ]
