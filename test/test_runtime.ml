(* The domain pool: determinism, exception propagation, reuse, degeneration.

   The pool's contract is that Pool.map is OBSERVABLY List.map — same
   results, same order, same exceptions — with the work merely sharded
   across domains. Every test here checks that contract, because the
   crypto layers above lean on it for bit-identical batch verdicts. *)

exception Boom of int

let test_map_matches_list_map () =
  let pool = Pool.create ~domains:2 () in
  let f x = (x * 31) lxor (x lsl 3) in
  List.iter
    (fun n ->
      let xs = List.init n (fun i -> i - 7) in
      Alcotest.(check (list int))
        (Printf.sprintf "map n=%d" n)
        (List.map f xs) (Pool.map pool f xs))
    [ 0; 1; 2; 3; 7; 64; 1000 ];
  Pool.shutdown pool

let test_map_string_results () =
  (* Heap-allocated results cross domains too; order must hold. *)
  let pool = Pool.create ~domains:3 () in
  let xs = List.init 200 (fun i -> Printf.sprintf "item-%d" i) in
  let f s = String.uppercase_ascii s ^ "!" in
  Alcotest.(check (list string)) "strings in order" (List.map f xs) (Pool.map pool f xs);
  Pool.shutdown pool

let test_exception_propagates () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.check_raises "raises from worker" (Boom 13) (fun () ->
      ignore (Pool.map pool (fun x -> if x = 13 then raise (Boom 13) else x)
                (List.init 100 Fun.id)));
  Pool.shutdown pool

let test_pool_survives_exception () =
  (* A failed map must not wedge the pool: the next map still works. *)
  let pool = Pool.create ~domains:2 () in
  (try ignore (Pool.map pool (fun _ -> raise (Boom 1)) [ 1; 2; 3 ]) with Boom _ -> ());
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int)) "reusable after failure" (List.map succ xs)
    (Pool.map pool succ xs);
  Pool.shutdown pool

let test_pool_reuse () =
  let pool = Pool.create ~domains:2 () in
  for round = 1 to 20 do
    let xs = List.init (10 * round) (fun i -> i * round) in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d" round)
      (List.map (fun x -> x + round) xs)
      (Pool.map pool (fun x -> x + round) xs)
  done;
  Pool.shutdown pool

let test_size_one_is_serial () =
  (* A size-1 pool degenerates to the caller's domain — no spawns. *)
  let pool = Pool.create ~domains:1 () in
  Alcotest.(check int) "size clamps to 1" 1 (Pool.size pool);
  let key = Domain.self () in
  let seen = Pool.map pool (fun _ -> Domain.self () = key) (List.init 10 Fun.id) in
  Alcotest.(check bool) "runs on caller domain" true (List.for_all Fun.id seen);
  Pool.shutdown pool

let test_iter_runs_all () =
  let pool = Pool.create ~domains:2 () in
  let hits = Array.make 100 0 in
  (* Disjoint writes per element — the same isolation the simnet drain
     relies on. *)
  Pool.iter pool (fun i -> hits.(i) <- hits.(i) + 1) (List.init 100 Fun.id);
  Alcotest.(check bool) "every element exactly once" true
    (Array.for_all (fun c -> c = 1) hits);
  Pool.shutdown pool

let test_default_pool_shared () =
  let p1 = Pool.default () in
  let p2 = Pool.default () in
  Alcotest.(check bool) "default is a singleton" true (p1 == p2);
  Alcotest.(check bool) "default sized by recommendation" true
    (Pool.size p1 = Pool.recommended ());
  let xs = List.init 64 Fun.id in
  Alcotest.(check (list int)) "default pool works" (List.map (fun x -> x * x) xs)
    (Pool.map p1 (fun x -> x * x) xs)

let test_shutdown_degrades_gracefully () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Mapping on a stopped pool falls back to the serial path. *)
  let xs = List.init 10 Fun.id in
  Alcotest.(check (list int)) "map after shutdown" (List.map succ xs)
    (Pool.map pool succ xs)

let test_stats_accounting () =
  (* Every element is processed exactly once, so the per-lane item counts
     must sum to the sizes handed in — whatever the host's core count
     decides about how many lanes actually run. *)
  let pool = Pool.create ~domains:2 () in
  Pool.reset_stats pool;
  ignore (Pool.map pool succ (List.init 100 Fun.id));
  ignore (Pool.map pool succ [ 3 ]);
  ignore (Pool.map pool succ []);
  let st = Pool.stats pool in
  Alcotest.(check int) "batches (empty list uncounted)" 2 st.Pool.batches;
  let sum = Array.fold_left ( + ) 0 st.Pool.items_by_lane in
  Alcotest.(check int) "items sum to multi-lane total" 100 sum;
  Alcotest.(check bool) "at least one chunk retired" true
    (Array.fold_left ( + ) 0 st.Pool.chunks_by_lane >= 1);
  Alcotest.(check bool) "parallel <= batches" true
    (st.Pool.parallel_batches <= st.Pool.batches);
  Pool.reset_stats pool;
  let st = Pool.stats pool in
  Alcotest.(check int) "reset batches" 0 st.Pool.batches;
  Alcotest.(check int) "reset items" 0
    (Array.fold_left ( + ) 0 st.Pool.items_by_lane);
  Pool.shutdown pool

let test_stats_oversubscribed () =
  (* Lifting the core-count cap must not change results — only which
     lanes the accounting attributes the work to. *)
  let pool = Pool.create ~domains:3 ~oversubscribe:true () in
  let xs = List.init 500 Fun.id in
  Alcotest.(check (list int)) "oversubscribed map matches" (List.map succ xs)
    (Pool.map pool succ xs);
  let st = Pool.stats pool in
  Alcotest.(check int) "lane arrays sized to the pool" 3
    (Array.length st.Pool.items_by_lane);
  Alcotest.(check int) "items conserved" 500
    (Array.fold_left ( + ) 0 st.Pool.items_by_lane);
  Alcotest.(check int) "multi-lane batch counted" 1 st.Pool.parallel_batches;
  Pool.shutdown pool

let () =
  Alcotest.run "runtime"
    [
      ( "map",
        [
          Alcotest.test_case "matches List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "string results" `Quick test_map_string_results;
          Alcotest.test_case "iter covers all" `Quick test_iter_runs_all;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagates" `Quick test_exception_propagates;
          Alcotest.test_case "pool survives" `Quick test_pool_survives_exception;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "reuse" `Quick test_pool_reuse;
          Alcotest.test_case "size-1 serial" `Quick test_size_one_is_serial;
          Alcotest.test_case "default shared" `Quick test_default_pool_shared;
          Alcotest.test_case "shutdown" `Quick test_shutdown_degrades_gracefully;
        ] );
      ( "stats",
        [
          Alcotest.test_case "accounting" `Quick test_stats_accounting;
          Alcotest.test_case "oversubscribed" `Quick test_stats_oversubscribed;
        ] );
    ]
