(* Field-axiom and square-root tests for GF(p) and GF(p^2). *)

module B = Bigint

(* A 256-bit prime congruent to 3 mod 4 (2^256 - 189). *)
let p256 = B.sub (B.pow B.two 256) (B.of_int 189)
let ctx = Fp.create p256

let fp_testable =
  Alcotest.testable (Fp.pp ctx) Fp.equal

let fp2_testable = Alcotest.testable (Fp2.pp ctx) Fp2.equal

let gen_fp =
  QCheck2.Gen.(
    let* bytes = string_size ~gen:char (return 40) in
    return (Fp.of_bigint ctx (B.of_bytes_be bytes)))

let gen_fp2 = QCheck2.Gen.map (fun (re, im) -> Fp2.make ~re ~im) QCheck2.Gen.(pair gen_fp gen_fp)

let test_create_validation () =
  Alcotest.check_raises "even" (Invalid_argument "Fp.create: modulus must be odd and >= 3")
    (fun () -> ignore (Fp.create (B.of_int 8)));
  Alcotest.check_raises "1 mod 4" (Invalid_argument "Fp.create: modulus must be 3 mod 4")
    (fun () -> ignore (Fp.create (B.of_int 13)))

let test_constants () =
  Alcotest.check fp_testable "0+1 = 1" (Fp.one ctx) (Fp.add ctx (Fp.zero ctx) (Fp.one ctx));
  Alcotest.(check bool) "is_zero" true (Fp.is_zero ctx (Fp.zero ctx));
  Alcotest.(check bool) "one not zero" false (Fp.is_zero ctx (Fp.one ctx));
  Alcotest.check fp_testable "p = 0" (Fp.zero ctx) (Fp.of_bigint ctx p256);
  Alcotest.check fp_testable "-1 = p-1" (Fp.of_bigint ctx (B.pred p256)) (Fp.of_int ctx (-1))

let test_inv_zero () =
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Fp.inv ctx (Fp.zero ctx)))

let test_sqrt_known () =
  (* 4 has roots 2 and p-2; principal root squared gives back 4. *)
  match Fp.sqrt ctx (Fp.of_int ctx 4) with
  | None -> Alcotest.fail "4 must be a square"
  | Some r -> Alcotest.check fp_testable "r^2 = 4" (Fp.of_int ctx 4) (Fp.sqr ctx r)

let test_bytes_reject () =
  Alcotest.(check bool) "wrong width" true (Fp.of_bytes ctx "abc" = None);
  let too_big = B.to_bytes_be ~pad_to:(Fp.byte_length ctx) (B.pred (B.pow B.two 256)) in
  Alcotest.(check bool) "non-canonical" true (Fp.of_bytes ctx too_big = None)

let prop_field_axioms =
  QCheck2.Test.make ~name:"fp field axioms" ~count:200
    QCheck2.Gen.(triple gen_fp gen_fp gen_fp)
    (fun (a, b, c) ->
      Fp.equal (Fp.add ctx a b) (Fp.add ctx b a)
      && Fp.equal (Fp.mul ctx a b) (Fp.mul ctx b a)
      && Fp.equal (Fp.mul ctx a (Fp.mul ctx b c)) (Fp.mul ctx (Fp.mul ctx a b) c)
      && Fp.equal (Fp.mul ctx a (Fp.add ctx b c)) (Fp.add ctx (Fp.mul ctx a b) (Fp.mul ctx a c))
      && Fp.equal (Fp.sub ctx (Fp.add ctx a b) b) a
      && Fp.equal (Fp.add ctx a (Fp.neg ctx a)) (Fp.zero ctx))

let prop_inv =
  QCheck2.Test.make ~name:"fp a * a^-1 = 1" ~count:200 gen_fp (fun a ->
      QCheck2.assume (not (Fp.is_zero ctx a));
      Fp.equal (Fp.mul ctx a (Fp.inv ctx a)) (Fp.one ctx))

let prop_pow_negative =
  QCheck2.Test.make ~name:"fp a^-k = (a^k)^-1" ~count:100
    QCheck2.Gen.(pair gen_fp (int_range 1 50))
    (fun (a, k) ->
      QCheck2.assume (not (Fp.is_zero ctx a));
      Fp.equal
        (Fp.pow ctx a (B.of_int (-k)))
        (Fp.inv ctx (Fp.pow ctx a (B.of_int k))))

let prop_sqrt =
  QCheck2.Test.make ~name:"fp sqrt of squares" ~count:200 gen_fp (fun a ->
      let sq = Fp.sqr ctx a in
      Fp.is_square ctx sq
      &&
      match Fp.sqrt ctx sq with
      | None -> false
      | Some r -> Fp.equal (Fp.sqr ctx r) sq)

let prop_nonsquare_detected =
  (* Exactly one of x, -x is a square for x <> 0, since p = 3 mod 4. *)
  QCheck2.Test.make ~name:"fp x xor -x square (p=3 mod 4)" ~count:200 gen_fp
    (fun a ->
      QCheck2.assume (not (Fp.is_zero ctx a));
      Fp.is_square ctx a <> Fp.is_square ctx (Fp.neg ctx a))

let prop_bytes_roundtrip =
  QCheck2.Test.make ~name:"fp bytes roundtrip" ~count:200 gen_fp (fun a ->
      match Fp.of_bytes ctx (Fp.to_bytes ctx a) with
      | Some b -> Fp.equal a b
      | None -> false)

(* --- Fp2 --- *)

let test_fp2_i_squared () =
  (* i^2 = -1. *)
  let i = Fp2.make ~re:(Fp.zero ctx) ~im:(Fp.one ctx) in
  Alcotest.check fp2_testable "i^2 = -1"
    (Fp2.neg ctx (Fp2.one ctx))
    (Fp2.sqr ctx i)

let test_fp2_inv_zero () =
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Fp2.inv ctx (Fp2.zero ctx)))

let prop_fp2_field_axioms =
  QCheck2.Test.make ~name:"fp2 field axioms" ~count:200
    QCheck2.Gen.(triple gen_fp2 gen_fp2 gen_fp2)
    (fun (a, b, c) ->
      Fp2.equal (Fp2.add ctx a b) (Fp2.add ctx b a)
      && Fp2.equal (Fp2.mul ctx a b) (Fp2.mul ctx b a)
      && Fp2.equal (Fp2.mul ctx a (Fp2.mul ctx b c)) (Fp2.mul ctx (Fp2.mul ctx a b) c)
      && Fp2.equal
           (Fp2.mul ctx a (Fp2.add ctx b c))
           (Fp2.add ctx (Fp2.mul ctx a b) (Fp2.mul ctx a c))
      && Fp2.equal (Fp2.sqr ctx a) (Fp2.mul ctx a a))

let prop_fp2_inv =
  QCheck2.Test.make ~name:"fp2 a * a^-1 = 1" ~count:200 gen_fp2 (fun a ->
      QCheck2.assume (not (Fp2.is_zero ctx a));
      Fp2.equal (Fp2.mul ctx a (Fp2.inv ctx a)) (Fp2.one ctx))

let prop_fp2_conj =
  QCheck2.Test.make ~name:"fp2 a * conj a = norm a" ~count:200 gen_fp2 (fun a ->
      Fp2.equal
        (Fp2.mul ctx a (Fp2.conj ctx a))
        (Fp2.of_fp ctx (Fp2.norm ctx a)))

let prop_fp2_frobenius =
  (* Conjugation is the Frobenius: conj a = a^p. *)
  QCheck2.Test.make ~name:"fp2 conj = frobenius" ~count:20 gen_fp2 (fun a ->
      Fp2.equal (Fp2.conj ctx a) (Fp2.pow ctx a p256))

let prop_fp2_pow_homomorphism =
  QCheck2.Test.make ~name:"fp2 (ab)^k = a^k b^k" ~count:50
    QCheck2.Gen.(triple gen_fp2 gen_fp2 (int_range 0 100))
    (fun (a, b, k) ->
      let k = B.of_int k in
      Fp2.equal
        (Fp2.pow ctx (Fp2.mul ctx a b) k)
        (Fp2.mul ctx (Fp2.pow ctx a k) (Fp2.pow ctx b k)))

let prop_fp2_bytes_roundtrip =
  QCheck2.Test.make ~name:"fp2 bytes roundtrip" ~count:200 gen_fp2 (fun a ->
      match Fp2.of_bytes ctx (Fp2.to_bytes ctx a) with
      | Some b -> Fp2.equal a b
      | None -> false)

let gen_exponent =
  QCheck2.Gen.(
    let* bytes = string_size ~gen:char (int_range 0 38) in
    let* negate = bool in
    let v = B.of_bytes_be bytes in
    return (if negate then B.neg v else v))

let prop_fp2_window_pow =
  QCheck2.Test.make ~name:"fp2 pow = pow_binary" ~count:50
    QCheck2.Gen.(pair gen_fp2 gen_exponent)
    (fun (a, e) ->
      QCheck2.assume (B.sign e >= 0 || not (Fp2.is_zero ctx a));
      Fp2.equal (Fp2.pow ctx a e) (Fp2.pow_binary ctx a e))

let test_fp2_window_pow_edges () =
  let a = Fp2.make ~re:(Fp.of_int ctx 7) ~im:(Fp.of_int ctx 11) in
  let check name e =
    if not (Fp2.equal (Fp2.pow ctx a e) (Fp2.pow_binary ctx a e)) then
      Alcotest.fail name
  in
  check "e = 0" B.zero;
  check "e = 1" B.one;
  check "e = p-1" (B.pred p256);
  check "e = p" p256;
  check "e = 2^200" (B.pow B.two 200);
  check "e = 2^200 + 1" (B.succ (B.pow B.two 200));
  (* Negative exponents invert the base in both paths. *)
  check "e = -5" (B.of_int (-5));
  check "e = -(2^150)" (B.neg (B.pow B.two 150))

let prop_fp2_mul_fp =
  QCheck2.Test.make ~name:"fp2 mul_fp = mul by embedded" ~count:200
    QCheck2.Gen.(pair gen_fp gen_fp2)
    (fun (s, a) ->
      Fp2.equal (Fp2.mul_fp ctx s a) (Fp2.mul ctx (Fp2.of_fp ctx s) a))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "field"
    [
      ( "fp-directed",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "inv zero" `Quick test_inv_zero;
          Alcotest.test_case "sqrt known" `Quick test_sqrt_known;
          Alcotest.test_case "bytes reject" `Quick test_bytes_reject;
        ] );
      ( "fp-props",
        q
          [
            prop_field_axioms; prop_inv; prop_pow_negative; prop_sqrt;
            prop_nonsquare_detected; prop_bytes_roundtrip;
          ] );
      ( "fp2-directed",
        [
          Alcotest.test_case "i^2 = -1" `Quick test_fp2_i_squared;
          Alcotest.test_case "inv zero" `Quick test_fp2_inv_zero;
          Alcotest.test_case "window pow edges" `Quick test_fp2_window_pow_edges;
        ] );
      ( "fp2-props",
        q
          [
            prop_fp2_field_axioms; prop_fp2_inv; prop_fp2_conj; prop_fp2_frobenius;
            prop_fp2_pow_homomorphism; prop_fp2_window_pow; prop_fp2_bytes_roundtrip;
            prop_fp2_mul_fp;
          ] );
    ]
