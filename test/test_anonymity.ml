(* The anonymity and passivity properties of §1/§3, asserted over network
   traces: in a full TRE run the server receives nothing, sends only
   user-independent broadcasts, and the trace it could observe is
   independent of who communicates what to whom and when it unlocks.
   Contrast runs of the baselines leak exactly what §2.2 says they leak. *)

let prms = Pairing.toy64 ()

let tre_trace ~n_clients ~n_messages =
  let net = Simnet.create ~seed:"anon" ~latency:0.01 ~jitter:0.0 () in
  let tl = Timeline.create ~granularity:10.0 () in
  let server = Passive_server.create prms ~net ~timeline:tl ~name:"server" in
  let clients =
    List.init n_clients (fun i ->
        Client.create prms ~net ~server:(Passive_server.public server)
          ~name:(Printf.sprintf "client-%d" i))
  in
  let recipients = List.map (fun c -> (Client.name c, Client.on_wire c)) clients in
  Passive_server.start server ~net ~first_epoch:1 ~epochs:3 ~recipients;
  let rng = Hashing.Drbg.create ~seed:"senders" () in
  for i = 0 to n_messages - 1 do
    let receiver = List.nth clients (i mod n_clients) in
    let ct =
      Tre.encrypt prms (Passive_server.public server)
        (Client.public_key receiver)
        ~release_time:(Timeline.label tl ((i mod 3) + 1))
        rng
        (Printf.sprintf "message %d" i)
    in
    (* Sender-to-receiver transfer happens entirely off the server. *)
    Simnet.send net ~src:(Printf.sprintf "sender-%d" i) ~dst:(Client.name receiver)
      ~kind:"ciphertext"
      ~bytes:(String.length (Tre.ciphertext_to_bytes prms ct))
      (fun () -> Client.enqueue_ciphertext receiver ct)
  done;
  Simnet.run net;
  (net, clients)

let test_server_receives_nothing () =
  let net, clients = tre_trace ~n_clients:4 ~n_messages:12 in
  Alcotest.(check int) "zero messages to the server" 0
    (List.length (Simnet.sent_to net "server"));
  (* And everything still got delivered. *)
  let total = List.fold_left (fun acc c -> acc + List.length (Client.deliveries c)) 0 clients in
  Alcotest.(check int) "all delivered" 12 total

let test_server_output_is_user_independent () =
  (* The server's entire output is broadcasts whose content and schedule
     do not depend on users: traces of a 1-client and a 5-client run have
     identical server-originated message sequences. *)
  let server_view net =
    List.map
      (fun (m : Simnet.message) -> (m.Simnet.kind, m.Simnet.dst, m.Simnet.bytes))
      (Simnet.sent_by net "server")
  in
  let net1, _ = tre_trace ~n_clients:1 ~n_messages:2 in
  let net5, _ = tre_trace ~n_clients:5 ~n_messages:10 in
  Alcotest.(check bool) "identical server behaviour" true
    (server_view net1 = server_view net5)

let test_no_release_time_reaches_server () =
  (* Nothing carrying a release-time label ever flows toward the server;
     release times appear only in ciphertexts exchanged among users and in
     the server's own (time-label-only) broadcasts. *)
  let net, _ = tre_trace ~n_clients:3 ~n_messages:6 in
  List.iter
    (fun (m : Simnet.message) ->
      if m.Simnet.dst = "server" then Alcotest.fail "server contacted")
    (Simnet.trace net)

let test_escrow_baseline_leaks () =
  (* May's escrow: the trace itself shows sender->server deposits. *)
  let net = Simnet.create ~seed:"escrow-anon" () in
  let tl = Timeline.create ~granularity:10.0 () in
  let agent = May_escrow.create ~net ~timeline:tl ~name:"agent" in
  let got = ref [] in
  May_escrow.deposit agent ~sender:"alice" ~receiver:"bob"
    ~deliver:(fun m -> got := m :: !got)
    ~release_epoch:2 "the plaintext itself";
  Simnet.run net;
  Alcotest.(check (list string)) "delivered" [ "the plaintext itself" ] !got;
  Alcotest.(check bool) "sender visible in trace" true
    (List.exists
       (fun (m : Simnet.message) -> m.Simnet.src = "alice" && m.Simnet.dst = "agent")
       (Simnet.trace net));
  let report = May_escrow.report agent in
  Alcotest.(check string) "leak set maximal" "sender-id,receiver-id,message,release-time"
    (Baseline_report.leaks_to_string report.Baseline_report.leaks)

let test_mont_ibe_leaks_receivers () =
  let net = Simnet.create ~seed:"mont-anon" () in
  let tl = Timeline.create ~granularity:10.0 () in
  let vault = Mont_ibe.create prms ~net ~timeline:tl ~name:"vault" in
  Mont_ibe.register vault ~identity:"bob" (fun _ _ -> ());
  Mont_ibe.register vault ~identity:"carol" (fun _ _ -> ());
  Simnet.run net;
  Alcotest.(check int) "server knows its users" 2 (Mont_ibe.registered_users vault);
  Alcotest.(check bool) "enrollment visible" true
    (List.exists
       (fun (m : Simnet.message) -> m.Simnet.kind = "ibe-enroll")
       (Simnet.trace net))

let test_tre_report_row () =
  (* The TRE row of the E3 table: zero interactions, empty leak set. *)
  let net, _ = tre_trace ~n_clients:10 ~n_messages:10 in
  let to_server = List.length (Simnet.sent_to net "server") in
  Alcotest.(check int) "interactions" 0 to_server;
  Alcotest.(check string) "no leaks" "none" (Baseline_report.leaks_to_string [])

let () =
  Alcotest.run "anonymity"
    [
      ( "tre",
        [
          Alcotest.test_case "server receives nothing" `Quick test_server_receives_nothing;
          Alcotest.test_case "user-independent output" `Quick test_server_output_is_user_independent;
          Alcotest.test_case "no release time to server" `Quick test_no_release_time_reaches_server;
          Alcotest.test_case "report row" `Quick test_tre_report_row;
        ] );
      ( "baseline-leaks",
        [
          Alcotest.test_case "escrow leaks all" `Quick test_escrow_baseline_leaks;
          Alcotest.test_case "mont-ibe leaks receivers" `Quick test_mont_ibe_leaks_receivers;
        ] );
    ]
