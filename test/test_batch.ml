(* Batch verification and batch decryption, across every parameter set.

   Soundness (one forgery poisons the whole batch) and completeness
   (the batched verdict agrees with per-item verification) are checked on
   all five parameter sets; the pool-vs-serial bit-identity checks run on
   toy64, since the pool contract itself is parameter-independent. *)

let pool = Pool.create ~domains:2 ()

let fixtures name =
  let prms = Option.get (Pairing.by_name name) in
  let rng = Hashing.Drbg.create ~seed:("batch-" ^ name) () in
  let srv_sec, srv_pub = Tre.Server.keygen prms rng in
  (prms, rng, srv_sec, srv_pub)

let updates prms srv_sec n =
  List.init n (fun i -> Tre.issue_update prms srv_sec (Printf.sprintf "ep-%d" i))

let forge prms upd =
  { upd with
    Tre.update_value = Curve.add prms.Pairing.curve upd.Tre.update_value prms.Pairing.g }

let test_verify_updates_all_sets () =
  List.iter
    (fun name ->
      let prms, _, srv_sec, srv_pub = fixtures name in
      let vrf = Tre.Verifier.create prms srv_pub in
      let upds = updates prms srv_sec 5 in
      Alcotest.(check bool) (name ^ ": per-item all pass") true
        (List.for_all (Tre.Verifier.verify_update prms vrf) upds);
      Alcotest.(check bool) (name ^ ": batch agrees") true
        (Tre.Verifier.verify_updates prms vrf upds);
      Alcotest.(check bool) (name ^ ": empty batch") true
        (Tre.Verifier.verify_updates prms vrf []);
      (* Forge each position in turn — soundness must not depend on where
         the bad update sits in the batch. *)
      List.iteri
        (fun i _ ->
          let poisoned = List.mapi (fun j u -> if i = j then forge prms u else u) upds in
          Alcotest.(check bool)
            (Printf.sprintf "%s: forged at %d rejected" name i)
            false
            (Tre.Verifier.verify_updates prms vrf poisoned))
        upds)
    Pairing.all_names

let test_verify_updates_pool_agreement () =
  let prms, _, srv_sec, srv_pub = fixtures "toy64" in
  let vrf = Tre.Verifier.create prms srv_pub in
  let upds = updates prms srv_sec 17 in
  Alcotest.(check bool) "pooled verdict true" true
    (Tre.Verifier.verify_updates ~pool prms vrf upds);
  let poisoned = forge prms (List.hd upds) :: List.tl upds in
  Alcotest.(check bool) "pooled verdict false" false
    (Tre.Verifier.verify_updates ~pool prms vrf poisoned);
  (* Updates for a DIFFERENT server's key must not batch-verify. *)
  let rng2 = Hashing.Drbg.create ~seed:"batch-other-server" () in
  let other_sec, _ = Tre.Server.keygen prms rng2 in
  Alcotest.(check bool) "wrong server rejected" false
    (Tre.Verifier.verify_updates prms vrf (updates prms other_sec 5))

let test_off_subgroup_rejected () =
  (* Subgroup checks in the batch are cofactored: items pay only the
     on-curve test and one q-mult checks the weighted sum. An on-curve
     point OUTSIDE the order-q subgroup (here: a raw hash lift before
     cofactor clearing) must still be rejected — its cofactor component
     survives into the weighted sum, which then fails the aggregate
     subgroup check. *)
  let prms, _, srv_sec, srv_pub = fixtures "toy64" in
  let vrf = Tre.Verifier.create prms srv_pub in
  let junk = Pairing.hash_to_g1_unclamped prms "off-subgroup junk" in
  Alcotest.(check bool) "junk is on-curve" true
    (Curve.on_curve prms.Pairing.curve junk);
  Alcotest.(check bool) "junk is not in G1" false (Pairing.in_g1 prms junk);
  let upds = updates prms srv_sec 4 in
  let poisoned =
    List.mapi
      (fun i u -> if i = 2 then { u with Tre.update_value = junk } else u)
      upds
  in
  Alcotest.(check bool) "per-item rejects junk" false
    (List.for_all (Tre.Verifier.verify_update prms vrf) poisoned);
  Alcotest.(check bool) "batch rejects junk" false
    (Tre.Verifier.verify_updates prms vrf poisoned);
  Alcotest.(check bool) "pooled batch rejects junk" false
    (Tre.Verifier.verify_updates ~pool prms vrf poisoned)

let test_bls_batch_pool_agreement () =
  let prms = Option.get (Pairing.by_name "toy64") in
  let rng = Hashing.Drbg.create ~seed:"batch-bls" () in
  let sk, pk = Bls.keygen prms rng in
  let pairs =
    List.init 17 (fun i ->
        let m = Printf.sprintf "msg-%d" i in
        (m, Bls.sign prms sk m))
  in
  Alcotest.(check bool) "serial true" true (Bls.verify_batch prms pk pairs);
  Alcotest.(check bool) "pooled true" true (Bls.verify_batch ~pool prms pk pairs);
  let poisoned = ("msg-0", prms.Pairing.g) :: List.tl pairs in
  Alcotest.(check bool) "serial false" false (Bls.verify_batch prms pk poisoned);
  Alcotest.(check bool) "pooled false" false (Bls.verify_batch ~pool prms pk poisoned);
  let vrf = Bls.make_verifier prms pk in
  Alcotest.(check bool) "prepared pooled true" true
    (Bls.verify_batch_with ~pool prms vrf pairs);
  Alcotest.(check bool) "prepared pooled false" false
    (Bls.verify_batch_with ~pool prms vrf poisoned)

let test_tre_decrypt_batch () =
  let prms, rng, srv_sec, srv_pub = fixtures "toy64" in
  let usr_sec, usr_pub = Tre.User.keygen prms srv_pub rng in
  let pairs =
    List.init 13 (fun i ->
        let t = Printf.sprintf "ep-%d" i in
        let m = Printf.sprintf "plaintext number %d" i in
        ( Tre.issue_update prms srv_sec t,
          Tre.encrypt prms srv_pub usr_pub ~release_time:t rng m ))
  in
  let serial = List.map (fun (u, ct) -> Tre.decrypt prms usr_sec u ct) pairs in
  Alcotest.(check (list string)) "serial batch identical" serial
    (Tre.decrypt_batch prms usr_sec pairs);
  Alcotest.(check (list string)) "pooled batch identical" serial
    (Tre.decrypt_batch ~pool prms usr_sec pairs);
  Alcotest.(check bool) "plaintexts recovered" true
    (List.for_all2 (fun m (_, _) -> String.length m > 0) serial pairs);
  (* A mismatched pair raises through the pool exactly as serially. *)
  let wrong = Tre.issue_update prms srv_sec "some-other-epoch" in
  let mismatched = (wrong, snd (List.hd pairs)) :: List.tl pairs in
  Alcotest.check_raises "mismatch raises (serial)" Tre.Update_mismatch (fun () ->
      ignore (Tre.decrypt_batch prms usr_sec mismatched));
  Alcotest.check_raises "mismatch raises (pooled)" Tre.Update_mismatch (fun () ->
      ignore (Tre.decrypt_batch ~pool prms usr_sec mismatched))

let test_id_tre_decrypt_batch () =
  let prms = Option.get (Pairing.by_name "toy64") in
  let rng = Hashing.Drbg.create ~seed:"batch-idtre" () in
  let id_sec, id_pub = Id_tre.Server.keygen prms rng in
  let private_key = Id_tre.Server.extract prms id_sec "alice" in
  let pairs =
    List.init 9 (fun i ->
        let t = Printf.sprintf "ep-%d" i in
        ( Id_tre.Server.issue_update prms id_sec t,
          Id_tre.encrypt prms id_pub "alice" ~release_time:t rng
            (Printf.sprintf "id message %d" i) ))
  in
  let serial = List.map (fun (u, ct) -> Id_tre.decrypt prms ~private_key u ct) pairs in
  Alcotest.(check (list string)) "pooled identical" serial
    (Id_tre.decrypt_batch ~pool prms ~private_key pairs);
  Alcotest.(check (list string)) "serial identical" serial
    (Id_tre.decrypt_batch prms ~private_key pairs)

let test_exponents_derandomized () =
  (* Same key + same batch -> same exponents (reproducible verdicts);
     changing either the batch content or the seed changes them. *)
  let prms = Option.get (Pairing.by_name "toy64") in
  let e1 = Pairing.batch_exponents prms ~seed:"seed-A" 8 in
  let e2 = Pairing.batch_exponents prms ~seed:"seed-A" 8 in
  let e3 = Pairing.batch_exponents prms ~seed:"seed-B" 8 in
  Alcotest.(check bool) "deterministic" true (List.for_all2 Bigint.equal e1 e2);
  Alcotest.(check bool) "seed-sensitive" false (List.for_all2 Bigint.equal e1 e3);
  Alcotest.(check bool) "nonzero" true
    (List.for_all (fun d -> Bigint.sign d > 0) e1);
  Alcotest.(check int) "count" 8 (List.length e1)

let () =
  Alcotest.run "batch"
    [
      ( "verify-updates",
        [
          Alcotest.test_case "all parameter sets" `Quick test_verify_updates_all_sets;
          Alcotest.test_case "pool agreement" `Quick test_verify_updates_pool_agreement;
          Alcotest.test_case "off-subgroup rejected" `Quick test_off_subgroup_rejected;
        ] );
      ("bls", [ Alcotest.test_case "pool agreement" `Quick test_bls_batch_pool_agreement ]);
      ( "decrypt",
        [
          Alcotest.test_case "tre batch" `Quick test_tre_decrypt_batch;
          Alcotest.test_case "id-tre batch" `Quick test_id_tre_decrypt_batch;
        ] );
      ( "exponents",
        [ Alcotest.test_case "derandomized" `Quick test_exponents_derandomized ] );
    ]
