The benchmark harness's --smoke mode asserts that every optimized hot
path (fixed-base tables, wNAF, windowed exponentiation, dedicated
squaring, prepared pairings, the encryptor cache) returns bit-identical
results to its reference implementation, that the fixed-limb in-place
field kernels agree with the generic Montgomery reference across all
named parameter sets (field ops, curve steps, full pairings), and that
every batched or pool-sharded path (random-exponent batch verification,
batch decryption, the simnet parallel drain, all on a 2-domain pool)
agrees exactly with its serial reference. Ratios are machine-dependent,
so sed masks them; the OK lines and the final assertions are the test.

  $ ../bench/main.exe --smoke | sed -E 's/\([0-9]+\.[0-9]+x\)/(N.NNx)/'
  E1-opt smoke: optimized vs reference at mid128
  scalar-mult fixed-base     OK (N.NNx)
  scalar-mult variable-base  OK (N.NNx)
  mont-pow 255-bit exp       OK (N.NNx)
  fp2-pow (GT exponent)      OK (N.NNx)
  nat-sqr 256-bit            OK (N.NNx)
  pairing (prepared G)       OK (N.NNx)
  update-verify              OK (N.NNx)
  tre-encrypt (same T)       OK (N.NNx)
  all optimized paths agree with reference
  E1-kernel smoke: in-place kernels vs generic reference
  kernel-vs-ref toy64        OK
  kernel-vs-ref toy64b       OK
  kernel-vs-ref mid128       OK
  kernel-vs-ref mid128b      OK
  kernel-vs-ref std160       OK
  all kernel paths agree with the generic reference
  Batch/parallel smoke: 2-domain pool vs serial
  pool-map determinism       OK
  verify-updates batch       OK
  bls-verify-batch           OK
  tre-decrypt-batch          OK
  simnet parallel drain      OK
  all parallel paths agree with serial
