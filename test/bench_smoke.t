The benchmark harness's --smoke mode asserts that every optimized hot
path (fixed-base tables, wNAF, windowed exponentiation, dedicated
squaring, prepared pairings, the encryptor cache) returns bit-identical
results to its reference implementation. Ratios are machine-dependent,
so sed masks them; the OK lines and the final assertion are the test.

  $ ../bench/main.exe --smoke | sed -E 's/\([0-9]+\.[0-9]+x\)/(N.NNx)/'
  E1-opt smoke: optimized vs reference at mid128
  scalar-mult fixed-base     OK (N.NNx)
  scalar-mult variable-base  OK (N.NNx)
  mont-pow 255-bit exp       OK (N.NNx)
  fp2-pow (GT exponent)      OK (N.NNx)
  nat-sqr 256-bit            OK (N.NNx)
  pairing (prepared G)       OK (N.NNx)
  update-verify              OK (N.NNx)
  tre-encrypt (same T)       OK (N.NNx)
  all optimized paths agree with reference
