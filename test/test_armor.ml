(* Base64 (RFC 4648 vectors + canonicality) and the PEM-like armor used by
   the CLI, including golden wire-format vectors that pin serialization. *)

module B64 = Hashing.Base64

let test_b64_rfc4648_vectors () =
  List.iter
    (fun (plain, enc) ->
      Alcotest.(check string) ("encode " ^ plain) enc (B64.encode plain);
      Alcotest.(check (option string)) ("decode " ^ enc) (Some plain) (B64.decode enc))
    [
      ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v"); ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy");
    ]

let test_b64_binary_roundtrip () =
  let all = String.init 256 Char.chr in
  Alcotest.(check (option string)) "roundtrip" (Some all) (B64.decode (B64.encode all))

let test_b64_whitespace_tolerated () =
  Alcotest.(check (option string)) "wrapped lines" (Some "foobar")
    (B64.decode "Zm9v\nYmFy\n")

let test_b64_rejects () =
  List.iter
    (fun bad ->
      Alcotest.(check (option string)) ("reject " ^ bad) None (B64.decode bad))
    [
      "Zm9vYmF";        (* bad length *)
      "Zm9v!mFy";       (* bad char *)
      "Zg==Zg==";       (* padding mid-stream *)
      "Zh==";           (* non-canonical trailing bits *)
      "Zm9=";           (* non-canonical trailing bits *)
    ]

let prop_b64_roundtrip =
  QCheck2.Test.make ~name:"base64 roundtrip" ~count:300 QCheck2.Gen.string
    (fun s -> B64.decode (B64.encode s) = Some s)

(* --- armor --- *)

let test_armor_roundtrip () =
  let payload = String.init 200 Char.chr in
  let armored = Armor.wrap ~kind:"CIPHERTEXT" ~params:"mid128" payload in
  Alcotest.(check (option (triple string string string)))
    "roundtrip"
    (Some ("CIPHERTEXT", "mid128", payload))
    (Armor.unwrap armored)

let test_armor_tolerates_surrounding_text () =
  let payload = "hello" in
  let armored = Armor.wrap ~kind:"KEY UPDATE" ~params:"toy64" payload in
  let embedded = "From: mail\n\n" ^ armored ^ "\n-- \nsig\n" in
  Alcotest.(check (option (triple string string string)))
    "embedded"
    (Some ("KEY UPDATE", "toy64", payload))
    (Armor.unwrap embedded)

let test_armor_rejects () =
  Alcotest.(check bool) "garbage" true (Armor.unwrap "not armor at all" = None);
  let armored = Armor.wrap ~kind:"X" ~params:"p" "data" in
  let truncated = String.sub armored 0 (String.length armored - 25) in
  Alcotest.(check bool) "missing end" true (Armor.unwrap truncated = None)

let test_armor_expecting () =
  let armored = Armor.wrap ~kind:"USER PUBLIC KEY" ~params:"mid128" "payload" in
  (match Armor.unwrap_expecting ~kind:"USER PUBLIC KEY" ~params:"mid128" armored with
  | Ok p -> Alcotest.(check string) "payload" "payload" p
  | Error e -> Alcotest.fail e);
  (match Armor.unwrap_expecting ~kind:"CIPHERTEXT" ~params:"mid128" armored with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kind mismatch accepted");
  match Armor.unwrap_expecting ~kind:"USER PUBLIC KEY" ~params:"toy64" armored with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "params mismatch accepted"

let prop_armor_roundtrip =
  QCheck2.Test.make ~name:"armor roundtrip" ~count:200 QCheck2.Gen.string
    (fun payload ->
      Armor.unwrap (Armor.wrap ~kind:"BLOB" ~params:"toy64" payload)
      = Some ("BLOB", "toy64", payload))

(* --- typed armor over Codec envelopes --- *)

let obj_prms = Pairing.toy64 ()
let obj_rng = Hashing.Drbg.create ~seed:"typed-armor" ()
let obj_srv_sec, _obj_srv_pub = Tre.Server.keygen obj_prms obj_rng
let obj_upd = Tre.issue_update obj_prms obj_srv_sec "typed-epoch"
let obj_payload = Tre.update_to_bytes obj_prms obj_upd

let test_typed_armor_roundtrip () =
  let armored = Armor.wrap_object obj_prms ~kind:Codec.Key_update obj_payload in
  match Armor.unwrap_object ~expect:Codec.Key_update armored with
  | Error e -> Alcotest.fail e
  | Ok (kind, prms', payload) ->
      Alcotest.(check bool) "kind" true (kind = Codec.Key_update);
      Alcotest.(check string) "params" obj_prms.Pairing.name prms'.Pairing.name;
      Alcotest.(check string) "payload intact" obj_payload payload

let test_typed_armor_crlf_input () =
  (* Armor that traveled through a CRLF channel (mail, Windows editors)
     still unwraps, and the payload survives bit-exactly. *)
  let armored = Armor.wrap_object obj_prms ~kind:Codec.Key_update obj_payload in
  let crlf =
    String.concat "\r\n" (String.split_on_char '\n' armored)
  in
  match Armor.unwrap_object ~expect:Codec.Key_update crlf with
  | Error e -> Alcotest.fail e
  | Ok (_, _, payload) -> Alcotest.(check string) "payload intact" obj_payload payload

let test_typed_armor_relabel_rejected () =
  (* Swap the armor header labels of an intact payload: the binary
     envelope disagrees and unwrap_object must refuse. *)
  let relabeled = Armor.wrap ~kind:"EPOCH KEY" ~params:"toy64" obj_payload in
  (match Armor.unwrap_object relabeled with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "relabeled kind accepted");
  let cross_params = Armor.wrap ~kind:"KEY UPDATE" ~params:"mid128" obj_payload in
  (match Armor.unwrap_object cross_params with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-params armor accepted");
  (* And wrap_object itself refuses to produce mislabeled armor. *)
  (match Armor.wrap_object obj_prms ~kind:Codec.Epoch_key obj_payload with
  | _ -> Alcotest.fail "wrap_object produced mislabeled armor"
  | exception Invalid_argument _ -> ());
  match Armor.wrap_object (Pairing.mid128 ()) ~kind:Codec.Key_update obj_payload with
  | _ -> Alcotest.fail "wrap_object accepted cross-params payload"
  | exception Invalid_argument _ -> ()

let test_typed_armor_expect_mismatch () =
  let armored = Armor.wrap_object obj_prms ~kind:Codec.Key_update obj_payload in
  match Armor.unwrap_object ~expect:Codec.Ciphertext armored with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expect mismatch accepted"

(* --- golden wire-format vectors ---

   These pin the binary serialization: if an innocent refactor changes the
   wire format, ciphertexts written by older builds would stop decrypting,
   and these tests catch it. Fixed DRBG seeds make everything bit-stable. *)

(* Vectors for wire format v1 (the Codec envelope "TRE1" | version | kind
   | params fingerprint, then the strict body). These deliberately changed
   when the envelope was introduced — pre-envelope bytes do not decode. *)
let test_golden_vectors () =
  let prms = Pairing.toy64 () in
  let rng = Hashing.Drbg.create ~seed:"golden-vector-seed" () in
  let srv_sec, srv_pub = Tre.Server.keygen prms rng in
  let _usr_sec, usr_pub = Tre.User.keygen prms srv_pub rng in
  let upd = Tre.issue_update prms srv_sec "golden-time" in
  let ct = Tre.encrypt prms srv_pub usr_pub ~release_time:"golden-time" rng "golden" in
  Alcotest.(check string) "server public"
    "545245310108ed86aed42acfd1be03355221a628ccd8881e66c702505c697a99b6f528d6a745"
    (Hashing.Hex.encode (Tre.server_public_to_bytes prms srv_pub));
  Alcotest.(check string) "user public"
    "545245310107ed86aed42acfd1be032255d4080b584fb58930370208b8a34f08c64506c2f027"
    (Hashing.Hex.encode (Tre.user_public_to_bytes prms usr_pub));
  Alcotest.(check string) "update"
    "545245310106ed86aed42acfd1be0000000b676f6c64656e2d74696d650362e5960b0d61cd7e8122c8"
    (Hashing.Hex.encode (Tre.update_to_bytes prms upd));
  Alcotest.(check string) "ciphertext"
    "545245310101ed86aed42acfd1be0000000b676f6c64656e2d74696d650268104275bba910bd9dce8e00000006b7ca83321578"
    (Hashing.Hex.encode (Tre.ciphertext_to_bytes prms ct))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "armor"
    [
      ( "base64",
        [
          Alcotest.test_case "rfc4648" `Quick test_b64_rfc4648_vectors;
          Alcotest.test_case "binary" `Quick test_b64_binary_roundtrip;
          Alcotest.test_case "whitespace" `Quick test_b64_whitespace_tolerated;
          Alcotest.test_case "rejects" `Quick test_b64_rejects;
        ]
        @ qc [ prop_b64_roundtrip ] );
      ( "armor",
        [
          Alcotest.test_case "roundtrip" `Quick test_armor_roundtrip;
          Alcotest.test_case "embedded" `Quick test_armor_tolerates_surrounding_text;
          Alcotest.test_case "rejects" `Quick test_armor_rejects;
          Alcotest.test_case "expecting" `Quick test_armor_expecting;
        ]
        @ qc [ prop_armor_roundtrip ] );
      ( "typed-armor",
        [
          Alcotest.test_case "roundtrip" `Quick test_typed_armor_roundtrip;
          Alcotest.test_case "CRLF input" `Quick test_typed_armor_crlf_input;
          Alcotest.test_case "relabel rejected" `Quick test_typed_armor_relabel_rejected;
          Alcotest.test_case "expect mismatch" `Quick test_typed_armor_expect_mismatch;
        ] );
      ("golden", [ Alcotest.test_case "wire format pinned" `Quick test_golden_vectors ]);
    ]
