(* The paper's core TRE scheme (§5.1): functional correctness, the
   time-lock property (no decryption without the right update), key
   validation, server-change verification, serialization, and the
   anonymity-relevant structural facts. *)

module B = Bigint

let prms = Pairing.toy64 ()
let rng = Hashing.Drbg.create ~seed:"tre-tests" ()
let srv_sec, srv_pub = Tre.Server.keygen prms rng
let alice_sec, alice_pub = Tre.User.keygen prms srv_pub rng
let t_release = "2005-06-01T00:00:00Z"

let roundtrip msg =
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  let upd = Tre.issue_update prms srv_sec t_release in
  Tre.decrypt prms alice_sec upd ct

let test_roundtrip () =
  List.iter
    (fun msg -> Alcotest.(check string) "roundtrip" msg (roundtrip msg))
    [ ""; "x"; "attack at dawn"; String.make 10_000 'z'; "\x00\xff\x00\xff" ]

let test_encrypt_prevalidated_equivalent () =
  (* The fast path must interoperate: prevalidated ciphertexts decrypt
     normally, and the fast path still refuses nothing (caller's duty). *)
  let msg = "fast path" in
  let ct = Tre.encrypt_prevalidated prms srv_pub alice_pub ~release_time:t_release rng msg in
  let upd = Tre.issue_update prms srv_sec t_release in
  Alcotest.(check string) "roundtrip" msg (Tre.decrypt prms alice_sec upd ct)

let test_update_is_bls_signature () =
  (* §5.3.1: the update is exactly a BLS signature under the server key. *)
  let upd = Tre.issue_update prms srv_sec t_release in
  Alcotest.(check bool) "verifies" true (Tre.verify_update prms srv_pub upd);
  let bls_pub = { Bls.g = srv_pub.Tre.Server.g; pk = srv_pub.Tre.Server.sg } in
  Alcotest.(check bool) "is a BLS signature" true
    (Bls.verify prms bls_pub t_release upd.Tre.update_value)

let test_update_identical_for_all_users () =
  (* The scalability property: the update does not depend on any user. *)
  let u1 = Tre.issue_update prms srv_sec t_release in
  let u2 = Tre.issue_update prms srv_sec t_release in
  Alcotest.(check bool) "deterministic" true
    (Curve.equal u1.Tre.update_value u2.Tre.update_value)

let test_forged_update_rejected () =
  let fake = { Tre.update_time = t_release; update_value = prms.Pairing.g } in
  Alcotest.(check bool) "forged" false (Tre.verify_update prms srv_pub fake);
  (* An update for T' does not verify as an update for T. *)
  let other = Tre.issue_update prms srv_sec "some other time" in
  let relabeled = { other with Tre.update_time = t_release } in
  Alcotest.(check bool) "relabeled" false (Tre.verify_update prms srv_pub relabeled)

let test_decrypt_with_wrong_update_garbage () =
  (* The time-lock property, operationally: an update for a different time
     yields garbage, not the plaintext. *)
  let msg = "top secret bid: $1,000,000" in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  let wrong = Tre.issue_update prms srv_sec "1999-01-01T00:00:00Z" in
  let wrong = { wrong with Tre.update_time = t_release } (* force past the label check *) in
  let out = Tre.decrypt prms alice_sec wrong ct in
  Alcotest.(check bool) "garbage" false (out = msg)

let test_decrypt_update_mismatch_raises () =
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng "m" in
  let upd = Tre.issue_update prms srv_sec "another time" in
  Alcotest.check_raises "mismatch" Tre.Update_mismatch (fun () ->
      ignore (Tre.decrypt prms alice_sec upd ct))

let test_decrypt_with_wrong_secret_garbage () =
  let msg = "for alice only" in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  let upd = Tre.issue_update prms srv_sec t_release in
  let eve_sec, _ = Tre.User.keygen prms srv_pub rng in
  Alcotest.(check bool) "eve fails" false (Tre.decrypt prms eve_sec upd ct = msg)

let test_server_cannot_decrypt () =
  (* The no-escrow property that distinguishes TRE from ID-TRE: the server,
     knowing s and the update, still lacks the receiver exponent a. The
     best server attack with its own material is K'' = e^(U, sigma)^s,
     which must not match. *)
  let msg = "server must not read this" in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  let upd = Tre.issue_update prms srv_sec t_release in
  let s = Tre.Server.secret_to_scalar srv_sec in
  let k_guess = Pairing.gt_pow prms (Pairing.pairing prms ct.Tre.u upd.Tre.update_value) s in
  let attempt = Hashing.Kdf.xor ct.Tre.v (Pairing.h2 prms k_guess (String.length ct.Tre.v)) in
  Alcotest.(check bool) "server attempt fails" false (attempt = msg)

let test_invalid_receiver_key_rejected () =
  (* A key not of the form (aG, asG) must be refused at encryption time. *)
  let bogus = { Tre.User.ag = alice_pub.Tre.User.ag; asg = prms.Pairing.g } in
  Alcotest.(check bool) "validate" false (Tre.validate_receiver_key prms srv_pub bogus);
  Alcotest.check_raises "encrypt" Tre.Invalid_receiver_key (fun () ->
      ignore (Tre.encrypt prms srv_pub bogus ~release_time:t_release rng "m"));
  (* And the honest key passes. *)
  Alcotest.(check bool) "honest ok" true
    (Tre.validate_receiver_key prms srv_pub alice_pub)

let test_receiver_key_other_server_rejected () =
  (* A key bound to server S' fails validation against S. *)
  let _, srv2_pub = Tre.Server.keygen prms rng in
  let _, pk2 = Tre.User.keygen prms srv2_pub rng in
  Alcotest.(check bool) "cross-server key" false
    (Tre.validate_receiver_key prms srv_pub pk2)

let test_password_keygen () =
  let s1, p1 = Tre.User.keygen_from_password prms srv_pub ~password:"correct horse" in
  let s2, p2 = Tre.User.keygen_from_password prms srv_pub ~password:"correct horse" in
  Alcotest.(check bool) "deterministic" true
    (B.equal (Tre.User.secret_to_scalar s1) (Tre.User.secret_to_scalar s2)
    && Curve.equal p1.Tre.User.ag p2.Tre.User.ag);
  let _, p3 = Tre.User.keygen_from_password prms srv_pub ~password:"Correct horse" in
  Alcotest.(check bool) "different password" false (Curve.equal p1.Tre.User.ag p3.Tre.User.ag);
  (* Password-derived keys work end to end. *)
  let ct = Tre.encrypt prms srv_pub p1 ~release_time:t_release rng "pw msg" in
  let upd = Tre.issue_update prms srv_sec t_release in
  Alcotest.(check string) "roundtrip" "pw msg" (Tre.decrypt prms s1 upd ct)

let test_server_change () =
  (* §5.3.4: Alice rebinds to a new server S'; anyone holding her old
     certified key can check the new key without a CA. *)
  let _, srv2_pub = Tre.Server.keygen prms rng in
  let rebound = Tre.User.rebind prms alice_sec srv2_pub in
  Alcotest.(check bool) "accepts genuine rebind" true
    (Tre.verify_server_change prms ~certified:alice_pub ~new_server:srv2_pub
       ~candidate:rebound);
  (* An attacker cannot claim Alice's identity under the new server. *)
  let mallory_sec, _ = Tre.User.keygen prms srv2_pub rng in
  let forged =
    { (Tre.User.rebind prms mallory_sec srv2_pub) with Tre.User.ag = alice_pub.Tre.User.ag }
  in
  Alcotest.(check bool) "rejects forged rebind" false
    (Tre.verify_server_change prms ~certified:alice_pub ~new_server:srv2_pub
       ~candidate:forged);
  (* A candidate with a fresh aG is also rejected (not the certified key). *)
  let fresh = Tre.User.rebind prms mallory_sec srv2_pub in
  Alcotest.(check bool) "rejects different identity" false
    (Tre.verify_server_change prms ~certified:alice_pub ~new_server:srv2_pub
       ~candidate:fresh)

let test_server_custom_generator () =
  let g2 = Curve.mul prms.Pairing.curve (B.of_int 42) prms.Pairing.g in
  let sec2, pub2 = Tre.Server.keygen ~g:g2 prms rng in
  Alcotest.(check bool) "generator kept" true (Curve.equal pub2.Tre.Server.g g2);
  let bob_sec, bob_pub = Tre.User.keygen prms pub2 rng in
  let ct = Tre.encrypt prms pub2 bob_pub ~release_time:t_release rng "custom-g" in
  let upd = Tre.issue_update prms sec2 t_release in
  Alcotest.(check bool) "update verifies" true (Tre.verify_update prms pub2 upd);
  Alcotest.(check string) "roundtrip" "custom-g" (Tre.decrypt prms bob_sec upd ct)

let test_scalar_validation () =
  Alcotest.check_raises "zero" (Invalid_argument "Tre: scalar out of range [1, q-1]")
    (fun () -> ignore (Tre.User.secret_of_scalar prms B.zero));
  Alcotest.check_raises "q" (Invalid_argument "Tre: scalar out of range [1, q-1]")
    (fun () -> ignore (Tre.Server.secret_of_scalar prms prms.Pairing.q))

let test_ciphertext_codec () =
  let msg = "serialize me" in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
  let bytes = Tre.ciphertext_to_bytes prms ct in
  (match Tre.ciphertext_of_bytes prms bytes with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok ct' ->
      Alcotest.(check bool) "roundtrip" true
        (Curve.equal ct.Tre.u ct'.Tre.u && ct.Tre.v = ct'.Tre.v
        && ct.Tre.release_time = ct'.Tre.release_time);
      let upd = Tre.issue_update prms srv_sec t_release in
      Alcotest.(check string) "decrypts after roundtrip" msg
        (Tre.decrypt prms alice_sec upd ct'));
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Tre.ciphertext_of_bytes prms "ab"));
  Alcotest.(check int) "overhead accounting" (Tre.ciphertext_overhead prms)
    (String.length bytes - String.length msg - String.length t_release)

let test_update_codec () =
  let upd = Tre.issue_update prms srv_sec t_release in
  (match Tre.update_of_bytes prms (Tre.update_to_bytes prms upd) with
  | Ok u ->
      Alcotest.(check bool) "roundtrip" true
        (u.Tre.update_time = upd.Tre.update_time
        && Curve.equal u.Tre.update_value upd.Tre.update_value)
  | Error e -> Alcotest.fail ("decode failed: " ^ e));
  Alcotest.(check bool) "garbage" true
    (Result.is_error (Tre.update_of_bytes prms "zz"))

let test_key_codecs () =
  (match Tre.user_public_of_bytes prms (Tre.user_public_to_bytes prms alice_pub) with
  | Ok pk ->
      Alcotest.(check bool) "user roundtrip" true
        (Curve.equal pk.Tre.User.ag alice_pub.Tre.User.ag
        && Curve.equal pk.Tre.User.asg alice_pub.Tre.User.asg)
  | Error e -> Alcotest.fail ("user decode failed: " ^ e));
  match Tre.server_public_of_bytes prms (Tre.server_public_to_bytes prms srv_pub) with
  | Ok pk ->
      Alcotest.(check bool) "server roundtrip" true
        (Curve.equal pk.Tre.Server.g srv_pub.Tre.Server.g
        && Curve.equal pk.Tre.Server.sg srv_pub.Tre.Server.sg)
  | Error e -> Alcotest.fail ("server decode failed: " ^ e)

let test_serialization_edge_cases () =
  (* Degenerate but legal values must round-trip, and absurd framing must
     be rejected — on every parameter set (the envelope fingerprint and
     point widths differ per set). *)
  List.iter
    (fun name ->
      match Pairing.by_name name with
      | None -> Alcotest.fail ("unknown parameter set " ^ name)
      | Some p ->
          let lrng = Hashing.Drbg.create ~seed:("edge|" ^ name) () in
          let ssec, spub = Tre.Server.keygen p lrng in
          let asec, apub = Tre.User.keygen p spub lrng in
          (* Empty message AND empty time label. *)
          let ct = Tre.encrypt p spub apub ~release_time:"" lrng "" in
          let wire = Tre.ciphertext_to_bytes p ct in
          (match Tre.ciphertext_of_bytes p wire with
          | Error e -> Alcotest.fail (name ^ ": empty-value decode failed: " ^ e)
          | Ok ct' ->
              let upd = Tre.issue_update p ssec "" in
              Alcotest.(check string) (name ^ " empty roundtrip") ""
                (Tre.decrypt p asec upd ct'));
          (* A label length far beyond the bound dies on the length field,
             not by attempting a giant allocation. *)
          let oversized =
            Codec.encode p Codec.Ciphertext (fun buf ->
                Codec.add_u32 buf 0x0FFF_FFFF;
                Codec.add_fixed buf "nowhere near that long")
          in
          Alcotest.(check bool) (name ^ " oversized tlen") true
            (Result.is_error (Tre.ciphertext_of_bytes p oversized));
          (* A longer-than-bound label is refused at encode time too. *)
          (match
             Codec.encode p Codec.Ciphertext (fun buf ->
                 Codec.add_label buf (String.make (Codec.max_label_bytes + 1) 't'))
           with
          | _ -> Alcotest.fail (name ^ ": oversized label encoded")
          | exception Invalid_argument _ -> ()))
    [ "toy64"; "toy64b"; "mid128"; "mid128b"; "std160" ]

let test_missed_update_still_works () =
  (* §3/§6: updates are not consumed; a late receiver decrypts with the
     archived update long after the release time. *)
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:"epoch-5" rng "late" in
  (* Server has long moved on to epoch-9; archive still has epoch-5. *)
  let archived = Tre.issue_update prms srv_sec "epoch-5" in
  Alcotest.(check string) "late decrypt" "late" (Tre.decrypt prms alice_sec archived ct)

let test_far_future_release_time () =
  (* The sender can pick any T without the server pre-publishing anything
     (contrast with Rivest's offline list): encryption succeeds for a time
     the server has never heard of. *)
  let t = "2525-01-01T00:00:00Z" in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t rng "future" in
  let upd = Tre.issue_update prms srv_sec t in
  Alcotest.(check string) "decrypts when the update finally comes" "future"
    (Tre.decrypt prms alice_sec upd ct)

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"roundtrip random msg/time" ~count:15
    QCheck2.Gen.(pair (small_string ~gen:char) (small_string ~gen:printable))
    (fun (msg, t) ->
      let t = "t|" ^ t in
      let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t rng msg in
      let upd = Tre.issue_update prms srv_sec t in
      Tre.decrypt prms alice_sec upd ct = msg)

let prop_ciphertexts_randomized =
  QCheck2.Test.make ~name:"ciphertexts are randomized" ~count:10
    QCheck2.Gen.(small_string ~gen:printable)
    (fun msg ->
      let c1 = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
      let c2 = Tre.encrypt prms srv_pub alice_pub ~release_time:t_release rng msg in
      not (Curve.equal c1.Tre.u c2.Tre.u))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "tre"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "basic" `Quick test_roundtrip;
          Alcotest.test_case "missed update" `Quick test_missed_update_still_works;
          Alcotest.test_case "far-future time" `Quick test_far_future_release_time;
          Alcotest.test_case "custom generator" `Quick test_server_custom_generator;
          Alcotest.test_case "password keygen" `Quick test_password_keygen;
          Alcotest.test_case "prevalidated fast path" `Quick test_encrypt_prevalidated_equivalent;
        ] );
      ( "updates",
        [
          Alcotest.test_case "is BLS signature" `Quick test_update_is_bls_signature;
          Alcotest.test_case "identical for all" `Quick test_update_identical_for_all_users;
          Alcotest.test_case "forged rejected" `Quick test_forged_update_rejected;
        ] );
      ( "time-lock",
        [
          Alcotest.test_case "wrong update garbage" `Quick test_decrypt_with_wrong_update_garbage;
          Alcotest.test_case "mismatch raises" `Quick test_decrypt_update_mismatch_raises;
          Alcotest.test_case "wrong secret garbage" `Quick test_decrypt_with_wrong_secret_garbage;
          Alcotest.test_case "server cannot decrypt" `Quick test_server_cannot_decrypt;
        ] );
      ( "key-management",
        [
          Alcotest.test_case "invalid receiver key" `Quick test_invalid_receiver_key_rejected;
          Alcotest.test_case "cross-server key" `Quick test_receiver_key_other_server_rejected;
          Alcotest.test_case "server change" `Quick test_server_change;
          Alcotest.test_case "scalar validation" `Quick test_scalar_validation;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "ciphertext" `Quick test_ciphertext_codec;
          Alcotest.test_case "update" `Quick test_update_codec;
          Alcotest.test_case "keys" `Quick test_key_codecs;
          Alcotest.test_case "edge cases, all params" `Quick test_serialization_edge_cases;
        ] );
      ("properties", qc [ prop_roundtrip_random; prop_ciphertexts_randomized ]);
    ]
