(* Group-law tests for the supersingular curve and its codecs, plus
   subgroup structure checks against the toy64 pairing parameters. *)

module B = Bigint

let prms = Pairing.toy64 ()
let curve = prms.Pairing.curve
let fp = prms.Pairing.fp
let g = prms.Pairing.g
let q = prms.Pairing.q

let point = Alcotest.testable (Curve.pp curve) Curve.equal

let rng = Hashing.Drbg.create ~seed:"curve-tests" ()

(* Random point of the order-q subgroup. *)
let gen_subgroup_point =
  QCheck2.Gen.(
    let* k = int_range 1 1_000_000 in
    return (Curve.mul curve (B.of_int k) g))

let gen_scalar =
  QCheck2.Gen.(map B.of_int (int_range (-1000) 1000))

let test_generator_on_curve () =
  Alcotest.(check bool) "on curve" true (Curve.on_curve curve g);
  Alcotest.(check bool) "not infinity" false (Curve.is_infinity g);
  Alcotest.check point "order q" Curve.infinity (Curve.mul curve q g)

let test_make_rejects_off_curve () =
  Alcotest.check_raises "off curve" (Invalid_argument "Curve.make: point not on curve")
    (fun () -> ignore (Curve.make curve ~x:(Fp.of_int fp 1) ~y:(Fp.of_int fp 1)))

let test_identity_laws () =
  Alcotest.check point "O + G = G" g (Curve.add curve Curve.infinity g);
  Alcotest.check point "G + O = G" g (Curve.add curve g Curve.infinity);
  Alcotest.check point "G + (-G) = O" Curve.infinity (Curve.add curve g (Curve.neg curve g));
  Alcotest.check point "0.G = O" Curve.infinity (Curve.mul curve B.zero g);
  Alcotest.check point "1.G = G" g (Curve.mul curve B.one g);
  Alcotest.check point "double O" Curve.infinity (Curve.double curve Curve.infinity)

let test_two_torsion () =
  (* (0, 0) is on the curve and is its own negation: doubling gives O. *)
  let t = Curve.make curve ~x:(Fp.zero fp) ~y:(Fp.zero fp) in
  Alcotest.check point "2-torsion doubles to O" Curve.infinity (Curve.double curve t)

let test_group_order () =
  Alcotest.(check bool) "p+1 = h*q" true
    (B.equal (Curve.group_order curve) (B.mul prms.Pairing.cofactor q))

let test_full_order_kills_any_point () =
  (* Any curve point is killed by p + 1 = #E. *)
  for i = 1 to 10 do
    let h = Pairing.hash_to_g1 prms (Printf.sprintf "pt-%d" i) in
    Alcotest.check point "killed" Curve.infinity
      (Curve.mul curve (Curve.group_order curve) h)
  done

let prop_add_commutative =
  QCheck2.Test.make ~name:"P+Q = Q+P" ~count:100
    QCheck2.Gen.(pair gen_subgroup_point gen_subgroup_point)
    (fun (a, b) -> Curve.equal (Curve.add curve a b) (Curve.add curve b a))

let prop_add_associative =
  QCheck2.Test.make ~name:"(P+Q)+R = P+(Q+R)" ~count:100
    QCheck2.Gen.(triple gen_subgroup_point gen_subgroup_point gen_subgroup_point)
    (fun (a, b, c) ->
      Curve.equal
        (Curve.add curve (Curve.add curve a b) c)
        (Curve.add curve a (Curve.add curve b c)))

let prop_double_is_add =
  QCheck2.Test.make ~name:"2P = P+P" ~count:100 gen_subgroup_point (fun a ->
      Curve.equal (Curve.double curve a) (Curve.add curve a a))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"(k+l).P = k.P + l.P" ~count:100
    QCheck2.Gen.(pair (pair gen_scalar gen_scalar) gen_subgroup_point)
    (fun ((k, l), pt) ->
      Curve.equal
        (Curve.mul curve (B.add k l) pt)
        (Curve.add curve (Curve.mul curve k pt) (Curve.mul curve l pt)))

let prop_mul_composes =
  QCheck2.Test.make ~name:"k.(l.P) = (k*l).P" ~count:100
    QCheck2.Gen.(pair (pair gen_scalar gen_scalar) gen_subgroup_point)
    (fun ((k, l), pt) ->
      Curve.equal
        (Curve.mul curve k (Curve.mul curve l pt))
        (Curve.mul curve (B.mul k l) pt))

let prop_scalar_mod_q =
  QCheck2.Test.make ~name:"k.P = (k mod q).P on subgroup" ~count:50
    QCheck2.Gen.(pair gen_scalar gen_subgroup_point)
    (fun (k, pt) ->
      Curve.equal (Curve.mul curve k pt) (Curve.mul curve (B.erem k q) pt))

let prop_on_curve_closed =
  QCheck2.Test.make ~name:"addition stays on curve" ~count:100
    QCheck2.Gen.(pair gen_subgroup_point gen_subgroup_point)
    (fun (a, b) -> Curve.on_curve curve (Curve.add curve a b))

(* --- scalar-multiplication path equivalence ---

   Three independent implementations must agree everywhere: the reference
   double-and-add ladder, the wNAF path behind Curve.mul, and the
   fixed-base table. *)

let table_g = Curve.Table.create curve ~bits:(B.bit_length q) g

let check_paths name k pt tbl =
  let reference = Curve.mul_double_add curve k pt in
  if not (Curve.equal (Curve.mul curve k pt) reference) then
    Alcotest.fail (name ^ ": wNAF disagrees with ladder");
  match tbl with
  | None -> ()
  | Some tbl ->
      if not (Curve.equal (Curve.Table.mul tbl k) reference) then
        Alcotest.fail (name ^ ": table disagrees with ladder")

let test_mul_paths_edge_scalars () =
  let cases =
    [
      ("0", B.zero); ("1", B.one); ("2", B.two); ("3", B.of_int 3);
      ("q-1", B.pred q); ("q", q); ("q+1", B.succ q);
      ("2^40", B.pow B.two 40);
      ("2^40+1", B.succ (B.pow B.two 40));
      ("2^63", B.pow B.two 63);
      ("0xFF<<50", B.shift_left (B.of_int 0xFF) 50);
      ("-1", B.of_int (-1)); ("-(q-1)", B.neg (B.pred q));
      ("all-ones 60", B.pred (B.pow B.two 60));
      ("beyond table bits", B.mul q q);
    ]
  in
  List.iter (fun (name, k) -> check_paths name k g (Some table_g)) cases;
  (* A non-generator variable base exercises wNAF without the table. *)
  let h = Pairing.hash_to_g1 prms "mul-paths-var-base" in
  List.iter (fun (name, k) -> check_paths ("h: " ^ name) k h None) cases

let test_mul_paths_two_torsion () =
  (* (0,0) is 2-torsion: odd-multiple tables collapse, forcing both the
     wNAF path and the fixed-base table onto their fallbacks. *)
  let t = Curve.make curve ~x:(Fp.zero fp) ~y:(Fp.zero fp) in
  let tbl = Curve.Table.create curve ~bits:(B.bit_length q) t in
  List.iter
    (fun (name, k) -> check_paths ("2-torsion " ^ name) k t (Some tbl))
    [ ("2", B.two); ("big even", B.mul q q); ("big odd", B.succ (B.mul q q)) ];
  check_paths "infinity base" (B.of_int 12345) Curve.infinity
    (Some (Curve.Table.create curve ~bits:(B.bit_length q) Curve.infinity))

let prop_mul_paths_agree =
  let gen_wide_scalar =
    QCheck2.Gen.(
      let* bytes = string_size ~gen:char (int_range 0 20) in
      let* negate = bool in
      let v = B.of_bytes_be bytes in
      return (if negate then B.neg v else v))
  in
  QCheck2.Test.make ~name:"mul = mul_double_add = Table.mul" ~count:100
    gen_wide_scalar
    (fun k ->
      let reference = Curve.mul_double_add curve k g in
      Curve.equal (Curve.mul curve k g) reference
      && Curve.equal (Curve.Table.mul table_g k) reference)

let msm_reference pairs =
  List.fold_left
    (fun acc (k, p) -> Curve.add curve acc (Curve.mul curve k p))
    Curve.infinity pairs

let prop_msm_agrees =
  (* Random mixes of wide/negative scalars and subgroup points, plus the
     occasional infinity term. *)
  let gen_term =
    QCheck2.Gen.(
      let* bytes = string_size ~gen:char (int_range 0 12) in
      let* negate = bool in
      let* inf = frequency [ (9, return false); (1, return true) ] in
      let* p = gen_subgroup_point in
      let k = B.of_bytes_be bytes in
      let k = if negate then B.neg k else k in
      return (k, if inf then Curve.infinity else p))
  in
  QCheck2.Test.make ~name:"msm = sum of muls" ~count:50
    QCheck2.Gen.(list_size (int_range 0 10) gen_term)
    (fun pairs -> Curve.equal (Curve.msm curve pairs) (msm_reference pairs))

let test_msm_edges () =
  let check name pairs =
    Alcotest.check point name (msm_reference pairs) (Curve.msm curve pairs)
  in
  check "empty" [];
  check "single" [ (B.of_int 7, g) ];
  check "zero scalars" [ (B.zero, g); (B.zero, Curve.mul curve B.two g) ];
  check "cancellation" [ (B.of_int 5, g); (B.of_int (-5), g) ];
  (* 2-torsion terms take the low-order fallback inside msm. *)
  let t = Curve.make curve ~x:(Fp.zero fp) ~y:(Fp.zero fp) in
  check "2-torsion mix" [ (B.of_int 3, t); (B.of_int 11, g); (q, t) ];
  check "full-order point" [ (B.of_int 9, Curve.mul curve B.two g); (B.of_int 4, t) ];
  check "wide scalars" [ (B.mul q q, g); (B.neg (B.succ q), g) ]

let test_mul_paths_all_param_sets () =
  (* Every named parameter set (both curve families, up to 512-bit p). *)
  let rng = Hashing.Drbg.create ~seed:"mul-paths-params" () in
  List.iter
    (fun name ->
      match Pairing.by_name name with
      | None -> Alcotest.fail ("unknown params " ^ name)
      | Some prms ->
          let curve = prms.Pairing.curve in
          let g = prms.Pairing.g in
          let q = prms.Pairing.q in
          let tbl = Curve.Table.create curve ~bits:(B.bit_length q) g in
          let scalars =
            [ B.zero; B.one; B.pred q; q;
              B.pow B.two (B.bit_length q - 1);
              B.succ (B.pow B.two (B.bit_length q - 1)) ]
            @ List.init 3 (fun _ -> Pairing.random_scalar prms rng)
          in
          List.iter
            (fun k ->
              let reference = Curve.mul_double_add curve k g in
              if not (Curve.equal (Curve.mul curve k g) reference) then
                Alcotest.fail (name ^ ": wNAF");
              if not (Curve.equal (Curve.Table.mul tbl k) reference) then
                Alcotest.fail (name ^ ": table"))
            scalars)
    Pairing.all_names

let prop_bytes_roundtrip =
  QCheck2.Test.make ~name:"point codec roundtrip" ~count:100 gen_subgroup_point
    (fun a -> Curve.of_bytes curve (Curve.to_bytes curve a) = Some a)

let test_infinity_codec () =
  Alcotest.(check string) "encoding" "\x00" (Curve.to_bytes curve Curve.infinity);
  Alcotest.(check bool) "roundtrip" true
    (Curve.of_bytes curve "\x00" = Some Curve.infinity)

let test_of_bytes_rejects () =
  Alcotest.(check bool) "bad tag" true (Curve.of_bytes curve (String.make (Curve.byte_length curve) '\x07') = None);
  Alcotest.(check bool) "bad length" true (Curve.of_bytes curve "\x02\x01" = None);
  (* x with no point on the curve: find one by scanning. *)
  let rec non_residue_x i =
    let x = Fp.of_int fp i in
    match Curve.lift_x curve x with
    | None -> x
    | Some _ -> non_residue_x (i + 1)
  in
  let x = non_residue_x 2 in
  let enc = "\x02" ^ Fp.to_bytes fp x in
  Alcotest.(check bool) "off-curve x" true (Curve.of_bytes curve enc = None)

let test_lift_x_ordering () =
  match Curve.lift_x curve (Fp.of_int fp 5) with
  | None -> () (* nothing to check for this x on these parameters *)
  | Some (lo, hi) -> (
      match (lo, hi) with
      | Curve.Affine a, Curve.Affine b ->
          Alcotest.(check bool) "ordered" true
            (B.compare (Fp.to_bigint fp a.y) (Fp.to_bigint fp b.y) <= 0)
      | _ -> Alcotest.fail "lift_x returned infinity")

let test_hash_to_g1_properties () =
  let seen = Hashtbl.create 16 in
  for i = 1 to 20 do
    let pt = Pairing.hash_to_g1 prms (Printf.sprintf "msg-%d" i) in
    Alcotest.(check bool) "in subgroup" true (Pairing.in_g1 prms pt);
    Alcotest.(check bool) "not infinity" false (Curve.is_infinity pt);
    Hashtbl.replace seen (Curve.to_bytes curve pt) ()
  done;
  Alcotest.(check int) "all distinct" 20 (Hashtbl.length seen);
  (* Determinism. *)
  Alcotest.check point "deterministic" (Pairing.hash_to_g1 prms "msg-1")
    (Pairing.hash_to_g1 prms "msg-1")

let test_random_scalar_range () =
  for _ = 1 to 100 do
    let k = Pairing.random_scalar prms rng in
    if B.sign k <= 0 || B.compare k q >= 0 then Alcotest.fail "scalar out of range"
  done

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "curve"
    [
      ( "structure",
        [
          Alcotest.test_case "generator" `Quick test_generator_on_curve;
          Alcotest.test_case "make rejects" `Quick test_make_rejects_off_curve;
          Alcotest.test_case "identity laws" `Quick test_identity_laws;
          Alcotest.test_case "2-torsion" `Quick test_two_torsion;
          Alcotest.test_case "group order" `Quick test_group_order;
          Alcotest.test_case "#E kills all" `Quick test_full_order_kills_any_point;
        ] );
      ( "group-laws",
        qc
          [
            prop_add_commutative; prop_add_associative; prop_double_is_add;
            prop_mul_distributes; prop_mul_composes; prop_scalar_mod_q;
            prop_on_curve_closed;
          ] );
      ( "mul-paths",
        qc [ prop_mul_paths_agree; prop_msm_agrees ]
        @ [
            Alcotest.test_case "edge scalars" `Quick test_mul_paths_edge_scalars;
            Alcotest.test_case "2-torsion fallbacks" `Quick test_mul_paths_two_torsion;
            Alcotest.test_case "msm edges" `Quick test_msm_edges;
            Alcotest.test_case "all parameter sets" `Slow test_mul_paths_all_param_sets;
          ] );
      ( "codec",
        qc [ prop_bytes_roundtrip ]
        @ [
            Alcotest.test_case "infinity" `Quick test_infinity_codec;
            Alcotest.test_case "rejects" `Quick test_of_bytes_rejects;
            Alcotest.test_case "lift_x ordering" `Quick test_lift_x_ordering;
          ] );
      ( "hash-to-g1",
        [
          Alcotest.test_case "properties" `Quick test_hash_to_g1_properties;
          Alcotest.test_case "random scalar" `Quick test_random_scalar_range;
        ] );
    ]
