(* Pairing outsourcing: honest agreement with the on-device pairing,
   the Liu-Cao forgery against the published check (arXiv:1512.05413),
   and the adversary battery against the hardened check — on every
   parameter set. The forgery test is the regression pin for the bug
   this module exists to document: a malicious helper that multiplies
   the main slot of BOTH blinded runs by one factor mu passes every
   published verification equation and shifts the output by mu. *)

module B = Bigint

let rng = Hashing.Drbg.create ~seed:"delegate-tests" ()

let with_set name f =
  match Pairing.by_name name with
  | None -> Alcotest.failf "unknown parameter set %s" name
  | Some prms -> f prms (Delegate.make prms)

let honest prms : Delegate.transport = fun queries -> Delegate.serve prms queries

(* A malicious helper: serve honestly, then multiply the main slot of
   every reply by [mu]. Consistent across runs — the Liu-Cao shape. *)
let shift_slot0 prms mu : Delegate.transport =
 fun queries ->
  let r = Delegate.serve prms queries in
  r.(0) <- Pairing.gt_mul prms r.(0) mu;
  r

let random_point prms =
  let s = Pairing.random_scalar prms rng in
  Curve.mul prms.Pairing.curve s prms.Pairing.g

(* --- honest runs agree with the on-device pairing, both modes --- *)

let check_honest_set name =
  with_set name (fun prms ctx ->
      let a = random_point prms and b = random_point prms in
      let expected = Pairing.pairing prms a b in
      let h1 = honest prms and h2 = honest prms in
      (match Delegate.pair ctx ~mode:Published rng ~helper1:h1 ~helper2:h2 ~a ~b with
      | Ok v ->
          Alcotest.(check bool)
            (name ^ ": published honest value") true
            (Pairing.gt_equal v expected)
      | Error e -> Alcotest.failf "%s published honest: %s" name e);
      match Delegate.pair ctx ~mode:Hardened rng ~helper1:h1 ~helper2:h2 ~a ~b with
      | Ok v ->
          Alcotest.(check bool)
            (name ^ ": hardened honest value") true
            (Pairing.gt_equal v expected)
      | Error e -> Alcotest.failf "%s hardened honest: %s" name e)

let test_honest_toy () = List.iter check_honest_set [ "toy64"; "toy64b" ]
let test_honest_all () = List.iter check_honest_set Pairing.all_names

let prop_honest_agreement =
  let prms = Pairing.toy64 () in
  let ctx = Delegate.make prms in
  QCheck2.Test.make ~name:"delegated pair = on-device pair (hardened)" ~count:10
    QCheck2.Gen.(pair (map B.of_int (int_range 1 1_000_000)) (map B.of_int (int_range 1 1_000_000)))
    (fun (x, y) ->
      let a = Curve.mul prms.Pairing.curve x prms.Pairing.g in
      let b = Curve.mul prms.Pairing.curve y prms.Pairing.g in
      match
        Delegate.pair ctx ~mode:Hardened rng ~helper1:(honest prms)
          ~helper2:(honest prms) ~a ~b
      with
      | Ok v -> Pairing.gt_equal v (Pairing.pairing prms a b)
      | Error _ -> false)

(* --- the Liu-Cao forgery ---

   mu in GT: the published check accepts and the output is off by mu.
   The hardened check's secret exponent c breaks the consistency the
   forgery relies on (mu^c = mu only with probability 2^-64). *)

let check_forgery_set name =
  with_set name (fun prms ctx ->
      let a = random_point prms and b = random_point prms in
      let expected = Pairing.pairing prms a b in
      let mu =
        Pairing.gt_pow prms (Pairing.pairing prms prms.Pairing.g prms.Pairing.g)
          (B.of_int 123457)
      in
      let evil1 = shift_slot0 prms mu and h2 = honest prms in
      (match Delegate.pair ctx ~mode:Published rng ~helper1:evil1 ~helper2:h2 ~a ~b with
      | Ok v ->
          Alcotest.(check bool)
            (name ^ ": forgery PASSES the published check") true
            (Pairing.gt_equal v (Pairing.gt_mul prms expected mu));
          Alcotest.(check bool)
            (name ^ ": forged output is wrong") false
            (Pairing.gt_equal v expected)
      | Error e -> Alcotest.failf "%s: published check caught the forgery (%s)?" name e);
      match Delegate.pair ctx ~mode:Hardened rng ~helper1:evil1 ~helper2:h2 ~a ~b with
      | Ok _ -> Alcotest.failf "%s: hardened check accepted the forgery" name
      | Error _ -> ())

let test_forgery_toy () = List.iter check_forgery_set [ "toy64"; "toy64b" ]
let test_forgery_all () = List.iter check_forgery_set Pairing.all_names

(* --- adversary battery against the hardened check --- *)

(* Wrong-subgroup shift: mu = 2 lives in GF(p)* and (q odd, q | p+1,
   gcd(q, p-1) = 1) meets the order-q subgroup only at 1, so the shift
   escapes GT. The published check STILL accepts — both runs shift
   alike — which is exactly Liu-Cao's point that the equations do no
   membership filtering; the hardened check catches it via R^q = 1. *)
let check_wrong_subgroup name =
  with_set name (fun prms ctx ->
      let fp = prms.Pairing.fp in
      let a = random_point prms and b = random_point prms in
      let mu = Fp2.add fp (Fp2.one fp) (Fp2.one fp) in
      let evil1 = shift_slot0 prms mu and h2 = honest prms in
      (match Delegate.pair ctx ~mode:Published rng ~helper1:evil1 ~helper2:h2 ~a ~b with
      | Ok v ->
          Alcotest.(check bool)
            (name ^ ": non-GT forgery passes published check") false
            (Pairing.gt_equal v (Pairing.pairing prms a b))
      | Error e -> Alcotest.failf "%s: published caught non-GT shift (%s)?" name e);
      match Delegate.pair ctx ~mode:Hardened rng ~helper1:evil1 ~helper2:h2 ~a ~b with
      | Ok _ -> Alcotest.failf "%s: hardened accepted non-GT shift" name
      | Error _ -> ())

(* Identity smuggling: a helper that blanks its main slot to 1. *)
let check_identity_smuggle name =
  with_set name (fun prms ctx ->
      let a = random_point prms and b = random_point prms in
      let evil1 : Delegate.transport =
       fun queries ->
        let r = Delegate.serve prms queries in
        r.(0) <- Pairing.gt_one prms;
        r
      in
      match
        Delegate.pair ctx ~mode:Hardened rng ~helper1:evil1 ~helper2:(honest prms)
          ~a ~b
      with
      | Ok _ -> Alcotest.failf "%s: hardened accepted identity-valued slot" name
      | Error _ -> ())

(* Response reordering: helper 2 swaps its second main slot with the
   anchored test slot. (Swapping the two MAIN slots of helper 2 leaves
   the recovered product unchanged — not a forgery — so the detectable
   case is displacing the anchor.) *)
let check_response_swap name =
  with_set name (fun prms ctx ->
      let a = random_point prms and b = random_point prms in
      let evil2 : Delegate.transport =
       fun queries ->
        let r = Delegate.serve prms queries in
        if Array.length r = 3 then begin
          let t = r.(1) in
          r.(1) <- r.(2);
          r.(2) <- t
        end;
        r
      in
      (match
         Delegate.pair ctx ~mode:Published rng ~helper1:(honest prms) ~helper2:evil2
           ~a ~b
       with
      | Ok _ -> Alcotest.failf "%s: published accepted swapped responses" name
      | Error _ -> ());
      match
        Delegate.pair ctx ~mode:Hardened rng ~helper1:(honest prms) ~helper2:evil2
          ~a ~b
      with
      | Ok _ -> Alcotest.failf "%s: hardened accepted swapped responses" name
      | Error _ -> ())

(* Arity mismatch: a helper that returns the wrong number of slots. *)
let check_arity name =
  with_set name (fun prms ctx ->
      let a = random_point prms and b = random_point prms in
      let evil1 : Delegate.transport =
       fun queries ->
        let r = Delegate.serve prms queries in
        Array.append r [| Pairing.gt_one prms |]
      in
      match
        Delegate.pair ctx ~mode:Hardened rng ~helper1:evil1 ~helper2:(honest prms)
          ~a ~b
      with
      | Ok _ -> Alcotest.failf "%s: accepted extra response slot" name
      | Error e ->
          Alcotest.(check string)
            (name ^ ": arity error") "helper response arity mismatch" e)

(* Replayed blinding tuple: a second wrap under the same tuple must
   raise — reuse lets a helper correlate the two queries and cancel
   the blinding. *)
let check_replay name =
  with_set name (fun prms ctx ->
      let a = random_point prms and b = random_point prms in
      let bl = Delegate.blind ctx rng in
      let (_ : Delegate.wrap) = Delegate.wrap ctx bl ~a ~b in
      Alcotest.check_raises (name ^ ": spent tuple rejected")
        (Invalid_argument "Delegate.wrap: blinding tuple already spent") (fun () ->
          ignore (Delegate.wrap ctx bl ~a ~b)))

let adversaries_on names () =
  List.iter
    (fun name ->
      check_wrong_subgroup name;
      check_identity_smuggle name;
      check_response_swap name;
      check_arity name;
      check_replay name)
    names

(* --- blinding tuple audit --- *)

let test_audit () =
  List.iter
    (fun name ->
      with_set name (fun prms ctx ->
          let bl = Delegate.blind ctx rng in
          Alcotest.(check bool) (name ^ ": fresh tuple audits") true
            (Delegate.audit ctx rng bl);
          (* tampered point: correction no longer matches *)
          let t1 = { bl with Delegate.v1 = random_point prms } in
          Alcotest.(check bool) (name ^ ": tampered v1 rejected") false
            (Delegate.audit ctx rng t1);
          (* tampered exponent *)
          let t2 = { bl with Delegate.w_chi = B.succ bl.Delegate.w_chi } in
          Alcotest.(check bool) (name ^ ": tampered w_chi rejected") false
            (Delegate.audit ctx rng t2);
          (* mix-and-match: corrections swapped between slots *)
          let t3 =
            { bl with Delegate.chi = bl.Delegate.chi34; chi34 = bl.Delegate.chi }
          in
          Alcotest.(check bool) (name ^ ": swapped corrections rejected") false
            (Delegate.audit ctx rng t3);
          (* a second fresh tuple from the same stream still audits *)
          Alcotest.(check bool) (name ^ ": next tuple audits") true
            (Delegate.audit ctx rng (Delegate.blind ctx rng))))
    [ "toy64"; "toy64b" ]

(* --- delegated equality: the shape Tre verification uses --- *)

let test_delegated_equality () =
  List.iter
    (fun name ->
      with_set name (fun prms ctx ->
          let curve = prms.Pairing.curve in
          let g = prms.Pairing.g in
          let s = Pairing.random_scalar prms rng in
          let h = random_point prms in
          let sg = Curve.mul curve s g in
          let sh = Curve.mul curve s h in
          let h1 = honest prms and h2 = honest prms in
          (* e(sG, H) = e(G, sH): true *)
          (match
             Delegate.equal ctx rng ~helper1:h1 ~helper2:h2 ~lhs:(sg, h) ~rhs:(g, sh)
           with
          | Ok v -> Alcotest.(check bool) (name ^ ": equal holds") true v
          | Error e -> Alcotest.failf "%s equality: %s" name e);
          (* perturbed right side: false *)
          let bad = Curve.add curve sh g in
          match
            Delegate.equal ctx rng ~helper1:h1 ~helper2:h2 ~lhs:(sg, h) ~rhs:(g, bad)
          with
          | Ok v -> Alcotest.(check bool) (name ^ ": inequality detected") false v
          | Error e -> Alcotest.failf "%s inequality: %s" name e))
    [ "toy64"; "toy64b" ]

(* --- the thin-client tier end to end: Tre key-update verification --- *)

let test_tre_delegated_verify () =
  List.iter
    (fun name ->
      with_set name (fun prms _ctx ->
          let srv_sec, srv_pub = Tre.Server.keygen prms rng in
          let vrf = Tre.Verifier.create prms srv_pub in
          let upd = Tre.issue_update prms srv_sec "epoch-7" in
          let h1 = honest prms and h2 = honest prms in
          Alcotest.(check bool) (name ^ ": honest helpers accept a valid update")
            true
            (Tre.Verifier.verify_update_delegated prms vrf rng ~helper1:h1
               ~helper2:h2 upd);
          (* forged update: valid point, wrong signature *)
          let forged = Tre.issue_update prms srv_sec "epoch-8" in
          let bad = { upd with Tre.update_value = forged.Tre.update_value } in
          Alcotest.(check bool) (name ^ ": forged update rejected") false
            (Tre.Verifier.verify_update_delegated prms vrf rng ~helper1:h1
               ~helper2:h2 bad);
          (* Liu-Cao helper: consistent GT shift on the main slot must
             not flip a forged update to valid or corrupt a valid one *)
          let mu =
            Pairing.gt_pow prms
              (Pairing.pairing prms prms.Pairing.g prms.Pairing.g)
              (B.of_int 999331)
          in
          let evil1 = shift_slot0 prms mu in
          Alcotest.(check bool) (name ^ ": malicious helper rejected") false
            (Tre.Verifier.verify_update_delegated prms vrf rng ~helper1:evil1
               ~helper2:h2 upd);
          (* agreement with the on-device verifier on both verdicts *)
          Alcotest.(check bool) (name ^ ": on-device agrees (valid)") true
            (Tre.Verifier.verify_update prms vrf upd);
          Alcotest.(check bool) (name ^ ": on-device agrees (forged)") false
            (Tre.Verifier.verify_update prms vrf bad)))
    [ "toy64"; "toy64b" ]

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "delegate"
    [
      ( "honest",
        Alcotest.test_case "toy sets both modes" `Quick test_honest_toy
        :: Alcotest.test_case "all sets both modes" `Slow test_honest_all
        :: qc [ prop_honest_agreement ] );
      ( "liu-cao forgery",
        [
          Alcotest.test_case "toy sets" `Quick test_forgery_toy;
          Alcotest.test_case "all sets" `Slow test_forgery_all;
        ] );
      ( "adversaries",
        [
          Alcotest.test_case "toy sets" `Quick (adversaries_on [ "toy64"; "toy64b" ]);
          Alcotest.test_case "all sets" `Slow (adversaries_on Pairing.all_names);
        ] );
      ( "blinding",
        [
          Alcotest.test_case "audit" `Quick test_audit;
          Alcotest.test_case "delegated equality" `Quick test_delegated_equality;
        ] );
      ( "tre thin client",
        [ Alcotest.test_case "delegated update verify" `Quick test_tre_delegated_verify ] );
    ]
