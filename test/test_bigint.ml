(* Tests for the arbitrary-precision substrate: ring axioms against a
   native-int oracle, full-width algebraic identities, Knuth division,
   Montgomery arithmetic, primality, codecs. *)

module B = Bigint

let b = Alcotest.testable B.pp B.equal

(* Generator of big integers from a bounded number of random bits, signed. *)
let gen_bigint ?(max_bits = 400) () =
  QCheck2.Gen.(
    let* bits = int_range 0 max_bits in
    let* bytes = string_size ~gen:char (return ((bits + 7) / 8)) in
    let* negate = bool in
    let v = B.of_bytes_be bytes in
    return (if negate then B.neg v else v))

let gen_positive ?(max_bits = 400) () =
  QCheck2.Gen.map B.abs (gen_bigint ~max_bits ())

(* --- oracle tests against native ints --- *)

let signed_int_gen = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

let oracle2 name f g =
  QCheck2.Test.make ~name ~count:500 QCheck2.Gen.(pair signed_int_gen signed_int_gen)
    (fun (x, y) -> B.to_int_opt (f (B.of_int x) (B.of_int y)) = Some (g x y))

let prop_add_oracle = oracle2 "add matches int" B.add ( + )
let prop_sub_oracle = oracle2 "sub matches int" B.sub ( - )
let prop_mul_oracle =
  QCheck2.Test.make ~name:"mul matches int" ~count:500
    QCheck2.Gen.(pair (int_range (-2_000_000) 2_000_000) (int_range (-2_000_000) 2_000_000))
    (fun (x, y) -> B.to_int_opt (B.mul (B.of_int x) (B.of_int y)) = Some (x * y))

let prop_divmod_oracle =
  QCheck2.Test.make ~name:"divmod matches int (truncating)" ~count:500
    QCheck2.Gen.(pair signed_int_gen signed_int_gen)
    (fun (x, y) ->
      QCheck2.assume (y <> 0);
      let q, r = B.divmod (B.of_int x) (B.of_int y) in
      B.to_int_opt q = Some (x / y) && B.to_int_opt r = Some (x mod y))

let prop_compare_oracle =
  QCheck2.Test.make ~name:"compare matches int" ~count:500
    QCheck2.Gen.(pair signed_int_gen signed_int_gen)
    (fun (x, y) -> B.compare (B.of_int x) (B.of_int y) = Stdlib.compare x y)

(* --- full-width algebraic identities --- *)

let pair_big = QCheck2.Gen.(pair (gen_bigint ()) (gen_bigint ()))
let triple_big = QCheck2.Gen.(triple (gen_bigint ()) (gen_bigint ()) (gen_bigint ()))

let prop_add_comm =
  QCheck2.Test.make ~name:"a+b = b+a" ~count:300 pair_big (fun (a, b) ->
      B.equal (B.add a b) (B.add b a))

let prop_mul_comm =
  QCheck2.Test.make ~name:"a*b = b*a" ~count:300 pair_big (fun (a, b) ->
      B.equal (B.mul a b) (B.mul b a))

let prop_mul_assoc =
  QCheck2.Test.make ~name:"(a*b)*c = a*(b*c)" ~count:200 triple_big
    (fun (a, b, c) -> B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)))

let prop_distrib =
  QCheck2.Test.make ~name:"a*(b+c) = a*b + a*c" ~count:200 triple_big
    (fun (a, b, c) -> B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_add_sub_inverse =
  QCheck2.Test.make ~name:"(a+b)-b = a" ~count:300 pair_big (fun (a, b) ->
      B.equal (B.sub (B.add a b) b) a)

let prop_divmod_reconstruct =
  QCheck2.Test.make ~name:"a = q*b + r, |r| < |b|, sign(r) = sign(a)" ~count:500
    QCheck2.Gen.(pair (gen_bigint ~max_bits:600 ()) (gen_bigint ~max_bits:300 ()))
    (fun (a, b) ->
      QCheck2.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_erem_range =
  QCheck2.Test.make ~name:"erem in [0, |m|)" ~count:500
    QCheck2.Gen.(pair (gen_bigint ()) (gen_bigint ~max_bits:200 ()))
    (fun (a, m) ->
      QCheck2.assume (not (B.is_zero m));
      let r = B.erem a m in
      B.sign r >= 0 && B.compare r (B.abs m) < 0
      && B.is_zero (B.erem (B.sub a r) m))

let prop_sqr =
  QCheck2.Test.make ~name:"sqr a = a*a" ~count:300 (gen_bigint ())
    (fun a -> B.equal (B.sqr a) (B.mul a a))

(* Nat.sqr has a dedicated schoolbook + Karatsuba implementation; pin it
   to [mul a a] exactly at the limb counts where the algorithm changes
   shape (single limb, around the 32-limb Karatsuba threshold, and around
   the first recursive split at twice the threshold). *)
let test_nat_sqr_limb_widths () =
  let rng = Hashing.Drbg.create ~seed:"nat-sqr-widths" () in
  Alcotest.(check bool) "zero" true (Nat.equal (Nat.sqr Nat.zero) Nat.zero);
  List.iter
    (fun limbs ->
      for rep = 1 to 5 do
        (* Random value with exactly [limbs] limbs: force the top bit. *)
        let bits = limbs * Nat.base_bits in
        let raw = B.abs (B.of_bytes_be (Hashing.Drbg.generate rng ((bits + 7) / 8))) in
        let top = B.shift_left B.one (bits - 1) in
        let v = Bigint.magnitude (B.add top (B.erem raw top)) in
        if not (Nat.equal (Nat.sqr v) (Nat.mul v v)) then
          Alcotest.fail (Printf.sprintf "%d limbs, rep %d" limbs rep)
      done)
    [ 1; 2; 3; 31; 32; 33; 63; 64; 65; 127; 128 ]

let prop_nat_sqr =
  QCheck2.Test.make ~name:"Nat.sqr = Nat.mul a a (wide)" ~count:100
    (gen_positive ~max_bits:4000 ())
    (fun a ->
      let n = Bigint.magnitude a in
      Nat.equal (Nat.sqr n) (Nat.mul n n))

let prop_karatsuba_vs_wide =
  (* Force operands wide enough to cross the Karatsuba threshold and check
     the identity (a+b)^2 = a^2 + 2ab + b^2 which mixes both paths. *)
  QCheck2.Test.make ~name:"karatsuba consistency via (a+b)^2" ~count:50
    QCheck2.Gen.(pair (gen_positive ~max_bits:3000 ()) (gen_positive ~max_bits:3000 ()))
    (fun (a, b) ->
      let lhs = B.sqr (B.add a b) in
      let rhs = B.add (B.add (B.sqr a) (B.shift_left (B.mul a b) 1)) (B.sqr b) in
      B.equal lhs rhs)

let prop_shift =
  QCheck2.Test.make ~name:"shifts are mul/div by powers of two" ~count:300
    QCheck2.Gen.(pair (gen_positive ()) (int_range 0 200))
    (fun (a, s) ->
      B.equal (B.shift_left a s) (B.mul a (B.pow B.two s))
      && B.equal (B.shift_right a s) (B.div a (B.pow B.two s)))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"of_string (to_string a) = a" ~count:300 (gen_bigint ())
    (fun a -> B.equal (B.of_string (B.to_string a)) a)

let prop_hex_roundtrip =
  QCheck2.Test.make ~name:"of_string (to_string_hex a) = a" ~count:300 (gen_bigint ())
    (fun a -> B.equal (B.of_string (B.to_string_hex a)) a)

let prop_bytes_roundtrip =
  QCheck2.Test.make ~name:"of_bytes_be (to_bytes_be a) = a" ~count:300 (gen_positive ())
    (fun a -> B.equal (B.of_bytes_be (B.to_bytes_be a)) a)

let prop_bit_length =
  QCheck2.Test.make ~name:"2^(n-1) <= |a| < 2^n for n = bit_length" ~count:300
    (gen_positive ()) (fun a ->
      QCheck2.assume (not (B.is_zero a));
      let n = B.bit_length a in
      B.compare (B.abs a) (B.pow B.two (n - 1)) >= 0
      && B.compare (B.abs a) (B.pow B.two n) < 0)

(* --- modular arithmetic --- *)

let prop_egcd =
  QCheck2.Test.make ~name:"egcd: a*x + b*y = g = gcd" ~count:300 pair_big
    (fun (a, bb) ->
      let g, x, y = Modarith.egcd a bb in
      B.equal g (Modarith.gcd a bb)
      && B.equal (B.add (B.mul a x) (B.mul bb y)) g
      && B.sign g >= 0)

let prop_invmod =
  QCheck2.Test.make ~name:"a * invmod a m = 1 (mod m)" ~count:300
    QCheck2.Gen.(pair (gen_bigint ()) (gen_positive ~max_bits:256 ()))
    (fun (a, m) ->
      QCheck2.assume (B.compare m B.two > 0);
      QCheck2.assume (B.equal (Modarith.gcd a m) B.one);
      let inv = Modarith.invmod a m in
      B.equal (B.erem (B.mul a inv) m) B.one)

let prop_powmod_matches_naive =
  QCheck2.Test.make ~name:"powmod = naive repeated mul" ~count:100
    QCheck2.Gen.(
      triple (gen_positive ~max_bits:64 ()) (int_range 0 40) (gen_positive ~max_bits:64 ()))
    (fun (base, e, m) ->
      QCheck2.assume (B.compare m B.two > 0);
      let naive = B.erem (B.pow base e) m in
      B.equal (Modarith.powmod base (B.of_int e) m) naive)

let prop_powmod_even_modulus =
  QCheck2.Test.make ~name:"powmod handles even moduli" ~count:100
    QCheck2.Gen.(pair (gen_positive ~max_bits:64 ()) (int_range 0 30))
    (fun (base, e) ->
      let m = B.of_int 1024 in
      B.equal (Modarith.powmod base (B.of_int e) m) (B.erem (B.pow base e) m))

let prop_fermat =
  (* Fermat's little theorem on a fixed 128-bit prime exercises Montgomery
     exponentiation at full width. *)
  let p = B.of_string "340282366920938463463374607431768211507" in
  QCheck2.Test.make ~name:"a^(p-1) = 1 mod p (128-bit prime)" ~count:100
    (gen_positive ~max_bits:256 ())
    (fun a ->
      QCheck2.assume (not (B.is_zero (B.erem a p)));
      B.equal (Modarith.powmod a (B.pred p) p) B.one)

let prop_mont_roundtrip =
  QCheck2.Test.make ~name:"Montgomery of/to roundtrip" ~count:200
    QCheck2.Gen.(pair (gen_bigint ()) (gen_positive ~max_bits:256 ()))
    (fun (a, m) ->
      QCheck2.assume (B.is_odd m && B.compare m (B.of_int 3) >= 0);
      let ctx = Modarith.Mont.create m in
      B.equal (Modarith.Mont.to_bigint ctx (Modarith.Mont.of_bigint ctx a)) (B.erem a m))

let prop_mont_mul =
  QCheck2.Test.make ~name:"Montgomery mul = bigint mul mod m" ~count:200
    QCheck2.Gen.(
      triple (gen_positive ~max_bits:300 ()) (gen_positive ~max_bits:300 ())
        (gen_positive ~max_bits:300 ()))
    (fun (a, bb, m) ->
      QCheck2.assume (B.is_odd m && B.compare m (B.of_int 3) >= 0);
      let ctx = Modarith.Mont.create m in
      let open Modarith.Mont in
      B.equal
        (to_bigint ctx (mul ctx (of_bigint ctx a) (of_bigint ctx bb)))
        (B.erem (B.mul a bb) m))

let prop_mont_add_sub =
  QCheck2.Test.make ~name:"Montgomery add/sub/neg" ~count:200
    QCheck2.Gen.(
      triple (gen_bigint ()) (gen_bigint ()) (gen_positive ~max_bits:200 ()))
    (fun (a, bb, m) ->
      QCheck2.assume (B.is_odd m && B.compare m (B.of_int 3) >= 0);
      let ctx = Modarith.Mont.create m in
      let open Modarith.Mont in
      let am = of_bigint ctx a and bm = of_bigint ctx bb in
      B.equal (to_bigint ctx (add ctx am bm)) (B.erem (B.add a bb) m)
      && B.equal (to_bigint ctx (sub ctx am bm)) (B.erem (B.sub a bb) m)
      && B.equal (to_bigint ctx (neg ctx am)) (B.erem (B.neg a) m))

(* --- sliding-window exponentiation vs the binary ladder --- *)

let window_prime =
  B.of_string "57896044618658097711785492504343953926634992332820282019728792003956564820063"

let prop_mont_window_pow =
  QCheck2.Test.make ~name:"Mont.pow = Mont.pow_binary" ~count:100
    QCheck2.Gen.(
      triple (gen_positive ~max_bits:300 ()) (gen_positive ~max_bits:400 ())
        (gen_positive ~max_bits:300 ()))
    (fun (a, e, m) ->
      QCheck2.assume (B.is_odd m && B.compare m (B.of_int 3) >= 0);
      let ctx = Modarith.Mont.create m in
      let am = Modarith.Mont.of_bigint ctx a in
      Modarith.Mont.equal (Modarith.Mont.pow ctx am e)
        (Modarith.Mont.pow_binary ctx am e))

let test_window_pow_edge_exponents () =
  let ctx = Modarith.Mont.create window_prime in
  let open Modarith.Mont in
  let a = of_bigint ctx (B.of_int 0xC0FFEE) in
  let check name e =
    if not (equal (pow ctx a e) (pow_binary ctx a e)) then Alcotest.fail name
  in
  check "e = 0" B.zero;
  Alcotest.(check bool) "a^0 = 1" true (equal (pow ctx a B.zero) (one ctx));
  check "e = 1" B.one;
  check "e = 2" B.two;
  check "e = q-1" (B.pred window_prime);
  check "e = q" window_prime;
  (* Long zero runs between set bits exercise the window-skipping path. *)
  check "e = 2^200" (B.pow B.two 200);
  check "e = 2^200 + 1" (B.succ (B.pow B.two 200));
  check "e = 0xFF << 190" (B.shift_left (B.of_int 0xFF) 190);
  check "e = (1<<250) | (1<<125) | 1"
    (B.add (B.pow B.two 250) (B.add (B.pow B.two 125) B.one));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Mont.pow: negative exponent") (fun () ->
      ignore (pow ctx a (B.of_int (-1))))

let prop_jacobi_squares =
  (* Squares mod an odd prime have Jacobi symbol 1. *)
  let p = B.of_string "57896044618658097711785492504343953926634992332820282019728792003956564820063" in
  QCheck2.Test.make ~name:"jacobi (a^2 / p) = 1" ~count:100 (gen_positive ~max_bits:200 ())
    (fun a ->
      QCheck2.assume (not (B.is_zero (B.erem a p)));
      Modarith.jacobi (B.erem (B.sqr a) p) p = 1)

(* --- primality --- *)

let test_small_primes () =
  let known = [ 2; 3; 5; 7; 11; 101; 997 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (string_of_int p) true
        (Prime.is_probably_prime (B.of_int p)))
    known;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (string_of_int c) false
        (Prime.is_probably_prime (B.of_int c)))
    [ 0; 1; 4; 9; 100; 561 (* Carmichael *); 999 ]

let test_known_large_prime () =
  (* 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite (Fermat F7 factor known). *)
  let m127 = B.pred (B.pow B.two 127) in
  Alcotest.(check bool) "2^127-1 prime" true (Prime.is_probably_prime m127);
  let f = B.succ (B.pow B.two 128) in
  Alcotest.(check bool) "2^128+1 composite" false (Prime.is_probably_prime f)

let test_negative_not_prime () =
  Alcotest.(check bool) "-7 not prime" false (Prime.is_probably_prime (B.of_int (-7)))

let test_gen_prime () =
  let rng = Hashing.Drbg.create ~seed:"gen-prime-test" () in
  List.iter
    (fun bits ->
      let p = Prime.gen_prime ~rng ~bits () in
      Alcotest.(check int) (Printf.sprintf "%d bits" bits) bits (B.bit_length p);
      Alcotest.(check bool) "prime" true (Prime.is_probably_prime p))
    [ 16; 64; 128; 256 ]

let test_gen_prime_congruent () =
  let rng = Hashing.Drbg.create ~seed:"gen-prime-congruent-test" () in
  let p = Prime.gen_prime_congruent ~rng ~bits:128 ~modulus:4 ~residue:3 () in
  Alcotest.(check bool) "prime" true (Prime.is_probably_prime p);
  Alcotest.check b "p mod 4 = 3" (B.of_int 3) (B.erem p (B.of_int 4))

let test_knuth_division_structured_fuzz () =
  (* The add-back branch of Knuth's Algorithm D fires with probability
     ~2/base on random inputs, far too rare for qcheck to hit. This fuzz
     biases towards it: dividends packed with maximal limbs and divisors
     whose top limb is just above base/2 maximize qhat overestimation.
     Correctness oracle: a = q*b + r with 0 <= r < b. *)
  let rng = Hashing.Drbg.create ~seed:"knuth-addback" () in
  let biased_limbs n ~top_heavy =
    let raw = Hashing.Drbg.generate rng n in
    String.init n (fun i ->
        if top_heavy || Char.code raw.[i] land 3 <> 0 then '\xff' else raw.[i])
  in
  for _ = 1 to 20_000 do
    let alen = 1 + Char.code (Hashing.Drbg.generate rng 1).[0] mod 12 in
    let blen = 1 + Char.code (Hashing.Drbg.generate rng 1).[0] mod 8 in
    let a = B.of_bytes_be (biased_limbs (4 * alen) ~top_heavy:false) in
    let b = B.of_bytes_be (biased_limbs (4 * blen) ~top_heavy:true) in
    if not (B.is_zero b) then begin
      let q, r = B.divmod a b in
      if not (B.equal a (B.add (B.mul q b) r)) then Alcotest.fail "reconstruction";
      if B.sign r < 0 || B.compare r b >= 0 then Alcotest.fail "remainder range"
    end
  done

(* --- directed edge cases --- *)

let test_zero_behaviour () =
  Alcotest.check b "0+0" B.zero (B.add B.zero B.zero);
  Alcotest.check b "0*x" B.zero (B.mul B.zero (B.of_int 123456));
  Alcotest.(check int) "sign 0" 0 (B.sign B.zero);
  Alcotest.(check int) "bit_length 0" 0 (B.bit_length B.zero);
  Alcotest.(check string) "to_string 0" "0" (B.to_string B.zero);
  Alcotest.check b "neg 0" B.zero (B.neg B.zero);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_to_int_bounds () =
  Alcotest.(check (option int)) "big value" None (B.to_int_opt (B.pow B.two 80));
  Alcotest.(check (option int)) "negative" (Some (-42)) (B.to_int_opt (B.of_int (-42)))

let test_decimal_padding () =
  (* A value whose middle decimal chunk has leading zeros. *)
  let v = B.of_string "1000000001000000001" in
  Alcotest.(check string) "zero-padded chunks" "1000000001000000001" (B.to_string v)

let test_bytes_padding () =
  let v = B.of_int 258 in
  Alcotest.(check string) "padded" "\x00\x00\x01\x02" (B.to_bytes_be ~pad_to:4 v);
  Alcotest.check_raises "too small" (Invalid_argument "Nat.to_bytes_be: value too large")
    (fun () -> ignore (B.to_bytes_be ~pad_to:1 v))

let test_random_below_range () =
  let rng = Hashing.Drbg.create ~seed:"random-below" () in
  let bound = B.of_string "1000000000000000000000000" in
  for _ = 1 to 100 do
    let v = B.random_below rng bound in
    if B.sign v < 0 || B.compare v bound >= 0 then Alcotest.fail "out of range"
  done

let test_random_bits_width () =
  let rng = Hashing.Drbg.create ~seed:"random-bits" () in
  for _ = 1 to 50 do
    if B.bit_length (B.random_bits rng 100) > 100 then Alcotest.fail "too wide"
  done

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bigint"
    [
      ( "oracle",
        q
          [
            prop_add_oracle; prop_sub_oracle; prop_mul_oracle; prop_divmod_oracle;
            prop_compare_oracle;
          ] );
      ( "algebra",
        q
          [
            prop_add_comm; prop_mul_comm; prop_mul_assoc; prop_distrib;
            prop_add_sub_inverse; prop_divmod_reconstruct; prop_erem_range; prop_sqr;
            prop_nat_sqr; prop_karatsuba_vs_wide; prop_shift; prop_bit_length;
          ]
        @ [ Alcotest.test_case "Nat.sqr limb widths" `Quick test_nat_sqr_limb_widths ] );
      ( "codecs",
        q [ prop_string_roundtrip; prop_hex_roundtrip; prop_bytes_roundtrip ]
        @ [
            Alcotest.test_case "decimal padding" `Quick test_decimal_padding;
            Alcotest.test_case "bytes padding" `Quick test_bytes_padding;
          ] );
      ( "modular",
        q
          [
            prop_egcd; prop_invmod; prop_powmod_matches_naive; prop_powmod_even_modulus;
            prop_fermat; prop_mont_roundtrip; prop_mont_mul; prop_mont_add_sub;
            prop_mont_window_pow; prop_jacobi_squares;
          ]
        @ [
            Alcotest.test_case "window pow edge exponents" `Quick
              test_window_pow_edge_exponents;
          ] );
      ( "prime",
        [
          Alcotest.test_case "small primes" `Quick test_small_primes;
          Alcotest.test_case "large known prime" `Quick test_known_large_prime;
          Alcotest.test_case "negative" `Quick test_negative_not_prime;
          Alcotest.test_case "gen_prime" `Slow test_gen_prime;
          Alcotest.test_case "gen_prime_congruent" `Slow test_gen_prime_congruent;
        ] );
      ( "division-fuzz",
        [ Alcotest.test_case "knuth structured fuzz" `Slow test_knuth_division_structured_fuzz ] );
      ( "edge-cases",
        [
          Alcotest.test_case "zero" `Quick test_zero_behaviour;
          Alcotest.test_case "to_int bounds" `Quick test_to_int_bounds;
          Alcotest.test_case "random_below" `Quick test_random_below_range;
          Alcotest.test_case "random_bits" `Quick test_random_bits_width;
        ] );
    ]
