(* The heart of the reproduction: the modified Tate pairing must be
   bilinear, non-degenerate and consistent across parameter sets, and the
   DDH oracle it induces must decide DDH correctly (the "Gap" property of
   Section 4 of the paper). *)

module B = Bigint

let prms = Pairing.toy64 ()
let curve = prms.Pairing.curve
let g = prms.Pairing.g
let q = prms.Pairing.q
let rng = Hashing.Drbg.create ~seed:"pairing-tests" ()

let gt = Alcotest.testable (Fp2.pp prms.Pairing.fp) Fp2.equal

let gen_scalar = QCheck2.Gen.(map B.of_int (int_range 1 1_000_000))

let test_non_degenerate () =
  let e_gg = Pairing.pairing prms g g in
  Alcotest.(check bool) "e(G,G) <> 1" false (Pairing.gt_equal e_gg (Pairing.gt_one prms));
  (* e(G,G) has order exactly q: killed by q, not by smaller shown via q prime. *)
  Alcotest.check gt "e(G,G)^q = 1" (Pairing.gt_one prms) (Pairing.gt_pow prms e_gg q)

let test_infinity_pairs_to_one () =
  Alcotest.check gt "e(O,G) = 1" (Pairing.gt_one prms)
    (Pairing.pairing prms Curve.infinity g);
  Alcotest.check gt "e(G,O) = 1" (Pairing.gt_one prms)
    (Pairing.pairing prms g Curve.infinity)

let prop_bilinear_left =
  QCheck2.Test.make ~name:"e(aP,Q) = e(P,Q)^a" ~count:25 gen_scalar (fun a ->
      let lhs = Pairing.pairing prms (Curve.mul curve a g) g in
      let rhs = Pairing.gt_pow prms (Pairing.pairing prms g g) a in
      Pairing.gt_equal lhs rhs)

let prop_bilinear_right =
  QCheck2.Test.make ~name:"e(P,bQ) = e(P,Q)^b" ~count:25 gen_scalar (fun b ->
      let lhs = Pairing.pairing prms g (Curve.mul curve b g) in
      let rhs = Pairing.gt_pow prms (Pairing.pairing prms g g) b in
      Pairing.gt_equal lhs rhs)

let prop_bilinear_full =
  QCheck2.Test.make ~name:"e(aP,bQ) = e(P,Q)^ab" ~count:15
    QCheck2.Gen.(pair gen_scalar gen_scalar)
    (fun (a, b) ->
      let lhs = Pairing.pairing prms (Curve.mul curve a g) (Curve.mul curve b g) in
      let rhs = Pairing.gt_pow prms (Pairing.pairing prms g g) (B.mul a b) in
      Pairing.gt_equal lhs rhs)

let prop_additive_in_first =
  QCheck2.Test.make ~name:"e(P1+P2,Q) = e(P1,Q).e(P2,Q)" ~count:15
    QCheck2.Gen.(pair gen_scalar gen_scalar)
    (fun (a, b) ->
      let p1 = Curve.mul curve a g and p2 = Curve.mul curve b g in
      let lhs = Pairing.pairing prms (Curve.add curve p1 p2) g in
      let rhs = Pairing.gt_mul prms (Pairing.pairing prms p1 g) (Pairing.pairing prms p2 g) in
      Pairing.gt_equal lhs rhs)

let prop_additive_in_second =
  QCheck2.Test.make ~name:"e(P,Q1+Q2) = e(P,Q1).e(P,Q2)" ~count:15
    QCheck2.Gen.(pair gen_scalar gen_scalar)
    (fun (a, b) ->
      let q1 = Curve.mul curve a g and q2 = Curve.mul curve b g in
      let lhs = Pairing.pairing prms g (Curve.add curve q1 q2) in
      let rhs = Pairing.gt_mul prms (Pairing.pairing prms g q1) (Pairing.pairing prms g q2) in
      Pairing.gt_equal lhs rhs)

let prop_hashed_points_pair_consistently =
  (* Bilinearity must also hold on hash-derived points (the H1 images the
     schemes actually pair). *)
  QCheck2.Test.make ~name:"e(a.H1(s), G) = e(H1(s), aG)" ~count:10
    QCheck2.Gen.(pair gen_scalar (small_string ~gen:printable))
    (fun (a, s) ->
      let h = Pairing.hash_to_g1 prms s in
      Pairing.gt_equal
        (Pairing.pairing prms (Curve.mul curve a h) g)
        (Pairing.pairing prms h (Curve.mul curve a g)))

let test_pairing_product () =
  (* prod of pairings with shared final exponentiation must equal the
     product of individual pairings. *)
  let pts = List.map (fun k -> Curve.mul curve (B.of_int k) g) [ 3; 5; 7; 11 ] in
  let pairs = List.map (fun p -> (p, Curve.mul curve (B.of_int 13) p)) pts in
  let expected =
    List.fold_left
      (fun acc (a, b) -> Pairing.gt_mul prms acc (Pairing.pairing prms a b))
      (Pairing.gt_one prms) pairs
  in
  Alcotest.check gt "product" expected (Pairing.pairing_product prms pairs);
  Alcotest.check gt "empty product" (Pairing.gt_one prms) (Pairing.pairing_product prms []);
  (* pairing_check: e(aG, bG) * e(-abG, G) = 1. *)
  let a = B.of_int 1234 and b = B.of_int 5678 in
  let ab = B.erem (B.mul a b) q in
  Alcotest.(check bool) "check true" true
    (Pairing.pairing_check prms
       [
         (Curve.mul curve a g, Curve.mul curve b g);
         (Curve.neg curve (Curve.mul curve ab g), g);
       ]);
  Alcotest.(check bool) "check false" false
    (Pairing.pairing_check prms
       [ (Curve.mul curve a g, Curve.mul curve b g); (Curve.neg curve g, g) ]);
  (* equal_check agrees with naive comparison. *)
  Alcotest.(check bool) "equal_check true" true
    (Pairing.pairing_equal_check prms
       ~lhs:(Curve.mul curve a g, Curve.mul curve b g)
       ~rhs:(g, Curve.mul curve ab g));
  Alcotest.(check bool) "equal_check false" false
    (Pairing.pairing_equal_check prms
       ~lhs:(Curve.mul curve a g, Curve.mul curve b g)
       ~rhs:(g, g))

let test_ddh_oracle () =
  for _ = 1 to 10 do
    let x = Pairing.random_scalar prms rng and y = Pairing.random_scalar prms rng in
    let a = Curve.mul curve x g and b = Curve.mul curve y g in
    let good = Curve.mul curve (B.erem (B.mul x y) q) g in
    Alcotest.(check bool) "accepts DDH tuple" true (Pairing.ddh prms g a b good);
    let z = Pairing.random_scalar prms rng in
    if not (B.equal z (B.erem (B.mul x y) q)) then begin
      let bad = Curve.mul curve z g in
      Alcotest.(check bool) "rejects non-DDH tuple" false (Pairing.ddh prms g a b bad)
    end
  done

let test_pairing_symmetric () =
  (* With a distortion map, e^(P,Q) = e^(Q,P) on the cyclic subgroup. *)
  let a = Curve.mul curve (B.of_int 123456) g in
  let b = Curve.mul curve (B.of_int 987654) g in
  Alcotest.check gt "symmetric" (Pairing.pairing prms a b) (Pairing.pairing prms b a)

let test_gt_ops () =
  let e = Pairing.pairing prms g g in
  Alcotest.check gt "inv" (Pairing.gt_one prms) (Pairing.gt_mul prms e (Pairing.gt_inv prms e));
  Alcotest.check gt "pow 0" (Pairing.gt_one prms) (Pairing.gt_pow prms e B.zero);
  Alcotest.check gt "pow 1" e (Pairing.gt_pow prms e B.one)

let test_all_parameter_sets_valid () =
  (* Forces validation inside Pairing.make for every named set and checks
     a pairing identity at each size. *)
  List.iter
    (fun name ->
      match Pairing.by_name name with
      | None -> Alcotest.fail ("missing params " ^ name)
      | Some prms ->
          let g = prms.Pairing.g in
          let curve = prms.Pairing.curve in
          let a = B.of_int 7 and b = B.of_int 11 in
          let lhs =
            Pairing.pairing prms (Curve.mul curve a g) (Curve.mul curve b g)
          in
          let rhs =
            Pairing.gt_pow prms (Pairing.pairing prms g g) (B.of_int 77)
          in
          Alcotest.(check bool) (name ^ " bilinear") true (Pairing.gt_equal lhs rhs))
    Pairing.all_names

let test_by_name_unknown () =
  Alcotest.(check bool) "unknown" true (Pairing.by_name "nope" = None)

let test_make_validation () =
  (* q does not divide p+1. *)
  let p = B.of_string "0x83b0f2e27d38d3059d8287" in
  Alcotest.check_raises "bad q"
    (Invalid_argument "Pairing.make: q does not divide p+1") (fun () ->
      ignore (Pairing.make ~name:"bad" ~p ~q:(B.of_int 101) ()));
  Alcotest.check_raises "p not prime"
    (Invalid_argument "Pairing.make: p not prime") (fun () ->
      ignore (Pairing.make ~name:"bad" ~p:(B.of_int 100) ~q:(B.of_int 101) ()))

let test_h2_properties () =
  let e = Pairing.pairing prms g g in
  let m1 = Pairing.h2 prms e 32 and m2 = Pairing.h2 prms e 32 in
  Alcotest.(check string) "deterministic" m1 m2;
  Alcotest.(check int) "length" 100 (String.length (Pairing.h2 prms e 100));
  let e' = Pairing.gt_pow prms e B.two in
  Alcotest.(check bool) "different inputs differ" false (Pairing.h2 prms e' 32 = m1)

(* --- the second curve family: y^2 = x^3 + 1, distortion zeta --- *)

let test_family2_bilinear_nondegenerate () =
  let prms = Pairing.toy64b () in
  let curve = prms.Pairing.curve in
  let g = prms.Pairing.g in
  Alcotest.(check bool) "family recorded" true (prms.Pairing.family = Pairing.Y2_x3_1);
  let e_gg = Pairing.pairing prms g g in
  Alcotest.(check bool) "non-degenerate" false
    (Pairing.gt_equal e_gg (Pairing.gt_one prms));
  Alcotest.(check bool) "order q" true
    (Pairing.gt_equal (Pairing.gt_pow prms e_gg prms.Pairing.q) (Pairing.gt_one prms));
  (* Bilinearity over a grid of scalars. *)
  List.iter
    (fun (a, b) ->
      let lhs =
        Pairing.pairing prms
          (Curve.mul curve (B.of_int a) g)
          (Curve.mul curve (B.of_int b) g)
      in
      let rhs = Pairing.gt_pow prms e_gg (B.of_int (a * b)) in
      Alcotest.(check bool)
        (Printf.sprintf "e(%dG,%dG) = e(G,G)^%d" a b (a * b))
        true (Pairing.gt_equal lhs rhs))
    [ (2, 3); (7, 11); (1, 999); (123, 456); (65537, 2) ];
  (* Symmetry and additivity. *)
  let p1 = Curve.mul curve (B.of_int 1234) g in
  let p2 = Curve.mul curve (B.of_int 98765) g in
  Alcotest.(check bool) "symmetric" true
    (Pairing.gt_equal (Pairing.pairing prms p1 p2) (Pairing.pairing prms p2 p1));
  Alcotest.(check bool) "additive" true
    (Pairing.gt_equal
       (Pairing.pairing prms (Curve.add curve p1 p2) g)
       (Pairing.gt_mul prms (Pairing.pairing prms p1 g) (Pairing.pairing prms p2 g)))

let test_family2_full_tre_roundtrip () =
  (* The whole scheme stack must run unchanged over the second GDH-group
     instantiation — the paper's "any Gap Diffie-Hellman group". *)
  let prms = Pairing.toy64b () in
  let rng = Hashing.Drbg.create ~seed:"family2-tre" () in
  let srv_sec, srv_pub = Tre.Server.keygen prms rng in
  let alice_sec, alice_pub = Tre.User.keygen prms srv_pub rng in
  Alcotest.(check bool) "receiver key validates" true
    (Tre.validate_receiver_key prms srv_pub alice_pub);
  let t = "family2-epoch" in
  let ct = Tre.encrypt prms srv_pub alice_pub ~release_time:t rng "over x^3 + 1" in
  let upd = Tre.issue_update prms srv_sec t in
  Alcotest.(check bool) "update verifies" true (Tre.verify_update prms srv_pub upd);
  Alcotest.(check string) "roundtrip" "over x^3 + 1" (Tre.decrypt prms alice_sec upd ct);
  (* Wrong update still yields garbage. *)
  let other = Tre.issue_update prms srv_sec "other" in
  let relabeled = { other with Tre.update_time = t } in
  Alcotest.(check bool) "time lock" false
    (Tre.decrypt prms alice_sec relabeled ct = "over x^3 + 1")

let test_family2_ddh_and_products () =
  let prms = Pairing.toy64b () in
  let curve = prms.Pairing.curve in
  let g = prms.Pairing.g in
  let rng = Hashing.Drbg.create ~seed:"family2-ddh" () in
  let x = Pairing.random_scalar prms rng and y = Pairing.random_scalar prms rng in
  let xy = B.erem (B.mul x y) prms.Pairing.q in
  Alcotest.(check bool) "ddh accepts" true
    (Pairing.ddh prms g (Curve.mul curve x g) (Curve.mul curve y g)
       (Curve.mul curve xy g));
  Alcotest.(check bool) "ddh rejects" false
    (Pairing.ddh prms g (Curve.mul curve x g) (Curve.mul curve y g) g);
  (* pairing_product consistency (exercises the per-miller inversion). *)
  let pairs = [ (Curve.mul curve x g, g); (g, Curve.mul curve y g) ] in
  let expected =
    Pairing.gt_mul prms
      (Pairing.pairing prms (Curve.mul curve x g) g)
      (Pairing.pairing prms g (Curve.mul curve y g))
  in
  Alcotest.(check bool) "product" true
    (Pairing.gt_equal expected (Pairing.pairing_product prms pairs))

let test_family2_make_validation () =
  (* Family-1 parameters (p = 1 mod 3) must be refused for family 2. *)
  let p = B.of_string "0x83b0f2e27d38d3059d8287" in
  let q = B.of_string "0xa2a8bbf28af65885" in
  if B.equal (B.erem p (B.of_int 3)) (B.of_int 2) then () (* wrong fixture *)
  else
    Alcotest.check_raises "family mismatch"
      (Invalid_argument "Pairing.make: p must be 2 mod 3 for the x^3 + 1 family")
      (fun () -> ignore (Pairing.make ~family:Pairing.Y2_x3_1 ~name:"bad" ~p ~q ()))

(* --- prepared (precomputed Miller-loop) pairings --- *)

(* Bit-identity, not just gt_equal: prepared pairings must return the very
   same canonical field element, so cached values are interchangeable with
   freshly computed ones everywhere in the schemes. *)
let check_prepared_equivalence prms =
  let name = prms.Pairing.name in
  let curve = prms.Pairing.curve in
  let g = prms.Pairing.g in
  let q = prms.Pairing.q in
  let h = Pairing.hash_to_g1 prms ("prep-" ^ name) in
  let pts =
    [ g; h; Curve.mul curve (B.of_int 7) g; Curve.neg curve h;
      Curve.mul curve (B.pred q) g; Curve.infinity ]
  in
  List.iter
    (fun p ->
      let prep = Pairing.prepare prms p in
      List.iter
        (fun q' ->
          let plain = Pairing.pairing prms p q' in
          let fast = Pairing.pairing_prepared prms prep q' in
          Alcotest.(check bool)
            (Printf.sprintf "%s: prepared = plain" name)
            true (Fp2.equal plain fast))
        pts)
    pts;
  (* Product / check / equal_check variants. *)
  let a = B.of_int 1234 and b = B.of_int 5678 in
  let ab = B.erem (B.mul a b) q in
  let pa = Curve.mul curve a g and pb = Curve.mul curve b g in
  let prep_pa = Pairing.prepare prms pa in
  Alcotest.(check bool) (name ^ ": product prepared") true
    (Fp2.equal
       (Pairing.pairing_product prms [ (pa, pb); (h, g) ])
       (Pairing.pairing_product_prepared prms
          [ (prep_pa, pb); (Pairing.prepare prms h, g) ]));
  Alcotest.(check bool) (name ^ ": check prepared true") true
    (Pairing.pairing_check_prepared prms
       [ (prep_pa, pb); (Pairing.prepare prms (Curve.neg curve (Curve.mul curve ab g)), g) ]);
  Alcotest.(check bool) (name ^ ": check prepared false") false
    (Pairing.pairing_check_prepared prms
       [ (prep_pa, pb); (Pairing.prepare prms (Curve.neg curve g), g) ]);
  Alcotest.(check bool) (name ^ ": equal_check prepared true") true
    (Pairing.pairing_equal_check_prepared prms
       ~lhs:(prep_pa, pb)
       ~rhs:(Lazy.force prms.Pairing.g_prep, Curve.mul curve ab g));
  Alcotest.(check bool) (name ^ ": equal_check prepared false") false
    (Pairing.pairing_equal_check_prepared prms
       ~lhs:(prep_pa, pb)
       ~rhs:(Lazy.force prms.Pairing.g_prep, g));
  (* Fixed-base comb multiplication of the generator. *)
  List.iter
    (fun k ->
      Alcotest.(check bool) (name ^ ": mul_g = mul") true
        (Curve.equal (Pairing.mul_g prms k) (Curve.mul curve k g)))
    [ B.zero; B.one; B.of_int 2; B.pred q; q; B.succ q ]

let test_prepared_toy_sets () =
  check_prepared_equivalence (Pairing.toy64 ());
  check_prepared_equivalence (Pairing.toy64b ())

let test_prepared_all_sets () =
  List.iter
    (fun name ->
      match Pairing.by_name name with
      | None -> Alcotest.fail ("missing params " ^ name)
      | Some prms -> check_prepared_equivalence prms)
    Pairing.all_names

let prop_prepared_random_points =
  QCheck2.Test.make ~name:"prepared pairing = plain pairing (random)" ~count:15
    QCheck2.Gen.(pair gen_scalar gen_scalar)
    (fun (a, b) ->
      let p = Curve.mul curve a g and q' = Curve.mul curve b g in
      Fp2.equal
        (Pairing.pairing prms p q')
        (Pairing.pairing_prepared prms (Pairing.prepare prms p) q'))

(* --- kernel vs pinned reference: the fast pairing stack (NAF Miller
   loop, cyclotomic final exponentiation, generator fast-path) must stay
   bit-identical to the functional reference route --- *)

let check_kernel_vs_reference prms =
  let name = prms.Pairing.name in
  let fp = prms.Pairing.fp in
  let curve = prms.Pairing.curve in
  let g = prms.Pairing.g in
  let q = prms.Pairing.q in
  let rng = Hashing.Drbg.create ~seed:("kernel-diff-" ^ name) () in
  let rand_pt () = Curve.mul curve (Pairing.random_scalar prms rng) g in
  (* Full pairing: bit-identity on random subgroup points, on the
     generator fast-path (first argument = G hits the prepared
     schedule), and on infinity in either slot. *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (name ^ ": pairing = pairing_ref") true
        (Fp2.equal (Pairing.pairing prms a b) (Pairing.pairing_ref prms a b)))
    [ (g, g); (rand_pt (), rand_pt ()); (g, rand_pt ()); (rand_pt (), g);
      (Curve.infinity, g); (g, Curve.infinity);
      (Curve.infinity, Curve.infinity) ];
  (* Miller loops: the raw NAF and binary accumulators differ by GF(p)*
     factors, so their contract is agreement after (the pinned generic)
     final exponentiation. *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (name ^ ": miller loops agree post-exp") true
        (Fp2.equal
           (Pairing.final_exponentiation_ref prms (Pairing.miller_loop prms a b))
           (Pairing.final_exponentiation_ref prms
              (Pairing.miller_loop_ref prms a b))))
    [ (rand_pt (), rand_pt ()); (g, rand_pt ()); (rand_pt (), g) ];
  (* Cyclotomic final exponentiation: bit-identical to the generic path
     on EVERY nonzero input, not just Miller values — the easy part
     f^(p-1) lands in the norm-1 subgroup from any starting point. *)
  let rand_fp () =
    Fp.of_bigint fp
      (B.erem
         (B.of_bytes_be (Hashing.Drbg.generate rng (Fp.byte_length fp + 3)))
         prms.Pairing.p)
  in
  for _ = 1 to 8 do
    let f = Fp2.make ~re:(rand_fp ()) ~im:(rand_fp ()) in
    if not (Fp2.is_zero fp f) then
      Alcotest.(check bool) (name ^ ": final exp bit-identical") true
        (Fp2.equal
           (Pairing.final_exponentiation prms f)
           (Pairing.final_exponentiation_ref prms f))
  done;
  let mv = Pairing.miller_loop_ref prms (rand_pt ()) (rand_pt ()) in
  Alcotest.(check bool) (name ^ ": final exp on a miller value") true
    (Fp2.equal
       (Pairing.final_exponentiation prms mv)
       (Pairing.final_exponentiation_ref prms mv));
  Alcotest.(check bool) (name ^ ": final exp of 1 is 1") true
    (Fp2.equal
       (Pairing.final_exponentiation prms (Fp2.one fp))
       (Pairing.final_exponentiation_ref prms (Fp2.one fp)));
  (* Low-order first arguments (order divides the even cofactor, so the
     sample includes even-order points): the NAF schedule degenerates on
     these — its chord steps can hit T = dP with coincident operands —
     and must fall back to the binary loop, which mirrors the reference
     branch for branch. Still bit-identical. *)
  let qpt = rand_pt () in
  List.iter
    (fun i ->
      let l =
        Curve.mul curve q
          (Pairing.hash_to_g1_unclamped prms (Printf.sprintf "low-%s-%d" name i))
      in
      Alcotest.(check bool) (name ^ ": low-order pairing = ref") true
        (Fp2.equal (Pairing.pairing prms l qpt) (Pairing.pairing_ref prms l qpt)))
    [ 1; 2; 3; 4 ]

let test_kernel_vs_ref_toy () =
  check_kernel_vs_reference (Pairing.toy64 ());
  check_kernel_vs_reference (Pairing.toy64b ())

let test_kernel_vs_ref_all_sets () =
  List.iter
    (fun name -> check_kernel_vs_reference (Option.get (Pairing.by_name name)))
    Pairing.all_names

let prop_kernel_pairing_matches_ref =
  QCheck2.Test.make ~name:"pairing = pairing_ref (random scalars)" ~count:20
    QCheck2.Gen.(pair gen_scalar gen_scalar)
    (fun (a, b) ->
      let p = Curve.mul curve a g and q' = Curve.mul curve b g in
      Fp2.equal (Pairing.pairing prms p q') (Pairing.pairing_ref prms p q'))

(* --- the product-of-pairings kernel vs the pinned reference: one
   interleaved Miller loop + one final exponentiation (or the GF(p)
   membership decision) must stay bit-identical to multiplying separate
   [pairing_ref] results, for every pair count, argument shape and
   degeneracy the verifiers can feed it --- *)

let check_product_vs_reference prms =
  let name = prms.Pairing.name in
  let fp = prms.Pairing.fp in
  let curve = prms.Pairing.curve in
  let g = prms.Pairing.g in
  let q = prms.Pairing.q in
  let rng = Hashing.Drbg.create ~seed:("product-diff-" ^ name) () in
  let rand_pt () = Curve.mul curve (Pairing.random_scalar prms rng) g in
  let ref_product pairs =
    List.fold_left
      (fun acc (a, b) -> Fp2.mul fp acc (Pairing.pairing_ref prms a b))
      (Fp2.one fp) pairs
  in
  let check_pairs label pairs =
    let expected = ref_product pairs in
    (* The raw interleaved Miller product, pushed through the PINNED
       generic final exponentiation, must hit the reference value
       bit-for-bit — and so must the kernel [pairing_product]. *)
    Alcotest.(check bool) (name ^ ": miller_product = ref after exp " ^ label)
      true
      (Fp2.equal
         (Pairing.final_exponentiation_ref prms
            (Pairing.miller_product prms pairs))
         expected);
    Alcotest.(check bool) (name ^ ": pairing_product = ref " ^ label) true
      (Fp2.equal (Pairing.pairing_product prms pairs) expected);
    (* The no-final-exp membership decision must equal the reference
       decision exactly — accept AND reject. *)
    Alcotest.(check bool) (name ^ ": check_product_one = ref decision " ^ label)
      (Fp2.is_one fp expected)
      (Pairing.check_product_one prms pairs)
  in
  (* N = 1..4 random pairs. *)
  for n = 1 to 4 do
    check_pairs
      (Printf.sprintf "N=%d" n)
      (List.init n (fun _ -> (rand_pt (), rand_pt ())))
  done;
  (* A genuinely canceling product (the verification-equation shape) and
     a tampered one: both decisions pinned. *)
  let a = B.of_int 1234 and b = B.of_int 5678 in
  let ab = B.erem (B.mul a b) q in
  check_pairs "canceling"
    [ (Curve.mul curve a g, Curve.mul curve b g);
      (Curve.mul curve ab g, Curve.neg curve g) ];
  check_pairs "tampered"
    [ (Curve.mul curve a g, Curve.mul curve b g);
      (Curve.mul curve (B.succ ab) g, Curve.neg curve g) ];
  (* Infinity in either slot drops the pair; the empty product is 1. *)
  check_pairs "infinity slots"
    [ (Curve.infinity, rand_pt ()); (rand_pt (), Curve.infinity);
      (rand_pt (), rand_pt ()) ];
  check_pairs "empty" [];
  check_pairs "all infinity" [ (Curve.infinity, Curve.infinity) ];
  (* Low-order first arguments degenerate the shared NAF walk mid-loop
     (coincident chord operands); the kernel must evict exactly that pair
     to its own binary schedule and still match the reference. *)
  let low i =
    Curve.mul curve q
      (Pairing.hash_to_g1_unclamped prms (Printf.sprintf "plow-%s-%d" name i))
  in
  check_pairs "low-order first arg" [ (low 1, rand_pt ()); (rand_pt (), rand_pt ()) ];
  check_pairs "two low-order" [ (low 2, rand_pt ()); (low 3, rand_pt ()) ];
  (* Mixed prepared/live products, including a degenerate (binary
     fallback) prepared schedule that cannot share the NAF squaring
     chain, and the generator's construction-time schedule. *)
  let pa = rand_pt () and pb = rand_pt () and qb = rand_pt () in
  let pc = rand_pt () and qc = rand_pt () in
  let pl = low 4 and ql = rand_pt () in
  let mixed =
    [ (Pairing.Prepared (Pairing.prepare prms pa), pb);
      (Pairing.Point g, qb);
      (Pairing.Point pc, qc);
      (Pairing.Prepared (Pairing.prepare prms pl), ql) ]
  in
  let expected = ref_product [ (pa, pb); (g, qb); (pc, qc); (pl, ql) ] in
  Alcotest.(check bool) (name ^ ": mixed product = ref") true
    (Fp2.equal
       (Pairing.final_exponentiation_ref prms
          (Pairing.miller_product_mixed prms mixed))
       expected);
  Alcotest.(check bool) (name ^ ": mixed check = ref decision")
    (Fp2.is_one fp expected)
    (Pairing.check_product_one_mixed prms mixed);
  (* And the mixed decision on a canceling product. *)
  Alcotest.(check bool) (name ^ ": mixed canceling accepts") true
    (Pairing.check_product_one_mixed prms
       [ (Pairing.Prepared (Lazy.force prms.Pairing.g_prep),
          Curve.mul curve ab g);
         (Pairing.Point (Curve.mul curve a g),
          Curve.neg curve (Curve.mul curve b g)) ])

let test_product_vs_ref_toy () =
  check_product_vs_reference (Pairing.toy64 ());
  check_product_vs_reference (Pairing.toy64b ())

let test_product_vs_ref_all_sets () =
  List.iter
    (fun name -> check_product_vs_reference (Option.get (Pairing.by_name name)))
    Pairing.all_names

let prop_product_matches_ref =
  QCheck2.Test.make ~name:"check_product_one = ref decision (random)" ~count:15
    QCheck2.Gen.(pair gen_scalar gen_scalar)
    (fun (a, b) ->
      let pairs =
        [ (Curve.mul curve a g, Curve.mul curve b g);
          (Curve.mul curve (B.erem (B.mul a b) q) g, Curve.neg curve g) ]
      in
      let expected =
        Fp2.is_one prms.Pairing.fp
          (List.fold_left
             (fun acc (x, y) ->
               Pairing.gt_mul prms acc (Pairing.pairing_ref prms x y))
             (Pairing.gt_one prms) pairs)
      in
      Pairing.check_product_one prms pairs = expected)

(* The product kernel's verify path must stay allocation-lean: every
   accumulator, line scratch and window-table slot lives in the
   per-domain register file, so a steady-state [check_product_one_mixed]
   call touches the minor heap only incidentally. The bound is ~10x the
   measured steady state (2-6 words/call) and far below what any of the
   known regressions cost — the functional prepared-line path was
   ~840-47000 words/call, and even a single per-iteration closure in the
   Miller bit loop shows up at >100 apparent words/call. Measured over a
   batch with a fresh minor arena so a GC boundary (where OCaml 5's
   allocation accounting jumps) cannot land inside the window. *)
let test_product_alloc_bound () =
  List.iter
    (fun name ->
      let prms = Option.get (Pairing.by_name name) in
      let curve = prms.Pairing.curve in
      let g = prms.Pairing.g in
      let a = B.of_int 1234 and b = B.of_int 5678 in
      let ab = B.erem (B.mul a b) prms.Pairing.q in
      let pairs =
        [ (Pairing.Prepared (Pairing.prepare prms (Curve.mul curve a g)),
           Curve.mul curve b g);
          (Pairing.Prepared (Pairing.prepare prms (Curve.mul curve ab g)),
           Curve.neg curve g) ]
      in
      (* Warm the per-domain register file so growth is behind us. *)
      for _ = 1 to 3 do
        ignore (Pairing.check_product_one_mixed prms pairs)
      done;
      Gc.minor ();
      let rounds = 50 in
      let before = Gc.allocated_bytes () in
      for _ = 1 to rounds do
        ignore (Sys.opaque_identity (Pairing.check_product_one_mixed prms pairs))
      done;
      let words = (Gc.allocated_bytes () -. before) /. 8. in
      let per_op = words /. float_of_int rounds in
      if per_op > 64.0 then
        Alcotest.failf "check_product_one_mixed allocates %.1f words/op at %s"
          per_op name)
    Pairing.all_names

let test_param_search_small () =
  let rng = Hashing.Drbg.create ~seed:"param-search-test" () in
  let p, q = Param_search.generate ~rng ~qbits:32 ~pbits:48 () in
  Alcotest.(check bool) "p prime" true (Prime.is_probably_prime p);
  Alcotest.(check bool) "q prime" true (Prime.is_probably_prime q);
  Alcotest.(check bool) "q | p+1" true (B.is_zero (B.erem (B.succ p) q));
  Alcotest.check (Alcotest.testable B.pp B.equal) "p mod 4 = 3" (B.of_int 3)
    (B.erem p (B.of_int 4));
  (* And the whole pairing machinery works on fresh parameters. *)
  let fresh = Pairing.make ~name:"fresh" ~p ~q () in
  let gg = Pairing.pairing fresh fresh.Pairing.g fresh.Pairing.g in
  Alcotest.(check bool) "non-degenerate" false
    (Pairing.gt_equal gg (Pairing.gt_one fresh))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pairing"
    [
      ( "directed",
        [
          Alcotest.test_case "non-degenerate" `Quick test_non_degenerate;
          Alcotest.test_case "infinity" `Quick test_infinity_pairs_to_one;
          Alcotest.test_case "pairing product" `Quick test_pairing_product;
          Alcotest.test_case "ddh oracle" `Quick test_ddh_oracle;
          Alcotest.test_case "symmetric" `Quick test_pairing_symmetric;
          Alcotest.test_case "gt ops" `Quick test_gt_ops;
          Alcotest.test_case "h2" `Quick test_h2_properties;
        ] );
      ( "bilinearity",
        qc
          [
            prop_bilinear_left; prop_bilinear_right; prop_bilinear_full;
            prop_additive_in_first; prop_additive_in_second;
            prop_hashed_points_pair_consistently;
          ] );
      ( "parameters",
        [
          Alcotest.test_case "all sets valid" `Slow test_all_parameter_sets_valid;
          Alcotest.test_case "by_name unknown" `Quick test_by_name_unknown;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "param search" `Slow test_param_search_small;
        ] );
      ( "prepared",
        Alcotest.test_case "toy sets equivalence" `Quick test_prepared_toy_sets
        :: Alcotest.test_case "all sets equivalence" `Slow test_prepared_all_sets
        :: qc [ prop_prepared_random_points ] );
      ( "kernel-vs-ref",
        Alcotest.test_case "toy sets differential" `Quick test_kernel_vs_ref_toy
        :: Alcotest.test_case "all sets differential" `Slow
             test_kernel_vs_ref_all_sets
        :: qc [ prop_kernel_pairing_matches_ref ] );
      ( "product-vs-ref",
        Alcotest.test_case "toy sets differential" `Quick test_product_vs_ref_toy
        :: Alcotest.test_case "all sets differential" `Slow
             test_product_vs_ref_all_sets
        :: Alcotest.test_case "verify path alloc bound" `Slow
             test_product_alloc_bound
        :: qc [ prop_product_matches_ref ] );
      ( "family2",
        [
          Alcotest.test_case "bilinear+nondegenerate" `Quick test_family2_bilinear_nondegenerate;
          Alcotest.test_case "full TRE roundtrip" `Quick test_family2_full_tre_roundtrip;
          Alcotest.test_case "ddh + products" `Quick test_family2_ddh_and_products;
          Alcotest.test_case "make validation" `Quick test_family2_make_validation;
        ] );
    ]
