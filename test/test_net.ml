(* The socket daemon: framing, protocol, fan-out, back-pressure.

   Everything here runs against a REAL Net_server over a Unix-domain
   socket (or a raw socketpair for the framing-attack cases) — no
   simulated network. The properties under test are the ones the load
   harness relies on: length-prefixed framing is strict in both
   directions, the broadcast path encodes each epoch exactly once and
   delivers byte-identical frames to every subscriber, the archive
   endpoint enforces §3's future-refusal, and a reader slower than the
   broadcast rate is evicted instead of growing server memory.

   Every daemon-facing test is parameterized by the {!Poller} backend
   and run against both select and epoll (the latter skipped as a no-op
   where the platform lacks it), so the two event loops stay
   behaviourally interchangeable — including the adversarial framing
   suite and slow-reader eviction. *)

let prms =
  match Pairing.by_name "toy64" with
  | Some p -> p
  | None -> failwith "toy64 params missing"

(* ------------------------------------------------------------ framing *)

let test_frame_roundtrip () =
  let d = Frame.Decoder.create () in
  let payloads = [ ""; "x"; String.make 300 'a'; "last" ] in
  let wire = String.concat "" (List.map Frame.encode payloads) in
  (match Frame.Decoder.feed_string d wire with
  | Ok () -> ()
  | Error e -> Alcotest.failf "feed: %s" e);
  List.iter
    (fun expect ->
      match Frame.Decoder.pop d with
      | Some got -> Alcotest.(check string) "frame payload" expect got
      | None -> Alcotest.fail "missing frame")
    payloads;
  Alcotest.(check bool) "drained" true (Frame.Decoder.pop d = None);
  Alcotest.(check int) "no residue" 0 (Frame.Decoder.buffered d)

let test_frame_byte_by_byte () =
  (* The decoder is incremental: one byte per feed must produce exactly
     the same frames as one big feed. *)
  let d = Frame.Decoder.create () in
  let payloads = [ "alpha"; ""; "bravo-bravo" ] in
  let wire = String.concat "" (List.map Frame.encode payloads) in
  let got = ref [] in
  String.iter
    (fun ch ->
      (match Frame.Decoder.feed_string d (String.make 1 ch) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "feed: %s" e);
      let rec drain () =
        match Frame.Decoder.pop d with
        | Some p ->
            got := p :: !got;
            drain ()
        | None -> ()
      in
      drain ())
    wire;
  Alcotest.(check (list string)) "incremental = whole" payloads (List.rev !got)

let test_frame_oversized_rejected () =
  (* A declared length above max_payload is fatal the moment the prefix
     is visible — before any payload is buffered. *)
  let d = Frame.Decoder.create ~max_payload:64 () in
  let b = Buffer.create 8 in
  Buffer.add_string b "\x00\x00\x01\x00";
  (* 256 > 64 *)
  (match Frame.Decoder.feed_string d (Buffer.contents b) with
  | Ok () -> Alcotest.fail "oversized prefix accepted"
  | Error _ -> ());
  Alcotest.(check bool) "error latched" true (Frame.Decoder.error d <> None);
  Alcotest.(check bool) "no frames after error" true (Frame.Decoder.pop d = None)

let test_frame_oversized_after_valid () =
  (* The oversized prefix can hide behind a valid frame in the same
     chunk; pop must surface the good frame, then latch the error. *)
  let d = Frame.Decoder.create ~max_payload:64 () in
  let wire = Frame.encode "ok" ^ "\xFF\xFF\xFF\xFF" in
  (match Frame.Decoder.feed_string d wire with
  | Ok () -> () (* error may surface now or at pop; either is fine *)
  | Error _ -> ());
  (match Frame.Decoder.pop d with
  | Some p -> Alcotest.(check string) "good frame first" "ok" p
  | None -> Alcotest.fail "good frame lost");
  Alcotest.(check bool) "pop stops" true (Frame.Decoder.pop d = None);
  Alcotest.(check bool) "error visible" true (Frame.Decoder.error d <> None)

let test_frame_truncation_visible () =
  let d = Frame.Decoder.create () in
  (* 2 of 4 prefix bytes *)
  (match Frame.Decoder.feed_string d "\x00\x00" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "feed: %s" e);
  Alcotest.(check bool) "no frame yet" true (Frame.Decoder.pop d = None);
  Alcotest.(check int) "truncated prefix buffered" 2 (Frame.Decoder.buffered d);
  let d = Frame.Decoder.create () in
  let full = Frame.encode "abcdef" in
  (match
     Frame.Decoder.feed_string d (String.sub full 0 (String.length full - 2))
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "feed: %s" e);
  Alcotest.(check bool) "incomplete payload" true (Frame.Decoder.pop d = None);
  Alcotest.(check bool) "truncation visible at EOF" true
    (Frame.Decoder.buffered d > 0)

(* ----------------------------------------------------- daemon harness *)

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/tre-test-%d-%d.sock" (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !n

let with_server ?(max_queue = 64) ?(ticks_origin = "utc") ?backend f =
  let timeline = Timeline.create ~origin:ticks_origin ~granularity:1.0 () in
  let path = fresh_path () in
  let cfg =
    {
      (Net_server.default_config prms timeline) with
      Net_server.unix_path = Some path;
      shards = 1;
      max_queue_frames = max_queue;
      backend;
    }
  in
  let rng = Hashing.Drbg.create ~seed:"test-net" ~personalization:"daemon" () in
  let srv = Net_server.create cfg rng in
  Net_server.start srv;
  Fun.protect
    ~finally:(fun () -> Net_server.stop srv)
    (fun () -> f srv path timeline)

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

type peer = { fd : Unix.file_descr; dec : Frame.Decoder.t }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; dec = Frame.Decoder.create () }

(* Read frames until [n] are available or ~2s pass; EOF is reported as
   fewer frames than asked. *)
let read_frames ?(timeout = 2.0) peer n =
  let buf = Bytes.create 4096 in
  let frames = ref [] in
  let count = ref 0 in
  let deadline = Unix.gettimeofday () +. timeout in
  let eof = ref false in
  while (not !eof) && !count < n && Unix.gettimeofday () < deadline do
    let readable, _, _ = Unix.select [ peer.fd ] [] [] 0.1 in
    if readable <> [] then begin
      let r = Unix.read peer.fd buf 0 (Bytes.length buf) in
      if r = 0 then eof := true
      else
        match Frame.Decoder.feed peer.dec buf 0 r with
        | Error e -> Alcotest.failf "client framing: %s" e
        | Ok () ->
            let rec drain () =
              match Frame.Decoder.pop peer.dec with
              | Some p ->
                  frames := p :: !frames;
                  incr count;
                  drain ()
              | None -> ()
            in
            drain ()
    end
  done;
  List.rev !frames

let expect_eof ?(timeout = 2.0) peer =
  let buf = Bytes.create 256 in
  let deadline = Unix.gettimeofday () +. timeout in
  let eof = ref false in
  while (not !eof) && Unix.gettimeofday () < deadline do
    let readable, _, _ = Unix.select [ peer.fd ] [] [] 0.1 in
    if readable <> [] then
      match Unix.read peer.fd buf 0 (Bytes.length buf) with
      | 0 -> eof := true
      | _ -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          eof := true
  done;
  Alcotest.(check bool) "server disconnected the peer" true !eof

let subscribe peer =
  send_all peer.fd (Frame.encode (Netmsg.subscribe_to_bytes prms));
  match read_frames peer 1 with
  | [ p ] -> (
      match Netmsg.hello_of_bytes prms p with
      | Ok h -> h
      | Error e -> Alcotest.failf "bad hello: %s" e)
  | fs -> Alcotest.failf "expected hello, got %d frames" (List.length fs)

(* ------------------------------------------------------ daemon tests *)

let test_subscribe_tick_verify backend () =
  with_server ~backend (fun srv path timeline ->
      let c = connect path in
      let h = subscribe c in
      Alcotest.(check string) "hello origin" "utc" h.Netmsg.origin;
      Alcotest.(check int) "hello granularity" 1_000_000 h.Netmsg.granularity_us;
      Alcotest.(check int) "no epochs yet" 0 h.Netmsg.current_epoch;
      let pub = Net_server.public srv in
      Alcotest.(check bool) "hello carries the server key" true
        (Curve.equal h.Netmsg.server_g pub.Tre.Server.g
        && Curve.equal h.Netmsg.server_sg pub.Tre.Server.sg);
      Net_server.tick srv 1;
      (match read_frames c 2 with
      | [ t; u ] -> (
          (match Netmsg.tick_of_bytes prms t with
          | Ok tk ->
              Alcotest.(check string) "tick label" (Timeline.label timeline 1)
                tk.Netmsg.tick_label;
              Alcotest.(check bool) "tick stamped" true (tk.Netmsg.sent_at_us > 0)
          | Error e -> Alcotest.failf "bad tick: %s" e);
          match Tre.update_of_bytes prms u with
          | Ok upd ->
              Alcotest.(check string) "update label" (Timeline.label timeline 1)
                upd.Tre.update_time;
              Alcotest.(check bool) "update verifies" true
                (Tre.verify_update prms pub upd)
          | Error e -> Alcotest.failf "bad update: %s" e)
      | fs -> Alcotest.failf "expected tick+update, got %d" (List.length fs));
      Alcotest.(check int) "watermark raised" 1 (Net_server.current_epoch srv);
      Unix.close c.fd)

let test_encode_once_fanout backend () =
  with_server ~backend (fun srv path _ ->
      let peers = List.init 8 (fun _ -> connect path) in
      List.iter (fun c -> ignore (subscribe c)) peers;
      Net_server.tick srv 1;
      Net_server.tick srv 2;
      let frames =
        List.map
          (fun c ->
            match read_frames c 4 with
            | [ _; u1; _; u2 ] -> (u1, u2)
            | fs -> Alcotest.failf "expected 4 frames, got %d" (List.length fs))
          peers
      in
      (* byte-identical across subscribers: the same string was fanned out *)
      let u1, u2 = List.hd frames in
      List.iter
        (fun (a, b) ->
          Alcotest.(check string) "epoch 1 identical" u1 a;
          Alcotest.(check string) "epoch 2 identical" u2 b)
        frames;
      let st = Net_server.stats srv in
      Alcotest.(check int) "encoded once per epoch, 8 subscribers" 2
        st.Netmsg.updates_encoded;
      Alcotest.(check int) "subscribers" 8 st.Netmsg.subscribers;
      List.iter (fun c -> Unix.close c.fd) peers)

let test_archive_endpoint backend () =
  with_server ~backend (fun srv path timeline ->
      let sub = connect path in
      ignore (subscribe sub);
      Net_server.tick srv 1;
      Net_server.tick srv 2;
      let broadcast2 =
        match read_frames sub 4 with
        | [ _; _; _; u2 ] -> u2
        | fs -> Alcotest.failf "expected 4 frames, got %d" (List.length fs)
      in
      let c = connect path in
      let query lbl =
        send_all c.fd (Frame.encode (Netmsg.archive_query_to_bytes prms lbl));
        match read_frames c 1 with
        | [ p ] -> p
        | fs -> Alcotest.failf "expected 1 reply, got %d" (List.length fs)
      in
      (* hit: byte-identical to the broadcast frame (the same cache) *)
      let got = query (Timeline.label timeline 2) in
      Alcotest.(check string) "archive = broadcast bytes" broadcast2 got;
      (* future epoch: refused, never served (§3) *)
      (match Netmsg.archive_miss_of_bytes prms (query (Timeline.label timeline 9)) with
      | Ok (_, Netmsg.Future_refused) -> ()
      | Ok (_, Netmsg.Unknown_label) -> Alcotest.fail "future mislabeled"
      | Error e -> Alcotest.failf "expected miss, got: %s" e);
      (* foreign label: unknown *)
      (match Netmsg.archive_miss_of_bytes prms (query "mars#1") with
      | Ok (_, Netmsg.Unknown_label) -> ()
      | Ok (_, Netmsg.Future_refused) -> Alcotest.fail "foreign mislabeled"
      | Error e -> Alcotest.failf "expected miss, got: %s" e);
      let st = Net_server.stats srv in
      Alcotest.(check int) "one hit" 1 st.Netmsg.archive_hits;
      Alcotest.(check int) "two misses" 2 st.Netmsg.archive_misses;
      Unix.close c.fd;
      Unix.close sub.fd)

let test_backpressure_evicts_slow_reader backend () =
  (* A tiny queue bound plus a reader that never reads: the broadcast
     loop must evict it (bounded memory) while a normal reader keeps
     receiving every epoch. *)
  with_server ~max_queue:4 ~backend (fun srv path _ ->
      let slow = connect path in
      send_all slow.fd (Frame.encode (Netmsg.subscribe_to_bytes prms));
      let good = connect path in
      ignore (subscribe good);
      (* Fill the kernel socket buffer AND the 4-frame queue. *)
      let evicted = ref false in
      let epoch = ref 0 in
      while (not !evicted) && !epoch < 50_000 do
        incr epoch;
        Net_server.tick srv !epoch;
        ignore (read_frames ~timeout:0.01 good 2);
        evicted := (Net_server.stats srv).Netmsg.slow_disconnects >= 1
      done;
      Alcotest.(check bool) "slow reader evicted" true !evicted;
      (* the good reader is unaffected: it can still receive the next epoch *)
      incr epoch;
      Net_server.tick srv !epoch;
      let saw_update = ref false in
      let deadline = Unix.gettimeofday () +. 2.0 in
      while (not !saw_update) && Unix.gettimeofday () < deadline do
        List.iter
          (fun p ->
            match Codec.peek_kind p with
            | Ok Codec.Key_update -> saw_update := true
            | _ -> ())
          (read_frames ~timeout:0.1 good 1)
      done;
      Alcotest.(check bool) "normal reader still served" true !saw_update;
      expect_eof slow;
      Unix.close slow.fd;
      Unix.close good.fd)

(* --------------------------------------------- adversarial framing *)

let test_attack_truncated_prefix backend () =
  with_server ~backend (fun srv path _ ->
      let c = connect path in
      send_all c.fd "\x00\x00";
      (* half a length prefix, then hang up mid-frame *)
      Unix.shutdown c.fd Unix.SHUTDOWN_SEND;
      expect_eof c;
      let st = Net_server.stats srv in
      Alcotest.(check int) "counted as protocol error" 1
        st.Netmsg.protocol_errors;
      Unix.close c.fd)

let test_attack_oversized_length backend () =
  with_server ~backend (fun srv path _ ->
      let c = connect path in
      (* declared length 0xFFFFFFFF: fatal on sight, nothing buffered *)
      send_all c.fd "\xFF\xFF\xFF\xFF";
      expect_eof c;
      let st = Net_server.stats srv in
      Alcotest.(check int) "protocol error" 1 st.Netmsg.protocol_errors;
      Alcotest.(check int) "no queue growth" 0 st.Netmsg.queue_bytes;
      Unix.close c.fd)

let test_attack_interleaved_partial_frames backend () =
  (* Dribbling valid frames one byte at a time must WORK (the decoder is
     incremental); the attack only wastes the attacker's time. *)
  with_server ~backend (fun srv path _ ->
      let c = connect path in
      let wire = Frame.encode (Netmsg.subscribe_to_bytes prms) in
      String.iter
        (fun ch ->
          send_all c.fd (String.make 1 ch);
          ignore (Unix.select [] [] [] 0.001))
        wire;
      (match read_frames c 1 with
      | [ p ] -> (
          match Netmsg.hello_of_bytes prms p with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "bad hello: %s" e)
      | fs -> Alcotest.failf "expected hello, got %d" (List.length fs));
      let st = Net_server.stats srv in
      Alcotest.(check int) "no protocol error" 0 st.Netmsg.protocol_errors;
      Unix.close c.fd)

let test_attack_kind_confusion backend () =
  (* A well-formed codec object of the WRONG kind — a Key_update pushed
     at the server, a client-bound Net_hello, a Net_stats reply — must
     disconnect, not confuse the dispatcher. *)
  with_server ~backend (fun srv path timeline ->
      let pub = Net_server.public srv in
      let attacks =
        [
          (* a valid Key_update (clients receive these, never send them) *)
          (let rng = Hashing.Drbg.create ~seed:"attacker" () in
           let sec, _ = Tre.Server.keygen prms rng in
           Tre.update_to_bytes prms
             (Tre.issue_update prms sec (Timeline.label timeline 1)));
          (* a server-to-client hello *)
          Netmsg.hello_to_bytes prms
            {
              Netmsg.origin = "utc";
              granularity_us = 1_000_000;
              current_epoch = 0;
              server_g = pub.Tre.Server.g;
              server_sg = pub.Tre.Server.sg;
            };
          (* raw garbage that is not even an envelope *)
          "not a codec object";
        ]
      in
      List.iteri
        (fun i payload ->
          let c = connect path in
          send_all c.fd (Frame.encode payload);
          expect_eof c;
          Unix.close c.fd;
          let st = Net_server.stats srv in
          Alcotest.(check int)
            (Printf.sprintf "attack %d counted" i)
            (i + 1) st.Netmsg.protocol_errors)
        attacks)

(* --------------------------------------------------- poller backend *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () -> f a b)

let test_poller_readiness backend () =
  let p = Poller.create ~backend () in
  Fun.protect
    ~finally:(fun () -> Poller.close p)
    (fun () ->
      Alcotest.(check string) "backend honoured"
        (Poller.backend_name backend)
        (Poller.backend_name (Poller.backend p));
      with_socketpair (fun a b ->
          Poller.add p a ~read:true ~write:false;
          Alcotest.(check int) "registered" 1 (Poller.fd_count p);
          let n = Poller.wait p ~timeout_ms:0 (fun _ ~readable:_ ~writable:_ -> ()) in
          Alcotest.(check int) "idle socket: no events" 0 n;
          ignore (Unix.write b (Bytes.of_string "x") 0 1);
          let saw = ref false in
          let n =
            Poller.wait p ~timeout_ms:2000 (fun fd ~readable ~writable:_ ->
                if fd = a && readable then saw := true)
          in
          Alcotest.(check bool) "ready event reported" true (n >= 1);
          Alcotest.(check bool) "readable" true !saw;
          (* level-triggered: unread bytes keep reporting *)
          saw := false;
          ignore
            (Poller.wait p ~timeout_ms:2000 (fun fd ~readable ~writable:_ ->
                 if fd = a && readable then saw := true));
          Alcotest.(check bool) "level-triggered until drained" true !saw;
          ignore (Unix.read a (Bytes.create 8) 0 8);
          let n = Poller.wait p ~timeout_ms:0 (fun _ ~readable:_ ~writable:_ -> ()) in
          Alcotest.(check int) "drained: quiet again" 0 n;
          Poller.del p a;
          Alcotest.(check int) "deregistered" 0 (Poller.fd_count p)))

let test_poller_interest_transitions backend () =
  (* The server only flips write interest on queue empty<->non-empty
     transitions; modify and del must therefore take effect exactly. *)
  let p = Poller.create ~backend () in
  Fun.protect
    ~finally:(fun () -> Poller.close p)
    (fun () ->
      with_socketpair (fun a _b ->
          Poller.add p a ~read:true ~write:true;
          let w = ref false in
          ignore
            (Poller.wait p ~timeout_ms:2000 (fun fd ~readable:_ ~writable ->
                 if fd = a && writable then w := true));
          Alcotest.(check bool) "empty send buffer is writable" true !w;
          (* queue drained: drop write interest — idle socket goes quiet *)
          Poller.modify p a ~read:true ~write:false;
          let n = Poller.wait p ~timeout_ms:0 (fun _ ~readable:_ ~writable:_ -> ()) in
          Alcotest.(check int) "write interest dropped" 0 n;
          (* queue refilled: write interest back on *)
          Poller.modify p a ~read:true ~write:true;
          w := false;
          ignore
            (Poller.wait p ~timeout_ms:2000 (fun fd ~readable:_ ~writable ->
                 if fd = a && writable then w := true));
          Alcotest.(check bool) "write interest restored" true !w;
          Poller.del p a;
          let n = Poller.wait p ~timeout_ms:0 (fun _ ~readable:_ ~writable:_ -> ()) in
          Alcotest.(check int) "no events after del" 0 n;
          (* del of an unknown fd is a no-op, not an error *)
          Poller.del p a))

let test_poller_writev () =
  if not Poller.writev_available then ()
  else
    with_socketpair (fun a b ->
        let parts = [| "hello"; " "; "vectored"; " world" |] in
        (* first_off models a partially-written head frame *)
        let wrote = Poller.writev a parts ~first_off:2 ~count:4 in
        let expect = "llo vectored world" in
        Alcotest.(check int) "all bytes in one call" (String.length expect) wrote;
        let buf = Bytes.create 64 in
        let r = Unix.read b buf 0 64 in
        Alcotest.(check string) "gather order preserved" expect
          (Bytes.sub_string buf 0 r);
        (* count bounds the submission: trailing elements are ignored *)
        let wrote = Poller.writev a parts ~first_off:0 ~count:1 in
        Alcotest.(check int) "count respected" 5 wrote;
        let r = Unix.read b buf 0 64 in
        Alcotest.(check string) "only the first element" "hello"
          (Bytes.sub_string buf 0 r))

(* Each daemon-facing group runs once per available backend; on
   platforms without epoll the epoll variant collapses to a visible
   skip case instead of silently vanishing from the run. *)

let backends =
  Poller.Select :: (if Poller.epoll_available () then [ Poller.Epoll ] else [])

let per_backend group cases =
  let real =
    List.map
      (fun b ->
        ( Printf.sprintf "%s (%s)" group (Poller.backend_name b),
          List.map
            (fun (name, fn) -> Alcotest.test_case name `Quick (fn b))
            cases ))
      backends
  in
  if Poller.epoll_available () then real
  else
    real
    @ [
        ( Printf.sprintf "%s (epoll)" group,
          [
            Alcotest.test_case "skipped: epoll unavailable" `Quick (fun () ->
                ());
          ] );
      ]

let () =
  Alcotest.run "net"
    ([
       ( "framing",
         [
           Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
           Alcotest.test_case "byte-by-byte" `Quick test_frame_byte_by_byte;
           Alcotest.test_case "oversized rejected" `Quick
             test_frame_oversized_rejected;
           Alcotest.test_case "oversized after valid" `Quick
             test_frame_oversized_after_valid;
           Alcotest.test_case "truncation visible" `Quick
             test_frame_truncation_visible;
         ] );
     ]
    @ per_backend "poller"
        [
          ("readiness + level-trigger", test_poller_readiness);
          ("interest transitions", test_poller_interest_transitions);
        ]
    @ [
        ( "poller (writev)",
          [ Alcotest.test_case "gathered send" `Quick test_poller_writev ] );
      ]
    @ per_backend "daemon"
        [
          ("subscribe/tick/verify", test_subscribe_tick_verify);
          ("encode-once fan-out", test_encode_once_fanout);
          ("archive endpoint", test_archive_endpoint);
          ("back-pressure eviction", test_backpressure_evicts_slow_reader);
        ]
    @ per_backend "attacks"
        [
          ("truncated prefix", test_attack_truncated_prefix);
          ("oversized length", test_attack_oversized_length);
          ("interleaved partials", test_attack_interleaved_partial_frames);
          ("kind confusion", test_attack_kind_confusion);
        ])
