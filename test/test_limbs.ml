(* Differential tests: the fixed-limb in-place kernels ({!Limbs}) against
   the generic variable-length Montgomery reference ({!Modarith.Mont}).

   Both sides keep canonical (fully reduced) representatives, so the
   contract is exact value equality through [to_bigint] on every
   operation, for every modulus shape — including adversarial ones: edge
   values 0, 1, m-1, values forcing full carry chains, and moduli that
   fill their top limb (which disable the lazy-reduction gate). *)

module B = Bigint
module Mont = Modarith.Mont

let bi = Alcotest.testable B.pp B.equal

(* Deterministic RNG for reproducible failures. *)
let rng = ref (Hashing.Drbg.create ~seed:"test-limbs" ())

let random_bigint bytes =
  B.of_bytes_be (Hashing.Drbg.generate !rng bytes)

(* Moduli under test: every named parameter set's p and q (odd), the
   256-bit test prime, a handful of random odd moduli of assorted limb
   counts, and maximal-limb moduli (bit length = 26k, flush with the
   kernel limb base) for which [Limbs.lazy_ok] is false and the reduced
   kernels must carry the day. *)
let moduli =
  let named =
    List.filter_map
      (fun n ->
        match Pairing.by_name n with
        | Some prms -> Some prms.Pairing.p
        | None -> None)
      [ "toy64"; "mid128"; "std160"; "toy64b"; "mid128b" ]
  in
  let p256 = B.sub (B.pow B.two 256) (B.of_int 189) in
  let random_odds =
    List.map
      (fun bytes ->
        let v = random_bigint bytes in
        let v = B.add v (B.shift_left B.one ((8 * bytes) - 1)) in
        if B.is_even v then B.succ v else v)
      [ 4; 9; 17; 33; 64 ]
  in
  (* Top kernel limb saturated: 26k-bit moduli, lazy gate off. *)
  let maximal =
    List.map
      (fun k -> B.sub (B.shift_left B.one (26 * k)) (B.of_int 61))
      [ 1; 3; 5; 9; 20 ]
  in
  named @ [ p256 ] @ random_odds @ maximal

let edge_values m =
  [ B.zero; B.one; B.of_int 2; B.pred m; B.sub m (B.of_int 2);
    (* All-ones limb patterns force full carry/borrow chains. *)
    B.erem (B.pred (B.shift_left B.one (31 * Nat.num_limbs (B.magnitude m)))) m;
    B.erem (B.shift_left B.one (31 * (Nat.num_limbs (B.magnitude m) - 1))) m ]

let values m n =
  edge_values m
  @ List.init n (fun _ -> B.erem (random_bigint (((B.bit_length m + 7) / 8) + 3)) m)

let check_modulus m =
  let kc = Limbs.create m in
  let mc = Mont.create m in
  let to_k v = Limbs.of_bigint kc v and to_m v = Mont.of_bigint mc v in
  let name op = Format.asprintf "%s mod %a" op B.pp m in
  let vs = values m 12 in
  (* Round trip. *)
  List.iter
    (fun v ->
      Alcotest.check bi (name "roundtrip") v (Limbs.to_bigint kc (to_k v)))
    vs;
  (* Unary ops. *)
  List.iter
    (fun v ->
      let a = to_k v and am = to_m v in
      let d = Limbs.alloc kc in
      Limbs.neg_into kc d a;
      Alcotest.check bi (name "neg") (Mont.to_bigint mc (Mont.neg mc am))
        (Limbs.to_bigint kc d);
      Limbs.sqr_into kc d a;
      Alcotest.check bi (name "sqr") (Mont.to_bigint mc (Mont.sqr mc am))
        (Limbs.to_bigint kc d);
      (* sqr with dst aliasing the operand. *)
      let a' = Limbs.of_bigint kc v in
      Limbs.sqr_into kc a' a';
      Alcotest.check bi (name "sqr-aliased")
        (Mont.to_bigint mc (Mont.sqr mc am))
        (Limbs.to_bigint kc a'))
    vs;
  (* Binary ops over all pairs of edge values plus random pairs. *)
  let pairs =
    let edges = edge_values m in
    List.concat_map (fun a -> List.map (fun b -> (a, b)) edges) edges
    @ List.init 20 (fun _ ->
          ( B.erem (random_bigint (((B.bit_length m + 7) / 8) + 1)) m,
            B.erem (random_bigint (((B.bit_length m + 7) / 8) + 1)) m ))
  in
  List.iter
    (fun (x, y) ->
      let a = to_k x and b = to_k y in
      let am = to_m x and bm = to_m y in
      let d = Limbs.alloc kc in
      Limbs.add_into kc d a b;
      Alcotest.check bi (name "add") (Mont.to_bigint mc (Mont.add mc am bm))
        (Limbs.to_bigint kc d);
      Limbs.sub_into kc d a b;
      Alcotest.check bi (name "sub") (Mont.to_bigint mc (Mont.sub mc am bm))
        (Limbs.to_bigint kc d);
      Limbs.mul_into kc d a b;
      Alcotest.check bi (name "mul") (Mont.to_bigint mc (Mont.mul mc am bm))
        (Limbs.to_bigint kc d);
      (* mul with dst aliasing both operand slots. *)
      let a' = Limbs.of_bigint kc x in
      Limbs.mul_into kc a' a' b;
      Alcotest.check bi (name "mul-aliased")
        (Mont.to_bigint mc (Mont.mul mc am bm))
        (Limbs.to_bigint kc a');
      (* Wide pipeline, gated exactly like the Fp2 lazy-reduction user. *)
      if Limbs.lazy_ok kc then begin
        let w = Limbs.wide_alloc kc in
        Limbs.mul_wide_into kc w a b;
        Limbs.redc_into kc d w;
        Alcotest.check bi (name "mul-wide+redc")
          (Mont.to_bigint mc (Mont.mul mc am bm))
          (Limbs.to_bigint kc d);
        Limbs.sqr_wide_into kc w a;
        Limbs.redc_into kc d w;
        Alcotest.check bi (name "sqr-wide+redc")
          (Mont.to_bigint mc (Mont.sqr mc am))
          (Limbs.to_bigint kc d);
        (* redc(a*b + m^2 - a*b) = redc(m^2) = m*R... reduced: 0. *)
        Limbs.mul_wide_into kc w a b;
        Limbs.wide_add_m2_into kc w;
        let w2 = Limbs.wide_alloc kc in
        Limbs.mul_wide_into kc w2 a b;
        Limbs.wide_sub_into kc w w w2;
        Limbs.redc_into kc d w;
        Alcotest.check bi (name "wide m^2 cancels") B.zero (Limbs.to_bigint kc d);
        (* redc(2*(a*b)) = 2ab * R^-1. *)
        Limbs.mul_wide_into kc w a b;
        Limbs.wide_double_into kc w;
        Limbs.redc_into kc d w;
        let ab = Mont.mul mc am bm in
        Alcotest.check bi (name "wide double")
          (Mont.to_bigint mc (Mont.add mc ab ab))
          (Limbs.to_bigint kc d)
      end)
    pairs;
  (* pow against the generic reference, assorted exponents. *)
  let exps =
    [ B.zero; B.one; B.of_int 2; B.of_int 255; B.pred m; m; B.pow B.two 75 ]
    @ List.init 4 (fun _ -> random_bigint 20)
  in
  List.iter
    (fun v ->
      List.iter
        (fun e ->
          let d = Limbs.alloc kc in
          Limbs.pow_into kc d (to_k v) e;
          Alcotest.check bi (name "pow")
            (Mont.to_bigint mc (Mont.pow mc (to_m v) e))
            (Limbs.to_bigint kc d))
        exps)
    [ B.zero; B.one; B.pred m; B.erem (random_bigint 16) m ];
  (* inv: agreement with the (fixed) generic path, and a*a^-1 = 1 —
     where gcd(a, m) = 1; both sides raise Division_by_zero otherwise. *)
  List.iter
    (fun v ->
      if B.equal (Modarith.gcd v m) B.one && not (B.is_zero v) then begin
        let d = Limbs.alloc kc in
        Limbs.inv_into kc d (to_k v);
        Alcotest.check bi (name "inv")
          (Mont.to_bigint mc (Mont.inv mc (to_m v)))
          (Limbs.to_bigint kc d);
        Limbs.mul_into kc d d (to_k v);
        Alcotest.check bi (name "a * a^-1") B.one (Limbs.to_bigint kc d)
      end
      else if not (B.is_zero (B.erem v m)) then
        Alcotest.check_raises (name "inv non-invertible") Division_by_zero
          (fun () ->
            ignore (Limbs.inv_into kc (Limbs.alloc kc) (to_k v))))
    (values m 6)

let test_differential () = List.iter check_modulus moduli

let test_mont_inv_roundtrip_equiv () =
  (* The single-conversion [Mont.inv] must agree with the old
     decode-invert-encode path on every modulus. *)
  List.iter
    (fun m ->
      let mc = Mont.create m in
      List.iter
        (fun v ->
          if B.equal (Modarith.gcd v m) B.one && not (B.is_zero v) then begin
            let a = Mont.of_bigint mc v in
            let old_path =
              Mont.of_bigint mc (Modarith.invmod (Mont.to_bigint mc a) m)
            in
            Alcotest.check bi "inv = decode/invert/encode"
              (Mont.to_bigint mc old_path)
              (Mont.to_bigint mc (Mont.inv mc a))
          end)
        (values m 8))
    moduli

(* The hot kernels must stay allocation-free: their scratch is per-domain
   and grow-only, so after a warm-up call the steady state allocates
   nothing. Guards the binary-extgcd inversion (and the mul it ends on)
   against silently regressing to an allocating path. *)
let test_inv_allocation_free () =
  List.iter
    (fun n ->
      match Pairing.by_name n with
      | None -> ()
      | Some prms ->
          let m = prms.Pairing.p in
          let kc = Limbs.create m in
          let a = Limbs.of_bigint kc (B.erem (random_bigint 40) m) in
          let d = Limbs.alloc kc in
          (* Warm up the per-domain scratch so growth is behind us. *)
          Limbs.inv_into kc d a;
          let rounds = 50 in
          let before = Gc.allocated_bytes () in
          for _ = 1 to rounds do
            Limbs.inv_into kc d a
          done;
          let words = (Gc.allocated_bytes () -. before) /. 8. in
          let per_op = words /. float_of_int rounds in
          if per_op > 1.0 then
            Alcotest.failf "inv_into allocates %.1f words/op at %s" per_op n)
    [ "toy64"; "std160" ]

(* Concurrent kernel use from multiple domains must be race-free (each
   domain owns its DLS scratch) and bit-identical to the serial run. *)
let test_pool_race_free () =
  let m = B.sub (B.pow B.two 256) (B.of_int 189) in
  let kc = Limbs.create m in
  let items =
    List.init 64 (fun i ->
        (B.erem (random_bigint 33) m, B.erem (random_bigint 33) m, i))
  in
  let work (x, y, i) =
    (* A chain of kernel ops exercising every scratch slot. *)
    let a = Limbs.of_bigint kc x and b = Limbs.of_bigint kc y in
    let d = Limbs.alloc kc in
    Limbs.mul_into kc d a b;
    Limbs.sqr_into kc d d;
    Limbs.add_into kc d d a;
    Limbs.sub_into kc d d b;
    Limbs.pow_into kc d d (B.of_int (97 + i));
    let w = Limbs.wide_alloc kc in
    Limbs.mul_wide_into kc w d a;
    Limbs.redc_into kc d w;
    Limbs.to_bigint kc d
  in
  let serial = List.map work items in
  let pool = Pool.create ~domains:4 () in
  let parallel = Pool.map pool work items in
  Pool.shutdown pool;
  List.iter2
    (fun s p -> Alcotest.check bi "pool = serial" s p)
    serial parallel

let () =
  Alcotest.run "limbs"
    [
      ( "kernel-vs-mont",
        [
          Alcotest.test_case "differential all moduli" `Quick test_differential;
          Alcotest.test_case "mont inv single-conversion" `Quick
            test_mont_inv_roundtrip_equiv;
          Alcotest.test_case "inv allocation-free" `Quick
            test_inv_allocation_free;
        ] );
      ( "domains",
        [ Alcotest.test_case "pool race-free" `Quick test_pool_race_free ] );
    ]
