(* Bench regression guard: parses the benchmark JSON artifacts and fails
   (exit 1) if any kernel-vs-reference speedup sits below its checked-in
   floor, or if an expected row is missing entirely.

   Each artifact carries its own floor set, keyed by file basename:
   BENCH_E1_KERNEL.json (the E1 kernel-vs-reference table) and
   BENCH_E14_DELEGATE.json (the E14 thin-client delegation table). Run
   with explicit paths, or with no arguments to check both defaults.

   The floors are deliberately BELOW current measurements (roughly
   70–85% of the numbers in the checked-in JSONs) so CI-runner noise
   does not false-alarm, while silent structural regressions — a fast
   path that stops engaging, a kernel quietly falling back to the
   reference, a row dropped from the report — still fail the build. The
   *b parameter sets sat at ~1.0x pairing speedup for two PRs precisely
   because nothing gated them; these floors are the gate. *)

(* (params, operation prefix, minimum speedup). Operations matched by
   prefix so the parameterized "curve-steps (64 dbl+add)" row keys on its
   stable stem. *)
let e1_floors =
  [
    (* field kernels: in-place vs generic Montgomery, all sets *)
    ("toy64", "field-mul", 1.3); ("toy64b", "field-mul", 1.3);
    ("mid128", "field-mul", 1.4); ("mid128b", "field-mul", 1.4);
    ("std160", "field-mul", 1.4);
    ("toy64", "field-sqr", 1.4); ("toy64b", "field-sqr", 1.4);
    ("mid128", "field-sqr", 1.5); ("mid128b", "field-sqr", 1.5);
    ("std160", "field-sqr", 1.5);
    ("toy64", "field-inv", 2.5); ("toy64b", "field-inv", 2.5);
    ("mid128", "field-inv", 2.0); ("mid128b", "field-inv", 2.0);
    ("std160", "field-inv", 1.8);
    ("toy64", "curve-steps", 0.9); ("toy64b", "curve-steps", 0.9);
    ("mid128", "curve-steps", 0.9); ("mid128b", "curve-steps", 0.9);
    ("std160", "curve-steps", 0.85);
    (* the pairing stack: the *b floors are the satellite-2 regression
       gate (Jacobian x1 kernel loop), the xx floors the PR-5 one *)
    ("toy64", "pairing", 1.7); ("toy64b", "pairing", 3.0);
    ("mid128", "pairing", 2.0); ("mid128b", "pairing", 4.0);
    ("std160", "pairing", 1.6);
    ("toy64", "miller-loop", 1.3); ("toy64b", "miller-loop", 2.5);
    ("mid128", "miller-loop", 1.0); ("mid128b", "miller-loop", 4.5);
    ("std160", "miller-loop", 0.95);
    (* final exp: every set must beat the reference outright — the
       kernel exists for no other reason. mid128b sat at 0.89x for a PR
       because its floor (0.75) tolerated losing to the reference; the
       multiplication-free cyclotomic squaring and the costed window
       scan put all five sets at 1.05–1.10x, and 1.0 is the floor that
       makes "kernel slower than reference" a build failure. *)
    ("toy64", "final-exp", 1.0); ("toy64b", "final-exp", 1.0);
    ("mid128", "final-exp", 1.0); ("mid128b", "final-exp", 1.0);
    ("std160", "final-exp", 1.0);
    (* the product kernel: one interleaved Miller loop + membership test
       vs two separate prepared pairings. The toy64 floor came down from
       1.4 when the cyclotomic final exp sped up: the REFERENCE side of
       this ratio pays two final exponentiations and the product kernel
       none, so every fexp win compresses the ratio — at toy64's sizes
       (fexp ~10% of a pairing) from ~1.5x to a stable ~1.3x. *)
    ("toy64", "verify-2pair", 1.2); ("toy64b", "verify-2pair", 1.1);
    ("mid128", "verify-2pair", 1.25); ("mid128b", "verify-2pair", 1.25);
    ("std160", "verify-2pair", 1.25);
  ]

(* E14: thin-client ONLINE cost of the hardened (Liu–Cao-resistant)
   delegation vs computing on-device. The reference side is the full
   kernel pairing stack, so these ratios measure "what outsourcing buys
   a client that could also compute locally". The toy floors are
   documentation floors: at 64-bit sizes a pairing is cheaper than the
   hardened check's GT membership exponentiations, so the thin client
   legitimately loses there and the floor only pins that it does not
   get dramatically worse. mid128b/std160 are the sets where delegation
   must pay off (sparse group order → expensive Miller loop), and their
   floors require an outright win on the raw pairing row. The offline
   (blinding) and helper (serve) rows have no reference and carry no
   floor — they are reported for the E14 table, not gated. *)
let e14_floors =
  [
    ("toy64", "delegate-pair-client", 0.45);
    ("toy64b", "delegate-pair-client", 0.85);
    ("mid128", "delegate-pair-client", 0.90);
    ("mid128b", "delegate-pair-client", 1.50);
    ("std160", "delegate-pair-client", 1.25);
    ("toy64", "delegate-verify", 0.45);
    ("toy64b", "delegate-verify", 0.80);
    ("mid128", "delegate-verify", 0.75);
    ("mid128b", "delegate-verify", 1.05);
    ("std160", "delegate-verify", 0.85);
  ]

let floor_sets =
  [ ("BENCH_E1_KERNEL.json", e1_floors); ("BENCH_E14_DELEGATE.json", e14_floors) ]

let files =
  if Array.length Sys.argv > 1 then List.tl (Array.to_list Sys.argv)
  else List.map fst floor_sets

(* The JSON is the bench harness's own hand-rolled writer: one row object
   per line, string values unescaped-simple, numbers plain (NaN written
   as null, which float_field rejects — no-reference rows carry no
   speedup and are invisible here). Line-oriented field extraction is
   exact for that shape. *)
let string_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match String.index_opt line '{' with
  | None -> None
  | Some _ -> (
      let plen = String.length pat in
      let llen = String.length line in
      let rec find i =
        if i + plen > llen then None
        else if String.sub line i plen = pat then
          let j = ref (i + plen) in
          while !j < llen && line.[!j] <> '"' do incr j done;
          Some (String.sub line (i + plen) (!j - i - plen))
        else find (i + 1)
      in
      find 0)

let float_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then begin
      let j = ref (i + plen) in
      while !j < llen && line.[!j] <> ',' && line.[!j] <> '}' do incr j done;
      float_of_string_opt (String.trim (String.sub line (i + plen) (!j - i - plen)))
    end
    else find (i + 1)
  in
  find 0

let check_file file =
  let floors =
    match List.assoc_opt (Filename.basename file) floor_sets with
    | Some f -> f
    | None ->
        Printf.eprintf "bench-guard: no floor set for %s (known: %s)\n" file
          (String.concat ", " (List.map fst floor_sets));
        exit 1
  in
  let ic =
    try open_in file
    with Sys_error e ->
      Printf.eprintf "bench-guard: cannot open %s: %s\n" file e;
      exit 1
  in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match (string_field line "params", string_field line "operation",
              float_field line "speedup") with
       | Some p, Some op, Some s -> rows := (p, op, s) :: !rows
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  let rows = !rows in
  let failures = ref 0 in
  List.iter
    (fun (params, op_prefix, floor) ->
      let matches =
        List.filter
          (fun (p, op, _) ->
            p = params
            && String.length op >= String.length op_prefix
            && String.sub op 0 (String.length op_prefix) = op_prefix)
          rows
      in
      match matches with
      | [] ->
          incr failures;
          Printf.printf "MISSING  %-8s %-20s (floor %.2fx): no such row in %s\n"
            params op_prefix floor file
      | l ->
          List.iter
            (fun (_, op, s) ->
              if s < floor then begin
                incr failures;
                Printf.printf "FAIL     %-8s %-20s %.2fx < floor %.2fx\n" params
                  op s floor
              end
              else
                Printf.printf "ok       %-8s %-20s %.2fx >= %.2fx\n" params op s
                  floor)
            l)
    floors;
  if !failures > 0 then begin
    Printf.printf "bench-guard: %d floor violation(s) in %s\n" !failures file;
    exit 1
  end
  else
    Printf.printf "bench-guard: all %d floors hold in %s\n" (List.length floors)
      file

let () = List.iter check_file files
