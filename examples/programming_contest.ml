(* Internet programming contest — the paper's second motivating scenario
   (§1).

     dune exec examples/programming_contest.exe

   Teams all over the world must receive the problem set well before the
   start (to neutralize network delay and congestion) but must not be able
   to open it early. The organizer distributes the encrypted problems
   hours ahead over a slow, jittery network; at the start instant the
   time server broadcasts ONE update and every team everywhere unlocks
   simultaneously — the single-update scalability property in action. *)

let () =
  let prms = Pairing.mid128 () in
  (* A deliberately bad network: 2s base latency, 3s jitter, 10% loss. *)
  let net = Simnet.create ~seed:"contest" ~latency:2.0 ~jitter:3.0 ~loss:0.10 () in
  let timeline = Timeline.create ~granularity:3600.0 () (* hourly epochs *) in
  let server = Passive_server.create prms ~net ~timeline ~name:"atomic-clock" in
  let start_epoch = 3 in
  let start_label = Timeline.label timeline start_epoch in

  let n_teams = 40 in
  let teams =
    List.init n_teams (fun i ->
        Client.create prms ~net ~server:(Passive_server.public server)
          ~name:(Printf.sprintf "team-%02d" i))
  in
  Passive_server.start server ~net ~first_epoch:1 ~epochs:4
    ~recipients:(List.map (fun t -> (Client.name t, Client.on_wire t)) teams);

  (* Hours before the start, the organizer sends each team its (team-keyed)
     problem set. *)
  let rng = Hashing.Drbg.create ~seed:"organizer" () in
  let problem_set = "P1: reverse a linked list. P2: pair some bilinear maps. P3: ship it." in
  List.iter
    (fun team ->
      let ct =
        Tre.encrypt prms (Passive_server.public server) (Client.public_key team)
          ~release_time:start_label rng problem_set
      in
      (* Lossy network: retransmit every 60s until the team has it. This is
         exactly why distribution must happen well before the start. *)
      let received = ref false in
      let rec attempt at =
        Simnet.schedule net ~at (fun () ->
            if not !received then begin
              Simnet.send net ~src:"organizer" ~dst:(Client.name team) ~kind:"problems"
                ~bytes:(String.length (Tre.ciphertext_to_bytes prms ct))
                (fun () ->
                  if not !received then begin
                    received := true;
                    Client.enqueue_ciphertext team ct
                  end);
              attempt (at +. 60.0)
            end)
      in
      attempt 600.0)
    teams;

  (* At start - 1s: nobody can read, however fast their machine. *)
  Simnet.schedule net
    ~at:(Timeline.start_of timeline start_epoch -. 1.0)
    (fun () ->
      let opened =
        List.fold_left (fun acc t -> acc + List.length (Client.deliveries t)) 0 teams
      in
      Printf.printf "[t-1s] problem sets delivered to %d/%d teams, opened by %d (must be 0)\n"
        (List.fold_left
           (fun acc t -> acc + Client.pending_count t + List.length (Client.deliveries t))
           0 teams)
        n_teams opened;
      assert (opened = 0));

  Simnet.run net;

  (* Some teams may have lost the broadcast on this terrible network: they
     pull the archived update (it is public, anonymous data). *)
  List.iter
    (fun team ->
      let attempts = ref 0 in
      while Client.deliveries team = [] && !attempts < 50 do
        incr attempts;
        Client.fetch_missing team net server start_label;
        Simnet.run net
      done)
    teams;

  let unlock_times =
    List.filter_map
      (fun team ->
        match Client.deliveries team with
        | [ d ] -> Some (d.Client.decrypted_at -. Timeline.start_of timeline start_epoch)
        | _ -> None)
      teams
  in
  Printf.printf "%d/%d teams unlocked the problems\n" (List.length unlock_times) n_teams;
  assert (List.length unlock_times = n_teams);
  let worst = List.fold_left Float.max 0.0 unlock_times in
  let sum = List.fold_left ( +. ) 0.0 unlock_times in
  Printf.printf "unlock skew after the start instant: mean %.2fs, worst %.2fs\n"
    (sum /. float_of_int n_teams) worst;
  (* Nobody unlocked early. *)
  assert (List.for_all (fun dt -> dt >= 0.0) unlock_times);
  (* And the server did O(1) work for 40 teams: one update per epoch. *)
  Printf.printf "server broadcasts: %d updates x %d bytes (independent of %d teams)\n"
    (Passive_server.updates_issued server)
    (Passive_server.update_size server)
    n_teams;
  print_endline "programming_contest: OK"
