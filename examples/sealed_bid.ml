(* Sealed-bid auction — the paper's first motivating scenario (§1).

     dune exec examples/sealed_bid.exe

   Bidders seal their bids so that not even the government agent handling
   them can peek before the bidding period closes. Each bid is encrypted
   to the auctioneer with release time = closing time; the agent can
   collect and store ciphertexts early, but opening them requires the
   time server's closing-time update — which does not exist yet. Run on
   the simulated network so the timing claims are enforced by the event
   clock, not by convention. *)

let () =
  let prms = Pairing.mid128 () in
  let net = Simnet.create ~seed:"sealed-bid" ~latency:0.02 ~jitter:0.01 () in
  let timeline = Timeline.create ~granularity:60.0 () (* 1-minute epochs *) in
  let server = Passive_server.create prms ~net ~timeline ~name:"time-server" in
  let closing_epoch = 10 in
  let closing_label = Timeline.label timeline closing_epoch in

  (* The auctioneer is an ordinary TRE receiver. *)
  let auctioneer =
    Client.create prms ~net ~server:(Passive_server.public server) ~name:"auctioneer"
  in
  Passive_server.start server ~net ~first_epoch:1 ~epochs:12
    ~recipients:[ (Client.name auctioneer, Client.on_wire auctioneer) ];

  (* Bidders seal bids at various times before closing. Note the bidders
     never contact the time server: it will never know this auction
     happened. *)
  let bids =
    [ ("acme-corp", 1_250_000); ("bidco", 1_175_000); ("oligopoly-llc", 1_420_000) ]
  in
  let rng = Hashing.Drbg.create ~seed:"bidders" () in
  List.iteri
    (fun i (bidder, amount) ->
      let submit_at = float_of_int (60 + (i * 90)) in
      Simnet.schedule net ~at:submit_at (fun () ->
          let sealed =
            Tre.encrypt prms (Passive_server.public server)
              (Client.public_key auctioneer) ~release_time:closing_label rng
              (Printf.sprintf "%s:%d" bidder amount)
          in
          Printf.printf "[t=%7.1f] %s submits a sealed bid (%d bytes)\n"
            (Simnet.now net) bidder
            (String.length (Tre.ciphertext_to_bytes prms sealed));
          Simnet.send net ~src:bidder ~dst:"auctioneer" ~kind:"sealed-bid"
            ~bytes:(String.length (Tre.ciphertext_to_bytes prms sealed))
            (fun () -> Client.enqueue_ciphertext auctioneer sealed)))
    bids;

  (* Just before closing, verify nothing is readable. *)
  Simnet.schedule net
    ~at:(Timeline.start_of timeline closing_epoch -. 1.0)
    (fun () ->
      Printf.printf "[t=%7.1f] bidding closes in 1s: %d sealed bids held, %d opened\n"
        (Simnet.now net)
        (Client.pending_count auctioneer)
        (List.length (Client.deliveries auctioneer));
      assert (Client.deliveries auctioneer = []));

  Simnet.run net;

  (* The closing-epoch update arrived: every bid opened at once. *)
  Printf.printf "[t=%7.1f] bidding closed; opening bids:\n" (Simnet.now net);
  let parse d =
    match String.split_on_char ':' d.Client.plaintext with
    | [ bidder; amount ] -> (bidder, int_of_string amount)
    | _ -> failwith "malformed bid"
  in
  let opened = List.map parse (Client.deliveries auctioneer) in
  List.iter
    (fun (bidder, amount) -> Printf.printf "  %-14s $%d\n" bidder amount)
    opened;
  let winner, best =
    List.fold_left (fun (wb, wa) (b, a) -> if a > wa then (b, a) else (wb, wa))
      ("", 0) opened
  in
  Printf.printf "winner: %s at $%d\n" winner best;
  assert (List.length opened = List.length bids);
  (* The server's trace shows zero knowledge of the auction. *)
  assert (Simnet.sent_to net "time-server" = []);
  Printf.printf "time server sent %d broadcasts, received 0 messages, knows nothing.\n"
    (Passive_server.updates_issued server);
  print_endline "sealed_bid: OK"
