(* Domain pool: workers park on a condition variable between batches and
   are handed a whole batch as one "claim loop" closure. Work is split
   into contiguous chunks; lanes claim chunk indices off one atomic
   counter (work-stealing-free: a chunk, once claimed, runs to completion
   on its claimant), and every lane writes results into its own disjoint
   slice of the output array — so ordering is positional and the output of
   a pure function is bit-identical to [List.map], whatever the timing. *)

type stats = {
  batches : int;
  parallel_batches : int;
  chunks_by_lane : int array;
  items_by_lane : int array;
}

type t = {
  size : int;
  oversubscribed : bool; (* measurement mode: lanes beyond the core count *)
  lock : Mutex.t; (* guards job/generation/stopped/workers *)
  work : Condition.t;
  mutable job : (unit -> unit) option; (* the current batch's claim loop *)
  mutable generation : int; (* bumped per batch; workers wait on it *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  submit : Mutex.t; (* serializes concurrent map calls on one pool *)
  (* Scheduling observability: chunks/items retired per lane (lane 0 is
     the calling domain). Atomics because stats may be read while a
     batch is in flight; per-lane writes never contend. *)
  st_batches : int Atomic.t;
  st_parallel : int Atomic.t;
  st_chunks : int Atomic.t array;
  st_items : int Atomic.t array;
}

let size t = t.size
let recommended () = Domain.recommended_domain_count ()

let stats t =
  {
    batches = Atomic.get t.st_batches;
    parallel_batches = Atomic.get t.st_parallel;
    chunks_by_lane = Array.map Atomic.get t.st_chunks;
    items_by_lane = Array.map Atomic.get t.st_items;
  }

let reset_stats t =
  Atomic.set t.st_batches 0;
  Atomic.set t.st_parallel 0;
  Array.iter (fun a -> Atomic.set a 0) t.st_chunks;
  Array.iter (fun a -> Atomic.set a 0) t.st_items

(* A worker loops: wait for a generation bump, snapshot the job, run its
   claim loop to exhaustion, repeat. A stale wake-up is harmless — the
   claim loop of a finished batch returns immediately (no chunks left),
   and a cleared job is skipped. *)
let rec worker_loop pool seen =
  Mutex.lock pool.lock;
  while pool.generation = seen && not pool.stopped do
    Condition.wait pool.work pool.lock
  done;
  let gen = pool.generation and job = pool.job and stop = pool.stopped in
  Mutex.unlock pool.lock;
  if not stop then begin
    (match job with Some run -> run () | None -> ());
    worker_loop pool gen
  end

let shutdown pool =
  Mutex.lock pool.lock;
  let workers = pool.workers in
  pool.workers <- [];
  if not pool.stopped then begin
    pool.stopped <- true;
    Condition.broadcast pool.work
  end;
  Mutex.unlock pool.lock;
  List.iter Domain.join workers

let create ?domains ?(oversubscribe = false) () =
  let size =
    match domains with
    | Some n when n < 1 -> invalid_arg "Pool.create: domains must be >= 1"
    | Some n -> n
    | None -> recommended ()
  in
  let pool =
    {
      size;
      oversubscribed = oversubscribe;
      lock = Mutex.create ();
      work = Condition.create ();
      job = None;
      generation = 0;
      stopped = false;
      workers = [];
      submit = Mutex.create ();
      st_batches = Atomic.make 0;
      st_parallel = Atomic.make 0;
      st_chunks = Array.init size (fun _ -> Atomic.make 0);
      st_items = Array.init size (fun _ -> Atomic.make 0);
    }
  in
  (* Workers beyond the host's core count are never spawned, not merely
     never admitted: even a PARKED domain joins every stop-the-world
     minor-GC handshake (via its backup thread), which measurably slows
     allocation-heavy pairing work on the domains that do run. An
     oversized pool therefore behaves exactly like one sized to the
     host. [oversubscribe] lifts the cap for measurement only — it is
     how the E10 bench bounds the cost of lanes beyond the core count
     on hosts where they cannot help. *)
  let cap = if oversubscribe then size else Stdlib.min size (recommended ()) in
  let spawned = Stdlib.max 0 (cap - 1) in
  pool.workers <-
    List.init spawned (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  (* A live domain parked on a condition variable would keep the process
     from exiting cleanly; join them on the way out. *)
  if spawned > 0 then at_exit (fun () -> shutdown pool);
  pool

let serial_map f xs = List.map f xs

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] ->
      Atomic.incr pool.st_batches;
      [ f x ]
  | _ when pool.size = 1 || pool.stopped ->
      Atomic.incr pool.st_batches;
      serial_map f xs
  | _ ->
      Mutex.lock pool.submit;
      let finally () = Mutex.unlock pool.submit in
      Fun.protect ~finally (fun () ->
          Atomic.incr pool.st_batches;
          let arr = Array.of_list xs in
          let n = Array.length arr in
          let results = Array.make n None in
          (* Never run more lanes than the host has cores: on OCaml 5 every
             RUNNING domain joins the stop-the-world minor-collection
             handshake, so lanes beyond the core count don't just fail to
             help — time-slicing delays every handshake and slows the whole
             batch down. Extra workers simply stay parked (unless the pool
             was built with [oversubscribe], which exists to measure
             exactly that slowdown). *)
          let active =
            if pool.oversubscribed then pool.size
            else Stdlib.min pool.size (recommended ())
          in
          (* A few chunks per lane balances skew against claim traffic;
             per-item crypto work is heavy, so chunks can be small. *)
          let lanes = Stdlib.min active n in
          if lanes > 1 then Atomic.incr pool.st_parallel;
          let chunk = Stdlib.max 1 (n / (4 * lanes)) in
          let nchunks = (n + chunk - 1) / chunk in
          let next = Atomic.make 0 in
          let failed = Atomic.make None in
          let done_lock = Mutex.create () in
          let done_cond = Condition.create () in
          let completed = ref 0 in
          let run lane =
            let rec claim () =
              let c = Atomic.fetch_and_add next 1 in
              if c < nchunks then begin
                (* After a failure, later chunks retire without running:
                   the batch result is the exception either way. *)
                (if Atomic.get failed = None then
                   try
                     let lo = c * chunk in
                     let hi = Stdlib.min n (lo + chunk) in
                     for i = lo to hi - 1 do
                       results.(i) <- Some (f arr.(i))
                     done;
                     Atomic.incr pool.st_chunks.(lane);
                     ignore (Atomic.fetch_and_add pool.st_items.(lane) (hi - lo))
                   with e ->
                     let bt = Printexc.get_raw_backtrace () in
                     ignore (Atomic.compare_and_set failed None (Some (e, bt))));
                Mutex.lock done_lock;
                incr completed;
                if !completed = nchunks then Condition.broadcast done_cond;
                Mutex.unlock done_lock;
                claim ()
              end
            in
            claim ()
          in
          (* Publish the batch, join it from this domain, then wait for
             the chunks other lanes claimed. The completion count is the
             join barrier: once it reaches [nchunks], every result write
             happened-before this point (each lane retires its chunk under
             [done_lock] after writing). All parked workers wake on the
             broadcast, but only the first [lanes - 1] are admitted into
             the claim loop; the rest park again immediately. When the
             caller is the only active lane there is nothing to publish —
             it runs the claim loop alone (same code path, no wake-ups). *)
          let admitted = Atomic.make 0 in
          let worker_run () =
            let a = Atomic.fetch_and_add admitted 1 in
            if a < lanes - 1 then run (a + 1)
          in
          if lanes > 1 then begin
            Mutex.lock pool.lock;
            pool.job <- Some worker_run;
            pool.generation <- pool.generation + 1;
            Condition.broadcast pool.work;
            Mutex.unlock pool.lock
          end;
          run 0;
          Mutex.lock done_lock;
          while !completed < nchunks do
            Condition.wait done_cond done_lock
          done;
          Mutex.unlock done_lock;
          if lanes > 1 then begin
            Mutex.lock pool.lock;
            pool.job <- None;
            Mutex.unlock pool.lock
          end;
          match Atomic.get failed with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None ->
              Array.to_list
                (Array.map
                   (function Some v -> v | None -> assert false)
                   results))

let iter pool f xs = ignore (map pool (fun x -> f x) xs)

(* The process-wide pool, built on first demand. *)
let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.protect default_lock (fun () ->
      match !default_pool with
      | Some pool -> pool
      | None ->
          let pool = create () in
          default_pool := Some pool;
          pool)
