(** A fixed-size pool of OCaml 5 domains for data-parallel batch work.

    The paper's scalability story leaves all heavy lifting on the clients
    and auditors — many independent pairing computations per batch of key
    updates or ciphertexts. This pool is the runtime substrate for those
    batch APIs ({!Bls.verify_batch}, [Tre.Verifier.verify_updates],
    [Tre.decrypt_batch], the simulated network's parallel drain): domains
    are spawned {e once} and reused across calls, work is handed out in
    contiguous chunks claimed off a single atomic counter (no stealing, no
    per-item locking), and results always come back in input order.

    Scheduling is cooperative: the calling domain participates in every
    batch, so a pool of size [n] uses at most [n] domains while a batch is
    in flight and zero otherwise. A pool of size 1 spawns no domains at
    all and degenerates to [List.map] on the caller.

    Oversubscription guard: a batch never runs on more lanes than
    [recommended ()] (the host's core count), whatever the pool size —
    workers beyond the core count are not even spawned, because on OCaml 5
    every live domain (parked included) joins the stop-the-world minor-GC
    handshake, and lanes beyond the core count actively slow a batch down.
    An oversized pool therefore performs exactly like one sized to the
    host, and results are unchanged either way (output is positional, so
    lane count never affects it).

    Determinism: [map pool f xs] applies [f] to each element exactly once
    and returns results positionally, so for a pure [f] the output is
    bit-identical to [List.map f xs] regardless of pool size or timing.

    Exceptions: if [f] raises, the first exception (in claim order) is
    re-raised in the caller with its backtrace after every in-flight chunk
    has retired — workers never die, and the pool remains usable for
    subsequent calls.

    What it is NOT: a general async runtime. Tasks must not submit work to
    the pool they run on (no nesting), and shared mutable state inside [f]
    is the caller's responsibility — the intended use is pure per-item
    crypto work over immutable parameter sets (see {!Pairing.make}, whose
    generator tables are forced at construction precisely so they can be
    read from many domains). *)

type t

type stats = {
  batches : int;  (** [map]/[iter] calls, serial fallbacks included *)
  parallel_batches : int;  (** batches that entered the multi-lane path *)
  chunks_by_lane : int array;
      (** chunks retired per lane; index 0 is the calling domain, index
          [k > 0] the [k]-th admitted worker of each batch *)
  items_by_lane : int array;  (** list elements processed per lane *)
}
(** Scheduling observability: who actually did the work. The per-lane sums
    equal the totals handed to [map] (every element is processed exactly
    once), so a healthy multi-core run shows items spread across lanes
    while a 1-core host shows everything on lane 0 — the evidence the E10
    bench records in place of assuming scaling. *)

val create : ?domains:int -> ?oversubscribe:bool -> unit -> t
(** Create a pool of [domains] total lanes (the caller plus up to
    [domains - 1] worker domains — capped so caller + workers never
    exceed [recommended ()], see the oversubscription guard above).
    Defaults to [Domain.recommended_domain_count ()]. The workers are
    parked on a condition variable between batches; the pool registers an
    [at_exit] shutdown so a forgotten pool cannot leave the process
    hanging on live domains. [oversubscribe] (default [false]) lifts the
    core-count cap — spawning and admitting all [domains - 1] workers even
    beyond [recommended ()] — for measurement only: it is how the E10
    bench bounds the GC-handshake cost of extra lanes instead of asserting
    it. Raises [Invalid_argument] if [domains < 1]. *)

val stats : t -> stats
(** Snapshot of the counters since creation (or the last {!reset_stats}).
    Safe to call while a batch is in flight; the snapshot is then merely
    slightly stale, never torn per-counter. *)

val reset_stats : t -> unit

val size : t -> int
(** Total lanes, including the calling domain. *)

val default : unit -> t
(** A process-wide shared pool, created on first use (with the default
    size) and reused thereafter. Creation is mutex-guarded, so concurrent
    first calls are safe. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — how many lanes this machine
    profitably runs. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs]: apply [f] to every element across the pool; returns
    in input order. Serial fallback (no synchronization at all) when the
    pool has size 1, the list has fewer than 2 elements, or the pool has
    been shut down. Concurrent [map] calls on one pool from different
    domains are serialized internally. *)

val iter : t -> ('a -> unit) -> 'a list -> unit
(** [iter pool f xs] = [ignore (map pool f xs)], for effectful per-item
    work on disjoint state (e.g. delivering a broadcast to independent
    receivers). *)

val shutdown : t -> unit
(** Wake and join all worker domains. Idempotent; the pool stays usable
    afterwards in degraded (serial) mode. Called automatically at process
    exit. *)
