type identity = string
type time = string

exception Update_mismatch

module Server = struct
  type secret = { s : Bigint.t; gen : Curve.point }
  type public = { g : Curve.point; sg : Curve.point }

  let keygen ?g prms rng =
    let gen = match g with Some g -> g | None -> prms.Pairing.g in
    if Curve.is_infinity gen || not (Pairing.in_g1 prms gen) then
      invalid_arg "Id_tre.Server: generator must be a non-identity G1 point";
    let s = Pairing.random_scalar prms rng in
    ({ s; gen }, { g = gen; sg = Curve.mul prms.Pairing.curve s gen })

  let extract prms sec id =
    Curve.mul prms.Pairing.curve sec.s (Pairing.hash_to_g1 prms id)

  let issue_update prms sec t =
    { Tre.update_time = t;
      update_value = Curve.mul prms.Pairing.curve sec.s (Pairing.hash_to_g1 prms t) }
end

let verify_update prms (pub : Server.public) upd =
  Pairing.in_g1 prms upd.Tre.update_value
  && Pairing.pairing_equal_check prms
       ~lhs:(pub.Server.sg, Pairing.hash_to_g1 prms upd.Tre.update_time)
       ~rhs:(pub.Server.g, upd.Tre.update_value)

let verify_private_key prms (pub : Server.public) id d =
  Pairing.in_g1 prms d
  && Pairing.pairing_equal_check prms ~lhs:(pub.Server.g, d)
       ~rhs:(pub.Server.sg, Pairing.hash_to_g1 prms id)

type ciphertext = { u : Curve.point; v : string; release_time : time }

let session_key prms (srv_sg : Curve.point) ~id ~release_time ~r =
  let curve = prms.Pairing.curve in
  let ke =
    Curve.add curve (Pairing.hash_to_g1 prms id) (Pairing.hash_to_g1 prms release_time)
  in
  Pairing.pairing prms (Curve.mul curve r srv_sg) ke

let encrypt prms (srv : Server.public) id ~release_time rng msg =
  let r = Pairing.random_scalar prms rng in
  let k = session_key prms srv.Server.sg ~id ~release_time ~r in
  {
    u = Curve.mul prms.Pairing.curve r srv.Server.g;
    v = Hashing.Kdf.xor msg (Pairing.h2 prms k (String.length msg));
    release_time;
  }

(* Sender-side precomputation: K = e^(r*sG, K_E) = e^(sG, K_E)^r, with sG
   fixed — so prepare sG once and cache the pairing per (id, T); repeated
   encryptions to the same recipient and release time pairing-free, and
   even cache misses skip the Miller loop's point arithmetic. Outputs are
   bit-identical to {!encrypt} on the same rng stream. *)
module Encryptor = struct
  type t = {
    prms : Pairing.params;
    g_table : Curve.Table.t;
    sg_prep : Pairing.prepared;
    cache : (identity * time, Fp2.t) Hashtbl.t;
  }

  let create prms (srv : Server.public) =
    {
      prms;
      g_table =
        Curve.Table.create prms.Pairing.curve
          ~bits:(Bigint.bit_length prms.Pairing.q)
          srv.Server.g;
      sg_prep = Pairing.prepare prms srv.Server.sg;
      cache = Hashtbl.create 8;
    }

  let session_base enc ~id ~release_time =
    match Hashtbl.find_opt enc.cache (id, release_time) with
    | Some k -> k
    | None ->
        let ke =
          Curve.add enc.prms.Pairing.curve
            (Pairing.hash_to_g1 enc.prms id)
            (Pairing.hash_to_g1 enc.prms release_time)
        in
        let k = Pairing.pairing_prepared enc.prms enc.sg_prep ke in
        Hashtbl.add enc.cache (id, release_time) k;
        k

  let encrypt enc id ~release_time rng msg =
    let r = Pairing.random_scalar enc.prms rng in
    let k = Pairing.gt_pow enc.prms (session_base enc ~id ~release_time) r in
    {
      u = Curve.Table.mul enc.g_table r;
      v = Hashing.Kdf.xor msg (Pairing.h2 enc.prms k (String.length msg));
      release_time;
    }
end

let decrypt prms ~private_key upd ct =
  if upd.Tre.update_time <> ct.release_time then raise Update_mismatch;
  let kd = Curve.add prms.Pairing.curve private_key upd.Tre.update_value in
  let k = Pairing.pairing prms ct.u kd in
  Hashing.Kdf.xor ct.v (Pairing.h2 prms k (String.length ct.v))

(* Same sharding story as {!Tre.decrypt_batch}: each pair is one pairing
   over immutable inputs, output order is positional, so the pool path is
   bit-identical to the serial one. *)
let decrypt_batch ?pool prms ~private_key pairs =
  let one (upd, ct) = decrypt prms ~private_key upd ct in
  match pool with
  | None -> List.map one pairs
  | Some pool -> Pool.map pool one pairs

let escrow_decrypt prms (sec : Server.secret) id ct =
  (* The server derives the user's private key and the update by itself —
     inherent key escrow of identity-based schemes. *)
  let d = Server.extract prms sec id in
  let upd = Server.issue_update prms sec ct.release_time in
  let kd = Curve.add prms.Pairing.curve d upd.Tre.update_value in
  let k = Pairing.pairing prms ct.u kd in
  Hashing.Kdf.xor ct.v (Pairing.h2 prms k (String.length ct.v))

let ciphertext_to_bytes prms ct =
  Codec.encode prms Codec.Ciphertext_id (fun buf ->
      Codec.add_label buf ct.release_time;
      Codec.add_point prms buf ct.u;
      Codec.add_var buf ct.v)

let ciphertext_of_bytes prms s =
  Codec.decode prms Codec.Ciphertext_id s (fun r ->
      let release_time = Codec.read_label ~what:"release time" r in
      let u = Codec.read_g1 ~what:"U" prms r in
      let v = Codec.read_var ~what:"V" r in
      { u; v; release_time })

let ciphertext_overhead prms = Codec.header_bytes + 8 + Pairing.point_bytes prms
