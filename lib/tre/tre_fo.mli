(** Chosen-ciphertext-secure TRE via the Fujisaki–Okamoto transform.

    §5 of the paper: "the Fujisaki-Okamoto Transform ... can be applied to
    our schemes to obtain chosen-ciphertext secure schemes". The hybrid FO
    variant is used: the encryption randomness r is re-derived from a
    committed seed, so decryption can re-encrypt and reject any tampered
    ciphertext. *)

exception Decryption_failed
(** Raised when re-encryption validation fails — tampered or malformed
    ciphertext (the CCA rejection). *)

type ciphertext = {
  u : Curve.point;  (** U = rG with r = H3(seed, M, T) *)
  v : string;  (** seed xor H2(K) *)
  w : string;  (** M xor H4(seed) *)
  release_time : Tre.time;
}

val encrypt :
  Pairing.params ->
  Tre.Server.public ->
  Tre.User.public ->
  release_time:Tre.time ->
  Hashing.Drbg.t ->
  string ->
  ciphertext
(** Raises {!Tre.Invalid_receiver_key} like the base scheme. *)

val decrypt :
  Pairing.params ->
  Tre.Server.public ->
  Tre.User.public ->
  Tre.User.secret ->
  Tre.update ->
  ciphertext ->
  string
(** Recovers the seed and message, re-derives r, and re-checks [U = rG].
    Raises {!Decryption_failed} on any mismatch and {!Tre.Update_mismatch}
    on a wrong-time update. The receiver's public key is needed for the
    re-encryption check. *)

val ciphertext_to_bytes : Pairing.params -> ciphertext -> string
val ciphertext_of_bytes : Pairing.params -> string -> (ciphertext, string) result
(** Strict {!Codec} envelope (kind [CIPHERTEXT FO]); the decoder enforces
    [V] to be exactly the committed-seed width and accepts only the
    canonical encoding. Never raises. *)

val ciphertext_overhead : Pairing.params -> int
(** Bytes beyond the plaintext: envelope + point + 32-byte committed seed
    + framing. *)

(**/**)

val h3 :
  Pairing.params -> seed:string -> msg:string -> release_time:Tre.time -> Bigint.t
(** Internal: the FO scalar derivation, exposed for the domain-separation
    regression tests. Every variable-length field is length-prefixed, so
    distinct (seed, T, M) triples give distinct hash inputs. *)
