(** k-of-n threshold time server (extension; Boldyreva-style threshold BLS
    over the paper's GDH group).

    §5.3.5 splits trust by requiring ALL of N servers (any single honest
    server delays early release, but any single {e crashed} server halts
    the whole service). The threshold variant flips the availability
    trade-off: the secret s is Shamir-shared over n share-servers; any k
    cooperating servers produce the epoch's update and fewer than k can
    produce nothing — up to n-k servers may be offline (or refuse) without
    affecting receivers, and up to k-1 may be corrupted without enabling
    early release.

    The combined update is {e bit-identical} to a single-server update
    s*H1(T) (Lagrange interpolation in the exponent), so {b senders,
    receivers and ciphertexts are completely unchanged} — only the server
    side is replaced. Partial shares are individually verifiable against
    the published share commitments (s_i * G), so a corrupt share cannot
    poison the combination undetected. *)

type system = {
  public : Tre.Server.public;  (** the ordinary (G, sG) users see *)
  share_commitments : (int * Curve.point) array;  (** (i, s_i G), for share verification *)
  commitment_preps : (int * Pairing.prepared) array;
      (** the commitments {!Pairing.prepare}d once at setup; used by
          {!verify_partial} *)
  k : int;
  n : int;
}

type share_server
(** One of the n share-holders; holds s_i only. *)

type partial = { server_index : int; value : Curve.point }
(** A partial update s_i * H1(T). *)

val setup :
  Pairing.params -> Hashing.Drbg.t -> k:int -> n:int -> system * share_server list
(** Dealer-based setup (a distributed keygen could replace it; the dealer
    must forget s). Requires [1 <= k <= n]. *)

val issue_partial : Pairing.params -> share_server -> Tre.time -> partial

val verify_partial : Pairing.params -> system -> Tre.time -> partial -> bool
(** e^(G, sigma_i) = e^(s_i G, H1(T)) — catches corrupt share-servers. *)

val partial_to_bytes : Pairing.params -> partial -> string
val partial_of_bytes : Pairing.params -> string -> (partial, string) result
(** Strict {!Codec} envelope (kind [THRESHOLD PARTIAL]) so partials can
    travel from share-servers to the combiner; the index is bounded on the
    wire, and the point may be the identity only in its canonical form
    (a zero share commitment never verifies anyway). Never raises on
    decode. *)

val combine : Pairing.params -> system -> Tre.time -> partial list -> Tre.update
(** Lagrange-combine exactly k (or more) verified partials into the
    standard update. Raises [Invalid_argument] with fewer than k partials
    or duplicate indices. The result verifies under [system.public] like
    any ordinary update. *)
