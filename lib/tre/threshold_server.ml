type system = {
  public : Tre.Server.public;
  share_commitments : (int * Curve.point) array;
  commitment_preps : (int * Pairing.prepared) array;
  k : int;
  n : int;
}

type share_server = { index : int; share : Bigint.t }

type partial = { server_index : int; value : Curve.point }

let setup prms rng ~k ~n =
  let g = prms.Pairing.g in
  let s = Pairing.random_scalar prms rng in
  let shares = Shamir.split prms rng ~secret:s ~k ~n in
  let curve = prms.Pairing.curve in
  let share_commitments =
    Array.of_list
      (List.map
         (fun (sh : Shamir.share) ->
           (sh.Shamir.index, Curve.mul curve sh.Shamir.value g))
         shares)
  in
  let system =
    {
      public = { Tre.Server.g; sg = Curve.mul curve s g };
      share_commitments;
      (* Partial verification pairs against the same commitments for the
         system's whole lifetime; prepare them once at setup. *)
      commitment_preps =
        Array.map (fun (i, c) -> (i, Pairing.prepare prms c)) share_commitments;
      k;
      n;
    }
  in
  let servers =
    List.map
      (fun (sh : Shamir.share) -> { index = sh.Shamir.index; share = sh.Shamir.value })
      shares
  in
  (system, servers)

let issue_partial prms srv t =
  {
    server_index = srv.index;
    value = Curve.mul prms.Pairing.curve srv.share (Pairing.hash_to_g1 prms t);
  }

let verify_partial prms system t partial =
  match
    Array.find_opt (fun (i, _) -> i = partial.server_index) system.commitment_preps
  with
  | None -> false
  | Some (_, commitment_prep) ->
      Pairing.in_g1 prms partial.value
      && Pairing.pairing_equal_check_prepared prms
           ~lhs:(Lazy.force prms.Pairing.g_prep, partial.value)
           ~rhs:(commitment_prep, Pairing.hash_to_g1 prms t)

(* Share indices are small positive integers (Shamir evaluation points);
   bound them on the wire so a forged partial cannot smuggle an absurd
   index into the Lagrange combination. *)
let max_partial_index = 0xFFFF

let partial_to_bytes prms p =
  if p.server_index <= 0 || p.server_index > max_partial_index then
    invalid_arg "Threshold_server.partial_to_bytes: share index out of range";
  Codec.encode prms Codec.Threshold_partial (fun buf ->
      Codec.add_u32 buf p.server_index;
      Codec.add_point prms buf p.value)

let partial_of_bytes prms s =
  Codec.decode prms Codec.Threshold_partial s (fun r ->
      let server_index =
        Codec.read_u32 ~what:"share index" ~max:max_partial_index r
      in
      if server_index = 0 then Codec.fail "share index must be positive";
      let value = Codec.read_point ~what:"partial value" prms r in
      { server_index; value })

let combine prms system t partials =
  if List.length partials < system.k then
    invalid_arg "Threshold_server.combine: fewer than k partials";
  (* Use the first k (Lagrange needs exactly the participating set). *)
  let chosen = List.filteri (fun i _ -> i < system.k) partials in
  let indices = List.map (fun p -> p.server_index) chosen in
  let lambdas = Shamir.lagrange_at_zero prms indices in
  let curve = prms.Pairing.curve in
  let value =
    List.fold_left2
      (fun acc p lambda -> Curve.add curve acc (Curve.mul curve lambda p.value))
      Curve.infinity chosen lambdas
  in
  { Tre.update_time = t; update_value = value }
