(** Chosen-ciphertext-secure TRE via the REACT conversion
    (Okamoto–Pointcheval, CT-RSA 2002) — the alternative §5 of the paper
    offers to Fujisaki–Okamoto.

    REACT encrypts a random key-seed R with the one-way scheme, derives a
    data-encapsulation mask from R, and appends an integrity tag
    H(R, M, C1, C2); unlike FO it needs no re-encryption at decryption
    time, making decryption cheaper — one of the trade-offs benchmarked in
    E1. *)

exception Decryption_failed

type ciphertext = {
  u : Curve.point;  (** U = rG *)
  c1 : string;  (** R xor H2(K) *)
  c2 : string;  (** M xor G(R) *)
  tag : string;  (** H(R, M, U, C1, C2) *)
  release_time : Tre.time;
}

val encrypt :
  Pairing.params ->
  Tre.Server.public ->
  Tre.User.public ->
  release_time:Tre.time ->
  Hashing.Drbg.t ->
  string ->
  ciphertext

val decrypt :
  Pairing.params -> Tre.User.secret -> Tre.update -> ciphertext -> string
(** Raises {!Decryption_failed} when the tag check fails,
    {!Tre.Update_mismatch} on a wrong-time update. No public key needed —
    REACT validates with the tag, not by re-encryption. *)

val ciphertext_to_bytes : Pairing.params -> ciphertext -> string
val ciphertext_of_bytes : Pairing.params -> string -> (ciphertext, string) result
(** Strict {!Codec} envelope (kind [CIPHERTEXT REACT]); [C1] and [tag]
    widths are enforced and only the canonical encoding is accepted.
    Never raises. *)

val ciphertext_overhead : Pairing.params -> int

(**/**)

val tag :
  r:string -> msg:string -> u_bytes:string -> c1:string -> c2:string -> string
(** Internal: the REACT integrity tag H(R, M, U, C1, C2), exposed for the
    domain-separation regression tests. Every field is length-prefixed,
    so distinct field tuples give distinct hash inputs even when their
    concatenations coincide. *)
