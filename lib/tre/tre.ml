type time = string

exception Invalid_receiver_key
exception Update_mismatch

(* Uniform-enough scalar in [1, q-1] from a seed string (password keygen,
   FO transform). The 2x-width reduction makes the mod-q bias negligible. *)
let scalar_of_seed prms seed =
  let q1 = Bigint.pred prms.Pairing.q in
  let width = 2 * ((Bigint.bit_length prms.Pairing.q + 7) / 8) in
  let raw = Bigint.of_bytes_be (Hashing.Kdf.mask seed width) in
  Bigint.succ (Bigint.erem raw q1)

let check_scalar prms s =
  if Bigint.sign s <= 0 || Bigint.compare s prms.Pairing.q >= 0 then
    invalid_arg "Tre: scalar out of range [1, q-1]"

module Server = struct
  type secret = { s : Bigint.t; gen : Curve.point }
  type public = { g : Curve.point; sg : Curve.point }

  let check_generator prms g =
    if Curve.is_infinity g || not (Pairing.in_g1 prms g) then
      invalid_arg "Tre.Server: generator must be a non-identity G1 point"

  let secret_of_scalar prms ?g s =
    check_scalar prms s;
    let gen = match g with Some g -> g | None -> prms.Pairing.g in
    check_generator prms gen;
    { s; gen }

  let public_of_secret prms { s; gen } =
    { g = gen; sg = Curve.mul prms.Pairing.curve s gen }

  let keygen ?g prms rng =
    let secret = secret_of_scalar prms ?g (Pairing.random_scalar prms rng) in
    (secret, public_of_secret prms secret)

  let secret_to_scalar sec = sec.s
end

type update = { update_time : time; update_value : Curve.point }

let issue_update prms (sec : Server.secret) t =
  { update_time = t;
    update_value = Curve.mul prms.Pairing.curve sec.Server.s (Pairing.hash_to_g1 prms t) }

let verify_update prms (pub : Server.public) upd =
  Pairing.in_g1 prms upd.update_value
  && Pairing.pairing_equal_check prms
       ~lhs:(pub.Server.sg, Pairing.hash_to_g1 prms upd.update_time)
       ~rhs:(pub.Server.g, upd.update_value)

(* Both pairings of the verification equation have a fixed first argument
   (sG and G), so a long-lived verifier prepares them once and each
   update then costs only the two Miller-loop evaluations. [vkey] keys
   the batch-verification exponent derandomizer to this server. *)
type verifier = {
  vg : Pairing.prepared;
  vsg : Pairing.prepared;
  vgp : Curve.point;  (* the raw points: delegated verification sends *)
  vsgp : Curve.point; (* them (blinded) instead of pairing on-device *)
  vdel : Delegate.ctx Lazy.t;
      (* forced only on the thin-client path (costs one pairing);
         verifiers are single-domain values, so the lazy is safe *)
  vkey : string;
}

let make_verifier prms (pub : Server.public) =
  { vg = Pairing.prepare prms pub.Server.g;
    vsg = Pairing.prepare prms pub.Server.sg;
    vgp = pub.Server.g;
    vsgp = pub.Server.sg;
    vdel = lazy (Delegate.make prms);
    vkey =
      Curve.to_bytes prms.Pairing.curve pub.Server.g
      ^ Curve.to_bytes prms.Pairing.curve pub.Server.sg }

let verify_update_with prms vrf upd =
  Pairing.in_g1 prms upd.update_value
  && Pairing.pairing_equal_check_prepared prms
       ~lhs:(vrf.vsg, Pairing.hash_to_g1 prms upd.update_time)
       ~rhs:(vrf.vg, upd.update_value)

module User = struct
  type secret = Bigint.t
  type public = { ag : Curve.point; asg : Curve.point }

  let secret_of_scalar prms a =
    check_scalar prms a;
    a

  let secret_to_scalar a = a

  let public_of_secret prms (srv : Server.public) a =
    let curve = prms.Pairing.curve in
    { ag = Curve.mul curve a srv.Server.g; asg = Curve.mul curve a srv.Server.sg }

  let keygen prms srv rng =
    let a = Pairing.random_scalar prms rng in
    (a, public_of_secret prms srv a)

  let keygen_from_password prms srv ~password =
    let a = scalar_of_seed prms ("TRE-password-key|" ^ password) in
    (a, public_of_secret prms srv a)

  let rebind prms a (new_srv : Server.public) = public_of_secret prms new_srv a
end

let validate_receiver_key prms (srv : Server.public) (pk : User.public) =
  Pairing.in_g1 prms pk.User.ag
  && Pairing.in_g1 prms pk.User.asg
  && (not (Curve.is_infinity pk.User.ag))
  && Pairing.pairing_equal_check prms
       ~lhs:(pk.User.ag, srv.Server.sg)
       ~rhs:(srv.Server.g, pk.User.asg)

let verify_server_change prms ~(certified : User.public) ~(new_server : Server.public)
    ~(candidate : User.public) =
  (* The CA vouches for certified.ag; the candidate must carry the same aG
     and a consistent as'G' for the new server. *)
  Curve.equal certified.User.ag candidate.User.ag
  && validate_receiver_key prms new_server candidate

type ciphertext = { u : Curve.point; v : string; release_time : time }

let encrypt_prevalidated prms (srv : Server.public) (pk : User.public) ~release_time rng
    msg =
  let curve = prms.Pairing.curve in
  let r = Pairing.random_scalar prms rng in
  let u = Curve.mul curve r srv.Server.g in
  (* K = e^(r * asG, H1(T)) = e^(G, H1(T))^{ras} *)
  let k =
    Pairing.pairing prms
      (Curve.mul curve r pk.User.asg)
      (Pairing.hash_to_g1 prms release_time)
  in
  { u; v = Hashing.Kdf.xor msg (Pairing.h2 prms k (String.length msg)); release_time }

let encrypt prms srv pk ~release_time rng msg =
  if not (validate_receiver_key prms srv pk) then raise Invalid_receiver_key;
  encrypt_prevalidated prms srv pk ~release_time rng msg

(* A sender encrypting repeatedly to one receiver pays per message: one
   pairing, two scalar multiplications and the validation pairing check.
   This stateful encryptor amortizes all three: validation happens once at
   construction, U = rG comes from a fixed-base table, and the pairing is
   cached per release time — K = e^(r*asG, H1(T)) = e^(asG, H1(T))^r by
   bilinearity, so repeated encryptions to the same release time need no
   pairing at all, just one GT exponentiation. Outputs are bit-identical
   to {!encrypt} for the same rng stream. *)
module Encryptor = struct
  type t = {
    prms : Pairing.params;
    pk : User.public;
    g_table : Curve.Table.t;
    cache : (time, Fp2.t) Hashtbl.t;
  }

  let create prms (srv : Server.public) (pk : User.public) =
    if not (validate_receiver_key prms srv pk) then raise Invalid_receiver_key;
    {
      prms;
      pk;
      g_table =
        Curve.Table.create prms.Pairing.curve
          ~bits:(Bigint.bit_length prms.Pairing.q)
          srv.Server.g;
      cache = Hashtbl.create 8;
    }

  let release_key enc release_time =
    match Hashtbl.find_opt enc.cache release_time with
    | Some k -> k
    | None ->
        let k =
          Pairing.pairing enc.prms enc.pk.User.asg
            (Pairing.hash_to_g1 enc.prms release_time)
        in
        Hashtbl.add enc.cache release_time k;
        k

  let encrypt enc ~release_time rng msg =
    let r = Pairing.random_scalar enc.prms rng in
    let u = Curve.Table.mul enc.g_table r in
    let k = Pairing.gt_pow enc.prms (release_key enc release_time) r in
    { u;
      v = Hashing.Kdf.xor msg (Pairing.h2 enc.prms k (String.length msg));
      release_time }
end

let decrypt prms (a : User.secret) upd ct =
  if upd.update_time <> ct.release_time then raise Update_mismatch;
  (* K' = e^(U, sigma_S(T))^a *)
  let k = Pairing.gt_pow prms (Pairing.pairing prms ct.u upd.update_value) a in
  Hashing.Kdf.xor ct.v (Pairing.h2 prms k (String.length ct.v))

(* Each (update, ciphertext) decryption is one pairing + one GT
   exponentiation over immutable inputs — embarrassingly parallel, so an
   optional pool shards the batch. Plaintexts come back in input order,
   bit-identical to mapping {!decrypt}; a mismatched pair raises
   {!Update_mismatch} in the caller exactly as the serial path would. *)
let decrypt_batch ?pool prms (a : User.secret) pairs =
  let one (upd, ct) = decrypt prms a upd ct in
  match pool with
  | None -> List.map one pairs
  | Some pool -> Pool.map pool one pairs

(* Batch verification of key updates. An update IS a BLS signature on its
   time label under (G, sG) (§5.3.1), so n update checks collapse the same
   way {!Bls.verify_batch} collapses: with derandomized 64-bit exponents
   d_i, check e^(sG, sum d_i H1(T_i)) = e^(G, sum d_i I_i) — two prepared
   pairings per BATCH instead of two per update. Subgroup checks are
   cofactored the same way as in [Bls.batch_sums]: per item only the
   on-curve test, then one q-mult on the weighted update sum; and H1
   hashes only to the raw curve lift per item, with the cofactor cleared
   once on the H-sum (clearing commutes with the weighted sum). The
   residual per-item work (on-curve check, raw H1 lift) shards across an
   optional pool; the weighted sums are two multi-scalar multiplications
   ([Curve.msm]) on the caller, so the sums are bit-identical to the
   serial path. *)
module Verifier = struct
  type t = verifier

  let create = make_verifier
  let verify_update = verify_update_with

  (* Thin-client verification: the equation e(sG, H1(T)) = e(G, U) is
     outsourced as two blinded delegations under the hardened check's
     secret exponent c — the left side delegates e(sG, c.H1(T)) so the
     cross-run relation L' = R'^c both verifies the helpers AND decides
     the equation; c itself rides along for free by folding it into the
     cofactor clearing of the H1 lift (one (h.c)-mult where the plain
     verifier already pays an h-mult). Rejecting malformed helper
     replies, not just wrong equations, is the point: the published
     outsourcing check would accept a consistent shift (Liu-Cao), and
     then this verifier would sign off on a forged key update. *)
  let verify_update_delegated prms vrf ?blindings rng ~helper1 ~helper2 upd =
    Pairing.in_g1 prms upd.update_value
    && (not (Curve.is_infinity upd.update_value))
    &&
    let curve = prms.Pairing.curve in
    let ctx = Lazy.force vrf.vdel in
    let c = Delegate.random_small_exponent prms rng in
    let ch =
      let raw = Pairing.hash_to_g1_unclamped prms upd.update_time in
      let p = Curve.mul curve (Bigint.mul prms.Pairing.cofactor c) raw in
      (* the unclamped lift clears to infinity only on hash_to_g1's
         internal re-roll inputs (fraction < 2^-64) — fall back to the
         clamped point rather than reject a valid update *)
      if Curve.is_infinity p then
        Curve.mul curve c (Pairing.hash_to_g1 prms upd.update_time)
      else p
    in
    match
      Delegate.equal_with ctx ?blindings rng ~helper1 ~helper2 ~c
        ~lhs:(vrf.vsgp, ch) ~rhs:(vrf.vgp, upd.update_value)
    with
    | Ok decision -> decision
    | Error _ -> false

  let verify_updates ?pool prms vrf updates =
    if updates = [] then true
    else begin
      let curve = prms.Pairing.curve in
      let seed =
        let buf = Buffer.create 256 in
        Buffer.add_string buf "TRE-update-batch|";
        Buffer.add_string buf vrf.vkey;
        List.iter
          (fun u ->
            Buffer.add_string buf
              (Printf.sprintf "|%d|" (String.length u.update_time));
            Buffer.add_string buf u.update_time;
            Buffer.add_string buf (Curve.to_bytes curve u.update_value))
          updates;
        Buffer.contents buf
      in
      let ds = Pairing.batch_exponents prms ~seed (List.length updates) in
      let weigh u =
        ( Curve.on_curve curve u.update_value,
          Pairing.hash_to_g1_unclamped prms u.update_time,
          u.update_value )
      in
      let checked =
        match pool with
        | None -> List.map weigh updates
        | Some pool -> Pool.map pool weigh updates
      in
      (not (List.exists (fun (ok, _, _) -> not ok) checked))
      && begin
           let sum_h_raw =
             Curve.msm curve (List.map2 (fun d (_, h, _) -> (d, h)) ds checked)
           in
           let sum_sig =
             Curve.msm curve (List.map2 (fun d (_, _, s) -> (d, s)) ds checked)
           in
           (* One aggregate subgroup check on the update sum, one
              aggregate cofactor clearing on the H-sum. *)
           Pairing.in_g1 prms sum_sig
           && Pairing.pairing_equal_check_prepared prms
                ~lhs:(vrf.vsg, Curve.mul curve prms.Pairing.cofactor sum_h_raw)
                ~rhs:(vrf.vg, sum_sig)
         end
    end
end

(* --- serialization ---

   Every object is a Codec envelope (magic, version, kind tag, params
   fingerprint) followed by strict fields: length-prefixed variable
   strings, fixed-width canonical compressed points. Decoders return
   [Error diagnostic] instead of raising, accept exactly the canonical
   encoding (any accepted byte string re-encodes bit-identically), and
   reject cross-kind or cross-parameter material on the envelope before
   any curve arithmetic. *)

let ciphertext_to_bytes prms ct =
  Codec.encode prms Codec.Ciphertext (fun buf ->
      Codec.add_label buf ct.release_time;
      Codec.add_point prms buf ct.u;
      Codec.add_var buf ct.v)

let ciphertext_of_bytes prms s =
  Codec.decode prms Codec.Ciphertext s (fun r ->
      let release_time = Codec.read_label ~what:"release time" r in
      let u = Codec.read_g1 ~what:"U" prms r in
      let v = Codec.read_var ~what:"V" r in
      { u; v; release_time })

let update_to_bytes prms upd =
  Codec.encode prms Codec.Key_update (fun buf ->
      Codec.add_label buf upd.update_time;
      Codec.add_point prms buf upd.update_value)

let update_of_bytes prms s =
  Codec.decode prms Codec.Key_update s (fun r ->
      let update_time = Codec.read_label ~what:"update time" r in
      let update_value = Codec.read_g1 ~what:"update value" prms r in
      { update_time; update_value })

let user_public_to_bytes prms (pk : User.public) =
  Codec.encode prms Codec.User_public (fun buf ->
      Codec.add_point prms buf pk.User.ag;
      Codec.add_point prms buf pk.User.asg)

let user_public_of_bytes prms s =
  Codec.decode prms Codec.User_public s (fun r ->
      let ag = Codec.read_g1 ~what:"aG" prms r in
      let asg = Codec.read_g1 ~what:"asG" prms r in
      { User.ag; asg })

let server_public_to_bytes prms (pk : Server.public) =
  Codec.encode prms Codec.Server_public (fun buf ->
      Codec.add_point prms buf pk.Server.g;
      Codec.add_point prms buf pk.Server.sg)

let server_public_of_bytes prms s =
  Codec.decode prms Codec.Server_public s (fun r ->
      let g = Codec.read_g1 ~what:"G" prms r in
      let sg = Codec.read_g1 ~what:"sG" prms r in
      { Server.g; sg })

let ciphertext_overhead prms = Codec.header_bytes + 8 + Pairing.point_bytes prms
