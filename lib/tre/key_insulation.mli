(** Key insulation (§5.3.3): keep the long-term secret [a] off the
    decryption device.

    When the key update for instant T_i arrives, a {e safe} device (smart
    card, or a password-derived computation that wipes its intermediates)
    combines it with [a] into the epoch key K_i = a * sigma_S(T_i)
    = a*s*H1(T_i); only K_i is stored on the insecure device, which can
    then decrypt every ciphertext with release time T_i by a single
    pairing — [a] itself is never used there. Compromise of K_i exposes
    only epoch T_i: deriving K_j from K_i is the CDH problem (the same
    argument as for key updates, §5.1 proof sketch items 4-5).

    Note on fidelity: the paper's prose writes the epoch key as
    "a*H1(T_i)". That literal quantity cannot decrypt <rG, M xor H2(K)>
    ciphertexts (no pairing of rG with a*H1(T) yields e^(G,H1(T))^ras
    without s), while a*sigma_S(T_i) — computable exactly when the prose
    says, upon receipt of the update — satisfies every property claimed:
    computed on the safe device once per epoch, decryption without [a],
    per-epoch insulation. We implement the latter and record the
    substitution in DESIGN.md. *)

type epoch_key
(** K_i, bound to its epoch label. *)

val derive : Pairing.params -> Tre.User.secret -> Tre.update -> epoch_key
(** The safe-device computation: K_i = a * I_{T_i}. *)

val epoch : epoch_key -> Tre.time

val decrypt : Pairing.params -> epoch_key -> Tre.ciphertext -> string
(** Insecure-device decryption: K' = e^(U, K_i); raises
    {!Tre.Update_mismatch} if the ciphertext's release time is not this
    key's epoch — an epoch key can only ever open its own epoch. *)

val to_bytes : Pairing.params -> epoch_key -> string
val of_bytes : Pairing.params -> string -> (epoch_key, string) result
(** Strict {!Codec} envelope with its own kind (EPOCH KEY) — an epoch key
    is not interchangeable with a key update on the wire even though both
    carry (label, point); the envelope tag rejects the confusion before
    any curve arithmetic. Never raises. *)
