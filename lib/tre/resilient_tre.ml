type header = { node_label : string; blob : string }

type ciphertext = {
  u : Curve.point;
  headers : header list;
  body : string;
  release_epoch : int;
}

let key_bytes = 32

let body_mask key n = Hashing.Kdf.mask ("TRE-RESILIENT-DEM|" ^ key) n

let encrypt prms tree srv (pk : Tre.User.public) ~release_epoch rng msg =
  if not (Tre.validate_receiver_key prms srv pk) then raise Tre.Invalid_receiver_key;
  let curve = prms.Pairing.curve in
  let r = Pairing.random_scalar prms rng in
  let u = Curve.mul curve r srv.Tre.Server.g in
  let rasg = Curve.mul curve r pk.Tre.User.asg in
  let msg_key = Hashing.Drbg.generate rng key_bytes in
  (* All depth+1 header pairings share the first argument r*asG; prepare
     it once and pay only the line evaluations per ancestor. *)
  let rasg_prep = Pairing.prepare prms rasg in
  let headers =
    List.map
      (fun node ->
        let label = Time_tree.node_label tree node in
        let k =
          Pairing.pairing_prepared prms rasg_prep (Pairing.hash_to_g1 prms label)
        in
        { node_label = label; blob = Hashing.Kdf.xor msg_key (Pairing.h2 prms k key_bytes) })
      (Time_tree.ancestors tree release_epoch)
  in
  { u; headers; body = Hashing.Kdf.xor msg (body_mask msg_key (String.length msg)); release_epoch }

let issue_cover prms tree sec ~epoch =
  List.map
    (fun node -> Tre.issue_update prms sec (Time_tree.node_label tree node))
    (Time_tree.cover tree epoch)

let verify_cover prms tree srv ~epoch updates =
  let expected =
    List.map (fun n -> Time_tree.node_label tree n) (Time_tree.cover tree epoch)
  in
  let labels = List.map (fun (u : Tre.update) -> u.Tre.update_time) updates in
  List.sort compare labels = List.sort compare expected
  && begin
       (* One prepared verifier across the whole cover (depth+1 updates
          against the same server key). *)
       let vrf = Tre.make_verifier prms srv in
       List.for_all (Tre.verify_update_with prms vrf) updates
     end

let decrypt prms _tree a ~cover ct =
  let scalar = Tre.User.secret_to_scalar a in
  (* The one ancestor of the release leaf present in the cover (if the
     cover's epoch has reached the release epoch). *)
  let usable =
    List.find_map
      (fun (h : header) ->
        List.find_map
          (fun (upd : Tre.update) ->
            if upd.Tre.update_time = h.node_label then Some (h, upd) else None)
          cover)
      ct.headers
  in
  match usable with
  | None -> None
  | Some (h, upd) ->
      let k = Pairing.gt_pow prms (Pairing.pairing prms ct.u upd.Tre.update_value) scalar in
      let msg_key = Hashing.Kdf.xor h.blob (Pairing.h2 prms k key_bytes) in
      Some (Hashing.Kdf.xor ct.body (body_mask msg_key (String.length ct.body)))

let ciphertext_overhead prms tree =
  Pairing.point_bytes prms + ((Time_tree.depth tree + 1) * (key_bytes + 16))
