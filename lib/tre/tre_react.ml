exception Decryption_failed

type ciphertext = {
  u : Curve.point;
  c1 : string;
  c2 : string;
  tag : string;
  release_time : Tre.time;
}

let r_bytes = 32
let tag_bytes = 32

let mask_g r n = Hashing.Kdf.mask ("TRE-REACT-G|" ^ r) n

(* Every field is length-prefixed: bare concatenation would let bytes
   shift between [msg] and its neighbours across the fixed-width middle
   fields without changing the hash input. *)
let tag_h ~r ~msg ~u_bytes ~c1 ~c2 =
  Hashing.Sha256.digest_concat
    (Codec.length_prefixed ~domain:"TRE-REACT-H" [ r; msg; u_bytes; c1; c2 ])

let tag = tag_h

let encrypt prms (srv : Tre.Server.public) pk ~release_time rng msg =
  if not (Tre.validate_receiver_key prms srv pk) then raise Tre.Invalid_receiver_key;
  let curve = prms.Pairing.curve in
  let seed = Hashing.Drbg.generate rng r_bytes in
  let r = Pairing.random_scalar prms rng in
  let u = Curve.mul curve r srv.Tre.Server.g in
  let k =
    Pairing.pairing prms
      (Curve.mul curve r pk.Tre.User.asg)
      (Pairing.hash_to_g1 prms release_time)
  in
  let c1 = Hashing.Kdf.xor seed (Pairing.h2 prms k r_bytes) in
  let c2 = Hashing.Kdf.xor msg (mask_g seed (String.length msg)) in
  let u_bytes = Curve.to_bytes curve u in
  { u; c1; c2; tag = tag_h ~r:seed ~msg ~u_bytes ~c1 ~c2; release_time }

let decrypt prms a upd ct =
  if upd.Tre.update_time <> ct.release_time then raise Tre.Update_mismatch;
  if String.length ct.c1 <> r_bytes || String.length ct.tag <> tag_bytes then
    raise Decryption_failed;
  let k =
    Pairing.gt_pow prms
      (Pairing.pairing prms ct.u upd.Tre.update_value)
      (Tre.User.secret_to_scalar a)
  in
  let seed = Hashing.Kdf.xor ct.c1 (Pairing.h2 prms k r_bytes) in
  let msg = Hashing.Kdf.xor ct.c2 (mask_g seed (String.length ct.c2)) in
  let u_bytes = Curve.to_bytes prms.Pairing.curve ct.u in
  let expected = tag_h ~r:seed ~msg ~u_bytes ~c1:ct.c1 ~c2:ct.c2 in
  if not (Hashing.ct_equal expected ct.tag) then raise Decryption_failed;
  msg

let ciphertext_to_bytes prms ct =
  if String.length ct.c1 <> r_bytes then
    invalid_arg "Tre_react.ciphertext_to_bytes: C1 must be exactly r_bytes wide";
  if String.length ct.tag <> tag_bytes then
    invalid_arg "Tre_react.ciphertext_to_bytes: tag must be exactly tag_bytes wide";
  Codec.encode prms Codec.Ciphertext_react (fun buf ->
      Codec.add_label buf ct.release_time;
      Codec.add_point prms buf ct.u;
      Codec.add_fixed buf ct.c1;
      Codec.add_fixed buf ct.tag;
      Codec.add_var buf ct.c2)

let ciphertext_of_bytes prms s =
  Codec.decode prms Codec.Ciphertext_react s (fun r ->
      let release_time = Codec.read_label ~what:"release time" r in
      let u = Codec.read_g1 ~what:"U" prms r in
      let c1 = Codec.read_fixed ~what:"C1" r r_bytes in
      let tag = Codec.read_fixed ~what:"tag" r tag_bytes in
      let c2 = Codec.read_var ~what:"C2" r in
      { u; c1; c2; tag; release_time })

let ciphertext_overhead prms = Tre.ciphertext_overhead prms + r_bytes + tag_bytes
