(** Identity-based Timed Release Encryption (§5.2; the idea of Chen et al.).

    The receiver's public key is his identity string; the trusted server
    both extracts user private keys s*H1(ID) and broadcasts the time-bound
    updates s*H1(T). Decryption combines the two by point addition:
    K_D = s*H1(ID) + s*H1(T) = s*(H1(ID) + H1(T)).

    Kept as a comparison point: it shares TRE's single-update scalability
    but, like all identity-based schemes, has inherent key escrow — the
    server can decrypt everything (§5.2, and the motivation for TRE in
    §2.2/§3). The escrow is demonstrated, not hidden: see {!escrow_decrypt}. *)

type identity = string
type time = string

exception Update_mismatch

module Server : sig
  type secret
  type public = { g : Curve.point; sg : Curve.point }

  val keygen : ?g:Curve.point -> Pairing.params -> Hashing.Drbg.t -> secret * public
  val extract : Pairing.params -> secret -> identity -> Curve.point
  (** User Key Generation: the private key s*H1(ID), delivered to the user
      over a secure channel (a structural cost TRE avoids). *)

  val issue_update : Pairing.params -> secret -> time -> Tre.update
end

val verify_update : Pairing.params -> Server.public -> Tre.update -> bool

val verify_private_key :
  Pairing.params -> Server.public -> identity -> Curve.point -> bool
(** A user checks the extracted key: e^(G, d) = e^(sG, H1(ID)). *)

type ciphertext = { u : Curve.point; v : string; release_time : time }

val encrypt :
  Pairing.params ->
  Server.public ->
  identity ->
  release_time:time ->
  Hashing.Drbg.t ->
  string ->
  ciphertext
(** K_E = H1(ID) + H1(T); K = e^(sG, K_E)^r; C = <rG, M xor H2(K)>. *)

(** Stateful sender context: prepares sG once, serves U = rG from a
    fixed-base table and caches e^(sG, H1(ID) + H1(T)) per recipient and
    release time, so repeated encryptions need no pairing (one GT
    exponentiation instead). Bit-identical to {!encrypt} on the same rng
    stream. *)
module Encryptor : sig
  type t

  val create : Pairing.params -> Server.public -> t

  val encrypt :
    t -> identity -> release_time:time -> Hashing.Drbg.t -> string -> ciphertext
end

val decrypt :
  Pairing.params -> private_key:Curve.point -> Tre.update -> ciphertext -> string
(** K_D = d_ID + I_T; K' = e^(U, K_D). Raises {!Update_mismatch} on a
    wrong-time update. *)

val decrypt_batch :
  ?pool:Pool.t ->
  Pairing.params ->
  private_key:Curve.point ->
  (Tre.update * ciphertext) list ->
  string list
(** Decrypt many (update, ciphertext) pairs, in input order, bit-identical
    to mapping {!decrypt}; [pool] shards the pairing work across domains.
    Raises {!Update_mismatch} on the first mismatched pair. *)

val escrow_decrypt : Pairing.params -> Server.secret -> identity -> ciphertext -> string
(** What the paper warns about: the server alone decrypts any user's
    ciphertext (it can derive both d_ID and I_T). Exists so the test
    suite can assert the escrow weakness is real in ID-TRE and absent in
    TRE. *)

val ciphertext_to_bytes : Pairing.params -> ciphertext -> string
val ciphertext_of_bytes : Pairing.params -> string -> (ciphertext, string) result
(** Strict {!Codec} envelope (kind [CIPHERTEXT ID]); only the canonical
    encoding is accepted, and ciphertexts of the other schemes or of other
    parameter sets are rejected by the envelope before any curve
    arithmetic. Never raises. *)

val ciphertext_overhead : Pairing.params -> int
