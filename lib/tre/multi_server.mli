(** Multi-server TRE (§5.3.5): trust is split over N time servers.

    Each server i has its own generator G_i and secret s_i. The receiver
    publishes K_new = a * sum_i (s_i G_i) next to his certified aG; a
    ciphertext carries one rG_i per server, and decryption needs the
    time-bound update s_i H1(T) from {e every} server — so a receiver must
    corrupt all N servers to open a message early (collusion resistance
    N-1). Cost grows exactly one G1 point (ciphertext) and one pairing
    (decryption) per extra server — experiment E5. *)

exception Invalid_receiver_key
exception Update_mismatch
exception Wrong_update_count

type receiver_public = {
  ag : Curve.point;  (** the CA-certified aG under the system generator *)
  k_new : Curve.point;  (** a * sum_i s_i G_i *)
}

type ciphertext = {
  us : Curve.point array;  (** rG_1 ... rG_N *)
  v : string;
  release_time : Tre.time;
}

val receiver_keygen :
  Pairing.params -> Tre.Server.public list -> Hashing.Drbg.t ->
  Tre.User.secret * receiver_public
(** The receiver forms K_new against the chosen server set. *)

val receiver_public_of_secret :
  Pairing.params -> Tre.Server.public list -> Tre.User.secret -> receiver_public

val validate_receiver_key :
  Pairing.params -> Tre.Server.public list -> receiver_public -> bool
(** The sender's check (the "same trick" of §5.3.4):
    e^(G0, K_new) = e^(aG0, sum_i s_i G_i) with aG0 CA-certified. *)

val encrypt :
  Pairing.params ->
  Tre.Server.public list ->
  receiver_public ->
  release_time:Tre.time ->
  Hashing.Drbg.t ->
  string ->
  ciphertext
(** C = <rG_1, ..., rG_N, M xor H2(K)>, K = e^(r K_new, H1(T)). *)

val decrypt :
  Pairing.params -> Tre.User.secret -> Tre.update list -> ciphertext -> string
(** Needs one update per server, in server order:
    K = prod_i e^(rG_i, s_i H1(T))^a. Raises {!Wrong_update_count} or
    {!Update_mismatch} as appropriate. *)

val max_servers : int
(** Upper bound on the per-ciphertext server count accepted on the wire. *)

val ciphertext_to_bytes : Pairing.params -> ciphertext -> string
val ciphertext_of_bytes : Pairing.params -> string -> (ciphertext, string) result
(** Strict {!Codec} envelope (kind [CIPHERTEXT MULTI]); the server count
    is bounded by {!max_servers} and checked before any point decoding.
    Never raises on decode; encode raises [Invalid_argument] on an empty
    or oversized point array. *)

val receiver_public_to_bytes : Pairing.params -> receiver_public -> string
val receiver_public_of_bytes :
  Pairing.params -> string -> (receiver_public, string) result
(** Strict {!Codec} envelope (kind [MULTI RECEIVER KEY]) for the
    receiver's (aG, K_new) pair. Never raises. *)

val ciphertext_overhead : Pairing.params -> n_servers:int -> int
