type epoch_key = { epoch : Tre.time; k : Curve.point }

let derive prms a (upd : Tre.update) =
  {
    epoch = upd.Tre.update_time;
    k = Curve.mul prms.Pairing.curve (Tre.User.secret_to_scalar a) upd.Tre.update_value;
  }

let epoch ek = ek.epoch

let decrypt prms ek (ct : Tre.ciphertext) =
  if ek.epoch <> ct.Tre.release_time then raise Tre.Update_mismatch;
  (* K' = e^(U, a * s * H1(T)) = e^(G, H1(T))^ras — no use of [a] here. *)
  let k = Pairing.pairing prms ct.Tre.u ek.k in
  Hashing.Kdf.xor ct.Tre.v (Pairing.h2 prms k (String.length ct.Tre.v))

(* Own wire kind, deliberately distinct from [Tre.update]: an epoch key
   a*s*H1(T) and a public update s*H1(T) have the same shape, and reusing
   the update framing would let a stored epoch key be replayed where an
   update is expected (and vice versa). The envelope tag now separates
   them before any point decoding. *)
let to_bytes prms ek =
  Codec.encode prms Codec.Epoch_key (fun buf ->
      Codec.add_label buf ek.epoch;
      Codec.add_point prms buf ek.k)

let of_bytes prms s =
  Codec.decode prms Codec.Epoch_key s (fun r ->
      let epoch = Codec.read_label ~what:"epoch" r in
      let k = Codec.read_g1 ~what:"epoch key value" prms r in
      { epoch; k })
