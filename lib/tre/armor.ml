let begin_marker kind params = Printf.sprintf "-----BEGIN TRE %s (%s)-----" kind params
let end_marker kind = Printf.sprintf "-----END TRE %s-----" kind

let wrap ~kind ~params payload =
  let b64 = Hashing.Base64.encode payload in
  let buf = Buffer.create (String.length b64 + 128) in
  Buffer.add_string buf (begin_marker kind params);
  Buffer.add_char buf '\n';
  let n = String.length b64 in
  let i = ref 0 in
  while !i < n do
    let take = min 64 (n - !i) in
    Buffer.add_string buf (String.sub b64 !i take);
    Buffer.add_char buf '\n';
    i := !i + take
  done;
  Buffer.add_string buf (end_marker kind);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Parse "-----BEGIN TRE <KIND> (<params>)-----". *)
let parse_begin line =
  let prefix = "-----BEGIN TRE " and suffix = "-----" in
  let pl = String.length prefix and sl = String.length suffix in
  if
    String.length line > pl + sl
    && String.sub line 0 pl = prefix
    && String.sub line (String.length line - sl) sl = suffix
  then begin
    let middle = String.sub line pl (String.length line - pl - sl) in
    match (String.index_opt middle '(', String.rindex_opt middle ')') with
    | Some o, Some c when o < c ->
        let kind = String.trim (String.sub middle 0 o) in
        let params = String.sub middle (o + 1) (c - o - 1) in
        if kind = "" then None else Some (kind, params)
    | _ -> None
  end
  else None

let unwrap text =
  let lines = String.split_on_char '\n' (String.concat "\n" (String.split_on_char '\r' text)) in
  let rec find_begin = function
    | [] -> None
    | line :: rest -> (
        match parse_begin (String.trim line) with
        | Some hdr -> Some (hdr, rest)
        | None -> find_begin rest)
  in
  match find_begin lines with
  | None -> None
  | Some ((kind, params), rest) ->
      let stop = end_marker kind in
      let rec collect acc = function
        | [] -> None
        | line :: rest ->
            if String.trim line = stop then Some (List.rev acc)
            else collect (String.trim line :: acc) rest
      in
      Option.bind (collect [] rest) (fun body ->
          Option.map
            (fun payload -> (kind, params, payload))
            (Hashing.Base64.decode (String.concat "" body)))

let unwrap_expecting ~kind ~params text =
  match unwrap text with
  | None -> Error "not a valid TRE armored object"
  | Some (k, p, payload) ->
      if k <> kind then Error (Printf.sprintf "expected %s, found %s" kind k)
      else if p <> params then
        Error (Printf.sprintf "parameter-set mismatch: expected %s, found %s" params p)
      else Ok payload

(* Typed armor over {!Codec} envelopes: the human-readable header and the
   binary envelope both name the kind and parameter set, and the two must
   agree — relabeling the armor cannot retarget the payload. *)

let wrap_object prms ~kind payload =
  (match Codec.peek_kind payload with
  | Ok k when k = kind && Codec.matches_params prms payload -> ()
  | Ok _ | Error _ ->
      invalid_arg
        "Armor.wrap_object: payload envelope does not match the declared kind \
         and parameter set");
  wrap ~kind:(Codec.kind_label kind) ~params:prms.Pairing.name payload

let unwrap_object ?expect text =
  match unwrap text with
  | None -> Error "not a valid TRE armored object"
  | Some (label, params_name, payload) -> (
      match Codec.kind_of_label label with
      | None -> Error (Printf.sprintf "unknown object kind %S" label)
      | Some kind -> (
          match Pairing.by_name params_name with
          | None -> Error (Printf.sprintf "unknown parameter set %S" params_name)
          | Some prms -> (
              match expect with
              | Some k when k <> kind ->
                  Error
                    (Printf.sprintf "expected %s, found %s" (Codec.kind_label k)
                       (Codec.kind_label kind))
              | _ ->
                  if Codec.peek_kind payload <> Ok kind then
                    Error
                      (Printf.sprintf
                         "armor header says %s but the payload envelope disagrees"
                         (Codec.kind_label kind))
                  else if not (Codec.matches_params prms payload) then
                    Error
                      (Printf.sprintf
                         "armor header says parameter set %S but the payload \
                          envelope disagrees"
                         params_name)
                  else Ok (kind, prms, payload))))
