(** Timed Release Encryption — the paper's primary construction (§5.1).

    A completely passive time server periodically publishes a single,
    self-authenticated {e time-bound key update} [sigma_S(T) = s*H1(T)]
    — one identical update for {e all} receivers. A sender encrypts under
    the receiver's public key [(aG, asG)] and a release time [T] of his own
    choosing, with no interaction with the server; the receiver can decrypt
    only once the update for [T] has been published, using his private key
    [a]. The server never learns who sends, who receives, what is sent, or
    when it is to be released — and, unlike ID-based schemes, cannot
    decrypt anything itself.

    This module is the one-way / CPA-secure version exactly as in §5.1
    (secure under BDH in the random-oracle model). For chosen-ciphertext
    security wrap it with {!Tre_fo} (Fujisaki–Okamoto) or {!Tre_react}
    (REACT), as §5 prescribes. *)

type time = string
(** A release-time label T in \{0,1\}* — e.g. "2005-06-01T00:00:00Z".
    The scheme treats it as an opaque string; any granularity works. *)

exception Invalid_receiver_key
(** Raised by {!encrypt} when the receiver public key fails the pairing
    check e^(aG, sG) = e^(G, asG) — i.e. it is not bound to this server and
    the time lock could be bypassed. *)

exception Update_mismatch
(** Raised by {!decrypt} when the supplied key update is for a different
    time label than the ciphertext's release time. *)

(** The passive time server's keys (Server Key Generation, §5.1). *)
module Server : sig
  type secret
  (** The scalar s; never leaves the server. *)

  type public = { g : Curve.point; sg : Curve.point }
  (** PK_S = (G, sG). [g] is the server's chosen generator. *)

  val keygen : ?g:Curve.point -> Pairing.params -> Hashing.Drbg.t -> secret * public
  (** Pick a generator (defaults to the system generator; §5.1 lets the
      server choose its own — pass [?g]) and a private scalar s.
      Raises [Invalid_argument] if [g] is the identity or outside G1. *)

  val public_of_secret : Pairing.params -> secret -> public
  val secret_to_scalar : secret -> Bigint.t
  (** Exposed for the escrow/collusion experiments in the test suite;
      a real server never calls this. *)

  val secret_of_scalar : Pairing.params -> ?g:Curve.point -> Bigint.t -> secret
  (** Raises [Invalid_argument] if the scalar is outside [1, q-1]. *)
end

type update = { update_time : time; update_value : Curve.point }
(** A time-bound key update I_T = s*H1(T) — a BLS signature on T under the
    server key, hence self-authenticating (§5.3.1). *)

val issue_update : Pairing.params -> Server.secret -> time -> update
(** Time Server Broadcast (§5.1): the only thing the server ever does.
    Note it needs no memory of users, messages, or future times. *)

val verify_update : Pairing.params -> Server.public -> update -> bool
(** Anyone checks e^(sG, H1(T)) = e^(G, I_T); no extra server signature is
    needed. Also enforces subgroup membership of the update point. *)

type verifier
(** Prepared pairings for a server public key ({!Pairing.prepare} of G and
    sG), for parties that verify many updates from one server. *)

val make_verifier : Pairing.params -> Server.public -> verifier
val verify_update_with : Pairing.params -> verifier -> update -> bool
(** Same result as {!verify_update}, amortizing the Miller-loop point
    arithmetic across updates. *)

(** Batch verification of key updates — the update {e is} a BLS signature
    on its time label (§5.3.1), so n checks collapse into one
    product-of-pairings with small random exponents (Bellare–Garay–Rabin):
    e^(sG, sum d_i H1(T_i)) = e^(G, sum d_i I_i) — two prepared pairings
    per batch instead of two per update. A client catching up on missed
    epochs verifies the whole backlog at close to the cost of one check. *)
module Verifier : sig
  type t = verifier

  val create : Pairing.params -> Server.public -> t
  (** Alias of {!make_verifier}. *)

  val verify_update : Pairing.params -> t -> update -> bool
  (** Alias of {!verify_update_with}. *)

  val verify_update_delegated :
    Pairing.params -> t -> ?blindings:Delegate.blinding * Delegate.blinding ->
    Hashing.Drbg.t ->
    helper1:Delegate.transport -> helper2:Delegate.transport ->
    update -> bool
  (** Thin-client {!verify_update}: the two pairings of the equation are
      outsourced to two untrusted helpers via blinded {!Delegate}
      queries under the {e hardened} (Liu–Cao-resistant) check — the
      secret cross-run exponent [c] simultaneously authenticates the
      helpers' replies and decides the equation ([L' = R'^c]), and is
      folded into H1's cofactor clearing so it costs nothing extra.
      False on a bad update {e or} on any malformed helper reply; true
      agrees with {!verify_update} when helpers are honest (up to the
      hardened check's ~2^-64 soundness slack). The client does curve
      arithmetic and GT multiplications only — no Miller loops.
      [?blindings] supplies precomputed one-time tuples (the offline
      phase, {!Delegate.blind}); omitted, they are drawn inline. *)

  val verify_updates : ?pool:Pool.t -> Pairing.params -> t -> update list -> bool
  (** True iff every update in the list would pass {!verify_update},
      except with probability ~2^-64 per batch. The exponents d_i are
      derandomized (keyed by the server key and the serialized batch,
      {!Pairing.batch_exponents}), which defeats cancellation attacks on
      unweighted sums and makes the verdict reproducible. Subgroup checks
      are cofactored as in {!Bls.verify_batch}: per item only the
      on-curve test, then one q-mult on the weighted update sum — an
      off-subgroup component (invisible to the pairing, hence inert for
      decryption) is caught up to the same ~2^-64 bound rather than
      deterministically. H1's cofactor clearing is likewise paid once on
      the H-sum. [pool] shards the per-item work (on-curve check, raw H1
      lift, two 64-bit scalar mults) across domains; the verdict is
      identical with or without it. The empty batch verifies trivially. *)
end

(** Receiver keys (User Key Generation, §5.1). *)
module User : sig
  type secret
  (** The scalar a. *)

  type public = { ag : Curve.point; asg : Curve.point }
  (** PK_U = (aG, asG), bound to a specific server's public key. A CA
      certifies [ag]; [asg] is then publicly checkable (§5.3.4). *)

  val keygen : Pairing.params -> Server.public -> Hashing.Drbg.t -> secret * public

  val keygen_from_password : Pairing.params -> Server.public -> password:string -> secret * public
  (** §5.1: "the secret key a could be generated by applying a good hash
      function to a human-memorable password". Deterministic. *)

  val rebind : Pairing.params -> secret -> Server.public -> public
  (** Re-derive the public key against a different time server (§5.3.4) —
      no re-certification needed, see {!verify_server_change}. *)

  val secret_to_scalar : secret -> Bigint.t
  val secret_of_scalar : Pairing.params -> Bigint.t -> secret
end

val validate_receiver_key : Pairing.params -> Server.public -> User.public -> bool
(** Step 1 of Encryption (§5.1): e^(aG, sG) = e^(G, asG), plus on-curve and
    subgroup checks. Guarantees the receiver really needs the server's
    update to decrypt. *)

val verify_server_change :
  Pairing.params ->
  certified:User.public ->
  new_server:Server.public ->
  candidate:User.public ->
  bool
(** §5.3.4: accept a receiver's key (aG, as'G) for a new server S' given
    only the CA-certified old key — checks the [ag] parts match and
    e^(G', as'G') = e^(s'G', aG). *)

type ciphertext = {
  u : Curve.point;  (** U = rG *)
  v : string;  (** V = M xor H2(K) *)
  release_time : time;
}
(** C = <U, V>, §5.1. The release time is carried alongside so the
    receiver knows which update to wait for; it is not secret (the sender
    chose it) but is never seen by the server. *)

val encrypt :
  Pairing.params ->
  Server.public ->
  User.public ->
  release_time:time ->
  Hashing.Drbg.t ->
  string ->
  ciphertext
(** Encryption (§5.1): validates the receiver key (raising
    {!Invalid_receiver_key}), picks r, computes
    K = e^(r*asG, H1(T)) = e^(G, H1(T))^ras and masks the message with
    H2(K). Messages of any length are supported (H2 stretches). *)

val encrypt_prevalidated :
  Pairing.params ->
  Server.public ->
  User.public ->
  release_time:time ->
  Hashing.Drbg.t ->
  string ->
  ciphertext
(** Like {!encrypt} but skips the receiver-key pairing check (2 pairings).
    Use when the key was already validated once — validation is a
    per-receiver cost, not a per-message one. Encrypting to an unvalidated
    malformed key silently loses the time-lock guarantee, so only skip the
    check for keys you checked before. *)

(** A stateful sender context for one receiver. Construction validates the
    receiver key once and builds a fixed-base table for the server
    generator; {!Encryptor.encrypt} then caches the pairing per release
    time (K = e^(asG, H1(T))^r by bilinearity), so repeated encryptions to
    the same release time perform {e zero} pairings — one table-backed
    scalar multiplication and one GT exponentiation. Ciphertexts are
    bit-identical to {!encrypt} on the same rng stream. *)
module Encryptor : sig
  type t

  val create : Pairing.params -> Server.public -> User.public -> t
  (** Raises {!Invalid_receiver_key} like {!encrypt}. *)

  val encrypt : t -> release_time:time -> Hashing.Drbg.t -> string -> ciphertext
end

val decrypt : Pairing.params -> User.secret -> update -> ciphertext -> string
(** Decryption (§5.1): K' = e^(U, I_T)^a; M = V xor H2(K').
    Raises {!Update_mismatch} if the update's time label differs from the
    ciphertext's release time. The update is {e not} re-verified here —
    verify on receipt with {!verify_update}; decryption with a forged
    update simply yields garbage, it cannot leak anything. *)

val decrypt_batch :
  ?pool:Pool.t ->
  Pairing.params ->
  User.secret ->
  (update * ciphertext) list ->
  string list
(** Decrypt many (update, ciphertext) pairs — e.g. a mailbox drained after
    the release times passed. Plaintexts come back in input order,
    bit-identical to mapping {!decrypt}; [pool] shards the pairing work
    across domains. Raises {!Update_mismatch} on the first mismatched
    pair, as the serial path would. *)

(** {1 Serialization} — strict {!Codec} envelopes (magic, version, kind
    tag, params fingerprint) with canonical bodies. Decoders return
    [Error diagnostic] on any malformed, non-canonical, cross-kind or
    cross-parameter-set input; they never raise. Every accepted byte
    string re-encodes bit-identically. *)

val ciphertext_to_bytes : Pairing.params -> ciphertext -> string
val ciphertext_of_bytes : Pairing.params -> string -> (ciphertext, string) result
val update_to_bytes : Pairing.params -> update -> string
val update_of_bytes : Pairing.params -> string -> (update, string) result
val user_public_to_bytes : Pairing.params -> User.public -> string
val user_public_of_bytes : Pairing.params -> string -> (User.public, string) result
val server_public_to_bytes : Pairing.params -> Server.public -> string
val server_public_of_bytes : Pairing.params -> string -> (Server.public, string) result

(** {1 Cost accounting}

    The benchmark harness reports both wall-clock time and abstract
    operation counts; the counts come from here so that baselines can be
    compared structurally (E1/E2 in DESIGN.md). *)

val ciphertext_overhead : Pairing.params -> int
(** Ciphertext bytes beyond the plaintext length: the codec envelope,
    one compressed point and two length prefixes (the variable-length
    time label is extra). *)

(**/**)

val scalar_of_seed : Pairing.params -> string -> Bigint.t
(** Internal: hash a seed string to a scalar in [1, q-1] with negligible
    bias. Shared by the password keygen and the FO/REACT transforms. *)
