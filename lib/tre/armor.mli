(** ASCII armor for keys, updates and ciphertexts (PEM-like).

    {[
      -----BEGIN TRE CIPHERTEXT (mid128)-----
      pZ8x...
      -----END TRE CIPHERTEXT-----
    ]}

    The parameter-set name rides in the header so tools can refuse
    cross-parameter material early. Payloads are Base64 of the binary
    codecs in {!Tre}. *)

val wrap : kind:string -> params:string -> string -> string
(** [kind] is an uppercase label like ["CIPHERTEXT"]; [params] the
    parameter-set name. *)

val unwrap : string -> (string * string * string) option
(** [Some (kind, params, payload)] for well-formed armor (leading and
    trailing junk outside the markers is tolerated, mismatched BEGIN/END
    kinds are not). *)

val unwrap_expecting :
  kind:string -> params:string -> string -> (string, string) result
(** Unwrap and check both the kind and the parameter-set name; the error
    is a human-readable reason. *)

val wrap_object : Pairing.params -> kind:Codec.kind -> string -> string
(** Armor a {!Codec}-framed payload. The armor header's kind label and
    parameter-set name are derived from [kind] and [prms], and the payload
    envelope must already carry the same kind tag and params fingerprint —
    raises [Invalid_argument] otherwise, so a mislabeled armor can never
    be produced. *)

val unwrap_object :
  ?expect:Codec.kind -> string -> (Codec.kind * Pairing.params * string, string) result
(** Unwrap typed armor: resolves the header's kind label and parameter-set
    name, and cross-checks both against the payload's binary envelope (a
    relabeled armor is rejected even though the base64 body is intact).
    [expect] additionally pins the kind. The returned payload still
    carries its envelope — feed it to the matching [*_of_bytes]. *)
