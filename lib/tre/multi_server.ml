exception Invalid_receiver_key
exception Update_mismatch
exception Wrong_update_count

type receiver_public = { ag : Curve.point; k_new : Curve.point }

type ciphertext = {
  us : Curve.point array;
  v : string;
  release_time : Tre.time;
}

let sum_server_points prms servers =
  List.fold_left
    (fun acc (srv : Tre.Server.public) ->
      Curve.add prms.Pairing.curve acc srv.Tre.Server.sg)
    Curve.infinity servers

let receiver_public_of_secret prms servers a =
  if servers = [] then invalid_arg "Multi_server: empty server list";
  let curve = prms.Pairing.curve in
  let scalar = Tre.User.secret_to_scalar a in
  {
    ag = Curve.mul curve scalar prms.Pairing.g;
    k_new = Curve.mul curve scalar (sum_server_points prms servers);
  }

let receiver_keygen prms servers rng =
  let a = Tre.User.secret_of_scalar prms (Pairing.random_scalar prms rng) in
  (a, receiver_public_of_secret prms servers a)

let validate_receiver_key prms servers (pk : receiver_public) =
  servers <> []
  && Pairing.in_g1 prms pk.ag
  && Pairing.in_g1 prms pk.k_new
  && (not (Curve.is_infinity pk.ag))
  && Pairing.pairing_equal_check prms
       ~lhs:(prms.Pairing.g, pk.k_new)
       ~rhs:(pk.ag, sum_server_points prms servers)

let encrypt prms servers pk ~release_time rng msg =
  if not (validate_receiver_key prms servers pk) then raise Invalid_receiver_key;
  let curve = prms.Pairing.curve in
  let r = Pairing.random_scalar prms rng in
  let us =
    Array.of_list
      (List.map (fun (srv : Tre.Server.public) -> Curve.mul curve r srv.Tre.Server.g) servers)
  in
  let k =
    Pairing.pairing prms (Curve.mul curve r pk.k_new)
      (Pairing.hash_to_g1 prms release_time)
  in
  { us; v = Hashing.Kdf.xor msg (Pairing.h2 prms k (String.length msg)); release_time }

let decrypt prms a updates ct =
  if List.length updates <> Array.length ct.us then raise Wrong_update_count;
  List.iter
    (fun (u : Tre.update) ->
      if u.Tre.update_time <> ct.release_time then raise Update_mismatch)
    updates;
  let scalar = Tre.User.secret_to_scalar a in
  (* K = (prod_i e^(rG_i, s_i H1(T)))^a — one shared final exponentiation
     and one GT exponentiation regardless of N. *)
  let pairs = List.mapi (fun i (u : Tre.update) -> (ct.us.(i), u.Tre.update_value)) updates in
  let k = Pairing.gt_pow prms (Pairing.pairing_product prms pairs) scalar in
  Hashing.Kdf.xor ct.v (Pairing.h2 prms k (String.length ct.v))

(* Wire bound on N: one byte would do for any deployment the paper
   discusses, but the count is framed as a u32 with an explicit cap so the
   decoder can reject absurd counts before allocating. *)
let max_servers = 255

let ciphertext_to_bytes prms ct =
  let n = Array.length ct.us in
  if n = 0 || n > max_servers then
    invalid_arg "Multi_server.ciphertext_to_bytes: server count out of range";
  Codec.encode prms Codec.Ciphertext_multi (fun buf ->
      Codec.add_label buf ct.release_time;
      Codec.add_u32 buf n;
      Array.iter (Codec.add_point prms buf) ct.us;
      Codec.add_var buf ct.v)

let ciphertext_of_bytes prms s =
  Codec.decode prms Codec.Ciphertext_multi s (fun r ->
      let release_time = Codec.read_label ~what:"release time" r in
      let n = Codec.read_u32 ~what:"server count" ~max:max_servers r in
      if n = 0 then Codec.fail "server count must be positive";
      let us =
        Array.init n (fun i ->
            Codec.read_g1 ~what:(Printf.sprintf "U[%d]" i) prms r)
      in
      let v = Codec.read_var ~what:"V" r in
      { us; v; release_time })

let receiver_public_to_bytes prms pk =
  Codec.encode prms Codec.Multi_receiver (fun buf ->
      Codec.add_point prms buf pk.ag;
      Codec.add_point prms buf pk.k_new)

let receiver_public_of_bytes prms s =
  Codec.decode prms Codec.Multi_receiver s (fun r ->
      let ag = Codec.read_g1 ~what:"aG" prms r in
      let k_new = Codec.read_g1 ~what:"K_new" prms r in
      { ag; k_new })

let ciphertext_overhead prms ~n_servers =
  Codec.header_bytes + 12 + (n_servers * Pairing.point_bytes prms)
