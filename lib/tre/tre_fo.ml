exception Decryption_failed

type ciphertext = {
  u : Curve.point;
  v : string;
  w : string;
  release_time : Tre.time;
}

let seed_bytes = 32

(* H3: derive the encryption scalar from (seed, message, time). Every
   field is length-prefixed: bare concatenation would let (T="A", m="Bx")
   and (T="AB", m="x") hash identically and derive the same scalar. *)
let h3 prms ~seed ~msg ~release_time =
  Tre.scalar_of_seed prms
    (Codec.hash_input ~domain:"TRE-FO-H3" [ seed; release_time; msg ])

(* H4: the data-encapsulation mask. *)
let h4 seed n = Hashing.Kdf.mask ("TRE-FO-H4|" ^ seed) n

let session_key prms (pk : Tre.User.public) ~release_time ~r =
  Pairing.pairing prms
    (Curve.mul prms.Pairing.curve r pk.Tre.User.asg)
    (Pairing.hash_to_g1 prms release_time)

let encrypt prms srv pk ~release_time rng msg =
  if not (Tre.validate_receiver_key prms srv pk) then raise Tre.Invalid_receiver_key;
  let seed = Hashing.Drbg.generate rng seed_bytes in
  let r = h3 prms ~seed ~msg ~release_time in
  let k = session_key prms pk ~release_time ~r in
  {
    u = Curve.mul prms.Pairing.curve r srv.Tre.Server.g;
    v = Hashing.Kdf.xor seed (Pairing.h2 prms k seed_bytes);
    w = Hashing.Kdf.xor msg (h4 seed (String.length msg));
    release_time;
  }

let decrypt prms (srv : Tre.Server.public) (pk : Tre.User.public) a upd ct =
  if upd.Tre.update_time <> ct.release_time then raise Tre.Update_mismatch;
  if String.length ct.v <> seed_bytes then raise Decryption_failed;
  let k =
    Pairing.gt_pow prms
      (Pairing.pairing prms ct.u upd.Tre.update_value)
      (Tre.User.secret_to_scalar a)
  in
  let seed = Hashing.Kdf.xor ct.v (Pairing.h2 prms k seed_bytes) in
  let msg = Hashing.Kdf.xor ct.w (h4 seed (String.length ct.w)) in
  (* Full re-encryption check: recompute r, U and V from the recovered
     (seed, msg) and compare. *)
  let r = h3 prms ~seed ~msg ~release_time:ct.release_time in
  if not (Curve.equal ct.u (Curve.mul prms.Pairing.curve r srv.Tre.Server.g)) then
    raise Decryption_failed;
  let k' = session_key prms pk ~release_time:ct.release_time ~r in
  if not (Hashing.ct_equal (Hashing.Kdf.xor seed (Pairing.h2 prms k' seed_bytes)) ct.v)
  then raise Decryption_failed;
  msg

let ciphertext_to_bytes prms ct =
  if String.length ct.v <> seed_bytes then
    invalid_arg "Tre_fo.ciphertext_to_bytes: V must be exactly seed_bytes wide";
  Codec.encode prms Codec.Ciphertext_fo (fun buf ->
      Codec.add_label buf ct.release_time;
      Codec.add_point prms buf ct.u;
      Codec.add_fixed buf ct.v;
      Codec.add_var buf ct.w)

let ciphertext_of_bytes prms s =
  Codec.decode prms Codec.Ciphertext_fo s (fun r ->
      let release_time = Codec.read_label ~what:"release time" r in
      let u = Codec.read_g1 ~what:"U" prms r in
      let v = Codec.read_fixed ~what:"V (committed seed)" r seed_bytes in
      let w = Codec.read_var ~what:"W" r in
      { u; v; w; release_time })

let ciphertext_overhead prms = Tre.ciphertext_overhead prms + seed_bytes
