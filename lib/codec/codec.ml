(* Strict versioned wire codec.

   Every serialized object starts with a fixed envelope

     magic "TRE1" (4) | format version (1) | kind tag (1) | params fingerprint (8)

   followed by a kind-specific body built from a small set of strict
   fields: fixed-width byte strings, bounded u32-length-prefixed strings,
   fixed-width canonical compressed curve points, fixed-width scalars in
   [1, q-1]. Decoding is combinator-style over a cursor; any violation
   raises the internal {!Parse_error}, which {!decode} converts into a
   diagnostic [Error] — decoders never leak exceptions.

   The invariant the fuzz harness enforces: a decoder accepts exactly the
   canonical encoding of each value, so every accepted byte string
   re-encodes bit-identically, and cross-kind or cross-parameter-set
   material dies on the envelope (tag / fingerprint) before any curve
   arithmetic runs. *)

let magic = "TRE1"
let version = 1
let fingerprint_bytes = 8
let header_bytes = String.length magic + 2 + fingerprint_bytes
let max_label_bytes = 4096
let max_var_bytes = 1 lsl 30

type kind =
  | Ciphertext
  | Ciphertext_fo
  | Ciphertext_react
  | Ciphertext_id
  | Ciphertext_multi
  | Key_update
  | User_public
  | Server_public
  | User_secret
  | Server_secret
  | Bls_public
  | Bls_signature
  | Epoch_key
  | Threshold_partial
  | Multi_receiver
  | Net_hello
  | Net_subscribe
  | Net_archive_query
  | Net_archive_miss
  | Net_tick
  | Net_stats_query
  | Net_stats
  | Delegate_query
  | Delegate_response

let all_kinds =
  [
    Ciphertext; Ciphertext_fo; Ciphertext_react; Ciphertext_id; Ciphertext_multi;
    Key_update; User_public; Server_public; User_secret; Server_secret;
    Bls_public; Bls_signature; Epoch_key; Threshold_partial; Multi_receiver;
    Net_hello; Net_subscribe; Net_archive_query; Net_archive_miss; Net_tick;
    Net_stats_query; Net_stats; Delegate_query; Delegate_response;
  ]

let kind_tag = function
  | Ciphertext -> 0x01
  | Ciphertext_fo -> 0x02
  | Ciphertext_react -> 0x03
  | Ciphertext_id -> 0x04
  | Ciphertext_multi -> 0x05
  | Key_update -> 0x06
  | User_public -> 0x07
  | Server_public -> 0x08
  | User_secret -> 0x09
  | Server_secret -> 0x0A
  | Bls_public -> 0x0B
  | Bls_signature -> 0x0C
  | Epoch_key -> 0x0D
  | Threshold_partial -> 0x0E
  | Multi_receiver -> 0x0F
  | Net_hello -> 0x10
  | Net_subscribe -> 0x11
  | Net_archive_query -> 0x12
  | Net_archive_miss -> 0x13
  | Net_tick -> 0x14
  | Net_stats_query -> 0x15
  | Net_stats -> 0x16
  | Delegate_query -> 0x17
  | Delegate_response -> 0x18

let kind_of_tag tag = List.find_opt (fun k -> kind_tag k = tag) all_kinds

let kind_label = function
  | Ciphertext -> "CIPHERTEXT"
  | Ciphertext_fo -> "CIPHERTEXT FO"
  | Ciphertext_react -> "CIPHERTEXT REACT"
  | Ciphertext_id -> "CIPHERTEXT ID"
  | Ciphertext_multi -> "CIPHERTEXT MULTI"
  | Key_update -> "KEY UPDATE"
  | User_public -> "USER PUBLIC KEY"
  | Server_public -> "SERVER PUBLIC KEY"
  | User_secret -> "USER SECRET KEY"
  | Server_secret -> "SERVER SECRET KEY"
  | Bls_public -> "BLS PUBLIC KEY"
  | Bls_signature -> "BLS SIGNATURE"
  | Epoch_key -> "EPOCH KEY"
  | Threshold_partial -> "THRESHOLD PARTIAL"
  | Multi_receiver -> "MULTI RECEIVER KEY"
  | Net_hello -> "NET HELLO"
  | Net_subscribe -> "NET SUBSCRIBE"
  | Net_archive_query -> "NET ARCHIVE QUERY"
  | Net_archive_miss -> "NET ARCHIVE MISS"
  | Net_tick -> "NET TICK"
  | Net_stats_query -> "NET STATS QUERY"
  | Net_stats -> "NET STATS"
  | Delegate_query -> "DELEGATE QUERY"
  | Delegate_response -> "DELEGATE RESPONSE"

let kind_of_label label = List.find_opt (fun k -> kind_label k = label) all_kinds

(* --- length-prefixed hash inputs --- *)

let u32_be n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xFF))

let length_prefixed ~domain fields =
  domain :: List.concat_map (fun f -> [ u32_be (String.length f); f ]) fields

let hash_input ~domain fields = String.concat "" (length_prefixed ~domain fields)

(* --- params fingerprint --- *)

let family_byte = function Pairing.Y2_x3_x -> "\x01" | Pairing.Y2_x3_1 -> "\x02"

let params_fingerprint prms =
  let p = Bigint.to_bytes_be prms.Pairing.p in
  let q = Bigint.to_bytes_be prms.Pairing.q in
  let digest =
    Hashing.Sha256.digest_concat
      (length_prefixed ~domain:"TRE-params-fingerprint-v1"
         [ family_byte prms.Pairing.family; p; q ])
  in
  String.sub digest 0 fingerprint_bytes

(* --- emitters --- *)

let add_u32 buf n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Codec.add_u32: out of range";
  Buffer.add_string buf (u32_be n)

(* 8-byte big-endian non-negative integer. OCaml's [int] is 63-bit, so
   the canonical range is [0, 2^62); the decoder rejects anything whose
   top two bits are set, keeping encode/decode ranges equal. *)
let add_u64 buf n =
  if n < 0 then invalid_arg "Codec.add_u64: negative";
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let add_fixed = Buffer.add_string

let add_var buf s =
  if String.length s > max_var_bytes then invalid_arg "Codec.add_var: oversized field";
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_label buf s =
  if String.length s > max_label_bytes then
    invalid_arg "Codec.add_label: label exceeds the wire limit";
  add_var buf s

let add_point prms buf pt =
  let w = Pairing.point_bytes prms in
  let raw = Curve.to_bytes prms.Pairing.curve pt in
  let n = String.length raw in
  if n = w then Buffer.add_string buf raw
  else if n = 1 && raw.[0] = '\x00' then begin
    (* Infinity encodes as one byte; pad to the fixed frame width with
       zeros (the decoder requires exactly this padding). *)
    Buffer.add_string buf raw;
    Buffer.add_string buf (String.make (w - 1) '\x00')
  end
  else invalid_arg "Codec.add_point: raw point encoding is neither 1 nor point_bytes wide"

let add_scalar prms buf v =
  if Bigint.sign v <= 0 || Bigint.compare v prms.Pairing.q >= 0 then
    invalid_arg "Codec.add_scalar: scalar out of range [1, q-1]";
  Buffer.add_string buf (Bigint.to_bytes_be ~pad_to:(Pairing.scalar_bytes prms) v)

let add_gt prms buf v =
  let fp = prms.Pairing.fp in
  if Fp2.is_zero fp v then invalid_arg "Codec.add_gt: zero is not a group element";
  let raw = Fp2.to_bytes fp v in
  if String.length raw <> Pairing.gt_bytes prms then
    invalid_arg "Codec.add_gt: encoding width mismatch";
  Buffer.add_string buf raw

let add_envelope buf kind prms =
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr (kind_tag kind));
  Buffer.add_string buf (params_fingerprint prms)

let encode prms kind body =
  let buf = Buffer.create 128 in
  add_envelope buf kind prms;
  body buf;
  Buffer.contents buf

(* --- strict readers --- *)

type reader = { buf : string; mutable pos : int }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt
let remaining r = String.length r.buf - r.pos

let need r n what =
  if remaining r < n then
    fail "%s: need %d byte(s) at offset %d, input has %d left" what n r.pos (remaining r)

let read_fixed ?(what = "bytes") r n =
  if n < 0 then fail "%s: negative length" what;
  need r n what;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let read_u8 ?(what = "byte") r =
  need r 1 what;
  let c = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_u32 ?(what = "u32") ?(max = max_var_bytes) r =
  need r 4 what;
  let b i = Char.code r.buf.[r.pos + i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  if n > max then fail "%s: %d exceeds the limit %d" what n max;
  n

let read_u64 ?(what = "u64") r =
  need r 8 what;
  let b i = Char.code r.buf.[r.pos + i] in
  if b 0 land 0xC0 <> 0 then fail "%s: value exceeds the 62-bit wire range" what;
  let n = ref 0 in
  for i = 0 to 7 do
    n := (!n lsl 8) lor b i
  done;
  r.pos <- r.pos + 8;
  !n

let read_var ?(what = "string") ?max r =
  let n = read_u32 ~what:(what ^ " length") ?max r in
  read_fixed ~what r n

let read_label ?(what = "label") r = read_var ~what ~max:max_label_bytes r

let read_point ?(what = "point") prms r =
  let w = Pairing.point_bytes prms in
  let s = read_fixed ~what r w in
  if s.[0] = '\x00' then begin
    (* Canonical infinity: the single 0x00 tag byte followed by all-zero
       padding. Any nonzero padding byte would give a second byte string
       decoding to the same point, breaking canonicality. *)
    for i = 1 to w - 1 do
      if s.[i] <> '\x00' then fail "%s: non-canonical infinity padding" what
    done;
    Curve.infinity
  end
  else begin
    match Curve.of_bytes prms.Pairing.curve s with
    | Some p when Pairing.in_g1 prms p -> p
    | Some _ -> fail "%s: point outside the order-q subgroup" what
    | None -> fail "%s: malformed or non-canonical point encoding" what
  end

let read_g1 ?(what = "point") prms r =
  let p = read_point ~what prms r in
  if Curve.is_infinity p then fail "%s: identity point not allowed" what;
  p

let read_scalar ?(what = "scalar") prms r =
  let s = read_fixed ~what r (Pairing.scalar_bytes prms) in
  let v = Bigint.of_bytes_be s in
  if Bigint.sign v <= 0 || Bigint.compare v prms.Pairing.q >= 0 then
    fail "%s: scalar out of range [1, q-1]" what;
  v

(* Deliberately NOT a subgroup-membership check: delegation responses
   from an untrusted helper may sit anywhere in GF(p^2)* and the
   protocol layer's hardened check must be the one to see and reject
   them (that rejection is the whole point of the Liu-Cao fix). Only
   canonicity and nonzero-ness are wire-level invariants. *)
let read_gt ?(what = "gt element") prms r =
  let fp = prms.Pairing.fp in
  let s = read_fixed ~what r (Pairing.gt_bytes prms) in
  match Fp2.of_bytes fp s with
  | None -> fail "%s: non-canonical GF(p^2) encoding" what
  | Some v ->
      if Fp2.is_zero fp v then fail "%s: zero is not a group element" what;
      v

(* --- envelope checking --- *)

let check_envelope prms kind r =
  let m = read_fixed ~what:"magic" r (String.length magic) in
  if m <> magic then fail "bad magic: not a TRE1 wire object";
  let v = read_u8 ~what:"format version" r in
  if v <> version then fail "unsupported format version %d (this build reads %d)" v version;
  let tag = read_u8 ~what:"kind tag" r in
  (match kind_of_tag tag with
  | None -> fail "unknown kind tag 0x%02x" tag
  | Some k when k <> kind ->
      fail "kind mismatch: expected %s, found %s" (kind_label kind) (kind_label k)
  | Some _ -> ());
  let fpr = read_fixed ~what:"params fingerprint" r fingerprint_bytes in
  if fpr <> params_fingerprint prms then
    fail "parameter-set fingerprint mismatch: object was encoded under different parameters"

let decode prms kind s body =
  let r = { buf = s; pos = 0 } in
  match
    check_envelope prms kind r;
    let v = body r in
    if remaining r > 0 then
      fail "%d trailing byte(s) after a complete %s object" (remaining r) (kind_label kind);
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- envelope peeking (armor / info tooling) --- *)

let peek_kind s =
  if String.length s < header_bytes then Error "truncated envelope"
  else if String.sub s 0 (String.length magic) <> magic then
    Error "bad magic: not a TRE1 wire object"
  else if Char.code s.[4] <> version then
    Error (Printf.sprintf "unsupported format version %d" (Char.code s.[4]))
  else begin
    match kind_of_tag (Char.code s.[5]) with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown kind tag 0x%02x" (Char.code s.[5]))
  end

let matches_params prms s =
  String.length s >= header_bytes
  && String.sub s 6 fingerprint_bytes = params_fingerprint prms
