(** Strict versioned wire codec — the single framing layer under every
    serializer in the library.

    In the paper's server-passive model every object a party consumes
    (key updates, receiver keys, ciphertexts) arrives as untrusted bytes
    from a public channel, so the wire layer is where malformed-value
    filtering happens. Every object starts with a self-describing
    envelope

    {v magic "TRE1" | version (1) | kind tag (1) | params fingerprint (8) v}

    and its body is built from strict fields only. Two guarantees:

    - {b Canonicality}: a decoder accepts {e exactly} the canonical
      encoding of each value — every accepted byte string re-encodes
      bit-identically. No non-canonical points, no mis-padded infinity,
      no trailing garbage, no out-of-range lengths or scalars.
    - {b Early cross-domain rejection}: an object of the wrong kind or
      from a different parameter set is rejected on the envelope (kind
      tag, params fingerprint) before any curve arithmetic runs.

    Decoders return [result] with a diagnostic message; they never raise
    on any input (the decode-fuzzing harness asserts this). *)

(** {1 Envelope} *)

val magic : string
(** ["TRE1"]. *)

val version : int
(** Current wire format version (1). *)

val header_bytes : int
(** Size of the envelope: 4 magic + 1 version + 1 kind + 8 fingerprint. *)

val fingerprint_bytes : int
val max_label_bytes : int
(** Upper bound on time labels / identities (4096 bytes). *)

val max_var_bytes : int
(** Upper bound on any variable-length field (2^30 bytes). *)

(** Wire object kinds; one tag per serialized type so that feeding an
    object to the wrong decoder dies on the envelope. *)
type kind =
  | Ciphertext          (** {!Tre.ciphertext} *)
  | Ciphertext_fo       (** {!Tre_fo.ciphertext} *)
  | Ciphertext_react    (** {!Tre_react.ciphertext} *)
  | Ciphertext_id       (** [Id_tre.ciphertext] *)
  | Ciphertext_multi    (** [Multi_server.ciphertext] *)
  | Key_update          (** {!Tre.update} *)
  | User_public         (** {!Tre.User.public} *)
  | Server_public       (** {!Tre.Server.public} *)
  | User_secret         (** CLI: the receiver scalar *)
  | Server_secret       (** CLI: the server scalar + generator *)
  | Bls_public
  | Bls_signature
  | Epoch_key           (** [Key_insulation.epoch_key] *)
  | Threshold_partial   (** [Threshold_server.partial] *)
  | Multi_receiver      (** [Multi_server.receiver_public] *)
  | Net_hello           (** daemon: server key + timeline + current epoch *)
  | Net_subscribe       (** daemon: join the broadcast fan-out *)
  | Net_archive_query   (** daemon: missed-update lookup by label (§6) *)
  | Net_archive_miss    (** daemon: negative archive answer + reason *)
  | Net_tick            (** daemon: broadcast preamble (label, send stamp) *)
  | Net_stats_query     (** daemon: operational counters request *)
  | Net_stats           (** daemon: operational counters *)
  | Delegate_query      (** helper: blinded pairing query vector *)
  | Delegate_response   (** helper: pairing values for a query vector *)

val all_kinds : kind list
val kind_tag : kind -> int
val kind_of_tag : int -> kind option
val kind_label : kind -> string
(** The armor header label, e.g. ["CIPHERTEXT FO"]. *)

val kind_of_label : string -> kind option

val params_fingerprint : Pairing.params -> string
(** First 8 bytes of SHA-256 over the canonical serialization of the
    parameter set (family, p, q — each length-prefixed). Structural: two
    parameter sets agree iff they define the same group. *)

(** {1 Length-prefixed hash inputs}

    Hashing variable-length fields by bare concatenation is ambiguous —
    [(T="A", m="Bx")] and [(T="AB", m="x")] concatenate identically. These
    helpers prefix every field with its 4-byte big-endian length, making
    the encoding injective. *)

val length_prefixed : domain:string -> string list -> string list
(** [domain :: concat_map (fun f -> [u32 (len f); f]) fields] — feed to
    {!Hashing.Sha256.digest_concat} without building the concatenation. *)

val hash_input : domain:string -> string list -> string
(** [String.concat "" (length_prefixed ~domain fields)]. *)

(** {1 Encoding} *)

val encode : Pairing.params -> kind -> (Buffer.t -> unit) -> string
(** [encode prms kind body] writes the envelope, runs [body] on the
    buffer, and returns the bytes. *)

val add_u32 : Buffer.t -> int -> unit

val add_u64 : Buffer.t -> int -> unit
(** 8-byte big-endian; canonical range [0, 2^62) (OCaml ints are 63-bit —
    the decoder rejects the top two bits to keep ranges equal). *)

val add_fixed : Buffer.t -> string -> unit
val add_var : Buffer.t -> string -> unit
(** 4-byte big-endian length prefix, then the bytes. *)

val add_label : Buffer.t -> string -> unit
(** Like {!add_var} but enforces {!max_label_bytes} (the decoder enforces
    the same bound, keeping encode/decode ranges equal). *)

val add_point : Pairing.params -> Buffer.t -> Curve.point -> unit
(** Fixed-width compressed point: [point_bytes] wide; infinity is the
    0x00 tag followed by all-zero padding. Raises [Invalid_argument] if
    the raw encoding is neither 1 nor [point_bytes] wide. *)

val add_scalar : Pairing.params -> Buffer.t -> Bigint.t -> unit
(** Fixed-width big-endian scalar; raises [Invalid_argument] outside
    [1, q-1]. *)

val add_gt : Pairing.params -> Buffer.t -> Fp2.t -> unit
(** Fixed-width ([gt_bytes]) canonical GF(p^2) element; raises
    [Invalid_argument] on zero or a width mismatch. *)

(** {1 Strict decoding}

    Readers advance a cursor and raise an internal parse exception on any
    violation; {!decode} catches it and returns [Error diagnostic]. The
    exception never escapes {!decode}. *)

type reader

val decode :
  Pairing.params -> kind -> string -> (reader -> 'a) -> ('a, string) result
(** [decode prms kind s body] checks the envelope (magic, version, kind
    tag, params fingerprint — in that order, so confusion is caught
    before any curve arithmetic), runs [body], and requires the input to
    be fully consumed. *)

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Abort the current decode with a diagnostic (for scheme-level checks
    inside a [decode] body). Must only be called inside [decode]. *)

val remaining : reader -> int
val read_u8 : ?what:string -> reader -> int
val read_u32 : ?what:string -> ?max:int -> reader -> int
val read_u64 : ?what:string -> reader -> int
val read_fixed : ?what:string -> reader -> int -> string
val read_var : ?what:string -> ?max:int -> reader -> string
val read_label : ?what:string -> reader -> string
(** {!read_var} bounded by {!max_label_bytes}. *)

val read_point : ?what:string -> Pairing.params -> reader -> Curve.point
(** Canonical fixed-width point in the order-q subgroup; accepts the
    canonical infinity encoding (0x00 + all-zero padding) only. *)

val read_g1 : ?what:string -> Pairing.params -> reader -> Curve.point
(** {!read_point} that additionally rejects infinity. *)

val read_scalar : ?what:string -> Pairing.params -> reader -> Bigint.t
(** Fixed-width scalar in [1, q-1]. *)

val read_gt : ?what:string -> Pairing.params -> reader -> Fp2.t
(** Canonical nonzero GF(p^2) element. Deliberately NOT restricted to
    the order-q subgroup: delegation responses from untrusted helpers
    must reach the protocol layer's hardened check un-filtered, so the
    check (and the tests mounting the Liu-Cao forgery) see exactly what
    the helper sent. *)

(** {1 Envelope peeking} — for armor and [info] tooling. *)

val peek_kind : string -> (kind, string) result
(** Kind tag of an envelope without decoding the body. *)

val matches_params : Pairing.params -> string -> bool
(** Whether the envelope fingerprint matches the parameter set. *)
