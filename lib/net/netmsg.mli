(** Typed protocol messages for the networked time server.

    Every message is a strict {!Codec} object with its own envelope kind,
    so protocol traffic gets the same guarantees as the cryptographic
    objects it carries: canonical encodings, total [result] decoders, and
    envelope-level kind/params confusion rejection. Key updates
    themselves travel as plain {!Codec.Key_update} objects
    ({!Tre.update_to_bytes}) — the daemon adds nothing around them, so
    the broadcast frame a subscriber receives is byte-identical to the
    archive frame and to what the simulated network carries. *)

type hello = {
  origin : string;  (** the timeline's label origin, e.g. ["utc"] *)
  granularity_us : int;  (** epoch length in microseconds *)
  current_epoch : int;  (** last epoch whose update has been broadcast *)
  server_g : Curve.point;
  server_sg : Curve.point;  (** PK_S = (G, sG) *)
}

type miss_reason =
  | Unknown_label  (** foreign origin or unparsable label *)
  | Future_refused  (** §3: the epoch has not started — never served *)

type tick = {
  tick_label : string;  (** the epoch label about to be broadcast *)
  sent_at_us : int;  (** server send stamp, µs since the Unix epoch *)
}

type stats = {
  conns_accepted : int;
  conns_open : int;
  subscribers : int;
  updates_encoded : int;
      (** update frames {e built} — stays equal to the number of distinct
          epochs broadcast however many subscribers there are (the
          encode-once invariant, asserted by tests and the harness) *)
  frames_sent : int;  (** frame references enqueued for write *)
  bytes_sent : int;  (** bytes actually written to sockets *)
  archive_hits : int;
  archive_misses : int;
  protocol_errors : int;  (** framing/codec violations → disconnect *)
  slow_disconnects : int;  (** back-pressure evictions *)
  queue_bytes : int;  (** current sum of pending write bytes *)
  queue_bytes_peak : int;  (** high-water mark of [queue_bytes] *)
  send_syscalls : int;
      (** write/writev syscalls on the send path — with vectored writes
          a broadcast epoch costs ~1 per subscriber, not 1 per frame *)
  poll_wakeups : int;  (** poller waits that returned ≥ 1 ready event *)
  shard_conns : int list;  (** open connections per shard, in shard order *)
}

type delegate_query = {
  query_id : int;  (** echoed in the response so a thin client can
                       pipeline queries over one connection *)
  pairs : (Curve.point * Curve.point) array;
      (** blinded pairing arguments, 1..{!max_delegate_pairs}; every
          point must be a non-infinity order-q subgroup member (the
          decoder enforces it — blinded queries never leave G1) *)
}
(** One blinded query vector of {!Delegate.wrap}, bound for a helper. *)

type delegate_response = {
  response_id : int;
  values : Fp2.t array;
      (** one pairing value per query slot. Decoded values are
          canonical and nonzero but deliberately NOT subgroup-checked:
          the hardened client-side check must see malicious responses
          unfiltered (see {!Codec.read_gt}). *)
}

val max_delegate_pairs : int

val hello_to_bytes : Pairing.params -> hello -> string
val hello_of_bytes : Pairing.params -> string -> (hello, string) result
val subscribe_to_bytes : Pairing.params -> string
val subscribe_of_bytes : Pairing.params -> string -> (unit, string) result
val archive_query_to_bytes : Pairing.params -> string -> string
val archive_query_of_bytes : Pairing.params -> string -> (string, string) result
val archive_miss_to_bytes : Pairing.params -> string -> miss_reason -> string
val archive_miss_of_bytes :
  Pairing.params -> string -> (string * miss_reason, string) result
val tick_to_bytes : Pairing.params -> tick -> string
val tick_of_bytes : Pairing.params -> string -> (tick, string) result
val stats_query_to_bytes : Pairing.params -> string
val stats_query_of_bytes : Pairing.params -> string -> (unit, string) result
val stats_to_bytes : Pairing.params -> stats -> string
val stats_of_bytes : Pairing.params -> string -> (stats, string) result
val delegate_query_to_bytes : Pairing.params -> delegate_query -> string
val delegate_query_of_bytes :
  Pairing.params -> string -> (delegate_query, string) result
val delegate_response_to_bytes : Pairing.params -> delegate_response -> string
val delegate_response_of_bytes :
  Pairing.params -> string -> (delegate_response, string) result
