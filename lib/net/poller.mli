(** Pluggable readiness poller — the event backend under {!Net_server}'s
    shard and listener loops.

    Two backends behind one interface:

    - [Select]: the portable [Unix.select] loop. Interest is tracked
      incrementally and the fd lists are rebuilt only when interest
      actually changes, but the kernel still scans every registered
      descriptor per wait and FD_SETSIZE (~1024) bounds how many real
      descriptors one poller can hold.
    - [Epoll]: Linux [epoll] via C stubs, level-triggered. Registration
      is one syscall per interest {e transition} (not per iteration),
      [wait] returns only ready descriptors — O(ready), not
      O(registered) — and descriptor count is bounded by the process fd
      limit, not FD_SETSIZE.

    Level-triggered was chosen deliberately: a descriptor with unread
    bytes or writable space keeps reporting until the condition clears,
    so a partial read/write in one iteration cannot strand a connection
    — the state machine needs no readiness caching, exactly like the
    select semantics the server grew up on. Both backends are
    single-owner: one domain creates, registers and waits; cross-domain
    wake-up stays the owner's self-pipe, registered like any other fd. *)

type backend = Select | Epoll

val epoll_available : unit -> bool
(** Whether the [Epoll] backend works on this platform (Linux). *)

val backend_of_string : string -> (backend option, string) result
(** ["auto"] → [Ok None], ["select"]/["epoll"] → [Ok (Some _)];
    anything else is [Error]. *)

val backend_name : backend -> string

type t

val create : ?backend:backend -> unit -> t
(** [Some Epoll] raises [Failure] where unavailable; [None] (default)
    picks [Epoll] when available, [Select] otherwise. *)

val backend : t -> backend
val fd_count : t -> int
(** Registered descriptors. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit

val del : t -> Unix.file_descr -> unit
(** Unregister; must precede [Unix.close] of the descriptor. Unknown
    descriptors are ignored. *)

val wait :
  t -> timeout_ms:int -> (Unix.file_descr -> readable:bool -> writable:bool -> unit) -> int
(** Block up to [timeout_ms] (one kernel syscall), invoke the callback
    once per ready descriptor, return the number of events. The callback
    may [del]/[modify]/[add] freely, including for the descriptor it was
    invoked on. Allocation-free on the epoll path: events land in
    preallocated arrays. *)

val close : t -> unit
(** Release the backend's kernel object (epoll fd). Registered
    descriptors are not closed. *)

(** {1 Vectored writes}

    Not a polling op, but the same C stub family and the same backends
    use it: one [writev] drains a whole bounded output queue. *)

val writev_available : bool

val writev : Unix.file_descr -> string array -> first_off:int -> count:int -> int
(** Write [count] strings from the array in one syscall, skipping the
    first [first_off] bytes of element 0 (the partially-written head
    frame). Returns bytes written; raises [Unix.Unix_error] like
    [Unix.write] (EAGAIN included). At most the stub's iovec cap (64)
    entries are submitted per call. *)

val raise_fd_limit : int -> int
(** Raise the soft open-files limit toward the argument (capped at the
    hard limit); returns the soft limit now in effect. *)
