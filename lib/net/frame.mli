(** Length-prefixed per-connection framing for the socket transport.

    The stream layer under the daemon: every wire object (a strict
    {!Codec} envelope + body) travels as one {e frame}

    {v u32 big-endian payload length | payload bytes v}

    so a connection is a sequence of self-delimiting frames and the
    strict result-returning decoders always see exactly one complete
    candidate object. The framing itself is adversary-facing, so it is
    as strict as the codec underneath:

    - a declared length above [max_payload] is a fatal framing error the
      moment the prefix is read — the peer cannot make us buffer it;
    - a truncated prefix or truncated payload is visible via
      {!Decoder.buffered} when the peer closes mid-frame;
    - zero-length frames are legal at this layer (the codec rejects them
      as truncated envelopes).

    The decoder is incremental: feed it whatever [read] returned, pop
    complete frames as they materialize. Internal storage is compacted
    so a slow sender cannot grow the buffer beyond one maximal frame. *)

val default_max_payload : int
(** 1 MiB — far above any current wire object. *)

val encode : string -> string
(** [encode payload] is the 4-byte length prefix followed by the
    payload. Raises [Invalid_argument] beyond {!default_max_payload}. *)

val add : Buffer.t -> string -> unit
(** Append one frame to a buffer (same bytes as {!encode}). *)

module Decoder : sig
  type t

  val create : ?max_payload:int -> unit -> t

  val feed : t -> bytes -> int -> int -> (unit, string) result
  (** [feed d buf off len] appends a received chunk. [Error] is fatal
      for the connection: a declared frame length above [max_payload]. *)

  val feed_string : t -> string -> (unit, string) result

  val pop : t -> string option
  (** Next complete frame payload, FIFO; [None] until one is complete. *)

  val buffered : t -> int
  (** Bytes received but not yet returned — nonzero at EOF means the
      peer died mid-frame (truncated prefix or truncated payload). *)

  val error : t -> string option
  (** The fatal framing error, if one occurred ({!pop} returns [None]
      from then on; an oversized prefix revealed by a pop is only
      visible here). *)
end
