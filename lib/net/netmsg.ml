(* Typed daemon protocol messages over the strict wire codec. Each
   message kind is a first-class [Codec.kind], so kind confusion between
   protocol traffic and cryptographic objects (or between two protocol
   messages) dies on the envelope, and the decode-fuzzing harness covers
   these bodies like any other wire object. *)

type hello = {
  origin : string;
  granularity_us : int;
  current_epoch : int;
  server_g : Curve.point;
  server_sg : Curve.point;
}

type miss_reason = Unknown_label | Future_refused

type tick = { tick_label : string; sent_at_us : int }

type stats = {
  conns_accepted : int;
  conns_open : int;
  subscribers : int;
  updates_encoded : int;
  frames_sent : int;
  bytes_sent : int;
  archive_hits : int;
  archive_misses : int;
  protocol_errors : int;
  slow_disconnects : int;
  queue_bytes : int;
  queue_bytes_peak : int;
  send_syscalls : int;
  poll_wakeups : int;
  shard_conns : int list;
}

let max_shards_on_wire = 4096

(* --- hello --- *)

let hello_to_bytes prms (h : hello) =
  Codec.encode prms Codec.Net_hello (fun buf ->
      Codec.add_label buf h.origin;
      Codec.add_u64 buf h.granularity_us;
      Codec.add_u64 buf h.current_epoch;
      Codec.add_point prms buf h.server_g;
      Codec.add_point prms buf h.server_sg)

let hello_of_bytes prms s =
  Codec.decode prms Codec.Net_hello s (fun r ->
      let origin = Codec.read_label ~what:"origin" r in
      let granularity_us = Codec.read_u64 ~what:"granularity" r in
      if granularity_us = 0 then Codec.fail "granularity: zero";
      let current_epoch = Codec.read_u64 ~what:"current epoch" r in
      let server_g = Codec.read_g1 ~what:"server G" prms r in
      let server_sg = Codec.read_g1 ~what:"server sG" prms r in
      { origin; granularity_us; current_epoch; server_g; server_sg })

(* --- subscribe (empty body) --- *)

let subscribe_to_bytes prms = Codec.encode prms Codec.Net_subscribe (fun _ -> ())
let subscribe_of_bytes prms s = Codec.decode prms Codec.Net_subscribe s (fun _ -> ())

(* --- archive query / miss --- *)

let archive_query_to_bytes prms label =
  Codec.encode prms Codec.Net_archive_query (fun buf -> Codec.add_label buf label)

let archive_query_of_bytes prms s =
  Codec.decode prms Codec.Net_archive_query s (fun r -> Codec.read_label ~what:"label" r)

let miss_reason_tag = function Unknown_label -> 0 | Future_refused -> 1

let archive_miss_to_bytes prms label reason =
  Codec.encode prms Codec.Net_archive_miss (fun buf ->
      Codec.add_label buf label;
      Buffer.add_char buf (Char.chr (miss_reason_tag reason)))

let archive_miss_of_bytes prms s =
  Codec.decode prms Codec.Net_archive_miss s (fun r ->
      let label = Codec.read_label ~what:"label" r in
      match Codec.read_u8 ~what:"reason" r with
      | 0 -> (label, Unknown_label)
      | 1 -> (label, Future_refused)
      | n -> Codec.fail "reason: unknown tag %d" n)

(* --- tick preamble --- *)

let tick_to_bytes prms (t : tick) =
  Codec.encode prms Codec.Net_tick (fun buf ->
      Codec.add_label buf t.tick_label;
      Codec.add_u64 buf t.sent_at_us)

let tick_of_bytes prms s =
  Codec.decode prms Codec.Net_tick s (fun r ->
      let tick_label = Codec.read_label ~what:"label" r in
      let sent_at_us = Codec.read_u64 ~what:"send stamp" r in
      { tick_label; sent_at_us })

(* --- stats --- *)

let stats_query_to_bytes prms = Codec.encode prms Codec.Net_stats_query (fun _ -> ())

let stats_query_of_bytes prms s =
  Codec.decode prms Codec.Net_stats_query s (fun _ -> ())

let stats_to_bytes prms (s : stats) =
  Codec.encode prms Codec.Net_stats (fun buf ->
      List.iter (Codec.add_u64 buf)
        [
          s.conns_accepted; s.conns_open; s.subscribers; s.updates_encoded;
          s.frames_sent; s.bytes_sent; s.archive_hits; s.archive_misses;
          s.protocol_errors; s.slow_disconnects; s.queue_bytes; s.queue_bytes_peak;
          s.send_syscalls; s.poll_wakeups;
        ];
      Codec.add_u32 buf (List.length s.shard_conns);
      List.iter (Codec.add_u64 buf) s.shard_conns)

(* --- pairing delegation --- *)

type delegate_query = {
  query_id : int;
  pairs : (Curve.point * Curve.point) array;
}

type delegate_response = { response_id : int; values : Fp2.t array }

let max_delegate_pairs = 16

let delegate_query_to_bytes prms (q : delegate_query) =
  let n = Array.length q.pairs in
  if n < 1 || n > max_delegate_pairs then
    invalid_arg "Netmsg.delegate_query_to_bytes: pair count out of range";
  Codec.encode prms Codec.Delegate_query (fun buf ->
      Codec.add_u64 buf q.query_id;
      Codec.add_u32 buf n;
      Array.iter
        (fun (p, q) ->
          Codec.add_point prms buf p;
          Codec.add_point prms buf q)
        q.pairs)

let delegate_query_of_bytes prms s =
  Codec.decode prms Codec.Delegate_query s (fun r ->
      let query_id = Codec.read_u64 ~what:"query id" r in
      let n = Codec.read_u32 ~what:"pair count" ~max:max_delegate_pairs r in
      if n = 0 then Codec.fail "pair count: zero";
      let pairs =
        Array.init n (fun _ ->
            let p = Codec.read_g1 ~what:"query point" prms r in
            let q = Codec.read_g1 ~what:"query point" prms r in
            (p, q))
      in
      { query_id; pairs })

let delegate_response_to_bytes prms (resp : delegate_response) =
  let n = Array.length resp.values in
  if n < 1 || n > max_delegate_pairs then
    invalid_arg "Netmsg.delegate_response_to_bytes: value count out of range";
  Codec.encode prms Codec.Delegate_response (fun buf ->
      Codec.add_u64 buf resp.response_id;
      Codec.add_u32 buf n;
      Array.iter (Codec.add_gt prms buf) resp.values)

let delegate_response_of_bytes prms s =
  Codec.decode prms Codec.Delegate_response s (fun r ->
      let response_id = Codec.read_u64 ~what:"response id" r in
      let n = Codec.read_u32 ~what:"value count" ~max:max_delegate_pairs r in
      if n = 0 then Codec.fail "value count: zero";
      let values =
        Array.init n (fun _ -> Codec.read_gt ~what:"pairing value" prms r)
      in
      { response_id; values })

let stats_of_bytes prms s =
  Codec.decode prms Codec.Net_stats s (fun r ->
      let f what = Codec.read_u64 ~what r in
      let conns_accepted = f "conns accepted" in
      let conns_open = f "conns open" in
      let subscribers = f "subscribers" in
      let updates_encoded = f "updates encoded" in
      let frames_sent = f "frames sent" in
      let bytes_sent = f "bytes sent" in
      let archive_hits = f "archive hits" in
      let archive_misses = f "archive misses" in
      let protocol_errors = f "protocol errors" in
      let slow_disconnects = f "slow disconnects" in
      let queue_bytes = f "queue bytes" in
      let queue_bytes_peak = f "queue bytes peak" in
      let send_syscalls = f "send syscalls" in
      let poll_wakeups = f "poll wakeups" in
      let n_shards = Codec.read_u32 ~what:"shard count" ~max:max_shards_on_wire r in
      let shard_conns = List.init n_shards (fun _ -> f "shard conns") in
      {
        conns_accepted; conns_open; subscribers; updates_encoded; frames_sent;
        bytes_sent; archive_hits; archive_misses; protocol_errors;
        slow_disconnects; queue_bytes; queue_bytes_peak; send_syscalls;
        poll_wakeups; shard_conns;
      })
