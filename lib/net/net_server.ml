(* The networked passive time server.

   Architecture (DESIGN §2): one listener thread accepts on the Unix
   and/or TCP listening sockets and deals connections to the shard with
   the fewest open connections. Each shard owns its connections outright
   — reads, frame decoding, request dispatch and writes for a connection
   all happen on its shard, so there is no per-connection locking
   anywhere. Cross-shard traffic is two Treiber stacks per shard (new
   connections, broadcast frames), pushed with a CAS loop and drained
   with a single [Atomic.exchange] — the broadcast fan-out path takes no
   lock — plus a self-pipe byte to interrupt the shard's poller.

   Event backend ({!Poller}): each shard and the listener run on a
   pluggable poller — Linux epoll when available, portable select
   otherwise, overridable in the config. Readiness interest is
   registered once per descriptor and modified only on transitions
   (output queue empty <-> non-empty), never rebuilt per iteration, so a
   shard's steady-state cost is O(ready descriptors) per wake-up on
   epoll instead of select's O(all connections) scan and FD_SETSIZE
   ceiling.

   The hot loop is allocation-lean by construction: each update is
   issued and encoded exactly once per epoch ([frame_for_epoch], a
   mutex-guarded cache that every shard and the archive path share), and
   the resulting framed byte string is enqueued by reference on every
   subscriber — encode once, write N times. Read scratch and the
   self-pipe drain buffer are one reusable [Bytes] per shard (not per
   connection, not per call), and the send path snapshots a connection's
   bounded queue into a reusable per-shard iovec and drains it with one
   [writev] instead of one write per frame.

   Back-pressure: every connection has a bounded output queue (frame
   references). A subscriber that stops reading while broadcasts keep
   coming overflows its bound and is evicted — the server's memory
   ceiling is [max_queue_frames] references per connection regardless of
   how many slow readers attack it, and honest subscribers are never
   throttled by a slow one. *)

type config = {
  prms : Pairing.params;
  timeline : Timeline.t;
  unix_path : string option;
  tcp_port : int option;
  tcp_addr : string;
  udp_dest : (string * int) option;
  shards : int;
  max_queue_frames : int;
  max_payload : int;
  archive_cache_limit : int;
  backend : Poller.backend option;
  vectored : bool;
}

let default_config prms timeline =
  {
    prms;
    timeline;
    unix_path = None;
    tcp_port = None;
    tcp_addr = "127.0.0.1";
    udp_dest = None;
    shards = Pool.recommended ();
    max_queue_frames = 64;
    max_payload = Frame.default_max_payload;
    archive_cache_limit = 4096;
    backend = None;
    vectored = true;
  }

type conn = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  outq : string Queue.t;
  mutable out_off : int; (* bytes of the head frame already written *)
  mutable subscribed : bool;
  mutable alive : bool;
  mutable wreg : bool; (* write interest currently registered *)
}

type shard = {
  sid : int;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  poller : Poller.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  inbox_conns : Unix.file_descr list Atomic.t;
  inbox_bcast : string list Atomic.t; (* newest first; drain reverses *)
  nconns : int Atomic.t; (* owned + assigned-not-yet-adopted *)
  rbuf : Bytes.t; (* shared read scratch: one per shard, not per conn *)
  wakebuf : Bytes.t; (* self-pipe drain scratch *)
  iov : string array; (* writev snapshot of one bounded queue *)
}

type t = {
  cfg : config;
  secret : Tre.Server.secret;
  public : Tre.Server.public;
  frames : (int, string) Hashtbl.t; (* epoch -> framed Key_update bytes *)
  frames_lock : Mutex.t;
  last_epoch : int Atomic.t;
  shards : shard array;
  mutable listeners : Unix.file_descr list;
  mutable udp : (Unix.file_descr * Unix.sockaddr) option;
  stopping : bool Atomic.t;
  mutable shard_domains : unit Domain.t list;
  mutable listener_thread : Thread.t option;
  vectored : bool;
  (* stats *)
  st_accepted : int Atomic.t;
  st_open : int Atomic.t;
  st_subscribers : int Atomic.t;
  st_encoded : int Atomic.t;
  st_frames_sent : int Atomic.t;
  st_bytes_sent : int Atomic.t;
  st_archive_hits : int Atomic.t;
  st_archive_misses : int Atomic.t;
  st_proto_errors : int Atomic.t;
  st_slow_disconnects : int Atomic.t;
  st_queue_bytes : int Atomic.t;
  st_queue_peak : int Atomic.t;
  st_send_syscalls : int Atomic.t;
  st_poll_wakeups : int Atomic.t;
}

(* --- lock-free mailboxes --- *)

let push_atomic cell v =
  let rec go () =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (v :: old)) then go ()
  in
  go ()

let drain_atomic cell = List.rev (Atomic.exchange cell [])

let wake sh =
  (* A full pipe already guarantees a pending wake-up. *)
  try ignore (Unix.single_write_substring sh.wake_w "x" 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
  -> ()

let bump_peak t =
  let now = Atomic.get t.st_queue_bytes in
  let rec go () =
    let peak = Atomic.get t.st_queue_peak in
    if now > peak && not (Atomic.compare_and_set t.st_queue_peak peak now) then go ()
  in
  go ()

(* --- encode-once update frames --- *)

(* The single place an update is issued and serialized. Broadcast and
   archive lookups share the cache, so a tick followed by any number of
   archive pulls of the same epoch still encodes once. The cache is
   evicted wholesale past a bound — regeneration from [s] is cheap
   (paper footnote 4) and deterministic, so eviction is invisible to
   clients and the table cannot be ballooned by archive scans. *)
let frame_for_epoch t epoch =
  Mutex.protect t.frames_lock (fun () ->
      match Hashtbl.find_opt t.frames epoch with
      | Some f -> f
      | None ->
          let label = Timeline.label t.cfg.timeline epoch in
          let upd = Tre.issue_update t.cfg.prms t.secret label in
          let f = Frame.encode (Tre.update_to_bytes t.cfg.prms upd) in
          if Hashtbl.length t.frames >= t.cfg.archive_cache_limit then
            Hashtbl.reset t.frames;
          Hashtbl.replace t.frames epoch f;
          Atomic.incr t.st_encoded;
          f)

(* --- connection lifecycle (shard-local) --- *)

let queued_bytes c =
  Queue.fold (fun acc f -> acc + String.length f) (-c.out_off) c.outq

let close_conn t sh c =
  if c.alive then begin
    c.alive <- false;
    ignore (Atomic.fetch_and_add t.st_queue_bytes (-queued_bytes c));
    if c.subscribed then Atomic.decr t.st_subscribers;
    Atomic.decr t.st_open;
    Atomic.decr sh.nconns;
    Hashtbl.remove sh.conns c.fd;
    Poller.del sh.poller c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Write interest tracks the queue's empty <-> non-empty transitions:
   one [Poller.modify] per transition, zero per steady-state iteration.
   In the common case the opportunistic write after enqueue drains the
   queue entirely and no interest change ever reaches the kernel. *)
let sync_interest sh c =
  if c.alive then begin
    let want = not (Queue.is_empty c.outq) in
    if want <> c.wreg then begin
      c.wreg <- want;
      try Poller.modify sh.poller c.fd ~read:true ~write:want
      with Unix.Unix_error _ -> ()
    end
  end

let enqueue t sh c frame =
  if c.alive then begin
    if Queue.length c.outq >= t.cfg.max_queue_frames then begin
      (* Back-pressure bound hit: the reader is slower than the
         broadcast rate. Evict — the frame references it holds are
         shared, so the memory reclaimed is the queue itself. *)
      Atomic.incr t.st_slow_disconnects;
      close_conn t sh c
    end
    else begin
      Queue.push frame c.outq;
      Atomic.incr t.st_frames_sent;
      ignore (Atomic.fetch_and_add t.st_queue_bytes (String.length frame));
      bump_peak t
    end
  end

let proto_error t sh c =
  Atomic.incr t.st_proto_errors;
  close_conn t sh c

(* --- request dispatch --- *)

let stats t =
  {
    Netmsg.conns_accepted = Atomic.get t.st_accepted;
    conns_open = Atomic.get t.st_open;
    subscribers = Atomic.get t.st_subscribers;
    updates_encoded = Atomic.get t.st_encoded;
    frames_sent = Atomic.get t.st_frames_sent;
    bytes_sent = Atomic.get t.st_bytes_sent;
    archive_hits = Atomic.get t.st_archive_hits;
    archive_misses = Atomic.get t.st_archive_misses;
    protocol_errors = Atomic.get t.st_proto_errors;
    slow_disconnects = Atomic.get t.st_slow_disconnects;
    queue_bytes = Stdlib.max 0 (Atomic.get t.st_queue_bytes);
    queue_bytes_peak = Atomic.get t.st_queue_peak;
    send_syscalls = Atomic.get t.st_send_syscalls;
    poll_wakeups = Atomic.get t.st_poll_wakeups;
    shard_conns =
      Array.to_list (Array.map (fun sh -> Atomic.get sh.nconns) t.shards);
  }

let hello_frame t =
  Frame.encode
    (Netmsg.hello_to_bytes t.cfg.prms
       {
         Netmsg.origin = Timeline.origin t.cfg.timeline;
         granularity_us =
           int_of_float (Timeline.granularity t.cfg.timeline *. 1e6);
         current_epoch = Stdlib.max 0 (Atomic.get t.last_epoch);
         server_g = t.public.Tre.Server.g;
         server_sg = t.public.Tre.Server.sg;
       })

(* --- output path --- *)

(* Drain as much of [c]'s queue as the socket accepts. The vectored path
   snapshots up to |iov| frames into the shard's reusable array and
   submits them in one [writev] — a broadcast epoch (tick preamble +
   update) or a backlog of archive replies costs one syscall, not one
   per frame. The fallback is the portable one-write-per-frame loop.
   Both count [send_syscalls]. *)
let handle_write t sh c =
  if t.vectored then begin
    let progress = ref true in
    while c.alive && !progress && not (Queue.is_empty c.outq) do
      let cap = Array.length sh.iov in
      let n = ref 0 in
      let total = ref (-c.out_off) in
      (try
         Queue.iter
           (fun f ->
             if !n >= cap then raise Exit;
             sh.iov.(!n) <- f;
             incr n;
             total := !total + String.length f)
           c.outq
       with Exit -> ());
      match Poller.writev c.fd sh.iov ~first_off:c.out_off ~count:!n with
      | written ->
          Atomic.incr t.st_send_syscalls;
          ignore (Atomic.fetch_and_add t.st_bytes_sent written);
          ignore (Atomic.fetch_and_add t.st_queue_bytes (-written));
          let rem = ref written in
          while !rem > 0 do
            let head = Queue.peek c.outq in
            let left = String.length head - c.out_off in
            if !rem >= left then begin
              ignore (Queue.pop c.outq);
              c.out_off <- 0;
              rem := !rem - left
            end
            else begin
              c.out_off <- c.out_off + !rem;
              rem := 0
            end
          done;
          if written < !total then progress := false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          Atomic.incr t.st_send_syscalls;
          progress := false
      | exception Unix.Unix_error (_, _, _) -> close_conn t sh c
    done;
    (* Drop the snapshot's frame references so the shared strings don't
       outlive their queues through the scratch array. *)
    Array.fill sh.iov 0 (Array.length sh.iov) ""
  end
  else begin
    let progress = ref true in
    while c.alive && !progress && not (Queue.is_empty c.outq) do
      let head = Queue.peek c.outq in
      let len = String.length head - c.out_off in
      match Unix.single_write_substring c.fd head c.out_off len with
      | written ->
          Atomic.incr t.st_send_syscalls;
          ignore (Atomic.fetch_and_add t.st_bytes_sent written);
          ignore (Atomic.fetch_and_add t.st_queue_bytes (-written));
          if written = len then begin
            ignore (Queue.pop c.outq);
            c.out_off <- 0
          end
          else begin
            c.out_off <- c.out_off + written;
            progress := false
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          Atomic.incr t.st_send_syscalls;
          progress := false
      | exception Unix.Unix_error (_, _, _) -> close_conn t sh c
    done
  end

(* Enqueue-and-flush: try the socket immediately instead of waiting a
   poller round trip. On an undersaturated socket this writes the reply
   in the dispatching iteration and write interest never changes. *)
let flush t sh c =
  if c.alive then begin
    handle_write t sh c;
    sync_interest sh c
  end

let handle_archive t sh c label =
  match Timeline.epoch_of_label t.cfg.timeline label with
  | None ->
      Atomic.incr t.st_archive_misses;
      enqueue t sh c
        (Frame.encode (Netmsg.archive_miss_to_bytes t.cfg.prms label Netmsg.Unknown_label))
  | Some e ->
      if e > Atomic.get t.last_epoch then begin
        (* §3: a correct server never releases an update early. *)
        Atomic.incr t.st_archive_misses;
        enqueue t sh c
          (Frame.encode
             (Netmsg.archive_miss_to_bytes t.cfg.prms label Netmsg.Future_refused))
      end
      else begin
        Atomic.incr t.st_archive_hits;
        enqueue t sh c (frame_for_epoch t e)
      end

let dispatch t sh c payload =
  match Codec.peek_kind payload with
  | Error _ -> proto_error t sh c
  | Ok Codec.Net_subscribe -> (
      match Netmsg.subscribe_of_bytes t.cfg.prms payload with
      | Ok () ->
          if not c.subscribed then begin
            c.subscribed <- true;
            Atomic.incr t.st_subscribers
          end;
          enqueue t sh c (hello_frame t)
      | Error _ -> proto_error t sh c)
  | Ok Codec.Net_archive_query -> (
      match Netmsg.archive_query_of_bytes t.cfg.prms payload with
      | Ok label -> handle_archive t sh c label
      | Error _ -> proto_error t sh c)
  | Ok Codec.Net_stats_query -> (
      match Netmsg.stats_query_of_bytes t.cfg.prms payload with
      | Ok () -> enqueue t sh c (Frame.encode (Netmsg.stats_to_bytes t.cfg.prms (stats t)))
      | Error _ -> proto_error t sh c)
  | Ok _ ->
      (* Kind confusion: clients have no business sending key updates,
         ciphertexts or server responses at the daemon. *)
      proto_error t sh c

(* --- shard event loop --- *)

let handle_read t sh c =
  match Unix.read c.fd sh.rbuf 0 (Bytes.length sh.rbuf) with
  | 0 ->
      (* EOF mid-frame is a truncated transmission — count it like any
         other framing violation; a clean EOF is just a hangup. *)
      if Frame.Decoder.buffered c.dec > 0 then proto_error t sh c
      else close_conn t sh c
  | n -> (
      match Frame.Decoder.feed c.dec sh.rbuf 0 n with
      | Error _ -> proto_error t sh c
      | Ok () ->
          let rec drain () =
            if c.alive then
              match Frame.Decoder.pop c.dec with
              | Some payload ->
                  dispatch t sh c payload;
                  drain ()
              | None -> if Frame.Decoder.error c.dec <> None then proto_error t sh c
          in
          drain ();
          flush t sh c)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t sh c

let adopt t sh fd =
  let c =
    {
      fd;
      dec = Frame.Decoder.create ~max_payload:t.cfg.max_payload ();
      outq = Queue.create ();
      out_off = 0;
      subscribed = false;
      alive = true;
      wreg = false;
    }
  in
  match Poller.add sh.poller fd ~read:true ~write:false with
  | () -> Hashtbl.replace sh.conns fd c
  | exception Unix.Unix_error (_, _, _) ->
      (* Registration failed (fd limit, raced close): drop the socket. *)
      Atomic.decr t.st_open;
      Atomic.decr sh.nconns;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let drain_wake sh =
  let rec go () =
    match Unix.read sh.wake_r sh.wakebuf 0 (Bytes.length sh.wakebuf) with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let shard_loop t sh =
  let on_event fd ~readable ~writable =
    if fd = sh.wake_r then begin
      if readable then drain_wake sh
    end
    else begin
      (match Hashtbl.find_opt sh.conns fd with
      | Some c when c.alive && readable -> handle_read t sh c
      | _ -> ());
      match Hashtbl.find_opt sh.conns fd with
      | Some c when c.alive && writable ->
          handle_write t sh c;
          sync_interest sh c
      | _ -> ()
    end
  in
  while not (Atomic.get t.stopping) do
    List.iter (adopt t sh) (drain_atomic sh.inbox_conns);
    (match drain_atomic sh.inbox_bcast with
    | [] -> ()
    | frames ->
        (* Snapshot first: enqueue may evict (mutating the table). *)
        let cs = Hashtbl.fold (fun _ c acc -> c :: acc) sh.conns [] in
        List.iter
          (fun c ->
            if c.subscribed then begin
              List.iter (enqueue t sh c) frames;
              (* One flush for the whole epoch: tick preamble + update
                 leave in a single writev. *)
              flush t sh c
            end)
          cs);
    match Poller.wait sh.poller ~timeout_ms:200 on_event with
    | 0 -> ()
    | _ -> Atomic.incr t.st_poll_wakeups
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) sh.conns;
  Hashtbl.reset sh.conns;
  Poller.close sh.poller

(* --- listener --- *)

(* Least-open-connections shard pick. [nconns] is bumped here, at
   assignment — not at adoption — so a connection burst spreads by the
   counts it is itself creating, and decremented when the shard closes
   the connection. Ties break toward the lowest shard id. *)
let assign t fd =
  let best = ref t.shards.(0) in
  let bestn = ref (Atomic.get t.shards.(0).nconns) in
  Array.iter
    (fun sh ->
      let n = Atomic.get sh.nconns in
      if n < !bestn then begin
        best := sh;
        bestn := n
      end)
    t.shards;
  let sh = !best in
  Atomic.incr sh.nconns;
  push_atomic sh.inbox_conns fd;
  wake sh

let listener_loop t poller =
  List.iter (fun fd -> Poller.add poller fd ~read:true ~write:false) t.listeners;
  let on_event lfd ~readable ~writable:_ =
    if readable then begin
      let continue = ref true in
      while !continue do
        match Unix.accept ~cloexec:true lfd with
        | fd, _ ->
            Unix.set_nonblock fd;
            Atomic.incr t.st_accepted;
            Atomic.incr t.st_open;
            assign t fd
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            continue := false
        | exception Unix.Unix_error (_, _, _) -> continue := false
      done
    end
  in
  while not (Atomic.get t.stopping) do
    match Poller.wait poller ~timeout_ms:200 on_event with
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
  done;
  Poller.close poller

(* --- construction / control --- *)

let make_shard cfg sid =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let poller = Poller.create ?backend:cfg.backend () in
  Poller.add poller wake_r ~read:true ~write:false;
  {
    sid;
    conns = Hashtbl.create 64;
    poller;
    wake_r;
    wake_w;
    inbox_conns = Atomic.make [];
    inbox_bcast = Atomic.make [];
    nconns = Atomic.make 0;
    rbuf = Bytes.create 65536;
    wakebuf = Bytes.create 64;
    iov = Array.make (Stdlib.max 1 (Stdlib.min cfg.max_queue_frames 64)) "";
  }

let create ?secret (cfg : config) rng =
  if cfg.shards < 1 then invalid_arg "Net_server.create: shards must be >= 1";
  let secret, public =
    match secret with
    | Some s -> (s, Tre.Server.public_of_secret cfg.prms s)
    | None -> Tre.Server.keygen cfg.prms rng
  in
  {
    cfg;
    secret;
    public;
    frames = Hashtbl.create 64;
    frames_lock = Mutex.create ();
    last_epoch = Atomic.make 0;
    shards = Array.init cfg.shards (make_shard cfg);
    listeners = [];
    udp = None;
    stopping = Atomic.make false;
    shard_domains = [];
    listener_thread = None;
    vectored = cfg.vectored && Poller.writev_available;
    st_accepted = Atomic.make 0;
    st_open = Atomic.make 0;
    st_subscribers = Atomic.make 0;
    st_encoded = Atomic.make 0;
    st_frames_sent = Atomic.make 0;
    st_bytes_sent = Atomic.make 0;
    st_archive_hits = Atomic.make 0;
    st_archive_misses = Atomic.make 0;
    st_proto_errors = Atomic.make 0;
    st_slow_disconnects = Atomic.make 0;
    st_queue_bytes = Atomic.make 0;
    st_queue_peak = Atomic.make 0;
    st_send_syscalls = Atomic.make 0;
    st_poll_wakeups = Atomic.make 0;
  }

let public t = t.public
let current_epoch t = Atomic.get t.last_epoch
let backend t = Poller.backend t.shards.(0).poller
let backend_name t = Poller.backend_name (backend t)
let vectored t = t.vectored

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 512;
  Unix.set_nonblock fd;
  fd

let listen_tcp addr port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
  Unix.listen fd 512;
  Unix.set_nonblock fd;
  fd

let start t =
  let ls = ref [] in
  (match t.cfg.unix_path with Some p -> ls := listen_unix p :: !ls | None -> ());
  (match t.cfg.tcp_port with
  | Some port -> ls := listen_tcp t.cfg.tcp_addr port :: !ls
  | None -> ());
  if !ls = [] then invalid_arg "Net_server.start: no transport configured";
  t.listeners <- !ls;
  (match t.cfg.udp_dest with
  | Some (addr, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_DGRAM 0 in
      Unix.setsockopt fd Unix.SO_BROADCAST true;
      t.udp <- Some (fd, Unix.ADDR_INET (Unix.inet_addr_of_string addr, port))
  | None -> ());
  t.shard_domains <-
    Array.to_list
      (Array.map (fun sh -> Domain.spawn (fun () -> shard_loop t sh)) t.shards);
  let lp = Poller.create ?backend:t.cfg.backend () in
  t.listener_thread <- Some (Thread.create (listener_loop t) lp)

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* The per-epoch broadcast: encode once, fan the same frame out to every
   shard (lock-free push + wake). The tick preamble carries the server's
   send stamp so the load harness can measure client-observed latency
   without trusting anything but the shared host clock. *)
let tick t epoch =
  let label = Timeline.label t.cfg.timeline epoch in
  let upd_frame = frame_for_epoch t epoch in
  let rec raise_epoch () =
    let cur = Atomic.get t.last_epoch in
    if epoch > cur && not (Atomic.compare_and_set t.last_epoch cur epoch) then
      raise_epoch ()
  in
  raise_epoch ();
  let tick_frame =
    Frame.encode
      (Netmsg.tick_to_bytes t.cfg.prms
         { Netmsg.tick_label = label; sent_at_us = now_us () })
  in
  Array.iter
    (fun sh ->
      push_atomic sh.inbox_bcast tick_frame;
      push_atomic sh.inbox_bcast upd_frame;
      wake sh)
    t.shards;
  match t.udp with
  | Some (fd, dest) ->
      let datagram = tick_frame ^ upd_frame in
      (try
         ignore
           (Unix.sendto_substring fd datagram 0 (String.length datagram) [] dest)
       with Unix.Unix_error _ -> ())
  | None -> ()

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    Array.iter wake t.shards;
    List.iter Domain.join t.shard_domains;
    t.shard_domains <- [];
    (match t.listener_thread with Some th -> Thread.join th | None -> ());
    t.listener_thread <- None;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
    t.listeners <- [];
    (match t.udp with
    | Some (fd, _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    t.udp <- None;
    Array.iter
      (fun sh ->
        (try Unix.close sh.wake_r with Unix.Unix_error _ -> ());
        try Unix.close sh.wake_w with Unix.Unix_error _ -> ())
      t.shards;
    match t.cfg.unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ()
  end
