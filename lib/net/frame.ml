let default_max_payload = 1 lsl 20

let encode payload =
  let n = String.length payload in
  if n > default_max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let add buf payload = Buffer.add_string buf (encode payload)

module Decoder = struct
  (* One flat accumulation buffer with a consume cursor; compacted when
     the consumed prefix dominates, so steady-state memory is bounded by
     one maximal frame plus one read chunk regardless of how long the
     connection lives. *)
  type t = {
    mutable buf : Bytes.t;
    mutable start : int; (* first unconsumed byte *)
    mutable len : int; (* bytes buffered from [start] *)
    max_payload : int;
    mutable failed : string option;
  }

  let create ?(max_payload = default_max_payload) () =
    { buf = Bytes.create 4096; start = 0; len = 0; max_payload; failed = None }

  let compact t =
    if t.start > 0 then begin
      Bytes.blit t.buf t.start t.buf 0 t.len;
      t.start <- 0
    end

  let ensure t extra =
    compact t;
    let need = t.len + extra in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  (* Declared length of the pending frame, if the 4-byte prefix is in. *)
  let pending_length t =
    if t.len < 4 then None
    else begin
      let b i = Char.code (Bytes.get t.buf (t.start + i)) in
      Some ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3)
    end

  let oversize t n =
    let msg =
      Printf.sprintf "framing: declared frame length %d exceeds the %d limit" n
        t.max_payload
    in
    t.failed <- Some msg;
    msg

  let feed t buf off len =
    match t.failed with
    | Some msg -> Error msg
    | None ->
        ensure t len;
        Bytes.blit buf off t.buf t.len len;
        t.len <- t.len + len;
        (* Reject an oversized declaration as soon as the prefix is
           visible — before buffering any of the claimed payload. *)
        (match pending_length t with
        | Some n when n > t.max_payload -> Error (oversize t n)
        | _ -> Ok ())

  let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

  let pop t =
    if t.failed <> None then None
    else
      match pending_length t with
      | Some n when t.len >= 4 + n ->
          let payload = Bytes.sub_string t.buf (t.start + 4) n in
          t.start <- t.start + 4 + n;
          t.len <- t.len - 4 - n;
          if t.len = 0 then t.start <- 0;
          (* A following oversized prefix becomes visible only now. *)
          (match pending_length t with
          | Some m when m > t.max_payload -> ignore (oversize t m)
          | _ -> ());
          Some payload
      | _ -> None

  let buffered t = t.len
  let error t = t.failed
end
