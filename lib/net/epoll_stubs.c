/* C stubs for the Poller epoll backend, vectored writes, and the
   fd-limit helper the load harness needs to open 10^4 real sockets.

   epoll is Linux-only and guarded at compile time; Poller detects it at
   runtime via tre_epoll_available and falls back to select elsewhere.
   writev is plain POSIX, so vectored sends work on either backend. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#ifndef _WIN32
#include <unistd.h>
#include <limits.h>
#include <sys/uio.h>
#include <sys/resource.h>
#endif

/* Events bitmask shared with poller.ml: bit 0 = read, bit 1 = write. */
#define TRE_POLL_IN 1
#define TRE_POLL_OUT 2

/* Ops shared with poller.ml: 0 = add, 1 = mod, 2 = del. */

CAMLprim value tre_epoll_available(value unit)
{
  (void)unit;
#ifdef __linux__
  return Val_true;
#else
  return Val_false;
#endif
}

#ifdef __linux__

CAMLprim value tre_epoll_create(value unit)
{
  (void)unit;
  int fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) uerror("epoll_create1", Nothing);
  return Val_int(fd);
}

CAMLprim value tre_epoll_ctl(value vepfd, value vop, value vfd, value vevents)
{
  struct epoll_event ev;
  int op;
  memset(&ev, 0, sizeof(ev));
  ev.data.fd = Int_val(vfd);
  if (Int_val(vevents) & TRE_POLL_IN) ev.events |= EPOLLIN;
  if (Int_val(vevents) & TRE_POLL_OUT) ev.events |= EPOLLOUT;
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vepfd), op, Int_val(vfd), &ev) == -1)
    uerror("epoll_ctl", Nothing);
  return Val_unit;
}

#define TRE_EPOLL_MAXEVENTS 1024

/* Fill [vfds]/[vrevents] (int arrays of equal length) with the ready
   descriptors and their event masks; returns the count. The wait itself
   runs with the runtime released so other domains keep executing. */
CAMLprim value tre_epoll_wait(value vepfd, value vfds, value vrevents,
                              value vtimeout_ms)
{
  CAMLparam4(vepfd, vfds, vrevents, vtimeout_ms);
  struct epoll_event evs[TRE_EPOLL_MAXEVENTS];
  int cap = Wosize_val(vfds);
  int epfd = Int_val(vepfd);
  int timeout = Int_val(vtimeout_ms);
  int n, i;
  if (cap > TRE_EPOLL_MAXEVENTS) cap = TRE_EPOLL_MAXEVENTS;
  if (cap > (int)Wosize_val(vrevents)) cap = Wosize_val(vrevents);
  caml_release_runtime_system();
  n = epoll_wait(epfd, evs, cap, timeout);
  caml_acquire_runtime_system();
  if (n == -1) {
    if (errno == EINTR) CAMLreturn(Val_int(0));
    uerror("epoll_wait", Nothing);
  }
  for (i = 0; i < n; i++) {
    int m = 0;
    /* Error/hangup surfaces as readability: the next read reports the
       condition and the owner closes the connection. */
    if (evs[i].events & (EPOLLIN | EPOLLPRI | EPOLLHUP | EPOLLRDHUP | EPOLLERR))
      m |= TRE_POLL_IN;
    if (evs[i].events & (EPOLLOUT | EPOLLERR)) m |= TRE_POLL_OUT;
    Field(vfds, i) = Val_long(evs[i].data.fd);
    Field(vrevents, i) = Val_long(m);
  }
  CAMLreturn(Val_int(n));
}

#else /* !__linux__ */

CAMLprim value tre_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("epoll: unavailable on this platform");
}

CAMLprim value tre_epoll_ctl(value a, value b, value c, value d)
{
  (void)a; (void)b; (void)c; (void)d;
  caml_failwith("epoll: unavailable on this platform");
}

CAMLprim value tre_epoll_wait(value a, value b, value c, value d)
{
  (void)a; (void)b; (void)c; (void)d;
  caml_failwith("epoll: unavailable on this platform");
}

#endif /* __linux__ */

#ifndef _WIN32

#ifndef IOV_MAX
#define IOV_MAX 1024
#endif
#define TRE_IOV_CAP 64

/* writev over [count] strings, the first starting at [first_off]: one
   syscall drains a whole bounded output queue. The runtime is NOT
   released — the iovec bases point into the OCaml heap, and a
   nonblocking socket returns without sleeping anyway. */
CAMLprim value tre_writev(value vfd, value vstrs, value vfirst_off,
                          value vcount)
{
  struct iovec iov[TRE_IOV_CAP];
  int count = Int_val(vcount);
  int cap = TRE_IOV_CAP < IOV_MAX ? TRE_IOV_CAP : IOV_MAX;
  ssize_t r;
  int i;
  if (count < 0) count = 0;
  if (count > (int)Wosize_val(vstrs)) count = Wosize_val(vstrs);
  if (count > cap) count = cap;
  for (i = 0; i < count; i++) {
    value s = Field(vstrs, i);
    iov[i].iov_base = (void *)Bytes_val(s);
    iov[i].iov_len = caml_string_length(s);
  }
  if (count > 0) {
    size_t off = Long_val(vfirst_off);
    if (off > iov[0].iov_len) off = iov[0].iov_len;
    iov[0].iov_base = (char *)iov[0].iov_base + off;
    iov[0].iov_len -= off;
  }
  r = writev(Int_val(vfd), iov, count);
  if (r == -1) uerror("writev", Nothing);
  return Val_long(r);
}

CAMLprim value tre_writev_available(value unit)
{
  (void)unit;
  return Val_true;
}

/* Raise the soft RLIMIT_NOFILE toward [requested] (capped at the hard
   limit); returns the soft limit in effect afterwards. */
CAMLprim value tre_raise_nofile(value vrequested)
{
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(vrequested);
  if (getrlimit(RLIMIT_NOFILE, &rl) == -1) uerror("getrlimit", Nothing);
  if (rl.rlim_cur < want) {
    rlim_t target = want;
    if (rl.rlim_max != RLIM_INFINITY && target > rl.rlim_max)
      target = rl.rlim_max;
    if (target > rl.rlim_cur) {
      rl.rlim_cur = target;
      if (setrlimit(RLIMIT_NOFILE, &rl) == -1) uerror("setrlimit", Nothing);
    }
  }
  if (getrlimit(RLIMIT_NOFILE, &rl) == -1) uerror("getrlimit", Nothing);
  return Val_long(rl.rlim_cur > (rlim_t)Max_long ? Max_long : (long)rl.rlim_cur);
}

#else /* _WIN32 */

CAMLprim value tre_writev(value a, value b, value c, value d)
{
  (void)a; (void)b; (void)c; (void)d;
  caml_failwith("writev: unavailable on this platform");
}

CAMLprim value tre_writev_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value tre_raise_nofile(value vrequested)
{
  return vrequested;
}

#endif /* !_WIN32 */
