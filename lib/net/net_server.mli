(** The passive time server as a real socket daemon.

    Speaks the v1 wire codec over Unix-domain and/or TCP stream sockets
    (length-prefixed frames, {!Frame}) plus optional UDP datagrams for
    the tick fan-out. Request handling is sharded across domains; the
    broadcast path is lock-free (per-shard Treiber stacks + a self-pipe
    wake) and {e encode-once}: each epoch's update is issued and
    serialized exactly once, and the same framed byte string is enqueued
    by reference on every subscriber and served for every archive pull
    of that epoch.

    Every shard (and the listener) runs on a pluggable {!Poller} —
    Linux epoll when available, portable select otherwise. Readiness
    interest is registered once per connection and modified only when
    its output queue transitions between empty and non-empty, and the
    send path drains a queue with one vectored [writev] instead of one
    write per frame; [send_syscalls] and [poll_wakeups] in the stats
    make the per-epoch syscall budget observable.

    Protocol (all messages {!Netmsg}; updates are plain
    {!Codec.Key_update} objects):
    - [Net_subscribe] → [Net_hello], then every subsequent broadcast
      ([Net_tick] preamble + the update frame);
    - [Net_archive_query label] → the update frame, or
      [Net_archive_miss] (foreign label, or §3 future-epoch refusal);
    - [Net_stats_query] → [Net_stats] operational counters.

    Any other kind, any codec violation, any framing violation (bad
    prefix, oversized declared length, truncated stream) disconnects the
    peer and counts a protocol error — adversarial bytes never allocate
    more than one bounded frame buffer.

    Back-pressure: per-connection output queues are bounded at
    [max_queue_frames] {e references} to shared frames; a reader slower
    than the broadcast rate is evicted (counted in
    [slow_disconnects]), so server memory has a constant ceiling
    independent of subscriber behaviour. *)

type config = {
  prms : Pairing.params;
  timeline : Timeline.t;
  unix_path : string option;  (** Unix-domain listening socket path *)
  tcp_port : int option;
  tcp_addr : string;  (** bind address, default ["127.0.0.1"] *)
  udp_dest : (string * int) option;
      (** optional UDP fan-out destination (e.g. a broadcast address) *)
  shards : int;  (** accept/decode/respond domains *)
  max_queue_frames : int;  (** per-connection back-pressure bound *)
  max_payload : int;  (** framing limit fed to {!Frame.Decoder} *)
  archive_cache_limit : int;
      (** encoded-frame cache bound; eviction is invisible (footnote 4:
          any past update regenerates deterministically from [s]) *)
  backend : Poller.backend option;
      (** event backend for every shard and the listener; [None] (the
          default) picks epoll when available, select otherwise *)
  vectored : bool;
      (** drain output queues with [writev] (default [true]); [false]
          falls back to one write per frame — the PR 6 baseline, kept
          so the syscall win stays measurable *)
}

val default_config : Pairing.params -> Timeline.t -> config
(** No transports configured — set at least one of [unix_path] /
    [tcp_port]. [shards] defaults to {!Pool.recommended}. *)

type t

val create : ?secret:Tre.Server.secret -> config -> Hashing.Drbg.t -> t
(** Key material from the DRBG unless [secret] is supplied. *)

val start : t -> unit
(** Bind the transports, spawn the shard domains and listener thread.
    Raises [Invalid_argument] if no transport is configured. *)

val tick : t -> int -> unit
(** Broadcast epoch [n]'s update to every subscriber (and the UDP
    destination): a [Net_tick] preamble stamped with the send time, then
    the update frame — encoded exactly once however many subscribers
    are connected. Also raises the daemon's current-epoch watermark,
    which gates the archive's future-refusal check. Callable from any
    thread. *)

val current_epoch : t -> int
val public : t -> Tre.Server.public
val stats : t -> Netmsg.stats

val backend : t -> Poller.backend
(** The event backend the shards actually run on (after auto-detect). *)

val backend_name : t -> string

val vectored : t -> bool
(** Whether the send path uses [writev] (config flag ∧ platform). *)

val stop : t -> unit
(** Stop accepting, close every connection, join the shard domains and
    listener thread, unlink the Unix socket path. Idempotent. *)
