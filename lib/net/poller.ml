(* Pluggable readiness poller: portable select, Linux epoll via stubs.

   The interface is interest-transition oriented — add/modify/del are
   called when a connection's desired readiness actually changes, never
   per loop iteration. The select backend therefore keeps its fd lists
   cached and rebuilds them only when dirtied; the epoll backend maps
   transitions 1:1 onto epoll_ctl and its wait is O(ready). *)

type backend = Select | Epoll

external epoll_available_stub : unit -> bool = "tre_epoll_available"
external epoll_create : unit -> Unix.file_descr = "tre_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "tre_epoll_ctl"

external epoll_wait_stub :
  Unix.file_descr -> int array -> int array -> int -> int = "tre_epoll_wait"

external writev_stub : Unix.file_descr -> string array -> int -> int -> int
  = "tre_writev"

external writev_available_stub : unit -> bool = "tre_writev_available"
external raise_nofile : int -> int = "tre_raise_nofile"
external fd_int : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"

let epoll_available = epoll_available_stub

let backend_of_string = function
  | "auto" -> Ok None
  | "select" -> Ok (Some Select)
  | "epoll" -> Ok (Some Epoll)
  | s -> Error (Printf.sprintf "unknown backend %S (auto|select|epoll)" s)

let backend_name = function Select -> "select" | Epoll -> "epoll"

(* Events bitmask and ctl ops shared with epoll_stubs.c. *)
let ev_in = 1
let ev_out = 2
let op_add = 0
let op_mod = 1
let op_del = 2

type select_state = {
  interest : (Unix.file_descr, int) Hashtbl.t;
  mutable dirty : bool;
  mutable rlist : Unix.file_descr list;
  mutable wlist : Unix.file_descr list;
}

type epoll_state = {
  epfd : Unix.file_descr;
  mutable registered : int;
  (* preallocated event buffers: wait never allocates *)
  evt_fds : int array;
  evt_masks : int array;
}

type state = S of select_state | E of epoll_state

type t = state

let mask ~read ~write = (if read then ev_in else 0) lor (if write then ev_out else 0)

let create ?backend () =
  let b =
    match backend with
    | Some Epoll ->
        if not (epoll_available ()) then
          failwith "Poller.create: epoll backend unavailable on this platform";
        Epoll
    | Some Select -> Select
    | None -> if epoll_available () then Epoll else Select
  in
  match b with
  | Select ->
      S { interest = Hashtbl.create 64; dirty = false; rlist = []; wlist = [] }
  | Epoll ->
      E
        {
          epfd = epoll_create ();
          registered = 0;
          evt_fds = Array.make 1024 0;
          evt_masks = Array.make 1024 0;
        }

let backend = function S _ -> Select | E _ -> Epoll
let fd_count = function S s -> Hashtbl.length s.interest | E e -> e.registered

let add t fd ~read ~write =
  let m = mask ~read ~write in
  match t with
  | S s ->
      Hashtbl.replace s.interest fd m;
      s.dirty <- true
  | E e ->
      epoll_ctl e.epfd op_add fd m;
      e.registered <- e.registered + 1

let modify t fd ~read ~write =
  let m = mask ~read ~write in
  match t with
  | S s ->
      Hashtbl.replace s.interest fd m;
      s.dirty <- true
  | E e -> epoll_ctl e.epfd op_mod fd m

let del t fd =
  match t with
  | S s ->
      if Hashtbl.mem s.interest fd then begin
        Hashtbl.remove s.interest fd;
        s.dirty <- true
      end
  | E e -> (
      try
        epoll_ctl e.epfd op_del fd 0;
        e.registered <- e.registered - 1
      with Unix.Unix_error ((Unix.ENOENT | Unix.EBADF), _, _) -> ())

let rebuild s =
  let r = ref [] and w = ref [] in
  Hashtbl.iter
    (fun fd m ->
      if m land ev_in <> 0 then r := fd :: !r;
      if m land ev_out <> 0 then w := fd :: !w)
    s.interest;
  s.rlist <- !r;
  s.wlist <- !w;
  s.dirty <- false

let wait t ~timeout_ms f =
  match t with
  | S s -> (
      if s.dirty then rebuild s;
      let timeout = float_of_int timeout_ms /. 1000.0 in
      match Unix.select s.rlist s.wlist [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* A descriptor closed behind our back; the owner will [del]
             it — force a rebuild so the stale entry stops hurting. *)
          s.dirty <- true;
          0
      | readable, writable, _ ->
          let n = ref 0 in
          List.iter
            (fun fd ->
              (* Interest may have been dropped by an earlier callback
                 in this batch (e.g. the connection was closed). *)
              if Hashtbl.mem s.interest fd then begin
                incr n;
                f fd ~readable:true ~writable:false
              end)
            readable;
          List.iter
            (fun fd ->
              if Hashtbl.mem s.interest fd then begin
                incr n;
                f fd ~readable:false ~writable:true
              end)
            writable;
          !n)
  | E e ->
      let n = epoll_wait_stub e.epfd e.evt_fds e.evt_masks timeout_ms in
      for i = 0 to n - 1 do
        let fd = fd_of_int e.evt_fds.(i) in
        let m = e.evt_masks.(i) in
        f fd ~readable:(m land ev_in <> 0) ~writable:(m land ev_out <> 0)
      done;
      n

let close = function
  | S s ->
      Hashtbl.reset s.interest;
      s.rlist <- [];
      s.wlist <- []
  | E e -> ( try Unix.close e.epfd with Unix.Unix_error _ -> ())

let writev_available = writev_available_stub ()
let writev fd strs ~first_off ~count = writev_stub fd strs first_off count
let raise_fd_limit n = raise_nofile n
let _ = fd_int
