(** Mapping between simulated wall-clock time and the discrete release-time
    labels the server signs.

    The paper's T is an arbitrary string naming an absolute instant "down
    to whatever granularity is needed" (§3); a timeline fixes the
    granularity and renders epoch indices as canonical labels. *)

type t

val create : ?origin:string -> granularity:float -> unit -> t
(** [granularity] is seconds of simulated time per epoch, > 0. *)

val granularity : t -> float
val origin : t -> string
(** The label prefix chosen at creation (default ["utc"]). *)

val epoch_at : t -> float -> int
(** Epoch index containing the given instant (floor). *)

val label : t -> int -> Tre.time
(** Canonical label of an epoch, e.g. ["utc#42"]. Injective. *)

val epoch_of_label : t -> Tre.time -> int option
(** Inverse of {!label}; [None] for foreign labels. *)

val start_of : t -> int -> float
(** Simulated instant at which an epoch begins (= its release time). *)
