exception Future_update_refused

type t = {
  prms : Pairing.params;
  name : string;
  timeline : Timeline.t;
  secret : Tre.Server.secret;
  public : Tre.Server.public;
  issued : (Tre.time, Tre.update) Hashtbl.t;
  encoded : (Tre.time, string) Hashtbl.t; (* label -> wire bytes, built once *)
  max_skew : float;
  skew_rng : Hashing.Drbg.t;
  mutable updates_issued : int;
  mutable updates_encoded : int;
  mutable bytes_broadcast : int;
}

let create ?(max_skew = 0.0) prms ~net ~timeline ~name =
  if max_skew < 0.0 then invalid_arg "Passive_server.create: negative skew";
  let secret, public = Tre.Server.keygen prms (Simnet.rng net) in
  {
    prms;
    name;
    timeline;
    secret;
    public;
    issued = Hashtbl.create 64;
    encoded = Hashtbl.create 64;
    max_skew;
    skew_rng = Hashing.Drbg.create ~seed:(name ^ "-clock-skew") ();
    updates_issued = 0;
    updates_encoded = 0;
    bytes_broadcast = 0;
  }

(* The section-3 trust model: the server's clock is consistent within a
   bound, so each broadcast may fire up to [max_skew] late (never early:
   a correct server must not release an update before its time). *)
let skew t =
  if t.max_skew = 0.0 then 0.0
  else begin
    let raw = Hashing.Drbg.generate t.skew_rng 4 in
    let v =
      (Char.code raw.[0] lsl 24) lor (Char.code raw.[1] lsl 16)
      lor (Char.code raw.[2] lsl 8) lor Char.code raw.[3]
    in
    t.max_skew *. float_of_int v /. 4294967296.0
  end

let name t = t.name
let max_skew t = t.max_skew
let public t = t.public
let timeline t = t.timeline
let secret t = t.secret

let issue t epoch =
  let label = Timeline.label t.timeline epoch in
  match Hashtbl.find_opt t.issued label with
  | Some upd -> upd
  | None ->
      (* No fixed-base precomputation applies here: the scalar s is fixed
         but the base H1(T) is fresh per epoch, so the wNAF path inside
         Curve.mul is already the best available. *)
      let upd = Tre.issue_update t.prms t.secret label in
      Hashtbl.replace t.issued label upd;
      upd

(* Encode-once: the wire bytes of an epoch's update are built exactly
   once — the broadcast hands the {e same} string to every recipient
   (via [Simnet.broadcast_bytes]) and the archive serves the same bytes
   again — mirroring the socket daemon's shared-frame fan-out. *)
let encoded_update t epoch =
  let label = Timeline.label t.timeline epoch in
  match Hashtbl.find_opt t.encoded label with
  | Some bytes -> bytes
  | None ->
      let bytes = Tre.update_to_bytes t.prms (issue t epoch) in
      Hashtbl.replace t.encoded label bytes;
      t.updates_encoded <- t.updates_encoded + 1;
      bytes

let update_size t =
  (* Real wire size of one update object: codec envelope, length-prefixed
     label, fixed-width compressed point. The label length varies by a
     byte or two with the epoch index; epoch 1 is the representative. *)
  Codec.header_bytes
  + 4
  + String.length (Timeline.label t.timeline 1)
  + Pairing.point_bytes t.prms

(* One broadcast per epoch boundary; server-side cost is a single signing
   plus a single serialization plus a single channel write, independent
   of |recipients|. The optional pool only parallelizes the RECIPIENTS'
   decode+verify work at delivery — the server side stays one signing and
   one encoding either way. *)
let start ?pool t ~net ~first_epoch ~epochs ~recipients =
  for e = first_epoch to first_epoch + epochs - 1 do
    let at = Timeline.start_of t.timeline e +. skew t in
    Simnet.schedule net ~at (fun () ->
        let payload = encoded_update t e in
        t.updates_issued <- t.updates_issued + 1;
        t.bytes_broadcast <- t.bytes_broadcast + String.length payload;
        Simnet.broadcast_bytes ?pool net ~src:t.name ~kind:"key-update" ~payload
          recipients)
  done

let archive_lookup t net lbl =
  match Timeline.epoch_of_label t.timeline lbl with
  | None -> None
  | Some epoch ->
      if Timeline.start_of t.timeline epoch > Simnet.now net then
        raise Future_update_refused;
      (* Footnote 4: regenerate from s on demand; consistent with any
         previously broadcast copy because issuing is deterministic. *)
      Some (issue t epoch)

let archive_lookup_bytes t net lbl =
  match Timeline.epoch_of_label t.timeline lbl with
  | None -> None
  | Some epoch ->
      if Timeline.start_of t.timeline epoch > Simnet.now net then
        raise Future_update_refused;
      Some (encoded_update t epoch)

let updates_issued t = t.updates_issued
let updates_encoded t = t.updates_encoded
let bytes_broadcast t = t.bytes_broadcast
