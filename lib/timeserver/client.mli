(** A receiver in the simulated system.

    Clients hold a TRE keypair bound to a server, listen to the broadcast
    channel, verify each update on receipt (it is a BLS signature — §5.3.1),
    cache verified updates, and hold pending ciphertexts until the matching
    update arrives, mirroring §3's "the receiver ... would wait (in alert)
    the release of the corresponding time-bound key update". A client that
    missed a broadcast can pull from the server's public archive —
    the only client-to-server communication in the whole protocol, and an
    anonymous GET of public data at that. *)

type t

type delivery = {
  plaintext : string;
  release_label : Tre.time;
  decrypted_at : float;  (** simulated time of decryption *)
}

val create :
  Pairing.params -> net:Simnet.t -> server:Tre.Server.public -> name:string -> t

val name : t -> string
val public_key : t -> Tre.User.public
val handler : t -> Tre.update -> unit
(** The decoded-update callback: verify, cache, drain pending.
    Idempotent under duplicate delivery and insensitive to epoch
    arrival order. *)

val on_wire : t -> string -> unit
(** The broadcast-channel callback: decode the shared wire bytes
    ({!Tre.update_of_bytes}), then {!handler}. Malformed bytes count as
    rejected updates. This is the handler to register with
    {!Passive_server.start}. *)

val enqueue_ciphertext : t -> Tre.ciphertext -> unit
(** Decrypts immediately if the update is already cached, else waits. *)

val fetch_missing : t -> Simnet.t -> Passive_server.t -> Tre.time -> unit
(** Pull an archived update over the network (two messages: request and
    response), e.g. after a lossy broadcast. *)

val deliveries : t -> delivery list
(** Successfully decrypted messages, oldest first. *)

val pending_count : t -> int
val updates_cached : t -> int
val rejected_updates : t -> int
(** Broadcasts that failed BLS verification (forged/corrupted). *)

(**/**)

val secret : t -> Tre.User.secret
