(** The paper's passive time server, as a running (simulated) process.

    Once started it does exactly one thing: at each epoch boundary it
    broadcasts the single time-bound key update for that epoch — a
    constant amount of work {e independent of the number of users}, which
    is the scalability claim measured by experiment E3. It keeps a public
    archive of {e past} updates (§3, §6: "keep a list of old key updates
    ... at a publicly accessible place") so receivers who missed a
    broadcast can recover, and it enforces the §3 trust assumption
    operationally: {!archive_lookup} refuses to produce an update whose
    release time has not yet arrived.

    The server holds no user state whatsoever: the type contains the key
    material, the timeline and counters — nothing about senders or
    receivers (the broadcast subscriber list lives in the caller's hands,
    modelling a radio channel the server does not observe). *)

type t

exception Future_update_refused
(** Raised when an archive lookup asks for an epoch that has not started
    — the one thing a correct time server must never do (§3). *)

val create :
  ?max_skew:float ->
  Pairing.params -> net:Simnet.t -> timeline:Timeline.t -> name:string -> t
(** Key material is drawn from the network's DRBG (reproducible).
    [max_skew] (default 0) models the §3 trust assumption that the server's
    clock is only consistent "within a reasonable error bound": each
    broadcast fires up to [max_skew] seconds {e late} — never early, since
    a correct server must not release an update before its time. *)

val max_skew : t -> float

val name : t -> string
val public : t -> Tre.Server.public
val timeline : t -> Timeline.t

val start :
  ?pool:Pool.t ->
  t ->
  net:Simnet.t ->
  first_epoch:int ->
  epochs:int ->
  recipients:(string * (string -> unit)) list ->
  unit
(** Schedule the per-epoch broadcasts. Each epoch's update is issued and
    serialized {e exactly once} and every recipient handler receives the
    same immutable wire bytes (decode with {!Tre.update_of_bytes} — see
    {!Client.on_wire}) — the encode-once broadcast path shared with the
    socket daemon. [recipients] is the physical reach of the broadcast
    channel — the server neither reads nor stores it beyond handing it to
    the network layer. [pool] is forwarded to {!Simnet.broadcast_bytes}:
    each epoch's surviving deliveries run sharded across the pool's
    domains (the recipients' decode+verify cost, not the server's — the
    server does one signing and one encoding per epoch regardless). *)

val archive_lookup : t -> Simnet.t -> Tre.time -> Tre.update option
(** The public webpage of old updates. [None] for labels from a foreign
    timeline; raises {!Future_update_refused} for epochs still in the
    future. Implementation note mirroring footnote 4 of the paper: the
    server can regenerate any past update from [s] alone, so the archive
    needs no storage beyond the secret — but we also keep the issued list
    so tests can audit that regeneration matches what was broadcast. *)

val archive_lookup_bytes : t -> Simnet.t -> Tre.time -> string option
(** {!archive_lookup}, serving the cached wire bytes (the exact string
    that was — or would be — broadcast for that epoch). Same
    future-refusal and foreign-label behaviour. *)

val updates_issued : t -> int

val updates_encoded : t -> int
(** Distinct epochs whose update was serialized — stays equal to the
    number of epochs touched {e however many recipients there are}; the
    encode-once invariant asserted by tests. *)

val bytes_broadcast : t -> int
val update_size : t -> int
(** Wire size of one update — the per-epoch broadcast cost. *)

(**/**)

val secret : t -> Tre.Server.secret
(** For collusion experiments in tests only. *)
