(** Discrete-event simulated network.

    The substrate for every systems experiment: a virtual clock, an event
    queue, and message delivery with configurable latency, jitter and loss
    — all driven by a seeded DRBG so runs are reproducible. Every message
    is also appended to a {e trace}, which is what the anonymity tests
    inspect: in the TRE protocol the trace must contain {e no} message
    toward the server and only user-independent broadcasts from it.

    Simulated time is in abstract seconds. *)

type t

type message = {
  at : float;  (** delivery time *)
  src : string;
  dst : string;
  kind : string;  (** free-form label, e.g. "key-update", "escrow-deposit" *)
  bytes : int;
}

val create :
  ?seed:string ->
  ?latency:float ->
  ?jitter:float ->
  ?loss:float ->
  unit ->
  t
(** [latency] is the base one-way delay (default 0.05), [jitter] the
    maximum extra uniform delay (default 0.02), [loss] the independent
    drop probability in [0,1) (default 0). *)

val now : t -> float
val rng : t -> Hashing.Drbg.t
(** The simulation's DRBG — share it for protocol randomness to keep the
    whole run reproducible from one seed. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Run a thunk at an absolute simulated time (>= now). *)

val schedule_in : t -> delay:float -> (unit -> unit) -> unit

val send :
  t -> src:string -> dst:string -> kind:string -> bytes:int ->
  (unit -> unit) -> unit
(** Deliver a message after latency+jitter, unless lost. The thunk runs at
    delivery time; the message is traced (with its delivery time) even if
    it is ultimately dropped — dropped messages get [dst = "(lost)"]. *)

val broadcast :
  ?pool:Pool.t ->
  t -> src:string -> kind:string -> bytes:int ->
  (string * (unit -> unit)) list -> unit
(** One logical broadcast delivered to each (name, handler) with
    independent jitter/loss. Traced as a single message with
    [dst = "(broadcast)"] plus the per-recipient deliveries — the server's
    cost is counted once, reflecting a genuine broadcast channel.

    With [pool], the surviving handlers of this broadcast run as one event
    at the latest delivery time, sharded across the pool's domains —
    recipients must hold disjoint state. The DRBG draw order, trace and
    per-recipient loss decisions are identical to the serial path; only
    the handlers' view of the clock collapses to the slowest delivery. *)

val broadcast_bytes :
  ?pool:Pool.t ->
  t -> src:string -> kind:string -> payload:string ->
  (string * (string -> unit)) list -> unit
(** {!broadcast} for a serialized payload: the caller encodes {e once}
    and every surviving recipient's handler receives the same immutable
    string (shared, never copied) — the simulator-side mirror of the
    daemon's encode-once broadcast path. Traced bytes are the payload's
    real wire length. *)

val run : t -> unit
(** Drain the event queue. *)

val run_until : t -> float -> unit
(** Process events with timestamp <= the given time, then set the clock to
    it. *)

val trace : t -> message list
(** All traced messages, oldest first. *)

val sent_to : t -> string -> message list
val sent_by : t -> string -> message list
val total_bytes_by : t -> string -> int
val message_count_by : t -> string -> int
