type message = {
  at : float;
  src : string;
  dst : string;
  kind : string;
  bytes : int;
}

type t = {
  mutable clock : float;
  queue : (unit -> unit) Event_queue.t;
  drbg : Hashing.Drbg.t;
  latency : float;
  jitter : float;
  loss : float;
  mutable log : message list; (* newest first *)
}

let create ?(seed = "simnet") ?(latency = 0.05) ?(jitter = 0.02) ?(loss = 0.0) () =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Simnet.create: loss must be in [0,1)";
  {
    clock = 0.0;
    queue = Event_queue.create ();
    drbg = Hashing.Drbg.create ~seed ~personalization:"simnet" ();
    latency;
    jitter;
    loss;
    log = [];
  }

let now t = t.clock
let rng t = t.drbg

let schedule t ~at thunk =
  if at < t.clock then invalid_arg "Simnet.schedule: time in the past";
  Event_queue.push t.queue ~at thunk

let schedule_in t ~delay thunk = schedule t ~at:(t.clock +. delay) thunk

(* Uniform float in [0,1) from the DRBG. *)
let uniform t =
  let raw = Hashing.Drbg.generate t.drbg 7 in
  let v = ref 0 in
  String.iter (fun c -> v := (!v lsl 8) lor Char.code c) raw;
  float_of_int !v /. float_of_int (1 lsl 56)

let delivery_delay t = t.latency +. (t.jitter *. uniform t)
let dropped t = t.loss > 0.0 && uniform t < t.loss

let trace_message t ~at ~src ~dst ~kind ~bytes =
  t.log <- { at; src; dst; kind; bytes } :: t.log

let send t ~src ~dst ~kind ~bytes thunk =
  let delay = delivery_delay t in
  if dropped t then trace_message t ~at:(t.clock +. delay) ~src ~dst:"(lost)" ~kind ~bytes
  else begin
    trace_message t ~at:(t.clock +. delay) ~src ~dst ~kind ~bytes;
    schedule_in t ~delay thunk
  end

let broadcast ?pool t ~src ~kind ~bytes recipients =
  trace_message t ~at:t.clock ~src ~dst:"(broadcast)" ~kind ~bytes;
  match pool with
  | None ->
      List.iter
        (fun (_name, handler) ->
          let delay = delivery_delay t in
          if not (dropped t) then schedule_in t ~delay handler)
        recipients
  | Some pool ->
      (* Parallel drain: the DRBG draws happen here, per recipient, in the
         exact order of the serial path (delay first, then the drop coin),
         so the random stream — and hence the trace and every later draw —
         is unchanged. The surviving handlers then run as ONE event at the
         latest delivery time, sharded across the pool; per-recipient
         state is disjoint, so this is safe, but a handler reading the
         simulated clock sees the batch's completion time rather than its
         own jittered instant. *)
      let max_delay, survivors =
        List.fold_left
          (fun (max_delay, acc) (_name, handler) ->
            let delay = delivery_delay t in
            if dropped t then (max_delay, acc)
            else (Float.max max_delay delay, handler :: acc))
          (0.0, []) recipients
      in
      let survivors = List.rev survivors in
      if survivors <> [] then
        schedule_in t ~delay:max_delay (fun () ->
            Pool.iter pool (fun handler -> handler ()) survivors)

(* The daemon's encode-once discipline, mirrored in the simulator: the
   caller serializes the payload exactly once and every recipient's
   handler receives the {e same} immutable string — physically one
   byte-string shared N ways, so the simulated broadcast cost model and
   the socket daemon agree. Decoding (and rejecting) is each recipient's
   own work, as on a real channel. *)
let broadcast_bytes ?pool t ~src ~kind ~payload recipients =
  broadcast ?pool t ~src ~kind
    ~bytes:(String.length payload)
    (List.map (fun (name, handler) -> (name, fun () -> handler payload)) recipients)

let run t =
  let rec loop () =
    match Event_queue.pop t.queue with
    | None -> ()
    | Some (at, thunk) ->
        t.clock <- Float.max t.clock at;
        thunk ();
        loop ()
  in
  loop ()

let run_until t horizon =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some at when at <= horizon -> (
        match Event_queue.pop t.queue with
        | Some (at, thunk) ->
            t.clock <- Float.max t.clock at;
            thunk ();
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- Float.max t.clock horizon

let trace t = List.rev t.log
let sent_to t name = List.filter (fun m -> m.dst = name) (trace t)
let sent_by t name = List.filter (fun m -> m.src = name) (trace t)

let total_bytes_by t name =
  List.fold_left (fun acc m -> acc + m.bytes) 0 (sent_by t name)

let message_count_by t name = List.length (sent_by t name)
