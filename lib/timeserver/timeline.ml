type t = { origin : string; granularity : float }

let create ?(origin = "utc") ~granularity () =
  if granularity <= 0.0 then invalid_arg "Timeline.create: granularity <= 0";
  { origin; granularity }

let granularity t = t.granularity
let origin t = t.origin
let epoch_at t instant = int_of_float (Float.floor (instant /. t.granularity))
let label t epoch = Printf.sprintf "%s#%d" t.origin epoch

let epoch_of_label t lbl =
  match String.index_opt lbl '#' with
  | Some i when String.sub lbl 0 i = t.origin ->
      int_of_string_opt (String.sub lbl (i + 1) (String.length lbl - i - 1))
  | Some _ | None -> None

let start_of t epoch = float_of_int epoch *. t.granularity
