(* Binary min-heap of timestamped events. Ties are broken by insertion
   sequence so same-time events run in schedule order (deterministic
   simulation).

   Slots are ['a entry option] so a pop can blank the vacated cell:
   with a bare entry array the backing store keeps the last popped
   entries reachable (a drained queue still pins every payload it ever
   delivered until the slot is overwritten), which for simulations
   carrying ciphertext payloads is a real space leak. *)

type 'a entry = { at : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let get t i =
  match t.heap.(i) with
  | Some e -> e
  | None -> assert false (* slots below [size] are always populated *)

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let bigger = Array.make cap None in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t ~at payload =
  let entry = { at; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- Some entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before (get t !i) (get t parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- None;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before (get t l) (get t !smallest) then smallest := l;
        if r < t.size && before (get t r) (get t !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end
    else t.heap.(0) <- None;
    Some (top.at, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some (get t 0).at
