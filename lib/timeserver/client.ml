type delivery = {
  plaintext : string;
  release_label : Tre.time;
  decrypted_at : float;
}

type t = {
  prms : Pairing.params;
  net : Simnet.t;
  name : string;
  server : Tre.Server.public;
  verifier : Tre.verifier; (* prepared (G, sG) pairings for update checks *)
  secret : Tre.User.secret;
  public : Tre.User.public;
  updates : (Tre.time, Tre.update) Hashtbl.t;
  mutable pending : Tre.ciphertext list;
  mutable delivered : delivery list; (* newest first *)
  mutable rejected : int;
}

let create prms ~net ~server ~name =
  let secret, public = Tre.User.keygen prms server (Simnet.rng net) in
  {
    prms;
    net;
    name;
    server;
    verifier = Tre.make_verifier prms server;
    secret;
    public;
    updates = Hashtbl.create 16;
    pending = [];
    delivered = [];
    rejected = 0;
  }

let name t = t.name
let public_key t = t.public
let secret t = t.secret

let try_decrypt t ct =
  match Hashtbl.find_opt t.updates ct.Tre.release_time with
  | None -> false
  | Some upd ->
      let plaintext = Tre.decrypt t.prms t.secret upd ct in
      t.delivered <-
        {
          plaintext;
          release_label = ct.Tre.release_time;
          decrypted_at = Simnet.now t.net;
        }
        :: t.delivered;
      true

let drain_pending t =
  t.pending <- List.filter (fun ct -> not (try_decrypt t ct)) t.pending

let handler t upd =
  (* Duplicate deliveries are idempotent (re-verify, re-cache the same
     value); out-of-order deliveries are absorbed by the cache — nothing
     here depends on epochs arriving in sequence. *)
  if Tre.verify_update_with t.prms t.verifier upd then begin
    Hashtbl.replace t.updates upd.Tre.update_time upd;
    drain_pending t
  end
  else t.rejected <- t.rejected + 1

(* The broadcast-channel entry point: what arrives is the server's shared
   wire bytes (encoded once for all recipients); decoding — and rejecting
   malformed bytes — is this client's own work. *)
let on_wire t payload =
  match Tre.update_of_bytes t.prms payload with
  | Ok upd -> handler t upd
  | Error _ -> t.rejected <- t.rejected + 1

let enqueue_ciphertext t ct =
  if not (try_decrypt t ct) then t.pending <- ct :: t.pending

let fetch_missing t net server lbl =
  (* Anonymous pull of public data: request then response, both traced.
     The response rides the same encode-once cache as the broadcast. *)
  Simnet.send net ~src:t.name ~dst:(Passive_server.name server)
    ~kind:"archive-request" ~bytes:(String.length lbl) (fun () ->
      match Passive_server.archive_lookup_bytes server net lbl with
      | None -> ()
      | Some payload ->
          Simnet.send net
            ~src:(Passive_server.name server)
            ~dst:t.name ~kind:"archive-response"
            ~bytes:(String.length payload)
            (fun () -> on_wire t payload))

let deliveries t = List.rev t.delivered
let pending_count t = List.length t.pending
let updates_cached t = Hashtbl.length t.updates
let rejected_updates t = t.rejected
