(** Supersingular elliptic curves E : y^2 = x^3 + a*x + b over GF(p).

    Two classic Type-1 families are supported (both have #E(GF(p)) = p+1
    and a distortion map making the Tate pairing non-degenerate on a
    single subgroup — the "Gap Diffie-Hellman group" G1 of the paper):

    - (a, b) = (1, 0): y^2 = x^3 + x, supersingular for p = 3 (mod 4),
      distortion (x, y) -> (-x, iy);
    - (a, b) = (0, 1): y^2 = x^3 + 1, supersingular for p = 2 (mod 3),
      distortion (x, y) -> (zeta*x, y) with zeta a primitive cube root of
      unity in GF(p^2) (the Boneh-Franklin curve).

    The distortion maps and pairings live in {!Pairing}; this module is
    plain short-Weierstrass group arithmetic. *)

type ctx
type point = Infinity | Affine of { x : Fp.t; y : Fp.t }

val create : ?a:int -> ?b:int -> Fp.ctx -> ctx
(** Defaults (a, b) = (1, 0). Supersingularity for the given p is the
    caller's ({!Pairing.make}'s) responsibility. *)

val coeff_a : ctx -> Fp.t
val coeff_b : ctx -> Fp.t
val field : ctx -> Fp.ctx

val infinity : point
val is_infinity : point -> bool
val make : ctx -> x:Fp.t -> y:Fp.t -> point
(** Raises [Invalid_argument] if (x, y) is not on the curve. *)

val on_curve : ctx -> point -> bool
val equal : point -> point -> bool
val neg : ctx -> point -> point
val add : ctx -> point -> point -> point
val double : ctx -> point -> point
val mul : ctx -> Bigint.t -> point -> point
(** Scalar multiplication (width-w NAF with a precomputed odd-multiples
    table); negative scalars negate the point. *)

val mul_double_add : ctx -> Bigint.t -> point -> point
(** Reference Jacobian double-and-add ladder. Always agrees with {!mul};
    kept for the equivalence tests and the before/after benchmark. *)

val jac_steps_ref : ctx -> point -> int -> point
val jac_steps_kernel : ctx -> point -> int -> point
(** Ablation probes for the benchmark: [steps] iterations of Jacobian
    double-then-mixed-add from the given point, via the functional
    formulas ([_ref], allocating per step) and via the in-place register
    file ([_kernel], allocation-free loop). Bit-identical results — the
    equivalence tests and [bench --smoke] assert it. *)

val msm : ctx -> (Bigint.t * point) list -> point
(** Multi-scalar multiplication [sum_i k_i * P_i]: interleaved wNAF digit
    streams over one shared doubling chain, one shared Montgomery batch
    normalization of the odd-multiple tables, one final inversion — far
    cheaper than summing independent {!mul}s, especially for the short
    exponents of batch verification. Always agrees with folding {!add}
    over independent {!mul}s, including for negative scalars, zero
    scalars, infinity, and low-order points (which fall back to {!mul}
    internally). *)

(** Fixed-base precomputation: build a table from a point once, then
    multiply it by many scalars at a fraction of the generic cost (no
    doublings, at most [ceil bits/w] mixed additions per scalar). *)
module Table : sig
  type t

  val create : ?w:int -> ctx -> bits:int -> point -> t
  (** [create ctx ~bits p] precomputes multiples of [p] covering scalars
      of up to [bits] bits (larger scalars still work via a generic-path
      fallback, just without the speedup). [w] is the window width in
      bits, default 4; the table holds [ceil bits/w * (2^w - 1)] affine
      points. *)

  val base : t -> point
  (** The point the table was built from. *)

  val mul : t -> Bigint.t -> point
  (** [mul t k] = [Curve.mul ctx k (base t)], computed from the table.
      Negative scalars negate the result, as in {!Curve.mul}. *)
end

val group_order : ctx -> Bigint.t
(** p + 1, the full curve order. *)

val lift_x : ctx -> Fp.t -> (point * point) option
(** The two points with the given x-coordinate, if x^3 + x is a square;
    the first has the lexicographically smaller y encoding. *)

val to_bytes : ctx -> point -> string
(** Compressed SEC1-style encoding: 0x00 for infinity (1 byte),
    0x02/0x03 (y parity) followed by x otherwise. *)

val of_bytes : ctx -> string -> point option
(** Rejects malformed, off-curve, and non-canonical encodings. *)

val byte_length : ctx -> int
(** Length of a non-infinity compressed encoding. *)

val pp : ctx -> Format.formatter -> point -> unit
