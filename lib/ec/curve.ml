(* Affine arithmetic on E : y^2 = x^3 + a*x + b, plus Jacobian-coordinate
   scalar multiplication. The affine formulas are the textbook
   chord-and-tangent ones; slopes need one field inversion per operation,
   which is fine for single additions (scalar multiplication avoids them
   via Jacobian coordinates). *)

type ctx = { fp : Fp.ctx; a : Fp.t; b : Fp.t; a_is_zero : bool }
type point = Infinity | Affine of { x : Fp.t; y : Fp.t }

let create ?(a = 1) ?(b = 0) fp =
  let a = Fp.of_int fp a and b = Fp.of_int fp b in
  { fp; a; b; a_is_zero = Fp.is_zero fp a }

let coeff_a ctx = ctx.a
let coeff_b ctx = ctx.b
let field ctx = ctx.fp
let infinity = Infinity
let is_infinity = function Infinity -> true | Affine _ -> false

(* x^3 + a*x + b *)
let rhs ctx x =
  let fp = ctx.fp in
  Fp.add fp (Fp.add fp (Fp.mul fp x (Fp.sqr fp x)) (Fp.mul fp ctx.a x)) ctx.b

let on_curve ctx = function
  | Infinity -> true
  | Affine { x; y } -> Fp.equal (Fp.sqr ctx.fp y) (rhs ctx x)

let make ctx ~x ~y =
  let p = Affine { x; y } in
  if not (on_curve ctx p) then invalid_arg "Curve.make: point not on curve";
  p

let equal a b =
  match (a, b) with
  | Infinity, Infinity -> true
  | Affine a, Affine b -> Fp.equal a.x b.x && Fp.equal a.y b.y
  | Infinity, Affine _ | Affine _, Infinity -> false

let neg ctx = function
  | Infinity -> Infinity
  | Affine { x; y } -> Affine { x; y = Fp.neg ctx.fp y }

let double ctx = function
  | Infinity -> Infinity
  | Affine { y; _ } when Fp.is_zero ctx.fp y -> Infinity
  | Affine { x; y } ->
      let fp = ctx.fp in
      (* lambda = (3x^2 + a) / 2y. *)
      let x2 = Fp.sqr fp x in
      let num = Fp.add fp (Fp.add fp (Fp.add fp x2 x2) x2) ctx.a in
      let lambda = Fp.div fp num (Fp.add fp y y) in
      let x3 = Fp.sub fp (Fp.sqr fp lambda) (Fp.add fp x x) in
      let y3 = Fp.sub fp (Fp.mul fp lambda (Fp.sub fp x x3)) y in
      Affine { x = x3; y = y3 }

let add ctx a b =
  match (a, b) with
  | Infinity, q -> q
  | p, Infinity -> p
  | Affine pa, Affine pb ->
      let fp = ctx.fp in
      if Fp.equal pa.x pb.x then
        if Fp.equal pa.y pb.y then double ctx a else Infinity
      else begin
        let lambda = Fp.div fp (Fp.sub fp pb.y pa.y) (Fp.sub fp pb.x pa.x) in
        let x3 = Fp.sub fp (Fp.sub fp (Fp.sqr fp lambda) pa.x) pb.x in
        let y3 = Fp.sub fp (Fp.mul fp lambda (Fp.sub fp pa.x x3)) pa.y in
        Affine { x = x3; y = y3 }
      end

(* Scalar multiplication runs in Jacobian coordinates (X/Z^2, Y/Z^3) so
   the whole double-and-add loop needs a single field inversion at the
   end instead of one per step. Infinity is represented by Z = 0. *)
type jacobian = { jx : Fp.t; jy : Fp.t; jz : Fp.t }

let jac_double ctx p =
  let fp = ctx.fp in
  if Fp.is_zero fp p.jz || Fp.is_zero fp p.jy then
    { jx = Fp.one fp; jy = Fp.one fp; jz = Fp.zero fp }
  else begin
    let y2 = Fp.sqr fp p.jy in
    let s =
      (* 4 * X * Y^2 *)
      let xy2 = Fp.mul fp p.jx y2 in
      let d = Fp.add fp xy2 xy2 in
      Fp.add fp d d
    in
    let z2 = Fp.sqr fp p.jz in
    let x2 = Fp.sqr fp p.jx in
    let three_x2 = Fp.add fp (Fp.add fp x2 x2) x2 in
    (* M = 3X^2 + a*Z^4; both curve families have a in {0, 1}. *)
    let m =
      if ctx.a_is_zero then three_x2
      else Fp.add fp three_x2 (Fp.mul fp ctx.a (Fp.sqr fp z2))
    in
    let x' = Fp.sub fp (Fp.sqr fp m) (Fp.add fp s s) in
    let y4_8 =
      let y4 = Fp.sqr fp y2 in
      let d = Fp.add fp y4 y4 in
      let d = Fp.add fp d d in
      Fp.add fp d d
    in
    let y' = Fp.sub fp (Fp.mul fp m (Fp.sub fp s x')) y4_8 in
    let z' = Fp.mul fp (Fp.add fp p.jy p.jy) p.jz in
    { jx = x'; jy = y'; jz = z' }
  end

(* Mixed addition: [p] Jacobian + (x2, y2) affine. *)
let jac_add_affine ctx p ~x2 ~y2 =
  let fp = ctx.fp in
  if Fp.is_zero fp p.jz then { jx = x2; jy = y2; jz = Fp.one fp }
  else begin
    let z2 = Fp.sqr fp p.jz in
    let u2 = Fp.mul fp x2 z2 in
    let s2 = Fp.mul fp y2 (Fp.mul fp z2 p.jz) in
    let h = Fp.sub fp u2 p.jx in
    let r = Fp.sub fp s2 p.jy in
    if Fp.is_zero fp h then
      if Fp.is_zero fp r then jac_double ctx p
      else { jx = Fp.one fp; jy = Fp.one fp; jz = Fp.zero fp }
    else begin
      let h2 = Fp.sqr fp h in
      let h3 = Fp.mul fp h2 h in
      let xh2 = Fp.mul fp p.jx h2 in
      let x' = Fp.sub fp (Fp.sub fp (Fp.sqr fp r) h3) (Fp.add fp xh2 xh2) in
      let y' = Fp.sub fp (Fp.mul fp r (Fp.sub fp xh2 x')) (Fp.mul fp p.jy h3) in
      let z' = Fp.mul fp p.jz h in
      { jx = x'; jy = y'; jz = z' }
    end
  end

let jac_to_affine ctx p =
  let fp = ctx.fp in
  if Fp.is_zero fp p.jz then Infinity
  else begin
    let zinv = Fp.inv fp p.jz in
    let zinv2 = Fp.sqr fp zinv in
    Affine
      { x = Fp.mul fp p.jx zinv2; y = Fp.mul fp p.jy (Fp.mul fp zinv2 zinv) }
  end

let jac_infinity fp = { jx = Fp.one fp; jy = Fp.one fp; jz = Fp.zero fp }

(* Full Jacobian + Jacobian addition; only used for precomputation-table
   construction (the inner multiplication loops stay on the cheaper mixed
   addition against batch-normalized affine table entries). *)
let jac_add ctx p q =
  let fp = ctx.fp in
  if Fp.is_zero fp p.jz then q
  else if Fp.is_zero fp q.jz then p
  else begin
    let z1z1 = Fp.sqr fp p.jz in
    let z2z2 = Fp.sqr fp q.jz in
    let u1 = Fp.mul fp p.jx z2z2 in
    let u2 = Fp.mul fp q.jx z1z1 in
    let s1 = Fp.mul fp p.jy (Fp.mul fp q.jz z2z2) in
    let s2 = Fp.mul fp q.jy (Fp.mul fp p.jz z1z1) in
    let h = Fp.sub fp u2 u1 in
    let r = Fp.sub fp s2 s1 in
    if Fp.is_zero fp h then
      if Fp.is_zero fp r then jac_double ctx p else jac_infinity fp
    else begin
      let h2 = Fp.sqr fp h in
      let h3 = Fp.mul fp h2 h in
      let u1h2 = Fp.mul fp u1 h2 in
      let x3 = Fp.sub fp (Fp.sub fp (Fp.sqr fp r) h3) (Fp.add fp u1h2 u1h2) in
      let y3 = Fp.sub fp (Fp.mul fp r (Fp.sub fp u1h2 x3)) (Fp.mul fp s1 h3) in
      let z3 = Fp.mul fp (Fp.mul fp p.jz q.jz) h in
      { jx = x3; jy = y3; jz = z3 }
    end
  end

(* Montgomery batch inversion: normalize [n] Jacobian points (all with
   Z <> 0) to affine coordinates with a single field inversion and
   3(n-1) + 5n multiplications instead of n inversions. *)
let batch_to_affine ctx (pts : jacobian array) : (Fp.t * Fp.t) array =
  let fp = ctx.fp in
  let n = Array.length pts in
  let prefix = Array.make n (Fp.one fp) in
  let acc = ref (Fp.one fp) in
  for i = 0 to n - 1 do
    prefix.(i) <- !acc;
    acc := Fp.mul fp !acc pts.(i).jz
  done;
  let suffix_inv = ref (Fp.inv fp !acc) in
  let out = Array.make n (Fp.zero fp, Fp.zero fp) in
  for i = n - 1 downto 0 do
    let zinv = Fp.mul fp !suffix_inv prefix.(i) in
    suffix_inv := Fp.mul fp !suffix_inv pts.(i).jz;
    let zinv2 = Fp.sqr fp zinv in
    out.(i) <-
      (Fp.mul fp pts.(i).jx zinv2, Fp.mul fp pts.(i).jy (Fp.mul fp zinv2 zinv))
  done;
  out

(* --- in-place Jacobian register file ---

   The wNAF / MSM / fixed-base loops below run thousands of doublings and
   mixed additions per scalar; with the functional formulas each step
   allocated ~15 fresh field elements. The register file holds one
   accumulator (ax, ay, az) plus seven temporaries, all allocated ONCE
   per scalar multiplication and mutated in place by the {!Fp.Mut}
   kernels — the loops themselves allocate nothing. The schedules below
   compute exactly the same field expressions as [jac_double] /
   [jac_add_affine]; canonical representatives make the results
   bit-identical, which [mul_double_add] (kept functional) pins in the
   equivalence tests. Inputs from outside the file (table entries, point
   coordinates, ctx.a) are read-only. *)
type jregs = {
  ax : Fp.t;
  ay : Fp.t;
  az : Fp.t;
  t0 : Fp.t;
  t1 : Fp.t;
  t2 : Fp.t;
  t3 : Fp.t;
  t4 : Fp.t;
  t5 : Fp.t;
  tn : Fp.t; (* negated table y, alive across the add call *)
}

let jregs_alloc fp =
  {
    ax = Fp.Mut.alloc fp;
    ay = Fp.Mut.alloc fp;
    az = Fp.Mut.alloc fp;
    t0 = Fp.Mut.alloc fp;
    t1 = Fp.Mut.alloc fp;
    t2 = Fp.Mut.alloc fp;
    t3 = Fp.Mut.alloc fp;
    t4 = Fp.Mut.alloc fp;
    t5 = Fp.Mut.alloc fp;
    tn = Fp.Mut.alloc fp;
  }

(* Per-domain register-file cache. Allocating the ten-buffer file on
   every scalar multiplication was the one remaining allocation in the
   kernel loops — and the whole of the curve-steps regression at small
   limb counts, where ten boxed arrays per call rival the arithmetic
   itself. The cache keeps ONE file per domain, grow-only (every kernel
   loop is bounded by its context's limb count, never by the buffer
   length, so a file grown for a large field serves smaller ones), with
   a busy flag so any reentrant user transparently falls back to a
   fresh allocation. Every temporary in the schedules above is written
   before it is read, so stale limbs from another context are
   harmless. *)
type jcache = { mutable jk : int; mutable jfile : jregs; mutable jbusy : bool }

let jregs_raw k =
  {
    ax = Array.make k 0;
    ay = Array.make k 0;
    az = Array.make k 0;
    t0 = Array.make k 0;
    t1 = Array.make k 0;
    t2 = Array.make k 0;
    t3 = Array.make k 0;
    t4 = Array.make k 0;
    t5 = Array.make k 0;
    tn = Array.make k 0;
  }

let jcache_key =
  Domain.DLS.new_key (fun () -> { jk = 0; jfile = jregs_raw 0; jbusy = false })

let jregs_acquire fp =
  let c = Domain.DLS.get jcache_key in
  if c.jbusy then jregs_alloc fp
  else begin
    let k = Limbs.limb_count (Fp.kernel fp) in
    if c.jk < k then begin
      c.jfile <- jregs_raw k;
      c.jk <- k
    end;
    c.jbusy <- true;
    c.jfile
  end

let jregs_release r =
  let c = Domain.DLS.get jcache_key in
  if r == c.jfile then c.jbusy <- false

(* Accumulator <- infinity, in the same {1, 1, 0} encoding as
   [jac_infinity]. *)
let jset_infinity fp r =
  Fp.Mut.set_one fp r.ax;
  Fp.Mut.set_one fp r.ay;
  Fp.Mut.set_zero fp r.az

let jdouble_in ctx r =
  let fp = ctx.fp in
  if Fp.is_zero fp r.az || Fp.is_zero fp r.ay then jset_infinity fp r
  else begin
    Fp.Mut.sqr_into fp r.t0 r.ay; (* t0 = Y^2 *)
    Fp.Mut.mul_into fp r.t1 r.ax r.t0; (* t1 = X*Y^2 *)
    Fp.Mut.add_into fp r.t1 r.t1 r.t1;
    Fp.Mut.add_into fp r.t1 r.t1 r.t1; (* t1 = s = 4*X*Y^2 *)
    Fp.Mut.sqr_into fp r.t2 r.az; (* t2 = Z^2 *)
    Fp.Mut.sqr_into fp r.t3 r.ax; (* t3 = X^2 *)
    Fp.Mut.add_into fp r.t4 r.t3 r.t3;
    Fp.Mut.add_into fp r.t4 r.t4 r.t3; (* t4 = 3*X^2 *)
    if not ctx.a_is_zero then begin
      Fp.Mut.sqr_into fp r.t5 r.t2;
      Fp.Mut.mul_into fp r.t5 ctx.a r.t5;
      Fp.Mut.add_into fp r.t4 r.t4 r.t5 (* t4 = M = 3X^2 + a*Z^4 *)
    end;
    Fp.Mut.sqr_into fp r.t5 r.t4;
    Fp.Mut.sub_into fp r.t5 r.t5 r.t1;
    Fp.Mut.sub_into fp r.t5 r.t5 r.t1; (* t5 = X' = M^2 - 2s *)
    Fp.Mut.sqr_into fp r.t0 r.t0;
    Fp.Mut.add_into fp r.t0 r.t0 r.t0;
    Fp.Mut.add_into fp r.t0 r.t0 r.t0;
    Fp.Mut.add_into fp r.t0 r.t0 r.t0; (* t0 = 8*Y^4 *)
    Fp.Mut.sub_into fp r.t1 r.t1 r.t5;
    Fp.Mut.mul_into fp r.t1 r.t4 r.t1;
    Fp.Mut.sub_into fp r.t1 r.t1 r.t0; (* t1 = Y' = M(s - X') - 8Y^4 *)
    Fp.Mut.add_into fp r.t2 r.ay r.ay;
    Fp.Mut.mul_into fp r.az r.t2 r.az; (* Z' = 2*Y*Z *)
    Fp.Mut.set fp r.ax r.t5;
    Fp.Mut.set fp r.ay r.t1
  end

let jadd_affine_in ctx r ~x2 ~y2 =
  let fp = ctx.fp in
  if Fp.is_zero fp r.az then begin
    Fp.Mut.set fp r.ax x2;
    Fp.Mut.set fp r.ay y2;
    Fp.Mut.set_one fp r.az
  end
  else begin
    Fp.Mut.sqr_into fp r.t0 r.az; (* t0 = Z^2 *)
    Fp.Mut.mul_into fp r.t1 x2 r.t0;
    Fp.Mut.sub_into fp r.t1 r.t1 r.ax; (* t1 = h = x2*Z^2 - X *)
    Fp.Mut.mul_into fp r.t2 r.t0 r.az;
    Fp.Mut.mul_into fp r.t2 y2 r.t2;
    Fp.Mut.sub_into fp r.t2 r.t2 r.ay; (* t2 = r = y2*Z^3 - Y *)
    if Fp.is_zero fp r.t1 then
      if Fp.is_zero fp r.t2 then jdouble_in ctx r else jset_infinity fp r
    else begin
      Fp.Mut.sqr_into fp r.t3 r.t1; (* t3 = h^2 *)
      Fp.Mut.mul_into fp r.t4 r.t3 r.t1; (* t4 = h^3 *)
      Fp.Mut.mul_into fp r.t3 r.ax r.t3; (* t3 = X*h^2 *)
      Fp.Mut.sqr_into fp r.t5 r.t2;
      Fp.Mut.sub_into fp r.t5 r.t5 r.t4;
      Fp.Mut.sub_into fp r.t5 r.t5 r.t3;
      Fp.Mut.sub_into fp r.t5 r.t5 r.t3; (* t5 = X' = r^2 - h^3 - 2Xh^2 *)
      Fp.Mut.sub_into fp r.t3 r.t3 r.t5;
      Fp.Mut.mul_into fp r.t3 r.t2 r.t3;
      Fp.Mut.mul_into fp r.t4 r.ay r.t4;
      Fp.Mut.sub_into fp r.t3 r.t3 r.t4; (* t3 = Y' = r(Xh^2 - X') - Y*h^3 *)
      Fp.Mut.mul_into fp r.az r.az r.t1; (* Z' = Z*h *)
      Fp.Mut.set fp r.ax r.t5;
      Fp.Mut.set fp r.ay r.t3
    end
  end

(* Snapshot the accumulator registers as a (functional) Jacobian point;
   [jac_to_affine] only reads its argument, and its outputs are fresh. *)
let jregs_to_affine ctx r =
  jac_to_affine ctx { jx = r.ax; jy = r.ay; jz = r.az }

(* Benchmark/ablation probes: [steps] iterations of double-then-mixed-add
   starting from [point], through the functional formulas and through the
   register file respectively. Same field expressions, canonical
   representatives — the results must be bit-identical, which the bench
   smoke mode and equivalence tests assert. *)
let jac_steps_ref ctx point steps =
  match point with
  | Infinity -> Infinity
  | Affine { x = x2; y = y2 } ->
      let acc = ref { jx = x2; jy = y2; jz = Fp.one ctx.fp } in
      for _ = 1 to steps do
        acc := jac_double ctx !acc;
        acc := jac_add_affine ctx !acc ~x2 ~y2
      done;
      jac_to_affine ctx !acc

let jac_steps_kernel ctx point steps =
  match point with
  | Infinity -> Infinity
  | Affine { x = x2; y = y2 } ->
      let fp = ctx.fp in
      let r = jregs_acquire fp in
      Fp.Mut.set fp r.ax x2;
      Fp.Mut.set fp r.ay y2;
      Fp.Mut.set_one fp r.az;
      for _ = 1 to steps do
        jdouble_in ctx r;
        jadd_affine_in ctx r ~x2 ~y2
      done;
      let p = jregs_to_affine ctx r in
      jregs_release r;
      p

let mul_double_add ctx k point =
  let k, point =
    if Bigint.sign k >= 0 then (k, point) else (Bigint.neg k, neg ctx point)
  in
  match point with
  | Infinity -> Infinity
  | Affine { x = x2; y = y2 } ->
      let fp = ctx.fp in
      let bits = Bigint.bit_length k in
      let acc = ref (jac_infinity fp) in
      for i = bits - 1 downto 0 do
        acc := jac_double ctx !acc;
        if Bigint.test_bit k i then acc := jac_add_affine ctx !acc ~x2 ~y2
      done;
      jac_to_affine ctx !acc

(* Width-w non-adjacent form of k >= 0: digits.(i) is the signed odd digit
   at bit i, in (-2^(w-1), 2^(w-1)), with at least w-1 zeros after every
   nonzero digit. Classic carry-based recoding over an explicit bit
   array. *)
let wnaf_digits k w =
  let n = Bigint.bit_length k in
  (* The represented value never exceeds 2^n (negative digits round it up
     to the next multiple of 2^(i+w), never past a power-of-two boundary),
     so bit n is the highest ever set; the slack covers the carry index
     i + w itself. *)
  let len = n + w + 2 in
  let bits = Array.make len 0 in
  for i = 0 to n - 1 do
    if Bigint.test_bit k i then bits.(i) <- 1
  done;
  let digits = Array.make len 0 in
  let i = ref 0 in
  while !i < len do
    if bits.(!i) = 0 then incr i
    else begin
      let hi = Stdlib.min (len - 1) (!i + w - 1) in
      let v = ref 0 in
      for j = hi downto !i do
        v := (!v lsl 1) lor bits.(j);
        bits.(j) <- 0
      done;
      let d = if !v >= 1 lsl (w - 1) then !v - (1 lsl w) else !v in
      digits.(!i) <- d;
      if d < 0 then begin
        (* We emitted v - 2^w; add the borrowed 2^w back at bit i+w. *)
        let j = ref (!i + w) in
        while bits.(!j) = 1 do
          bits.(!j) <- 0;
          incr j
        done;
        bits.(!j) <- 1
      end;
      i := !i + w
    end
  done;
  digits

(* Scalar multiplication by width-w NAF with a batch-normalized table of
   odd multiples: ~bits doublings + bits/(w+1) mixed additions, against
   bits + bits/2 for the double-and-add ladder. *)
let mul ctx k point =
  let k, point =
    if Bigint.sign k >= 0 then (k, point) else (Bigint.neg k, neg ctx point)
  in
  match point with
  | Infinity -> Infinity
  | Affine { x = x2; y = y2 } as p ->
      let fp = ctx.fp in
      let bits = Bigint.bit_length k in
      if bits < 32 then mul_double_add ctx k p
      else begin
        let w = if bits <= 200 then 4 else 5 in
        let tcount = 1 lsl (w - 2) in
        let pj = { jx = x2; jy = y2; jz = Fp.one fp } in
        let twop = jac_double ctx pj in
        let tbl_j = Array.make tcount pj in
        for i = 1 to tcount - 1 do
          tbl_j.(i) <- jac_add ctx tbl_j.(i - 1) twop
        done;
        if
          (* Low-order points (2-torsion) make odd multiples collapse to
             infinity; the plain ladder handles them. *)
          Fp.is_zero fp twop.jz
          || Array.exists (fun q -> Fp.is_zero fp q.jz) tbl_j
        then mul_double_add ctx k p
        else begin
          let tbl = batch_to_affine ctx tbl_j in
          let digits = wnaf_digits k w in
          let top = ref (Array.length digits - 1) in
          while !top > 0 && digits.(!top) = 0 do
            decr top
          done;
          let r = jregs_acquire fp in
          jset_infinity fp r;
          for i = !top downto 0 do
            jdouble_in ctx r;
            let d = digits.(i) in
            if d <> 0 then begin
              let tx, ty = tbl.((Stdlib.abs d - 1) / 2) in
              if d < 0 then begin
                Fp.Mut.neg_into fp r.tn ty;
                jadd_affine_in ctx r ~x2:tx ~y2:r.tn
              end
              else jadd_affine_in ctx r ~x2:tx ~y2:ty
            end
          done;
          let p = jregs_to_affine ctx r in
          jregs_release r;
          p
        end
      end

(* Multi-scalar multiplication sum_i k_i * P_i: every term's wNAF digit
   stream is interleaved over ONE shared doubling chain, all the terms'
   odd-multiple tables are normalized by ONE Montgomery batch inversion,
   and the result pays one final inversion — versus n full double-chains
   and inversions for independent [mul]s. With the short (64-bit)
   exponents of batch verification this drops the per-term cost from a
   whole ladder to roughly a table build plus bits/(w+1) mixed additions.
   Degenerate terms (low-order points whose odd-multiple table collapses,
   exactly the cases [mul] routes to the plain ladder) fall back to a
   standalone [mul] and are added in at the end, so the result always
   agrees with folding [add] over independent [mul]s. *)
let msm ctx pairs =
  let fp = ctx.fp in
  let w = 4 in
  let tcount = 1 lsl (w - 2) in
  let plain = ref Infinity in
  let terms =
    List.filter_map
      (fun (k, p) ->
        let k, p =
          if Bigint.sign k >= 0 then (k, p) else (Bigint.neg k, neg ctx p)
        in
        match p with
        | Infinity -> None
        | Affine _ when Bigint.is_zero k -> None
        | Affine { x; y } ->
            let pj = { jx = x; jy = y; jz = Fp.one fp } in
            let twop = jac_double ctx pj in
            let tbl = Array.make tcount pj in
            for i = 1 to tcount - 1 do
              tbl.(i) <- jac_add ctx tbl.(i - 1) twop
            done;
            if
              Fp.is_zero fp twop.jz
              || Array.exists (fun q -> Fp.is_zero fp q.jz) tbl
            then begin
              plain := add ctx !plain (mul ctx k p);
              None
            end
            else Some (wnaf_digits k w, tbl))
      pairs
  in
  match terms with
  | [] -> !plain
  | _ :: _ ->
      let flat = Array.concat (List.map snd terms) in
      let aff = batch_to_affine ctx flat in
      let terms =
        List.mapi
          (fun i (digits, _) -> (digits, Array.sub aff (i * tcount) tcount))
          terms
      in
      let top =
        List.fold_left
          (fun hi (digits, _) ->
            let t = ref (Array.length digits - 1) in
            while !t > 0 && digits.(!t) = 0 do
              decr t
            done;
            Stdlib.max hi !t)
          0 terms
      in
      let r = jregs_acquire fp in
      jset_infinity fp r;
      for i = top downto 0 do
        jdouble_in ctx r;
        List.iter
          (fun (digits, tbl) ->
            if i < Array.length digits then begin
              let d = digits.(i) in
              if d <> 0 then begin
                let tx, ty = tbl.((Stdlib.abs d - 1) / 2) in
                if d < 0 then begin
                  Fp.Mut.neg_into fp r.tn ty;
                  jadd_affine_in ctx r ~x2:tx ~y2:r.tn
                end
                else jadd_affine_in ctx r ~x2:tx ~y2:ty
              end
            end)
          terms
      done;
      let acc = jregs_to_affine ctx r in
      jregs_release r;
      add ctx acc !plain

(* Fixed-base precomputation (Yao/BGMW style): for a base P used with many
   scalars, store every multiple m * 2^(j*w) * P (1 <= m < 2^w) in affine
   form. A scalar multiplication is then at most d = ceil(bits/w) mixed
   additions and no doublings at all. *)
module Table = struct
  type table = {
    ctx : ctx;
    base : point;
    bits : int;
    w : int;
    (* windows.(j).(m-1) = (m * 2^(j*w)) * base in affine coordinates;
       [||] marks a degenerate base (infinity or low order) for which we
       always fall back to the generic multiplication. *)
    windows : (Fp.t * Fp.t) array array;
  }

  type t = table

  let base t = t.base

  let create ?(w = 4) ctx ~bits base =
    if w < 1 || w > 8 then invalid_arg "Curve.Table.create: bad window width";
    if bits < 1 then invalid_arg "Curve.Table.create: bad bit bound";
    match base with
    | Infinity -> { ctx; base; bits; w; windows = [||] }
    | Affine { x; y } ->
        let fp = ctx.fp in
        let d = (bits + w - 1) / w in
        let per = (1 lsl w) - 1 in
        let rows = Array.make d [||] in
        let cur = ref { jx = x; jy = y; jz = Fp.one fp } in
        for j = 0 to d - 1 do
          let row = Array.make per !cur in
          for m = 1 to per - 1 do
            row.(m) <- jac_add ctx row.(m - 1) !cur
          done;
          rows.(j) <- row;
          if j < d - 1 then
            for _ = 1 to w do
              cur := jac_double ctx !cur
            done
        done;
        if
          (* Only low-order bases can hit infinity here: for an order-q
             base with prime q > 2^w every table entry is a nonzero
             multiple of a point of odd prime order. *)
          Array.exists (Array.exists (fun q -> Fp.is_zero fp q.jz)) rows
        then { ctx; base; bits; w; windows = [||] }
        else begin
          let flat = Array.concat (Array.to_list rows) in
          let aff = batch_to_affine ctx flat in
          let windows = Array.init d (fun j -> Array.sub aff (j * per) per) in
          { ctx; base; bits; w; windows }
        end

  (* [mul] is not recursive, so [mul ctx k p] below still refers to the
     generic wNAF multiplication from the enclosing module. *)
  let mul t k =
    let negate = Bigint.sign k < 0 in
    let k = Bigint.abs k in
    if Bigint.is_zero k then Infinity
    else if Array.length t.windows = 0 || Bigint.bit_length k > t.bits then begin
      let p = mul t.ctx k t.base in
      if negate then neg t.ctx p else p
    end
    else begin
      let fp = t.ctx.fp in
      let r = jregs_acquire fp in
      jset_infinity fp r;
      for j = 0 to Array.length t.windows - 1 do
        (* Digit m = bits [j*w, (j+1)*w) of k. *)
        let m = ref 0 in
        for b = t.w - 1 downto 0 do
          m := (!m lsl 1) lor (if Bigint.test_bit k ((j * t.w) + b) then 1 else 0)
        done;
        if !m > 0 then begin
          let x2, y2 = t.windows.(j).(!m - 1) in
          jadd_affine_in t.ctx r ~x2 ~y2
        end
      done;
      let p = jregs_to_affine t.ctx r in
      jregs_release r;
      if negate then neg t.ctx p else p
    end
end

let group_order ctx = Bigint.succ (Fp.modulus ctx.fp)

let lift_x ctx x =
  let fp = ctx.fp in
  match Fp.sqrt fp (rhs ctx x) with
  | None -> None
  | Some y ->
      let y' = Fp.neg fp y in
      let a = Affine { x; y } and b = Affine { x; y = y' } in
      if Bigint.compare (Fp.to_bigint fp y) (Fp.to_bigint fp y') <= 0 then
        Some (a, b)
      else Some (b, a)

let byte_length ctx = 1 + Fp.byte_length ctx.fp

let to_bytes ctx = function
  | Infinity -> "\x00"
  | Affine { x; y } ->
      let parity = if Bigint.is_odd (Fp.to_bigint ctx.fp y) then '\x03' else '\x02' in
      String.make 1 parity ^ Fp.to_bytes ctx.fp x

let of_bytes ctx s =
  if s = "\x00" then Some Infinity
  else if String.length s <> byte_length ctx then None
  else begin
    match s.[0] with
    | ('\x02' | '\x03') as tag -> (
        match Fp.of_bytes ctx.fp (String.sub s 1 (String.length s - 1)) with
        | None -> None
        | Some x -> (
            match lift_x ctx x with
            | None -> None
            | Some (a, b) -> (
                let want_odd = tag = '\x03' in
                let parity_of = function
                  | Affine { y; _ } -> Bigint.is_odd (Fp.to_bigint ctx.fp y)
                  | Infinity -> assert false
                in
                match (parity_of a = want_odd, parity_of b = want_odd) with
                | true, _ -> Some a
                | _, true -> Some b
                | false, false -> None)))
    | _ -> None
  end

let pp ctx fmt = function
  | Infinity -> Format.pp_print_string fmt "O"
  | Affine { x; y } ->
      Format.fprintf fmt "(%a, %a)" (Fp.pp ctx.fp) x (Fp.pp ctx.fp) y
