let tag_bytes = 32

(* Authenticated symmetric encryption from a key string: mask-then-MAC. *)
let sym_encrypt ~key msg =
  let body = Hashing.Kdf.xor_mask ~seed:("rsw-sym|" ^ key) msg in
  Hashing.Hmac.mac ~key ("rsw-tag|" ^ body) ^ body

let sym_decrypt ~key ct =
  if String.length ct < tag_bytes then None
  else begin
    let tag = String.sub ct 0 tag_bytes in
    let body = String.sub ct tag_bytes (String.length ct - tag_bytes) in
    if Hashing.ct_equal tag (Hashing.Hmac.mac ~key ("rsw-tag|" ^ body)) then
      Some (Hashing.Kdf.xor_mask ~seed:("rsw-sym|" ^ key) body)
    else None
  end

module Online = struct
  type t = {
    net : Simnet.t;
    timeline : Timeline.t;
    name : string;
    seed : string;  (** the only state the server keeps *)
    mutable encryptions : int;
    mutable broadcasts : int;
  }

  let create ~net ~timeline ~name ~seed =
    { net; timeline; name; seed; encryptions = 0; broadcasts = 0 }

  let name t = t.name

  (* K_e from a one-way function of the seed; the server "does not have to
     remember anything except the seed". *)
  let epoch_key t epoch = Hashing.Hmac.mac ~key:t.seed (Printf.sprintf "epoch|%d" epoch)

  let encrypt_via_server t ~sender ~release_epoch msg callback =
    (* Round trip: the server sees sender, plaintext and release time. *)
    Simnet.send t.net ~src:sender ~dst:t.name ~kind:"encrypt-request"
      ~bytes:(String.length msg + 8)
      (fun () ->
        t.encryptions <- t.encryptions + 1;
        let ct = sym_encrypt ~key:(epoch_key t release_epoch) msg in
        Simnet.send t.net ~src:t.name ~dst:sender ~kind:"encrypt-response"
          ~bytes:(String.length ct)
          (fun () -> callback ct))

  let start_broadcasts t ~first_epoch ~epochs ~recipients =
    for e = first_epoch to first_epoch + epochs - 1 do
      Simnet.schedule t.net ~at:(Timeline.start_of t.timeline e) (fun () ->
          t.broadcasts <- t.broadcasts + 1;
          let key = epoch_key t e in
          Simnet.broadcast t.net ~src:t.name ~kind:"epoch-key"
            ~bytes:(String.length key)
            (List.map (fun (nm, h) -> (nm, fun () -> h e key)) recipients))
    done

  let decrypt ~epoch_key ct =
    match sym_decrypt ~key:epoch_key ct with Some m -> m | None -> ""

  let report t =
    {
      Baseline_report.scheme = "rivest-online";
      server_messages = t.encryptions + t.broadcasts;
      server_bytes = Simnet.total_bytes_by t.net t.name;
      server_state_bytes = String.length t.seed;
      sender_server_interactions = 2 * t.encryptions;
      receiver_server_interactions = 0;
      leaks =
        [
          Baseline_report.Sender_identity;
          Baseline_report.Message_content;
          Baseline_report.Release_time;
        ];
    }
end

module Offline_list = struct
  type t = {
    prms : Pairing.params;
    net : Simnet.t;
    timeline : Timeline.t;
    name : string;
    seed : string;
    horizon : int;
    publics : string array;  (** serialized per-epoch ElGamal public keys *)
    mutable releases : int;
  }

  let epoch_secret prms seed epoch =
    Tre.scalar_of_seed prms (Printf.sprintf "rsw-offline|%s|%d" seed epoch)

  let create prms ~net ~timeline ~name ~seed ~horizon_epochs =
    if horizon_epochs < 1 then invalid_arg "Offline_list.create: empty horizon";
    let curve = prms.Pairing.curve in
    let publics =
      Array.init horizon_epochs (fun e ->
          Curve.to_bytes curve (Curve.mul curve (epoch_secret prms seed e) prms.Pairing.g))
    in
    let bulk = Array.fold_left (fun acc s -> acc + String.length s) 0 publics in
    (* The pre-publication: one bulk broadcast of the whole future list. *)
    Simnet.broadcast net ~src:name ~kind:"future-key-list" ~bytes:bulk [];
    { prms; net; timeline; name; seed; horizon = horizon_epochs; publics; releases = 0 }

  let name t = t.name
  let horizon t = t.horizon

  let public_key_for t ~epoch =
    if epoch < 0 || epoch >= t.horizon then None else Some t.publics.(epoch)

  (* Hashed-ElGamal encryption under the published epoch public key. *)
  let encrypt t ~epoch msg =
    match public_key_for t ~epoch with
    | None -> None
    | Some pk_bytes -> (
        let curve = t.prms.Pairing.curve in
        match Curve.of_bytes curve pk_bytes with
        | None -> None
        | Some pk ->
            let r = Pairing.random_scalar t.prms (Simnet.rng t.net) in
            let u = Curve.mul curve r t.prms.Pairing.g in
            let shared = Curve.to_bytes curve (Curve.mul curve r pk) in
            let key = Hashing.Sha256.digest ("rsw-offline-kem|" ^ shared) in
            Some (Curve.to_bytes curve u ^ sym_encrypt ~key msg))

  let start_secret_releases t ~first_epoch ~epochs ~recipients =
    for e = first_epoch to first_epoch + epochs - 1 do
      Simnet.schedule t.net ~at:(Timeline.start_of t.timeline e) (fun () ->
          if e < t.horizon then begin
            t.releases <- t.releases + 1;
            let sk =
              Bigint.to_bytes_be ~pad_to:(Pairing.scalar_bytes t.prms)
                (epoch_secret t.prms t.seed e)
            in
            Simnet.broadcast t.net ~src:t.name ~kind:"epoch-secret"
              ~bytes:(String.length sk)
              (List.map (fun (nm, h) -> (nm, fun () -> h e sk)) recipients)
          end)
    done

  let decrypt t ~epoch_secret ct =
    let curve = t.prms.Pairing.curve in
    let w = Pairing.point_bytes t.prms in
    if String.length ct < w then None
    else begin
      match Curve.of_bytes curve (String.sub ct 0 w) with
      | None -> None
      | Some u ->
          let x = Bigint.of_bytes_be epoch_secret in
          let shared = Curve.to_bytes curve (Curve.mul curve x u) in
          let key = Hashing.Sha256.digest ("rsw-offline-kem|" ^ shared) in
          sym_decrypt ~key (String.sub ct w (String.length ct - w))
    end

  let prepublication_bytes t = t.horizon * Pairing.point_bytes t.prms

  let report t =
    {
      Baseline_report.scheme = "rivest-offline";
      server_messages = 1 + t.releases;
      server_bytes = Simnet.total_bytes_by t.net t.name;
      server_state_bytes = String.length t.seed;
      sender_server_interactions = 0;
      receiver_server_interactions = 0;
      leaks = [];
    }
end
