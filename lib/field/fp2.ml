type t = { re : Fp.t; im : Fp.t }

let make ~re ~im = { re; im }
let of_fp ctx x = { re = x; im = Fp.zero ctx }
let zero ctx = { re = Fp.zero ctx; im = Fp.zero ctx }
let one ctx = { re = Fp.one ctx; im = Fp.zero ctx }
let equal a b = Fp.equal a.re b.re && Fp.equal a.im b.im
let is_zero ctx a = Fp.is_zero ctx a.re && Fp.is_zero ctx a.im
let is_one ctx a = equal a (one ctx)
let add ctx a b = { re = Fp.add ctx a.re b.re; im = Fp.add ctx a.im b.im }
let sub ctx a b = { re = Fp.sub ctx a.re b.re; im = Fp.sub ctx a.im b.im }
let neg ctx a = { re = Fp.neg ctx a.re; im = Fp.neg ctx a.im }

(* Karatsuba-style 3-multiplication product with i^2 = -1. *)
let mul ctx a b =
  let t0 = Fp.mul ctx a.re b.re in
  let t1 = Fp.mul ctx a.im b.im in
  let t2 = Fp.mul ctx (Fp.add ctx a.re a.im) (Fp.add ctx b.re b.im) in
  { re = Fp.sub ctx t0 t1; im = Fp.sub ctx (Fp.sub ctx t2 t0) t1 }

let mul_fp ctx s a = { re = Fp.mul ctx s a.re; im = Fp.mul ctx s a.im }

(* (a+bi)^2 = (a+b)(a-b) + 2ab i. *)
let sqr ctx a =
  let re = Fp.mul ctx (Fp.add ctx a.re a.im) (Fp.sub ctx a.re a.im) in
  let ab = Fp.mul ctx a.re a.im in
  { re; im = Fp.add ctx ab ab }

let conj ctx a = { a with im = Fp.neg ctx a.im }
let norm ctx a = Fp.add ctx (Fp.sqr ctx a.re) (Fp.sqr ctx a.im)

let inv ctx a =
  let n = norm ctx a in
  if Fp.is_zero ctx n then raise Division_by_zero;
  let ninv = Fp.inv ctx n in
  { re = Fp.mul ctx a.re ninv; im = Fp.neg ctx (Fp.mul ctx a.im ninv) }

let pow_binary ctx base n =
  let base, n =
    if Bigint.sign n >= 0 then (base, n) else (inv ctx base, Bigint.neg n)
  in
  let bits = Bigint.bit_length n in
  let acc = ref (one ctx) in
  for i = bits - 1 downto 0 do
    acc := sqr ctx !acc;
    if Bigint.test_bit n i then acc := mul ctx !acc base
  done;
  !acc

(* GT exponentiation is on the hot path of every encryption/decryption
   (K^r, K^a) and of the final pairing exponentiation; sliding windows cut
   the multiplication count by ~2/3 at these exponent sizes. *)
let pow ctx base n =
  let base, n =
    if Bigint.sign n >= 0 then (base, n) else (inv ctx base, Bigint.neg n)
  in
  Modarith.window_pow ~one:(one ctx) ~mul:(mul ctx) ~sqr:(sqr ctx) base n

let to_bytes ctx a = Fp.to_bytes ctx a.re ^ Fp.to_bytes ctx a.im

let of_bytes ctx s =
  let w = Fp.byte_length ctx in
  if String.length s <> 2 * w then None
  else begin
    match (Fp.of_bytes ctx (String.sub s 0 w), Fp.of_bytes ctx (String.sub s w w)) with
    | Some re, Some im -> Some { re; im }
    | _ -> None
  end

let pp ctx fmt a =
  Format.fprintf fmt "(%a + %a*i)" (Fp.pp ctx) a.re (Fp.pp ctx) a.im
