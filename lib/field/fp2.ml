(* GF(p^2) = GF(p)[i]/(i^2 + 1) on the fixed-limb kernels.

   Multiplication and squaring run a Karatsuba-style 3-product /
   2-product schedule with LAZY REDUCTION: the cross terms are
   accumulated as full double-width integers and each output coefficient
   pays exactly one Montgomery reduction, instead of one reduction per
   base-field multiplication. The identities need headroom — unreduced
   sums of two residues in k limbs, differences kept non-negative by a
   +p^2 offset, every reduction input below p*R — which
   [Limbs.lazy_ok] guarantees (4p <= R; true for every named parameter
   set). Contexts without the headroom fall back to the plain reduced
   formulas; both paths yield canonical coefficients, hence bit-identical
   results.

   For mul, with w0 = re_a*re_b, w1 = im_a*im_b (wide, < p^2) and
   w2 = (re_a + im_a)(re_b + im_b) taken over UNREDUCED sums (< 4p^2):
     im = redc(w2 - w0 - w1)        (exact integer, in [0, 2p^2))
     re = redc(w0 + p^2 - w1)       (offset keeps it non-negative)
   For sqr, with u = re + (p - im) < 2p and v = re + im < 2p:
     re = redc(u * v)               (u*v = re^2 - im^2 + p*(re+im))
     im = redc(2 * (re*im))
   All inputs to redc are < 4p^2 <= p*R. *)

type t = { re : Fp.t; im : Fp.t }

let make ~re ~im = { re; im }
let of_fp ctx x = { re = x; im = Fp.zero ctx }
let zero ctx = { re = Fp.zero ctx; im = Fp.zero ctx }
let one ctx = { re = Fp.one ctx; im = Fp.zero ctx }
let equal a b = Fp.equal a.re b.re && Fp.equal a.im b.im
let is_zero ctx a = Fp.is_zero ctx a.re && Fp.is_zero ctx a.im
let is_one ctx a = equal a (one ctx)
let add ctx a b = { re = Fp.add ctx a.re b.re; im = Fp.add ctx a.im b.im }
let sub ctx a b = { re = Fp.sub ctx a.re b.re; im = Fp.sub ctx a.im b.im }
let neg ctx a = { re = Fp.neg ctx a.re; im = Fp.neg ctx a.im }

(* Per-domain scratch for the lazy pipeline: two unreduced-sum buffers
   and three wide accumulators, grown on demand and bounded by the
   current context's limb count. Disjoint from the {!Limbs} internal
   scratch, so the kernels called here never clobber it. *)
type scratch = {
  mutable s1 : int array;
  mutable s2 : int array;
  mutable w0 : int array;
  mutable w1 : int array;
  mutable w2 : int array;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { s1 = [||]; s2 = [||]; w0 = [||]; w1 = [||]; w2 = [||] })

let scratch kern =
  let k = Limbs.limb_count kern in
  let s = Domain.DLS.get scratch_key in
  if Array.length s.s1 < k then begin
    s.s1 <- Array.make k 0;
    s.s2 <- Array.make k 0
  end;
  if Array.length s.w0 < (2 * k) + 2 then begin
    s.w0 <- Array.make ((2 * k) + 2) 0;
    s.w1 <- Array.make ((2 * k) + 2) 0;
    s.w2 <- Array.make ((2 * k) + 2) 0
  end;
  s

(* Reduced-formula reference paths (also the fallback when the modulus
   leaves no lazy-reduction headroom). *)
let mul_plain ctx a b =
  let t0 = Fp.mul ctx a.re b.re in
  let t1 = Fp.mul ctx a.im b.im in
  let t2 = Fp.mul ctx (Fp.add ctx a.re a.im) (Fp.add ctx b.re b.im) in
  { re = Fp.sub ctx t0 t1; im = Fp.sub ctx (Fp.sub ctx t2 t0) t1 }

let sqr_plain ctx a =
  let re = Fp.mul ctx (Fp.add ctx a.re a.im) (Fp.sub ctx a.re a.im) in
  let ab = Fp.mul ctx a.re a.im in
  { re; im = Fp.add ctx ab ab }

(* Lazy-reduction product into caller buffers; [dre]/[dim] may alias the
   coefficient buffers of [a] and [b] (all reads happen in the wide
   phase, before either destination is written). *)
let mul_lazy_into ctx dre dim a b =
  let kern = Fp.kernel ctx in
  let s = scratch kern in
  Limbs.add_nored_into kern s.s1 a.re a.im;
  Limbs.add_nored_into kern s.s2 b.re b.im;
  Limbs.mul_wide_into kern s.w0 a.re b.re;
  Limbs.mul_wide_into kern s.w1 a.im b.im;
  Limbs.mul_wide_into kern s.w2 s.s1 s.s2;
  Limbs.wide_sub_into kern s.w2 s.w2 s.w0;
  Limbs.wide_sub_into kern s.w2 s.w2 s.w1;
  Limbs.redc_into kern dim s.w2;
  Limbs.wide_add_m2_into kern s.w0;
  Limbs.wide_sub_into kern s.w0 s.w0 s.w1;
  Limbs.redc_into kern dre s.w0

let sqr_lazy_into ctx dre dim a =
  let kern = Fp.kernel ctx in
  let s = scratch kern in
  (* u = re + (p - im), v = re + im; both < 2p, unreduced. *)
  Limbs.neg_into kern s.s1 a.im;
  Limbs.add_nored_into kern s.s1 a.re s.s1;
  Limbs.add_nored_into kern s.s2 a.re a.im;
  Limbs.mul_wide_into kern s.w1 a.re a.im;
  Limbs.mul_wide_into kern s.w0 s.s1 s.s2;
  Limbs.redc_into kern dre s.w0;
  Limbs.wide_double_into kern s.w1;
  Limbs.redc_into kern dim s.w1

let mul ctx a b =
  let kern = Fp.kernel ctx in
  if Limbs.lazy_ok kern then begin
    let dre = Limbs.alloc kern and dim = Limbs.alloc kern in
    mul_lazy_into ctx dre dim a b;
    { re = dre; im = dim }
  end
  else mul_plain ctx a b

let sqr ctx a =
  let kern = Fp.kernel ctx in
  if Limbs.lazy_ok kern then begin
    let dre = Limbs.alloc kern and dim = Limbs.alloc kern in
    sqr_lazy_into ctx dre dim a;
    { re = dre; im = dim }
  end
  else sqr_plain ctx a

let mul_fp ctx s a = { re = Fp.mul ctx s a.re; im = Fp.mul ctx s a.im }
let conj ctx a = { a with im = Fp.neg ctx a.im }
let norm ctx a = Fp.add ctx (Fp.sqr ctx a.re) (Fp.sqr ctx a.im)

let inv ctx a =
  let n = norm ctx a in
  if Fp.is_zero ctx n then raise Division_by_zero;
  let ninv = Fp.inv ctx n in
  { re = Fp.mul ctx a.re ninv; im = Fp.neg ctx (Fp.mul ctx a.im ninv) }

(* In-place face for the accumulator loops (Miller loop squarings and
   line-value products, GT exponentiation). A [Mut]-allocated value is an
   ordinary [t] whose coefficient buffers the owner may overwrite. *)
module Mut = struct
  let alloc ctx = { re = Fp.Mut.alloc ctx; im = Fp.Mut.alloc ctx }

  let set ctx dst src =
    Fp.Mut.set ctx dst.re src.re;
    Fp.Mut.set ctx dst.im src.im

  let set_one ctx dst =
    Fp.Mut.set_one ctx dst.re;
    Fp.Mut.set_zero ctx dst.im

  let mul_into ctx dst a b =
    if Limbs.lazy_ok (Fp.kernel ctx) then mul_lazy_into ctx dst.re dst.im a b
    else set ctx dst (mul_plain ctx a b)

  let sqr_into ctx dst a =
    if Limbs.lazy_ok (Fp.kernel ctx) then sqr_lazy_into ctx dst.re dst.im a
    else set ctx dst (sqr_plain ctx a)

  (* Allocation-free inversion through the limb-form extended-GCD
     kernel: n = re^2 + im^2 in scratch, one [Limbs.inv_into], two
     products. [dst] may alias [a]: [a.re] is consumed by the write to
     [dst.re], and [a.im] is read into scratch before [dst.im] is
     written. Raises [Division_by_zero] on zero, like {!inv}. *)
  let inv_into ctx dst a =
    let kern = Fp.kernel ctx in
    let s = scratch kern in
    Limbs.sqr_into kern s.s1 a.re;
    Limbs.sqr_into kern s.s2 a.im;
    Limbs.add_into kern s.s1 s.s1 s.s2;
    if Limbs.is_zero kern s.s1 then raise Division_by_zero;
    Limbs.inv_into kern s.s1 s.s1;
    Limbs.mul_into kern s.s2 a.im s.s1;
    Limbs.mul_into kern dst.re a.re s.s1;
    Limbs.neg_into kern dst.im s.s2

  (* Squaring restricted to the norm-1 (cyclotomic) subgroup
     {a + bi : a^2 + b^2 = 1} — where the final-exponentiation hard part
     lives after the easy part maps everything to norm 1. The norm
     relation buys BOTH coefficients a base-field squaring:
       a^2 - b^2 = 2a^2 - 1           (since b^2 = 1 - a^2)
       2ab = (a + b)^2 - 1            (since a^2 + b^2 = 1)
     so the whole operation is two squarings and two constant
     subtractions — no multiplication at all, where the general formula
     needs two multiplications. (The earlier version kept 2ab as a
     product, which measured no faster than the generic lazy squaring;
     the multiplication-free form is what makes the cyclotomic chain
     actually beat the reference exponentiation.) Callers must guarantee
     the precondition — for other inputs the result is simply wrong,
     which is why this lives on the [Mut] face next to the other
     discipline-bearing kernels and not in the functional API. [dst] may
     alias [a]: all reads of [a] happen before either destination
     coefficient is written. *)
  let cyclo_sqr_into ctx dst a =
    let kern = Fp.kernel ctx in
    let s = scratch kern in
    (* With only base-field SQUARINGS to do (the norm-1 identities leave
       no cross products for lazy reduction to save), the fused
       Montgomery squaring — one column pass with interleaved reduction,
       no wide buffer — beats the sqr_wide/redc pipeline's buffer
       traffic (zero-fill, carry propagation, doubling pass, copy-out)
       at the narrow widths, and needs no [lazy_ok] headroom at all.
       The column pass's short nested loops lose to the wide pipeline's
       straight-line passes once the operand outgrows ~a dozen limbs
       (measured crossover between k = 10 and k = 20), so wide widths
       keep the lazy path. *)
    if Limbs.limb_count kern <= 12 || not (Limbs.lazy_ok kern) then begin
      Limbs.add_into kern s.s1 a.re a.im;
      Limbs.sqr_into kern s.s2 a.re;
      Limbs.sqr_into kern dst.im s.s1; (* (re+im)^2, canonical *)
      Limbs.add_into kern dst.re s.s2 s.s2; (* 2 re^2 *)
      Limbs.set_one kern s.s1;
      Limbs.sub_into kern dst.re dst.re s.s1; (* re' = 2 re^2 - 1 *)
      Limbs.sub_into kern dst.im dst.im s.s1 (* im' = (re+im)^2 - 1 *)
    end
    else begin
      (* s1 = re + im < 2p unreduced; s1^2 < 4p^2 stays within the same
         redc bound the lazy products already rely on. *)
      Limbs.add_nored_into kern s.s1 a.re a.im;
      Limbs.sqr_wide_into kern s.w0 a.re;
      Limbs.sqr_wide_into kern s.w1 s.s1;
      Limbs.wide_double_into kern s.w0;
      Limbs.redc_into kern dst.re s.w0; (* 2 re^2, canonical *)
      Limbs.set_one kern s.s2;
      Limbs.sub_into kern dst.re dst.re s.s2; (* re' = 2 re^2 - 1 *)
      Limbs.redc_into kern dst.im s.w1; (* (re+im)^2, canonical *)
      Limbs.sub_into kern dst.im dst.im s.s2 (* im' = (re+im)^2 - 1 *)
    end
end

let pow_binary ctx base n =
  let base, n =
    if Bigint.sign n >= 0 then (base, n) else (inv ctx base, Bigint.neg n)
  in
  let bits = Bigint.bit_length n in
  let acc = ref (one ctx) in
  for i = bits - 1 downto 0 do
    acc := sqr ctx !acc;
    if Bigint.test_bit n i then acc := mul ctx !acc base
  done;
  !acc

(* GT exponentiation is on the hot path of every encryption/decryption
   (K^r, K^a) and of the final pairing exponentiation; sliding windows
   cut the multiplication count by ~2/3 at these exponent sizes, and the
   in-place accumulator makes the squaring chain allocation-free. *)
let pow ctx base n =
  let base, n =
    if Bigint.sign n >= 0 then (base, n) else (inv ctx base, Bigint.neg n)
  in
  let bits = Bigint.bit_length n in
  if bits = 0 then one ctx
  else if bits <= 8 then begin
    let acc = Mut.alloc ctx in
    Mut.set_one ctx acc;
    for i = bits - 1 downto 0 do
      Mut.sqr_into ctx acc acc;
      if Bigint.test_bit n i then Mut.mul_into ctx acc acc base
    done;
    acc
  end
  else begin
    let w = if bits <= 96 then 3 else if bits <= 320 then 4 else 5 in
    (* tbl.(i) = base^(2i+1). *)
    let tbl = Array.init (1 lsl (w - 1)) (fun _ -> Mut.alloc ctx) in
    Mut.set ctx tbl.(0) base;
    let b2 = Mut.alloc ctx in
    Mut.sqr_into ctx b2 base;
    for i = 1 to Array.length tbl - 1 do
      Mut.mul_into ctx tbl.(i) tbl.(i - 1) b2
    done;
    let acc = b2 (* dead once the table is built *) in
    Mut.set_one ctx acc;
    let started = ref false in
    let i = ref (bits - 1) in
    while !i >= 0 do
      if not (Bigint.test_bit n !i) then begin
        if !started then Mut.sqr_into ctx acc acc;
        decr i
      end
      else begin
        let l = ref (Stdlib.max 0 (!i - w + 1)) in
        while not (Bigint.test_bit n !l) do
          incr l
        done;
        let v = ref 0 in
        for j = !i downto !l do
          v := (!v lsl 1) lor (if Bigint.test_bit n j then 1 else 0)
        done;
        if !started then begin
          for _ = 1 to !i - !l + 1 do
            Mut.sqr_into ctx acc acc
          done;
          Mut.mul_into ctx acc acc tbl.((!v - 1) / 2)
        end
        else begin
          Mut.set ctx acc tbl.((!v - 1) / 2);
          started := true
        end;
        i := !l - 1
      end
    done;
    acc
  end

let to_bytes ctx a = Fp.to_bytes ctx a.re ^ Fp.to_bytes ctx a.im

let of_bytes ctx s =
  let w = Fp.byte_length ctx in
  if String.length s <> 2 * w then None
  else begin
    match (Fp.of_bytes ctx (String.sub s 0 w), Fp.of_bytes ctx (String.sub s w w)) with
    | Some re, Some im -> Some { re; im }
    | _ -> None
  end

let pp ctx fmt a =
  Format.fprintf fmt "(%a + %a*i)" (Fp.pp ctx) a.re (Fp.pp ctx) a.im
