(** The prime field GF(p), p an odd prime with p = 3 (mod 4).

    Elements are kept in Montgomery form internally; a [ctx] carries the
    modulus and its precomputations. The congruence condition gives both a
    square-root shortcut (x^((p+1)/4)) and i^2 = -1 irreducible for
    {!Fp2}. *)

type ctx

type t = Limbs.elt
(** A field element, tied to the [ctx] that created it: a canonical
    Montgomery residue over exactly [k] fixed limbs (see {!Limbs.elt}).
    The representation is exposed within the library so {!Fp2} can run
    the lazy-reduction wide pipeline on raw coefficients; downstream code
    must treat values as immutable and go through this interface. *)

val create : Bigint.t -> ctx
(** [create p] builds a context for GF(p).
    Raises [Invalid_argument] if [p < 3], [p] even, or [p mod 4 <> 3]
    (primality is the caller's responsibility — checked by parameter
    generation). *)

val modulus : ctx -> Bigint.t
val byte_length : ctx -> int
(** Bytes needed for a canonical serialization of one element. *)

val zero : ctx -> t
val one : ctx -> t
val of_bigint : ctx -> Bigint.t -> t
(** Any sign; reduced mod p. *)

val of_int : ctx -> int -> t
val to_bigint : ctx -> t -> Bigint.t
(** Canonical representative in [0, p). *)

val equal : t -> t -> bool
val is_zero : ctx -> t -> bool
val add : ctx -> t -> t -> t
val sub : ctx -> t -> t -> t
val neg : ctx -> t -> t
val mul : ctx -> t -> t -> t
val sqr : ctx -> t -> t
val inv : ctx -> t -> t
(** Raises [Division_by_zero] on zero. *)

val div : ctx -> t -> t -> t
val pow : ctx -> t -> Bigint.t -> t
(** Exponent may be negative (inverts the base). *)

val is_square : ctx -> t -> bool
(** Euler criterion; [true] for zero. *)

val sqrt : ctx -> t -> t option
(** A square root if one exists ([p = 3 (mod 4)] shortcut). The returned
    root is the principal one [x^((p+1)/4)]; its negation is the other. *)

val to_bytes : ctx -> t -> string
(** Fixed-width big-endian canonical encoding. *)

val of_bytes : ctx -> string -> t option
(** Rejects wrong width and non-canonical (>= p) encodings. *)

val pp : ctx -> Format.formatter -> t -> unit

(** {1 In-place kernel face}

    Destination-passing operations over caller-owned buffers, for hot
    loops that reuse storage across iterations (Jacobian scalar
    multiplication, the Miller loop). Values produced through {!Mut} are
    ordinary [t]s — canonical, so bit-identical to the functional face.
    Discipline: a loop mutates only buffers it allocated (or explicitly
    copied) itself; anything received from outside is read-only. All
    [*_into] kernels tolerate [dst] aliasing their inputs, and their
    scratch space is per-domain, so concurrent use from a [Pool] is
    race-free. *)
module Mut : sig
  val alloc : ctx -> t
  (** A fresh zero buffer. *)

  val copy : ctx -> t -> t
  val set : ctx -> t -> t -> unit
  (** [set ctx dst src] overwrites [dst] with [src]'s value. *)

  val set_zero : ctx -> t -> unit
  val set_one : ctx -> t -> unit
  val add_into : ctx -> t -> t -> t -> unit
  val sub_into : ctx -> t -> t -> t -> unit
  val neg_into : ctx -> t -> t -> unit
  val mul_into : ctx -> t -> t -> t -> unit
  val sqr_into : ctx -> t -> t -> unit
end

val kernel : ctx -> Limbs.ctx
(** The underlying fixed-limb kernel context (internal: {!Fp2}'s
    lazy-reduction pipeline and the benchmark ablations reach through
    this). *)
