(** The quadratic extension GF(p^2) = GF(p)[i]/(i^2 + 1).

    This is the target group G2 of the modified Tate pairing: pairing
    values live in the order-q subgroup of GF(p^2)*. Irreducibility of
    i^2 + 1 is guaranteed by {!Fp}'s p = 3 (mod 4) requirement. *)

type t = { re : Fp.t; im : Fp.t }

val make : re:Fp.t -> im:Fp.t -> t
val of_fp : Fp.ctx -> Fp.t -> t
(** Embed GF(p) as the real axis. *)

val zero : Fp.ctx -> t
val one : Fp.ctx -> t
val equal : t -> t -> bool
val is_zero : Fp.ctx -> t -> bool
val is_one : Fp.ctx -> t -> bool
val add : Fp.ctx -> t -> t -> t
val sub : Fp.ctx -> t -> t -> t
val neg : Fp.ctx -> t -> t
val mul : Fp.ctx -> t -> t -> t
val mul_fp : Fp.ctx -> Fp.t -> t -> t
(** Scale by a base-field element. *)

val sqr : Fp.ctx -> t -> t
val conj : Fp.ctx -> t -> t
(** Conjugation a - bi, i.e. the Frobenius x -> x^p. *)

val norm : Fp.ctx -> t -> Fp.t
(** a^2 + b^2 in GF(p). *)

val inv : Fp.ctx -> t -> t
(** Raises [Division_by_zero] on zero. *)

val pow : Fp.ctx -> t -> Bigint.t -> t
(** Sliding-window exponentiation (odd-powers table); exponent may be
    negative. *)

val pow_binary : Fp.ctx -> t -> Bigint.t -> t
(** Reference square-and-multiply ladder; kept for the equivalence tests
    and the before/after benchmark. *)

val to_bytes : Fp.ctx -> t -> string
(** Canonical [re || im] fixed-width encoding — the input to the paper's
    H2 hash. *)

val of_bytes : Fp.ctx -> string -> t option
val pp : Fp.ctx -> Format.formatter -> t -> unit

(** {1 In-place accumulator face}

    Destination-passing product/squaring over caller-owned coefficient
    buffers, for the Miller loop's f-accumulator and GT exponentiation
    chains. Same discipline as {!Fp.Mut}: a loop mutates only values it
    allocated itself; [dst] may alias the operands; results are
    canonical, hence bit-identical to the functional face. *)
module Mut : sig
  val alloc : Fp.ctx -> t
  (** A fresh zero value whose coefficient buffers the caller owns. *)

  val set : Fp.ctx -> t -> t -> unit
  val set_one : Fp.ctx -> t -> unit
  val mul_into : Fp.ctx -> t -> t -> t -> unit
  val sqr_into : Fp.ctx -> t -> t -> unit

  val inv_into : Fp.ctx -> t -> t -> unit
  (** Allocation-free inversion (norm, one limb-form extended-GCD
      inversion, two products); [dst] may alias the operand. Raises
      [Division_by_zero] on zero. *)

  val cyclo_sqr_into : Fp.ctx -> t -> t -> unit
  (** Squaring in the norm-1 (cyclotomic) subgroup: for a + bi with
      a^2 + b^2 = 1, (a + bi)^2 = (2a^2 - 1) + 2ab i — one base-field
      squaring and one multiplication, against the general formula's two
      multiplications. {b Precondition}: [norm ctx a = 1]; the caller
      (the final-exponentiation hard part, where f^(p-1) guarantees it)
      is responsible, the kernel does not check. *)
end
