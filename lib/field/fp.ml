(* GF(p) on the fixed-limb in-place kernels ({!Limbs}).

   The functional API below is unchanged: every operation allocates one
   fresh destination buffer and never mutates its arguments, so values
   stay immutable-by-convention. The {!Mut} face exposes the raw
   destination-passing kernels for the hot consumers (curve, pairing)
   that reuse buffers across loop iterations. Both faces produce
   canonical representatives, so results are bit-identical to the generic
   {!Modarith.Mont} reference whatever the path. *)

type ctx = {
  p : Bigint.t;
  kern : Limbs.ctx;
  sqrt_exp : Bigint.t; (* (p+1)/4 *)
  euler_exp : Bigint.t; (* (p-1)/2 *)
  bytes : int;
}

type t = Limbs.elt

let create p =
  if Bigint.compare p (Bigint.of_int 3) < 0 || Bigint.is_even p then
    invalid_arg "Fp.create: modulus must be odd and >= 3";
  if not (Bigint.equal (Bigint.erem p (Bigint.of_int 4)) (Bigint.of_int 3)) then
    invalid_arg "Fp.create: modulus must be 3 mod 4";
  {
    p;
    kern = Limbs.create p;
    sqrt_exp = Bigint.shift_right (Bigint.succ p) 2;
    euler_exp = Bigint.shift_right (Bigint.pred p) 1;
    bytes = (Bigint.bit_length p + 7) / 8;
  }

let kernel ctx = ctx.kern
let modulus ctx = ctx.p
let byte_length ctx = ctx.bytes
let zero ctx = Limbs.alloc ctx.kern

let one ctx =
  let d = Limbs.alloc ctx.kern in
  Limbs.set_one ctx.kern d;
  d

let of_bigint ctx v = Limbs.of_bigint ctx.kern v
let of_int ctx v = of_bigint ctx (Bigint.of_int v)
let to_bigint ctx e = Limbs.to_bigint ctx.kern e

(* Fixed width + canonical representative: structural equality is value
   equality, preserving the ctx-free signature relied on by Fp2/Curve. *)
let equal (a : t) (b : t) = a = b

let is_zero ctx e = Limbs.is_zero ctx.kern e

let add ctx a b =
  let d = Limbs.alloc ctx.kern in
  Limbs.add_into ctx.kern d a b;
  d

let sub ctx a b =
  let d = Limbs.alloc ctx.kern in
  Limbs.sub_into ctx.kern d a b;
  d

let neg ctx a =
  let d = Limbs.alloc ctx.kern in
  Limbs.neg_into ctx.kern d a;
  d

let mul ctx a b =
  let d = Limbs.alloc ctx.kern in
  Limbs.mul_into ctx.kern d a b;
  d

let sqr ctx a =
  let d = Limbs.alloc ctx.kern in
  Limbs.sqr_into ctx.kern d a;
  d

let inv ctx e =
  if is_zero ctx e then raise Division_by_zero;
  let d = Limbs.alloc ctx.kern in
  Limbs.inv_into ctx.kern d e;
  d

let div ctx a b = mul ctx a (inv ctx b)

let pow ctx e n =
  let d = Limbs.alloc ctx.kern in
  if Bigint.sign n >= 0 then Limbs.pow_into ctx.kern d e n
  else Limbs.pow_into ctx.kern d (inv ctx e) (Bigint.neg n);
  d

let is_square ctx e =
  is_zero ctx e || equal (pow ctx e ctx.euler_exp) (one ctx)

let sqrt ctx e =
  if is_zero ctx e then Some e
  else begin
    let candidate = pow ctx e ctx.sqrt_exp in
    if equal (sqr ctx candidate) e then Some candidate else None
  end

let to_bytes ctx e = Bigint.to_bytes_be ~pad_to:ctx.bytes (to_bigint ctx e)

let of_bytes ctx s =
  if String.length s <> ctx.bytes then None
  else begin
    let v = Bigint.of_bytes_be s in
    if Bigint.compare v ctx.p >= 0 then None else Some (of_bigint ctx v)
  end

let pp ctx fmt e = Bigint.pp fmt (to_bigint ctx e)

module Mut = struct
  let alloc ctx = Limbs.alloc ctx.kern

  let copy ctx src =
    let d = Limbs.alloc ctx.kern in
    Limbs.copy_into ctx.kern d src;
    d

  let set ctx dst src = Limbs.copy_into ctx.kern dst src
  let set_zero ctx dst = Limbs.set_zero ctx.kern dst
  let set_one ctx dst = Limbs.set_one ctx.kern dst
  let add_into ctx dst a b = Limbs.add_into ctx.kern dst a b
  let sub_into ctx dst a b = Limbs.sub_into ctx.kern dst a b
  let neg_into ctx dst a = Limbs.neg_into ctx.kern dst a
  let mul_into ctx dst a b = Limbs.mul_into ctx.kern dst a b
  let sqr_into ctx dst a = Limbs.sqr_into ctx.kern dst a
end
