(* Library interface: re-exports the hash/KDF toolkit and hosts the one
   primitive that belongs to no single submodule. *)

module Sha256 = Sha256
module Hmac = Hmac
module Hkdf = Hkdf
module Kdf = Kdf
module Drbg = Drbg
module Hex = Hex
module Base64 = Base64

(* Constant-time equality for every secret-derived comparison (MAC tags,
   KDF-derived key-confirmation values) in the decryption paths. A plain
   [=] on such strings leaks the position of the first mismatching byte
   through timing, which classically enables byte-at-a-time tag forgery
   against an oracle that answers many decryption attempts. [ct_equal]
   compares the full length unconditionally (an implementation detail of
   {!Hmac}, surfaced here as the library-wide primitive). *)
let ct_equal = Hmac.equal
