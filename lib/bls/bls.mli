(** Boneh–Lynn–Shacham short signatures over the GDH group (Asiacrypt'01).

    Section 5.3.1 of the paper observes that the time-bound key update
    [s*H1(T)] "is equivalent to the short signature in [BLS]" — the
    update is self-authenticating precisely because it is a BLS signature
    on the release-time string under the server's key. This module is that
    signature scheme, also usable standalone. *)

type secret
type public = { g : Curve.point; pk : Curve.point }
(** (G, sG): the signer's generator and public point — the same shape as
    the paper's server public key. *)

type signature = Curve.point
(** sigma = s * H1(m), one compressed G1 point. *)

val keygen : ?g:Curve.point -> Pairing.params -> Hashing.Drbg.t -> secret * public
(** Fresh keypair; the generator defaults to the system generator but may
    be any non-identity subgroup point (servers may pick their own). *)

val secret_of_scalar : Pairing.params -> Bigint.t -> ?g:Curve.point -> unit -> secret * public
(** Deterministic keypair from an existing scalar in [1, q-1] (used by the
    time server whose TRE secret doubles as its signing secret).
    Raises [Invalid_argument] if the scalar is out of range. *)

val sign : Pairing.params -> secret -> string -> signature

val verify : Pairing.params -> public -> string -> signature -> bool
(** e^(G, sigma) = e^(sG, H1(m)), plus subgroup membership of [sigma]. *)

val verify_batch : Pairing.params -> public -> (string * signature) list -> bool
(** Same-signer batch verification: checks
    e^(G, sum sigma_i) = e^(sG, sum H1(m_i)) — two pairings total instead
    of 2n. Messages must be distinct for the aggregation to be sound; the
    function enforces this and returns [false] on duplicates. *)

type verifier
(** Prepared pairings ({!Pairing.prepare}) for one signer's (G, pk), for
    parties that verify many of their signatures. *)

val make_verifier : Pairing.params -> public -> verifier

val verify_with : Pairing.params -> verifier -> string -> signature -> bool
(** Same result as {!verify}, skipping the Miller loops' point
    arithmetic. *)

val verify_batch_with :
  Pairing.params -> verifier -> (string * signature) list -> bool
(** Same result as {!verify_batch}. *)

val signature_bytes : Pairing.params -> int
(** Size of a serialized signature — the "short" in short signatures. *)

val signature_to_bytes : Pairing.params -> signature -> string
val signature_of_bytes : Pairing.params -> string -> signature option
(** Rejects off-curve and out-of-subgroup encodings. *)

val public_to_bytes : Pairing.params -> public -> string
val public_of_bytes : Pairing.params -> string -> public option
