(** Boneh–Lynn–Shacham short signatures over the GDH group (Asiacrypt'01).

    Section 5.3.1 of the paper observes that the time-bound key update
    [s*H1(T)] "is equivalent to the short signature in [BLS]" — the
    update is self-authenticating precisely because it is a BLS signature
    on the release-time string under the server's key. This module is that
    signature scheme, also usable standalone. *)

type secret
type public = { g : Curve.point; pk : Curve.point }
(** (G, sG): the signer's generator and public point — the same shape as
    the paper's server public key. *)

type signature = Curve.point
(** sigma = s * H1(m), one compressed G1 point. *)

val keygen : ?g:Curve.point -> Pairing.params -> Hashing.Drbg.t -> secret * public
(** Fresh keypair; the generator defaults to the system generator but may
    be any non-identity subgroup point (servers may pick their own). *)

val secret_of_scalar : Pairing.params -> Bigint.t -> ?g:Curve.point -> unit -> secret * public
(** Deterministic keypair from an existing scalar in [1, q-1] (used by the
    time server whose TRE secret doubles as its signing secret).
    Raises [Invalid_argument] if the scalar is out of range. *)

val sign : Pairing.params -> secret -> string -> signature

val verify : Pairing.params -> public -> string -> signature -> bool
(** e^(G, sigma) = e^(sG, H1(m)), plus subgroup membership of [sigma]. *)

val verify_batch :
  ?pool:Pool.t -> Pairing.params -> public -> (string * signature) list -> bool
(** Same-signer batch verification with small random exponents
    (Bellare–Garay–Rabin): checks
    e^(G, sum d_i sigma_i) = e^(sG, sum d_i H1(m_i)) — two pairings total
    instead of 2n, plus two cheap 64-bit scalar mults per item. The d_i
    are derandomized ({!Pairing.batch_exponents} keyed by signer and
    batch), which defeats cancellation attacks that fool an unweighted
    sum; duplicate messages are consequently fine. Accepts iff every item
    passes {!verify}, except with probability ~2^-64 over the exponents.
    Subgroup checks are cofactored (the Ed25519-batch convention): items
    pay only the on-curve test and ONE q-mult checks the weighted sum, so
    an off-subgroup-but-on-curve component — which the pairing cannot see
    (e^(G, c) = 1 for c of order coprime to q) and which therefore never
    authenticates anything — is rejected up to the same ~2^-64 bound
    rather than deterministically. Similarly H1's cofactor clearing is
    hoisted out of the items and paid once on the H-sum. [pool] shards
    the per-item work across domains; the verdict is identical with or
    without it. *)

type verifier
(** Prepared pairings ({!Pairing.prepare}) for one signer's (G, pk), for
    parties that verify many of their signatures. *)

val make_verifier : Pairing.params -> public -> verifier

val verify_with : Pairing.params -> verifier -> string -> signature -> bool
(** Same result as {!verify}, skipping the Miller loops' point
    arithmetic. *)

val verify_batch_with :
  ?pool:Pool.t -> Pairing.params -> verifier -> (string * signature) list -> bool
(** Same result as {!verify_batch}, amortizing the Miller-loop point
    arithmetic of the two final pairings. *)

val signature_bytes : Pairing.params -> int
(** Size of a serialized signature — one compressed point (the "short" in
    short signatures) plus the {!Codec} envelope. *)

val signature_to_bytes : Pairing.params -> signature -> string
val signature_of_bytes : Pairing.params -> string -> (signature, string) result
(** Strict {!Codec} envelope (kind [BLS SIGNATURE]). Rejects off-curve,
    out-of-subgroup and non-canonical encodings; the identity element is
    accepted only in its single canonical form. Never raises. *)

val public_to_bytes : Pairing.params -> public -> string
val public_of_bytes : Pairing.params -> string -> (public, string) result
(** Strict {!Codec} envelope (kind [BLS PUBLIC KEY]); both points must be
    non-identity subgroup members. Never raises. *)
