type secret = Bigint.t
type public = { g : Curve.point; pk : Curve.point }
type signature = Curve.point

let keypair prms s g = (s, { g; pk = Curve.mul prms.Pairing.curve s g })

let keygen ?g prms rng =
  let g = match g with Some g -> g | None -> prms.Pairing.g in
  if Curve.is_infinity g then invalid_arg "Bls.keygen: identity generator";
  keypair prms (Pairing.random_scalar prms rng) g

let secret_of_scalar prms s ?g () =
  if Bigint.sign s <= 0 || Bigint.compare s prms.Pairing.q >= 0 then
    invalid_arg "Bls.secret_of_scalar: scalar out of range";
  let g = match g with Some g -> g | None -> prms.Pairing.g in
  keypair prms s g

let sign prms secret msg =
  Curve.mul prms.Pairing.curve secret (Pairing.hash_to_g1 prms msg)

let verify prms public msg signature =
  Pairing.in_g1 prms signature
  && Pairing.pairing_equal_check prms ~lhs:(public.g, signature)
       ~rhs:(public.pk, Pairing.hash_to_g1 prms msg)

(* Both verification pairings have a fixed first argument (G and pk), so
   a verifier that checks many signatures from one signer prepares them
   once. [vkey] keys the batch-exponent derandomizer to this signer. *)
type verifier = {
  vg : Pairing.prepared;
  vpk : Pairing.prepared;
  vkey : string;
}

let key_bytes prms (public : public) =
  Curve.to_bytes prms.Pairing.curve public.g
  ^ Curve.to_bytes prms.Pairing.curve public.pk

let make_verifier prms (public : public) =
  {
    vg = Pairing.prepare prms public.g;
    vpk = Pairing.prepare prms public.pk;
    vkey = key_bytes prms public;
  }

let verify_with prms vrf msg signature =
  Pairing.in_g1 prms signature
  && Pairing.pairing_equal_check_prepared prms ~lhs:(vrf.vg, signature)
       ~rhs:(vrf.vpk, Pairing.hash_to_g1 prms msg)

(* Batch verification (Bellare–Garay–Rabin small exponents): check
   e^(G, sum d_i sig_i) = e^(pk, sum d_i H1(m_i)) for derandomized 64-bit
   exponents d_i keyed by (signer, batch). A plain unweighted sum is NOT
   sound — two tampered signatures sig_1 + D, sig_2 - D cancel — whereas
   here any tampering survives only if the adversary hits a 2^-64 linear
   relation whose coefficients re-randomize with every change. Duplicate
   messages are fine (the exponents separate them), unlike the classic
   unweighted same-signer aggregation.

   Two batch-level algebraic savings over n per-item verifications,
   beyond sharing the pairings:

   - subgroup checks are cofactored (as in Ed25519 batch verification):
     each signature pays only the cheap on-curve test, and ONE q-mult
     checks the weighted sum. A cofactor component c_i in sig_i
     survives only if sum d_i c_i = 0, a relation the adversary cannot
     aim for because the d_i re-randomize with the batch content; such
     components are invisible to the pairing (e^(G, c) = 1 for c of
     order coprime to q), so they cannot authenticate anything either.

   - cofactor clearing inside H1 commutes with the weighted sum
     (sum d_i * (h * P_i) = h * sum d_i * P_i), so each item hashes only
     to the raw curve lift and the batch pays ONE h-mult on the H-sum.

   The per-item work (on-curve check, raw H1 lift) is independent across
   items, so an optional [Pool] shards it; the weighted sums themselves
   are two multi-scalar multiplications ([Curve.msm]: one shared doubling
   chain for all the short exponents) on the caller, so the sums — and
   hence the verdict — are bit-identical to the serial path. *)
let batch_sums ?pool prms ~key pairs =
  let curve = prms.Pairing.curve in
  let seed =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "TRE-bls-batch|";
    Buffer.add_string buf key;
    List.iter
      (fun (m, s) ->
        Buffer.add_string buf (Printf.sprintf "|%d|" (String.length m));
        Buffer.add_string buf m;
        Buffer.add_string buf (Curve.to_bytes curve s))
      pairs;
    Buffer.contents buf
  in
  let ds = Pairing.batch_exponents prms ~seed (List.length pairs) in
  let weigh (m, s) =
    (Curve.on_curve curve s, s, Pairing.hash_to_g1_unclamped prms m)
  in
  let checked =
    match pool with
    | None -> List.map weigh pairs
    | Some pool -> Pool.map pool weigh pairs
  in
  if List.exists (fun (ok, _, _) -> not ok) checked then None
  else begin
    let sum_sig = Curve.msm curve (List.map2 (fun d (_, s, _) -> (d, s)) ds checked) in
    let sum_h_raw =
      Curve.msm curve (List.map2 (fun d (_, _, h) -> (d, h)) ds checked)
    in
    (* One aggregate subgroup check, one aggregate cofactor clearing. *)
    if not (Pairing.in_g1 prms sum_sig) then None
    else Some (sum_sig, Curve.mul curve prms.Pairing.cofactor sum_h_raw)
  end

let verify_batch ?pool prms public pairs =
  if pairs = [] then true
  else begin
    match batch_sums ?pool prms ~key:(key_bytes prms public) pairs with
    | None -> false
    | Some (sum_sig, sum_h) ->
        Pairing.pairing_equal_check prms ~lhs:(public.g, sum_sig)
          ~rhs:(public.pk, sum_h)
  end

let verify_batch_with ?pool prms vrf pairs =
  if pairs = [] then true
  else begin
    match batch_sums ?pool prms ~key:vrf.vkey pairs with
    | None -> false
    | Some (sum_sig, sum_h) ->
        Pairing.pairing_equal_check_prepared prms ~lhs:(vrf.vg, sum_sig)
          ~rhs:(vrf.vpk, sum_h)
  end

let signature_bytes prms = Codec.header_bytes + Pairing.point_bytes prms

let signature_to_bytes prms s =
  Codec.encode prms Codec.Bls_signature (fun buf -> Codec.add_point prms buf s)

(* A BLS signature on a message outside H1's image can legitimately be
   the identity only with negligible probability, but sigma = O is a
   well-formed group element; [Codec.read_point] keeps accepting its
   canonical encoding (and only that one). *)
let signature_of_bytes prms bytes =
  Codec.decode prms Codec.Bls_signature bytes (fun r ->
      Codec.read_point ~what:"signature" prms r)

let public_to_bytes prms pub =
  Codec.encode prms Codec.Bls_public (fun buf ->
      Codec.add_point prms buf pub.g;
      Codec.add_point prms buf pub.pk)

let public_of_bytes prms bytes =
  Codec.decode prms Codec.Bls_public bytes (fun r ->
      let g = Codec.read_g1 ~what:"generator G" prms r in
      let pk = Codec.read_g1 ~what:"public point sG" prms r in
      { g; pk })
