type secret = Bigint.t
type public = { g : Curve.point; pk : Curve.point }
type signature = Curve.point

let keypair prms s g = (s, { g; pk = Curve.mul prms.Pairing.curve s g })

let keygen ?g prms rng =
  let g = match g with Some g -> g | None -> prms.Pairing.g in
  if Curve.is_infinity g then invalid_arg "Bls.keygen: identity generator";
  keypair prms (Pairing.random_scalar prms rng) g

let secret_of_scalar prms s ?g () =
  if Bigint.sign s <= 0 || Bigint.compare s prms.Pairing.q >= 0 then
    invalid_arg "Bls.secret_of_scalar: scalar out of range";
  let g = match g with Some g -> g | None -> prms.Pairing.g in
  keypair prms s g

let sign prms secret msg =
  Curve.mul prms.Pairing.curve secret (Pairing.hash_to_g1 prms msg)

let verify prms public msg signature =
  Pairing.in_g1 prms signature
  && Pairing.pairing_equal_check prms ~lhs:(public.g, signature)
       ~rhs:(public.pk, Pairing.hash_to_g1 prms msg)

(* Both verification pairings have a fixed first argument (G and pk), so
   a verifier that checks many signatures from one signer prepares them
   once. *)
type verifier = { vg : Pairing.prepared; vpk : Pairing.prepared }

let make_verifier prms (public : public) =
  { vg = Pairing.prepare prms public.g; vpk = Pairing.prepare prms public.pk }

let verify_with prms vrf msg signature =
  Pairing.in_g1 prms signature
  && Pairing.pairing_equal_check_prepared prms ~lhs:(vrf.vg, signature)
       ~rhs:(vrf.vpk, Pairing.hash_to_g1 prms msg)

let batch_sums prms pairs =
  let curve = prms.Pairing.curve in
  let messages = List.map fst pairs in
  let distinct = List.sort_uniq String.compare messages in
  if List.length distinct <> List.length messages then None
  else if not (List.for_all (fun (_, s) -> Pairing.in_g1 prms s) pairs) then None
  else begin
    let sum_sig =
      List.fold_left (fun acc (_, s) -> Curve.add curve acc s) Curve.infinity pairs
    in
    let sum_h =
      List.fold_left
        (fun acc (m, _) -> Curve.add curve acc (Pairing.hash_to_g1 prms m))
        Curve.infinity pairs
    in
    Some (sum_sig, sum_h)
  end

let verify_batch prms public pairs =
  if pairs = [] then true
  else begin
    match batch_sums prms pairs with
    | None -> false
    | Some (sum_sig, sum_h) ->
        Pairing.pairing_equal_check prms ~lhs:(public.g, sum_sig)
          ~rhs:(public.pk, sum_h)
  end

let verify_batch_with prms vrf pairs =
  if pairs = [] then true
  else begin
    match batch_sums prms pairs with
    | None -> false
    | Some (sum_sig, sum_h) ->
        Pairing.pairing_equal_check_prepared prms ~lhs:(vrf.vg, sum_sig)
          ~rhs:(vrf.vpk, sum_h)
  end

let signature_bytes prms = Pairing.point_bytes prms
let signature_to_bytes prms s = Curve.to_bytes prms.Pairing.curve s

let signature_of_bytes prms bytes =
  match Curve.of_bytes prms.Pairing.curve bytes with
  | Some p when Pairing.in_g1 prms p -> Some p
  | Some _ | None -> None

let public_to_bytes prms pub =
  Curve.to_bytes prms.Pairing.curve pub.g ^ Curve.to_bytes prms.Pairing.curve pub.pk

let public_of_bytes prms bytes =
  let w = Pairing.point_bytes prms in
  if String.length bytes <> 2 * w then None
  else begin
    let curve = prms.Pairing.curve in
    match
      ( Curve.of_bytes curve (String.sub bytes 0 w),
        Curve.of_bytes curve (String.sub bytes w w) )
    with
    | Some g, Some pk when Pairing.in_g1 prms g && Pairing.in_g1 prms pk ->
        Some { g; pk }
    | _ -> None
  end
