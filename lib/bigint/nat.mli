(** Natural-number (magnitude) arithmetic on little-endian limb arrays.

    This is the machine room of {!Bigint}; the representation is exposed
    within the library so {!Modarith} can run limb-level Montgomery
    multiplication, but downstream code should use {!Bigint}.

    Representation invariant: base-[2^31] little-endian limbs, each in
    [0, 2^31), with no trailing (most-significant) zero limb; zero is the
    empty array. All functions return normalized values and do not mutate
    their arguments. *)

type t = int array

val base_bits : int
(** 31. *)

val base : int
(** [2^31]. *)

val zero : t
val one : t
val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int_opt : t -> int option
(** [None] if the value exceeds [max_int]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val num_limbs : t -> int
val bit_length : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

val test_bit : t -> int -> bool

val add : t -> t -> t
val add_small : t -> int -> t
(** Second argument must be in [0, 2^31). *)

val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val mul : t -> t -> t
(** Karatsuba above an internal threshold, schoolbook below. *)

val mul_small : t -> int -> t
(** Second argument must be in [0, 2^31). *)

val sqr : t -> t
(** Dedicated squaring — each cross product computed once and doubled by a
    single shift (Karatsuba-on-squarings above the same threshold as
    {!mul}). Always equal to [mul a a], measurably cheaper. *)

val divmod : t -> t -> t * t
(** Knuth Algorithm D. Raises [Division_by_zero] on zero divisor. *)

val divmod_small : t -> int -> t * int
(** Divisor in [1, 2^31). *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val of_bytes_be : string -> t
val to_bytes_be : ?pad_to:int -> t -> string
(** Minimal big-endian encoding, left-zero-padded to [pad_to] if given
    (raises [Invalid_argument] if the value does not fit). *)
