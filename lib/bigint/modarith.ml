let gcd a b =
  let rec go a b = if Bigint.is_zero b then a else go b (Bigint.rem a b) in
  go (Bigint.abs a) (Bigint.abs b)

let egcd a b =
  (* Iterative extended Euclid on the magnitudes, signs fixed up at the end. *)
  let rec go r0 r1 x0 x1 y0 y1 =
    if Bigint.is_zero r1 then (r0, x0, y0)
    else begin
      let q, r2 = Bigint.divmod r0 r1 in
      go r1 r2 x1 (Bigint.sub x0 (Bigint.mul q x1)) y1 (Bigint.sub y0 (Bigint.mul q y1))
    end
  in
  let g, x, y = go (Bigint.abs a) (Bigint.abs b) Bigint.one Bigint.zero Bigint.zero Bigint.one in
  let x = if Bigint.sign a < 0 then Bigint.neg x else x in
  let y = if Bigint.sign b < 0 then Bigint.neg y else y in
  (g, x, y)

let invmod a m =
  let m = Bigint.abs m in
  let g, x, _ = egcd (Bigint.erem a m) m in
  if not (Bigint.equal g Bigint.one) then raise Division_by_zero;
  Bigint.erem x m

let jacobi a n =
  if Bigint.sign n <= 0 || Bigint.is_even n then
    invalid_arg "Modarith.jacobi: n must be odd positive";
  let rec go a n acc =
    let a = Bigint.erem a n in
    if Bigint.is_zero a then if Bigint.equal n Bigint.one then acc else 0
    else begin
      (* Pull out factors of two: (2/n) = -1 iff n ≡ 3,5 (mod 8). *)
      let rec strip a flips =
        if Bigint.is_even a then strip (Bigint.shift_right a 1) (flips + 1)
        else (a, flips)
      in
      let a, flips = strip a 0 in
      let n_mod8 = Bigint.to_int_exn (Bigint.erem n (Bigint.of_int 8)) in
      let acc = if flips land 1 = 1 && (n_mod8 = 3 || n_mod8 = 5) then -acc else acc in
      (* Quadratic reciprocity. *)
      let a_mod4 = Bigint.to_int_exn (Bigint.erem a (Bigint.of_int 4)) in
      let acc = if a_mod4 = 3 && n_mod8 land 3 = 3 then -acc else acc in
      go n a acc
    end
  in
  go a n 1

(* Generic left-to-right sliding-window exponentiation with a table of odd
   powers, shared by Montgomery exponentiation ({!Mont.pow}) and GT
   exponentiation (Fp2). For a t-bit exponent and window w it costs
   ~t squarings + t/(w+1) multiplications + 2^(w-1) table entries,
   against t + t/2 multiplications for the binary ladder. *)
let window_pow ~one ~mul ~sqr base e =
  if Bigint.sign e < 0 then invalid_arg "Modarith.window_pow: negative exponent";
  let n = Bigint.bit_length e in
  if n = 0 then one
  else if n <= 8 then begin
    (* Tiny exponents: the table would cost more than it saves. *)
    let acc = ref one in
    for i = n - 1 downto 0 do
      acc := sqr !acc;
      if Bigint.test_bit e i then acc := mul !acc base
    done;
    !acc
  end
  else begin
    let w = if n <= 96 then 3 else if n <= 320 then 4 else 5 in
    (* tbl.(i) = base^(2i+1). *)
    let tbl = Array.make (1 lsl (w - 1)) base in
    let b2 = sqr base in
    for i = 1 to Array.length tbl - 1 do
      tbl.(i) <- mul tbl.(i - 1) b2
    done;
    let acc = ref one in
    let started = ref false in
    let i = ref (n - 1) in
    while !i >= 0 do
      if not (Bigint.test_bit e !i) then begin
        if !started then acc := sqr !acc;
        decr i
      end
      else begin
        (* Largest window [l, i] ending on a set bit (so its value is odd). *)
        let l = ref (Stdlib.max 0 (!i - w + 1)) in
        while not (Bigint.test_bit e !l) do
          incr l
        done;
        let v = ref 0 in
        for j = !i downto !l do
          v := (!v lsl 1) lor (if Bigint.test_bit e j then 1 else 0)
        done;
        if !started then begin
          for _ = 1 to !i - !l + 1 do
            acc := sqr !acc
          done;
          acc := mul !acc tbl.((!v - 1) / 2)
        end
        else begin
          acc := tbl.((!v - 1) / 2);
          started := true
        end;
        i := !l - 1
      end
    done;
    !acc
  end

module Mont = struct
  type ctx = {
    m : Bigint.t;
    m_limbs : Nat.t;
    k : int; (* limb count of m *)
    m0_inv_neg : int; (* -m^{-1} mod 2^31 *)
    r_mod_m : Nat.t; (* R mod m, the Montgomery one *)
    r2_mod_m : Nat.t; (* R^2 mod m, for of_bigint *)
    r3_mod_m : Nat.t; (* R^3 mod m, for single-conversion inversion *)
  }

  type elt = Nat.t (* value * R mod m, k limbs semantically, normalized *)

  let limb_mask = Nat.base - 1

  (* Inverse of odd [v] mod 2^31 by Newton iteration; 5 steps suffice. *)
  let inv_limb v =
    let x = ref v in
    for _ = 1 to 5 do
      x := !x * (2 - (v * !x)) land limb_mask
    done;
    !x land limb_mask

  let create m =
    if Bigint.sign m <= 0 || Bigint.is_even m || Bigint.compare m (Bigint.of_int 3) < 0
    then invalid_arg "Mont.create: modulus must be odd and >= 3";
    let m_limbs = Bigint.magnitude m in
    let k = Nat.num_limbs m_limbs in
    let m0_inv_neg = Nat.base - inv_limb m_limbs.(0) land limb_mask in
    let r = Nat.shift_left Nat.one (k * Nat.base_bits) in
    let r_mod_m = snd (Nat.divmod r m_limbs) in
    let r2_mod_m = snd (Nat.divmod (Nat.sqr r_mod_m) m_limbs) in
    let r3_mod_m = snd (Nat.divmod (Nat.mul r2_mod_m r_mod_m) m_limbs) in
    { m; m_limbs; k; m0_inv_neg = m0_inv_neg land limb_mask; r_mod_m; r2_mod_m; r3_mod_m }

  let modulus ctx = ctx.m

  (* CIOS Montgomery multiplication: returns a*b*R^{-1} mod m. *)
  let mont_mul ctx (a : Nat.t) (b : Nat.t) : Nat.t =
    let k = ctx.k in
    let m = ctx.m_limbs in
    let t = Array.make (k + 2) 0 in
    let la = Array.length a and lb = Array.length b in
    for i = 0 to k - 1 do
      let ai = if i < la then a.(i) else 0 in
      (* t += ai * b *)
      let carry = ref 0 in
      for j = 0 to k - 1 do
        let bj = if j < lb then b.(j) else 0 in
        let s = t.(j) + (ai * bj) + !carry in
        t.(j) <- s land limb_mask;
        carry := s lsr Nat.base_bits
      done;
      let s = t.(k) + !carry in
      t.(k) <- s land limb_mask;
      t.(k + 1) <- t.(k + 1) + (s lsr Nat.base_bits);
      (* u makes t divisible by the base; shift down one limb. *)
      let u = t.(0) * ctx.m0_inv_neg land limb_mask in
      let carry = ref ((t.(0) + (u * m.(0))) lsr Nat.base_bits) in
      for j = 1 to k - 1 do
        let s = t.(j) + (u * m.(j)) + !carry in
        t.(j - 1) <- s land limb_mask;
        carry := s lsr Nat.base_bits
      done;
      let s = t.(k) + !carry in
      t.(k - 1) <- s land limb_mask;
      let s2 = t.(k + 1) + (s lsr Nat.base_bits) in
      t.(k) <- s2 land limb_mask;
      t.(k + 1) <- s2 lsr Nat.base_bits
    done;
    let result = Array.sub t 0 (k + 1) in
    let result =
      let r = result in
      let rec norm i = if i > 0 && r.(i - 1) = 0 then norm (i - 1) else i in
      Array.sub r 0 (norm (k + 1))
    in
    if Nat.compare result m >= 0 then Nat.sub result m else result

  let of_bigint ctx v =
    let v = Bigint.erem v ctx.m in
    mont_mul ctx (Bigint.magnitude v) ctx.r2_mod_m

  let to_bigint ctx (e : elt) = Bigint.of_nat (mont_mul ctx e Nat.one)
  let zero _ctx : elt = Nat.zero
  let one ctx : elt = ctx.r_mod_m
  let equal (a : elt) (b : elt) = Nat.equal a b

  let add ctx a b =
    let s = Nat.add a b in
    if Nat.compare s ctx.m_limbs >= 0 then Nat.sub s ctx.m_limbs else s

  let sub ctx a b =
    if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a ctx.m_limbs) b

  let neg ctx a = if Nat.is_zero a then a else Nat.sub ctx.m_limbs a
  let mul ctx a b = mont_mul ctx a b
  let sqr ctx a = mont_mul ctx a a

  let pow_binary ctx base e =
    if Bigint.sign e < 0 then invalid_arg "Mont.pow: negative exponent";
    let n = Bigint.bit_length e in
    let acc = ref (one ctx) in
    for i = n - 1 downto 0 do
      acc := sqr ctx !acc;
      if Bigint.test_bit e i then acc := mul ctx !acc base
    done;
    !acc

  let pow ctx base e =
    if Bigint.sign e < 0 then invalid_arg "Mont.pow: negative exponent";
    window_pow ~one:(one ctx) ~mul:(mul ctx) ~sqr:(sqr ctx) base e

  (* Single-conversion inversion: for a = x*R, [invmod] of the plain
     integer value of the limbs gives (x*R)^{-1} = x^{-1} R^{-1} mod m;
     one Montgomery multiplication by R^3 lands on x^{-1} R directly —
     no decode/encode round trip (which cost two extra Montgomery
     multiplications and two erem passes per inversion). *)
  let inv ctx a =
    let v = invmod (Bigint.of_nat a) ctx.m in
    mont_mul ctx (Bigint.magnitude v) ctx.r3_mod_m
end

let powmod b e m =
  if Bigint.is_zero m then raise Division_by_zero;
  let m = Bigint.abs m in
  if Bigint.equal m Bigint.one then Bigint.zero
  else begin
    let b = if Bigint.sign e < 0 then invmod b m else Bigint.erem b m in
    let e = Bigint.abs e in
    if Bigint.is_odd m && Bigint.compare m (Bigint.of_int 3) >= 0 then begin
      let ctx = Mont.create m in
      Mont.to_bigint ctx (Mont.pow ctx (Mont.of_bigint ctx b) e)
    end
    else begin
      (* Even modulus: plain square-and-multiply with division. *)
      let n = Bigint.bit_length e in
      let acc = ref Bigint.one in
      for i = n - 1 downto 0 do
        acc := Bigint.erem (Bigint.sqr !acc) m;
        if Bigint.test_bit e i then acc := Bigint.erem (Bigint.mul !acc b) m
      done;
      !acc
    end
  end
