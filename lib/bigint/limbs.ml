(* Fixed-width, destination-passing Montgomery field kernels.

   Where {!Modarith.Mont} works over normalized variable-length {!Nat}
   limbs — allocating a scratch accumulator, two [Array.sub] copies and a
   normalization pass per multiplication — this module freezes the limb
   count [k] at context creation and runs every operation over flat
   [int array] buffers of exactly [k] limbs that the *caller* provides.
   The hot kernels ([mul_into], [sqr_into], [add_into], [sub_into],
   [neg_into]) allocate nothing: their working space comes from a
   per-domain scratch record ({!Domain.DLS}), so concurrent use from a
   {!Pool} of domains is race-free by construction.

   The limb base is 2^26, not {!Nat}'s 2^31, and that choice is the
   performance core of the module: 26-bit limbs make every partial
   product fit in 52 bits, so a 62-bit native int can accumulate hundreds
   of them before overflowing. Multiplication and Montgomery reduction
   therefore run *product scanning with delayed carries*: the inner loops
   are pure multiply-accumulate with no carry extraction, which breaks
   the loop-carried add->mask->shift dependency chain that serializes a
   word-by-word CIOS at base 2^31. Carries are propagated in one cheap
   linear pass at the end. (Bound: each wide position accumulates at most
   2k products of < 2^52 plus one carry, safe in 62 bits for any k up to
   ~500 — far beyond the 20 limbs of a 512-bit modulus.)

   Representation invariant: an [elt] is exactly [k] base-2^26 limbs,
   little-endian, holding the canonical Montgomery residue value*R mod m
   in [0, m), R = 2^(26k). Because every kernel fully reduces its result,
   the representation of a given field value is unique — which is what
   makes "bit-identical to the generic {!Modarith.Mont} reference" a
   meaningful and testable contract regardless of the internal algorithm.

   Conditional subtractions are branchless: borrows are extracted from
   the sign bit of the 63-bit native int ([(d lsr 62) land 1]) and the
   subtrahend is selected with a full-width mask, so the reduced-kernel
   limb loops have no data-dependent branches.

   The limb loops use unchecked array accesses ([Array.unsafe_get]/
   [unsafe_set] — declared [external] so they inline on a non-flambda
   compiler): every index is bounded by [ctx.k] (or the wide size [2k+2])
   and every buffer is at least that long by the [elt] invariant and the
   scratch-growth rule, so the checks are provably dead — but the
   compiler cannot see that, and they cost ~30% of the inner loops. *)

external ( .!() ) : int array -> int -> int = "%array_unsafe_get"
external ( .!()<- ) : int array -> int -> int -> unit = "%array_unsafe_set"

(* Kernel limb base: 26 bits (see the header comment for why not 31). *)
let kb = 26
let kbase = 1 lsl kb
let kmask = kbase - 1

type ctx = {
  m : Bigint.t;
  ml : int array; (* the modulus, exactly k limbs *)
  k : int;
  m0_inv_neg : int; (* -m^{-1} mod 2^26 *)
  one_m : int array; (* R mod m — the Montgomery one, k limbs *)
  r2 : int array; (* R^2 mod m, k limbs *)
  r3 : int array; (* R^3 mod m, k limbs: single-conversion inversion *)
  m2w : int array; (* m^2 as a wide (2k+2) buffer, for lazy reduction *)
  lazy_ok : bool; (* 4m <= R: unreduced sums of two residues fit k limbs
                     and every lazy-reduction input stays below m*R *)
}

type elt = int array

(* --- per-domain scratch ---

   One grow-only record per domain: the wide (2k+2 limb) accumulator
   shared by [mul_into] and [sqr_into], plus the four k-limb state
   buffers of the binary-extgcd inversion ([inv_into]). [mul_into] never
   calls [inv_into] or vice versa within one operation (the inversion's
   final Montgomery multiply runs after the extgcd state is dead), and
   the Fp2 lazy pipeline brings its own wide buffers, so the slots never
   conflict. Loops are bounded by [ctx.k], never by the array length, so
   a scratch grown for a large context serves smaller ones unchanged. *)
type scratch = {
  mutable ws : int array;
  mutable gu : int array; (* extgcd: |value| operand *)
  mutable gv : int array; (* extgcd: modulus operand *)
  mutable gr : int array; (* extgcd: Bezout coefficient of gu *)
  mutable gs : int array; (* extgcd: Bezout coefficient of gv *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { ws = [||]; gu = [||]; gv = [||]; gr = [||]; gs = [||] })

let scratch k =
  let s = Domain.DLS.get scratch_key in
  if Array.length s.ws < (2 * k) + 2 then s.ws <- Array.make ((2 * k) + 2) 0;
  s

let inv_scratch k =
  let s = Domain.DLS.get scratch_key in
  if Array.length s.gu < k then begin
    s.gu <- Array.make k 0;
    s.gv <- Array.make k 0;
    s.gr <- Array.make k 0;
    s.gs <- Array.make k 0
  end;
  s

(* --- raw helpers over caller-sized buffers --- *)

let alloc ctx = Array.make ctx.k 0
let wide_alloc ctx = Array.make ((2 * ctx.k) + 2) 0
let limb_count ctx = ctx.k
let modulus ctx = ctx.m
let lazy_ok ctx = ctx.lazy_ok

let copy_into ctx dst src = Array.blit src 0 dst 0 ctx.k

let set_zero ctx dst = Array.fill dst 0 ctx.k 0
let set_one ctx dst = copy_into ctx dst ctx.one_m

let is_zero ctx a =
  let orv = ref 0 in
  for i = 0 to ctx.k - 1 do
    orv := !orv lor a.(i)
  done;
  !orv = 0

let equal ctx a b =
  let d = ref 0 in
  for i = 0 to ctx.k - 1 do
    d := !d lor (a.(i) lxor b.(i))
  done;
  !d = 0

(* dst <- dst - (m masked by -take); branchless second half of the
   conditional subtraction (the caller has already decided [take]). *)
let masked_sub_in ctx dst take =
  let k = ctx.k and m = ctx.ml in
  let mask = -take in
  let bor = ref 0 in
  for i = 0 to k - 1 do
    let d = dst.!(i) - (m.!(i) land mask) - !bor in
    bor := (d lsr 62) land 1;
    dst.!(i) <- d land kmask
  done

(* dst (k limbs, value dst + extra*R) minus m if that is >= m; branchless.
   Requires dst + extra*R < 2m. *)
let cond_sub_in ctx dst extra =
  let k = ctx.k and m = ctx.ml in
  let bor = ref 0 in
  for i = 0 to k - 1 do
    let d = dst.!(i) - m.!(i) - !bor in
    bor := (d lsr 62) land 1
  done;
  (* dst + extra*R >= m  <=>  extra = 1 or no borrow. *)
  masked_sub_in ctx dst (extra lor (1 - !bor))

let add_into ctx dst a b =
  let k = ctx.k in
  let carry = ref 0 in
  for i = 0 to k - 1 do
    let s = a.!(i) + b.!(i) + !carry in
    dst.!(i) <- s land kmask;
    carry := s lsr kb
  done;
  cond_sub_in ctx dst !carry

(* Plain limb addition with no reduction: requires [ctx.lazy_ok] (so that
   a + b < 2m < R fits in k limbs). Feeds the Fp2 lazy-reduction path. *)
let add_nored_into ctx dst a b =
  let k = ctx.k in
  let carry = ref 0 in
  for i = 0 to k - 1 do
    let s = a.!(i) + b.!(i) + !carry in
    dst.!(i) <- s land kmask;
    carry := s lsr kb
  done;
  assert (!carry = 0)

let sub_into ctx dst a b =
  let k = ctx.k and m = ctx.ml in
  let bor = ref 0 in
  for i = 0 to k - 1 do
    let d = a.!(i) - b.!(i) - !bor in
    bor := (d lsr 62) land 1;
    dst.!(i) <- d land kmask
  done;
  (* Add m back iff the subtraction went negative; masked, branchless. *)
  let mask = - !bor in
  let carry = ref 0 in
  for i = 0 to k - 1 do
    let s = dst.!(i) + (m.!(i) land mask) + !carry in
    dst.!(i) <- s land kmask;
    carry := s lsr kb
  done

let neg_into ctx dst a =
  let k = ctx.k and m = ctx.ml in
  let orv = ref 0 in
  for i = 0 to k - 1 do
    orv := !orv lor a.(i)
  done;
  (* mask = all-ones iff a <> 0 (branchless nonzero test on 63-bit ints). *)
  let nz = ((!orv lor - !orv) lsr 62) land 1 in
  let mask = -nz in
  let bor = ref 0 in
  for i = 0 to k - 1 do
    let d = m.!(i) - a.!(i) - !bor in
    bor := (d lsr 62) land 1;
    dst.!(i) <- d land kmask land mask
  done

(* --- the delayed-carry wide pipeline ---

   [accum_product_raw] and [accum_square_raw] leave the wide buffer
   *unpropagated*: position i+j holds a sum of up to k raw products
   (< 2k * 2^52, fine in 62 bits). [redc_into] accepts such buffers —
   it only ever needs the value of a position mod 2^26 after all lower
   positions' carries have been folded in, which its own left-to-right
   pass guarantees. The public wide entry points propagate before
   returning so that the Fp2 lazy pipeline's limb-wise add/sub/double
   operate on canonical 26-bit limbs. *)

(* w <- a*b, carries delayed. Writes w.(0 .. 2k-1); the caller zeroes
   the two top limbs. Row 0 initializes by plain store, so no zero-fill
   pass over the product range is needed. *)
let accum_product_raw k w a b =
  let a0 = a.!(0) in
  for j = 0 to k - 1 do
    w.!(j) <- a0 * b.!(j)
  done;
  w.!(k) <- 0;
  for i = 1 to k - 1 do
    let ai = a.!(i) in
    w.!(i + k) <- 0;
    if ai <> 0 then
      for j = 0 to k - 1 do
        w.!(i + j) <- w.!(i + j) + (ai * b.!(j))
      done
  done

(* w <- a^2, carries delayed: each cross product computed once and
   pre-doubled in the 62-bit accumulator (2 * 2^52 * k stays far under
   the overflow budget), diagonal squares added on top. Writes
   w.(0 .. 2k-1); the caller zeroes the two top limbs. *)
let accum_square_raw k w a =
  for i = 0 to (2 * k) - 1 do
    w.!(i) <- 0
  done;
  for i = 0 to k - 2 do
    let ai = a.!(i) in
    if ai <> 0 then
      for j = i + 1 to k - 1 do
        w.!(i + j) <- w.!(i + j) + ((ai * a.!(j)) lsl 1)
      done
  done;
  for i = 0 to k - 1 do
    let ai = a.!(i) in
    w.!(2 * i) <- w.!(2 * i) + (ai * ai)
  done

(* One linear pass: fold delayed carries into canonical 26-bit limbs. *)
let propagate_wide k w =
  let c = ref 0 in
  for i = 0 to (2 * k) + 1 do
    let v = w.!(i) + !c in
    w.!(i) <- v land kmask;
    c := v lsr kb
  done;
  assert (!c = 0)

(* Montgomery reduction of a wide value: dst <- w * R^{-1} mod m,
   canonical. Requires value(w) < m*R (callers guarantee this via
   [lazy_ok] or via w = a*b with a, b < m); accepts both canonical and
   delayed-carry buffers; destroys [w]. *)
let redc_into ctx dst w =
  let k = ctx.k and m = ctx.ml in
  let m' = ctx.m0_inv_neg in
  for i = 0 to k - 1 do
    (* w.(i)'s low 26 bits are exact: lower positions' carries were
       folded in by the previous iterations' shift-down step. *)
    let u = (w.!(i) land kmask) * m' land kmask in
    if u <> 0 then
      for j = 0 to k - 1 do
        w.!(i + j) <- w.!(i + j) + (u * m.!(j))
      done;
    (* w.(i) is now 0 mod 2^26; push its carry up before it is needed. *)
    w.!(i + 1) <- w.!(i + 1) + (w.!(i) lsr kb)
  done;
  let c = ref 0 in
  for i = 0 to k - 1 do
    let v = w.!(i + k) + !c in
    dst.!(i) <- v land kmask;
    c := v lsr kb
  done;
  (* value(w)/R < 2m <= 2R, so the overflow beyond k limbs is one bit. *)
  cond_sub_in ctx dst (w.!(2 * k) + !c)

(* Montgomery multiplication: dst <- a*b*R^{-1} mod m, canonical.

   Product scanning fused with the reduction: columns are processed left
   to right with a single register accumulator; at column c < k the
   Montgomery digit u_c is chosen to zero the column, at column c >= k
   the result limb drops out. One pass, no wide buffer — the only memory
   written is the k-limb u-digit store (per-domain scratch) and [dst].
   Accumulator bound: a column sums at most 2k products of < 2^52 plus a
   carry < 2^32, safe in 62 bits for k up to ~500.

   [dst] may alias [a] and/or [b]: dst.(c-k) is written at column c, and
   columns c' > c only read operand limbs with index > c-k.
   Allocation-free. *)
let mul_into ctx dst a b =
  let k = ctx.k and m = ctx.ml in
  let m' = ctx.m0_inv_neg in
  let u = (scratch k).ws in
  let acc = ref 0 in
  for c = 0 to k - 1 do
    (* Two independent accumulation chains per column (operand products
       and u*m digits) halve the critical add-latency path; each stays
       under k * 2^52, well within the 62-bit budget. *)
    let s = ref 0 and t = ref 0 in
    for i = 0 to c do
      s := !s + (a.!(i) * b.!(c - i))
    done;
    for j = 0 to c - 1 do
      t := !t + (u.!(j) * m.!(c - j))
    done;
    let av = !acc + !s + !t in
    let uc = (av land kmask) * m' land kmask in
    u.!(c) <- uc;
    acc := (av + (uc * m.!(0))) lsr kb
  done;
  (* The high columns also thread the trial borrow of the final
     conditional subtraction, so no separate compare pass is needed. *)
  let bor = ref 0 in
  for c = k to (2 * k) - 1 do
    let s = ref 0 and t = ref 0 in
    for i = c - k + 1 to k - 1 do
      s := !s + (a.!(i) * b.!(c - i))
    done;
    for j = c - k + 1 to k - 1 do
      t := !t + (u.!(j) * m.!(c - j))
    done;
    let av = !acc + !s + !t in
    let limb = av land kmask in
    dst.!(c - k) <- limb;
    acc := av lsr kb;
    let d = limb - m.!(c - k) - !bor in
    bor := (d lsr 62) land 1
  done;
  masked_sub_in ctx dst (!acc lor (1 - !bor))

(* Dedicated squaring, same fused column pass: each cross product is
   computed once and pre-doubled in the accumulator (the budget above
   absorbs the extra bit), diagonal squares land on even columns. *)
let sqr_into ctx dst a =
  let k = ctx.k and m = ctx.ml in
  let m' = ctx.m0_inv_neg in
  let u = (scratch k).ws in
  let acc = ref 0 in
  for c = 0 to k - 1 do
    for i = 0 to (c - 1) asr 1 do
      acc := !acc + ((a.!(i) * a.!(c - i)) lsl 1)
    done;
    if c land 1 = 0 then begin
      let h = a.!(c / 2) in
      acc := !acc + (h * h)
    end;
    for j = 0 to c - 1 do
      acc := !acc + (u.!(j) * m.!(c - j))
    done;
    let uc = (!acc land kmask) * m' land kmask in
    u.!(c) <- uc;
    acc := (!acc + (uc * m.!(0))) lsr kb
  done;
  (* As in [mul_into], thread the conditional-subtraction trial borrow
     through the output columns instead of a separate compare pass. *)
  let bor = ref 0 in
  for c = k to (2 * k) - 1 do
    for i = c - k + 1 to (c - 1) asr 1 do
      acc := !acc + ((a.!(i) * a.!(c - i)) lsl 1)
    done;
    if c land 1 = 0 then begin
      let h = a.!(c / 2) in
      acc := !acc + (h * h)
    end;
    for j = c - k + 1 to k - 1 do
      acc := !acc + (u.!(j) * m.!(c - j))
    done;
    let limb = !acc land kmask in
    dst.!(c - k) <- limb;
    acc := !acc lsr kb;
    let d = limb - m.!(c - k) - !bor in
    bor := (d lsr 62) land 1
  done;
  masked_sub_in ctx dst (!acc lor (1 - !bor))

(* Wide (2k-limb, canonical) product of two k-limb operands into [w];
   the two extra top limbs end up zero so callers can accumulate. *)
let mul_wide_into ctx w a b =
  let k = ctx.k in
  w.(2 * k) <- 0;
  w.((2 * k) + 1) <- 0;
  accum_product_raw k w a b;
  propagate_wide k w

let sqr_wide_into ctx w a =
  let k = ctx.k in
  w.(2 * k) <- 0;
  w.((2 * k) + 1) <- 0;
  accum_square_raw k w a;
  propagate_wide k w

(* w <- wa - wb over 2k+1 wide limbs; requires wa >= wb. *)
let wide_sub_into ctx w wa wb =
  let n = (2 * ctx.k) + 1 in
  let bor = ref 0 in
  for i = 0 to n - 1 do
    let d = wa.!(i) - wb.!(i) - !bor in
    bor := (d lsr 62) land 1;
    w.!(i) <- d land kmask
  done;
  assert (!bor = 0)

(* w <- w + m^2 over 2k+1 wide limbs (keeps lazy-reduction differences
   non-negative: x + m^2 - y >= 0 for any wide products x, y < m^2). *)
let wide_add_m2_into ctx w =
  let n = (2 * ctx.k) + 1 in
  let m2 = ctx.m2w in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = w.!(i) + m2.!(i) + !carry in
    w.!(i) <- s land kmask;
    carry := s lsr kb
  done;
  assert (!carry = 0)

(* w <- 2w over 2k+1 wide limbs. *)
let wide_double_into ctx w =
  let n = (2 * ctx.k) + 1 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let v = (w.!(i) lsl 1) lor !carry in
    w.!(i) <- v land kmask;
    carry := v lsr kb
  done;
  assert (!carry = 0)

(* --- conversions ---

   The kernel base (2^26) differs from {!Nat}'s (2^31), so crossing the
   boundary re-chunks the bit stream; both directions are cold paths. *)

(* dst (len limbs, base 2^26) <- the low bits of n (base-2^31 Nat). *)
let repack_nat_into dst len (n : Nat.t) =
  Array.fill dst 0 len 0;
  let buf = ref 0 and have = ref 0 and o = ref 0 in
  Array.iter
    (fun limb ->
      (* have < 26, limb < 2^31: buf stays under 2^57. *)
      buf := !buf lor (limb lsl !have);
      have := !have + Nat.base_bits;
      while !have >= kb do
        if !o < len then dst.(!o) <- !buf land kmask;
        incr o;
        buf := !buf lsr kb;
        have := !have - kb
      done)
    n;
  if !o < len then dst.(!o) <- !buf

let import_into ctx dst (n : Nat.t) = repack_nat_into dst ctx.k n

(* Bigint from [count] base-2^26 limbs (non-negative). *)
let unpack_to_bigint a count =
  let acc = ref Bigint.zero in
  for i = count - 1 downto 0 do
    acc := Bigint.add (Bigint.shift_left !acc kb) (Bigint.of_int a.(i))
  done;
  !acc

let of_bigint_into ctx dst v =
  let v = Bigint.erem v ctx.m in
  import_into ctx dst (Bigint.magnitude v);
  mul_into ctx dst dst ctx.r2

let of_bigint ctx v =
  let dst = alloc ctx in
  of_bigint_into ctx dst v;
  dst

let to_bigint ctx a =
  let k = ctx.k in
  let w = (scratch k).ws in
  Array.fill w 0 ((2 * k) + 2) 0;
  Array.blit a 0 w 0 k;
  let dst = alloc ctx in
  redc_into ctx dst w;
  unpack_to_bigint dst k

(* --- exponentiation: in-place sliding window ---

   Same window schedule as {!Modarith.window_pow}; the accumulator and
   squaring chain reuse two buffers, the odd-powers table is the only
   per-call allocation. Canonical representatives make the result
   bit-identical to the generic path whatever the internal schedule. *)
let pow_into ctx dst base e =
  if Bigint.sign e < 0 then invalid_arg "Limbs.pow_into: negative exponent";
  let n = Bigint.bit_length e in
  if n = 0 then set_one ctx dst
  else if n <= 8 then begin
    let acc = alloc ctx in
    set_one ctx acc;
    for i = n - 1 downto 0 do
      sqr_into ctx acc acc;
      if Bigint.test_bit e i then mul_into ctx acc acc base
    done;
    copy_into ctx dst acc
  end
  else begin
    let w = if n <= 96 then 3 else if n <= 320 then 4 else 5 in
    (* tbl.(i) = base^(2i+1). *)
    let tbl = Array.init (1 lsl (w - 1)) (fun _ -> alloc ctx) in
    copy_into ctx tbl.(0) base;
    let b2 = alloc ctx in
    sqr_into ctx b2 base;
    for i = 1 to Array.length tbl - 1 do
      mul_into ctx tbl.(i) tbl.(i - 1) b2
    done;
    let acc = b2 in
    (* reuse: b2 is dead once the table is built *)
    set_one ctx acc;
    let started = ref false in
    let i = ref (n - 1) in
    while !i >= 0 do
      if not (Bigint.test_bit e !i) then begin
        if !started then sqr_into ctx acc acc;
        decr i
      end
      else begin
        let l = ref (Stdlib.max 0 (!i - w + 1)) in
        while not (Bigint.test_bit e !l) do
          incr l
        done;
        let v = ref 0 in
        for j = !i downto !l do
          v := (!v lsl 1) lor (if Bigint.test_bit e j then 1 else 0)
        done;
        if !started then begin
          for _ = 1 to !i - !l + 1 do
            sqr_into ctx acc acc
          done;
          mul_into ctx acc acc tbl.((!v - 1) / 2)
        end
        else begin
          copy_into ctx acc tbl.((!v - 1) / 2);
          started := true
        end;
        i := !l - 1
      end
    done;
    copy_into ctx dst acc
  end

(* --- inversion: limb-form binary extended GCD ---

   Single-conversion and allocation-free. For a = x*R, inverting the
   *plain* limb value a gives (x*R)^{-1} = x^{-1} R^{-1} mod m; one
   Montgomery multiplication by R^3 lands back on x^{-1} R with no
   encode/decode round trip and no excursion through {!Bigint}. The
   extgcd state lives in four per-domain k-limb scratch buffers, so the
   whole operation allocates nothing.

   Invariants over plain (non-Montgomery) k-limb values, v = value(a):
     gu, gv >= 0,  gr*v = gu (mod m),  gs*v = gv (mod m),
     gr, gs in [0, m).
   m is odd (context precondition), so halving an even gu/gv pairs with
   a mod-m halving of its coefficient ((x + m)/2 when x is odd). The
   loop strictly decreases gu + gv and ends with gu = 0,
   gv = gcd(v, m); the value is invertible iff that gcd is 1, in which
   case gs = v^{-1} mod m. *)

(* x <- x / 2 over k plain limbs, top bit [hi] shifted in. *)
let shr1_in k x hi =
  for i = 0 to k - 2 do
    x.!(i) <- (x.!(i) lsr 1) lor ((x.!(i + 1) land 1) lsl (kb - 1))
  done;
  x.!(k - 1) <- (x.!(k - 1) lsr 1) lor (hi lsl (kb - 1))

(* x <- x / 2 mod m for x in [0, m): add m first iff x is odd (masked),
   then shift right, folding the (single-bit) carry into the top. *)
let half_mod_in ctx x =
  let k = ctx.k and m = ctx.ml in
  let mask = -(x.!(0) land 1) in
  let carry = ref 0 in
  for i = 0 to k - 1 do
    let s = x.!(i) + (m.!(i) land mask) + !carry in
    x.!(i) <- s land kmask;
    carry := s lsr kb
  done;
  shr1_in k x !carry

(* a >= b over k plain limbs? (Imperative, not a local closure: this sits
   inside the extgcd loop and must not allocate.) *)
let geq_limbs k a b =
  let i = ref (k - 1) in
  while !i > 0 && a.!(!i) = b.!(!i) do
    decr i
  done;
  a.!(!i) >= b.!(!i)

(* a <- a - b over k plain limbs; requires a >= b. *)
let usub_in k a b =
  let bor = ref 0 in
  for i = 0 to k - 1 do
    let d = a.!(i) - b.!(i) - !bor in
    bor := (d lsr 62) land 1;
    a.!(i) <- d land kmask
  done

let is_one_limbs k a =
  let orv = ref 0 in
  for i = 1 to k - 1 do
    orv := !orv lor a.!(i)
  done;
  a.!(0) = 1 && !orv = 0

let inv_into ctx dst a =
  let k = ctx.k in
  let s = inv_scratch k in
  let gu = s.gu and gv = s.gv and gr = s.gr and gs = s.gs in
  Array.blit a 0 gu 0 k;
  Array.blit ctx.ml 0 gv 0 k;
  Array.fill gr 0 k 0;
  gr.(0) <- 1;
  Array.fill gs 0 k 0;
  if is_zero ctx gu then raise Division_by_zero;
  (* Strip gu's trailing zeros (gu <> 0, so this terminates). *)
  while gu.!(0) land 1 = 0 do
    shr1_in k gu 0;
    half_mod_in ctx gr
  done;
  (* gu and gv both odd at the top of every iteration. *)
  let running = ref true in
  while !running do
    if geq_limbs k gu gv then begin
      usub_in k gu gv;
      sub_into ctx gr gr gs;
      if is_zero ctx gu then running := false
      else
        while gu.!(0) land 1 = 0 do
          shr1_in k gu 0;
          half_mod_in ctx gr
        done
    end
    else begin
      usub_in k gv gu;
      sub_into ctx gs gs gr;
      (* gv > gu >= 1 before the subtraction, so gv stays nonzero. *)
      while gv.!(0) land 1 = 0 do
        shr1_in k gv 0;
        half_mod_in ctx gs
      done
    end
  done;
  if not (is_one_limbs k gv) then raise Division_by_zero;
  mul_into ctx dst gs ctx.r3

(* --- context creation --- *)

(* Inverse of odd [v] mod 2^26 by Newton iteration; 5 steps suffice. *)
let inv_limb v =
  let x = ref v in
  for _ = 1 to 5 do
    x := !x * (2 - (v * !x)) land kmask
  done;
  !x land kmask

let create m =
  if Bigint.sign m <= 0 || Bigint.is_even m || Bigint.compare m (Bigint.of_int 3) < 0
  then invalid_arg "Limbs.create: modulus must be odd and >= 3";
  let bits = Bigint.bit_length m in
  let k = (bits + kb - 1) / kb in
  let ml = Array.make k 0 in
  repack_nat_into ml k (Bigint.magnitude m);
  let m0_inv_neg = (kbase - inv_limb ml.(0)) land kmask in
  let r = Bigint.shift_left Bigint.one (k * kb) in
  let r_mod = Bigint.erem r m in
  let r2_b = Bigint.erem (Bigint.mul r_mod r_mod) m in
  let lazy_ok = bits + 2 <= k * kb in
  let pack v =
    let out = Array.make k 0 in
    repack_nat_into out k (Bigint.magnitude v);
    out
  in
  let m2w =
    let w = Array.make ((2 * k) + 2) 0 in
    repack_nat_into w ((2 * k) + 2) (Nat.sqr (Bigint.magnitude m));
    w
  in
  let ctx =
    {
      m;
      ml;
      k;
      m0_inv_neg;
      one_m = pack r_mod;
      r2 = pack r2_b;
      r3 = Array.make k 0;
      m2w;
      lazy_ok;
    }
  in
  (* R^3 = mont_mul(R^2, R^2); needs the rest of the context first. *)
  mul_into ctx ctx.r3 ctx.r2 ctx.r2;
  ctx
