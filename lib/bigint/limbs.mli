(** Fixed-width, destination-passing Montgomery field kernels.

    The allocation-free machine room under {!Fp} (and transitively under
    the curve, pairing and every scheme in the repo). A context freezes
    the limb count [k] of its modulus at creation; an element is a flat
    [int array] of {e exactly} [k] base-2^26 limbs holding the canonical
    (fully reduced) Montgomery residue. Kernels write into caller-provided
    destination buffers; their working space is per-domain scratch
    ({!Domain.DLS}), so concurrent use from a [Pool] of domains is
    race-free, and the inner loops perform no allocation, no [Array.sub],
    no normalization, and no data-dependent branches (conditional
    subtraction is mask-selected).

    Canonical representatives make bit-identity to the generic
    {!Modarith.Mont} reference a complete correctness contract: the
    differential tests in [test_limbs] and the [bench --smoke] gate assert
    it for every operation.

    Aliasing: every [*_into] kernel tolerates [dst] aliasing any of its
    inputs. Buffers must belong to the context that sized them. *)

type ctx

type elt = int array
(** Exactly [limb_count ctx] limbs, little-endian, each in [0, 2^26);
    value in [0, m) times R = 2^(26k) mod m. The 26-bit base keeps every
    partial product under 2^52 so column sums accumulate carry-free in a
    native int (see [limbs.ml]). Treat as owned mutable
    storage: the functional layer above ({!Fp}) never mutates values it
    has returned, while the [*_into] kernels mutate only [dst]. *)

val create : Bigint.t -> ctx
(** Raises [Invalid_argument] unless the modulus is odd and >= 3. *)

val modulus : ctx -> Bigint.t
val limb_count : ctx -> int

val lazy_ok : ctx -> bool
(** Whether 4m <= R (top two bits of the top limb free): the gate for the
    unreduced-sum / lazy-reduction identities used by the Fp2 kernels
    ({!add_nored_into}, the wide pipeline). Holds for every named
    parameter set; fails only for moduli within two bits of filling their
    top limb, for which callers must keep to the reduced kernels. *)

(** {1 Buffers} *)

val alloc : ctx -> elt
(** A fresh zero element (the canonical encoding of 0). *)

val wide_alloc : ctx -> int array
(** A fresh wide buffer (2k+2 limbs) for the unreduced pipeline. *)

val copy_into : ctx -> elt -> elt -> unit
val set_zero : ctx -> elt -> unit
val set_one : ctx -> elt -> unit

(** {1 Predicates} *)

val is_zero : ctx -> elt -> bool
val equal : ctx -> elt -> elt -> bool

(** {1 Reduced kernels} — allocation-free, results canonical *)

val add_into : ctx -> elt -> elt -> elt -> unit
val sub_into : ctx -> elt -> elt -> elt -> unit
val neg_into : ctx -> elt -> elt -> unit
val mul_into : ctx -> elt -> elt -> elt -> unit
(** In-place Montgomery multiplication: fused product-scanning with
    delayed carries (multiply, reduce and the conditional-subtraction
    trial borrow in one column pass). *)

val sqr_into : ctx -> elt -> elt -> unit
(** Dedicated squaring: wide square with each cross product computed once
    (half the partial products), then Montgomery reduction. *)

(** {1 Unreduced pipeline} — requires {!lazy_ok}; feeds the Fp2 kernels *)

val add_nored_into : ctx -> elt -> elt -> elt -> unit
(** Plain limb addition of two residues, no conditional subtraction. *)

val mul_wide_into : ctx -> int array -> elt -> elt -> unit
(** Full 2k-limb product, no reduction; extra top limbs zeroed. *)

val sqr_wide_into : ctx -> int array -> elt -> unit
val wide_sub_into : ctx -> int array -> int array -> int array -> unit
(** [wide_sub_into w a b]: w <- a - b over the wide width; a >= b. *)

val wide_add_m2_into : ctx -> int array -> unit
(** w <- w + m^2: keeps lazy-reduction differences non-negative. *)

val wide_double_into : ctx -> int array -> unit

val redc_into : ctx -> elt -> int array -> unit
(** Montgomery reduction of a wide value < m*R into a canonical element;
    destroys the wide buffer. *)

(** {1 Derived operations} *)

val pow_into : ctx -> elt -> elt -> Bigint.t -> unit
(** Sliding-window exponentiation over the in-place kernels (exponent
    >= 0); the odd-powers table is the only per-call allocation. *)

val inv_into : ctx -> elt -> elt -> unit
(** Allocation-free Montgomery inversion: a limb-form binary extended
    GCD over per-domain scratch (no [Bigint] round trip), then one
    Montgomery multiplication by R^3 to land back on x^-1 * R. Raises
    [Division_by_zero] when the value is not invertible. *)

(** {1 Conversions} *)

val of_bigint : ctx -> Bigint.t -> elt
val of_bigint_into : ctx -> elt -> Bigint.t -> unit
val to_bigint : ctx -> elt -> Bigint.t
