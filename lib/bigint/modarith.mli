(** Modular arithmetic: exponentiation, inversion, Jacobi symbol, and
    Montgomery-form contexts.

    The Montgomery context is the hot path of the whole system — every
    field multiplication under the pairing goes through {!Mont.mul}. *)

val gcd : Bigint.t -> Bigint.t -> Bigint.t
(** Non-negative greatest common divisor. *)

val egcd : Bigint.t -> Bigint.t -> Bigint.t * Bigint.t * Bigint.t
(** [egcd a b = (g, x, y)] with [a*x + b*y = g = gcd a b], [g >= 0]. *)

val invmod : Bigint.t -> Bigint.t -> Bigint.t
(** [invmod a m] is the inverse of [a] modulo [m], in [0, m).
    Raises [Division_by_zero] if [gcd a m <> 1]. *)

val powmod : Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
(** [powmod b e m] = [b^e mod m], [e >= 0] (negative exponents invert [b]
    first). Uses Montgomery form when [m] is odd. *)

val jacobi : Bigint.t -> Bigint.t -> int
(** Jacobi symbol [(a/n)] for odd positive [n]; in [{-1, 0, 1}].
    Raises [Invalid_argument] on even or non-positive [n]. *)

val window_pow :
  one:'a -> mul:('a -> 'a -> 'a) -> sqr:('a -> 'a) -> 'a -> Bigint.t -> 'a
(** Generic left-to-right sliding-window exponentiation with an odd-powers
    table (~t/(w+1) multiplications for a t-bit exponent instead of the
    binary ladder's t/2). Backs {!Mont.pow} and the GT exponentiation in
    Fp2; exposed so any monoid can reuse it. Exponent must be [>= 0]. *)

(** Montgomery-form modular arithmetic for a fixed odd modulus. *)
module Mont : sig
  type ctx
  type elt
  (** A residue in Montgomery form. Only meaningful w.r.t. its context. *)

  val create : Bigint.t -> ctx
  (** Raises [Invalid_argument] if the modulus is even or [< 3]. *)

  val modulus : ctx -> Bigint.t
  val of_bigint : ctx -> Bigint.t -> elt
  (** Reduces the argument mod m first; accepts any sign. *)

  val to_bigint : ctx -> elt -> Bigint.t
  val zero : ctx -> elt
  val one : ctx -> elt
  val equal : elt -> elt -> bool
  val add : ctx -> elt -> elt -> elt
  val sub : ctx -> elt -> elt -> elt
  val neg : ctx -> elt -> elt
  val mul : ctx -> elt -> elt -> elt
  val sqr : ctx -> elt -> elt
  val pow : ctx -> elt -> Bigint.t -> elt
  (** Sliding-window exponentiation ({!window_pow} over the Montgomery
      ring). Exponent must be [>= 0]. *)

  val pow_binary : ctx -> elt -> Bigint.t -> elt
  (** Reference bit-by-bit square-and-multiply ladder; kept for the
      equivalence tests and the before/after benchmark. *)

  val inv : ctx -> elt -> elt
  (** Raises [Division_by_zero] on non-invertible elements. *)
end
