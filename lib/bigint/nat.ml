(* Base-2^31 magnitude arithmetic.

   With 31-bit limbs every intermediate value in schoolbook multiplication
   and in Knuth division fits a 63-bit native [int]:
   (2^31-1)^2 + 2*(2^31-1) < 2^62 <= max_int. *)

type t = int array

let base_bits = 31
let base = 1 lsl base_bits
let limb_mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]

(* Strip trailing zero limbs; reuses the argument when already normal. *)
let normalize (a : t) : t =
  let n = Array.length a in
  let top = ref n in
  while !top > 0 && a.(!top - 1) = 0 do
    decr top
  done;
  if !top = n then a else Array.sub a 0 !top

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land limb_mask) :: acc) (n lsr base_bits) in
    Array.of_list (limbs [] n)
  end

let is_zero a = Array.length a = 0
let num_limbs = Array.length
let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((n - 1) * base_bits) + width 0 top
  end

let test_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let to_int_opt a =
  if bit_length a > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  out.(n) <- !carry;
  normalize out

let add_small (a : t) v =
  assert (v >= 0 && v < base);
  if v = 0 then a else add a [| v |]

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize out

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = (ai * b.(j)) + out.(i + j) + !carry in
          out.(i + j) <- s land limb_mask;
          carry := s lsr base_bits
        done;
        (* Propagate the final carry; it can ripple at most to the top. *)
        let p = ref (i + lb) in
        while !carry <> 0 do
          let s = out.(!p) + !carry in
          out.(!p) <- s land limb_mask;
          carry := s lsr base_bits;
          incr p
        done
      end
    done;
    normalize out
  end

let mul_small (a : t) v =
  assert (v >= 0 && v < base);
  if v = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let out = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * v) + !carry in
      out.(i) <- s land limb_mask;
      carry := s lsr base_bits
    done;
    out.(la) <- !carry;
    normalize out
  end

let karatsuba_threshold = 32

(* Split [a] at limb [k]: (low, high) with a = low + high * base^k. *)
let split (a : t) k =
  let n = Array.length a in
  if n <= k then (a, zero)
  else (normalize (Array.sub a 0 k), Array.sub a k (n - k))

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split a k and b0, b1 = split b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    let shift_limbs v m =
      if is_zero v then zero else Array.append (Array.make m 0) v
    in
    add z0 (add (shift_limbs z1 k) (shift_limbs z2 (2 * k)))
  end

(* Dedicated squaring: compute each cross product a_i * a_j (i < j) once,
   double the whole accumulator with a single 1-bit shift, then add the
   diagonal squares a_i^2. Roughly halves the partial products of
   [mul_schoolbook a a]. Doubling cannot be fused into the inner loop:
   2 * (2^31-1)^2 overflows 63 bits, so the shift happens on reduced
   limbs only. *)
let sqr_schoolbook (a : t) : t =
  let n = Array.length a in
  if n = 0 then zero
  else begin
    let out = Array.make (2 * n) 0 in
    (* Cross products, each taken once. Same overflow analysis as
       [mul_schoolbook]: product + limb + carry < 2^62. *)
    for i = 0 to n - 2 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = i + 1 to n - 1 do
          let s = (ai * a.(j)) + out.(i + j) + !carry in
          out.(i + j) <- s land limb_mask;
          carry := s lsr base_bits
        done;
        let p = ref (i + n) in
        while !carry <> 0 do
          let s = out.(!p) + !carry in
          out.(!p) <- s land limb_mask;
          carry := s lsr base_bits;
          incr p
        done
      end
    done;
    (* out := 2 * out. *)
    let carry = ref 0 in
    for i = 0 to (2 * n) - 1 do
      let v = (out.(i) lsl 1) lor !carry in
      out.(i) <- v land limb_mask;
      carry := v lsr base_bits
    done;
    (* Add the diagonal a_i^2 at limb 2i. *)
    for i = 0 to n - 1 do
      let p = a.(i) * a.(i) in
      let s = out.(2 * i) + (p land limb_mask) in
      out.(2 * i) <- s land limb_mask;
      let carry = ref ((p lsr base_bits) + (s lsr base_bits)) in
      let j = ref ((2 * i) + 1) in
      while !carry <> 0 do
        let s = out.(!j) + !carry in
        out.(!j) <- s land limb_mask;
        carry := s lsr base_bits;
        incr j
      done
    done;
    normalize out
  end

let rec sqr (a : t) : t =
  let n = Array.length a in
  if n < karatsuba_threshold then sqr_schoolbook a
  else begin
    (* Karatsuba with squarings at the sub-problems:
       (a0 + a1 B)^2 = a0^2 + [(a0+a1)^2 - a0^2 - a1^2] B + a1^2 B^2. *)
    let k = (n + 1) / 2 in
    let a0, a1 = split a k in
    let z0 = sqr a0 in
    let z2 = sqr a1 in
    let z1 = sub (sqr (add a0 a1)) (add z0 z2) in
    let shift_limbs v m =
      if is_zero v then zero else Array.append (Array.make m 0) v
    in
    add z0 (add (shift_limbs z1 k) (shift_limbs z2 (2 * k)))
  end

let divmod_small (a : t) d =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_small";
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

let shift_left (a : t) s =
  if s < 0 then invalid_arg "Nat.shift_left";
  if s = 0 || is_zero a then a
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let n = Array.length a in
    let out = Array.make (n + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 out limb_shift n
    else begin
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        out.(i + limb_shift) <- v land limb_mask;
        carry := v lsr base_bits
      done;
      out.(n + limb_shift) <- !carry
    end;
    normalize out
  end

let shift_right (a : t) s =
  if s < 0 then invalid_arg "Nat.shift_right";
  if s = 0 || is_zero a then a
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let n = Array.length a in
    if limb_shift >= n then zero
    else begin
      let m = n - limb_shift in
      let out = Array.make m 0 in
      if bit_shift = 0 then Array.blit a limb_shift out 0 m
      else
        for i = 0 to m - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < n then
              (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land limb_mask
            else 0
          in
          out.(i) <- lo lor hi
        done;
      normalize out
    end
  end

(* Knuth TAOCP vol.2 Algorithm D, adapted to 31-bit limbs. *)
let divmod_knuth (u0 : t) (v0 : t) : t * t =
  let n = Array.length v0 in
  (* Normalize so the divisor's top limb has its high bit set. *)
  let rec top_width w v = if v = 0 then w else top_width (w + 1) (v lsr 1) in
  let s = base_bits - top_width 0 v0.(n - 1) in
  let v = shift_left v0 s in
  let u_shifted = shift_left u0 s in
  let m = Array.length u_shifted - n in
  if m < 0 then (zero, u0)
  else begin
    (* Working copy of the dividend with one extra top limb. *)
    let u = Array.make (Array.length u_shifted + 1) 0 in
    Array.blit u_shifted 0 u 0 (Array.length u_shifted);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vsecond = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let fixing = ref true in
      while !fixing do
        if
          !qhat >= base
          || !qhat * vsecond
             > (!rhat lsl base_bits) lor (if n >= 2 then u.(j + n - 2) else 0)
        then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then fixing := false
        end
        else fixing := false
      done;
      (* Multiply-subtract qhat * v from u[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = u.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          u.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          u.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        u.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !carry in
          u.(i + j) <- s land limb_mask;
          carry := s lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = shift_right (normalize (Array.sub u 0 n)) s in
    (normalize q, r)
  end

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else if compare a b < 0 then (zero, a)
  else divmod_knuth a b

let of_bytes_be s =
  let n = String.length s in
  let acc = ref zero in
  (* Consume 3 bytes (24 bits) at a time to limit shifting work. *)
  let i = ref 0 in
  while !i < n do
    let take = min 3 (n - !i) in
    let chunk = ref 0 in
    for j = 0 to take - 1 do
      chunk := (!chunk lsl 8) lor Char.code s.[!i + j]
    done;
    acc := add_small (shift_left !acc (8 * take)) !chunk;
    i := !i + take
  done;
  !acc

let to_bytes_be ?pad_to a =
  let byte_len = (bit_length a + 7) / 8 in
  let out_len =
    match pad_to with
    | None -> max byte_len 1
    | Some p ->
        if p < byte_len then invalid_arg "Nat.to_bytes_be: value too large";
        p
  in
  let out = Bytes.make out_len '\x00' in
  (* Write bytes least-significant first from the limb array. *)
  for i = 0 to byte_len - 1 do
    let bit = 8 * i in
    let limb = bit / base_bits and off = bit mod base_bits in
    let lo = a.(limb) lsr off in
    let hi =
      if off > base_bits - 8 && limb + 1 < Array.length a then
        a.(limb + 1) lsl (base_bits - off)
      else 0
    in
    Bytes.set out (out_len - 1 - i) (Char.chr ((lo lor hi) land 0xFF))
  done;
  Bytes.unsafe_to_string out
