type family = Y2_x3_x | Y2_x3_1

(* --- prepared pairings: precomputed Miller-loop line functions ---

   The line functions of Miller's algorithm depend only on the first
   pairing argument P (they are the tangent/chord lines of the running
   multiple of P); the second argument merely evaluates them. A [prepared]
   value stores the line coefficients of the whole loop so that pairings
   against a fixed P cost only the evaluations — no point arithmetic, and
   for the {!Y2_x3_1} family no per-step field inversions either. *)

(* One accumulator operation of the x1 (Boneh-Franklin) Miller loop,
   evaluated at phi(Q) = (zeta xq, yq) with xq2 = zeta*xq in GF(p^2):
   - [Num_line]: chord/tangent through (x1, y1) with slope lambda, stored
     as l0 = lambda*x1 - y1 and lmx = -lambda, evaluated as
     (l0 + yq) + lmx * xq2;
   - [Num_vert x] / [Den_vert x]: vertical line x - x_line, evaluated as
     xq2 - x, multiplied into the numerator resp. denominator. *)
type x1_op =
  | Num_line of { l0 : Fp.t; lmx : Fp.t }
  | Num_vert of Fp.t
  | Den_vert of Fp.t

(* A prepared xx-family pairing is the whole Miller schedule flattened
   into two kernel-resident arrays: [ops] lists the accumulator
   operations in order (0 = square f, 1 = multiply f by the next
   recorded line), and [lines] holds the line coefficients as
   consecutive (a0, ax) PAIRS of canonical residues. The recorded
   tangent/chord line (l0 + lx*xq) + (ly*yq) i is divided through by its
   (nonzero, GF(p)) y-coefficient at preparation time — one Montgomery
   batch inversion for the whole schedule — so evaluation at
   phi(Q) = (-xq, i yq) is (a0 + ax*xq) + yq i: one base-field
   multiplication per line instead of two, and the imaginary part is Q's
   own y-coordinate, no multiply at all. The dropped factor ly lies in
   GF(p)*, which the final exponentiation annihilates, so pairing values
   are unchanged. [sqrs] counts the squaring ops — the product kernel
   interleaves schedules only when their squaring chains agree (a
   NAF-recorded schedule and a binary-fallback one may differ in
   length by one). A flat spine with no options and no per-step records:
   evaluation is one cache-friendly pass over two arrays. *)
type prepared =
  | Prep_inf
  | Prep_xx of { ops : int array; lines : Fp.t array; sqrs : int }
  | Prep_x1 of x1_op list array

type params = {
  name : string;
  family : family;
  p : Bigint.t;
  q : Bigint.t;
  cofactor : Bigint.t;
  fp : Fp.ctx;
  curve : Curve.ctx;
  g : Curve.point;
  final_exp : Bigint.t;
  zeta : Fp2.t;
  q_naf : int array;
  cofactor_wnaf : int array;
  g_table : Curve.Table.t Lazy.t;
  g_prep : prepared Lazy.t;
}

let scalar_bytes prms = (Bigint.bit_length prms.q + 7) / 8
let point_bytes prms = Curve.byte_length prms.curve
let gt_bytes prms = 2 * Fp.byte_length prms.fp

(* --- H1: hash to the order-q subgroup, try-and-increment --- *)

(* The pre-clamping lift: hash to a curve point (of unconstrained order)
   by try-and-increment. Returns the chosen point together with the
   counter that produced it, so the cofactor-clearing caller can resume
   the very same counter sequence if clearing lands on infinity. *)
let lift_to_curve ~fp ~curve msg ctr0 =
  let fp_bytes = Fp.byte_length fp in
  let rec attempt ctr =
    if ctr > 1000 then failwith "hash_to_g1: no point found (broken parameters?)";
    (* One extra byte drives the choice between the two square roots. *)
    let seed = Printf.sprintf "TRE-H1|%d|%s" ctr msg in
    let stream = Hashing.Kdf.mask seed (fp_bytes + 1) in
    let x = Fp.of_bigint fp (Bigint.of_bytes_be (String.sub stream 0 fp_bytes)) in
    match Curve.lift_x curve x with
    | None -> attempt (ctr + 1)
    | Some (lo, hi) ->
        let point = if Char.code stream.[fp_bytes] land 1 = 0 then lo else hi in
        (point, ctr)
  in
  attempt ctr0

let hash_to_g1_raw ~fp ~curve ~cofactor msg =
  let rec go ctr0 =
    let point, ctr = lift_to_curve ~fp ~curve msg ctr0 in
    let clamped = Curve.mul curve cofactor point in
    if Curve.is_infinity clamped then go (ctr + 1) else clamped
  in
  go 0

(* --- parameter construction --- *)

(* A primitive cube root of unity in GF(p^2) = GF(p)[i], available when
   p = 2 (mod 3): zeta = (-1 + sqrt(-3)) / 2 with sqrt(-3) = sqrt(3) * i
   (3 is a QR exactly when -3 is not, which holds for p = 11 mod 12). *)
let cube_root_of_unity fp =
  match Fp.sqrt fp (Fp.of_int fp 3) with
  | None -> invalid_arg "Pairing.make: sqrt(3) missing (p not 11 mod 12?)"
  | Some root3 ->
      let half = Fp.inv fp (Fp.of_int fp 2) in
      let zeta =
        Fp2.make
          ~re:(Fp.mul fp (Fp.of_int fp (-1)) half)
          ~im:(Fp.mul fp root3 half)
      in
      (* zeta^2 + zeta + 1 = 0 guarantees primitivity. *)
      if
        not
          (Fp2.is_zero fp
             (Fp2.add fp (Fp2.add fp (Fp2.sqr fp zeta) zeta) (Fp2.one fp)))
      then invalid_arg "Pairing.make: cube root of unity check failed";
      zeta

(* --- signed-digit Miller schedules ---

   The production Miller paths for the x^3 + x family walk a
   left-to-right signed-digit (non-adjacent form) schedule: the NAF of q
   has ~bits/3 nonzero digits against ~bits/2 set bits, and denominator
   elimination makes a negative digit exactly as cheap as a positive one
   — the chord through T and -P, with -P = (xp, -yp), is one more scaled
   line whose vertical cofactor lies in GF(p). The reference loop
   [miller_loop_xx_ref] stays on the plain binary schedule; the two
   chains compute the same Miller function up to GF(p)* factors, so the
   pairing values agree bit-for-bit after the final exponentiation —
   which is what the differential tests and [bench --smoke] pin.

   [wnaf_digits n w]: MSB-first width-w non-adjacent form of n > 0 —
   odd digits in (-2^(w-1), 2^(w-1)), at most one nonzero in any w
   consecutive positions, leading digit positive. w = 2 is the classic
   NAF driving the Miller loops; w = 5 recodes the final-exponentiation
   cofactor, whose negative digits cost nothing because inversion in the
   norm-1 subgroup is conjugation. *)
let wnaf_digits n w =
  let two_w = Bigint.shift_left Bigint.one w in
  let half = Bigint.shift_left Bigint.one (w - 1) in
  let digits = ref [] and x = ref n in
  while Bigint.sign !x > 0 do
    if Bigint.is_odd !x then begin
      let r = Bigint.erem !x two_w in
      let d =
        if Bigint.compare r half >= 0 then Bigint.to_int_exn (Bigint.sub r two_w)
        else Bigint.to_int_exn r
      in
      digits := d :: !digits;
      x := Bigint.sub !x (Bigint.of_int d)
    end
    else digits := 0 :: !digits;
    x := Bigint.shift_right !x 1
  done;
  Array.of_list !digits

(* The binary schedule in the same MSB-first digit form, for the
   degenerate-input fallback (where the walk must mirror the reference
   loop branch for branch). *)
let binary_digits n =
  let bits = Bigint.bit_length n in
  Array.init bits (fun i -> if Bigint.test_bit n (bits - 1 - i) then 1 else 0)

(* Raised by the signed-digit walkers on the one degenerate case they do
   not model: an addition step whose operands coincide (T = dP with
   chord slope 0/0 — a doubling in disguise, reachable only for inputs
   of low order, never for order-q points). The caller falls back to the
   binary schedule, which handles it exactly as the pinned reference
   does. Every other degeneracy (2-torsion tangent, running point at
   infinity, vertical chord) contributes only GF(p) factors and is
   handled in-line on both schedules. *)
exception Degenerate_chain

(* --- building prepared pairings ---

   These walk the same schedules as [miller_loop_xx] / [miller_loop_x1]
   below, recording the line coefficients instead of evaluating them.
   Field values are canonical (normalized Montgomery residues), so
   evaluating a prepared pairing later is bit-identical to running the
   plain pairing. *)

type miller_state = { mx : Fp.t; my : Fp.t; mz : Fp.t }

(* Record the flat (ops, lines) schedule of the xx Miller loop over a
   MSB-first signed digit array (leading digit 1). [legacy_keep] selects
   the reference's keep-T behaviour on the coincident-addition case
   (used with the binary digits, matching [miller_loop_xx_ref]); the NAF
   walk raises [Degenerate_chain] instead. *)
let record_xx prms pt digits ~legacy_keep =
  let fp = prms.fp in
  match pt with
  | Curve.Infinity -> Prep_inf
  | Curve.Affine p' ->
      let xp = p'.x and yp = p'.y in
      let ypn = Fp.neg fp yp in
      let one = Fp.one fp in
      let ops = ref [] and nops = ref 0 in
      let lines = ref [] and nlines = ref 0 in
      let emit_sqr () = incr nops; ops := 0 :: !ops in
      let emit_line l0 lx ly =
        incr nops;
        ops := 1 :: !ops;
        nlines := !nlines + 3;
        lines := ly :: lx :: l0 :: !lines
      in
      let t = ref { mx = xp; my = yp; mz = one } in
      for i = 1 to Array.length digits - 1 do
        emit_sqr ();
        (let { mx = x; my = y; mz = z } = !t in
         if Fp.is_zero fp z then ()
         else if Fp.is_zero fp y then
           t := { mx = one; my = one; mz = Fp.zero fp }
         else begin
           let y2 = Fp.sqr fp y in
           let z2 = Fp.sqr fp z in
           let x2 = Fp.sqr fp x in
           let m = Fp.add fp (Fp.add fp (Fp.add fp x2 x2) x2) (Fp.sqr fp z2) in
           let w = Fp.mul fp (Fp.add fp y y) z in
           let l0 = Fp.sub fp (Fp.mul fp m x) (Fp.add fp y2 y2) in
           let lx = Fp.mul fp m z2 in
           let ly = Fp.mul fp w z2 in
           let s =
             let xy2 = Fp.mul fp x y2 in
             let d = Fp.add fp xy2 xy2 in
             Fp.add fp d d
           in
           let x' = Fp.sub fp (Fp.sqr fp m) (Fp.add fp s s) in
           let y4_8 =
             let y4 = Fp.sqr fp y2 in
             let d = Fp.add fp y4 y4 in
             let d = Fp.add fp d d in
             Fp.add fp d d
           in
           let y' = Fp.sub fp (Fp.mul fp m (Fp.sub fp s x')) y4_8 in
           t := { mx = x'; my = y'; mz = w };
           emit_line l0 lx ly
         end);
        let d = digits.(i) in
        if d <> 0 then begin
          let yp' = if d > 0 then yp else ypn in
          let { mx = x; my = y; mz = z } = !t in
          if Fp.is_zero fp z then t := { mx = xp; my = yp'; mz = one }
          else begin
            let z2 = Fp.sqr fp z in
            let u2 = Fp.mul fp xp z2 in
            let s2 = Fp.mul fp yp' (Fp.mul fp z2 z) in
            let h = Fp.sub fp u2 x in
            let r = Fp.sub fp s2 y in
            if Fp.is_zero fp h then begin
              if Fp.is_zero fp r then begin
                if not legacy_keep then raise Degenerate_chain
                (* else keep T, mirroring the reference loop *)
              end
              else t := { mx = one; my = one; mz = Fp.zero fp }
            end
            else begin
              let z' = Fp.mul fp z h in
              let l0 = Fp.sub fp (Fp.mul fp r xp) (Fp.mul fp z' yp') in
              let h2 = Fp.sqr fp h in
              let h3 = Fp.mul fp h2 h in
              let xh2 = Fp.mul fp x h2 in
              let x' = Fp.sub fp (Fp.sub fp (Fp.sqr fp r) h3) (Fp.add fp xh2 xh2) in
              let y' = Fp.sub fp (Fp.mul fp r (Fp.sub fp xh2 x')) (Fp.mul fp y h3) in
              t := { mx = x'; my = y'; mz = z' };
              emit_line l0 r z'
            end
          end
        end
      done;
      let ops_arr = Array.make !nops 0 in
      let rec fill_ops i = function
        | [] -> ()
        | o :: rest -> ops_arr.(i) <- o; fill_ops (i - 1) rest
      in
      fill_ops (!nops - 1) !ops;
      let zero = Fp.zero fp in
      let lines_arr = Array.make (Stdlib.max 1 !nlines) zero in
      let rec fill_lines i = function
        | [] -> ()
        | l :: rest -> lines_arr.(i) <- l; fill_lines (i - 1) rest
      in
      fill_lines (!nlines - 1) !lines;
      (* Divide every line by its ly (= W Z^2 or Z', nonzero in both
         emitting branches): ONE field inversion via the Montgomery
         batch trick, then two muls per line to store (l0/ly, lx/ly). *)
      let nl = !nlines / 3 in
      let scaled = Array.make (Stdlib.max 1 (2 * nl)) zero in
      if nl > 0 then begin
        let prefix = Array.make nl one in
        let acc = ref one in
        for i = 0 to nl - 1 do
          prefix.(i) <- !acc;
          acc := Fp.mul fp !acc lines_arr.((3 * i) + 2)
        done;
        let suffix = ref (Fp.inv fp !acc) in
        for i = nl - 1 downto 0 do
          let ly_inv = Fp.mul fp !suffix prefix.(i) in
          suffix := Fp.mul fp !suffix lines_arr.((3 * i) + 2);
          scaled.(2 * i) <- Fp.mul fp lines_arr.(3 * i) ly_inv;
          scaled.((2 * i) + 1) <- Fp.mul fp lines_arr.((3 * i) + 1) ly_inv
        done
      end;
      let sqrs = Array.length digits - 1 in
      Prep_xx { ops = ops_arr; lines = scaled; sqrs }

let prepare_xx prms pt =
  try record_xx prms pt prms.q_naf ~legacy_keep:false
  with Degenerate_chain ->
    record_xx prms pt (binary_digits prms.q) ~legacy_keep:true

let prepare_x1 prms pt =
  let fp = prms.fp in
  match pt with
  | Curve.Infinity -> Prep_inf
  | Curve.Affine _ ->
      let curve = prms.curve in
      let three = Fp.of_int fp 3 in
      let bits = Bigint.bit_length prms.q in
      let steps = Array.make (Stdlib.max 0 (bits - 1)) [] in
      let t = ref pt in
      for i = bits - 2 downto 0 do
        let ops = ref [] in
        let emit op = ops := op :: !ops in
        let chord_of ~x1 ~y1 ~lambda =
          Num_line
            { l0 = Fp.sub fp (Fp.mul fp lambda x1) y1; lmx = Fp.neg fp lambda }
        in
        let den_vert_of = function
          | Curve.Infinity -> () (* vertical at infinity is the constant 1 *)
          | Curve.Affine { x; _ } -> emit (Den_vert x)
        in
        (match !t with
        | Curve.Infinity -> ()
        | Curve.Affine { x; y } ->
            if Fp.is_zero fp y then begin
              emit (Num_vert x);
              t := Curve.Infinity
            end
            else begin
              let lambda =
                Fp.div fp
                  (Fp.add fp (Fp.mul fp three (Fp.sqr fp x)) (Curve.coeff_a curve))
                  (Fp.add fp y y)
              in
              let t2 = Curve.double curve !t in
              emit (chord_of ~x1:x ~y1:y ~lambda);
              den_vert_of t2;
              t := t2
            end);
        if Bigint.test_bit prms.q i then begin
          match (!t, pt) with
          | Curve.Infinity, _ -> t := pt
          | Curve.Affine { x; y }, Curve.Affine { x = xp; y = yp } ->
              if Fp.equal x xp then begin
                emit (Num_vert x);
                t := Curve.Infinity
              end
              else begin
                let lambda = Fp.div fp (Fp.sub fp yp y) (Fp.sub fp xp x) in
                let t2 = Curve.add curve !t pt in
                emit (chord_of ~x1:x ~y1:y ~lambda);
                den_vert_of t2;
                t := t2
              end
          | Curve.Affine _, Curve.Infinity -> ()
        end;
        steps.(bits - 2 - i) <- List.rev !ops
      done;
      Prep_x1 steps

let prepare_raw prms pt =
  match prms.family with
  | Y2_x3_x -> prepare_xx prms pt
  | Y2_x3_1 -> prepare_x1 prms pt

let prepare prms pt =
  (* Every long-lived verifier prepares the system generator (it is one
     side of the paper's verification equation); hand back the
     construction-time schedule instead of re-recording it. [g_prep]
     itself is built through [prepare_raw] — and [Lazy.is_val] is true
     WHILE a lazy is being forced, so this test must never be reachable
     from the suspension. *)
  if Curve.equal pt prms.g && Lazy.is_val prms.g_prep then
    Lazy.force prms.g_prep
  else prepare_raw prms pt

let make ?(family = Y2_x3_x) ~name ~p ~q () =
  if not (Prime.is_probably_prime p) then invalid_arg "Pairing.make: p not prime";
  if not (Prime.is_probably_prime q) then invalid_arg "Pairing.make: q not prime";
  if not (Bigint.equal (Bigint.erem p (Bigint.of_int 4)) (Bigint.of_int 3)) then
    invalid_arg "Pairing.make: p must be 3 mod 4";
  if
    family = Y2_x3_1
    && not (Bigint.equal (Bigint.erem p (Bigint.of_int 3)) (Bigint.of_int 2))
  then invalid_arg "Pairing.make: p must be 2 mod 3 for the x^3 + 1 family";
  let order = Bigint.succ p in
  let cofactor, rem = Bigint.divmod order q in
  if not (Bigint.is_zero rem) then invalid_arg "Pairing.make: q does not divide p+1";
  if Bigint.is_zero (Bigint.erem cofactor q) then
    invalid_arg "Pairing.make: q^2 divides p+1 (G1 would not be cyclic of order q)";
  let fp = Fp.create p in
  let curve =
    match family with
    | Y2_x3_x -> Curve.create ~a:1 ~b:0 fp
    | Y2_x3_1 -> Curve.create ~a:0 ~b:1 fp
  in
  let g = hash_to_g1_raw ~fp ~curve ~cofactor ("TRE-generator|" ^ name) in
  if not (Curve.is_infinity (Curve.mul curve q g)) then
    invalid_arg "Pairing.make: generator does not have order q";
  let final_exp = Bigint.div (Bigint.pred (Bigint.mul p p)) q in
  let zeta = match family with Y2_x3_x -> Fp2.one fp | Y2_x3_1 -> cube_root_of_unity fp in
  (* Signed-digit recodings fixed by the parameters: the NAF of q drives
     both xx-family Miller walks, the wNAF of the cofactor drives the
     cyclotomic final-exponentiation window. The width is chosen by
     costing each candidate recoding of THIS cofactor rather than by a
     bit-length threshold — the threshold form mispicked for cofactors
     whose digit pattern doesn't match their size class (mid128b sat
     below 1.0x against the reference for a full PR). The model charges
     a cyclotomic squaring per chain step at 0.7x the price of a
     multiplication (two base-field squarings vs three multiplications,
     measured), one multiplication per nonzero digit past the first, and
     the odd-power table build (one squaring plus tsize-1 products) when
     any digit exceeds 1. The exponent is fixed per parameter set, so
     the scan costs nothing on any hot path. *)
  let q_naf = wnaf_digits q 2 in
  let cofactor_wnaf =
    let cost digits =
      let n = Array.length digits in
      if n = 0 then 0
      else begin
        let nz = ref 0 and maxd = ref 1 in
        Array.iter
          (fun d ->
            if d <> 0 then incr nz;
            if abs d > !maxd then maxd := abs d)
          digits;
        let tsize = (!maxd + 1) / 2 in
        let table = if tsize > 1 then 7 + ((tsize - 1) * 10) else 0 in
        ((n - 1) * 7) + ((!nz - 1) * 10) + table
      end
    in
    (* Width 5 is the ceiling: the per-domain register file holds eight
       odd powers (digits to 15), and no candidate exponent size here
       amortizes a 16-entry table anyway. *)
    let best = ref (wnaf_digits cofactor 2) in
    for w = 3 to 5 do
      let cand = wnaf_digits cofactor w in
      if cost cand < cost !best then best := cand
    done;
    !best
  in
  let rec prms =
    {
      name; family; p; q; cofactor; fp; curve; g; final_exp; zeta;
      q_naf; cofactor_wnaf;
      g_table = lazy (Curve.Table.create curve ~bits:(Bigint.bit_length q) g);
      g_prep = lazy (prepare_raw prms g);
    }
  in
  (* The generator precomputations are forced HERE, at construction, not
     on first use: [Lazy.force] is not domain-safe (two domains racing on
     an unforced suspension can raise [Lazy.Undefined] or duplicate work),
     and a params value is exactly the thing the batch APIs share across a
     [Pool]. Construction happens once per parameter set, so the eager
     cost is paid where it cannot race. *)
  ignore (Lazy.force prms.g_table);
  ignore (Lazy.force prms.g_prep);
  prms

let hash_to_g1 prms msg =
  hash_to_g1_raw ~fp:prms.fp ~curve:prms.curve ~cofactor:prms.cofactor msg

(* Batch-verification helper: cofactor clearing commutes with linear
   combinations — sum d_i * (h * P_i) = h * (sum d_i * P_i) — so a batch
   can skip the per-item clearing mult, accumulate the raw lifts, and pay
   ONE h-mult on the sum. [hash_to_g1 prms msg] equals
   [cofactor * hash_to_g1_unclamped prms msg] for every input on which the
   clamped lift is nonzero; the exception (a lift that cofactor-clears to
   infinity, making hash_to_g1 re-roll its counter) occurs for a uniform
   lift with probability 1/q < 2^-64 and has never been observed for any
   named parameter set. *)
let hash_to_g1_unclamped prms msg =
  fst (lift_to_curve ~fp:prms.fp ~curve:prms.curve msg 0)

(* --- named parameter sets (generated by bin/paramgen, fixed seed) --- *)

let named = Hashtbl.create 4

(* The named-set cells stay lazy (building all five sets eagerly at
   module init would be wasteful), so forcing them must be serialized:
   without the mutex, two domains racing on the same first lookup hit the
   non-domain-safe [Lazy.force]. *)
let named_lock = Mutex.create ()
let force_cell cell = Mutex.protect named_lock (fun () -> Lazy.force cell)

let def_params ?family name ~p ~q =
  let cell =
    lazy (make ?family ~name ~p:(Bigint.of_string p) ~q:(Bigint.of_string q) ())
  in
  Hashtbl.replace named name cell;
  fun () -> force_cell cell

(* Constants below were produced by `dune exec bin/paramgen.exe` with the
   fixed seed "tre-paramgen-v1"; rerunning reproduces them bit-for-bit. *)

let toy64 =
  def_params "toy64"
    ~p:"0x83b0f2e27d38d3059d8287"
    ~q:"0xa2a8bbf28af65885"

let mid128 =
  def_params "mid128"
    ~p:"0xb79115a77944f9886a70613fce8e6e3b8571621ea5b5480d8686c27f4c3b5887"
    ~q:"0xe98ebd8df920bb4a05b328cd34075865"

let std160 =
  def_params "std160"
    ~p:"0xbc0030fbac55acabef9c398bc82fc33ede111d05bca74d8cd9a93ca897ec078881ddf52c66c1ebb0af9ec6c8308f58b5331ed7cc800c09ab2ef43019363c9883"
    ~q:"0xd1554dbf6d534c8896055e5b9c06157212777ca9"

let by_name name =
  match Hashtbl.find_opt named name with
  | Some cell -> Some (force_cell cell)
  | None -> None

let toy64b =
  def_params ~family:Y2_x3_1 "toy64b"
    ~p:"0x98cc26f8648a2ff1d5b3e3"
    ~q:"0xdb0fda9fdb5f5101"

let mid128b =
  def_params ~family:Y2_x3_1 "mid128b"
    ~p:"0xb8ed1956306ea251201fc874f4780a1184fc8c6a726b5203ec8c2accf057d433"
    ~q:"0xc341683dcdb86ede42971406d55325d7"

let all_names = [ "toy64"; "mid128"; "std160"; "toy64b"; "mid128b" ]

(* --- scalars and GT --- *)

let random_scalar prms rng =
  Bigint.random_in_range rng ~lo:Bigint.one ~hi:(Bigint.pred prms.q)

(* Small exponents for Bellare–Garay–Rabin batch verification,
   derandomized: the DRBG is keyed by the caller-supplied seed, which by
   convention serializes the whole batch plus the verification key. An
   adversary who tampers with any batch element thereby re-randomizes
   every exponent (the Fiat–Shamir heuristic, sound in the random-oracle
   model this paper already lives in), so a crafted combination of errors
   cancels with probability ~2^-64 per attempt. Exponents are in
   [1, 2^64], never zero — a zero exponent would drop its item from the
   check entirely. *)
let batch_exponents (_ : params) ~seed n =
  let rng =
    Hashing.Drbg.create ~seed ~personalization:"TRE-batch-exponents" ()
  in
  List.init n (fun _ ->
      Bigint.succ (Bigint.of_bytes_be (Hashing.Drbg.generate rng 8)))

let gt_mul prms a b = Fp2.mul prms.fp a b
let gt_pow prms a n = Fp2.pow prms.fp a n
let gt_inv prms a = Fp2.inv prms.fp a
let gt_equal = Fp2.equal
let gt_one prms = Fp2.one prms.fp

(* --- the modified Tate pairing ---

   Miller's algorithm in Jacobian coordinates with denominator
   elimination, evaluated at the distorted point phi(Q) = (-xq, i*yq).
   With embedding degree 2, any factor of the Miller value lying in
   GF(p)* is annihilated by the final exponentiation ((p-1) divides the
   exponent), which licenses two optimizations used here:
   - vertical lines are skipped entirely;
   - line values are scaled by their (GF(p)) denominators, so the loop
     needs no field inversion at all.

   The final exponentiation (p^2-1)/q = (p-1) * h factors through the
   Frobenius: f^(p-1) = conj(f) / f, leaving only a pow by the (much
   shorter) cofactor h. *)

(* The Miller function f_{q,P}(phi Q) for the y^2 = x^3 + x family,
   before final exponentiation. Functional reference path: allocates a
   fresh element per field operation. The production path below
   ([miller_loop_xx]) computes the same schedule through the in-place
   kernels; canonical representatives make the two bit-identical, which
   the equivalence tests and [bench --smoke] assert. *)
let miller_loop_xx_ref prms pt qt =
  let fp = prms.fp in
  match (pt, qt) with
  | Curve.Infinity, _ | _, Curve.Infinity -> Fp2.one fp
  | Curve.Affine p', Curve.Affine q' ->
      let xp = p'.x and yp = p'.y in
      let xq = q'.x and yq = q'.y in
      let one = Fp.one fp in
      let f = ref (Fp2.one fp) in
      let t = ref { mx = xp; my = yp; mz = one } in
      let bits = Bigint.bit_length prms.q in
      for i = bits - 2 downto 0 do
        let { mx = x; my = y; mz = z } = !t in
        f := Fp2.sqr fp !f;
        if Fp.is_zero fp z then ()
        else if Fp.is_zero fp y then
          (* 2-torsion: vertical tangent, contributes a GF(p) factor. *)
          t := { mx = one; my = one; mz = Fp.zero fp }
        else begin
          (* Doubling step with scaled tangent-line evaluation:
             M = 3X^2 + Z^4, W = 2YZ (= new Z);
             l = [M*(Z^2 xq + X) - 2Y^2] + (W Z^2 yq) i. *)
          let y2 = Fp.sqr fp y in
          let z2 = Fp.sqr fp z in
          let x2 = Fp.sqr fp x in
          let m = Fp.add fp (Fp.add fp (Fp.add fp x2 x2) x2) (Fp.sqr fp z2) in
          let w = Fp.mul fp (Fp.add fp y y) z in
          let re =
            Fp.sub fp
              (Fp.mul fp m (Fp.add fp (Fp.mul fp z2 xq) x))
              (Fp.add fp y2 y2)
          in
          let im = Fp.mul fp (Fp.mul fp w z2) yq in
          f := Fp2.mul fp !f (Fp2.make ~re ~im);
          (* Complete the doubling. *)
          let s =
            let xy2 = Fp.mul fp x y2 in
            let d = Fp.add fp xy2 xy2 in
            Fp.add fp d d
          in
          let x' = Fp.sub fp (Fp.sqr fp m) (Fp.add fp s s) in
          let y4_8 =
            let y4 = Fp.sqr fp y2 in
            let d = Fp.add fp y4 y4 in
            let d = Fp.add fp d d in
            Fp.add fp d d
          in
          let y' = Fp.sub fp (Fp.mul fp m (Fp.sub fp s x')) y4_8 in
          t := { mx = x'; my = y'; mz = w }
        end;
        if Bigint.test_bit prms.q i then begin
          let { mx = x; my = y; mz = z } = !t in
          if Fp.is_zero fp z then t := { mx = xp; my = yp; mz = one }
          else begin
            (* Mixed addition with scaled chord-line evaluation:
               H = xp Z^2 - X, R = yp Z^3 - Y, Z' = Z H;
               l = [R*(xq + xp) - Z' yp] + (Z' yq) i. *)
            let z2 = Fp.sqr fp z in
            let u2 = Fp.mul fp xp z2 in
            let s2 = Fp.mul fp yp (Fp.mul fp z2 z) in
            let h = Fp.sub fp u2 x in
            let r = Fp.sub fp s2 y in
            if Fp.is_zero fp h then
              (* T = +-P: the chord is vertical (or tangent at P, which
                 cannot occur for prime q > 2 mid-loop); GF(p) factor. *)
              t :=
                (if Fp.is_zero fp r then !t (* unreachable for prime q *)
                 else { mx = one; my = one; mz = Fp.zero fp })
            else begin
              let z' = Fp.mul fp z h in
              let re = Fp.sub fp (Fp.mul fp r (Fp.add fp xq xp)) (Fp.mul fp z' yp) in
              let im = Fp.mul fp z' yq in
              f := Fp2.mul fp !f (Fp2.make ~re ~im);
              let h2 = Fp.sqr fp h in
              let h3 = Fp.mul fp h2 h in
              let xh2 = Fp.mul fp x h2 in
              let x' = Fp.sub fp (Fp.sub fp (Fp.sqr fp r) h3) (Fp.add fp xh2 xh2) in
              let y' = Fp.sub fp (Fp.mul fp r (Fp.sub fp xh2 x')) (Fp.mul fp y h3) in
              t := { mx = x'; my = y'; mz = z' }
            end
          end
        end
      done;
      !f

(* In-place BINARY Miller loop for the x^3 + x family: one register file
   (the Jacobian accumulator T, six temporaries, a reusable line value)
   plus the GF(p^2) accumulator f, all allocated once per call and
   mutated by the {!Fp.Mut} / {!Fp2.Mut} kernels — the ~bits iterations
   allocate nothing. Same field expressions AND the same schedule as
   [miller_loop_xx_ref] above, branch for branch, so the two are
   bit-identical even before the final exponentiation. Kept as the
   fallback for degenerate (low-order) inputs on which the signed-digit
   production loop below bails out. [f]'s buffers are freshly allocated
   here, so returning it is safe; the caller owns an ordinary immutable
   value. *)
let miller_loop_xx_bin prms pt qt =
  let fp = prms.fp in
  match (pt, qt) with
  | Curve.Infinity, _ | _, Curve.Infinity -> Fp2.one fp
  | Curve.Affine p', Curve.Affine q' ->
      let xp = p'.x and yp = p'.y in
      let xq = q'.x and yq = q'.y in
      let f = Fp2.Mut.alloc fp in
      Fp2.Mut.set_one fp f;
      let mx = Fp.Mut.copy fp xp
      and my = Fp.Mut.copy fp yp
      and mz = Fp.Mut.alloc fp in
      Fp.Mut.set_one fp mz;
      let u0 = Fp.Mut.alloc fp
      and u1 = Fp.Mut.alloc fp
      and u2 = Fp.Mut.alloc fp
      and u3 = Fp.Mut.alloc fp
      and u4 = Fp.Mut.alloc fp
      and u5 = Fp.Mut.alloc fp in
      let lre = Fp.Mut.alloc fp and lim = Fp.Mut.alloc fp in
      let line = Fp2.make ~re:lre ~im:lim in
      let set_torsion () =
        Fp.Mut.set_one fp mx;
        Fp.Mut.set_one fp my;
        Fp.Mut.set_zero fp mz
      in
      let bits = Bigint.bit_length prms.q in
      for i = bits - 2 downto 0 do
        Fp2.Mut.sqr_into fp f f;
        if Fp.is_zero fp mz then ()
        else if Fp.is_zero fp my then set_torsion ()
        else begin
          (* Doubling with scaled tangent line, as in the reference:
             M = 3X^2 + Z^4, W = 2YZ;
             l = [M*(Z^2 xq + X) - 2Y^2] + (W Z^2 yq) i. *)
          Fp.Mut.sqr_into fp u0 my; (* u0 = Y^2 *)
          Fp.Mut.sqr_into fp u1 mz; (* u1 = Z^2 *)
          Fp.Mut.sqr_into fp u2 mx; (* u2 = X^2 *)
          Fp.Mut.add_into fp u3 u2 u2;
          Fp.Mut.add_into fp u3 u3 u2; (* u3 = 3X^2 *)
          Fp.Mut.sqr_into fp u4 u1;
          Fp.Mut.add_into fp u3 u3 u4; (* u3 = M *)
          Fp.Mut.add_into fp u4 my my;
          Fp.Mut.mul_into fp mz u4 mz; (* Z' = W = 2YZ; old Z^2 lives in u1 *)
          Fp.Mut.mul_into fp u4 u1 xq;
          Fp.Mut.add_into fp u4 u4 mx;
          Fp.Mut.mul_into fp u4 u3 u4;
          Fp.Mut.add_into fp u5 u0 u0;
          Fp.Mut.sub_into fp lre u4 u5; (* re = M(Z^2 xq + X) - 2Y^2 *)
          Fp.Mut.mul_into fp u4 mz u1;
          Fp.Mut.mul_into fp lim u4 yq; (* im = W Z^2 yq *)
          Fp2.Mut.mul_into fp f f line;
          (* Complete the doubling. *)
          Fp.Mut.mul_into fp u4 mx u0;
          Fp.Mut.add_into fp u4 u4 u4;
          Fp.Mut.add_into fp u4 u4 u4; (* u4 = s = 4XY^2 *)
          Fp.Mut.sqr_into fp u2 u3;
          Fp.Mut.sub_into fp u2 u2 u4;
          Fp.Mut.sub_into fp u2 u2 u4; (* u2 = X' = M^2 - 2s *)
          Fp.Mut.sqr_into fp u0 u0;
          Fp.Mut.add_into fp u0 u0 u0;
          Fp.Mut.add_into fp u0 u0 u0;
          Fp.Mut.add_into fp u0 u0 u0; (* u0 = 8Y^4 *)
          Fp.Mut.sub_into fp u4 u4 u2;
          Fp.Mut.mul_into fp u4 u3 u4;
          Fp.Mut.sub_into fp u4 u4 u0; (* u4 = Y' = M(s - X') - 8Y^4 *)
          Fp.Mut.set fp mx u2;
          Fp.Mut.set fp my u4
        end;
        if Bigint.test_bit prms.q i then begin
          if Fp.is_zero fp mz then begin
            Fp.Mut.set fp mx xp;
            Fp.Mut.set fp my yp;
            Fp.Mut.set_one fp mz
          end
          else begin
            (* Mixed addition with scaled chord line:
               H = xp Z^2 - X, R = yp Z^3 - Y, Z' = Z H;
               l = [R*(xq + xp) - Z' yp] + (Z' yq) i. *)
            Fp.Mut.sqr_into fp u0 mz; (* u0 = Z^2 *)
            Fp.Mut.mul_into fp u1 xp u0;
            Fp.Mut.sub_into fp u1 u1 mx; (* u1 = H *)
            Fp.Mut.mul_into fp u2 u0 mz;
            Fp.Mut.mul_into fp u2 yp u2;
            Fp.Mut.sub_into fp u2 u2 my; (* u2 = R *)
            if Fp.is_zero fp u1 then begin
              if not (Fp.is_zero fp u2) then set_torsion ()
              (* else T = P mid-loop: unreachable for prime q *)
            end
            else begin
              Fp.Mut.mul_into fp mz mz u1; (* Z' = Z H *)
              Fp.Mut.add_into fp u3 xq xp;
              Fp.Mut.mul_into fp u3 u2 u3;
              Fp.Mut.mul_into fp u4 mz yp;
              Fp.Mut.sub_into fp lre u3 u4; (* re = R(xq + xp) - Z' yp *)
              Fp.Mut.mul_into fp lim mz yq; (* im = Z' yq *)
              Fp2.Mut.mul_into fp f f line;
              Fp.Mut.sqr_into fp u3 u1; (* u3 = H^2 *)
              Fp.Mut.mul_into fp u4 u3 u1; (* u4 = H^3 *)
              Fp.Mut.mul_into fp u3 mx u3; (* u3 = X H^2 *)
              Fp.Mut.sqr_into fp u5 u2;
              Fp.Mut.sub_into fp u5 u5 u4;
              Fp.Mut.sub_into fp u5 u5 u3;
              Fp.Mut.sub_into fp u5 u5 u3; (* u5 = X' = R^2 - H^3 - 2XH^2 *)
              Fp.Mut.sub_into fp u3 u3 u5;
              Fp.Mut.mul_into fp u3 u2 u3;
              Fp.Mut.mul_into fp u4 my u4;
              Fp.Mut.sub_into fp u3 u3 u4; (* u3 = Y' = R(XH^2 - X') - Y H^3 *)
              Fp.Mut.set fp mx u5;
              Fp.Mut.set fp my u3
            end
          end
        end
      done;
      f

(* --- the shared xx-family NAF walker ---

   The signed-digit Miller step, factored out of the single-pair loop so
   that the product kernel below can drive SEVERAL walkers under one
   shared f^2 squaring chain. A walker owns its Jacobian accumulator
   (mx, my, mz) and the negated y (ypn); the temporaries u0..u5 and the
   line-value buffers are transient within one step and shared across
   all walkers of a product. Each step folds its line values into the
   caller's f through the lazy-reduction product. *)

type xx_walker = {
  w_xp : Fp.t;
  w_yp : Fp.t;
  w_ypn : Fp.t; (* owned: -yp *)
  w_xq : Fp.t;
  w_yq : Fp.t;
  w_mx : Fp.t; (* owned register file: Jacobian T *)
  w_my : Fp.t;
  w_mz : Fp.t;
}

(* Transient step scratch, shared by every walker of one Miller product
   (each walker finishes its step before the next one starts). *)
type xx_scratch = {
  u0 : Fp.t;
  u1 : Fp.t;
  u2 : Fp.t;
  u3 : Fp.t;
  u4 : Fp.t;
  u5 : Fp.t;
  lre : Fp.t;
  lim : Fp.t;
  line : Fp2.t; (* { re = lre; im = lim } *)
}

let xx_scratch_alloc fp =
  let lre = Fp.Mut.alloc fp and lim = Fp.Mut.alloc fp in
  {
    u0 = Fp.Mut.alloc fp;
    u1 = Fp.Mut.alloc fp;
    u2 = Fp.Mut.alloc fp;
    u3 = Fp.Mut.alloc fp;
    u4 = Fp.Mut.alloc fp;
    u5 = Fp.Mut.alloc fp;
    lre;
    lim;
    line = Fp2.make ~re:lre ~im:lim;
  }

let xx_walker_make fp ~xp ~yp ~xq ~yq =
  let ypn = Fp.Mut.alloc fp in
  Fp.Mut.neg_into fp ypn yp;
  let mz = Fp.Mut.alloc fp in
  Fp.Mut.set_one fp mz;
  {
    w_xp = xp;
    w_yp = yp;
    w_ypn = ypn;
    w_xq = xq;
    w_yq = yq;
    w_mx = Fp.Mut.copy fp xp;
    w_my = Fp.Mut.copy fp yp;
    w_mz = mz;
  }

(* One signed digit of one walker: the doubling (with scaled tangent
   line folded into [f]) and, for a nonzero digit, the mixed addition of
   dP = (xp, +-yp) (with scaled chord line). Raises [Degenerate_chain]
   on coincident addition operands — low-order inputs only. *)
let xx_step fp sc w f d =
  let { u0; u1; u2; u3; u4; u5; lre; lim; line } = sc in
  let mx = w.w_mx and my = w.w_my and mz = w.w_mz in
  let xp = w.w_xp and xq = w.w_xq and yq = w.w_yq in
  let set_torsion () =
    Fp.Mut.set_one fp mx;
    Fp.Mut.set_one fp my;
    Fp.Mut.set_zero fp mz
  in
  if Fp.is_zero fp mz then ()
  else if Fp.is_zero fp my then set_torsion ()
  else begin
    (* Doubling with scaled tangent line (see the binary loop):
       M = 3X^2 + Z^4, W = 2YZ;
       l = [M*(Z^2 xq + X) - 2Y^2] + (W Z^2 yq) i. *)
    Fp.Mut.sqr_into fp u0 my; (* u0 = Y^2 *)
    Fp.Mut.sqr_into fp u1 mz; (* u1 = Z^2 *)
    Fp.Mut.sqr_into fp u2 mx; (* u2 = X^2 *)
    Fp.Mut.add_into fp u3 u2 u2;
    Fp.Mut.add_into fp u3 u3 u2; (* u3 = 3X^2 *)
    Fp.Mut.sqr_into fp u4 u1;
    Fp.Mut.add_into fp u3 u3 u4; (* u3 = M *)
    Fp.Mut.add_into fp u4 my my;
    Fp.Mut.mul_into fp mz u4 mz; (* Z' = W = 2YZ; old Z^2 lives in u1 *)
    Fp.Mut.mul_into fp u4 u1 xq;
    Fp.Mut.add_into fp u4 u4 mx;
    Fp.Mut.mul_into fp u4 u3 u4;
    Fp.Mut.add_into fp u5 u0 u0;
    Fp.Mut.sub_into fp lre u4 u5; (* re = M(Z^2 xq + X) - 2Y^2 *)
    Fp.Mut.mul_into fp u4 mz u1;
    Fp.Mut.mul_into fp lim u4 yq; (* im = W Z^2 yq *)
    Fp2.Mut.mul_into fp f f line;
    (* Complete the doubling. *)
    Fp.Mut.mul_into fp u4 mx u0;
    Fp.Mut.add_into fp u4 u4 u4;
    Fp.Mut.add_into fp u4 u4 u4; (* u4 = s = 4XY^2 *)
    Fp.Mut.sqr_into fp u2 u3;
    Fp.Mut.sub_into fp u2 u2 u4;
    Fp.Mut.sub_into fp u2 u2 u4; (* u2 = X' = M^2 - 2s *)
    Fp.Mut.sqr_into fp u0 u0;
    Fp.Mut.add_into fp u0 u0 u0;
    Fp.Mut.add_into fp u0 u0 u0;
    Fp.Mut.add_into fp u0 u0 u0; (* u0 = 8Y^4 *)
    Fp.Mut.sub_into fp u4 u4 u2;
    Fp.Mut.mul_into fp u4 u3 u4;
    Fp.Mut.sub_into fp u4 u4 u0; (* u4 = Y' = M(s - X') - 8Y^4 *)
    Fp.Mut.set fp mx u2;
    Fp.Mut.set fp my u4
  end;
  if d <> 0 then begin
    (* The digit's point is dP = (xp, +-yp). *)
    let ypd = if d > 0 then w.w_yp else w.w_ypn in
    if Fp.is_zero fp mz then begin
      Fp.Mut.set fp mx xp;
      Fp.Mut.set fp my ypd;
      Fp.Mut.set_one fp mz
    end
    else begin
      (* Mixed addition with scaled chord line:
         H = xp Z^2 - X, R = yp' Z^3 - Y, Z' = Z H;
         l = [R(xq + xp) - Z' yp'] + (Z' yq) i. *)
      Fp.Mut.sqr_into fp u0 mz; (* u0 = Z^2 *)
      Fp.Mut.mul_into fp u1 xp u0;
      Fp.Mut.sub_into fp u1 u1 mx; (* u1 = H *)
      Fp.Mut.mul_into fp u2 u0 mz;
      Fp.Mut.mul_into fp u2 ypd u2;
      Fp.Mut.sub_into fp u2 u2 my; (* u2 = R *)
      if Fp.is_zero fp u1 then begin
        if Fp.is_zero fp u2 then raise Degenerate_chain
        else set_torsion () (* T = -dP: vertical chord, GF(p) factor *)
      end
      else begin
        Fp.Mut.mul_into fp mz mz u1; (* Z' = Z H *)
        Fp.Mut.add_into fp u3 xq xp;
        Fp.Mut.mul_into fp u3 u2 u3;
        Fp.Mut.mul_into fp u4 mz ypd;
        Fp.Mut.sub_into fp lre u3 u4; (* re = R(xq + xp) - Z' yp' *)
        Fp.Mut.mul_into fp lim mz yq; (* im = Z' yq *)
        Fp2.Mut.mul_into fp f f line;
        Fp.Mut.sqr_into fp u3 u1; (* u3 = H^2 *)
        Fp.Mut.mul_into fp u4 u3 u1; (* u4 = H^3 *)
        Fp.Mut.mul_into fp u3 mx u3; (* u3 = X H^2 *)
        Fp.Mut.sqr_into fp u5 u2;
        Fp.Mut.sub_into fp u5 u5 u4;
        Fp.Mut.sub_into fp u5 u5 u3;
        Fp.Mut.sub_into fp u5 u5 u3; (* u5 = X' = R^2 - H^3 - 2XH^2 *)
        Fp.Mut.sub_into fp u3 u3 u5;
        Fp.Mut.mul_into fp u3 u2 u3;
        Fp.Mut.mul_into fp u4 my u4;
        Fp.Mut.sub_into fp u3 u3 u4; (* u3 = Y' = R(XH^2 - X') - Y H^3 *)
        Fp.Mut.set fp mx u5;
        Fp.Mut.set fp my u3
      end
    end
  end

(* Production Miller loop for the x^3 + x family: the same in-place
   register discipline as [miller_loop_xx_bin], walking the signed-digit
   NAF schedule of q instead of its bits — ~bits/3 addition steps
   instead of ~bits/2, with a negative digit adding -P = (xp, -yp)
   through the identical mixed-addition kernel. The Miller value differs
   from the binary one only by GF(p)* factors, which the final
   exponentiation annihilates; the differential tests pin the
   post-exponentiation agreement. Raises [Degenerate_chain] on the one
   unmodelled degeneracy (coincident addition operands, low-order inputs
   only); the dispatching wrapper then falls back to the binary loop. *)
let miller_loop_xx_naf prms pt qt =
  let fp = prms.fp in
  match (pt, qt) with
  | Curve.Infinity, _ | _, Curve.Infinity -> Fp2.one fp
  | Curve.Affine p', Curve.Affine q' ->
      let f = Fp2.Mut.alloc fp in
      Fp2.Mut.set_one fp f;
      let sc = xx_scratch_alloc fp in
      let w = xx_walker_make fp ~xp:p'.x ~yp:p'.y ~xq:q'.x ~yq:q'.y in
      let digits = prms.q_naf in
      for i = 1 to Array.length digits - 1 do
        Fp2.Mut.sqr_into fp f f;
        xx_step fp sc w f digits.(i)
      done;
      f

let miller_loop_xx prms pt qt =
  try miller_loop_xx_naf prms pt qt
  with Degenerate_chain -> miller_loop_xx_bin prms pt qt

(* The Miller function for the y^2 = x^3 + 1 family, evaluated at the
   distorted point phi(Q) = (zeta xq, yq) with zeta in GF(p^2). Because
   the distorted x-coordinate is a full GF(p^2) element, vertical lines do
   NOT collapse into GF(p), so denominator elimination is unavailable:
   this is the textbook affine Miller iteration with separate numerator /
   denominator accumulators (merged by one inversion at the end).
   Correctness-first reference implementation — the paper's constructions
   work over "any" GDH group, and this is the second classic instance
   (the Boneh–Franklin curve); the optimized production path is
   [miller_loop_xx]. *)
let miller_loop_x1 prms pt qt =
  let fp = prms.fp in
  match (pt, qt) with
  | Curve.Infinity, _ | _, Curve.Infinity -> Fp2.one fp
  | Curve.Affine _, Curve.Affine q' ->
      (* phi(Q) coordinates in GF(p^2). *)
      let xq = Fp2.mul_fp fp q'.x prms.zeta in
      let yq = Fp2.of_fp fp q'.y in
      let curve = prms.curve in
      let f_num = ref (Fp2.one fp) and f_den = ref (Fp2.one fp) in
      let t = ref pt in
      (* Line through (x1,y1) with slope lambda, at phi(Q). *)
      let chord ~x1 ~y1 ~lambda =
        Fp2.sub fp
          (Fp2.sub fp yq (Fp2.of_fp fp y1))
          (Fp2.mul_fp fp lambda (Fp2.sub fp xq (Fp2.of_fp fp x1)))
      in
      let vertical_at = function
        | Curve.Infinity -> Fp2.one fp
        | Curve.Affine { x; _ } -> Fp2.sub fp xq (Fp2.of_fp fp x)
      in
      let three = Fp.of_int fp 3 in
      let bits = Bigint.bit_length prms.q in
      for i = bits - 2 downto 0 do
        f_num := Fp2.sqr fp !f_num;
        f_den := Fp2.sqr fp !f_den;
        (match !t with
        | Curve.Infinity -> ()
        | Curve.Affine { x; y } ->
            if Fp.is_zero fp y then begin
              (* Tangent is vertical; 2T = infinity. *)
              f_num := Fp2.mul fp !f_num (vertical_at !t);
              t := Curve.Infinity
            end
            else begin
              let lambda =
                Fp.div fp
                  (Fp.add fp (Fp.mul fp three (Fp.sqr fp x)) (Curve.coeff_a curve))
                  (Fp.add fp y y)
              in
              let t2 = Curve.double curve !t in
              f_num := Fp2.mul fp !f_num (chord ~x1:x ~y1:y ~lambda);
              f_den := Fp2.mul fp !f_den (vertical_at t2);
              t := t2
            end);
        if Bigint.test_bit prms.q i then begin
          match (!t, pt) with
          | Curve.Infinity, _ -> t := pt
          | Curve.Affine { x; y }, Curve.Affine { x = xp; y = yp } ->
              if Fp.equal x xp then begin
                (* T = -P (or T = P, impossible mid-loop for prime q):
                   vertical chord; T + P = infinity. *)
                f_num := Fp2.mul fp !f_num (vertical_at !t);
                t := Curve.Infinity
              end
              else begin
                let lambda = Fp.div fp (Fp.sub fp yp y) (Fp.sub fp xp x) in
                let t2 = Curve.add curve !t pt in
                f_num := Fp2.mul fp !f_num (chord ~x1:x ~y1:y ~lambda);
                f_den := Fp2.mul fp !f_den (vertical_at t2);
                t := t2
              end
          | Curve.Affine _, Curve.Infinity -> ()
        end
      done;
      Fp2.mul fp !f_num (Fp2.inv fp !f_den)

(* --- the x1-family Jacobian walker ---

   Production Miller loop for y^2 = x^3 + 1: the affine reference above
   pays ~1.5 field inversions per bit (one per slope); this walker runs
   the same binary schedule in Jacobian coordinates with every line
   SCALED by its GF(p)* denominator, so the whole loop performs no
   inversion at all (one GF(p^2) inversion merges the num/den
   accumulators at the end). Unlike the xx family the distorted
   x-coordinate zeta*xq is a full GF(p^2) element, so vertical lines do
   not collapse into GF(p) and the denominator chain must be kept — two
   shared squaring chains in a product, still zero inversions.

   Branch structure mirrors [miller_loop_x1] exactly (Z = 0 <=> T
   at infinity, Y = 0 <=> vertical tangent, H = 0 <=> x = xp), so the
   degenerate cases land in the same cases as the reference and no
   [Degenerate_chain] escape is needed. Line values:
   - tangent at T, scaled by W Z^2 (W = 2YZ, M = 3X^2):
     [M X - 2Y^2 + W Z^2 yq] - M Z^2 (zeta xq)
   - chord through T and P, evaluated at P, scaled by Z' = ZH:
     [Z' yq - Z' yp + R xp] - R (zeta xq)
   - verticals, scaled by Z^2: Z^2 (zeta xq) - X. *)

type x1_walker = {
  j_xp : Fp.t;
  j_yp : Fp.t;
  j_yq : Fp.t;
  j_zxr : Fp.t; (* owned: re (zeta xq) *)
  j_zxi : Fp.t; (* owned: im (zeta xq) *)
  j_mx : Fp.t; (* owned register file: Jacobian T *)
  j_my : Fp.t;
  j_mz : Fp.t;
}

let x1_walker_make prms ~xp ~yp ~xq ~yq =
  let fp = prms.fp in
  let zxr = Fp.Mut.alloc fp and zxi = Fp.Mut.alloc fp in
  Fp.Mut.mul_into fp zxr prms.zeta.Fp2.re xq;
  Fp.Mut.mul_into fp zxi prms.zeta.Fp2.im xq;
  let mz = Fp.Mut.alloc fp in
  Fp.Mut.set_one fp mz;
  {
    j_xp = xp;
    j_yp = yp;
    j_yq = yq;
    j_zxr = zxr;
    j_zxi = zxi;
    j_mx = Fp.Mut.copy fp xp;
    j_my = Fp.Mut.copy fp yp;
    j_mz = mz;
  }

(* One bit of one x1 walker: numerator lines fold into [fnum],
   denominator verticals into [fden]; the shared squarings of both
   accumulators are the driver's. Scratch discipline as in [xx_step]. *)
let x1_step fp sc w ~fnum ~fden d =
  let { u0; u1; u2; u3; u4; u5; lre; lim; line } = sc in
  let mx = w.j_mx and my = w.j_my and mz = w.j_mz in
  let xp = w.j_xp and yp = w.j_yp and yq = w.j_yq in
  let zxr = w.j_zxr and zxi = w.j_zxi in
  (if Fp.is_zero fp mz then ()
   else if Fp.is_zero fp my then begin
     (* Vertical tangent (2-torsion): num *= Z^2 xq2 - X; 2T = inf. *)
     Fp.Mut.sqr_into fp u1 mz;
     Fp.Mut.mul_into fp u2 u1 zxr;
     Fp.Mut.sub_into fp lre u2 mx;
     Fp.Mut.mul_into fp lim u1 zxi;
     Fp2.Mut.mul_into fp fnum fnum line;
     Fp.Mut.set_zero fp mz
   end
   else begin
     (* Tangent line, scaled by W Z^2:
        [M X - 2Y^2 + W Z^2 yq] - M Z^2 (zeta xq), M = 3X^2, W = 2YZ. *)
     Fp.Mut.sqr_into fp u0 my; (* u0 = Y^2 *)
     Fp.Mut.sqr_into fp u1 mz; (* u1 = Z^2 *)
     Fp.Mut.sqr_into fp u2 mx; (* u2 = X^2 *)
     Fp.Mut.add_into fp u3 u2 u2;
     Fp.Mut.add_into fp u3 u3 u2; (* u3 = M = 3X^2 (a = 0) *)
     Fp.Mut.add_into fp u4 my my;
     Fp.Mut.mul_into fp mz u4 mz; (* Z' = W = 2YZ; old Z^2 lives in u1 *)
     Fp.Mut.mul_into fp u4 u3 mx; (* u4 = M X *)
     Fp.Mut.add_into fp u5 u0 u0;
     Fp.Mut.sub_into fp u4 u4 u5; (* u4 = M X - 2Y^2 *)
     Fp.Mut.mul_into fp u5 mz u1;
     Fp.Mut.mul_into fp u5 u5 yq; (* u5 = W Z^2 yq *)
     Fp.Mut.add_into fp u4 u4 u5;
     Fp.Mut.mul_into fp u5 u3 u1; (* u5 = M Z^2 *)
     Fp.Mut.mul_into fp u2 u5 zxr;
     Fp.Mut.sub_into fp lre u4 u2;
     Fp.Mut.mul_into fp lim u5 zxi;
     Fp.Mut.neg_into fp lim lim;
     Fp2.Mut.mul_into fp fnum fnum line;
     (* Complete the doubling (a = 0): s = 4XY^2, X' = M^2 - 2s,
        Y' = M(s - X') - 8Y^4. *)
     Fp.Mut.mul_into fp u4 mx u0;
     Fp.Mut.add_into fp u4 u4 u4;
     Fp.Mut.add_into fp u4 u4 u4; (* u4 = s *)
     Fp.Mut.sqr_into fp u2 u3;
     Fp.Mut.sub_into fp u2 u2 u4;
     Fp.Mut.sub_into fp u2 u2 u4; (* u2 = X' *)
     Fp.Mut.sqr_into fp u0 u0;
     Fp.Mut.add_into fp u0 u0 u0;
     Fp.Mut.add_into fp u0 u0 u0;
     Fp.Mut.add_into fp u0 u0 u0; (* u0 = 8Y^4 *)
     Fp.Mut.sub_into fp u4 u4 u2;
     Fp.Mut.mul_into fp u4 u3 u4;
     Fp.Mut.sub_into fp u4 u4 u0; (* u4 = Y' *)
     Fp.Mut.set fp mx u2;
     Fp.Mut.set fp my u4;
     (* Denominator vertical at 2T, scaled by Z'^2. *)
     Fp.Mut.sqr_into fp u1 mz;
     Fp.Mut.mul_into fp u2 u1 zxr;
     Fp.Mut.sub_into fp lre u2 mx;
     Fp.Mut.mul_into fp lim u1 zxi;
     Fp2.Mut.mul_into fp fden fden line
   end);
  if d <> 0 then begin
    if Fp.is_zero fp mz then begin
      Fp.Mut.set fp mx xp;
      Fp.Mut.set fp my yp;
      Fp.Mut.set_one fp mz
    end
    else begin
      Fp.Mut.sqr_into fp u0 mz; (* u0 = Z^2 *)
      Fp.Mut.mul_into fp u1 xp u0;
      Fp.Mut.sub_into fp u1 u1 mx; (* u1 = H *)
      if Fp.is_zero fp u1 then begin
        (* T = +-P: vertical chord at T; T + P treated as infinity,
           mirroring the reference branch. *)
        Fp.Mut.mul_into fp u2 u0 zxr;
        Fp.Mut.sub_into fp lre u2 mx;
        Fp.Mut.mul_into fp lim u0 zxi;
        Fp2.Mut.mul_into fp fnum fnum line;
        Fp.Mut.set_zero fp mz
      end
      else begin
        Fp.Mut.mul_into fp u2 u0 mz;
        Fp.Mut.mul_into fp u2 yp u2;
        Fp.Mut.sub_into fp u2 u2 my; (* u2 = R = yp Z^3 - Y *)
        Fp.Mut.mul_into fp mz mz u1; (* Z' = Z H *)
        (* Chord through T and P, evaluated at P, scaled by Z':
           [Z'(yq - yp) + R xp] - R (zeta xq). *)
        Fp.Mut.mul_into fp u3 mz yq;
        Fp.Mut.mul_into fp u4 mz yp;
        Fp.Mut.sub_into fp u3 u3 u4;
        Fp.Mut.mul_into fp u4 u2 xp;
        Fp.Mut.add_into fp u3 u3 u4;
        Fp.Mut.mul_into fp u4 u2 zxr;
        Fp.Mut.sub_into fp lre u3 u4;
        Fp.Mut.mul_into fp lim u2 zxi;
        Fp.Mut.neg_into fp lim lim;
        Fp2.Mut.mul_into fp fnum fnum line;
        (* Complete the mixed addition (as in the xx kernel). *)
        Fp.Mut.sqr_into fp u3 u1; (* u3 = H^2 *)
        Fp.Mut.mul_into fp u4 u3 u1; (* u4 = H^3 *)
        Fp.Mut.mul_into fp u3 mx u3; (* u3 = X H^2 *)
        Fp.Mut.sqr_into fp u5 u2;
        Fp.Mut.sub_into fp u5 u5 u4;
        Fp.Mut.sub_into fp u5 u5 u3;
        Fp.Mut.sub_into fp u5 u5 u3; (* u5 = X' *)
        Fp.Mut.sub_into fp u3 u3 u5;
        Fp.Mut.mul_into fp u3 u2 u3;
        Fp.Mut.mul_into fp u4 my u4;
        Fp.Mut.sub_into fp u3 u3 u4; (* u3 = Y' *)
        Fp.Mut.set fp mx u5;
        Fp.Mut.set fp my u3;
        (* Denominator vertical at T + P, scaled by Z'^2. *)
        Fp.Mut.sqr_into fp u0 mz;
        Fp.Mut.mul_into fp u2 u0 zxr;
        Fp.Mut.sub_into fp lre u2 mx;
        Fp.Mut.mul_into fp lim u0 zxi;
        Fp2.Mut.mul_into fp fden fden line
      end
    end
  end

let miller_loop_x1_jac prms pt qt =
  let fp = prms.fp in
  match (pt, qt) with
  | Curve.Infinity, _ | _, Curve.Infinity -> Fp2.one fp
  | Curve.Affine p', Curve.Affine q' ->
      let fnum = Fp2.Mut.alloc fp and fden = Fp2.Mut.alloc fp in
      Fp2.Mut.set_one fp fnum;
      Fp2.Mut.set_one fp fden;
      let sc = xx_scratch_alloc fp in
      let w = x1_walker_make prms ~xp:p'.x ~yp:p'.y ~xq:q'.x ~yq:q'.y in
      let q = prms.q in
      for i = Bigint.bit_length q - 2 downto 0 do
        Fp2.Mut.sqr_into fp fnum fnum;
        Fp2.Mut.sqr_into fp fden fden;
        x1_step fp sc w ~fnum ~fden (if Bigint.test_bit q i then 1 else 0)
      done;
      Fp2.mul fp fnum (Fp2.inv fp fden)

(* --- evaluating prepared pairings --- *)

(* One pass over the flat schedule: per op either an in-place GF(p^2)
   squaring of f, or a line evaluation — ONE base-field mul and one add,
   the imaginary part being Q's own y-coordinate (the lines are
   pre-scaled by 1/ly at preparation) — folded into f through the
   lazy-reduction product. The only per-call allocations are f itself
   (returned to the caller) and the reusable line value; the recorded
   coefficients are read in storage order. *)
let miller_prepared_xx prms ops lines qt =
  let fp = prms.fp in
  match qt with
  | Curve.Infinity -> Fp2.one fp
  | Curve.Affine q' ->
      let xq = q'.x and yq = q'.y in
      let f = Fp2.Mut.alloc fp in
      Fp2.Mut.set_one fp f;
      let lre = Fp.Mut.alloc fp in
      let line = Fp2.make ~re:lre ~im:yq in
      let li = ref 0 in
      for oi = 0 to Array.length ops - 1 do
        if ops.(oi) = 0 then Fp2.Mut.sqr_into fp f f
        else begin
          let a0 = lines.(!li) and ax = lines.(!li + 1) in
          li := !li + 2;
          Fp.Mut.mul_into fp lre ax xq;
          Fp.Mut.add_into fp lre a0 lre;
          Fp2.Mut.mul_into fp f f line
        end
      done;
      f

let miller_prepared_x1 prms steps qt =
  let fp = prms.fp in
  match qt with
  | Curve.Infinity -> Fp2.one fp
  | Curve.Affine q' ->
      let xq2 = Fp2.mul_fp fp q'.x prms.zeta in
      let yq = q'.y in
      let f_num = ref (Fp2.one fp) and f_den = ref (Fp2.one fp) in
      Array.iter
        (fun ops ->
          f_num := Fp2.sqr fp !f_num;
          f_den := Fp2.sqr fp !f_den;
          List.iter
            (function
              | Num_line { l0; lmx } ->
                  let v =
                    Fp2.add fp
                      (Fp2.of_fp fp (Fp.add fp l0 yq))
                      (Fp2.mul_fp fp lmx xq2)
                  in
                  f_num := Fp2.mul fp !f_num v
              | Num_vert x ->
                  f_num := Fp2.mul fp !f_num (Fp2.sub fp xq2 (Fp2.of_fp fp x))
              | Den_vert x ->
                  f_den := Fp2.mul fp !f_den (Fp2.sub fp xq2 (Fp2.of_fp fp x)))
            ops)
        steps;
      Fp2.mul fp !f_num (Fp2.inv fp !f_den)

let miller_loop_prepared prms prep qt =
  match prep with
  | Prep_inf -> Fp2.one prms.fp
  | Prep_xx { ops; lines; sqrs = _ } -> miller_prepared_xx prms ops lines qt
  | Prep_x1 steps -> miller_prepared_x1 prms steps qt

let miller_loop prms pt qt =
  match prms.family with
  | Y2_x3_x ->
      (* Pairings against the system generator — every verification
         equation and key-agreement has at least one — route through the
         construction-time prepared schedule: the same canonical Miller
         value (the recorded lines are the loop's own, canonical), with
         all the point arithmetic already paid for. *)
      if Curve.equal pt prms.g && Lazy.is_val prms.g_prep then
        miller_loop_prepared prms (Lazy.force prms.g_prep) qt
      else miller_loop_xx prms pt qt
  | Y2_x3_1 -> miller_loop_x1_jac prms pt qt

(* Functional-path dispatch, pinned as the reference the kernel path is
   measured and tested against. (The x^3 + 1 family has a single,
   functional implementation, shared by both dispatches.) *)
let miller_loop_ref prms pt qt =
  match prms.family with
  | Y2_x3_x -> miller_loop_xx_ref prms pt qt
  | Y2_x3_1 -> miller_loop_x1 prms pt qt

(* --- the product-of-pairings kernel ---

   prod_i f_{q,P_i}(phi Q_i) through ONE interleaved Miller loop: all
   walkers share a single f^2 squaring chain — with N pairs the dominant
   GF(p^2) squarings are paid once instead of N times — and every line
   evaluation folds into the same accumulator through the lazy-reduction
   product. Prepared schedules and live points mix freely; an xx-family
   pair whose first argument is the system generator is promoted to the
   construction-time prepared schedule.

   Schedule compatibility: interleaving requires every walker to square
   on the same step, i.e. identical squaring counts. Live xx walkers and
   NAF-recorded schedules all follow the NAF of q; a binary-fallback
   prepared schedule (degenerate recording) may differ in length by one,
   so it is evaluated on its own and multiplied in — as is any live pair
   whose walk hits the unmodelled coincident-addition case (low-order
   inputs; never order-q ones). The x1 family's binary schedule is fixed
   by q for every walker, so everything interleaves, with two shared
   chains (numerator/denominator) and a single merging inversion. *)

type pair_arg = Point of Curve.point | Prepared of prepared

exception Degenerate_pair of int

(* --- per-domain register file for the product kernel ---

   The product paths used to allocate per call: a fresh accumulator and
   step scratch, one cursor record (plus an [Fp2.make] line view) per
   promoted prepared schedule, and — on the x1 family — a functional
   GF(p^2) value per prepared line evaluation, which put the "faster"
   kernel at tens of kilowords per verification. Everything below is the
   once-per-domain replacement: fixed accumulators and step scratch, a
   growable array of prepared-schedule slots whose buffers are reused
   across calls (immutable inputs are re-pointed, per-pair values copied
   into owned buffers), and the odd-power table the cofactor-membership
   decision exponentiates through. Keyed on limb count like the
   final-exponentiation file; results that escape a public API are
   copied out fresh so no caller ever aliases the scratch. *)

type pk_slot = {
  (* xx-family prepared cursor: [ks_oi] walks [ks_ops] (each step
     consumes the recorded squaring — performed once, shared — then
     folds the step's lines), [ks_li] walks the pre-scaled line pairs.
     The line view's re is the file's shared line scratch; its im is an
     owned buffer the pair's yq is copied into. *)
  mutable ks_ops : int array;
  mutable ks_lines : Fp.t array;
  mutable ks_xq : Fp.t;
  ks_line : Fp2.t;
  mutable ks_oi : int;
  mutable ks_li : int;
  (* x1-family prepared stream: the recorded per-step line lists, the
     pair's zeta-scaled xq (owned buffers, recomputed per call) and yq. *)
  mutable ks_steps : x1_op list array;
  ks_xq2 : Fp2.t;
  mutable ks_yq : Fp.t;
}

type pk_file = {
  k_f : Fp2.t; (* xx accumulator / x1 numerator *)
  k_fden : Fp2.t; (* x1 denominator *)
  k_sc : xx_scratch;
  k_tbl : Fp2.t array; (* membership-test odd-power table *)
  k_acc : Fp2.t; (* membership-test accumulator *)
  mutable k_slots : pk_slot array;
}

let pk_key : (int * pk_file) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let pk_slot_make fp sc =
  let im = Fp.Mut.alloc fp in
  {
    ks_ops = [||];
    ks_lines = [||];
    ks_xq = im (* dummy; rebound before every use *);
    ks_line = Fp2.make ~re:sc.lre ~im;
    ks_oi = 0;
    ks_li = 0;
    ks_steps = [||];
    ks_xq2 = Fp2.Mut.alloc fp;
    ks_yq = im (* dummy; rebound before every use *);
  }

let pk_file fp =
  let k = Limbs.limb_count (Fp.kernel fp) in
  let cell = Domain.DLS.get pk_key in
  match !cell with
  | Some (k', file) when k' = k -> file
  | _ ->
      let sc = xx_scratch_alloc fp in
      let file =
        {
          k_f = Fp2.Mut.alloc fp;
          k_fden = Fp2.Mut.alloc fp;
          k_sc = sc;
          k_tbl = Array.init 8 (fun _ -> Fp2.Mut.alloc fp);
          k_acc = Fp2.Mut.alloc fp;
          k_slots = [||];
        }
      in
      cell := Some (k, file);
      file

let pk_slots file fp n =
  if Array.length file.k_slots < n then begin
    let old = file.k_slots in
    file.k_slots <-
      Array.init n (fun i ->
          if i < Array.length old then old.(i) else pk_slot_make fp file.k_sc)
  end;
  file.k_slots

let xx_product prms items =
  let fp = prms.fp in
  let n_sqrs = Array.length prms.q_naf - 1 in
  let file = pk_file fp in
  let sc = file.k_sc in
  let slots = pk_slots file fp (List.length items) in
  let extras = ref [] in
  let nprep = ref 0 and lives = ref [] in
  let classify_prep prep qt =
    match (prep, qt) with
    | Prep_inf, _ | _, Curve.Infinity -> ()
    | Prep_xx { ops; lines; sqrs }, Curve.Affine q' when sqrs = n_sqrs ->
        let s = slots.(!nprep) in
        s.ks_ops <- ops;
        s.ks_lines <- lines;
        s.ks_xq <- q'.x;
        Fp.Mut.set fp s.ks_line.Fp2.im q'.y;
        incr nprep
    | _ -> extras := miller_loop_prepared prms prep qt :: !extras
  in
  List.iter
    (fun (a, qt) ->
      match (a, qt) with
      | _, Curve.Infinity -> ()
      | Prepared prep, _ -> classify_prep prep qt
      | Point Curve.Infinity, _ -> ()
      | Point pt, _ when Curve.equal pt prms.g && Lazy.is_val prms.g_prep ->
          classify_prep (Lazy.force prms.g_prep) qt
      | Point (Curve.Affine _ as pt), _ -> lives := (pt, qt) :: !lives)
    items;
  let nprep = !nprep in
  let f = file.k_f in
  let rec attempt lives =
    let lv = Array.of_list lives in
    Fp2.Mut.set_one fp f;
    if nprep = 0 && Array.length lv = 0 then f
    else begin
      for k = 0 to nprep - 1 do
        slots.(k).ks_oi <- 0;
        slots.(k).ks_li <- 0
      done;
      let lws =
        Array.map
          (fun (pt, qt) ->
            match (pt, qt) with
            | Curve.Affine p', Curve.Affine q' ->
                xx_walker_make fp ~xp:p'.x ~yp:p'.y ~xq:q'.x ~yq:q'.y
            | _ -> assert false)
          lv
      in
      let digits = prms.q_naf in
      try
        for i = 1 to Array.length digits - 1 do
          Fp2.Mut.sqr_into fp f f;
          for k = 0 to nprep - 1 do
            let pw = slots.(k) in
            pw.ks_oi <- pw.ks_oi + 1 (* the recorded squaring, shared *);
            let ops = pw.ks_ops and lines = pw.ks_lines in
            while pw.ks_oi < Array.length ops && ops.(pw.ks_oi) = 1 do
              Fp.Mut.mul_into fp sc.lre lines.(pw.ks_li + 1) pw.ks_xq;
              Fp.Mut.add_into fp sc.lre lines.(pw.ks_li) sc.lre;
              pw.ks_li <- pw.ks_li + 2;
              Fp2.Mut.mul_into fp f f pw.ks_line;
              pw.ks_oi <- pw.ks_oi + 1
            done
          done;
          let d = digits.(i) in
          for k = 0 to Array.length lws - 1 do
            try xx_step fp sc lws.(k) f d
            with Degenerate_chain -> raise (Degenerate_pair k)
          done
        done;
        f
      with Degenerate_pair k ->
        (* The k-th live pair hit the coincident-operand degeneracy
           (low-order first argument): evaluate it alone on the binary
           mirror schedule and interleave the rest without it. *)
        let pt, qt = lv.(k) in
        extras := miller_loop_xx_bin prms pt qt :: !extras;
        attempt (List.filteri (fun j _ -> j <> k) lives)
    end
  in
  let f = attempt (List.rev !lives) in
  List.iter (fun m -> Fp2.Mut.mul_into fp f f m) !extras;
  f

(* One doubling step's worth of prepared lines, folded into the shared
   accumulators through the register file's line scratch. Top level on
   purpose: a [List.iter (function ...)] in the bit loop builds a fresh
   closure per slot per iteration — ~26 words/iteration, the last
   allocation the product kernel had left (and one the word-granular
   allocation counter rounds away: only the minor-GC rate exposed it). *)
let rec x1_fold_steps fp sc ~xq2 ~yq ~fnum ~fden steps =
  match steps with
  | [] -> ()
  | op :: tl ->
      (match op with
      | Num_line { l0; lmx } ->
          Fp.Mut.mul_into fp sc.lre lmx xq2.Fp2.re;
          Fp.Mut.add_into fp sc.lre sc.lre l0;
          Fp.Mut.add_into fp sc.lre sc.lre yq;
          Fp.Mut.mul_into fp sc.lim lmx xq2.Fp2.im;
          Fp2.Mut.mul_into fp fnum fnum sc.line
      | Num_vert x ->
          Fp.Mut.sub_into fp sc.lre xq2.Fp2.re x;
          Fp.Mut.set fp sc.lim xq2.Fp2.im;
          Fp2.Mut.mul_into fp fnum fnum sc.line
      | Den_vert x ->
          Fp.Mut.sub_into fp sc.lre xq2.Fp2.re x;
          Fp.Mut.set fp sc.lim xq2.Fp2.im;
          Fp2.Mut.mul_into fp fden fden sc.line);
      x1_fold_steps fp sc ~xq2 ~yq ~fnum ~fden tl

let x1_product prms items =
  let fp = prms.fp in
  let file = pk_file fp in
  let sc = file.k_sc in
  let slots = pk_slots file fp (List.length items) in
  let nprep = ref 0 and lives = ref [] in
  List.iter
    (fun (a, qt) ->
      match (a, qt) with
      | _, Curve.Infinity -> ()
      | Prepared Prep_inf, _ -> ()
      | Prepared (Prep_x1 steps), Curve.Affine q' ->
          let s = slots.(!nprep) in
          s.ks_steps <- steps;
          Fp.Mut.mul_into fp s.ks_xq2.Fp2.re prms.zeta.Fp2.re q'.x;
          Fp.Mut.mul_into fp s.ks_xq2.Fp2.im prms.zeta.Fp2.im q'.x;
          s.ks_yq <- q'.y;
          incr nprep
      | Prepared (Prep_xx _), _ ->
          invalid_arg "Pairing: xx-family prepared argument on an x1 family"
      | Point Curve.Infinity, _ -> ()
      | Point (Curve.Affine p'), Curve.Affine q' ->
          lives := (p'.x, p'.y, q'.x, q'.y) :: !lives)
    items;
  let nprep = !nprep in
  let lv = List.rev !lives in
  let fnum = file.k_f and fden = file.k_fden in
  Fp2.Mut.set_one fp fnum;
  if nprep = 0 && lv = [] then fnum
  else begin
    Fp2.Mut.set_one fp fden;
    let lws =
      Array.of_list
        (List.map (fun (xp, yp, xq, yq) -> x1_walker_make prms ~xp ~yp ~xq ~yq) lv)
    in
    let q = prms.q in
    let bits = Bigint.bit_length q in
    for i = bits - 2 downto 0 do
      Fp2.Mut.sqr_into fp fnum fnum;
      Fp2.Mut.sqr_into fp fden fden;
      let st = bits - 2 - i in
      (* Prepared lines evaluate through the shared line scratch — the
         same two buffers every walker's step uses — instead of building
         a functional GF(p^2) value per line (the per-call kiloword
         blowup this file exists to kill). *)
      for k = 0 to nprep - 1 do
        let s = slots.(k) in
        x1_fold_steps fp sc ~xq2:s.ks_xq2 ~yq:s.ks_yq ~fnum ~fden
          s.ks_steps.(st)
      done;
      let d = if Bigint.test_bit q i then 1 else 0 in
      for k = 0 to Array.length lws - 1 do
        x1_step fp sc lws.(k) ~fnum ~fden d
      done
    done;
    Fp2.Mut.inv_into fp fden fden;
    Fp2.Mut.mul_into fp fnum fnum fden;
    fnum
  end

(* Internal face: the returned accumulator ALIASES the per-domain
   register file and is only valid until the next product-kernel call on
   this domain. The public faces below copy it out fresh. *)
let miller_product_raw prms pairs =
  match prms.family with
  | Y2_x3_x -> xx_product prms pairs
  | Y2_x3_1 -> x1_product prms pairs

let miller_product_mixed prms pairs =
  let m = miller_product_raw prms pairs in
  let out = Fp2.Mut.alloc prms.fp in
  Fp2.Mut.set prms.fp out m;
  out

let miller_product prms pairs =
  miller_product_mixed prms (List.map (fun (pt, qt) -> (Point pt, qt)) pairs)

(* Deciding prod_i e^(P_i, Q_i) = 1 from the raw Miller product m,
   WITHOUT the final exponentiation: FE(m) = (conj(m)/m)^h = conj(u)/u
   for u = m^h, so FE(m) = 1 exactly when u is fixed by conjugation
   (the Frobenius), i.e. when m^h lands in GF(p). One cofactor
   exponentiation and an is-zero test replace the easy part's field
   inversion plus the full hard part of a canonical FE — and since the
   equality is exact (not probabilistic), accept/reject decisions are
   identical to computing the pairing product in full. Raises
   [Division_by_zero] on m = 0, as the final exponentiation would. *)
let product_is_one prms m =
  let fp = prms.fp in
  if Fp2.is_zero fp m then raise Division_by_zero;
  (* In-place sliding-window m^h through the register file's odd-power
     table (generic squarings — m is not norm-1, so the cyclotomic
     shortcut is off limits); [Fp2.pow] would rebuild its table on the
     heap every verification. The table caps the window at 4; at the
     largest named cofactor (352 bits) that costs ~11 extra products
     over width 5, noise against the Miller loop it follows. [m] may
     alias the file's own accumulator: it is only read, and only before
     the accumulator-table phase ends. *)
  let n = prms.cofactor in
  let bits = Bigint.bit_length n in
  let file = pk_file fp in
  let acc = file.k_acc in
  if bits <= 8 then begin
    Fp2.Mut.set_one fp acc;
    for i = bits - 1 downto 0 do
      Fp2.Mut.sqr_into fp acc acc;
      if Bigint.test_bit n i then Fp2.Mut.mul_into fp acc acc m
    done
  end
  else begin
    let w = if bits <= 96 then 3 else 4 in
    let tbl = file.k_tbl in
    let tn = 1 lsl (w - 1) in
    (* tbl.(i) = m^(2i+1); acc holds m^2 during the build. *)
    Fp2.Mut.set fp tbl.(0) m;
    Fp2.Mut.sqr_into fp acc m;
    for i = 1 to tn - 1 do
      Fp2.Mut.mul_into fp tbl.(i) tbl.(i - 1) acc
    done;
    let started = ref false in
    let i = ref (bits - 1) in
    while !i >= 0 do
      if not (Bigint.test_bit n !i) then begin
        if !started then Fp2.Mut.sqr_into fp acc acc;
        decr i
      end
      else begin
        let l = ref (Stdlib.max 0 (!i - w + 1)) in
        while not (Bigint.test_bit n !l) do
          incr l
        done;
        let v = ref 0 in
        for j = !i downto !l do
          v := (!v lsl 1) lor (if Bigint.test_bit n j then 1 else 0)
        done;
        if !started then begin
          for _ = 1 to !i - !l + 1 do
            Fp2.Mut.sqr_into fp acc acc
          done;
          Fp2.Mut.mul_into fp acc acc tbl.((!v - 1) / 2)
        end
        else begin
          Fp2.Mut.set fp acc tbl.((!v - 1) / 2);
          started := true
        end;
        i := !l - 1
      end
    done
  end;
  Fp.is_zero fp acc.Fp2.im

let check_product_one_mixed prms pairs =
  product_is_one prms (miller_product_raw prms pairs)

let check_product_one prms pairs =
  check_product_one_mixed prms
    (List.map (fun (pt, qt) -> (Point pt, qt)) pairs)

(* f^((p^2-1)/q): f^(p-1) = conj(f)/f via Frobenius, then pow by the
   cofactor h = (p+1)/q. Pinned reference: generic sliding-window GT
   exponentiation for the hard part. *)
let final_exponentiation_ref prms f =
  let fp = prms.fp in
  let fp1 = Fp2.mul fp (Fp2.conj fp f) (Fp2.inv fp f) in
  Fp2.pow fp fp1 prms.cofactor

(* Per-domain register file for the kernel final exponentiation: the
   odd-power table, its conjugate views (inverses — shared re buffers,
   own negated-im buffers), and the accumulator/easy-part temporary.
   Keyed on limb count so parameter sets of the same width share one
   file; rebuilt when the width changes. Every call copies its result
   out fresh, so values never alias the scratch across calls. *)
let fe_key :
    (int * Fp2.t array * Fp2.t array * Fp2.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fe_scratch fp =
  let k = Limbs.limb_count (Fp.kernel fp) in
  let cell = Domain.DLS.get fe_key in
  match !cell with
  | Some (k', tbl, tbln, acc) when k' = k -> (tbl, tbln, acc)
  | _ ->
      let tbl = Array.init 8 (fun _ -> Fp2.Mut.alloc fp) in
      let tbln =
        Array.map (fun t -> Fp2.make ~re:t.Fp2.re ~im:(Fp.Mut.alloc fp)) tbl
      in
      let acc = Fp2.Mut.alloc fp in
      cell := Some (k, tbl, tbln, acc);
      (tbl, tbln, acc)

(* Kernel final exponentiation, same decomposition pushed further: after
   the easy part, f1 = f^(p-1) satisfies f1^(p+1) = f^(p^2-1) = 1, i.e.
   f1 has norm 1 — it lives in the cyclotomic subgroup. There
   - squaring is {!Fp2.Mut.cyclo_sqr_into} (a base-field squaring and a
     multiplication instead of two multiplications), and
   - inversion is conjugation (free), so the cofactor's signed-digit
     recoding costs ~bits/(w+1) table multiplications with no extra
     table space for the negative digits.
   The whole chain — easy part included, via {!Fp2.Mut.inv_into} — runs
   in the per-domain register file; the only allocation is the returned
   copy. The odd-power table is sized to the largest recoded digit, so
   small-cofactor parameter sets (toy64: h fits 32 bits, width-2
   recoding) no longer pay an 8-entry table build for a handful of
   digits. Same canonical result as [final_exponentiation_ref] for every
   f — the differential tests pin the bit-identity. *)
let final_exponentiation prms f =
  let fp = prms.fp in
  let digits = prms.cofactor_wnaf in
  let n = Array.length digits in
  if n = 0 then Fp2.one fp
  else begin
    let tbl, tbln, acc = fe_scratch fp in
    (* Easy part into tbl.(0): f1 = conj(f) * f^-1, allocation-free —
       tbln.(0)'s im buffer moonlights as conj(f)'s im, and the lazy
       product reads its operands out before touching the destination. *)
    Fp2.Mut.inv_into fp acc f;
    Fp.Mut.neg_into fp tbln.(0).Fp2.im f.Fp2.im;
    Fp2.Mut.mul_into fp
      tbl.(0)
      (Fp2.make ~re:f.Fp2.re ~im:tbln.(0).Fp2.im)
      acc;
    (* tbl.(j) = f1^(2j+1), built only up to the largest digit the
       recoding actually uses; everything in the table has norm 1,
       products and cyclotomic squares of norm-1 elements stay norm-1. *)
    let maxd = Array.fold_left (fun m d -> Stdlib.max m (abs d)) 1 digits in
    let tsize = (maxd + 1) / 2 in
    if tsize > 1 then begin
      Fp2.Mut.cyclo_sqr_into fp acc tbl.(0);
      for j = 1 to tsize - 1 do
        Fp2.Mut.mul_into fp tbl.(j) tbl.(j - 1) acc
      done
    end;
    for j = 0 to tsize - 1 do
      Fp.Mut.neg_into fp tbln.(j).Fp2.im tbl.(j).Fp2.im
    done;
    Fp2.Mut.set fp acc tbl.((digits.(0) - 1) / 2);
    for i = 1 to n - 1 do
      Fp2.Mut.cyclo_sqr_into fp acc acc;
      let d = digits.(i) in
      if d > 0 then Fp2.Mut.mul_into fp acc acc tbl.((d - 1) / 2)
      else if d < 0 then Fp2.Mut.mul_into fp acc acc tbln.((-d - 1) / 2)
    done;
    let out = Fp2.Mut.alloc fp in
    Fp2.Mut.set fp out acc;
    out
  end

let pairing prms pt qt = final_exponentiation prms (miller_loop prms pt qt)

let pairing_ref prms pt qt =
  final_exponentiation_ref prms (miller_loop_ref prms pt qt)

let pairing_product prms pairs =
  (* A GT value is wanted (not just a decision), so the full final
     exponentiation runs — but over ONE interleaved Miller loop. *)
  final_exponentiation prms (miller_product prms pairs)

let pairing_check prms pairs = check_product_one prms pairs

let pairing_equal_check prms ~lhs:(a, b) ~rhs:(c, d) =
  (* e(a,b) = e(c,d)  <=>  e(a,b) * e(c,-d) = 1 — one interleaved Miller
     loop and one membership test instead of two full pairings. The
     inverse is taken by negating the *point* argument (the distortion
     map commutes with negation), so a first argument equal to the
     system generator keeps its construction-time prepared schedule. *)
  check_product_one prms [ (a, b); (c, Curve.neg prms.curve d) ]

(* --- prepared pairing entry points --- *)

let pairing_prepared prms prep qt =
  final_exponentiation prms (miller_loop_prepared prms prep qt)

let prepared_args pairs = List.map (fun (prep, qt) -> (Prepared prep, qt)) pairs

let pairing_product_prepared prms pairs =
  final_exponentiation prms (miller_product_mixed prms (prepared_args pairs))

let pairing_check_prepared prms pairs =
  check_product_one_mixed prms (prepared_args pairs)

let pairing_equal_check_prepared prms ~lhs:(a, b) ~rhs:(c, d) =
  (* Prepared first arguments cannot be negated, but e(c,d)^-1 = e(c,-d)
     (the distortion map commutes with negation), so negate the point
     argument instead. *)
  check_product_one_mixed prms
    [ (Prepared a, b); (Prepared c, Curve.neg prms.curve d) ]

let mul_g prms k = Curve.Table.mul (Lazy.force prms.g_table) k

let in_g1 prms point =
  Curve.on_curve prms.curve point
  && Curve.is_infinity (Curve.mul prms.curve prms.q point)

let ddh prms base a b c = pairing_equal_check prms ~lhs:(a, b) ~rhs:(base, c)

(* --- H2 --- *)

let h2 prms k n = Hashing.Kdf.mask ("TRE-H2|" ^ Fp2.to_bytes prms.fp k) n
