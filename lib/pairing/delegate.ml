(* Verifiable pairing outsourcing (OMTUP: two untrusted helpers).

   Blinding layout for one delegated e^(A, B), secrets x1 x2 x5 x6
   (main) and x3 x4 (test), V_i = x_i.G:

     helper 1:  alpha0 = e^(A+V1, B+V2)        alpha1 = e^(V3, V4)
     helper 2:  beta0  = e^(-V1,  B+V6)
                beta1  = e^(A+V5, -V2)         beta2  = e^(V3, V4)

   Writing A = a.G, B = b.G and working in exponents of e^(G, G):

     alpha0 = e^(A,B) . g^(a x2 + x1 b + x1 x2)
     beta0  =          g^(-x1 b - x1 x6)
     beta1  =          g^(-a x2 - x5 x2)

   so alpha0.beta0.beta1 = e^(A,B) . g^(x1 x2 - x1 x6 - x5 x2), and
   with w_chi = x1 x6 + x5 x2 - x1 x2 (mod q), chi = g^w_chi:

     e^(A, B) = alpha0 . beta0 . beta1 . chi          -- 3 GT mults.

   No helper sees both halves of a cancelling pair (V1 appears at
   helper 2 only negated and paired against B+V6, whose x6 helper 2
   never sees un-paired), so neither can strip the blinding alone.
   Collusion cancels it — out of model, documented in the .mli. *)

type ctx = { prms : Pairing.params; gt_g : Fp2.t }

let make prms = { prms; gt_g = Pairing.pairing prms prms.Pairing.g prms.Pairing.g }
let params ctx = ctx.prms

type blinding = {
  v1 : Curve.point;
  v2 : Curve.point;
  v5 : Curve.point;
  v6 : Curve.point;
  v3 : Curve.point;
  v4 : Curve.point;
  w_chi : Bigint.t;  (* x1 x6 + x5 x2 - x1 x2 (mod q) *)
  w_34 : Bigint.t;   (* x3 x4 (mod q) *)
  chi : Fp2.t;       (* e^(G,G)^w_chi: the unblinding correction *)
  chi34 : Fp2.t;     (* e^(G,G)^w_34: the anchored test-slot value *)
  mutable spent : bool;
}

let random_small_exponent prms drbg =
  let q = prms.Pairing.q in
  let raw =
    String.fold_left
      (fun acc ch -> Bigint.add (Bigint.shift_left acc 8) (Bigint.of_int (Char.code ch)))
      Bigint.zero
      (Hashing.Drbg.generate drbg 16)
  in
  let upper = Bigint.min q (Bigint.shift_left Bigint.one 64) in
  Bigint.succ (Bigint.erem raw (Bigint.pred upper))

let blind ctx drbg =
  let prms = ctx.prms in
  let q = prms.Pairing.q in
  let s () = Pairing.random_scalar prms drbg in
  let x1 = s () and x2 = s () and x3 = s () and x4 = s () and x5 = s () and x6 = s () in
  let w_chi =
    Bigint.erem
      (Bigint.sub (Bigint.add (Bigint.mul x1 x6) (Bigint.mul x5 x2)) (Bigint.mul x1 x2))
      q
  in
  let w_34 = Bigint.erem (Bigint.mul x3 x4) q in
  {
    v1 = Pairing.mul_g prms x1;
    v2 = Pairing.mul_g prms x2;
    v5 = Pairing.mul_g prms x5;
    v6 = Pairing.mul_g prms x6;
    v3 = Pairing.mul_g prms x3;
    v4 = Pairing.mul_g prms x4;
    w_chi;
    w_34;
    chi = Pairing.gt_pow prms ctx.gt_g w_chi;
    chi34 = Pairing.gt_pow prms ctx.gt_g w_34;
    spent = false;
  }

(* One randomized product equation covers the whole tuple: with fresh
   short t1, t2,

     e^(t1.V1, V6) . e^(t1.V5, V2) . e^(-t1.V1, V2) . e^(-t1.w_chi.G, G)
     . e^(t2.V3, V4) . e^(-t2.w_34.G, G)
     = g^( t1 (x1 x6 + x5 x2 - x1 x2 - w_chi) + t2 (x3 x4 - w_34) ) = 1

   iff both stored exponents match the stored points (up to the 2^-64
   slip of a t-collision). One interleaved Miller loop, decision only. *)
let audit ctx drbg bl =
  let prms = ctx.prms in
  let q = prms.Pairing.q in
  let curve = prms.Pairing.curve in
  let g = prms.Pairing.g in
  let t1 = random_small_exponent prms drbg in
  let t2 = random_small_exponent prms drbg in
  let mul k p = Curve.mul curve k p in
  let neg_w t w = Pairing.mul_g prms (Bigint.erem (Bigint.neg (Bigint.mul t w)) q) in
  List.for_all (Pairing.in_g1 prms) [ bl.v1; bl.v2; bl.v3; bl.v4; bl.v5; bl.v6 ]
  && Pairing.gt_equal bl.chi (Pairing.gt_pow prms ctx.gt_g bl.w_chi)
  && Pairing.gt_equal bl.chi34 (Pairing.gt_pow prms ctx.gt_g bl.w_34)
  && Pairing.check_product_one prms
       [
         (mul t1 bl.v1, bl.v6);
         (mul t1 bl.v5, bl.v2);
         (Curve.neg curve (mul t1 bl.v1), bl.v2);
         (neg_w t1 bl.w_chi, g);
         (mul t2 bl.v3, bl.v4);
         (neg_w t2 bl.w_34, g);
       ]

type wrap = {
  wq1 : (Curve.point * Curve.point) array;
  wq2 : (Curve.point * Curve.point) array;
  wchi : Fp2.t;
  wchi34 : Fp2.t;
}

let wrap ctx bl ~a ~b =
  let curve = ctx.prms.Pairing.curve in
  if bl.spent then invalid_arg "Delegate.wrap: blinding tuple already spent";
  if Curve.is_infinity a || Curve.is_infinity b then
    invalid_arg "Delegate.wrap: infinity argument";
  bl.spent <- true;
  let av1 = Curve.add curve a bl.v1 in
  let bv2 = Curve.add curve b bl.v2 in
  let bv6 = Curve.add curve b bl.v6 in
  let av5 = Curve.add curve a bl.v5 in
  if
    Curve.is_infinity av1 || Curve.is_infinity bv2 || Curve.is_infinity bv6
    || Curve.is_infinity av5
  then invalid_arg "Delegate.wrap: blinded point collapsed to infinity";
  {
    wq1 = [| (av1, bv2); (bl.v3, bl.v4) |];
    wq2 =
      [|
        (Curve.neg curve bl.v1, bv6);
        (av5, Curve.neg curve bl.v2);
        (bl.v3, bl.v4);
      |];
    wchi = bl.chi;
    wchi34 = bl.chi34;
  }

let queries1 w = w.wq1
let queries2 w = w.wq2

let serve prms queries = Array.map (fun (p, q) -> Pairing.pairing prms p q) queries

let unwrap ctx w ~resp1 ~resp2 =
  let prms = ctx.prms in
  if Array.length resp1 <> 2 || Array.length resp2 <> 3 then
    Error "helper response arity mismatch"
  else if
    not
      (Pairing.gt_equal resp1.(1) w.wchi34 && Pairing.gt_equal resp2.(2) w.wchi34)
  then Error "anchored test slot mismatch"
  else
    Ok
      (Pairing.gt_mul prms
         (Pairing.gt_mul prms (Pairing.gt_mul prms resp1.(0) resp2.(0)) resp2.(1))
         w.wchi)

type transport = (Curve.point * Curve.point) array -> Fp2.t array

type mode = Published | Hardened

let in_gt prms v =
  (not (Fp2.is_zero prms.Pairing.fp v))
  && Fp2.is_one prms.Pairing.fp (Pairing.gt_pow prms v prms.Pairing.q)

let degenerate prms v = Fp2.is_zero prms.Pairing.fp v || Fp2.is_one prms.Pairing.fp v

(* Run both blinded delegations and apply [mode]'s acceptance test.
   [target_b] is B for Published and c.B for Hardened; the caller
   decides what relation ties the two recovered values together. *)
let run_two ctx drbg ~helper1 ~helper2 ?blindings ~a ~b_a ~b_b () =
  let bl_a, bl_b =
    match blindings with
    | Some pair -> pair
    | None -> (blind ctx drbg, blind ctx drbg)
  in
  let wa = wrap ctx bl_a ~a ~b:b_a in
  let wb = wrap ctx bl_b ~a ~b:b_b in
  let ra1 = helper1 wa.wq1 in
  let ra2 = helper2 wa.wq2 in
  let rb1 = helper1 wb.wq1 in
  let rb2 = helper2 wb.wq2 in
  match (unwrap ctx wa ~resp1:ra1 ~resp2:ra2, unwrap ctx wb ~resp1:rb1 ~resp2:rb2) with
  | Ok r_a, Ok r_b -> Ok (r_a, r_b, [ ra1; ra2; rb1; rb2 ])
  | (Error _ as e), _ | _, (Error _ as e) ->
      (match e with Ok _ -> assert false | Error m -> Error m)

let pair ctx ~mode ?blindings drbg ~helper1 ~helper2 ~a ~b =
  let prms = ctx.prms in
  match mode with
  | Published -> (
      (* The paper's check: duplicate the run, compare. A helper that
         shifts the main slot of BOTH runs by one factor mu passes —
         the Liu-Cao forgery, mounted in test_delegate.ml. *)
      match run_two ctx drbg ~helper1 ~helper2 ?blindings ~a ~b_a:b ~b_b:b () with
      | Error _ as e -> e
      | Ok (r_a, r_b, _) ->
          if Pairing.gt_equal r_a r_b then Ok r_a
          else Error "cross-run values disagree")
  | Hardened -> (
      let c = random_small_exponent prms drbg in
      let b_c = Curve.mul prms.Pairing.curve c b in
      match run_two ctx drbg ~helper1 ~helper2 ?blindings ~a ~b_a:b ~b_b:b_c () with
      | Error _ as e -> e
      | Ok (r_a, r_b, responses) ->
          if List.exists (fun r -> Array.exists (degenerate prms) r) responses then
            Error "degenerate helper response slot"
          else if not (in_gt prms r_a && in_gt prms r_b) then
            Error "recovered value outside GT"
          else if not (Pairing.gt_equal r_b (Pairing.gt_pow prms r_a c)) then
            Error "secret-exponent cross-run equation failed"
          else Ok r_a)

let equal_with ctx ?blindings drbg ~helper1 ~helper2 ~c ~lhs:(l1, l2c) ~rhs:(r1, r2) =
  let prms = ctx.prms in
  let bl1, bl2 =
    match blindings with
    | Some pair -> pair
    | None -> (blind ctx drbg, blind ctx drbg)
  in
  let wl = wrap ctx bl1 ~a:l1 ~b:l2c in
  let wr = wrap ctx bl2 ~a:r1 ~b:r2 in
  let rl1 = helper1 wl.wq1 in
  let rl2 = helper2 wl.wq2 in
  let rr1 = helper1 wr.wq1 in
  let rr2 = helper2 wr.wq2 in
  match (unwrap ctx wl ~resp1:rl1 ~resp2:rl2, unwrap ctx wr ~resp1:rr1 ~resp2:rr2) with
  | (Error _ as e), _ | _, (Error _ as e) ->
      (match e with Ok _ -> assert false | Error m -> Error m)
  | Ok l', Ok r' ->
      if List.exists (fun r -> Array.exists (degenerate prms) r) [ rl1; rl2; rr1; rr2 ]
      then Error "degenerate helper response slot"
      else if not (in_gt prms l' && in_gt prms r') then
        Error "recovered value outside GT"
      else Ok (Pairing.gt_equal l' (Pairing.gt_pow prms r' c))

let equal ctx ?blindings drbg ~helper1 ~helper2 ~lhs:(l1, l2) ~rhs =
  let c = random_small_exponent ctx.prms drbg in
  let l2c = Curve.mul ctx.prms.Pairing.curve c l2 in
  equal_with ctx ?blindings drbg ~helper1 ~helper2 ~c ~lhs:(l1, l2c) ~rhs
