(** Verifiable pairing outsourcing for thin clients.

    A client that cannot afford Miller loops delegates [e^(A, B)] to two
    untrusted, non-colluding helpers (the OMTUP model: one malicious,
    two untrusted programs). Queries are blinded with one-time tuples of
    random multiples of the generator so neither helper learns [A], [B]
    or the result; the client reassembles the pairing from the replies
    with a handful of GT multiplications — no Miller loop and no final
    exponentiation on the client. (Recovery itself is exponentiation-free;
    the {e hardened} check below adds one short and two full-width GT
    exponentiations for its subgroup-membership tests.)

    {b The published check is forgeable.} The original outsourcing
    verification (duplicate the computation across two independent
    blinded runs, anchor known test slots, compare the two recovered
    values) cannot filter malformed responses: a malicious helper that
    multiplies the main slot of {e both} runs by the same factor
    [mu] passes every equation and shifts the output by [mu] — the
    Liu–Cao attack (arXiv:1512.05413; see PAPERS.md). {!Published} mode
    implements that check faithfully, and the regression suite mounts
    the forgery against it.

    {b The hardened check.} {!Hardened} mode makes the second run
    compute [e^(A, c.B)] for a secret short exponent [c] and accepts
    only when [R_b = R_a^c] with both recovered values in the order-q
    subgroup ([R^q = 1]) and no degenerate (zero or one) response slot.
    A consistent shift by [mu] now must satisfy [mu^c = mu] for the
    hidden [c] — probability [2^-64] — and any shift escaping GT is
    caught by the membership test. Blinding tuples are separately
    auditable ({!audit}) through a single randomized pairing-product
    equation decided by {!Pairing.check_product_one}.

    Collusion caveat: if the two helpers pool their queries they can
    cancel the blinding and recover [A] and [B]. Privacy (and the
    hardened check's soundness) holds against each helper alone, which
    is the model's assumption. *)

type ctx
(** Delegation context: parameter set plus the cached generator pairing
    [e^(G, G)] that anchors blinding-tuple construction. *)

val make : Pairing.params -> ctx
val params : ctx -> Pairing.params

type blinding = {
  v1 : Curve.point;
  v2 : Curve.point;
  v5 : Curve.point;
  v6 : Curve.point;
  v3 : Curve.point;
  v4 : Curve.point;
  w_chi : Bigint.t;
  w_34 : Bigint.t;
  chi : Fp2.t;
  chi34 : Fp2.t;
  mutable spent : bool;
}
(** A one-time blinding tuple: six secret multiples of [G] (four for
    the main equation, two for the anchored test slot) plus the
    pre-aggregated GT correction factors [chi = e^(G,G)^w_chi] and
    [chi34 = e^(G,G)^w_34]. The discrete logs themselves are not
    retained — only the aggregated exponents — so the record is safe
    to persist and to audit. Construct only via {!blind}; treat as
    read-only (the tamper cases in the test suite build modified
    copies on purpose, and {!audit} must reject them). Consumed by
    exactly one {!wrap} — reuse raises, because a replayed tuple lets
    a helper correlate queries and strip the blinding. *)

val blind : ctx -> Hashing.Drbg.t -> blinding
(** Draw a fresh tuple. All point multiplications go through the
    fixed-base generator table, so this is the cheap offline phase. *)

val audit : ctx -> Hashing.Drbg.t -> blinding -> bool
(** Integrity check for stored/precomputed tuples: subgroup membership
    of every point, recomputation of both GT correction factors, and
    one randomized 6-pair product equation (fresh short exponents each
    call) decided by {!Pairing.check_product_one}. A tampered or
    mix-and-matched tuple fails with probability [1 - 2^-64]. *)

type wrap
(** One blinded delegation of a target pairing: the two query vectors
    (one per helper) and the GT corrections needed to unblind. *)

val wrap : ctx -> blinding -> a:Curve.point -> b:Curve.point -> wrap
(** Blind [e^(A, B)] under a fresh tuple. Marks the tuple spent;
    raises [Invalid_argument] on a spent tuple, on an infinity input,
    or on the (negligible) event of a blinded point collapsing to
    infinity. *)

val queries1 : wrap -> (Curve.point * Curve.point) array
(** Helper 1's query vector: [[(A+V1, B+V2); (V3, V4)]]. *)

val queries2 : wrap -> (Curve.point * Curve.point) array
(** Helper 2's query vector: [[(-V1, B+V6); (A+V5, -V2); (V3, V4)]]. *)

val serve : Pairing.params -> (Curve.point * Curve.point) array -> Fp2.t array
(** The honest helper: one pairing per query slot. This is what the
    networked helper daemons run. *)

val unwrap :
  ctx -> wrap -> resp1:Fp2.t array -> resp2:Fp2.t array ->
  (Fp2.t, string) result
(** Recover the target pairing from the two replies: checks arity and
    the anchored test slots, then returns
    [resp1.(0) * resp2.(0) * resp2.(1) * chi] — three GT
    multiplications, no exponentiation. The anchored-slot check alone
    is NOT sound against a malicious helper (see {!mode}). *)

type transport = (Curve.point * Curve.point) array -> Fp2.t array
(** A helper channel: local {!serve}, a socket round-trip, or a
    malicious shim in the adversary tests. *)

type mode =
  | Published
      (** The paper-faithful check: two independent runs of [e^(A, B)],
          accept iff anchored slots hold and the recovered values agree.
          Forgeable by a consistent multiplicative shift (Liu–Cao). *)
  | Hardened
      (** Second run computes [e^(A, c.B)] for a secret short [c];
          accept iff anchored slots hold, no response slot is zero or
          one, both recovered values satisfy [R^q = 1], and
          [R_b = R_a^c]. *)

val pair :
  ctx -> mode:mode -> ?blindings:blinding * blinding -> Hashing.Drbg.t ->
  helper1:transport -> helper2:transport ->
  a:Curve.point -> b:Curve.point ->
  (Fp2.t, string) result
(** Delegate [e^(A, B)]: two blinded runs (fresh tuples unless
    [?blindings] supplies precomputed ones), verification per [mode].
    [Ok] carries the pairing value, bit-identical to
    [Pairing.pairing] when both helpers are honest. *)

val equal_with :
  ctx -> ?blindings:blinding * blinding -> Hashing.Drbg.t ->
  helper1:transport -> helper2:transport ->
  c:Bigint.t ->
  lhs:Curve.point * Curve.point ->
  rhs:Curve.point * Curve.point ->
  (bool, string) result
(** Delegated pairing-equality [e^(L1, L2) = e^(R1, R2)], the shape of
    every verification equation in the scheme — two wraps instead of
    four: the caller folds the secret short exponent [c] into [lhs]'s
    second argument (cheaply, e.g. during cofactor clearing), we
    delegate [L' = e^(L1, c.L2)] and [R' = e^(R1, R2)] and accept iff
    both are in GT and [L' = R'^c]. [lhs]'s second component must
    already be the [c]-multiplied point. *)

val equal :
  ctx -> ?blindings:blinding * blinding -> Hashing.Drbg.t ->
  helper1:transport -> helper2:transport ->
  lhs:Curve.point * Curve.point ->
  rhs:Curve.point * Curve.point ->
  (bool, string) result
(** {!equal_with} with [c] drawn internally and multiplied in here. *)

val random_small_exponent : Pairing.params -> Hashing.Drbg.t -> Bigint.t
(** Uniform secret exponent in [[1, min(q, 2^64) - 1]] — the hardened
    check's [c]. Exposed so callers that fold [c] into other scalar
    work (see {!equal_with}) draw it the same way. *)
