(** The bilinear (Gap Diffie-Hellman) group of the paper, Section 4.

    G1 is the order-q subgroup of the supersingular curve
    E : y^2 = x^3 + x over GF(p) (p = 3 mod 4, p + 1 = h*q); G2 is the
    order-q subgroup of GF(p^2)*. [pairing] is the modified Tate pairing
    e^(P, Q) = e(P, phi(Q)) with the distortion map phi(x,y) = (-x, iy),
    which is bilinear, non-degenerate and efficiently computable — and
    makes DDH in G1 easy ({!ddh}) while CDH/BDH stay hard: exactly the
    GDH-group setting the schemes are defined over. *)

type family =
  | Y2_x3_x  (** E: y^2 = x^3 + x, p = 3 (mod 4), distortion (x,y) -> (-x, iy) *)
  | Y2_x3_1
      (** E: y^2 = x^3 + 1, p = 11 (mod 12), distortion (x,y) -> (zeta x, y)
          — the Boneh-Franklin curve. Supported as a second instantiation
          of the paper's "any GDH group"; its production Miller loop runs
          Jacobian in-place kernels with separate numerator/denominator
          accumulators merged by a single inversion. *)

type prepared
(** A first pairing argument with its whole Miller-loop line-function
    schedule precomputed ({!prepare}) — on the {!Y2_x3_x} family the
    lines are stored pre-scaled by their y-coefficient (one batched
    inversion at prepare time), so evaluation is two base-field
    operations per line. Pairing against it ({!pairing_prepared} and
    friends) skips all the loop's point arithmetic and gives results
    bit-identical to {!pairing}. *)

type params = private {
  name : string;
  family : family;
  p : Bigint.t;  (** field prime, = 3 (mod 4) *)
  q : Bigint.t;  (** prime order of G1 and G2 *)
  cofactor : Bigint.t;  (** h with p + 1 = h * q *)
  fp : Fp.ctx;
  curve : Curve.ctx;
  g : Curve.point;  (** the system generator G of G1 *)
  final_exp : Bigint.t;  (** (p^2 - 1) / q *)
  zeta : Fp2.t;  (** primitive cube root of unity; only used by {!Y2_x3_1} *)
  q_naf : int array;
      (** MSB-first non-adjacent form of q — the signed-digit schedule
          of the production Miller loop (~bits/3 addition steps) *)
  cofactor_wnaf : int array;
      (** MSB-first wNAF of the cofactor, driving the cyclotomic
          final-exponentiation window (negative digits are free:
          inversion in the norm-1 subgroup is conjugation); the window
          width adapts to the cofactor size so small parameter sets do
          not overpay for the odd-power table *)
  g_table : Curve.Table.t Lazy.t;
      (** fixed-base precomputation for [g]; forced at construction, so a
          params value is safe to share across domains (a racing
          [Lazy.force] is not) *)
  g_prep : prepared Lazy.t;
      (** [prepare prms g]; forced at construction, like [g_table] *)
}

val make :
  ?family:family -> name:string -> p:Bigint.t -> q:Bigint.t -> unit -> params
(** Build and validate a parameter set: checks p, q probable primes,
    the family's congruence on p (3 mod 4 for {!Y2_x3_x}, 11 mod 12 for
    {!Y2_x3_1}), q | p + 1, q^2 does not divide p + 1 (so G1 is cyclic
    of order exactly q), and derives a generator by hashing a fixed seed.
    [family] defaults to {!Y2_x3_x}. Raises [Invalid_argument] on any
    violation. *)

(** {1 Named parameter sets}

    Generated once by [bin/paramgen.ml] (kept in the repo for audit) and
    validated again by {!make} at first use. *)

val toy64 : unit -> params
(** 64-bit q, ~80-bit p: fast, for unit tests only. *)

val toy64b : unit -> params
(** Like {!toy64} but on the {!Y2_x3_1} (Boneh–Franklin) curve family. *)

val mid128b : unit -> params
(** Like {!mid128} on the {!Y2_x3_1} family. *)

val mid128 : unit -> params
(** 128-bit q, ~256-bit p: medium, integration tests and quick benches. *)

val std160 : unit -> params
(** 160-bit q, 512-bit p — the Boneh–Franklin-era security level the
    paper's setting assumed. *)

val by_name : string -> params option
val all_names : string list

(** {1 Group operations} *)

val random_scalar : params -> Hashing.Drbg.t -> Bigint.t
(** Uniform in [1, q-1] — the paper's Z_q^*. *)

val batch_exponents : params -> seed:string -> int -> Bigint.t list
(** [n] derandomized 64-bit nonzero exponents for Bellare–Garay–Rabin
    small-exponents batch verification, drawn from a DRBG keyed by [seed]
    (by convention: the verification key and the serialized batch, so any
    tampering re-randomizes all exponents — Fiat–Shamir style, sound in
    the random-oracle model). Used by {!Bls.verify_batch} and
    [Tre.Verifier.verify_updates]. *)

val pairing : params -> Curve.point -> Curve.point -> Fp2.t
(** The modified Tate pairing of two G1 points; result in the order-q
    subgroup of GF(p^2)*. [pairing p G G] is a generator of G2. *)

val pairing_ref : params -> Curve.point -> Curve.point -> Fp2.t
(** The same pairing through the functional (allocating) binary Miller
    loop and the generic final exponentiation, pinned as the reference
    for the kernel path. Bit-identical to {!pairing} — the equivalence
    tests and [bench --smoke] assert it. *)

(** {1 Pairing stages}

    The two halves of the pairing, exposed for the stage-level
    benchmarks and differential tests. Contracts: the two Miller loops
    agree after (either) final exponentiation — their raw values differ
    only by GF(p)* factors the exponentiation annihilates — and the two
    final exponentiations are bit-identical on {e every} input. *)

val miller_loop : params -> Curve.point -> Curve.point -> Fp2.t
(** Production Miller loop: in-place kernels on the signed-digit (NAF)
    schedule; pairings against the generator use the construction-time
    prepared schedule. *)

val miller_loop_ref : params -> Curve.point -> Curve.point -> Fp2.t
(** Pinned functional binary-schedule Miller loop. *)

val final_exponentiation : params -> Fp2.t -> Fp2.t
(** Kernel path: easy part by conjugation and one inversion, hard part
    by cyclotomic squarings under a signed window ({!params.cofactor_wnaf}).
    Raises [Division_by_zero] on zero. *)

val final_exponentiation_ref : params -> Fp2.t -> Fp2.t
(** Pinned generic path: easy part, then sliding-window {!Fp2.pow} by
    the cofactor. *)

(** {1 Products of pairings}

    Every verification equation in the system is a product
    [prod_i e^(P_i, Q_i) = 1]. The product kernel computes all N pairs
    through ONE interleaved Miller loop — a single shared f^2 squaring
    chain per loop bit (the squarings dominate; with N pairs they are
    paid once instead of N times), every line evaluation folded into the
    same accumulator — and at most one shared final exponentiation.
    Decision-only checks skip even that: [FE(m) = 1] iff [m^h] lands in
    GF(p), a cofactor exponentiation and an is-zero test. All results
    and decisions are bit-identical to multiplying separate {!pairing}
    values — the differential tests pin it. *)

type pair_arg =
  | Point of Curve.point
  | Prepared of prepared
      (** A product slot: a live first argument, or one prepared with
          {!prepare}. Live {!Y2_x3_x} arguments equal to the system
          generator are promoted to the construction-time schedule
          automatically. *)

val miller_product : params -> (Curve.point * Curve.point) list -> Fp2.t
(** The raw interleaved Miller product [prod_i f_i] (pre final
    exponentiation). The empty product is 1. *)

val miller_product_mixed : params -> (pair_arg * Curve.point) list -> Fp2.t
(** {!miller_product} with prepared and live first arguments mixed
    freely in one loop. *)

val check_product_one : params -> (Curve.point * Curve.point) list -> bool
(** [prod_i e^(P_i, Q_i) = 1]? One interleaved Miller loop, then the
    GF(p)-membership test of [m^h] in place of a final exponentiation.
    The decision equals [Fp2.is_one (pairing_product prms pairs)]
    exactly. *)

val check_product_one_mixed : params -> (pair_arg * Curve.point) list -> bool
(** {!check_product_one} over mixed prepared/live first arguments. *)

val pairing_product : params -> (Curve.point * Curve.point) list -> Fp2.t
(** [prod_i e^(P_i, Q_i)] as a GT value: one interleaved Miller loop and
    a single shared final exponentiation — for callers that need the
    product itself (multi-server decryption), not just a decision. *)

val pairing_check : params -> (Curve.point * Curve.point) list -> bool
(** [check_product_one]. The natural form of all the scheme's
    verification equations. *)

val pairing_equal_check :
  params -> lhs:Curve.point * Curve.point -> rhs:Curve.point * Curve.point -> bool
(** [e^(a,b) = e^(c,d)]? via [e^(a,b) * e^(c,-d) = 1] — one interleaved
    product, no final exponentiation. The right-hand side is inverted by
    negating its point argument so a generator first argument keeps its
    prepared schedule. *)

(** {1 Precomputed pairings and fixed-base scalars}

    When the same first argument feeds many pairings (the generator, a
    public key, a hashed release time), prepare it once; every subsequent
    pairing then skips the Miller loop's point arithmetic. All prepared
    variants are bit-identical to their plain counterparts. *)

val prepare : params -> Curve.point -> prepared
val pairing_prepared : params -> prepared -> Curve.point -> Fp2.t
(** [pairing_prepared prms (prepare prms p) q = pairing prms p q]. *)

val pairing_product_prepared : params -> (prepared * Curve.point) list -> Fp2.t
val pairing_check_prepared : params -> (prepared * Curve.point) list -> bool
val pairing_equal_check_prepared :
  params -> lhs:prepared * Curve.point -> rhs:prepared * Curve.point -> bool
(** Like {!pairing_equal_check}; the inversion of the right-hand side
    negates its point argument (e^(c,d)^-1 = e^(c,-d)), since a prepared
    argument cannot be negated. *)

val mul_g : params -> Bigint.t -> Curve.point
(** [mul_g prms k = Curve.mul prms.curve k prms.g], via the fixed-base
    table [g_table]. *)

val gt_mul : params -> Fp2.t -> Fp2.t -> Fp2.t
val gt_pow : params -> Fp2.t -> Bigint.t -> Fp2.t
val gt_inv : params -> Fp2.t -> Fp2.t
val gt_equal : Fp2.t -> Fp2.t -> bool
val gt_one : params -> Fp2.t

val in_g1 : params -> Curve.point -> bool
(** On-curve and killed by q (subgroup membership). *)

val ddh : params -> Curve.point -> Curve.point -> Curve.point -> Curve.point -> bool
(** [ddh prms p a b c] decides whether (p, a, b, c) is a DDH tuple, i.e.
    c = xy.p when a = x.p, b = y.p — via e^(a, b) = e^(p, c). This is the
    polynomial-time DDH solver that makes G1 a {e Gap} DH group. *)

(** {1 The paper's random oracles} *)

val hash_to_g1 : params -> string -> Curve.point
(** H1 : \{0,1\}* -> G1*: try-and-increment to a curve point, then
    cofactor multiplication into the subgroup; never returns infinity. *)

val hash_to_g1_unclamped : params -> string -> Curve.point
(** The pre-cofactor-clearing lift behind {!hash_to_g1}: a curve point of
    unconstrained order. Cofactor clearing commutes with linear
    combinations, so batch verifiers accumulate these raw lifts weighted
    by their small exponents and clear the cofactor {e once} on the sum —
    one h-mult per batch instead of one per item.
    [hash_to_g1 prms m = Curve.mul prms.curve prms.cofactor
    (hash_to_g1_unclamped prms m)] for every input whose clamped lift is
    nonzero (all but a fraction 1/q < 2^-64 of inputs, on which
    {!hash_to_g1} re-rolls its internal counter instead). *)

val h2 : params -> Fp2.t -> int -> string
(** H2 : G2 -> \{0,1\}^n, instantiated as a KDF over the canonical
    serialization of the pairing value; [n] is the plaintext length in
    bytes, so [Kdf.xor] of a message with its H2 image implements the
    paper's [M xor H2(K)]. *)

val scalar_bytes : params -> int
(** Serialized width of a scalar (bytes of q). *)

val point_bytes : params -> int
(** Serialized width of a compressed non-infinity G1 point. *)

val gt_bytes : params -> int
(** Serialized width of a G2 element. *)
