(* Binary min-heap of timestamped events. Ties are broken by insertion
   sequence so same-time events run in schedule order (deterministic
   simulation). *)

type 'a entry = { at : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let bigger = Array.make cap t.heap.(0) in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t ~at payload =
  let entry = { at; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.at, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).at
