(** Deterministic binary-heap event queue for the discrete-event simulator.

    Same-timestamp events are delivered in insertion order, which makes
    every simulation run bit-reproducible given the same DRBG seed. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> at:float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
