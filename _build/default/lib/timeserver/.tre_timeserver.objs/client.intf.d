lib/timeserver/client.mli: Pairing Passive_server Simnet Tre
