lib/timeserver/client.ml: Hashtbl List Pairing Passive_server Simnet String Tre
