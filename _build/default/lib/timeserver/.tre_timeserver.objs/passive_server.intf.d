lib/timeserver/passive_server.mli: Pairing Simnet Timeline Tre
