lib/timeserver/simnet.ml: Char Event_queue Float Hashing List String
