lib/timeserver/timeline.mli: Tre
