lib/timeserver/simnet.mli: Hashing
