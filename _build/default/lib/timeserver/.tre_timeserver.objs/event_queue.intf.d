lib/timeserver/event_queue.mli:
