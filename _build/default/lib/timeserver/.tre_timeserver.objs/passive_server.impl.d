lib/timeserver/passive_server.ml: Char Hashing Hashtbl List Pairing Simnet String Timeline Tre
