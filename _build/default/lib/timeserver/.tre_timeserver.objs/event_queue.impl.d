lib/timeserver/event_queue.ml: Array
