lib/timeserver/timeline.ml: Float Printf String
