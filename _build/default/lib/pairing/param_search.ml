let generate ?rng ?(h_multiple = 4) ~qbits ~pbits () =
  if pbits < qbits + 3 then invalid_arg "Param_search.generate: pbits too small";
  if h_multiple < 4 || h_multiple mod 4 <> 0 then
    invalid_arg "Param_search.generate: h_multiple must be a positive multiple of 4";
  let rng = match rng with Some r -> r | None -> Hashing.Drbg.default () in
  let q = Prime.gen_prime ~rng ~bits:qbits () in
  let hbits = pbits - qbits in
  let step = Bigint.of_int h_multiple in
  let rec search () =
    (* h = h_multiple * k keeps p = h*q - 1 in the wanted residue class:
       4 | h gives p = 3 (mod 4); additionally 3 | h gives p = 2 (mod 3). *)
    let k = Bigint.succ (Bigint.random_bits rng (hbits - 2)) in
    let h = Bigint.mul step k in
    let p = Bigint.pred (Bigint.mul h q) in
    if Bigint.bit_length p = pbits && Prime.is_probably_prime ~rng p then p
    else search ()
  in
  (search (), q)
