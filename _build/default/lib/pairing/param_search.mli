(** Search for pairing-friendly supersingular parameters.

    Finds (p, q): q a [qbits]-bit prime, p = h*q - 1 a [pbits]-bit prime
    with h = 0 (mod 4) — hence p = 3 (mod 4) and q | p + 1, which is
    exactly what {!Pairing.make} requires. Used by [bin/paramgen] to
    produce the named parameter sets checked into the library, and kept
    here so the search itself is testable. *)

val generate :
  ?rng:Hashing.Drbg.t ->
  ?h_multiple:int ->
  qbits:int ->
  pbits:int ->
  unit ->
  Bigint.t * Bigint.t
(** [(p, q)]. Requires [pbits >= qbits + 3]. The default [rng] is the
    process-global DRBG. [h_multiple] (default 4) constrains the cofactor:
    h = 0 (mod 4) gives p = 3 (mod 4) (the y^2 = x^3 + x family);
    h = 0 (mod 12) additionally gives p = 2 (mod 3) (the y^2 = x^3 + 1
    family). Must itself be a multiple of 4. *)
