lib/pairing/param_search.ml: Bigint Hashing Prime
