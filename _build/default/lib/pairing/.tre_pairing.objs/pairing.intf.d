lib/pairing/pairing.mli: Bigint Curve Fp Fp2 Hashing
