lib/pairing/param_search.mli: Bigint Hashing
