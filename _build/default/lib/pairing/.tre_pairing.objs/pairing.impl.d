lib/pairing/pairing.ml: Bigint Char Curve Fp Fp2 Hashing Hashtbl Lazy List Prime Printf String
