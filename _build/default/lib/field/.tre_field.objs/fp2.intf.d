lib/field/fp2.mli: Bigint Format Fp
