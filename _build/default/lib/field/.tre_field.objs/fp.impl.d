lib/field/fp.ml: Bigint Modarith String
