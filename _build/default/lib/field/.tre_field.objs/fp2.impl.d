lib/field/fp2.ml: Bigint Format Fp String
