module Mont = Modarith.Mont

type ctx = {
  p : Bigint.t;
  mont : Mont.ctx;
  sqrt_exp : Bigint.t; (* (p+1)/4 *)
  euler_exp : Bigint.t; (* (p-1)/2 *)
  bytes : int;
}

type t = Mont.elt

let create p =
  if Bigint.compare p (Bigint.of_int 3) < 0 || Bigint.is_even p then
    invalid_arg "Fp.create: modulus must be odd and >= 3";
  if not (Bigint.equal (Bigint.erem p (Bigint.of_int 4)) (Bigint.of_int 3)) then
    invalid_arg "Fp.create: modulus must be 3 mod 4";
  {
    p;
    mont = Mont.create p;
    sqrt_exp = Bigint.shift_right (Bigint.succ p) 2;
    euler_exp = Bigint.shift_right (Bigint.pred p) 1;
    bytes = (Bigint.bit_length p + 7) / 8;
  }

let modulus ctx = ctx.p
let byte_length ctx = ctx.bytes
let zero ctx = Mont.zero ctx.mont
let one ctx = Mont.one ctx.mont
let of_bigint ctx v = Mont.of_bigint ctx.mont v
let of_int ctx v = of_bigint ctx (Bigint.of_int v)
let to_bigint ctx e = Mont.to_bigint ctx.mont e
let equal = Mont.equal
let is_zero ctx e = Mont.equal e (Mont.zero ctx.mont)
let add ctx = Mont.add ctx.mont
let sub ctx = Mont.sub ctx.mont
let neg ctx = Mont.neg ctx.mont
let mul ctx = Mont.mul ctx.mont
let sqr ctx = Mont.sqr ctx.mont

let inv ctx e =
  if is_zero ctx e then raise Division_by_zero;
  Mont.inv ctx.mont e

let div ctx a b = mul ctx a (inv ctx b)

let pow ctx e n =
  if Bigint.sign n >= 0 then Mont.pow ctx.mont e n
  else Mont.pow ctx.mont (inv ctx e) (Bigint.neg n)

let is_square ctx e =
  is_zero ctx e || equal (pow ctx e ctx.euler_exp) (one ctx)

let sqrt ctx e =
  if is_zero ctx e then Some e
  else begin
    let candidate = pow ctx e ctx.sqrt_exp in
    if equal (sqr ctx candidate) e then Some candidate else None
  end

let to_bytes ctx e = Bigint.to_bytes_be ~pad_to:ctx.bytes (to_bigint ctx e)

let of_bytes ctx s =
  if String.length s <> ctx.bytes then None
  else begin
    let v = Bigint.of_bytes_be s in
    if Bigint.compare v ctx.p >= 0 then None else Some (of_bigint ctx v)
  end

let pp ctx fmt e = Bigint.pp fmt (to_bigint ctx e)
