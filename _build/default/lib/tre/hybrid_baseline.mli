(** The generic hybrid construction of the paper's footnote 3 — the
    baseline for the "50% reduction in most cases" claim (§1).

    "We could use a public key encryption scheme to encrypt a sub-key K1
    and use an identity based encryption scheme to encrypt another sub-key
    K2. These two sub-keys are then combined to feed into a symmetric key
    encryption scheme for encrypting the actual messages."

    Instantiated over the same GDH group so the comparison is apples to
    apples: the PKE is hashed ElGamal in G1, the IBE is Boneh–Franklin
    BasicIdent with the release time as the identity (its extraction key
    for "identity" T is exactly the time server's update s*H1(T), so the
    same passive server serves both schemes). The receiver needs his
    ElGamal secret AND the time update, giving timed release — at the cost
    of two encapsulations where TRE needs one: 2 G1 points + 2 key blobs
    of overhead vs 1 point, and 1 pairing + 4 scalar mults vs 1 pairing +
    2 scalar mults to encrypt. Experiment E2 measures exactly this. *)

type receiver_secret
type receiver_public = Curve.point
(** ElGamal xG. *)

type ciphertext = {
  u1 : Curve.point;  (** ElGamal r1*G *)
  c1 : string;  (** K1 xor KDF(r1 * xG) *)
  u2 : Curve.point;  (** IBE r2*G *)
  c2 : string;  (** K2 xor H2(e^(sG, H1(T))^r2) *)
  body : string;  (** M xor KDF(K1, K2) *)
  release_time : Tre.time;
}

val receiver_keygen :
  Pairing.params -> Hashing.Drbg.t -> receiver_secret * receiver_public

val encrypt :
  Pairing.params ->
  Tre.Server.public ->
  receiver_public ->
  release_time:Tre.time ->
  Hashing.Drbg.t ->
  string ->
  ciphertext

val decrypt :
  Pairing.params -> receiver_secret -> Tre.update -> ciphertext -> string
(** Needs both the ElGamal secret and the time-bound update — neither
    alone recovers the message (asserted by tests). Raises
    {!Tre.Update_mismatch} on a wrong-time update. *)

val ciphertext_overhead : Pairing.params -> int
