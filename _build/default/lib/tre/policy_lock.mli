(** Policy-lock encryption — the generalization of §5.3.2.

    The time server is just a witness signing statements; nothing in the
    construction requires the statement to be "it is now time T". A sender
    may lock a message under {e any} condition strings ("It is an
    emergency", "The receiver has completed task X", ...); the witness
    publishes sigma(C) = s*H1(C) when a condition becomes true, and the
    receiver needs the witness signatures for {e all} the conditions plus
    his private key.

    Conjunction comes for free from the pairing's additivity:
    K = e^(r*asG, sum_i H1(C_i)) and sum_i sigma(C_i) = s * sum_i H1(C_i),
    so one ciphertext of the same size locks under any number of
    conditions — the same trick that gives ID-TRE its combined key. *)

exception Invalid_receiver_key
exception Missing_witness
(** Raised by {!decrypt} when the witness set does not cover exactly the
    ciphertext's conditions. *)

type condition = string

type witness = Tre.update
(** sigma(C) = s*H1(C): identical object to a time-bound key update — time
    release is the special case [C = "it is now T"]. *)

type ciphertext = {
  u : Curve.point;
  v : string;
  conditions : condition list;  (** sorted, duplicate-free *)
}

val issue_witness : Pairing.params -> Tre.Server.secret -> condition -> witness
val verify_witness : Pairing.params -> Tre.Server.public -> witness -> bool

val encrypt :
  Pairing.params ->
  Tre.Server.public ->
  Tre.User.public ->
  conditions:condition list ->
  Hashing.Drbg.t ->
  string ->
  ciphertext
(** Conditions are deduplicated and sorted; at least one is required.
    Raises [Invalid_argument] on an empty list. *)

val decrypt :
  Pairing.params -> Tre.User.secret -> witness list -> ciphertext -> string
(** The witness list must contain a witness for every condition of the
    ciphertext (extras are ignored). *)

val ciphertext_overhead : Pairing.params -> int
