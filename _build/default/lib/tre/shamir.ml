type share = { index : int; value : Bigint.t }

let split prms rng ~secret ~k ~n =
  let q = prms.Pairing.q in
  if k < 1 || k > n then invalid_arg "Shamir.split: need 1 <= k <= n";
  if Bigint.compare (Bigint.of_int n) q >= 0 then invalid_arg "Shamir.split: n >= q";
  if Bigint.sign secret < 0 || Bigint.compare secret q >= 0 then
    invalid_arg "Shamir.split: secret out of range";
  (* f(x) = secret + c1 x + ... + c_{k-1} x^{k-1}, coefficients uniform. *)
  let coeffs = secret :: List.init (k - 1) (fun _ -> Bigint.random_below rng q) in
  let eval x =
    List.fold_right
      (fun c acc -> Bigint.erem (Bigint.add c (Bigint.mul acc x)) q)
      coeffs Bigint.zero
  in
  List.init n (fun i ->
      let index = i + 1 in
      { index; value = eval (Bigint.of_int index) })

let lagrange_at_zero prms indices =
  let q = prms.Pairing.q in
  if List.exists (fun i -> i < 1) indices then
    invalid_arg "Shamir.lagrange_at_zero: indices must be >= 1";
  if List.length (List.sort_uniq compare indices) <> List.length indices then
    invalid_arg "Shamir.lagrange_at_zero: duplicate indices";
  List.map
    (fun i ->
      (* lambda_i = prod_{j <> i} j / (j - i) mod q *)
      List.fold_left
        (fun acc j ->
          if j = i then acc
          else begin
            let num = Bigint.of_int j in
            let den = Modarith.invmod (Bigint.of_int (j - i)) q in
            Bigint.erem (Bigint.mul acc (Bigint.mul num den)) q
          end)
        Bigint.one indices)
    indices

let reconstruct prms shares =
  let q = prms.Pairing.q in
  let lambdas = lagrange_at_zero prms (List.map (fun s -> s.index) shares) in
  List.fold_left2
    (fun acc share lambda -> Bigint.erem (Bigint.add acc (Bigint.mul lambda share.value)) q)
    Bigint.zero shares lambdas
