(** ASCII armor for keys, updates and ciphertexts (PEM-like).

    {[
      -----BEGIN TRE CIPHERTEXT (mid128)-----
      pZ8x...
      -----END TRE CIPHERTEXT-----
    ]}

    The parameter-set name rides in the header so tools can refuse
    cross-parameter material early. Payloads are Base64 of the binary
    codecs in {!Tre}. *)

val wrap : kind:string -> params:string -> string -> string
(** [kind] is an uppercase label like ["CIPHERTEXT"]; [params] the
    parameter-set name. *)

val unwrap : string -> (string * string * string) option
(** [Some (kind, params, payload)] for well-formed armor (leading and
    trailing junk outside the markers is tolerated, mismatched BEGIN/END
    kinds are not). *)

val unwrap_expecting :
  kind:string -> params:string -> string -> (string, string) result
(** Unwrap and check both the kind and the parameter-set name; the error
    is a human-readable reason. *)
