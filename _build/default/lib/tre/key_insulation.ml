type epoch_key = { epoch : Tre.time; k : Curve.point }

let derive prms a (upd : Tre.update) =
  {
    epoch = upd.Tre.update_time;
    k = Curve.mul prms.Pairing.curve (Tre.User.secret_to_scalar a) upd.Tre.update_value;
  }

let epoch ek = ek.epoch

let decrypt prms ek (ct : Tre.ciphertext) =
  if ek.epoch <> ct.Tre.release_time then raise Tre.Update_mismatch;
  (* K' = e^(U, a * s * H1(T)) = e^(G, H1(T))^ras — no use of [a] here. *)
  let k = Pairing.pairing prms ct.Tre.u ek.k in
  Hashing.Kdf.xor ct.Tre.v (Pairing.h2 prms k (String.length ct.Tre.v))

let to_bytes prms ek =
  Tre.update_to_bytes prms { Tre.update_time = ek.epoch; update_value = ek.k }

let of_bytes prms s =
  Option.map
    (fun (u : Tre.update) -> { epoch = u.Tre.update_time; k = u.Tre.update_value })
    (Tre.update_of_bytes prms s)
