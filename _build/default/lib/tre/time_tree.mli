(** Binary tree over epochs — the combinatorial core of the
    missing-update-resilient extension ({!Resilient_tre}, the paper's §6
    future work).

    Epochs 0 .. 2^depth - 1 are the leaves of a complete binary tree.
    Every node is named by the bit-path from the root (so names never
    collide with plain time labels). Two facts drive the scheme:

    - {b cover}: the canonical segment-tree decomposition of the prefix
      interval [0..e] into at most [depth + 1] maximal full subtrees. A
      node enters a cover of [0..e] only when {e all} leaves below it are
      <= e.
    - {b ancestors}: each leaf has [depth + 1] ancestors (itself up to the
      root), and for every e' <= e, exactly one ancestor of leaf e' lies
      in the cover of [0..e] — while for e' > e, none does.

    So signing the cover nodes of [0..e] releases every epoch <= e and
    nothing later. *)

type t

val create : depth:int -> t
(** [depth] in [1, 40]; supports [2^depth] epochs. *)

val depth : t -> int
val epochs : t -> int
(** 2^depth. *)

type node = { level : int; index : int }
(** Level 0 is the root; level [depth] holds the leaves; [index] counts
    nodes left-to-right within a level. *)

val leaf : t -> int -> node
(** Raises [Invalid_argument] if the epoch is out of range. *)

val node_label : t -> node -> string
(** Canonical, injective label, e.g. ["tree3/0b101"]; domain-separated
    from plain time labels. *)

val ancestors : t -> int -> node list
(** Ancestors of a leaf, leaf first, root last; length [depth + 1]. *)

val cover : t -> int -> node list
(** Canonical cover of [0..e] by maximal full subtrees; at most
    [depth + 1] nodes, in increasing leaf order. *)

val covers_leaf : t -> node -> int -> bool
(** Is the given epoch's leaf inside this node's subtree? *)

val leaves_of : t -> node -> int * int
(** Inclusive leaf-epoch range under a node. *)
