exception Invalid_receiver_key
exception Missing_witness

type condition = string
type witness = Tre.update

type ciphertext = {
  u : Curve.point;
  v : string;
  conditions : condition list;
}

let issue_witness = Tre.issue_update
let verify_witness = Tre.verify_update

let normalize conditions = List.sort_uniq String.compare conditions

(* sum_i H1(C_i) — the combined lock point. *)
let combined_hash prms conditions =
  List.fold_left
    (fun acc c -> Curve.add prms.Pairing.curve acc (Pairing.hash_to_g1 prms c))
    Curve.infinity conditions

let encrypt prms srv (pk : Tre.User.public) ~conditions rng msg =
  let conditions = normalize conditions in
  if conditions = [] then invalid_arg "Policy_lock.encrypt: no conditions";
  if not (Tre.validate_receiver_key prms srv pk) then raise Invalid_receiver_key;
  let curve = prms.Pairing.curve in
  let r = Pairing.random_scalar prms rng in
  let k =
    Pairing.pairing prms
      (Curve.mul curve r pk.Tre.User.asg)
      (combined_hash prms conditions)
  in
  {
    u = Curve.mul curve r srv.Tre.Server.g;
    v = Hashing.Kdf.xor msg (Pairing.h2 prms k (String.length msg));
    conditions;
  }

let decrypt prms a witnesses ct =
  (* Pick one witness per required condition; sum them into s * sum H1(C_i). *)
  let find c =
    match
      List.find_opt (fun (w : witness) -> w.Tre.update_time = c) witnesses
    with
    | Some w -> w.Tre.update_value
    | None -> raise Missing_witness
  in
  let curve = prms.Pairing.curve in
  let combined_sig =
    List.fold_left
      (fun acc c -> Curve.add curve acc (find c))
      Curve.infinity ct.conditions
  in
  let scalar = Tre.User.secret_to_scalar a in
  let k = Pairing.gt_pow prms (Pairing.pairing prms ct.u combined_sig) scalar in
  Hashing.Kdf.xor ct.v (Pairing.h2 prms k (String.length ct.v))

let ciphertext_overhead prms = 4 + Pairing.point_bytes prms
