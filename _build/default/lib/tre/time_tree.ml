type t = { depth : int }

type node = { level : int; index : int }

let create ~depth =
  if depth < 1 || depth > 40 then invalid_arg "Time_tree.create: depth out of [1, 40]";
  { depth }

let depth t = t.depth
let epochs t = 1 lsl t.depth

let leaf t e =
  if e < 0 || e >= epochs t then invalid_arg "Time_tree.leaf: epoch out of range";
  { level = t.depth; index = e }

let node_label t node =
  (* Bit-path of the node from the root; level disambiguates prefixes. *)
  let bits =
    String.init node.level (fun i ->
        if (node.index lsr (node.level - 1 - i)) land 1 = 1 then '1' else '0')
  in
  Printf.sprintf "tree%d/0b%s" t.depth bits

let parent node = { level = node.level - 1; index = node.index lsr 1 }

let ancestors t e =
  (* Leaf first, root last. *)
  let rec up node acc =
    if node.level = 0 then List.rev (node :: acc) else up (parent node) (node :: acc)
  in
  up (leaf t e) []

let leaves_of t node =
  let span = 1 lsl (t.depth - node.level) in
  (node.index * span, ((node.index + 1) * span) - 1)

let covers_leaf t node e =
  let lo, hi = leaves_of t node in
  lo <= e && e <= hi

(* Minimal decomposition of [0..e] into maximal full subtrees: writing
   e + 1 = sum of powers 2^k (largest first), each power is one aligned
   subtree of 2^k consecutive leaves. Cover size = popcount(e+1)
   <= depth + 1; [0 .. 2^depth - 1] collapses to the root. *)
let cover t e =
  ignore (leaf t e);
  let n = e + 1 in
  let rec walk k pos acc =
    if k < 0 then List.rev acc
    else if n land (1 lsl k) <> 0 then
      let node = { level = t.depth - k; index = pos lsr k } in
      walk (k - 1) (pos + (1 lsl k)) (node :: acc)
    else walk (k - 1) pos acc
  in
  walk t.depth 0 []
