type receiver_secret = Bigint.t
type receiver_public = Curve.point

type ciphertext = {
  u1 : Curve.point;
  c1 : string;
  u2 : Curve.point;
  c2 : string;
  body : string;
  release_time : Tre.time;
}

let subkey_bytes = 32

let receiver_keygen prms rng =
  let x = Pairing.random_scalar prms rng in
  (x, Curve.mul prms.Pairing.curve x prms.Pairing.g)

(* Hashed-ElGamal KEM mask from a shared G1 point. *)
let elgamal_mask prms shared n =
  Hashing.Kdf.mask ("HYB-PKE|" ^ Curve.to_bytes prms.Pairing.curve shared) n

let combine_keys k1 k2 n =
  Hashing.Hkdf.derive ~info:"HYB-combine" (k1 ^ k2) n |> fun prk ->
  Hashing.Kdf.mask ("HYB-DEM|" ^ prk) n

let encrypt prms (srv : Tre.Server.public) (pk : receiver_public) ~release_time rng msg =
  let curve = prms.Pairing.curve in
  let k1 = Hashing.Drbg.generate rng subkey_bytes in
  let k2 = Hashing.Drbg.generate rng subkey_bytes in
  (* PKE leg: hashed ElGamal on K1. *)
  let r1 = Pairing.random_scalar prms rng in
  let u1 = Curve.mul curve r1 prms.Pairing.g in
  let c1 = Hashing.Kdf.xor k1 (elgamal_mask prms (Curve.mul curve r1 pk) subkey_bytes) in
  (* IBE leg: Boneh-Franklin BasicIdent on K2 with identity = release time. *)
  let r2 = Pairing.random_scalar prms rng in
  let u2 = Curve.mul curve r2 srv.Tre.Server.g in
  let gid =
    Pairing.gt_pow prms
      (Pairing.pairing prms srv.Tre.Server.sg (Pairing.hash_to_g1 prms release_time))
      r2
  in
  let c2 = Hashing.Kdf.xor k2 (Pairing.h2 prms gid subkey_bytes) in
  (* DEM: symmetric encryption under the combined key. *)
  let body = Hashing.Kdf.xor msg (combine_keys k1 k2 (String.length msg)) in
  { u1; c1; u2; c2; body; release_time }

let decrypt prms x (upd : Tre.update) ct =
  if upd.Tre.update_time <> ct.release_time then raise Tre.Update_mismatch;
  let curve = prms.Pairing.curve in
  let k1 = Hashing.Kdf.xor ct.c1 (elgamal_mask prms (Curve.mul curve x ct.u1) subkey_bytes) in
  let gid = Pairing.pairing prms ct.u2 upd.Tre.update_value in
  let k2 = Hashing.Kdf.xor ct.c2 (Pairing.h2 prms gid subkey_bytes) in
  Hashing.Kdf.xor ct.body (combine_keys k1 k2 (String.length ct.body))

let ciphertext_overhead prms = 4 + (2 * Pairing.point_bytes prms) + (2 * subkey_bytes)
