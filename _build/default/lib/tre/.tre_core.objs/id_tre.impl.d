lib/tre/id_tre.ml: Bigint Curve Hashing Pairing String Tre
