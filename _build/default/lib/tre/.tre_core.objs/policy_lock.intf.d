lib/tre/policy_lock.mli: Curve Hashing Pairing Tre
