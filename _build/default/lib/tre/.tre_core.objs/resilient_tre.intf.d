lib/tre/resilient_tre.mli: Curve Hashing Pairing Time_tree Tre
