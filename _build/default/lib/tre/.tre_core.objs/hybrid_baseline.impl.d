lib/tre/hybrid_baseline.ml: Bigint Curve Hashing Pairing String Tre
