lib/tre/threshold_server.ml: Array Bigint Curve List Pairing Shamir Tre
