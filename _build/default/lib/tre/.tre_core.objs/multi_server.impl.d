lib/tre/multi_server.ml: Array Curve Hashing List Pairing String Tre
