lib/tre/key_insulation.mli: Pairing Tre
