lib/tre/armor.ml: Buffer Hashing List Option Printf String
