lib/tre/armor.mli:
