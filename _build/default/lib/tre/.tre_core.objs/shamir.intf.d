lib/tre/shamir.mli: Bigint Hashing Pairing
