lib/tre/time_tree.ml: List Printf String
