lib/tre/id_tre.mli: Curve Hashing Pairing Tre
