lib/tre/hybrid_baseline.mli: Curve Hashing Pairing Tre
