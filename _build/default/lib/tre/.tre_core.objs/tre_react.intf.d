lib/tre/tre_react.mli: Curve Hashing Pairing Tre
