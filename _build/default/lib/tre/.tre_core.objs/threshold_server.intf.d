lib/tre/threshold_server.mli: Curve Hashing Pairing Tre
