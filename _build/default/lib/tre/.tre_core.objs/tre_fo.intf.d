lib/tre/tre_fo.mli: Curve Hashing Pairing Tre
