lib/tre/tre.ml: Bigint Char Curve Hashing Option Pairing String
