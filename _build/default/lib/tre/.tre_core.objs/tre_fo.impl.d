lib/tre/tre_fo.ml: Curve Hashing Pairing Printf String Tre
