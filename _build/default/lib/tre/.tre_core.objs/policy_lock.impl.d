lib/tre/policy_lock.ml: Curve Hashing List Pairing String Tre
