lib/tre/key_insulation.ml: Curve Hashing Option Pairing String Tre
