lib/tre/tre.mli: Bigint Curve Hashing Pairing
