lib/tre/resilient_tre.ml: Curve Hashing List Pairing String Time_tree Tre
