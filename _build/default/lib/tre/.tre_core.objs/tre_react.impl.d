lib/tre/tre_react.ml: Curve Hashing Pairing String Tre
