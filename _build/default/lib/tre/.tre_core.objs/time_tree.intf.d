lib/tre/time_tree.mli:
