lib/tre/multi_server.mli: Curve Hashing Pairing Tre
