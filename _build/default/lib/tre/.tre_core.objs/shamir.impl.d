lib/tre/shamir.ml: Bigint List Modarith Pairing
