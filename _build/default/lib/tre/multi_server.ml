exception Invalid_receiver_key
exception Update_mismatch
exception Wrong_update_count

type receiver_public = { ag : Curve.point; k_new : Curve.point }

type ciphertext = {
  us : Curve.point array;
  v : string;
  release_time : Tre.time;
}

let sum_server_points prms servers =
  List.fold_left
    (fun acc (srv : Tre.Server.public) ->
      Curve.add prms.Pairing.curve acc srv.Tre.Server.sg)
    Curve.infinity servers

let receiver_public_of_secret prms servers a =
  if servers = [] then invalid_arg "Multi_server: empty server list";
  let curve = prms.Pairing.curve in
  let scalar = Tre.User.secret_to_scalar a in
  {
    ag = Curve.mul curve scalar prms.Pairing.g;
    k_new = Curve.mul curve scalar (sum_server_points prms servers);
  }

let receiver_keygen prms servers rng =
  let a = Tre.User.secret_of_scalar prms (Pairing.random_scalar prms rng) in
  (a, receiver_public_of_secret prms servers a)

let validate_receiver_key prms servers (pk : receiver_public) =
  servers <> []
  && Pairing.in_g1 prms pk.ag
  && Pairing.in_g1 prms pk.k_new
  && (not (Curve.is_infinity pk.ag))
  && Pairing.pairing_equal_check prms
       ~lhs:(prms.Pairing.g, pk.k_new)
       ~rhs:(pk.ag, sum_server_points prms servers)

let encrypt prms servers pk ~release_time rng msg =
  if not (validate_receiver_key prms servers pk) then raise Invalid_receiver_key;
  let curve = prms.Pairing.curve in
  let r = Pairing.random_scalar prms rng in
  let us =
    Array.of_list
      (List.map (fun (srv : Tre.Server.public) -> Curve.mul curve r srv.Tre.Server.g) servers)
  in
  let k =
    Pairing.pairing prms (Curve.mul curve r pk.k_new)
      (Pairing.hash_to_g1 prms release_time)
  in
  { us; v = Hashing.Kdf.xor msg (Pairing.h2 prms k (String.length msg)); release_time }

let decrypt prms a updates ct =
  if List.length updates <> Array.length ct.us then raise Wrong_update_count;
  List.iter
    (fun (u : Tre.update) ->
      if u.Tre.update_time <> ct.release_time then raise Update_mismatch)
    updates;
  let scalar = Tre.User.secret_to_scalar a in
  (* K = (prod_i e^(rG_i, s_i H1(T)))^a — one shared final exponentiation
     and one GT exponentiation regardless of N. *)
  let pairs = List.mapi (fun i (u : Tre.update) -> (ct.us.(i), u.Tre.update_value)) updates in
  let k = Pairing.gt_pow prms (Pairing.pairing_product prms pairs) scalar in
  Hashing.Kdf.xor ct.v (Pairing.h2 prms k (String.length ct.v))

let ciphertext_overhead prms ~n_servers = 4 + (n_servers * Pairing.point_bytes prms)
