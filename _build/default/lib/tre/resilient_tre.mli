(** Missing-update-resilient TRE — the paper's §6 future work, realized
    with the base scheme's own machinery.

    In plain TRE an update s*H1(T) opens release time T only; a receiver
    who misses a broadcast must fetch it from the archive. Here epochs are
    the leaves of a {!Time_tree}, and at epoch e the server broadcasts the
    updates for the {e canonical cover} of [0..e] — at most depth+1 BLS
    signatures. Because a tree node enters a cover only once every leaf
    below it has passed, signing a cover node releases exactly the epochs
    it spans and nothing in the future.

    A sender encrypting for release epoch e' attaches one small header per
    ancestor of leaf e' (depth+1 headers of 32 bytes): header_nu masks the
    message key with H2(e^(r*asG, H1(nu))). For any e >= e', exactly one
    ancestor of e' lies in the cover of [0..e], so the {b latest broadcast
    alone} always suffices — missing any number of earlier updates is
    harmless, which is precisely the resilience §6 asks for. For e < e',
    no ancestor is covered and every header stays locked (under the same
    BDH argument as the base scheme, since each header is a base-scheme
    ciphertext for a node label).

    Costs (measured in experiment E10): ciphertext grows by
    (depth+1) * 32-byte headers; the per-epoch broadcast carries up to
    depth+1 updates instead of 1 — still independent of the number of
    receivers, so the scalability story is unchanged. *)

type header = { node_label : string; blob : string }

type ciphertext = {
  u : Curve.point;  (** rG *)
  headers : header list;  (** one per ancestor of the release leaf *)
  body : string;  (** M xor KDF(message key) *)
  release_epoch : int;
}

val encrypt :
  Pairing.params ->
  Time_tree.t ->
  Tre.Server.public ->
  Tre.User.public ->
  release_epoch:int ->
  Hashing.Drbg.t ->
  string ->
  ciphertext
(** Raises {!Tre.Invalid_receiver_key} / [Invalid_argument] on bad key or
    epoch. *)

val issue_cover :
  Pairing.params -> Time_tree.t -> Tre.Server.secret -> epoch:int -> Tre.update list
(** The server's per-epoch broadcast: one BLS update per cover node of
    [0..epoch]; at most [Time_tree.depth t + 1] elements. *)

val verify_cover :
  Pairing.params -> Time_tree.t -> Tre.Server.public -> epoch:int -> Tre.update list -> bool
(** All updates verify and the labels are exactly the canonical cover. *)

val decrypt :
  Pairing.params ->
  Time_tree.t ->
  Tre.User.secret ->
  cover:Tre.update list ->
  ciphertext ->
  string option
(** Decrypt with {e any} broadcast cover from epoch >= the release epoch;
    [None] when the cover predates the release epoch (no ancestor is
    covered — the time lock). *)

val ciphertext_overhead : Pairing.params -> Time_tree.t -> int
