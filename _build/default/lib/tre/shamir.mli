(** Shamir secret sharing over Z_q (the pairing scalar field).

    Substrate for {!Threshold_server}: the time server's secret s is split
    so that any k of n share-servers can produce key updates while k-1
    learn nothing. Shares are points (i, f(i)) on a random degree-(k-1)
    polynomial with f(0) = s. *)

type share = { index : int; value : Bigint.t }
(** Indices are 1-based (0 is the secret's position). *)

val split :
  Pairing.params -> Hashing.Drbg.t -> secret:Bigint.t -> k:int -> n:int -> share list
(** Requires [1 <= k <= n < q] and [secret] in [0, q). Returns n shares,
    any k of which reconstruct. *)

val lagrange_at_zero : Pairing.params -> int list -> Bigint.t list
(** The Lagrange coefficients lambda_i (mod q) such that
    f(0) = sum_i lambda_i * f(i) for the given pairwise-distinct indices.
    Raises [Invalid_argument] on duplicates or indices < 1. *)

val reconstruct : Pairing.params -> share list -> Bigint.t
(** Interpolate the secret from >= k shares (exactly the given ones are
    used, so passing fewer than k yields a wrong value, not an error —
    secrecy, not integrity). *)
