type puzzle = {
  n : Bigint.t;
  a : Bigint.t;
  t : int;
  key_blob : string;
  body : string;
}

let key_bytes = 32

let mask_of_point n v len =
  (* Domain-separated KDF over the canonical encoding of v mod n. *)
  let width = (Bigint.bit_length n + 7) / 8 in
  Hashing.Kdf.mask ("RSW|" ^ Bigint.to_bytes_be ~pad_to:width (Bigint.erem v n)) len

let create ?rng ~modulus_bits ~squarings msg =
  if modulus_bits < 64 then invalid_arg "Timelock.create: modulus too small";
  if squarings < 1 then invalid_arg "Timelock.create: squarings < 1";
  let rng = match rng with Some r -> r | None -> Hashing.Drbg.default () in
  let half = modulus_bits / 2 in
  let p = Prime.gen_prime ~rng ~bits:half () in
  let q =
    let rec distinct () =
      let q = Prime.gen_prime ~rng ~bits:(modulus_bits - half) () in
      if Bigint.equal p q then distinct () else q
    in
    distinct ()
  in
  let n = Bigint.mul p q in
  let phi = Bigint.mul (Bigint.pred p) (Bigint.pred q) in
  let a = Bigint.two in
  (* Trapdoor: e = 2^t mod phi(n), then b = a^e mod n in one exponentiation. *)
  let e = Modarith.powmod Bigint.two (Bigint.of_int squarings) phi in
  let b = Modarith.powmod a e n in
  let key = Hashing.Drbg.generate rng key_bytes in
  {
    n;
    a;
    t = squarings;
    key_blob = Hashing.Kdf.xor key (mask_of_point n b key_bytes);
    body = Hashing.Kdf.xor msg (Hashing.Kdf.mask ("RSW-DEM|" ^ key) (String.length msg));
  }

let solve_count puzzle =
  (* The sequential path: t squarings mod n, no shortcut without phi(n). *)
  let ctx = Modarith.Mont.create puzzle.n in
  let acc = ref (Modarith.Mont.of_bigint ctx puzzle.a) in
  for _ = 1 to puzzle.t do
    acc := Modarith.Mont.sqr ctx !acc
  done;
  let b = Modarith.Mont.to_bigint ctx !acc in
  let key = Hashing.Kdf.xor puzzle.key_blob (mask_of_point puzzle.n b key_bytes) in
  let msg =
    Hashing.Kdf.xor puzzle.body
      (Hashing.Kdf.mask ("RSW-DEM|" ^ key) (String.length puzzle.body))
  in
  (msg, puzzle.t)

let solve puzzle = fst (solve_count puzzle)

let calibrate ?(modulus_bits = 512) ?(sample = 2000) () =
  let rng = Hashing.Drbg.create ~seed:"timelock-calibration" () in
  let p = Prime.gen_prime ~rng ~bits:(modulus_bits / 2) () in
  let q = Prime.gen_prime ~rng ~bits:(modulus_bits - (modulus_bits / 2)) () in
  let n = Bigint.mul p q in
  let ctx = Modarith.Mont.create n in
  let acc = ref (Modarith.Mont.of_bigint ctx Bigint.two) in
  let start = Sys.time () in
  for _ = 1 to sample do
    acc := Modarith.Mont.sqr ctx !acc
  done;
  let elapsed = Sys.time () -. start in
  ignore (Sys.opaque_identity !acc);
  if elapsed <= 0.0 then float_of_int sample *. 1e6
  else float_of_int sample /. elapsed

let squarings_for ~rate ~seconds =
  if rate <= 0.0 || seconds < 0.0 then invalid_arg "Timelock.squarings_for";
  max 1 (int_of_float (rate *. seconds))

type precision = {
  intended_delay : float;
  actual_release : float;
  error : float;
}

let release_precision ~intended_delay ~speed_factor ~start_delay =
  if speed_factor <= 0.0 then invalid_arg "Timelock.release_precision";
  let actual = start_delay +. (intended_delay /. speed_factor) in
  { intended_delay; actual_release = actual; error = actual -. intended_delay }
