(** The Rivest–Shamir–Wagner time-lock puzzle (§2.1's baseline).

    A message is locked so that recovering it takes [t] {e sequential}
    squarings mod n = pq; the creator shortcuts with the trapdoor
    phi(n) (reducing the exponent 2^t mod phi(n)), the solver cannot.
    Implemented in full — modulus generation on our own Miller–Rabin
    primes, trapdoor encryption, sequential solving — so experiment E4 can
    measure the paper's criticism directly: release time is {e relative}
    (to when solving starts), {e machine-dependent} (squarings/second),
    and costs the receiver continuous CPU, whereas the server-based TRE
    releases at an absolute instant for free. *)

type puzzle = {
  n : Bigint.t;  (** RSA modulus *)
  a : Bigint.t;  (** base, fixed to 2 *)
  t : int;  (** number of sequential squarings *)
  key_blob : string;  (** K xor KDF(a^(2^t) mod n) *)
  body : string;  (** M xor KDF(K) *)
}

val create :
  ?rng:Hashing.Drbg.t -> modulus_bits:int -> squarings:int -> string -> puzzle
(** Lock a message. Uses the phi(n) trapdoor, so creation cost is one
    modular exponentiation regardless of [squarings].
    Requires [modulus_bits >= 64] and [squarings >= 1]. *)

val solve : puzzle -> string
(** Recover the message by [t] sequential squarings — the intended
    (slow) path. *)

val solve_count : puzzle -> string * int
(** Like {!solve} but also returns the number of squarings performed (for
    the benchmark's cost accounting). *)

(** {1 Calibration and the release-precision model (experiment E4)} *)

val calibrate : ?modulus_bits:int -> ?sample:int -> unit -> float
(** Measured squarings per second on this machine at the given modulus
    size (default 512 bits, 2000 sample squarings). *)

val squarings_for : rate:float -> seconds:float -> int
(** Puzzle difficulty targeting [seconds] on a machine achieving [rate]. *)

type precision = {
  intended_delay : float;  (** what the sender wanted *)
  actual_release : float;  (** when the message actually becomes readable *)
  error : float;  (** actual - intended *)
}

val release_precision :
  intended_delay:float ->
  speed_factor:float ->
  start_delay:float ->
  precision
(** The §2.1 criticism as arithmetic: a solver running at [speed_factor]
    times the calibrated machine, starting [start_delay] after receipt,
    reads the message at [start_delay + intended_delay / speed_factor].
    A perfectly calibrated, immediately-started solver has zero error;
    everyone else does not — and can never be {e forced} to be late or
    early by the sender. *)
