(** Primality testing and prime generation (Miller–Rabin).

    Used by {!Pairing}'s parameter generator (subgroup order q, field prime
    p = h*q - 1) and by the RSA modulus of the time-lock-puzzle baseline. *)

val is_probably_prime : ?rounds:int -> ?rng:Hashing.Drbg.t -> Bigint.t -> bool
(** Trial division by small primes followed by [rounds] (default 40)
    Miller–Rabin rounds. Deterministic small-prime answers for tiny inputs.
    Negative inputs are never prime. If [rng] is absent a fixed-seed DRBG
    is used, making the test deterministic. *)

val gen_prime : ?rng:Hashing.Drbg.t -> bits:int -> unit -> Bigint.t
(** A random probable prime with exactly [bits] bits (top bit set).
    Requires [bits >= 2]. *)

val gen_prime_congruent :
  ?rng:Hashing.Drbg.t -> bits:int -> modulus:int -> residue:int -> unit -> Bigint.t
(** A [bits]-bit probable prime p with [p mod modulus = residue].
    Raises [Invalid_argument] if no residue class can contain primes
    (i.e. [gcd residue modulus > 1] and [residue <> modulus] is not prime). *)

val small_primes : int list
(** The primes below 1000, used for trial division. *)
