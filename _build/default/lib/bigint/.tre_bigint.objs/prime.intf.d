lib/bigint/prime.mli: Bigint Hashing
