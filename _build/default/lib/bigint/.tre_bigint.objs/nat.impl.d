lib/bigint/nat.ml: Array Bytes Char List Stdlib String
