lib/bigint/nat.mli:
