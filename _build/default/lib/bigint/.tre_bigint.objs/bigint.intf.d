lib/bigint/bigint.mli: Format Hashing Nat
