lib/bigint/modarith.ml: Array Bigint Nat
