lib/bigint/modarith.mli: Bigint
