lib/bigint/prime.ml: Array Bigint Fun Hashing List Modarith
