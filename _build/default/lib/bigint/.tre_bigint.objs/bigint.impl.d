lib/bigint/bigint.ml: Buffer Bytes Char Format Hashing List Nat Printf Stdlib String
