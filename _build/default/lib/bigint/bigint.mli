(** Arbitrary-precision signed integers, pure OCaml.

    The public integer type of the whole library: field elements, curve
    scalars, RSA moduli and time-lock puzzles are all built on it. Values
    are immutable. Internally a sign and a {!Nat} magnitude. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t
val to_int_opt : t -> int option
val to_int_exn : t -> int
(** Raises [Failure] if out of native range. *)

(** {1 Comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_zero : t -> bool
val is_even : t -> bool
val is_odd : t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val sqr : t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Truncated division (like [Stdlib.(/)] and [mod]): quotient rounds
    toward zero, remainder has the dividend's sign.
    Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder: always in [0, |m|). This is "mod p" as used in
    all the field arithmetic. Raises [Division_by_zero]. *)

val pow : t -> int -> t
(** Natural power. Raises [Invalid_argument] on negative exponent. *)

(** {1 Bits} *)

val bit_length : t -> int
(** Bits of the magnitude; 0 for zero. *)

val test_bit : t -> int -> bool
(** Bit [i] of the magnitude. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (sign preserved). *)

(** {1 Conversions} *)

val of_string : string -> t
(** Decimal, with optional sign, or hex with a ["0x"]/["-0x"] prefix.
    Raises [Invalid_argument] on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
(** Decimal. *)

val to_string_hex : t -> string
(** Lowercase hex with ["0x"] prefix and sign. *)

val of_bytes_be : string -> t
(** Non-negative value from big-endian bytes. *)

val to_bytes_be : ?pad_to:int -> t -> string
(** Big-endian magnitude bytes. Raises [Invalid_argument] on negative
    values or if [pad_to] is too small. *)

val pp : Format.formatter -> t -> unit

(** {1 Randomness}

    All randomness is drawn from a caller-supplied {!Hashing.Drbg.t} so
    that tests and benchmarks are reproducible. *)

val random_bits : Hashing.Drbg.t -> int -> t
(** Uniform in [0, 2^bits). *)

val random_below : Hashing.Drbg.t -> t -> t
(** Uniform in [0, bound) by rejection sampling.
    Raises [Invalid_argument] if [bound <= 0]. *)

val random_in_range : Hashing.Drbg.t -> lo:t -> hi:t -> t
(** Uniform in [lo, hi] inclusive. Raises [Invalid_argument] if [lo > hi]. *)

(**/**)

val magnitude : t -> Nat.t
(** Internal: magnitude limbs (for {!Modarith}). *)

val of_nat : Nat.t -> t
