(* Signed integers over Nat magnitudes. Invariant: [sign] is 0 iff the
   magnitude is zero, else -1 or 1. *)

type t = { sign : int; mag : Nat.t }

let make sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let two = { sign = 1; mag = Nat.of_int 2 }
let minus_one = { sign = -1; mag = Nat.one }

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = Nat.of_int n }
  else if n = min_int then invalid_arg "Bigint.of_int: min_int unsupported"
  else { sign = -1; mag = Nat.of_int (-n) }

let to_int_opt a =
  match Nat.to_int_opt a.mag with
  | Some v -> Some (a.sign * v)
  | None -> None

let to_int_exn a =
  match to_int_opt a with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: out of native range"

let sign a = a.sign
let is_zero a = a.sign = 0
let is_even a = a.sign = 0 || not (Nat.test_bit a.mag 0)
let is_odd a = not (is_even a)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg a = make (-a.sign) a.mag
let abs a = make (Stdlib.abs a.sign) a.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (Nat.add a.mag b.mag)
  else begin
    match Nat.compare a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> make a.sign (Nat.sub a.mag b.mag)
    | _ -> make b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (Nat.mul a.mag b.mag)

let sqr a = make (if a.sign = 0 then 0 else 1) (Nat.sqr a.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  (make (a.sign * b.sign) q, make a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a m =
  let r = rem a m in
  if r.sign < 0 then add r (abs m) else r

let pow a n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc base else acc in
      go acc (sqr base) (n lsr 1)
    end
  in
  go one a n

let bit_length a = Nat.bit_length a.mag
let test_bit a i = Nat.test_bit a.mag i
let shift_left a s = make a.sign (Nat.shift_left a.mag s)
let shift_right a s = make a.sign (Nat.shift_right a.mag s)

(* Decimal via 9-digit (10^9 < 2^31) chunks. *)
let chunk = 1_000_000_000

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag acc =
      if Nat.is_zero mag then acc
      else begin
        let q, r = Nat.divmod_small mag chunk in
        go q (r :: acc)
      end
    in
    (match go a.mag [] with
    | [] -> assert false
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    (if a.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let to_string_hex a =
  if a.sign = 0 then "0x0"
  else begin
    let hex = Hashing.Hex.encode (Nat.to_bytes_be a.mag) in
    (* Strip leading zero nibbles. *)
    let i = ref 0 in
    while !i < String.length hex - 1 && hex.[!i] = '0' do
      incr i
    done;
    let body = String.sub hex !i (String.length hex - !i) in
    (if a.sign < 0 then "-0x" else "0x") ^ body
  end

let parse_digits ~radix s =
  if s = "" then invalid_arg "Bigint.of_string: empty";
  let digit c =
    let v =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | '_' -> -1
      | _ -> invalid_arg "Bigint.of_string: bad digit"
    in
    if v >= radix then invalid_arg "Bigint.of_string: bad digit";
    v
  in
  let acc = ref Nat.zero in
  String.iter
    (fun c ->
      let d = digit c in
      if d >= 0 then acc := Nat.add_small (Nat.mul_small !acc radix) d)
    s;
  !acc

let of_string s =
  let negative, body =
    if String.length s > 0 && s.[0] = '-' then (true, String.sub s 1 (String.length s - 1))
    else if String.length s > 0 && s.[0] = '+' then (false, String.sub s 1 (String.length s - 1))
    else (false, s)
  in
  let mag =
    if String.length body > 2 && body.[0] = '0' && (body.[1] = 'x' || body.[1] = 'X')
    then parse_digits ~radix:16 (String.sub body 2 (String.length body - 2))
    else parse_digits ~radix:10 body
  in
  make (if negative then -1 else 1) mag

let of_string_opt s =
  match of_string s with v -> Some v | exception Invalid_argument _ -> None

let of_bytes_be s = make 1 (Nat.of_bytes_be s)

let to_bytes_be ?pad_to a =
  if a.sign < 0 then invalid_arg "Bigint.to_bytes_be: negative";
  Nat.to_bytes_be ?pad_to a.mag

let pp fmt a = Format.pp_print_string fmt (to_string a)

let random_bits rng bits =
  if bits < 0 then invalid_arg "Bigint.random_bits";
  if bits = 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let raw = Bytes.of_string (Hashing.Drbg.generate rng nbytes) in
    let excess = (8 * nbytes) - bits in
    Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) land (0xFF lsr excess)));
    of_bytes_be (Bytes.unsafe_to_string raw)
  end

let random_below rng bound =
  if bound.sign <= 0 then invalid_arg "Bigint.random_below: bound <= 0";
  let bits = bit_length bound in
  let rec try_once () =
    let candidate = random_bits rng bits in
    if compare candidate bound < 0 then candidate else try_once ()
  in
  try_once ()

let random_in_range rng ~lo ~hi =
  if compare lo hi > 0 then invalid_arg "Bigint.random_in_range: lo > hi";
  add lo (random_below rng (succ (sub hi lo)))

let magnitude a = a.mag
let of_nat mag = make 1 mag
