let small_primes =
  (* Sieve of Eratosthenes below 1000, computed once at load. *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  List.filter (fun i -> sieve.(i)) (List.init (limit + 1) Fun.id)

let fixed_rng () =
  Hashing.Drbg.create ~seed:"deterministic-miller-rabin" ()

(* One Miller-Rabin round with witness a on n = d * 2^s + 1. *)
let mr_round n d s a =
  let x = Modarith.powmod a d n in
  let n1 = Bigint.pred n in
  if Bigint.equal x Bigint.one || Bigint.equal x n1 then true
  else begin
    let rec squares x i =
      if i >= s - 1 then false
      else begin
        let x = Bigint.erem (Bigint.sqr x) n in
        if Bigint.equal x n1 then true else squares x (i + 1)
      end
    in
    squares x 0
  end

let is_probably_prime ?(rounds = 40) ?rng n =
  if Bigint.sign n <= 0 then false
  else begin
    match Bigint.to_int_opt n with
    | Some v when v <= 1000 -> List.mem v small_primes
    | _ ->
        if Bigint.is_even n then false
        else begin
          let divisible_by_small =
            List.exists
              (fun p ->
                p > 2 && Bigint.is_zero (Bigint.erem n (Bigint.of_int p)))
              small_primes
          in
          if divisible_by_small then false
          else begin
            let rng = match rng with Some r -> r | None -> fixed_rng () in
            let n1 = Bigint.pred n in
            let rec split d s =
              if Bigint.is_even d then split (Bigint.shift_right d 1) (s + 1)
              else (d, s)
            in
            let d, s = split n1 0 in
            let rec rounds_left i =
              if i = 0 then true
              else begin
                let a =
                  Bigint.random_in_range rng ~lo:Bigint.two ~hi:(Bigint.pred n1)
                in
                if mr_round n d s a then rounds_left (i - 1) else false
              end
            in
            rounds_left rounds
          end
        end
  end

let gen_prime ?rng ~bits () =
  if bits < 2 then invalid_arg "Prime.gen_prime: bits < 2";
  let rng = match rng with Some r -> r | None -> Hashing.Drbg.default () in
  let rec search () =
    let candidate = Bigint.random_bits rng bits in
    (* Force the top bit (exact width) and the bottom bit (odd). *)
    let candidate =
      if Bigint.test_bit candidate (bits - 1) then candidate
      else Bigint.add candidate (Bigint.shift_left Bigint.one (bits - 1))
    in
    let candidate = if Bigint.is_even candidate then Bigint.succ candidate else candidate in
    if Bigint.bit_length candidate = bits && is_probably_prime ~rng candidate then candidate
    else search ()
  in
  search ()

let gen_prime_congruent ?rng ~bits ~modulus ~residue () =
  if bits < 2 || modulus <= 0 || residue < 0 || residue >= modulus then
    invalid_arg "Prime.gen_prime_congruent: bad arguments";
  let rng = match rng with Some r -> r | None -> Hashing.Drbg.default () in
  let md = Bigint.of_int modulus and rs = Bigint.of_int residue in
  let rec search attempts =
    if attempts > 100_000 then
      invalid_arg "Prime.gen_prime_congruent: no prime found (bad residue class?)";
    let candidate = Bigint.random_bits rng bits in
    let candidate =
      if Bigint.test_bit candidate (bits - 1) then candidate
      else Bigint.add candidate (Bigint.shift_left Bigint.one (bits - 1))
    in
    (* Snap to the residue class. *)
    let candidate = Bigint.add (Bigint.sub candidate (Bigint.erem candidate md)) rs in
    if
      Bigint.bit_length candidate = bits
      && Bigint.sign candidate > 0
      && is_probably_prime ~rng candidate
    then candidate
    else search (attempts + 1)
  in
  search 0
