(** Mont et al.'s HP "time vault" design (§2.2): Boneh–Franklin IBE with
    release-time-augmented identities, where the server {e individually
    delivers} each user's epoch private key.

    The receiver's public key for epoch T is [ID || T]; at each epoch start
    the server extracts s*H1(ID || T) for {e every registered user} and
    sends it over a secure channel — N messages per epoch, the O(N)
    scalability failure the paper's single broadcast update fixes. And, as
    in all IBE schemes, the server can decrypt everything. *)

type t

val create : Pairing.params -> net:Simnet.t -> timeline:Timeline.t -> name:string -> t
val name : t -> string
val server_public : t -> Id_tre.Server.public

val register : t -> identity:string -> (int -> Curve.point -> unit) -> unit
(** The receiver must enroll — the server learns every receiver's
    identity. The handler receives (epoch, epoch private key). *)

val registered_users : t -> int

val start_epoch_deliveries : t -> first_epoch:int -> epochs:int -> unit
(** Per epoch: one extraction + one unicast per registered user. *)

val epoch_identity : t -> identity:string -> epoch:int -> string
(** The augmented identity string [ID || T_e] used as the IBE public key. *)

val encrypt :
  t -> identity:string -> release_epoch:int -> string -> Id_tre.ciphertext
(** Sender-side BF encryption to [ID || T] — non-interactive, like TRE. *)

val decrypt : t -> epoch_private_key:Curve.point -> Id_tre.ciphertext -> string
(** Receiver-side, with the delivered per-epoch key alone (the update is
    folded into the key — which is why delivery must be per-user). *)

val report : t -> Baseline_report.t
