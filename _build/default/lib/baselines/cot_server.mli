(** Di Crescenzo–Ostrovsky–Rajagopalan conditional oblivious transfer
    time-release (§2.2) — interaction-cost model.

    In their protocol the {e receiver} runs a private, multi-round
    conditional OT with the server for every ciphertext, evaluating
    "release time < server time" obliviously, with communication
    logarithmic in the time parameter T. We model the message/round
    structure faithfully (2*ceil(log2 T) + 2 messages per decryption
    attempt, server online and engaged in every one) without reproducing
    the underlying homomorphic machinery — the paper's comparison is about
    interaction, load and DoS exposure, which the cost model captures:

    - the server cannot tell whether a query's release time is past,
      present or absurdly far in the future (that is the privacy goal!),
      so it must pay the full protocol cost for every query — including
      adversarial ones ({!flood}), the DoS vector of footnote 5. *)

type t

val create : net:Simnet.t -> name:string -> time_parameter_bits:int -> t
(** [time_parameter_bits] = ceil(log2 T): the resolution of the time
    space. *)

val name : t -> string
val rounds_per_decryption : t -> int

val request_decryption :
  t -> receiver:string -> release_epoch:int -> payload_bytes:int ->
  granted:(bool -> unit) -> unit
(** One full COT run. [granted true] iff the release epoch has passed at
    protocol end (the server evaluates the predicate honestly but
    obliviously). *)

val set_current_epoch : t -> int -> unit
val flood : t -> attacker:string -> queries:int -> unit
(** The footnote-5 DoS: far-future queries the server cannot filter. *)

val protocol_messages : t -> int
val report : t -> Baseline_report.t
