(** Rivest–Shamir–Wagner's two server-based schemes (§2.2).

    {b Online (symmetric) variant}: the server keeps a hash-chain of
    per-epoch symmetric keys (it remembers only the seed). A sender must
    hand the server his message for encryption under K_T — one round trip
    per message, and the server sees the plaintext, the release time and
    the sender. At each epoch the server broadcasts K_T, so receivers are
    anonymous (the one anonymity property this design does retain).

    {b Offline (public-key list) variant}: the server pre-publishes public
    keys for every epoch within a horizon and releases the matching secret
    key when each epoch arrives. No per-message interaction — but the
    sender can only choose release times inside the pre-published horizon
    (the scalability failure footnote 2 of the paper points at), and the
    pre-publication itself is O(horizon/granularity) bytes. *)

module Online : sig
  type t

  val create : net:Simnet.t -> timeline:Timeline.t -> name:string -> seed:string -> t
  val name : t -> string

  val encrypt_via_server :
    t -> sender:string -> release_epoch:int -> string -> (string -> unit) -> unit
  (** Sender -> server -> sender round trip; the callback receives the
      ciphertext (K_T-encrypted) at the sender. *)

  val start_broadcasts :
    t -> first_epoch:int -> epochs:int -> recipients:(string * (int -> string -> unit)) list -> unit
  (** Broadcast K_e at each epoch start; handlers get (epoch, key). *)

  val decrypt : epoch_key:string -> string -> string
  (** Receiver-side symmetric decryption with a broadcast key. *)

  val report : t -> Baseline_report.t
end

module Offline_list : sig
  type t

  val create :
    Pairing.params ->
    net:Simnet.t -> timeline:Timeline.t -> name:string -> seed:string -> horizon_epochs:int -> t
  (** Pre-publishes the whole key list for [horizon_epochs] immediately
      (one bulk broadcast, counted). *)

  val name : t -> string
  val horizon : t -> int
  val public_key_for : t -> epoch:int -> string option
  (** [None] beyond the horizon — the sender is stuck (footnote 2). *)

  val encrypt : t -> epoch:int -> string -> string option
  (** Non-interactive sender-side encryption under the published epoch
      key; [None] beyond the horizon. *)

  val start_secret_releases :
    t -> first_epoch:int -> epochs:int -> recipients:(string * (int -> string -> unit)) list -> unit

  val decrypt : t -> epoch_secret:string -> string -> string option
  (** [None] on a wrong-epoch secret (authenticated encryption check). *)

  val prepublication_bytes : t -> int
  (** Size of the future-key list — E7's storage axis. *)

  val report : t -> Baseline_report.t
end
