(** May's trusted escrow agent (1993) — the earliest server-based baseline
    (§2.2).

    The sender deposits the {e plaintext} message, its release time and the
    receiver's identity with the agent, which stores everything and sends
    the message to the receiver when the time comes. Total functionality,
    total surveillance: the server stores O(#messages) state, must be
    contacted once per message by every sender, sends one message per
    deposit to each receiver — and learns sender, receiver, content and
    release time of every message. *)

type t

val create : net:Simnet.t -> timeline:Timeline.t -> name:string -> t
val name : t -> string

val deposit :
  t ->
  sender:string ->
  receiver:string ->
  deliver:(string -> unit) ->
  release_epoch:int ->
  string ->
  unit
(** Sender -> server message carrying the plaintext; the server schedules
    delivery at the release epoch. *)

val run_epoch_deliveries : t -> unit
(** Installed automatically by {!deposit}; exposed for tests. *)

val stored_messages : t -> int
val peak_state_bytes : t -> int
val report : t -> Baseline_report.t
