type leak =
  | Sender_identity
  | Receiver_identity
  | Message_content
  | Release_time

type t = {
  scheme : string;
  server_messages : int;
  server_bytes : int;
  server_state_bytes : int;
  sender_server_interactions : int;
  receiver_server_interactions : int;
  leaks : leak list;
}

let leak_to_string = function
  | Sender_identity -> "sender-id"
  | Receiver_identity -> "receiver-id"
  | Message_content -> "message"
  | Release_time -> "release-time"

let leaks_to_string = function
  | [] -> "none"
  | leaks -> String.concat "," (List.map leak_to_string leaks)

let pp fmt t =
  Format.fprintf fmt
    "%-18s msgs=%-8d bytes=%-10d state=%-10d sender-int=%-6d recv-int=%-6d leaks=%s"
    t.scheme t.server_messages t.server_bytes t.server_state_bytes
    t.sender_server_interactions t.receiver_server_interactions
    (leaks_to_string t.leaks)
