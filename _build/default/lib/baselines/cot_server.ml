type t = {
  net : Simnet.t;
  name : string;
  bits : int;
  mutable current_epoch : int;
  mutable sessions : int;
  mutable messages : int;
}

let create ~net ~name ~time_parameter_bits =
  if time_parameter_bits < 1 then invalid_arg "Cot_server.create";
  {
    net;
    name;
    bits = time_parameter_bits;
    current_epoch = 0;
    sessions = 0;
    messages = 0;
  }

let name t = t.name
let rounds_per_decryption t = (2 * t.bits) + 2
let set_current_epoch t e = t.current_epoch <- e

(* Per-round payload: a constant number of group elements per bit of the
   time parameter; 128 bytes is representative of the Paillier-style
   encodings the protocol uses. *)
let round_bytes = 128

let run_session t ~receiver ~on_done =
  t.sessions <- t.sessions + 1;
  let total = rounds_per_decryption t in
  let rec round i =
    if i >= total then on_done ()
    else begin
      let src, dst = if i mod 2 = 0 then (receiver, t.name) else (t.name, receiver) in
      t.messages <- t.messages + 1;
      Simnet.send t.net ~src ~dst ~kind:"cot-round" ~bytes:round_bytes (fun () ->
          round (i + 1))
    end
  in
  round 0

let request_decryption t ~receiver ~release_epoch ~payload_bytes ~granted =
  ignore payload_bytes;
  run_session t ~receiver ~on_done:(fun () ->
      (* The predicate is evaluated only at the end; the server never
         learns which branch was taken. *)
      granted (release_epoch <= t.current_epoch))

let flood t ~attacker ~queries =
  for _ = 1 to queries do
    (* Release time absurdly far in the future: the server still runs the
       whole protocol because it cannot see the time. *)
    run_session t ~receiver:attacker ~on_done:(fun () -> ())
  done

let protocol_messages t = t.messages

let report t =
  {
    Baseline_report.scheme = "cot";
    server_messages = t.messages / 2;
    server_bytes = Simnet.total_bytes_by t.net t.name;
    server_state_bytes = t.sessions * 64; (* per-session protocol state *)
    sender_server_interactions = 0;
    receiver_server_interactions = t.messages;
    leaks = [ Baseline_report.Receiver_identity ];
  }
