lib/baselines/may_escrow.mli: Baseline_report Simnet Timeline
