lib/baselines/may_escrow.ml: Baseline_report Float Simnet String Timeline
