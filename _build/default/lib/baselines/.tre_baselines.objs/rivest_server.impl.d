lib/baselines/rivest_server.ml: Array Baseline_report Bigint Curve Hashing List Pairing Printf Simnet String Timeline Tre
