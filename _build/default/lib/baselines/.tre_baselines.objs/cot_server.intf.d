lib/baselines/cot_server.mli: Baseline_report Simnet
