lib/baselines/mont_ibe.ml: Baseline_report Curve Hashing Id_tre List Pairing Simnet String Timeline
