lib/baselines/cot_server.ml: Baseline_report Simnet
