lib/baselines/mont_ibe.mli: Baseline_report Curve Id_tre Pairing Simnet Timeline
