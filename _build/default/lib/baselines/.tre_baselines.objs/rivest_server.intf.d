lib/baselines/rivest_server.mli: Baseline_report Pairing Simnet Timeline
