lib/baselines/baseline_report.ml: Format List String
