lib/baselines/baseline_report.mli: Format
