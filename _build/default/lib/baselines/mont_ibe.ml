type t = {
  prms : Pairing.params;
  net : Simnet.t;
  timeline : Timeline.t;
  name : string;
  secret : Id_tre.Server.secret;
  public : Id_tre.Server.public;
  mutable users : (string * (int -> Curve.point -> unit)) list;
  mutable extractions : int;
  mutable unicasts : int;
}

let create prms ~net ~timeline ~name =
  let secret, public = Id_tre.Server.keygen prms (Simnet.rng net) in
  {
    prms;
    net;
    timeline;
    name;
    secret;
    public;
    users = [];
    extractions = 0;
    unicasts = 0;
  }

let name t = t.name
let server_public t = t.public

let register t ~identity handler =
  (* Enrollment interaction: the server learns the receiver identity. *)
  Simnet.send t.net ~src:identity ~dst:t.name ~kind:"ibe-enroll"
    ~bytes:(String.length identity)
    (fun () -> t.users <- (identity, handler) :: t.users)

let registered_users t = List.length t.users

let epoch_identity t ~identity ~epoch =
  identity ^ "||" ^ Timeline.label t.timeline epoch

let key_size t = Pairing.point_bytes t.prms

let start_epoch_deliveries t ~first_epoch ~epochs =
  for e = first_epoch to first_epoch + epochs - 1 do
    Simnet.schedule t.net ~at:(Timeline.start_of t.timeline e) (fun () ->
        (* O(N) work and O(N) unicasts, every single epoch. *)
        List.iter
          (fun (identity, handler) ->
            let d =
              Id_tre.Server.extract t.prms t.secret
                (epoch_identity t ~identity ~epoch:e)
            in
            t.extractions <- t.extractions + 1;
            t.unicasts <- t.unicasts + 1;
            Simnet.send t.net ~src:t.name ~dst:identity ~kind:"ibe-epoch-key"
              ~bytes:(key_size t)
              (fun () -> handler e d))
          t.users)
  done

let encrypt t ~identity ~release_epoch msg =
  (* BasicIdent to the augmented identity; release time embedded in the
     identity means no separate update is involved. *)
  let aug = epoch_identity t ~identity ~epoch:release_epoch in
  let zero_h1 = Curve.infinity in
  ignore zero_h1;
  let rng = Simnet.rng t.net in
  let curve = t.prms.Pairing.curve in
  let r = Pairing.random_scalar t.prms rng in
  let gid =
    Pairing.gt_pow t.prms
      (Pairing.pairing t.prms t.public.Id_tre.Server.sg (Pairing.hash_to_g1 t.prms aug))
      r
  in
  {
    Id_tre.u = Curve.mul curve r t.public.Id_tre.Server.g;
    v = Hashing.Kdf.xor msg (Pairing.h2 t.prms gid (String.length msg));
    release_time = Timeline.label t.timeline release_epoch;
  }

let decrypt t ~epoch_private_key (ct : Id_tre.ciphertext) =
  let k = Pairing.pairing t.prms ct.Id_tre.u epoch_private_key in
  Hashing.Kdf.xor ct.Id_tre.v (Pairing.h2 t.prms k (String.length ct.Id_tre.v))

let report t =
  {
    Baseline_report.scheme = "mont-ibe";
    server_messages = t.unicasts;
    server_bytes = Simnet.total_bytes_by t.net t.name;
    server_state_bytes =
      List.fold_left (fun acc (id, _) -> acc + String.length id + 32) 0 t.users;
    sender_server_interactions = 0;
    receiver_server_interactions = t.unicasts + registered_users t;
    leaks = [ Baseline_report.Receiver_identity ];
  }
