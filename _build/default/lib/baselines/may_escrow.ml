type stored = {
  receiver : string;
  deliver : string -> unit;
  release_epoch : int;
  payload : string;
}

type t = {
  net : Simnet.t;
  timeline : Timeline.t;
  name : string;
  mutable vault : stored list;
  mutable deposits : int;
  mutable peak_state : int;
  mutable state_now : int;
  mutable sender_interactions : int;
  mutable deliveries : int;
}

let create ~net ~timeline ~name =
  {
    net;
    timeline;
    name;
    vault = [];
    deposits = 0;
    peak_state = 0;
    state_now = 0;
    sender_interactions = 0;
    deliveries = 0;
  }

let name t = t.name

let state_cost payload receiver =
  String.length payload + String.length receiver + 16 (* timestamps etc. *)

let deliver_one t entry =
  Simnet.send t.net ~src:t.name ~dst:entry.receiver ~kind:"escrow-release"
    ~bytes:(String.length entry.payload)
    (fun () -> entry.deliver entry.payload);
  t.deliveries <- t.deliveries + 1;
  t.state_now <- t.state_now - state_cost entry.payload entry.receiver

let deposit t ~sender ~receiver ~deliver ~release_epoch payload =
  (* The deposit itself is a sender->server interaction carrying the
     plaintext: every anonymity property is lost here. *)
  t.sender_interactions <- t.sender_interactions + 1;
  let entry = { receiver; deliver; release_epoch; payload } in
  Simnet.send t.net ~src:sender ~dst:t.name ~kind:"escrow-deposit"
    ~bytes:(String.length payload)
    (fun () ->
      t.deposits <- t.deposits + 1;
      t.vault <- entry :: t.vault;
      t.state_now <- t.state_now + state_cost payload receiver;
      t.peak_state <- max t.peak_state t.state_now;
      Simnet.schedule t.net
        ~at:(Float.max (Simnet.now t.net) (Timeline.start_of t.timeline release_epoch))
        (fun () -> deliver_one t entry))

let run_epoch_deliveries _t = ()
let stored_messages t = t.deposits
let peak_state_bytes t = t.peak_state

let report t =
  {
    Baseline_report.scheme = "may-escrow";
    server_messages = t.deliveries;
    server_bytes = Simnet.total_bytes_by t.net t.name;
    server_state_bytes = t.peak_state;
    sender_server_interactions = t.sender_interactions;
    receiver_server_interactions = t.deliveries;
    leaks =
      [
        Baseline_report.Sender_identity;
        Baseline_report.Receiver_identity;
        Baseline_report.Message_content;
        Baseline_report.Release_time;
      ];
  }
