(** Uniform cost/privacy accounting for the schemes compared in §2 of the
    paper. Experiment E3 prints one row per scheme from this record. *)

type leak =
  | Sender_identity
  | Receiver_identity
  | Message_content
  | Release_time

type t = {
  scheme : string;
  server_messages : int;  (** total messages originated by the server *)
  server_bytes : int;
  server_state_bytes : int;  (** peak state the server must persist *)
  sender_server_interactions : int;  (** messages sender <-> server *)
  receiver_server_interactions : int;  (** messages receiver <-> server *)
  leaks : leak list;  (** what the server learns *)
}

val leak_to_string : leak -> string
val pp : Format.formatter -> t -> unit
val leaks_to_string : leak list -> string
