(** SHA-256 (FIPS 180-4), pure OCaml.

    This is the single hash primitive of the whole library: it instantiates
    the paper's random oracles [H1] (via {!Hash_to_field}) and [H2] (via
    {!Kdf}), authenticates nothing by itself, and is tested against the NIST
    known-answer vectors. *)

type ctx
(** Incremental hashing context. Contexts are mutable and single-use. *)

val init : unit -> ctx
(** Fresh context for an empty message. *)

val update : ctx -> string -> unit
(** [update ctx s] absorbs the bytes of [s]. *)

val update_bytes : ctx -> bytes -> int -> int -> unit
(** [update_bytes ctx b off len] absorbs [len] bytes of [b] starting at
    [off]. Raises [Invalid_argument] if the range is out of bounds. *)

val finalize : ctx -> string
(** Pads, finishes, and returns the 32-byte digest. The context must not be
    used afterwards. *)

val digest : string -> string
(** One-shot hash: 32-byte digest of the argument. *)

val digest_concat : string list -> string
(** Hash of the concatenation of the list elements, without building the
    concatenation. *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64 — the compression-function block size, needed by HMAC. *)
