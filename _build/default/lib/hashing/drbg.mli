(** HMAC-DRBG (NIST SP 800-90A, SHA-256 instantiation).

    All randomness in the library flows through a DRBG handle, which makes
    every test, example and benchmark reproducible from a seed while still
    exercising the real code paths. For live use, seed from
    {!system_entropy}. *)

type t
(** A DRBG instance. Mutable; not thread-safe — use one per domain. *)

val create : ?personalization:string -> seed:string -> unit -> t
(** Instantiate from entropy [seed] (any length, >= 16 bytes recommended)
    and an optional personalization string. *)

val generate : t -> int -> string
(** [generate t n] returns [n] fresh pseudorandom bytes and advances the
    state. Raises [Invalid_argument] on negative [n]. *)

val reseed : t -> string -> unit
(** Mix additional entropy into the state. *)

val system_entropy : ?n:int -> unit -> string
(** Best-effort entropy from [/dev/urandom], falling back to a clock-based
    mix if unavailable. [n] defaults to 32 bytes. *)

val default : unit -> t
(** A lazily-created process-global instance seeded from
    {!system_entropy}. *)
