(** Hexadecimal codecs for byte strings, used for test vectors, key
    fingerprints and the wire format of the example tools. *)

val encode : string -> string
(** Lowercase hex encoding; output is twice the input length. *)

val decode : string -> string
(** Inverse of {!encode}; accepts both cases.
    Raises [Invalid_argument] on odd length or non-hex characters. *)

val decode_opt : string -> string option
(** Like {!decode} but returns [None] instead of raising. *)
