(** Base64 (RFC 4648, standard alphabet with padding).

    Used by the command-line tool's ASCII-armored key/ciphertext files. *)

val encode : string -> string
val decode : string -> string option
(** [None] on characters outside the alphabet, bad padding, or
    non-canonical trailing bits. Whitespace (space, tab, newline, CR) is
    skipped, so armored multi-line input decodes directly. *)
