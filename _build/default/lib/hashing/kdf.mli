(** Counter-mode mask generation over SHA-256 (MGF1-style).

    This instantiates the paper's random oracle
    [H2 : G2 -> {0,1}^n]: the pairing value is serialized and expanded to
    exactly the plaintext length, then XORed with the message
    ([C = <rG, M xor H2(K)>], section 5.1). It also provides the generic
    XOR-pad used by the symmetric layer of the hybrid baseline. *)

val mask : string -> int -> string
(** [mask seed n] deterministically expands [seed] to [n] bytes:
    [SHA256(seed || ctr)] for ctr = 0, 1, ... (32-bit big-endian). *)

val xor : string -> string -> string
(** Byte-wise XOR of two equal-length strings.
    Raises [Invalid_argument] on length mismatch. *)

val xor_mask : seed:string -> string -> string
(** [xor_mask ~seed m] = [xor m (mask seed (length m))] — the one-time-pad
    style encryption/decryption step; it is an involution. *)
