let hex_chars = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let v = Char.code s.[i] in
    Bytes.set out (2 * i) hex_chars.[v lsr 4];
    Bytes.set out ((2 * i) + 1) hex_chars.[v land 0xF]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set out i (Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  Bytes.unsafe_to_string out

let decode_opt s = match decode s with v -> Some v | exception Invalid_argument _ -> None
