let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create (((n + 2) / 3) * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] and b2 = Char.code s.[!i + 2] in
    Buffer.add_char out alphabet.[b0 lsr 2];
    Buffer.add_char out alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char out alphabet.[((b1 land 15) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char out alphabet.[b2 land 63];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = Char.code s.[!i] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[(b0 land 3) lsl 4];
      Buffer.add_string out "=="
  | 2 ->
      let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
      Buffer.add_char out alphabet.[(b1 land 15) lsl 2];
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let value c =
  match c with
  | 'A' .. 'Z' -> Char.code c - Char.code 'A'
  | 'a' .. 'z' -> Char.code c - Char.code 'a' + 26
  | '0' .. '9' -> Char.code c - Char.code '0' + 52
  | '+' -> 62
  | '/' -> 63
  | _ -> -1

let decode s =
  (* Strip whitespace first so armored input works. *)
  let compact = Buffer.create (String.length s) in
  let ok = ref true in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> ()
      | _ -> Buffer.add_char compact c)
    s;
  let s = Buffer.contents compact in
  let n = String.length s in
  if n mod 4 <> 0 then None
  else begin
    let out = Buffer.create (n / 4 * 3) in
    let i = ref 0 in
    while !ok && !i < n do
      let quad = String.sub s !i 4 in
      let pad =
        if quad.[3] = '=' then if quad.[2] = '=' then 2 else 1 else 0
      in
      (* '=' may only appear as trailing padding of the final quad. *)
      if pad > 0 && !i + 4 <> n then ok := false
      else begin
        let v j =
          if j >= 4 - pad then 0
          else begin
            let v = value quad.[j] in
            if v < 0 then begin
              ok := false;
              0
            end
            else v
          end
        in
        let b = (v 0 lsl 18) lor (v 1 lsl 12) lor (v 2 lsl 6) lor v 3 in
        (* Canonicality: padded-away bits must be zero. *)
        (match pad with
        | 2 -> if b land 0xFFFF <> 0 then ok := false
        | 1 -> if b land 0xFF <> 0 then ok := false
        | _ -> ());
        if !ok then begin
          Buffer.add_char out (Char.chr ((b lsr 16) land 0xFF));
          if pad < 2 then Buffer.add_char out (Char.chr ((b lsr 8) land 0xFF));
          if pad < 1 then Buffer.add_char out (Char.chr (b land 0xFF))
        end
      end;
      i := !i + 4
    done;
    if !ok then Some (Buffer.contents out) else None
  end
