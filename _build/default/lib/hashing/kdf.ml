let mask seed n =
  if n < 0 then invalid_arg "Kdf.mask";
  let buf = Buffer.create n in
  let ctr = Bytes.create 4 in
  let i = ref 0 in
  while Buffer.length buf < n do
    Bytes.set ctr 0 (Char.chr ((!i lsr 24) land 0xFF));
    Bytes.set ctr 1 (Char.chr ((!i lsr 16) land 0xFF));
    Bytes.set ctr 2 (Char.chr ((!i lsr 8) land 0xFF));
    Bytes.set ctr 3 (Char.chr (!i land 0xFF));
    Buffer.add_string buf
      (Sha256.digest_concat [ seed; Bytes.unsafe_to_string ctr ]);
    incr i
  done;
  String.sub (Buffer.contents buf) 0 n

let xor a b =
  if String.length a <> String.length b then invalid_arg "Kdf.xor";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let xor_mask ~seed m = xor m (mask seed (String.length m))
