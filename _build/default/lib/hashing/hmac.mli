(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    Used by {!Drbg} (HMAC-DRBG) and available for the authenticated variants
    of the example tools. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys of any length are accepted (hashed down if longer than one block). *)

val mac_concat : key:string -> string list -> string
(** Tag of the concatenation of the parts, without concatenating. *)

val equal : string -> string -> bool
(** Constant-time comparison of two equal-length strings (returns [false]
    on length mismatch); use for tag verification. *)
