(** HKDF-SHA256 (RFC 5869) — extract-then-expand key derivation.

    The hybrid baseline (DESIGN.md, footnote-3 construction) uses it to
    combine the two sub-keys K1 and K2 into one symmetric key. *)

val extract : ?salt:string -> string -> string
(** [extract ?salt ikm] is the 32-byte pseudorandom key. An absent salt is
    the all-zero string, per the RFC. *)

val expand : prk:string -> info:string -> int -> string
(** [expand ~prk ~info len] derives [len] bytes ([len <= 255 * 32]).
    Raises [Invalid_argument] if [len] is out of range. *)

val derive : ?salt:string -> info:string -> string -> int -> string
(** [derive ?salt ~info ikm len] = extract then expand. *)
