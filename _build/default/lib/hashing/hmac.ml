let block = Sha256.block_size

let pad_key key =
  let k = if String.length key > block then Sha256.digest key else key in
  let padded = Bytes.make block '\x00' in
  Bytes.blit_string k 0 padded 0 (String.length k);
  Bytes.unsafe_to_string padded

let xor_with s byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) s

let mac_concat ~key parts =
  let k0 = pad_key key in
  let inner = Sha256.digest_concat (xor_with k0 0x36 :: parts) in
  Sha256.digest_concat [ xor_with k0 0x5c; inner ]

let mac ~key msg = mac_concat ~key [ msg ]

let equal a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end
