lib/hashing/drbg.mli:
