lib/hashing/hex.mli:
