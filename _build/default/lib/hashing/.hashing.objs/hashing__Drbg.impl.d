lib/hashing/drbg.ml: Buffer Char Fun Hkdf Hmac Printf Sha256 String Sys
