lib/hashing/hkdf.mli:
