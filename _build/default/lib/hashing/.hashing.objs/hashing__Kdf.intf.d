lib/hashing/kdf.mli:
