lib/hashing/hex.ml: Bytes Char String
