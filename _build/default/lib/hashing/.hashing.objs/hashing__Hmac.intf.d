lib/hashing/hmac.mli:
