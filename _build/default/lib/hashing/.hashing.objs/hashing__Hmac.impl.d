lib/hashing/hmac.ml: Bytes Char Sha256 String
