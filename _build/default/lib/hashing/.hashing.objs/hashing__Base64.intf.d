lib/hashing/base64.mli:
