lib/hashing/base64.ml: Buffer Char String
