lib/hashing/kdf.ml: Buffer Bytes Char Sha256 String
