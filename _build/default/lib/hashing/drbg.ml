type t = { mutable key : string; mutable v : string }

let hash_len = Sha256.digest_size

(* SP 800-90A HMAC-DRBG update. *)
let update t provided =
  let sep b = String.make 1 (Char.chr b) in
  t.key <- Hmac.mac_concat ~key:t.key [ t.v; sep 0x00; provided ];
  t.v <- Hmac.mac ~key:t.key t.v;
  if provided <> "" then begin
    t.key <- Hmac.mac_concat ~key:t.key [ t.v; sep 0x01; provided ];
    t.v <- Hmac.mac ~key:t.key t.v
  end

let create ?(personalization = "") ~seed () =
  let t = { key = String.make hash_len '\x00'; v = String.make hash_len '\x01' } in
  update t (seed ^ personalization);
  t

let generate t n =
  if n < 0 then invalid_arg "Drbg.generate";
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.mac ~key:t.key t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

let reseed t entropy = update t entropy

let system_entropy ?(n = 32) () =
  let from_urandom () =
    let ic = open_in_bin "/dev/urandom" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic n)
  in
  match from_urandom () with
  | s -> s
  | exception _ ->
      (* Clock-based fallback: weak, but only reached on exotic systems. *)
      let raw = Printf.sprintf "%f|%f" (Sys.time ()) (Sys.time ()) in
      Hkdf.derive ~info:"fallback-entropy" raw n

let default_instance = ref None

let default () =
  match !default_instance with
  | Some t -> t
  | None ->
      let t = create ~seed:(system_entropy ()) ~personalization:"tre-default" () in
      default_instance := Some t;
      t
