(* Affine arithmetic on E : y^2 = x^3 + a*x + b, plus Jacobian-coordinate
   scalar multiplication. The affine formulas are the textbook
   chord-and-tangent ones; slopes need one field inversion per operation,
   which is fine for single additions (scalar multiplication avoids them
   via Jacobian coordinates). *)

type ctx = { fp : Fp.ctx; a : Fp.t; b : Fp.t; a_is_zero : bool }
type point = Infinity | Affine of { x : Fp.t; y : Fp.t }

let create ?(a = 1) ?(b = 0) fp =
  let a = Fp.of_int fp a and b = Fp.of_int fp b in
  { fp; a; b; a_is_zero = Fp.is_zero fp a }

let coeff_a ctx = ctx.a
let coeff_b ctx = ctx.b
let field ctx = ctx.fp
let infinity = Infinity
let is_infinity = function Infinity -> true | Affine _ -> false

(* x^3 + a*x + b *)
let rhs ctx x =
  let fp = ctx.fp in
  Fp.add fp (Fp.add fp (Fp.mul fp x (Fp.sqr fp x)) (Fp.mul fp ctx.a x)) ctx.b

let on_curve ctx = function
  | Infinity -> true
  | Affine { x; y } -> Fp.equal (Fp.sqr ctx.fp y) (rhs ctx x)

let make ctx ~x ~y =
  let p = Affine { x; y } in
  if not (on_curve ctx p) then invalid_arg "Curve.make: point not on curve";
  p

let equal a b =
  match (a, b) with
  | Infinity, Infinity -> true
  | Affine a, Affine b -> Fp.equal a.x b.x && Fp.equal a.y b.y
  | Infinity, Affine _ | Affine _, Infinity -> false

let neg ctx = function
  | Infinity -> Infinity
  | Affine { x; y } -> Affine { x; y = Fp.neg ctx.fp y }

let double ctx = function
  | Infinity -> Infinity
  | Affine { y; _ } when Fp.is_zero ctx.fp y -> Infinity
  | Affine { x; y } ->
      let fp = ctx.fp in
      (* lambda = (3x^2 + a) / 2y. *)
      let x2 = Fp.sqr fp x in
      let num = Fp.add fp (Fp.add fp (Fp.add fp x2 x2) x2) ctx.a in
      let lambda = Fp.div fp num (Fp.add fp y y) in
      let x3 = Fp.sub fp (Fp.sqr fp lambda) (Fp.add fp x x) in
      let y3 = Fp.sub fp (Fp.mul fp lambda (Fp.sub fp x x3)) y in
      Affine { x = x3; y = y3 }

let add ctx a b =
  match (a, b) with
  | Infinity, q -> q
  | p, Infinity -> p
  | Affine pa, Affine pb ->
      let fp = ctx.fp in
      if Fp.equal pa.x pb.x then
        if Fp.equal pa.y pb.y then double ctx a else Infinity
      else begin
        let lambda = Fp.div fp (Fp.sub fp pb.y pa.y) (Fp.sub fp pb.x pa.x) in
        let x3 = Fp.sub fp (Fp.sub fp (Fp.sqr fp lambda) pa.x) pb.x in
        let y3 = Fp.sub fp (Fp.mul fp lambda (Fp.sub fp pa.x x3)) pa.y in
        Affine { x = x3; y = y3 }
      end

(* Scalar multiplication runs in Jacobian coordinates (X/Z^2, Y/Z^3) so
   the whole double-and-add loop needs a single field inversion at the
   end instead of one per step. Infinity is represented by Z = 0. *)
type jacobian = { jx : Fp.t; jy : Fp.t; jz : Fp.t }

let jac_double ctx p =
  let fp = ctx.fp in
  if Fp.is_zero fp p.jz || Fp.is_zero fp p.jy then
    { jx = Fp.one fp; jy = Fp.one fp; jz = Fp.zero fp }
  else begin
    let y2 = Fp.sqr fp p.jy in
    let s =
      (* 4 * X * Y^2 *)
      let xy2 = Fp.mul fp p.jx y2 in
      let d = Fp.add fp xy2 xy2 in
      Fp.add fp d d
    in
    let z2 = Fp.sqr fp p.jz in
    let x2 = Fp.sqr fp p.jx in
    let three_x2 = Fp.add fp (Fp.add fp x2 x2) x2 in
    (* M = 3X^2 + a*Z^4; both curve families have a in {0, 1}. *)
    let m =
      if ctx.a_is_zero then three_x2
      else Fp.add fp three_x2 (Fp.mul fp ctx.a (Fp.sqr fp z2))
    in
    let x' = Fp.sub fp (Fp.sqr fp m) (Fp.add fp s s) in
    let y4_8 =
      let y4 = Fp.sqr fp y2 in
      let d = Fp.add fp y4 y4 in
      let d = Fp.add fp d d in
      Fp.add fp d d
    in
    let y' = Fp.sub fp (Fp.mul fp m (Fp.sub fp s x')) y4_8 in
    let z' = Fp.mul fp (Fp.add fp p.jy p.jy) p.jz in
    { jx = x'; jy = y'; jz = z' }
  end

(* Mixed addition: [p] Jacobian + (x2, y2) affine. *)
let jac_add_affine ctx p ~x2 ~y2 =
  let fp = ctx.fp in
  if Fp.is_zero fp p.jz then { jx = x2; jy = y2; jz = Fp.one fp }
  else begin
    let z2 = Fp.sqr fp p.jz in
    let u2 = Fp.mul fp x2 z2 in
    let s2 = Fp.mul fp y2 (Fp.mul fp z2 p.jz) in
    let h = Fp.sub fp u2 p.jx in
    let r = Fp.sub fp s2 p.jy in
    if Fp.is_zero fp h then
      if Fp.is_zero fp r then jac_double ctx p
      else { jx = Fp.one fp; jy = Fp.one fp; jz = Fp.zero fp }
    else begin
      let h2 = Fp.sqr fp h in
      let h3 = Fp.mul fp h2 h in
      let xh2 = Fp.mul fp p.jx h2 in
      let x' = Fp.sub fp (Fp.sub fp (Fp.sqr fp r) h3) (Fp.add fp xh2 xh2) in
      let y' = Fp.sub fp (Fp.mul fp r (Fp.sub fp xh2 x')) (Fp.mul fp p.jy h3) in
      let z' = Fp.mul fp p.jz h in
      { jx = x'; jy = y'; jz = z' }
    end
  end

let jac_to_affine ctx p =
  let fp = ctx.fp in
  if Fp.is_zero fp p.jz then Infinity
  else begin
    let zinv = Fp.inv fp p.jz in
    let zinv2 = Fp.sqr fp zinv in
    Affine
      { x = Fp.mul fp p.jx zinv2; y = Fp.mul fp p.jy (Fp.mul fp zinv2 zinv) }
  end

let mul ctx k point =
  let k, point =
    if Bigint.sign k >= 0 then (k, point) else (Bigint.neg k, neg ctx point)
  in
  match point with
  | Infinity -> Infinity
  | Affine { x = x2; y = y2 } ->
      let fp = ctx.fp in
      let bits = Bigint.bit_length k in
      let acc = ref { jx = Fp.one fp; jy = Fp.one fp; jz = Fp.zero fp } in
      for i = bits - 1 downto 0 do
        acc := jac_double ctx !acc;
        if Bigint.test_bit k i then acc := jac_add_affine ctx !acc ~x2 ~y2
      done;
      jac_to_affine ctx !acc

let group_order ctx = Bigint.succ (Fp.modulus ctx.fp)

let lift_x ctx x =
  let fp = ctx.fp in
  match Fp.sqrt fp (rhs ctx x) with
  | None -> None
  | Some y ->
      let y' = Fp.neg fp y in
      let a = Affine { x; y } and b = Affine { x; y = y' } in
      if Bigint.compare (Fp.to_bigint fp y) (Fp.to_bigint fp y') <= 0 then
        Some (a, b)
      else Some (b, a)

let byte_length ctx = 1 + Fp.byte_length ctx.fp

let to_bytes ctx = function
  | Infinity -> "\x00"
  | Affine { x; y } ->
      let parity = if Bigint.is_odd (Fp.to_bigint ctx.fp y) then '\x03' else '\x02' in
      String.make 1 parity ^ Fp.to_bytes ctx.fp x

let of_bytes ctx s =
  if s = "\x00" then Some Infinity
  else if String.length s <> byte_length ctx then None
  else begin
    match s.[0] with
    | ('\x02' | '\x03') as tag -> (
        match Fp.of_bytes ctx.fp (String.sub s 1 (String.length s - 1)) with
        | None -> None
        | Some x -> (
            match lift_x ctx x with
            | None -> None
            | Some (a, b) -> (
                let want_odd = tag = '\x03' in
                let parity_of = function
                  | Affine { y; _ } -> Bigint.is_odd (Fp.to_bigint ctx.fp y)
                  | Infinity -> assert false
                in
                match (parity_of a = want_odd, parity_of b = want_odd) with
                | true, _ -> Some a
                | _, true -> Some b
                | false, false -> None)))
    | _ -> None
  end

let pp ctx fmt = function
  | Infinity -> Format.pp_print_string fmt "O"
  | Affine { x; y } ->
      Format.fprintf fmt "(%a, %a)" (Fp.pp ctx.fp) x (Fp.pp ctx.fp) y
