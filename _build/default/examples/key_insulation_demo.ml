(* Key insulation (§5.3.3): the long-term secret stays on a smart card;
   the laptop only ever holds per-epoch keys.

     dune exec examples/key_insulation_demo.exe *)

let () =
  let prms = Pairing.mid128 () in
  let rng = Hashing.Drbg.create ~seed:"key-insulation-demo" () in
  let server_secret, server_public = Tre.Server.keygen prms rng in

  (* The user's long-term secret lives on the "smart card". *)
  let card_secret, user_public = Tre.User.keygen prms server_public rng in

  (* Mail arrives encrypted for three different release epochs. *)
  let inbox =
    List.map
      (fun (epoch, body) ->
        (epoch, Tre.encrypt prms server_public user_public ~release_time:epoch rng body))
      [
        ("day-1", "monday: standup notes");
        ("day-2", "tuesday: payroll");
        ("day-3", "wednesday: offsite location");
      ]
  in

  (* Each day: the update arrives, the card derives that day's epoch key,
     and only the epoch key is copied to the (insecure) laptop. *)
  let laptop_keys = Hashtbl.create 3 in
  List.iter
    (fun epoch ->
      let update = Tre.issue_update prms server_secret epoch in
      let epoch_key = Key_insulation.derive prms card_secret update in
      Hashtbl.replace laptop_keys epoch epoch_key;
      Printf.printf "card derived epoch key for %s (%d bytes to laptop)\n" epoch
        (String.length (Key_insulation.to_bytes prms epoch_key)))
    [ "day-1"; "day-2"; "day-3" ];

  (* The laptop decrypts everything without ever seeing the card secret. *)
  List.iter
    (fun (epoch, ct) ->
      let key = Hashtbl.find laptop_keys epoch in
      Printf.printf "laptop decrypted %s: %S\n" epoch (Key_insulation.decrypt prms key ct))
    inbox;

  (* Disaster: the laptop is stolen on day 2 — the thief holds day-1 and
     day-2 keys. Day-3 mail (and the card secret) remain safe: the day-2
     key simply cannot open a day-3 ciphertext. *)
  let _, day3_ct = List.nth inbox 2 in
  let stolen = Hashtbl.find laptop_keys "day-2" in
  (match Key_insulation.decrypt prms stolen day3_ct with
  | _ -> assert false
  | exception Tre.Update_mismatch ->
      print_endline "thief with day-2 key cannot open day-3 mail (epoch mismatch enforced)");
  print_endline "key_insulation_demo: OK"
