(* Resilience to missed updates (§6 future work, implemented as the
   time-tree extension).

     dune exec examples/missed_updates_demo.exe

   A submarine goes dark for months. With plain TRE it would have to
   fetch every archived update it missed (or at least one per pending
   ciphertext); with the resilient extension, whatever single broadcast
   it hears first after resurfacing opens everything whose release time
   has passed. *)

let () =
  let prms = Pairing.mid128 () in
  let rng = Hashing.Drbg.create ~seed:"missed-updates-demo" () in
  let srv_sec, srv_pub = Tre.Server.keygen prms rng in
  let sub_sec, sub_pub = Tre.User.keygen prms srv_pub rng in

  (* 256 daily epochs. *)
  let tree = Time_tree.create ~depth:8 in
  Printf.printf "time tree: %d epochs, <= %d updates per daily broadcast\n"
    (Time_tree.epochs tree)
    (Time_tree.depth tree + 1);

  (* Command sends orders for days 10, 60 and 120 before the submarine
     dives on day 0. *)
  let orders =
    List.map
      (fun (day, text) ->
        (day, text, Resilient_tre.encrypt prms tree srv_pub sub_pub ~release_epoch:day rng text))
      [
        (10, "day 10: proceed to grid QF-17");
        (60, "day 60: resupply at point K");
        (120, "day 120: return to port");
      ]
  in
  Printf.printf "3 orders sealed for days 10, 60, 120 (%d-byte headers each)\n"
    (Resilient_tre.ciphertext_overhead prms tree);

  (* The boat surfaces on day 90 and hears exactly ONE broadcast. *)
  let day = 90 in
  let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:day in
  Printf.printf "day %d broadcast: %d cover updates, authentic: %b\n" day
    (List.length cover)
    (Resilient_tre.verify_cover prms tree srv_pub ~epoch:day cover);

  List.iter
    (fun (release, text, ct) ->
      match Resilient_tre.decrypt prms tree sub_sec ~cover ct with
      | Some opened ->
          assert (opened = text);
          Printf.printf "  day %3d order: OPEN   %S\n" release opened
      | None -> Printf.printf "  day %3d order: SEALED (release time not reached)\n" release)
    orders;

  (* Days 10 and 60 opened from the single day-90 broadcast; day 120 is
     still sealed even though the boat missed nothing in between. *)
  assert (
    List.map
      (fun (_, _, ct) -> Resilient_tre.decrypt prms tree sub_sec ~cover ct <> None)
      orders
    = [ true; true; false ]);
  print_endline "missed_updates_demo: OK"
