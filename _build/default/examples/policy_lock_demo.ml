(* Policy-lock encryption (§5.3.2): the server as a general condition
   witness; conjunctions come free from pairing additivity.

     dune exec examples/policy_lock_demo.exe *)

let () =
  let prms = Pairing.mid128 () in
  let rng = Hashing.Drbg.create ~seed:"policy-lock-demo" () in
  let witness_secret, witness_public = Tre.Server.keygen prms rng in
  let operator_secret, operator_public = Tre.User.keygen prms witness_public rng in

  (* Emergency shutdown codes openable only when BOTH conditions are
     attested by the witness. *)
  let conditions = [ "reactor-pressure-above-threshold"; "two-officers-concur" ] in
  let ct =
    Policy_lock.encrypt prms witness_public operator_public ~conditions rng
      "shutdown sequence: 7-2-4-enable"
  in
  Printf.printf "locked under %d conditions (ciphertext overhead: %d bytes, same as 1 condition)\n"
    (List.length conditions)
    (Policy_lock.ciphertext_overhead prms);

  (* One condition becomes true: still locked. *)
  let w1 = Policy_lock.issue_witness prms witness_secret "reactor-pressure-above-threshold" in
  (match Policy_lock.decrypt prms operator_secret [ w1 ] ct with
  | _ -> assert false
  | exception Policy_lock.Missing_witness ->
      print_endline "pressure alone: still locked (missing second witness)");

  (* Both true: unlocked. *)
  let w2 = Policy_lock.issue_witness prms witness_secret "two-officers-concur" in
  Printf.printf "both witnessed: %S\n"
    (Policy_lock.decrypt prms operator_secret [ w1; w2 ] ct);

  (* Witnesses are self-authenticating BLS signatures on the condition. *)
  assert (Policy_lock.verify_witness prms witness_public w1);
  (* Plain timed release is the one-condition special case. *)
  let t = "2030-01-01T00:00:00Z" in
  let ct_time =
    Policy_lock.encrypt prms witness_public operator_public ~conditions:[ t ] rng "timed"
  in
  let upd = Tre.issue_update prms witness_secret t in
  assert (Policy_lock.decrypt prms operator_secret [ upd ] ct_time = "timed");
  print_endline "time release = single-condition policy lock: verified";
  print_endline "policy_lock_demo: OK"
