examples/quickstart.mli:
