examples/sealed_bid.mli:
