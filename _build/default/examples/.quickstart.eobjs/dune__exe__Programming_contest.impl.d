examples/programming_contest.ml: Client Float Hashing List Pairing Passive_server Printf Simnet String Timeline Tre
