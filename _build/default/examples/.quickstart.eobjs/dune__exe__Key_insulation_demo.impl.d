examples/key_insulation_demo.ml: Hashing Hashtbl Key_insulation List Pairing Printf String Tre
