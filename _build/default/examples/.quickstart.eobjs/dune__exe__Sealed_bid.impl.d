examples/sealed_bid.ml: Client Hashing List Pairing Passive_server Printf Simnet String Timeline Tre
