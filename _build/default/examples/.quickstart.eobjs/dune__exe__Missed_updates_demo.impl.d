examples/missed_updates_demo.ml: Hashing List Pairing Printf Resilient_tre Time_tree Tre
