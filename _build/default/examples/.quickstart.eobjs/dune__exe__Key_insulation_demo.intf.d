examples/key_insulation_demo.mli:
