examples/multi_server_demo.ml: Array Bigint Curve Hashing List Multi_server Pairing Printf Tre
