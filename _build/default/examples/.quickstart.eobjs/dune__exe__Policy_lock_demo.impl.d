examples/policy_lock_demo.ml: Hashing List Pairing Policy_lock Printf Tre
