examples/missed_updates_demo.mli:
