examples/quickstart.ml: Hashing Pairing Printf String Tre Tre_fo
