examples/policy_lock_demo.mli:
