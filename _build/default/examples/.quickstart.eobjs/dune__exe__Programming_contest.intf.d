examples/programming_contest.mli:
