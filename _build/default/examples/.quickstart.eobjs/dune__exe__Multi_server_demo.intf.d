examples/multi_server_demo.mli:
