(* Multiple time servers (§5.3.5): the sender splits trust over N servers;
   early opening requires corrupting all of them.

     dune exec examples/multi_server_demo.exe *)

let () =
  let prms = Pairing.mid128 () in
  let rng = Hashing.Drbg.create ~seed:"multi-server-demo" () in
  let n = 3 in

  (* Independent servers, each with its own generator and secret. *)
  let servers =
    List.init n (fun i ->
        let g =
          Curve.mul prms.Pairing.curve (Bigint.of_int (17 + i)) prms.Pairing.g
        in
        Tre.Server.keygen ~g prms rng)
  in
  let secrets = List.map fst servers and publics = List.map snd servers in

  (* The receiver publishes K_new = a * sum(s_i G_i) next to the certified aG. *)
  let recv_secret, recv_public = Multi_server.receiver_keygen prms publics rng in
  Printf.printf "receiver key formed against %d servers; sender-side validation: %b\n" n
    (Multi_server.validate_receiver_key prms publics recv_public);

  let t = "2026-01-01T00:00:00Z" in
  let ct =
    Multi_server.encrypt prms publics recv_public ~release_time:t rng
      "split-trust secret"
  in
  Printf.printf "ciphertext carries %d group elements (one per server)\n"
    (Array.length ct.Multi_server.us);

  (* Two of three servers collude and release early; the third is honest. *)
  let early = List.filteri (fun i _ -> i < n - 1) secrets in
  let early_updates = List.map (fun s -> Tre.issue_update prms s t) early in
  (match Multi_server.decrypt prms recv_secret early_updates ct with
  | _ -> assert false
  | exception Multi_server.Wrong_update_count ->
      Printf.printf "%d colluding servers: still locked\n" (n - 1));

  (* All three released (the time actually arrived): opens. *)
  let all_updates = List.map (fun s -> Tre.issue_update prms s t) secrets in
  Printf.printf "all %d updates present: %S\n" n
    (Multi_server.decrypt prms recv_secret all_updates ct);
  print_endline "multi_server_demo: OK"
