(* Quickstart: the complete TRE flow on one page.

     dune exec examples/quickstart.exe

   Three parties: a passive time server, a sender, a receiver. The sender
   encrypts at T=now for release time T=tomorrow without talking to the
   server; the receiver can decrypt only once the server's (single,
   broadcast, self-authenticated) key update for that time exists. *)

let () =
  let prms = Pairing.mid128 () in
  let rng = Hashing.Drbg.create ~seed:(Hashing.Drbg.system_entropy ()) () in

  (* --- Setup: the time server publishes (G, sG) once. --- *)
  let server_secret, server_public = Tre.Server.keygen prms rng in
  Printf.printf "server public key: %s...\n"
    (String.sub (Hashing.Hex.encode (Tre.server_public_to_bytes prms server_public)) 0 32);

  (* --- The receiver creates a key bound to that server. --- *)
  let receiver_secret, receiver_public = Tre.User.keygen prms server_public rng in
  Printf.printf "receiver public key (aG, asG): %s...\n"
    (String.sub (Hashing.Hex.encode (Tre.user_public_to_bytes prms receiver_public)) 0 32);

  (* --- The sender encrypts for a release time of his choosing. ---
     Note: no server interaction; the release time can be arbitrarily far
     in the future. *)
  let release_time = "2025-07-06T00:00:00Z" in
  let message = "see you in the future" in
  let ciphertext =
    Tre.encrypt prms server_public receiver_public ~release_time rng message
  in
  Printf.printf "encrypted %d bytes for release at %s (%d-byte ciphertext)\n"
    (String.length message) release_time
    (String.length (Tre.ciphertext_to_bytes prms ciphertext));

  (* --- Before the release time: decryption is impossible. The receiver
     has no update; even using a wrong one yields garbage (see tests). --- *)
  Printf.printf "before release: receiver waits (no update exists for %s)\n" release_time;

  (* --- The release instant arrives: the server broadcasts ONE update,
     identical for every receiver in the world. --- *)
  let update = Tre.issue_update prms server_secret release_time in
  Printf.printf "server broadcast update (%d bytes), self-authenticated: %b\n"
    (String.length (Tre.update_to_bytes prms update))
    (Tre.verify_update prms server_public update);

  (* --- The receiver decrypts with his secret and the public update. --- *)
  let recovered = Tre.decrypt prms receiver_secret update ciphertext in
  Printf.printf "decrypted: %S\n" recovered;
  assert (recovered = message);

  (* --- For CCA security wrap with Fujisaki-Okamoto: --- *)
  let ct_cca =
    Tre_fo.encrypt prms server_public receiver_public ~release_time rng message
  in
  let recovered_cca =
    Tre_fo.decrypt prms server_public receiver_public receiver_secret update ct_cca
  in
  Printf.printf "CCA (Fujisaki-Okamoto) roundtrip: %S\n" recovered_cca;
  print_endline "quickstart: OK"
