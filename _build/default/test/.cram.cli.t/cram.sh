  $ tre_cli() { ../bin/tre_cli.exe "$@"; }
  $ tre_cli server-keygen --params toy64 --out srv
  $ tre_cli user-keygen --server srv.pub --out alice
  $ tre_cli validate-key --server srv.pub --to alice.pub
  $ echo "the eagle lands at midnight" > msg.txt
  $ tre_cli encrypt --server srv.pub --to alice.pub --time "2026-01-01" --in msg.txt --out msg.tre
  $ tre_cli info msg.tre | sed 's/payload:.*[0-9]* bytes/payload:    N bytes/'
  $ tre_cli issue-update --server-key srv.key --time "2026-01-01" --out upd.tre
  $ tre_cli verify-update --server srv.pub --update upd.tre
  $ tre_cli decrypt --key alice.key --update upd.tre --in msg.tre --out msg.out
  $ cat msg.out
  $ tre_cli issue-update --server-key srv.key --time "2027-01-01" --out upd2.tre
  $ tre_cli decrypt --key alice.key --update upd2.tre --in msg.tre --out bad.out
  $ tre_cli encrypt --server srv.pub --to alice.pub --time "2026-01-01" --in msg.txt --out msg2.tre --cca
  $ tre_cli decrypt --key alice.key --update upd.tre --in msg2.tre --out msg2.out --cca --server srv.pub --to alice.pub
  $ cat msg2.out
  $ tre_cli server-keygen --params toy64 --out srv2
  $ tre_cli validate-key --server srv2.pub --to alice.pub
