End-to-end CLI flow: keygen, encrypt, update, decrypt, tamper rejection.

  $ tre_cli() { ../bin/tre_cli.exe "$@"; }

  $ tre_cli server-keygen --params toy64 --out srv
  wrote srv.key (keep offline!) and srv.pub

  $ tre_cli user-keygen --server srv.pub --out alice
  wrote alice.key and alice.pub (bound to this time server)

  $ tre_cli validate-key --server srv.pub --to alice.pub
  valid: key is bound to this server

  $ echo "the eagle lands at midnight" > msg.txt
  $ tre_cli encrypt --server srv.pub --to alice.pub --time "2026-01-01" --in msg.txt --out msg.tre
  encrypted 28 bytes for release at "2026-01-01" -> msg.tre

An armored ciphertext names its kind, parameters and release time:

  $ tre_cli info msg.tre | sed 's/payload:.*[0-9]* bytes/payload:    N bytes/'
  kind:       CIPHERTEXT
  parameters: toy64
  payload:    N bytes
  release at: "2026-01-01"

The time server issues the (self-authenticated) update when the time comes:

  $ tre_cli issue-update --server-key srv.key --time "2026-01-01" --out upd.tre
  issued time-bound key update for "2026-01-01" -> upd.tre
  $ tre_cli verify-update --server srv.pub --update upd.tre
  valid update for time "2026-01-01" (self-authenticated BLS signature)

  $ tre_cli decrypt --key alice.key --update upd.tre --in msg.tre --out msg.out
  decrypted 28 bytes -> msg.out
  $ cat msg.out
  the eagle lands at midnight

A wrong-time update is refused:

  $ tre_cli issue-update --server-key srv.key --time "2027-01-01" --out upd2.tre
  issued time-bound key update for "2027-01-01" -> upd2.tre
  $ tre_cli decrypt --key alice.key --update upd2.tre --in msg.tre --out bad.out
  tre-cli: update is for a different time than the ciphertext (need "2026-01-01")
  [1]

The CCA (Fujisaki-Okamoto) mode roundtrips and rejects tampering:

  $ tre_cli encrypt --server srv.pub --to alice.pub --time "2026-01-01" --in msg.txt --out msg2.tre --cca
  encrypted 28 bytes for release at "2026-01-01" -> msg2.tre
  $ tre_cli decrypt --key alice.key --update upd.tre --in msg2.tre --out msg2.out --cca --server srv.pub --to alice.pub
  decrypted 28 bytes -> msg2.out
  $ cat msg2.out
  the eagle lands at midnight

Key material from a different server is rejected early:

  $ tre_cli server-keygen --params toy64 --out srv2
  wrote srv2.key (keep offline!) and srv2.pub
  $ tre_cli validate-key --server srv2.pub --to alice.pub
  INVALID: e(aG, sG) <> e(G, asG) - do not encrypt to this key
  [1]
