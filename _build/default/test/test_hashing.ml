(* Tests for the hashing substrate: SHA-256 NIST vectors, HMAC RFC 4231
   vectors, HKDF RFC 5869 vectors, DRBG determinism, KDF mask involution. *)

open Hashing

let check_hex msg expected actual = Alcotest.(check string) msg expected (Hex.encode actual)

(* --- SHA-256 known-answer tests (FIPS 180-4 / NIST CAVP) --- *)

let test_sha256_empty () =
  check_hex "sha256(\"\")"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "")

let test_sha256_abc () =
  check_hex "sha256(abc)"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc")

let test_sha256_448bits () =
  check_hex "sha256(two-block NIST vector)"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_896bits () =
  check_hex "sha256(four-block NIST vector)"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.digest
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha256_million_a () =
  check_hex "sha256(10^6 x 'a')"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  (* Absorbing in odd-sized pieces must match the one-shot digest. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let expect = Sha256.digest msg in
  List.iter
    (fun piece ->
      let ctx = Sha256.init () in
      let rec feed off =
        if off < String.length msg then begin
          let n = min piece (String.length msg - off) in
          Sha256.update ctx (String.sub msg off n);
          feed (off + n)
        end
      in
      feed 0;
      Alcotest.(check string)
        (Printf.sprintf "piece=%d" piece)
        (Hex.encode expect)
        (Hex.encode (Sha256.finalize ctx)))
    [ 1; 3; 63; 64; 65; 127; 128; 999 ]

let test_sha256_digest_concat () =
  Alcotest.(check string)
    "digest_concat = digest of concatenation"
    (Hex.encode (Sha256.digest "hello world"))
    (Hex.encode (Sha256.digest_concat [ "hel"; "lo "; ""; "world" ]))

let test_sha256_update_bytes_bounds () =
  let ctx = Sha256.init () in
  Alcotest.check_raises "oob" (Invalid_argument "Sha256.update_bytes")
    (fun () -> Sha256.update_bytes ctx (Bytes.create 4) 2 4)

(* --- HMAC-SHA256 (RFC 4231) --- *)

let test_hmac_rfc4231_case1 () =
  check_hex "rfc4231 #1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There")

let test_hmac_rfc4231_case2 () =
  check_hex "rfc4231 #2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  check_hex "rfc4231 #3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_rfc4231_case6_long_key () =
  check_hex "rfc4231 #6 (key > block)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_equal () =
  Alcotest.(check bool) "equal" true (Hmac.equal "abcd" "abcd");
  Alcotest.(check bool) "unequal" false (Hmac.equal "abcd" "abce");
  Alcotest.(check bool) "length mismatch" false (Hmac.equal "abc" "abcd")

(* --- HKDF (RFC 5869) --- *)

let test_hkdf_rfc5869_case1 () =
  let ikm = String.make 22 '\x0b' in
  let salt = Hex.decode "000102030405060708090a0b0c" in
  let info = Hex.decode "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Hkdf.extract ~salt ikm in
  check_hex "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
  check_hex "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Hkdf.expand ~prk ~info 42)

let test_hkdf_rfc5869_case3_no_salt () =
  let ikm = String.make 22 '\x0b' in
  check_hex "okm (no salt, no info)"
    "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
    (Hkdf.derive ~info:"" ikm 42)

let test_hkdf_bad_length () =
  Alcotest.check_raises "too long" (Invalid_argument "Hkdf.expand: bad length")
    (fun () -> ignore (Hkdf.expand ~prk:(String.make 32 'k') ~info:"" (256 * 32)))

(* --- DRBG --- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed" () in
  let b = Drbg.create ~seed:"seed" () in
  Alcotest.(check string) "same stream" (Drbg.generate a 64) (Drbg.generate b 64);
  Alcotest.(check bool)
    "stream advances" false
    (Drbg.generate a 16 = Drbg.generate a 16)

let test_drbg_personalization () =
  let a = Drbg.create ~seed:"seed" ~personalization:"x" () in
  let b = Drbg.create ~seed:"seed" ~personalization:"y" () in
  Alcotest.(check bool) "distinct" false (Drbg.generate a 32 = Drbg.generate b 32)

let test_drbg_reseed_changes_stream () =
  let a = Drbg.create ~seed:"seed" () in
  let b = Drbg.create ~seed:"seed" () in
  Drbg.reseed a "extra";
  Alcotest.(check bool) "diverged" false (Drbg.generate a 32 = Drbg.generate b 32)

let test_drbg_system_entropy () =
  Alcotest.(check int) "length" 48 (String.length (Drbg.system_entropy ~n:48 ()))

(* --- KDF / Hex --- *)

let test_kdf_mask_deterministic () =
  Alcotest.(check string) "same" (Kdf.mask "seed" 100) (Kdf.mask "seed" 100);
  Alcotest.(check bool) "prefix property" true
    (String.sub (Kdf.mask "seed" 100) 0 10 = Kdf.mask "seed" 10)

let test_kdf_xor_mask_involution () =
  let m = "attack at dawn, not before" in
  Alcotest.(check string) "involution" m (Kdf.xor_mask ~seed:"k" (Kdf.xor_mask ~seed:"k" m))

let test_kdf_xor_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Kdf.xor")
    (fun () -> ignore (Kdf.xor "ab" "abc"))

let test_hex_roundtrip () =
  let s = String.init 256 Char.chr in
  Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s));
  Alcotest.(check (option string)) "bad odd" None (Hex.decode_opt "abc");
  Alcotest.(check (option string)) "bad char" None (Hex.decode_opt "zz");
  Alcotest.(check (option string)) "upper ok" (Some "\xab") (Hex.decode_opt "AB")

(* --- qcheck properties --- *)

let prop_kdf_involution =
  QCheck2.Test.make ~name:"kdf xor_mask involution" ~count:200
    QCheck2.Gen.(pair string string)
    (fun (seed, m) -> Kdf.xor_mask ~seed (Kdf.xor_mask ~seed m) = m)

let prop_hex_roundtrip =
  QCheck2.Test.make ~name:"hex roundtrip" ~count:200 QCheck2.Gen.string
    (fun s -> Hex.decode (Hex.encode s) = s)

let prop_incremental_matches_oneshot =
  QCheck2.Test.make ~name:"sha256 incremental = one-shot" ~count:100
    QCheck2.Gen.(pair string (list string))
    (fun (first, rest) ->
      Sha256.digest_concat (first :: rest) = Sha256.digest (String.concat "" (first :: rest)))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "hashing"
    [
      ( "sha256",
        [
          Alcotest.test_case "empty" `Quick test_sha256_empty;
          Alcotest.test_case "abc" `Quick test_sha256_abc;
          Alcotest.test_case "448 bits" `Quick test_sha256_448bits;
          Alcotest.test_case "896 bits" `Quick test_sha256_896bits;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
          Alcotest.test_case "digest_concat" `Quick test_sha256_digest_concat;
          Alcotest.test_case "bounds check" `Quick test_sha256_update_bytes_bounds;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 #1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 #2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 #3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 #6" `Quick test_hmac_rfc4231_case6_long_key;
          Alcotest.test_case "constant-time equal" `Quick test_hmac_equal;
        ] );
      ( "hkdf",
        [
          Alcotest.test_case "rfc5869 #1" `Quick test_hkdf_rfc5869_case1;
          Alcotest.test_case "rfc5869 #3" `Quick test_hkdf_rfc5869_case3_no_salt;
          Alcotest.test_case "bad length" `Quick test_hkdf_bad_length;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "personalization" `Quick test_drbg_personalization;
          Alcotest.test_case "reseed" `Quick test_drbg_reseed_changes_stream;
          Alcotest.test_case "system entropy" `Quick test_drbg_system_entropy;
        ] );
      ( "kdf-hex",
        [
          Alcotest.test_case "mask deterministic" `Quick test_kdf_mask_deterministic;
          Alcotest.test_case "xor_mask involution" `Quick test_kdf_xor_mask_involution;
          Alcotest.test_case "xor mismatch" `Quick test_kdf_xor_length_mismatch;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        ] );
      ( "properties",
        q [ prop_kdf_involution; prop_hex_roundtrip; prop_incremental_matches_oneshot ] );
    ]
