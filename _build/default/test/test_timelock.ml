(* The Rivest-Shamir-Wagner time-lock puzzle baseline: trapdoor vs
   sequential solving agreement, cost model, precision model. *)

let test_create_solve_roundtrip () =
  let rng = Hashing.Drbg.create ~seed:"tlp" () in
  List.iter
    (fun (bits, t, msg) ->
      let puzzle = Timelock.create ~rng ~modulus_bits:bits ~squarings:t msg in
      let solved, count = Timelock.solve_count puzzle in
      Alcotest.(check string) "solve recovers" msg solved;
      Alcotest.(check int) "squarings as configured" t count)
    [ (128, 10, "small"); (256, 500, "medium effort"); (128, 1, "one squaring") ]

let test_trapdoor_independent_of_difficulty () =
  (* Creation with the phi(n) trapdoor costs one exponentiation whatever t
     is; verify creation still works at an absurd difficulty the solver
     could never finish, by checking internal consistency of a cheap one
     with the same seed-derived modulus. *)
  let rng = Hashing.Drbg.create ~seed:"tlp-trapdoor" () in
  let start = Sys.time () in
  let _puzzle = Timelock.create ~rng ~modulus_bits:256 ~squarings:100_000_000 "huge" in
  let elapsed = Sys.time () -. start in
  (* Generous bound: creating a 100M-squaring puzzle must take well under a
     second of CPU (the solver would need minutes to hours). *)
  Alcotest.(check bool) "creation is cheap" true (elapsed < 5.0)

let test_different_messages_different_puzzles () =
  let rng = Hashing.Drbg.create ~seed:"tlp-distinct" () in
  let p1 = Timelock.create ~rng ~modulus_bits:128 ~squarings:5 "aaaa" in
  let p2 = Timelock.create ~rng ~modulus_bits:128 ~squarings:5 "bbbb" in
  Alcotest.(check bool) "bodies differ" false (p1.Timelock.body = p2.Timelock.body)

let test_validation () =
  Alcotest.check_raises "small modulus"
    (Invalid_argument "Timelock.create: modulus too small") (fun () ->
      ignore (Timelock.create ~modulus_bits:32 ~squarings:5 "m"));
  Alcotest.check_raises "zero squarings"
    (Invalid_argument "Timelock.create: squarings < 1") (fun () ->
      ignore (Timelock.create ~modulus_bits:128 ~squarings:0 "m"))

let test_calibration_positive () =
  let rate = Timelock.calibrate ~modulus_bits:128 ~sample:200 () in
  Alcotest.(check bool) "positive rate" true (rate > 0.0);
  Alcotest.(check int) "squarings_for" (int_of_float (rate *. 2.0))
    (Timelock.squarings_for ~rate ~seconds:2.0)

let test_precision_model () =
  (* The §2.1 criticism in numbers. *)
  let p = Timelock.release_precision ~intended_delay:3600.0 ~speed_factor:1.0 ~start_delay:0.0 in
  Alcotest.(check (float 1e-9)) "calibrated+immediate = exact" 0.0 p.Timelock.error;
  (* A machine 4x faster opens the bid 45 minutes early. *)
  let fast = Timelock.release_precision ~intended_delay:3600.0 ~speed_factor:4.0 ~start_delay:0.0 in
  Alcotest.(check (float 1e-6)) "fast machine early" (-2700.0) fast.Timelock.error;
  (* A receiver who starts solving a day late is a day late. *)
  let late = Timelock.release_precision ~intended_delay:3600.0 ~speed_factor:1.0 ~start_delay:86400.0 in
  Alcotest.(check (float 1e-6)) "late start late" 86400.0 late.Timelock.error;
  Alcotest.check_raises "bad speed" (Invalid_argument "Timelock.release_precision")
    (fun () -> ignore (Timelock.release_precision ~intended_delay:1.0 ~speed_factor:0.0 ~start_delay:0.0))

let test_real_solve_time_scales () =
  (* Doubling t should roughly double solving time (sequentiality); allow
     wide slack since CI machines are noisy. We mainly assert monotonicity. *)
  let rng = Hashing.Drbg.create ~seed:"tlp-scale" () in
  let time_solve t =
    let p = Timelock.create ~rng ~modulus_bits:256 ~squarings:t "x" in
    let start = Sys.time () in
    ignore (Timelock.solve p);
    Sys.time () -. start
  in
  let t1 = time_solve 2_000 and t2 = time_solve 20_000 in
  Alcotest.(check bool) "more squarings, more time" true (t2 > t1)

let () =
  Alcotest.run "timelock"
    [
      ( "puzzle",
        [
          Alcotest.test_case "roundtrip" `Quick test_create_solve_roundtrip;
          Alcotest.test_case "trapdoor cheap" `Quick test_trapdoor_independent_of_difficulty;
          Alcotest.test_case "distinct" `Quick test_different_messages_different_puzzles;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "model",
        [
          Alcotest.test_case "calibration" `Quick test_calibration_positive;
          Alcotest.test_case "precision" `Quick test_precision_model;
          Alcotest.test_case "solve scales" `Slow test_real_solve_time_scales;
        ] );
    ]
