(* The missing-update-resilient extension (§6 future work): time-tree
   combinatorics, cover release semantics, and the only-latest-broadcast-
   needed property. *)

let prms = Pairing.toy64 ()
let rng = Hashing.Drbg.create ~seed:"resilient-tests" ()
let srv_sec, srv_pub = Tre.Server.keygen prms rng
let alice_sec, alice_pub = Tre.User.keygen prms srv_pub rng
let tree = Time_tree.create ~depth:4 (* 16 epochs *)

(* --- time-tree combinatorics --- *)

let test_tree_basics () =
  Alcotest.(check int) "epochs" 16 (Time_tree.epochs tree);
  Alcotest.(check int) "ancestors length" 5 (List.length (Time_tree.ancestors tree 11));
  Alcotest.check_raises "epoch range" (Invalid_argument "Time_tree.leaf: epoch out of range")
    (fun () -> ignore (Time_tree.leaf tree 16));
  Alcotest.check_raises "depth range" (Invalid_argument "Time_tree.create: depth out of [1, 40]")
    (fun () -> ignore (Time_tree.create ~depth:0))

let test_labels_injective () =
  let labels = Hashtbl.create 64 in
  for e = 0 to 15 do
    List.iter
      (fun n ->
        let l = Time_tree.node_label tree n in
        match Hashtbl.find_opt labels l with
        | Some n' when n' <> n -> Alcotest.fail ("collision on " ^ l)
        | _ -> Hashtbl.replace labels l n)
      (Time_tree.ancestors tree e)
  done;
  (* Root + 2 + 4 + 8 + 16 = 31 distinct nodes. *)
  Alcotest.(check int) "31 distinct nodes" 31 (Hashtbl.length labels)

let prop_cover_partitions_prefix =
  QCheck2.Test.make ~name:"cover = disjoint partition of [0..e]" ~count:100
    QCheck2.Gen.(int_range 0 15)
    (fun e ->
      let nodes = Time_tree.cover tree e in
      let covered = Array.make 16 0 in
      List.iter
        (fun n ->
          let lo, hi = Time_tree.leaves_of tree n in
          for i = lo to hi do
            covered.(i) <- covered.(i) + 1
          done)
        nodes;
      Array.for_all (fun c -> c = 1) (Array.sub covered 0 (e + 1))
      && Array.for_all (fun c -> c = 0) (Array.sub covered (e + 1) (15 - e))
      && List.length nodes <= Time_tree.depth tree + 1)

let prop_exactly_one_ancestor_covered =
  QCheck2.Test.make ~name:"e' <= e: exactly one ancestor in cover; e' > e: none"
    ~count:200
    QCheck2.Gen.(pair (int_range 0 15) (int_range 0 15))
    (fun (e, e') ->
      let cover = Time_tree.cover tree e in
      let hits =
        List.length
          (List.filter (fun a -> List.mem a cover) (Time_tree.ancestors tree e'))
      in
      if e' <= e then hits = 1 else hits = 0)

let test_cover_sizes () =
  Alcotest.(check int) "cover of [0..0]" 1 (List.length (Time_tree.cover tree 0));
  Alcotest.(check int) "cover of [0..15] is the root" 1
    (List.length (Time_tree.cover tree 15));
  (* e = 0b1010 = 10: nodes for bits set along the path + the leaf. *)
  Alcotest.(check int) "cover of [0..10]" 3 (List.length (Time_tree.cover tree 10))

(* --- the resilient scheme --- *)

let test_roundtrip_with_latest_cover_only () =
  let msg = "resilient to missed updates" in
  let ct = Resilient_tre.encrypt prms tree srv_pub alice_pub ~release_epoch:5 rng msg in
  (* The receiver slept through epochs 0..11 and only hears epoch 12. *)
  let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:12 in
  Alcotest.(check bool) "cover verifies" true
    (Resilient_tre.verify_cover prms tree srv_pub ~epoch:12 cover);
  Alcotest.(check (option string)) "decrypts from latest broadcast alone" (Some msg)
    (Resilient_tre.decrypt prms tree alice_sec ~cover ct)

let test_exact_epoch_cover_works () =
  let msg = "on time" in
  let ct = Resilient_tre.encrypt prms tree srv_pub alice_pub ~release_epoch:7 rng msg in
  let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:7 in
  Alcotest.(check (option string)) "epoch = release epoch" (Some msg)
    (Resilient_tre.decrypt prms tree alice_sec ~cover ct)

let test_early_cover_locked () =
  let msg = "not yet" in
  let ct = Resilient_tre.encrypt prms tree srv_pub alice_pub ~release_epoch:9 rng msg in
  (* Every cover strictly before the release epoch must be useless. *)
  for e = 0 to 8 do
    let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:e in
    Alcotest.(check (option string))
      (Printf.sprintf "cover at epoch %d" e)
      None
      (Resilient_tre.decrypt prms tree alice_sec ~cover ct)
  done

let test_wrong_secret_garbage () =
  let msg = "for alice" in
  let ct = Resilient_tre.encrypt prms tree srv_pub alice_pub ~release_epoch:3 rng msg in
  let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:10 in
  let eve_sec, _ = Tre.User.keygen prms srv_pub rng in
  match Resilient_tre.decrypt prms tree eve_sec ~cover ct with
  | Some out -> Alcotest.(check bool) "garbage" false (out = msg)
  | None -> ()

let test_forged_cover_rejected () =
  let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:6 in
  (* Swap one update's point for the generator. *)
  let forged =
    match cover with
    | first :: rest -> { first with Tre.update_value = prms.Pairing.g } :: rest
    | [] -> assert false
  in
  Alcotest.(check bool) "forged cover fails" false
    (Resilient_tre.verify_cover prms tree srv_pub ~epoch:6 forged);
  (* A cover for the wrong epoch also fails (labels differ). *)
  Alcotest.(check bool) "wrong-epoch labels fail" false
    (Resilient_tre.verify_cover prms tree srv_pub ~epoch:7 cover)

let test_broadcast_size_bounded () =
  for e = 0 to 15 do
    let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:e in
    if List.length cover > Time_tree.depth tree + 1 then
      Alcotest.fail "cover too large"
  done

let prop_roundtrip_any_pair =
  QCheck2.Test.make ~name:"decrypt iff cover epoch >= release epoch" ~count:25
    QCheck2.Gen.(pair (int_range 0 15) (int_range 0 15))
    (fun (release, now) ->
      let msg = Printf.sprintf "m-%d-%d" release now in
      let ct =
        Resilient_tre.encrypt prms tree srv_pub alice_pub ~release_epoch:release rng msg
      in
      let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:now in
      match Resilient_tre.decrypt prms tree alice_sec ~cover ct with
      | Some out -> now >= release && out = msg
      | None -> now < release)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "resilient"
    [
      ( "time-tree",
        [
          Alcotest.test_case "basics" `Quick test_tree_basics;
          Alcotest.test_case "labels injective" `Quick test_labels_injective;
          Alcotest.test_case "cover sizes" `Quick test_cover_sizes;
        ]
        @ qc [ prop_cover_partitions_prefix; prop_exactly_one_ancestor_covered ] );
      ( "scheme",
        [
          Alcotest.test_case "latest cover only" `Quick test_roundtrip_with_latest_cover_only;
          Alcotest.test_case "exact epoch" `Quick test_exact_epoch_cover_works;
          Alcotest.test_case "early covers locked" `Quick test_early_cover_locked;
          Alcotest.test_case "wrong secret" `Quick test_wrong_secret_garbage;
          Alcotest.test_case "forged cover" `Quick test_forged_cover_rejected;
          Alcotest.test_case "broadcast bounded" `Quick test_broadcast_size_bounded;
        ]
        @ qc [ prop_roundtrip_any_pair ] );
    ]
