test/test_tre_variants.mli:
