test/test_timelock.mli:
