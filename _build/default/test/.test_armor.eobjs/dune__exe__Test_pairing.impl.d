test/test_pairing.ml: Alcotest Bigint Curve Fp2 Hashing List Pairing Param_search Prime Printf QCheck2 QCheck_alcotest String Tre
