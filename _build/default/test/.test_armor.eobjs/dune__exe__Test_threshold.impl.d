test/test_threshold.ml: Alcotest Bigint Curve Hashing Hashtbl List Pairing Printf QCheck2 QCheck_alcotest Shamir String Threshold_server Tre
