test/test_field.ml: Alcotest Bigint Fp Fp2 List QCheck2 QCheck_alcotest
