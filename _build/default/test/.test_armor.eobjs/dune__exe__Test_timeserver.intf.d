test/test_timeserver.mli:
