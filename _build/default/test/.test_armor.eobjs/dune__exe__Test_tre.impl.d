test/test_tre.ml: Alcotest Bigint Bls Curve Hashing List Pairing QCheck2 QCheck_alcotest String Tre
