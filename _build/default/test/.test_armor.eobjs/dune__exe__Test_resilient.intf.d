test/test_resilient.mli:
