test/test_baselines.ml: Alcotest Baseline_report Cot_server Hashtbl List May_escrow Mont_ibe Pairing Printf Rivest_server Simnet String Timeline
