test/test_fuzz.ml: Alcotest Armor Bls Char Curve Fp Hashing Key_insulation List Pairing Printf String Tre Tre_fo Tre_react
