test/test_bls.mli:
