test/test_bigint.ml: Alcotest Bigint Char Hashing List Modarith Prime Printf QCheck2 QCheck_alcotest Stdlib String
