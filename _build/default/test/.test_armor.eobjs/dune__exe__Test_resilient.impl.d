test/test_resilient.ml: Alcotest Array Hashing Hashtbl List Pairing Printf QCheck2 QCheck_alcotest Resilient_tre Time_tree Tre
