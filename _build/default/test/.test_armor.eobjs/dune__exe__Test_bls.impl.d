test/test_bls.ml: Alcotest Bigint Bls Curve Hashing List Pairing Printf QCheck2 QCheck_alcotest String
