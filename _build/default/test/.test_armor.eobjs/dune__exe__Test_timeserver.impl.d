test/test_timeserver.ml: Alcotest Client Event_queue Hashing List Pairing Passive_server Printf Simnet Timeline Tre
