test/test_anonymity.ml: Alcotest Baseline_report Client Hashing List May_escrow Mont_ibe Pairing Passive_server Printf Simnet String Timeline Tre
