test/test_tre_variants.ml: Alcotest Array Bigint Char Curve Hashing Hybrid_baseline Id_tre Key_insulation List Multi_server Pairing Policy_lock Printf String Tre Tre_fo Tre_react
