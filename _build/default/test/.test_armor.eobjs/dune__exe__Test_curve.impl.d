test/test_curve.ml: Alcotest Bigint Curve Fp Hashing Hashtbl List Pairing Printf QCheck2 QCheck_alcotest String
