test/test_timelock.ml: Alcotest Hashing List Sys Timelock
