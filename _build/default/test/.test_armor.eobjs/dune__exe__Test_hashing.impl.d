test/test_hashing.ml: Alcotest Bytes Char Drbg Hashing Hex Hkdf Hmac Kdf List Printf QCheck2 QCheck_alcotest Sha256 String
