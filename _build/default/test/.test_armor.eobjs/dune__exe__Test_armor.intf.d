test/test_armor.mli:
