test/test_armor.ml: Alcotest Armor Char Hashing List Pairing QCheck2 QCheck_alcotest String Tre
