test/test_tre.mli:
