(* Functional tests for the §2.2 baselines: each must actually work as a
   timed-release mechanism (its own correctness), and its cost/leak
   accounting must reflect the structural properties the paper compares. *)

let prms = Pairing.toy64 ()

let fresh_world ?(seed = "baselines") () =
  let net = Simnet.create ~seed ~latency:0.01 ~jitter:0.0 () in
  let tl = Timeline.create ~granularity:10.0 () in
  (net, tl)

(* --- May escrow --- *)

let test_escrow_releases_at_time () =
  let net, tl = fresh_world () in
  let agent = May_escrow.create ~net ~timeline:tl ~name:"agent" in
  let got = ref None in
  May_escrow.deposit agent ~sender:"alice" ~receiver:"bob"
    ~deliver:(fun m -> got := Some (m, Simnet.now net))
    ~release_epoch:3 "sealed bid";
  Simnet.run_until net (Timeline.start_of tl 3 -. 0.1);
  Alcotest.(check bool) "not before" true (!got = None);
  Simnet.run net;
  match !got with
  | Some (m, at) ->
      Alcotest.(check string) "content" "sealed bid" m;
      Alcotest.(check bool) "at/after release" true (at >= Timeline.start_of tl 3)
  | None -> Alcotest.fail "never delivered"

let test_escrow_state_grows_with_messages () =
  let net, tl = fresh_world () in
  let agent = May_escrow.create ~net ~timeline:tl ~name:"agent" in
  for i = 0 to 9 do
    May_escrow.deposit agent ~sender:"s" ~receiver:"r" ~deliver:ignore
      ~release_epoch:5 (Printf.sprintf "message %d with padding padding" i)
  done;
  Simnet.run_until net (Timeline.start_of tl 4) (* all deposited, none released *);
  Alcotest.(check int) "stores all" 10 (May_escrow.stored_messages agent);
  Alcotest.(check bool) "O(#messages) state" true (May_escrow.peak_state_bytes agent > 300);
  Simnet.run net

(* --- Rivest online --- *)

let test_rivest_online_roundtrip () =
  let net, tl = fresh_world () in
  let server = Rivest_server.Online.create ~net ~timeline:tl ~name:"rsw" ~seed:"srv-seed" in
  let received_key = ref None in
  Rivest_server.Online.start_broadcasts server ~first_epoch:1 ~epochs:3
    ~recipients:[ ("bob", fun e k -> if e = 2 then received_key := Some k) ];
  let ciphertext = ref None in
  Rivest_server.Online.encrypt_via_server server ~sender:"alice" ~release_epoch:2
    "rsw message" (fun ct -> ciphertext := Some ct);
  Simnet.run net;
  (match (!ciphertext, !received_key) with
  | Some ct, Some k ->
      Alcotest.(check string) "decrypts" "rsw message"
        (Rivest_server.Online.decrypt ~epoch_key:k ct)
  | _ -> Alcotest.fail "protocol incomplete");
  let report = Rivest_server.Online.report server in
  Alcotest.(check int) "2 interactions per message" 2
    report.Baseline_report.sender_server_interactions;
  Alcotest.(check bool) "leaks content" true
    (List.mem Baseline_report.Message_content report.Baseline_report.leaks);
  Alcotest.(check int) "tiny server state" (String.length "srv-seed")
    report.Baseline_report.server_state_bytes

let test_rivest_online_wrong_key_fails () =
  let net, tl = fresh_world () in
  let server = Rivest_server.Online.create ~net ~timeline:tl ~name:"rsw" ~seed:"s" in
  let ct = ref None in
  Rivest_server.Online.encrypt_via_server server ~sender:"a" ~release_epoch:2 "m"
    (fun c -> ct := Some c);
  Simnet.run net;
  match !ct with
  | Some c ->
      Alcotest.(check string) "wrong epoch key rejected" ""
        (Rivest_server.Online.decrypt ~epoch_key:"wrong" c)
  | None -> Alcotest.fail "no ciphertext"

(* --- Rivest offline list --- *)

let test_rivest_offline_roundtrip () =
  let net, tl = fresh_world () in
  let server =
    Rivest_server.Offline_list.create prms ~net ~timeline:tl ~name:"rsw-off"
      ~seed:"off-seed" ~horizon_epochs:5
  in
  let secret = ref None in
  Rivest_server.Offline_list.start_secret_releases server ~first_epoch:1 ~epochs:4
    ~recipients:[ ("bob", fun e sk -> if e = 3 then secret := Some sk) ];
  (* Non-interactive sender-side encryption (inside the horizon). *)
  let ct =
    match Rivest_server.Offline_list.encrypt server ~epoch:3 "offline msg" with
    | Some ct -> ct
    | None -> Alcotest.fail "inside horizon"
  in
  Simnet.run net;
  (match !secret with
  | Some sk ->
      Alcotest.(check (option string)) "decrypts" (Some "offline msg")
        (Rivest_server.Offline_list.decrypt server ~epoch_secret:sk ct)
  | None -> Alcotest.fail "secret never released");
  (* Wrong epoch's secret fails the tag check. *)
  ()

let test_rivest_offline_horizon_limit () =
  let net, tl = fresh_world () in
  let server =
    Rivest_server.Offline_list.create prms ~net ~timeline:tl ~name:"rsw-off"
      ~seed:"off" ~horizon_epochs:10
  in
  Alcotest.(check bool) "inside horizon ok" true
    (Rivest_server.Offline_list.public_key_for server ~epoch:9 <> None);
  (* The paper's footnote-2 failure: a release time beyond the published
     list cannot be used at all. *)
  Alcotest.(check bool) "beyond horizon stuck" true
    (Rivest_server.Offline_list.encrypt server ~epoch:10 "m" = None);
  (* Pre-publication is O(horizon). *)
  Alcotest.(check int) "prepublication size" (10 * Pairing.point_bytes prms)
    (Rivest_server.Offline_list.prepublication_bytes server);
  Simnet.run net

let test_rivest_offline_wrong_secret () =
  let net, tl = fresh_world () in
  let server =
    Rivest_server.Offline_list.create prms ~net ~timeline:tl ~name:"x" ~seed:"y"
      ~horizon_epochs:4
  in
  let ct =
    match Rivest_server.Offline_list.encrypt server ~epoch:2 "m" with
    | Some c -> c
    | None -> Alcotest.fail "encrypt failed"
  in
  let wrong = String.make (Pairing.scalar_bytes prms) '\x01' in
  Alcotest.(check (option string)) "wrong secret -> None" None
    (Rivest_server.Offline_list.decrypt server ~epoch_secret:wrong ct);
  Simnet.run net

(* --- Mont IBE --- *)

let test_mont_ibe_roundtrip () =
  let net, tl = fresh_world () in
  let vault = Mont_ibe.create prms ~net ~timeline:tl ~name:"vault" in
  let bob_keys = Hashtbl.create 4 in
  Mont_ibe.register vault ~identity:"bob" (fun e d -> Hashtbl.replace bob_keys e d);
  Simnet.run net;
  Mont_ibe.start_epoch_deliveries vault ~first_epoch:1 ~epochs:3;
  let ct = Mont_ibe.encrypt vault ~identity:"bob" ~release_epoch:2 "vault msg" in
  Simnet.run net;
  match Hashtbl.find_opt bob_keys 2 with
  | Some d ->
      Alcotest.(check string) "decrypts" "vault msg"
        (Mont_ibe.decrypt vault ~epoch_private_key:d ct)
  | None -> Alcotest.fail "epoch key not delivered"

let test_mont_ibe_per_user_cost () =
  let run n =
    let net, tl = fresh_world ~seed:(Printf.sprintf "mont-%d" n) () in
    let vault = Mont_ibe.create prms ~net ~timeline:tl ~name:"vault" in
    for i = 0 to n - 1 do
      Mont_ibe.register vault ~identity:(Printf.sprintf "u%d" i) (fun _ _ -> ())
    done;
    Simnet.run net;
    Mont_ibe.start_epoch_deliveries vault ~first_epoch:1 ~epochs:4;
    Simnet.run net;
    (Mont_ibe.report vault).Baseline_report.server_messages
  in
  (* O(N) per epoch: 4 epochs x N users. *)
  Alcotest.(check int) "1 user" 4 (run 1);
  Alcotest.(check int) "10 users" 40 (run 10)

let test_mont_ibe_wrong_epoch_key () =
  let net, tl = fresh_world () in
  let vault = Mont_ibe.create prms ~net ~timeline:tl ~name:"vault" in
  let keys = Hashtbl.create 4 in
  Mont_ibe.register vault ~identity:"bob" (fun e d -> Hashtbl.replace keys e d);
  Simnet.run net;
  Mont_ibe.start_epoch_deliveries vault ~first_epoch:1 ~epochs:3;
  let ct = Mont_ibe.encrypt vault ~identity:"bob" ~release_epoch:2 "m" in
  Simnet.run net;
  match Hashtbl.find_opt keys 1 with
  | Some early_key ->
      Alcotest.(check bool) "epoch-1 key useless for epoch-2 msg" false
        (Mont_ibe.decrypt vault ~epoch_private_key:early_key ct = "m")
  | None -> Alcotest.fail "no key"

(* --- COT --- *)

let test_cot_grant_denied_then_granted () =
  let net, _ = fresh_world () in
  let cot = Cot_server.create ~net ~name:"cot" ~time_parameter_bits:20 in
  Cot_server.set_current_epoch cot 5;
  let results = ref [] in
  Cot_server.request_decryption cot ~receiver:"bob" ~release_epoch:9 ~payload_bytes:100
    ~granted:(fun ok -> results := ("future", ok) :: !results);
  Cot_server.request_decryption cot ~receiver:"bob" ~release_epoch:3 ~payload_bytes:100
    ~granted:(fun ok -> results := ("past", ok) :: !results);
  Simnet.run net;
  Alcotest.(check bool) "past granted" true (List.assoc "past" !results);
  Alcotest.(check bool) "future denied" false (List.assoc "future" !results)

let test_cot_interaction_cost_logarithmic () =
  let net, _ = fresh_world () in
  let c10 = Cot_server.create ~net ~name:"c10" ~time_parameter_bits:10 in
  let c30 = Cot_server.create ~net ~name:"c30" ~time_parameter_bits:30 in
  Alcotest.(check int) "2b+2 at b=10" 22 (Cot_server.rounds_per_decryption c10);
  Alcotest.(check int) "2b+2 at b=30" 62 (Cot_server.rounds_per_decryption c30)

let test_cot_dos_costs_server () =
  let net, _ = fresh_world () in
  let cot = Cot_server.create ~net ~name:"cot" ~time_parameter_bits:16 in
  Cot_server.flood cot ~attacker:"mallory" ~queries:50;
  Simnet.run net;
  (* Every adversarial query costs the server a full protocol run. *)
  Alcotest.(check int) "messages" (50 * Cot_server.rounds_per_decryption cot)
    (Cot_server.protocol_messages cot);
  let report = Cot_server.report cot in
  Alcotest.(check bool) "state grows per session" true
    (report.Baseline_report.server_state_bytes >= 50 * 64)

let () =
  Alcotest.run "baselines"
    [
      ( "may-escrow",
        [
          Alcotest.test_case "releases at time" `Quick test_escrow_releases_at_time;
          Alcotest.test_case "state grows" `Quick test_escrow_state_grows_with_messages;
        ] );
      ( "rivest-online",
        [
          Alcotest.test_case "roundtrip" `Quick test_rivest_online_roundtrip;
          Alcotest.test_case "wrong key" `Quick test_rivest_online_wrong_key_fails;
        ] );
      ( "rivest-offline",
        [
          Alcotest.test_case "roundtrip" `Quick test_rivest_offline_roundtrip;
          Alcotest.test_case "horizon limit" `Quick test_rivest_offline_horizon_limit;
          Alcotest.test_case "wrong secret" `Quick test_rivest_offline_wrong_secret;
        ] );
      ( "mont-ibe",
        [
          Alcotest.test_case "roundtrip" `Quick test_mont_ibe_roundtrip;
          Alcotest.test_case "O(N) per epoch" `Quick test_mont_ibe_per_user_cost;
          Alcotest.test_case "wrong epoch key" `Quick test_mont_ibe_wrong_epoch_key;
        ] );
      ( "cot",
        [
          Alcotest.test_case "grant/deny" `Quick test_cot_grant_denied_then_granted;
          Alcotest.test_case "log cost" `Quick test_cot_interaction_cost_logarithmic;
          Alcotest.test_case "dos" `Quick test_cot_dos_costs_server;
        ] );
    ]
