(* Shamir sharing over Z_q and the k-of-n threshold time server: any k
   shares produce the standard update (receivers unchanged); k-1 produce
   nothing; corrupt partials are caught. *)

module B = Bigint

let prms = Pairing.toy64 ()
let rng = Hashing.Drbg.create ~seed:"threshold-tests" ()
let t_release = "threshold-epoch"

(* --- Shamir --- *)

let test_split_reconstruct () =
  let secret = Pairing.random_scalar prms rng in
  let shares = Shamir.split prms rng ~secret ~k:3 ~n:5 in
  Alcotest.(check int) "n shares" 5 (List.length shares);
  (* Every 3-subset reconstructs. *)
  let subsets =
    [ [ 0; 1; 2 ]; [ 0; 1; 4 ]; [ 2; 3; 4 ]; [ 0; 2; 4 ]; [ 1; 2; 3 ] ]
  in
  List.iter
    (fun idxs ->
      let chosen = List.map (List.nth shares) idxs in
      Alcotest.(check bool)
        (Printf.sprintf "subset %s" (String.concat "," (List.map string_of_int idxs)))
        true
        (B.equal secret (Shamir.reconstruct prms chosen)))
    subsets;
  (* More than k also works. *)
  Alcotest.(check bool) "all 5" true (B.equal secret (Shamir.reconstruct prms shares))

let test_fewer_than_k_wrong () =
  let secret = Pairing.random_scalar prms rng in
  let shares = Shamir.split prms rng ~secret ~k:3 ~n:5 in
  let two = List.filteri (fun i _ -> i < 2) shares in
  Alcotest.(check bool) "2 of 3 fails" false (B.equal secret (Shamir.reconstruct prms two))

let test_k_equals_one_and_n () =
  let secret = Pairing.random_scalar prms rng in
  let s1 = Shamir.split prms rng ~secret ~k:1 ~n:3 in
  Alcotest.(check bool) "k=1: single share is the secret" true
    (B.equal secret (Shamir.reconstruct prms [ List.hd s1 ]));
  let s5 = Shamir.split prms rng ~secret ~k:5 ~n:5 in
  Alcotest.(check bool) "k=n" true (B.equal secret (Shamir.reconstruct prms s5))

let test_shamir_validation () =
  Alcotest.check_raises "k > n" (Invalid_argument "Shamir.split: need 1 <= k <= n")
    (fun () -> ignore (Shamir.split prms rng ~secret:B.one ~k:3 ~n:2));
  Alcotest.check_raises "dup indices"
    (Invalid_argument "Shamir.lagrange_at_zero: duplicate indices") (fun () ->
      ignore (Shamir.lagrange_at_zero prms [ 1; 1; 2 ]));
  Alcotest.check_raises "index 0"
    (Invalid_argument "Shamir.lagrange_at_zero: indices must be >= 1") (fun () ->
      ignore (Shamir.lagrange_at_zero prms [ 0; 1 ]))

let prop_random_subsets =
  QCheck2.Test.make ~name:"any k-subset reconstructs" ~count:30
    QCheck2.Gen.(pair (int_range 1 5) (int_range 0 100))
    (fun (k, salt) ->
      let n = 6 in
      let rng = Hashing.Drbg.create ~seed:(Printf.sprintf "shamir-%d-%d" k salt) () in
      let secret = Pairing.random_scalar prms rng in
      let shares = Shamir.split prms rng ~secret ~k ~n in
      (* Pseudo-random k-subset. *)
      let shuffled =
        List.sort
          (fun a b ->
            compare
              (Hashtbl.hash (salt, a.Shamir.index))
              (Hashtbl.hash (salt, b.Shamir.index)))
          shares
      in
      let chosen = List.filteri (fun i _ -> i < k) shuffled in
      B.equal secret (Shamir.reconstruct prms chosen))

(* --- threshold server --- *)

let system, servers = Threshold_server.setup prms rng ~k:3 ~n:5

let test_combined_update_is_standard () =
  let partials = List.map (fun s -> Threshold_server.issue_partial prms s t_release) servers in
  List.iter
    (fun p ->
      Alcotest.(check bool) "partial verifies" true
        (Threshold_server.verify_partial prms system t_release p))
    partials;
  let from_first3 =
    Threshold_server.combine prms system t_release (List.filteri (fun i _ -> i < 3) partials)
  in
  let from_last3 =
    Threshold_server.combine prms system t_release (List.filteri (fun i _ -> i >= 2) partials)
  in
  (* Identical, and a valid ordinary update under the ordinary public key. *)
  Alcotest.(check bool) "same update from different quorums" true
    (Curve.equal from_first3.Tre.update_value from_last3.Tre.update_value);
  Alcotest.(check bool) "verifies as standard update" true
    (Tre.verify_update prms system.Threshold_server.public from_first3)

let test_receivers_unchanged () =
  (* A completely ordinary TRE flow against the threshold system. *)
  let alice_sec, alice_pub = Tre.User.keygen prms system.Threshold_server.public rng in
  let msg = "threshold-released" in
  let ct =
    Tre.encrypt prms system.Threshold_server.public alice_pub ~release_time:t_release rng msg
  in
  let quorum = List.filteri (fun i _ -> i = 0 || i = 2 || i = 4) servers in
  let partials = List.map (fun s -> Threshold_server.issue_partial prms s t_release) quorum in
  let upd = Threshold_server.combine prms system t_release partials in
  Alcotest.(check string) "decrypts" msg (Tre.decrypt prms alice_sec upd ct)

let test_too_few_partials () =
  let partials =
    List.filteri (fun i _ -> i < 2)
      (List.map (fun s -> Threshold_server.issue_partial prms s t_release) servers)
  in
  Alcotest.check_raises "k-1 partials"
    (Invalid_argument "Threshold_server.combine: fewer than k partials") (fun () ->
      ignore (Threshold_server.combine prms system t_release partials))

let test_corrupt_partial_detected () =
  let honest = Threshold_server.issue_partial prms (List.hd servers) t_release in
  let corrupt = { honest with Threshold_server.value = prms.Pairing.g } in
  Alcotest.(check bool) "corrupt rejected" false
    (Threshold_server.verify_partial prms system t_release corrupt);
  (* An unknown server index is rejected too. *)
  let foreign = { honest with Threshold_server.server_index = 99 } in
  Alcotest.(check bool) "unknown index" false
    (Threshold_server.verify_partial prms system t_release foreign)

let test_wrong_time_partial_rejected () =
  let p = Threshold_server.issue_partial prms (List.hd servers) "some other time" in
  Alcotest.(check bool) "wrong time" false
    (Threshold_server.verify_partial prms system t_release p)

let test_corrupt_combination_fails_standard_check () =
  (* If a corrupt partial sneaks past (no verification), the combined
     update fails the ordinary self-authentication — defense in depth. *)
  let partials = List.map (fun s -> Threshold_server.issue_partial prms s t_release) servers in
  let poisoned =
    match partials with
    | first :: rest -> { first with Threshold_server.value = prms.Pairing.g } :: rest
    | [] -> assert false
  in
  let upd = Threshold_server.combine prms system t_release poisoned in
  Alcotest.(check bool) "combined forgery rejected" false
    (Tre.verify_update prms system.Threshold_server.public upd)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "threshold"
    [
      ( "shamir",
        [
          Alcotest.test_case "split/reconstruct" `Quick test_split_reconstruct;
          Alcotest.test_case "fewer than k" `Quick test_fewer_than_k_wrong;
          Alcotest.test_case "k=1 and k=n" `Quick test_k_equals_one_and_n;
          Alcotest.test_case "validation" `Quick test_shamir_validation;
        ]
        @ qc [ prop_random_subsets ] );
      ( "threshold-server",
        [
          Alcotest.test_case "combined = standard" `Quick test_combined_update_is_standard;
          Alcotest.test_case "receivers unchanged" `Quick test_receivers_unchanged;
          Alcotest.test_case "too few partials" `Quick test_too_few_partials;
          Alcotest.test_case "corrupt partial" `Quick test_corrupt_partial_detected;
          Alcotest.test_case "wrong-time partial" `Quick test_wrong_time_partial_rejected;
          Alcotest.test_case "poisoned combination" `Quick test_corrupt_combination_fails_standard_check;
        ] );
    ]
