(* tre-cli: command-line timed release encryption over armored files.

     dune exec bin/tre_cli.exe -- server-keygen --out srv
     dune exec bin/tre_cli.exe -- user-keygen --server srv.pub --out alice
     dune exec bin/tre_cli.exe -- encrypt --server srv.pub --to alice.pub \
         --time "2026-01-01T00:00:00Z" --in msg.txt --out msg.tre
     dune exec bin/tre_cli.exe -- issue-update --server-key srv.key \
         --time "2026-01-01T00:00:00Z" --out upd.tre
     dune exec bin/tre_cli.exe -- decrypt --key alice.key --update upd.tre \
         --in msg.tre --out msg.out

   All objects are ASCII-armored with the parameter set in the header. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("tre-cli: " ^ s); exit 1) fmt

let params_of_name name =
  match Pairing.by_name name with
  | Some prms -> prms
  | None ->
      die "unknown parameter set %S (available: %s)" name
        (String.concat ", " Pairing.all_names)

(* Typed armor loading: the armor header and the payload's binary
   envelope must agree on kind and parameter set (Armor.unwrap_object
   cross-checks them), so relabeled or cross-parameter files die here. *)

let load_object ~kind path =
  match Armor.unwrap_object ~expect:kind (read_file path) with
  | Ok (_, prms, payload) -> (prms, payload)
  | Error e -> die "%s: %s" path e

let load_with ~kind ~decode path =
  let prms, payload = load_object ~kind path in
  match decode prms payload with
  | Ok v -> (prms, v)
  | Error e -> die "%s: malformed %s payload: %s" path (Codec.kind_label kind) e

(* Secret-key payloads: server = scalar, generator point; user = scalar. *)

let server_secret_to_bytes prms sec =
  let pub = Tre.Server.public_of_secret prms sec in
  Codec.encode prms Codec.Server_secret (fun buf ->
      Codec.add_scalar prms buf (Tre.Server.secret_to_scalar sec);
      Codec.add_point prms buf pub.Tre.Server.g)

let server_secret_of_bytes prms payload =
  Codec.decode prms Codec.Server_secret payload (fun r ->
      let scalar = Codec.read_scalar ~what:"server scalar" prms r in
      let g = Codec.read_g1 ~what:"generator" prms r in
      match Tre.Server.secret_of_scalar prms ~g scalar with
      | sec -> sec
      | exception Invalid_argument m -> Codec.fail "%s" m)

let user_secret_to_bytes prms sec =
  Codec.encode prms Codec.User_secret (fun buf ->
      Codec.add_scalar prms buf (Tre.User.secret_to_scalar sec))

let user_secret_of_bytes prms payload =
  Codec.decode prms Codec.User_secret payload (fun r ->
      let scalar = Codec.read_scalar ~what:"user scalar" prms r in
      match Tre.User.secret_of_scalar prms scalar with
      | sec -> sec
      | exception Invalid_argument m -> Codec.fail "%s" m)

let fresh_rng () = Hashing.Drbg.create ~seed:(Hashing.Drbg.system_entropy ()) ()

(* --- commands --- *)

let do_server_keygen params_name out =
  let prms = params_of_name params_name in
  let sec, pub = Tre.Server.keygen prms (fresh_rng ()) in
  write_file (out ^ ".key")
    (Armor.wrap_object prms ~kind:Codec.Server_secret (server_secret_to_bytes prms sec));
  write_file (out ^ ".pub")
    (Armor.wrap_object prms ~kind:Codec.Server_public
       (Tre.server_public_to_bytes prms pub));
  Printf.printf "wrote %s.key (keep offline!) and %s.pub\n" out out

let do_user_keygen server_pub_path out password =
  let prms, srv =
    load_with ~kind:Codec.Server_public ~decode:Tre.server_public_of_bytes
      server_pub_path
  in
  let sec, pub =
    match password with
    | Some pw -> Tre.User.keygen_from_password prms srv ~password:pw
    | None -> Tre.User.keygen prms srv (fresh_rng ())
  in
  write_file (out ^ ".key")
    (Armor.wrap_object prms ~kind:Codec.User_secret (user_secret_to_bytes prms sec));
  write_file (out ^ ".pub")
    (Armor.wrap_object prms ~kind:Codec.User_public (Tre.user_public_to_bytes prms pub));
  Printf.printf "wrote %s.key and %s.pub (bound to this time server)\n" out out

let do_validate_key server_pub_path user_pub_path =
  let prms, srv =
    load_with ~kind:Codec.Server_public ~decode:Tre.server_public_of_bytes
      server_pub_path
  in
  let prms2, usr =
    load_with ~kind:Codec.User_public ~decode:Tre.user_public_of_bytes user_pub_path
  in
  if prms.Pairing.name <> prms2.Pairing.name then die "parameter sets differ";
  if Tre.validate_receiver_key prms srv usr then
    print_endline "valid: key is bound to this server"
  else begin
    print_endline "INVALID: e(aG, sG) <> e(G, asG) - do not encrypt to this key";
    exit 1
  end

let do_encrypt server_pub_path user_pub_path time input output cca =
  let prms, srv =
    load_with ~kind:Codec.Server_public ~decode:Tre.server_public_of_bytes
      server_pub_path
  in
  let prms2, usr =
    load_with ~kind:Codec.User_public ~decode:Tre.user_public_of_bytes user_pub_path
  in
  if prms.Pairing.name <> prms2.Pairing.name then die "parameter sets differ";
  let msg = read_file input in
  let rng = fresh_rng () in
  let kind, payload =
    if cca then
      ( Codec.Ciphertext_fo,
        Tre_fo.ciphertext_to_bytes prms
          (Tre_fo.encrypt prms srv usr ~release_time:time rng msg) )
    else
      ( Codec.Ciphertext,
        Tre.ciphertext_to_bytes prms (Tre.encrypt prms srv usr ~release_time:time rng msg)
      )
  in
  write_file output (Armor.wrap_object prms ~kind payload);
  Printf.printf "encrypted %d bytes for release at %S -> %s\n" (String.length msg) time
    output

let do_issue_update server_key_path time output =
  let prms, sec =
    load_with ~kind:Codec.Server_secret ~decode:server_secret_of_bytes server_key_path
  in
  let upd = Tre.issue_update prms sec time in
  write_file output
    (Armor.wrap_object prms ~kind:Codec.Key_update (Tre.update_to_bytes prms upd));
  Printf.printf "issued time-bound key update for %S -> %s\n" time output

let do_verify_update server_pub_path update_path =
  let prms, srv =
    load_with ~kind:Codec.Server_public ~decode:Tre.server_public_of_bytes
      server_pub_path
  in
  let prms2, upd =
    load_with ~kind:Codec.Key_update ~decode:Tre.update_of_bytes update_path
  in
  if prms.Pairing.name <> prms2.Pairing.name then die "parameter sets differ";
  if Tre.verify_update prms srv upd then
    Printf.printf "valid update for time %S (self-authenticated BLS signature)\n"
      upd.Tre.update_time
  else begin
    print_endline "INVALID update: signature check failed";
    exit 1
  end

let do_decrypt user_key_path update_path input output cca server_pub user_pub =
  let prms, sec =
    load_with ~kind:Codec.User_secret ~decode:user_secret_of_bytes user_key_path
  in
  let prms2, upd =
    load_with ~kind:Codec.Key_update ~decode:Tre.update_of_bytes update_path
  in
  if prms.Pairing.name <> prms2.Pairing.name then die "parameter sets differ";
  let msg =
    if cca then begin
      let srv_path =
        match server_pub with Some p -> p | None -> die "--cca needs --server"
      in
      let usr_path = match user_pub with Some p -> p | None -> die "--cca needs --to" in
      let _, srv =
        load_with ~kind:Codec.Server_public ~decode:Tre.server_public_of_bytes srv_path
      in
      let _, usr =
        load_with ~kind:Codec.User_public ~decode:Tre.user_public_of_bytes usr_path
      in
      let _, ct =
        load_with ~kind:Codec.Ciphertext_fo ~decode:Tre_fo.ciphertext_of_bytes input
      in
      match Tre_fo.decrypt prms srv usr sec upd ct with
      | msg -> msg
      | exception Tre_fo.Decryption_failed -> die "decryption failed: ciphertext tampered"
      | exception Tre.Update_mismatch ->
          die "update is for a different time than the ciphertext"
    end
    else begin
      let _, ct =
        load_with ~kind:Codec.Ciphertext ~decode:Tre.ciphertext_of_bytes input
      in
      match Tre.decrypt prms sec upd ct with
      | msg -> msg
      | exception Tre.Update_mismatch ->
          die "update is for a different time than the ciphertext (need %S)"
            ct.Tre.release_time
    end
  in
  write_file output msg;
  Printf.printf "decrypted %d bytes -> %s\n" (String.length msg) output

let do_info path =
  match Armor.unwrap_object (read_file path) with
  | Error e -> die "%s: %s" path e
  | Ok (kind, prms, payload) -> (
      Printf.printf "kind:       %s\nparameters: %s\npayload:    %d bytes\n"
        (Codec.kind_label kind) prms.Pairing.name (String.length payload);
      match kind with
      | Codec.Ciphertext -> (
          match Tre.ciphertext_of_bytes prms payload with
          | Ok ct -> Printf.printf "release at: %S\n" ct.Tre.release_time
          | Error _ -> ())
      | Codec.Ciphertext_fo -> (
          match Tre_fo.ciphertext_of_bytes prms payload with
          | Ok ct -> Printf.printf "release at: %S (CCA-secure)\n" ct.Tre_fo.release_time
          | Error _ -> ())
      | Codec.Key_update -> (
          match Tre.update_of_bytes prms payload with
          | Ok u -> Printf.printf "update for: %S\n" u.Tre.update_time
          | Error _ -> ())
      | _ -> ())

(* --- cmdliner wiring --- *)

let params_arg =
  Arg.(
    value & opt string "mid128"
    & info [ "params" ] ~docv:"SET" ~doc:"Parameter set (toy64, mid128, std160).")

let out_arg =
  Arg.(
    required & opt (some string) None
    & info [ "out"; "o" ] ~docv:"PATH" ~doc:"Output path (or prefix for keygen).")

let in_arg =
  Arg.(required & opt (some string) None & info [ "in"; "i" ] ~docv:"PATH" ~doc:"Input file.")

let server_pub_arg =
  Arg.(
    required & opt (some file) None
    & info [ "server" ] ~docv:"PUB" ~doc:"Server public key file.")

let server_key_arg =
  Arg.(
    required & opt (some file) None
    & info [ "server-key" ] ~docv:"KEY" ~doc:"Server secret key file.")

let user_pub_arg =
  Arg.(
    required & opt (some file) None
    & info [ "to" ] ~docv:"PUB" ~doc:"Receiver public key file.")

let user_key_arg =
  Arg.(
    required & opt (some file) None
    & info [ "key" ] ~docv:"KEY" ~doc:"Receiver secret key file.")

let update_arg =
  Arg.(
    required & opt (some file) None
    & info [ "update" ] ~docv:"UPD" ~doc:"Time-bound key update file.")

let time_arg =
  Arg.(
    required & opt (some string) None
    & info [ "time"; "t" ] ~docv:"TIME" ~doc:"Release-time label (any string).")

let cca_arg =
  Arg.(value & flag & info [ "cca" ] ~doc:"Use the CCA-secure Fujisaki-Okamoto variant.")

let password_arg =
  Arg.(
    value & opt (some string) None
    & info [ "password" ] ~docv:"PW" ~doc:"Derive the secret key from a password.")

let cmd_server_keygen =
  Cmd.v
    (Cmd.info "server-keygen" ~doc:"Generate a time-server key pair.")
    Term.(const do_server_keygen $ params_arg $ out_arg)

let cmd_user_keygen =
  Cmd.v
    (Cmd.info "user-keygen" ~doc:"Generate a receiver key pair bound to a server.")
    Term.(const do_user_keygen $ server_pub_arg $ out_arg $ password_arg)

let cmd_validate_key =
  Cmd.v
    (Cmd.info "validate-key"
       ~doc:"Check a receiver key against a server (the pairing check of section 5.1).")
    Term.(const do_validate_key $ server_pub_arg $ user_pub_arg)

let cmd_encrypt =
  Cmd.v
    (Cmd.info "encrypt" ~doc:"Encrypt a file for a future release time.")
    Term.(const do_encrypt $ server_pub_arg $ user_pub_arg $ time_arg $ in_arg $ out_arg $ cca_arg)

let cmd_issue_update =
  Cmd.v
    (Cmd.info "issue-update" ~doc:"(time server) Issue the key update for a time label.")
    Term.(const do_issue_update $ server_key_arg $ time_arg $ out_arg)

let cmd_verify_update =
  Cmd.v
    (Cmd.info "verify-update" ~doc:"Verify a key update's self-authentication.")
    Term.(const do_verify_update $ server_pub_arg $ update_arg)

let cmd_decrypt =
  let server_opt =
    Arg.(
      value & opt (some file) None
      & info [ "server" ] ~docv:"PUB" ~doc:"Server public key (for --cca).")
  in
  let user_opt =
    Arg.(
      value & opt (some file) None
      & info [ "to" ] ~docv:"PUB" ~doc:"Receiver public key (for --cca).")
  in
  Cmd.v
    (Cmd.info "decrypt" ~doc:"Decrypt a ciphertext whose release time has passed.")
    Term.(
      const do_decrypt $ user_key_arg $ update_arg $ in_arg $ out_arg $ cca_arg
      $ server_opt $ user_opt)

let cmd_info =
  Cmd.v
    (Cmd.info "info" ~doc:"Describe an armored TRE object.")
    Term.(const do_info $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"))

let () =
  let info =
    Cmd.info "tre-cli" ~version:"1.0.0"
      ~doc:
        "Server-passive, user-anonymous timed release encryption (Chan-Blake, ICDCS 2005)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            cmd_server_keygen; cmd_user_keygen; cmd_validate_key; cmd_encrypt;
            cmd_issue_update; cmd_verify_update; cmd_decrypt; cmd_info;
          ]))
