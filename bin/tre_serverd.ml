(* tre-serverd: the paper's passive time server as a long-running daemon.

     dune exec bin/tre_serverd.exe -- --unix /tmp/tre.sock --ticks 10
     dune exec bin/tre_serverd.exe -- --tcp 7100 --udp 127.0.0.1:7101 \
         --granularity 1.0 --period 1.0

   At each period it broadcasts one key update to every subscriber —
   constant work independent of the audience (§4's scalability claim),
   with clients pulling missed epochs from the archive endpoint (§6).
   SIGINT/SIGTERM stop it cleanly and print the operational counters. *)

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("tre-serverd: " ^ s); exit 1) fmt

let params = ref "mid128"
let unix_path = ref ""
let tcp_port = ref 0
let udp_dest = ref ""
let origin = ref "utc"
let granularity = ref 1.0
let period = ref 1.0
let shards = ref 0
let max_queue = ref 64
let backend_str = ref "auto"
let no_writev = ref false
let seed = ref ""
let ticks = ref 0
let first_epoch = ref 1
let quiet = ref false

let spec =
  [
    ("--params", Arg.Set_string params,
     Printf.sprintf "NAME parameter set (default %s; available: %s)" !params
       (String.concat ", " Pairing.all_names));
    ("--unix", Arg.Set_string unix_path, "PATH listen on a Unix-domain socket");
    ("--tcp", Arg.Set_int tcp_port, "PORT listen on 127.0.0.1:PORT");
    ("--udp", Arg.Set_string udp_dest, "HOST:PORT also fan ticks out over UDP");
    ("--origin", Arg.Set_string origin, "NAME timeline label prefix (default utc)");
    ("--granularity", Arg.Set_float granularity,
     "SECONDS timeline epoch length (default 1.0)");
    ("--period", Arg.Set_float period,
     "SECONDS wall-clock delay between broadcasts (default 1.0)");
    ("--shards", Arg.Set_int shards,
     "N accept/decode/respond domains (default: host core count)");
    ("--max-queue", Arg.Set_int max_queue,
     "N per-connection back-pressure bound, in frames (default 64)");
    ("--backend", Arg.Set_string backend_str,
     "NAME event backend: auto|select|epoll (default auto)");
    ("--no-writev", Arg.Set no_writev,
     " one write syscall per frame instead of vectored sends");
    ("--seed", Arg.Set_string seed,
     "STRING deterministic key material (default: system entropy)");
    ("--ticks", Arg.Set_int ticks,
     "N broadcast N epochs then exit (default 0: run until SIGINT)");
    ("--first-epoch", Arg.Set_int first_epoch, "N starting epoch (default 1)");
    ("--quiet", Arg.Set quiet, " no per-tick output");
  ]

let usage = "tre-serverd [options]   (at least one of --unix / --tcp)"

let parse_udp s =
  match String.rindex_opt s ':' with
  | None -> die "--udp expects HOST:PORT, got %S" s
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> (host, p)
      | _ -> die "--udp: bad port in %S" s)

let print_stats (st : Netmsg.stats) =
  Printf.printf
    "conns accepted %d, open %d; subscribers %d\n\
     updates encoded %d; frames sent %d (%d bytes)\n\
     archive hits %d, misses %d; protocol errors %d; slow disconnects %d\n\
     queue bytes now %d, peak %d\n\
     send syscalls %d; poll wakeups %d; conns per shard [%s]\n%!"
    st.Netmsg.conns_accepted st.Netmsg.conns_open st.Netmsg.subscribers
    st.Netmsg.updates_encoded st.Netmsg.frames_sent st.Netmsg.bytes_sent
    st.Netmsg.archive_hits st.Netmsg.archive_misses st.Netmsg.protocol_errors
    st.Netmsg.slow_disconnects st.Netmsg.queue_bytes st.Netmsg.queue_bytes_peak
    st.Netmsg.send_syscalls st.Netmsg.poll_wakeups
    (String.concat "; " (List.map string_of_int st.Netmsg.shard_conns))

let () =
  Arg.parse spec (fun a -> die "stray argument %S" a) usage;
  let prms =
    match Pairing.by_name !params with
    | Some p -> p
    | None ->
        die "unknown parameter set %S (available: %s)" !params
          (String.concat ", " Pairing.all_names)
  in
  let timeline = Timeline.create ~origin:!origin ~granularity:!granularity () in
  let backend =
    match Poller.backend_of_string !backend_str with
    | Ok b -> b
    | Error e -> die "--backend: %s" e
  in
  if backend = Some Poller.Epoll && not (Poller.epoll_available ()) then
    die "--backend epoll: unavailable on this platform";
  let cfg =
    {
      (Net_server.default_config prms timeline) with
      Net_server.unix_path =
        (if !unix_path = "" then None else Some !unix_path);
      tcp_port = (if !tcp_port = 0 then None else Some !tcp_port);
      udp_dest = (if !udp_dest = "" then None else Some (parse_udp !udp_dest));
      shards = (if !shards > 0 then !shards else Pool.recommended ());
      max_queue_frames = !max_queue;
      backend;
      vectored = not !no_writev;
    }
  in
  if cfg.Net_server.unix_path = None && cfg.Net_server.tcp_port = None then
    die "no transport: pass --unix PATH and/or --tcp PORT";
  let seed =
    if !seed <> "" then !seed else Hashing.Drbg.system_entropy ~n:32 ()
  in
  let rng = Hashing.Drbg.create ~seed ~personalization:"tre-serverd" () in
  let srv = Net_server.create cfg rng in
  let stopping = Atomic.make false in
  let request_stop _ = Atomic.set stopping true in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  Net_server.start srv;
  if not !quiet then begin
    Printf.printf
      "tre-serverd: %s, origin %s, granularity %gs, %d shard%s, %s backend%s\n"
      !params !origin !granularity cfg.Net_server.shards
      (if cfg.Net_server.shards = 1 then "" else "s")
      (Net_server.backend_name srv)
      (if Net_server.vectored srv then " (writev)" else "");
    Option.iter (Printf.printf "  unix %s\n") cfg.Net_server.unix_path;
    Option.iter
      (Printf.printf "  tcp %s:%d\n" cfg.Net_server.tcp_addr)
      cfg.Net_server.tcp_port;
    Option.iter
      (fun (h, p) -> Printf.printf "  udp %s:%d\n" h p)
      cfg.Net_server.udp_dest;
    flush stdout
  end;
  let epoch = ref !first_epoch in
  let sent = ref 0 in
  (* The broadcast loop. A signal only flips [stopping]; shutdown work
     happens here, outside the handler. *)
  while (not (Atomic.get stopping)) && (!ticks = 0 || !sent < !ticks) do
    Net_server.tick srv !epoch;
    if not !quiet then
      Printf.printf "tick %s\n%!" (Timeline.label timeline !epoch);
    incr epoch;
    incr sent;
    if (!ticks = 0 || !sent < !ticks) && !period > 0.0 then
      (* interruptible sleep: signals cut it short via EINTR *)
      try Unix.sleepf !period with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  let st = Net_server.stats srv in
  Net_server.stop srv;
  if not !quiet then print_stats st;
  Printf.printf "clean shutdown\n%!"
