(* Benchmark harness regenerating every comparative claim of the paper as
   a table or series (experiments E1-E12, see DESIGN.md and EXPERIMENTS.md).

     dune exec bench/main.exe                 # full report
     dune exec bench/main.exe -- --quick      # smaller sweeps (CI)
     dune exec bench/main.exe -- --json f.json# also dump all rows as JSON
     dune exec bench/main.exe -- --smoke      # agreement asserts only
     dune exec bench/main.exe -- --e1kernel   # kernel-vs-reference report only
                                              # (regenerates BENCH_E1_KERNEL.json)

   Timing numbers come from Bechamel (OLS over monotonic-clock samples) at
   the mid128 parameter set; structural numbers (bytes, messages, rounds)
   come from the actual implementations and the discrete-event simulator.
   Absolute times are machine-dependent; the claims under test are the
   RATIOS and SHAPES (who wins, by what factor, what scales how). *)

open Bechamel
open Toolkit

let quick = Array.exists (fun a -> a = "--quick") Sys.argv
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let e1kernel_only = Array.exists (fun a -> a = "--e1kernel") Sys.argv
let e14delegate_only = Array.exists (fun a -> a = "--e14delegate") Sys.argv

let json_path =
  let rec find = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let prms = Pairing.mid128 ()
let toy = Pairing.toy64 ()
let rng = Hashing.Drbg.create ~seed:"bench" ()

let msg32 = String.make 32 'm'

(* Shared fixtures at mid128. *)
let srv_sec, srv_pub = Tre.Server.keygen prms rng
let usr_sec, usr_pub = Tre.User.keygen prms srv_pub rng
let t_label = "bench-epoch"
let upd = Tre.issue_update prms srv_sec t_label
let tre_ct = Tre.encrypt prms srv_pub usr_pub ~release_time:t_label rng msg32
let fo_ct = Tre_fo.encrypt prms srv_pub usr_pub ~release_time:t_label rng msg32
let react_ct = Tre_react.encrypt prms srv_pub usr_pub ~release_time:t_label rng msg32

let id_sec, id_pub = Id_tre.Server.keygen prms rng
let id_priv = Id_tre.Server.extract prms id_sec "bench-user"
let id_ct = Id_tre.encrypt prms id_pub "bench-user" ~release_time:t_label rng msg32
let id_upd = Id_tre.Server.issue_update prms id_sec t_label

let hyb_sec, hyb_pub = Hybrid_baseline.receiver_keygen prms rng
let hyb_ct = Hybrid_baseline.encrypt prms srv_pub hyb_pub ~release_time:t_label rng msg32

let epoch_key = Key_insulation.derive prms usr_sec upd

(* --- bechamel plumbing --- *)

let run_benchmarks tests =
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if quick then Time.millisecond 120.0 else Time.millisecond 400.0 in
  let cfg = Benchmark.cfg ~limit:500 ~quota ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let ns_of results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> est
      | Some [] | None -> nan)

let pp_time ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.2f ns" ns

let heading title = Printf.printf "\n=== %s ===\n" title

(* --- JSON row registry (--json) ---

   Each report records its table rows as flat objects; the driver dumps
   them at exit. Hand-rolled writer: the dependency set has no JSON
   library and the values are only strings and numbers. *)

type jv = S of string | F of float | I of int

let json_rows : (string * (string * jv) list) list ref = ref []
let record experiment fields = json_rows := (experiment, fields) :: !json_rows

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jv_to_string = function
  | S s -> "\"" ^ json_escape s ^ "\""
  | I i -> string_of_int i
  | F f ->
      if Float.is_nan f then "null"
      else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.6g" f

let json_row_to_string (experiment, fields) =
  "  {\"experiment\": \"" ^ json_escape experiment ^ "\""
  ^ String.concat ""
      (List.map (fun (k, v) -> ", \"" ^ json_escape k ^ "\": " ^ jv_to_string v) fields)
  ^ "}"

let write_json path rows =
  let oc = open_out path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.map json_row_to_string rows));
  output_string oc "\n]\n";
  close_out oc

(* Min-of-samples timer + median-of-samples allocation meter: used for
   all cross-scheme ratio tables (bechamel OLS estimates remain for the
   E1 single-op listing). Timing noise on a shared machine is one-sided
   — contention only ever makes a sample SLOWER — so the minimum over
   >=20 ms samples is the least-contended estimate and keeps checked-in
   speedup ratios (and the bench_guard floors over them) stable where a
   median still wobbles by +-10% under load. Allocation is load-
   independent, so its median stays. Every timed table row carries both
   nanoseconds/op and allocated words/op — [Gc.allocated_bytes] sampled
   over the same iterations the timing uses, so the perf trajectory
   (time AND allocation) is machine-readable from the JSON dumps. *)
let median_time_alloc ?(samples = 5) f =
  ignore (f ());
  (* Pick an iteration count that makes one sample >= ~20 ms. *)
  let t0 = Sys.time () in
  ignore (f ());
  let once = Stdlib.max 1e-7 (Sys.time () -. t0) in
  let iters = Stdlib.max 1 (int_of_float (0.02 /. once)) in
  let samples_ =
    List.init samples (fun _ ->
        let a0 = Gc.allocated_bytes () in
        let t0 = Sys.time () in
        for _ = 1 to iters do
          ignore (f ())
        done;
        let dt = (Sys.time () -. t0) /. float_of_int iters in
        let dw = (Gc.allocated_bytes () -. a0) /. 8.0 /. float_of_int iters in
        (dt, dw))
  in
  let times = List.sort compare (List.map fst samples_) in
  let words = List.sort compare (List.map snd samples_) in
  match
    (List.nth_opt times 0, List.nth_opt words (List.length words / 2))
  with
  | Some t, Some w -> (t *. 1e9, w)
  | _ -> (nan, nan)

let median_time ?samples f = fst (median_time_alloc ?samples f)

(* Paired timer for speedup rows: reference and kernel samples strictly
   ALTERNATE, so a sustained contention epoch (another job on the
   machine, seconds long — longer than one >=20 ms sample but shorter
   than a row's full sampling run) inflates both sides of the ratio
   instead of whichever side happened to own that window. Separate
   min-of-samples runs for the two sides showed exactly that failure
   mode: single-run speedup swings of +-20% on rows whose true ratio is
   stable. Returns ((ns, words) reference, (ns, words) kernel). *)
let paired_time_alloc ?(samples = 5) fref fker =
  let calibrate f =
    ignore (f ());
    let t0 = Sys.time () in
    ignore (f ());
    let once = Stdlib.max 1e-7 (Sys.time () -. t0) in
    Stdlib.max 1 (int_of_float (0.02 /. once))
  in
  let iref = calibrate fref in
  let iker = calibrate fker in
  let one f iters =
    let a0 = Gc.allocated_bytes () in
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    let dt = (Sys.time () -. t0) /. float_of_int iters in
    (dt, (Gc.allocated_bytes () -. a0) /. 8.0 /. float_of_int iters)
  in
  let sref = ref [] and sker = ref [] in
  for _ = 1 to samples do
    sref := one fref iref :: !sref;
    sker := one fker iker :: !sker
  done;
  let pick l =
    let times = List.sort compare (List.map fst l) in
    let words = List.sort compare (List.map snd l) in
    match (List.nth_opt times 0, List.nth_opt words (List.length words / 2)) with
    | Some t, Some w -> (t *. 1e9, w)
    | _ -> (nan, nan)
  in
  (pick !sref, pick !sker)

let pp_words w =
  if Float.is_nan w then "n/a"
  else if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w


(* =========================================================================
   E1 - operation costs of the schemes
   ========================================================================= *)

let e1_ops =
  [
    ( "tre-encrypt",
      fun () -> ignore (Tre.encrypt prms srv_pub usr_pub ~release_time:t_label rng msg32) );
    ( "tre-encrypt-prevalidated",
      fun () ->
        ignore
          (Tre.encrypt_prevalidated prms srv_pub usr_pub ~release_time:t_label rng msg32) );
    ("tre-decrypt", fun () -> ignore (Tre.decrypt prms usr_sec upd tre_ct));
    ( "fo-encrypt",
      fun () -> ignore (Tre_fo.encrypt prms srv_pub usr_pub ~release_time:t_label rng msg32) );
    ("fo-decrypt", fun () -> ignore (Tre_fo.decrypt prms srv_pub usr_pub usr_sec upd fo_ct));
    ( "react-encrypt",
      fun () ->
        ignore (Tre_react.encrypt prms srv_pub usr_pub ~release_time:t_label rng msg32) );
    ("react-decrypt", fun () -> ignore (Tre_react.decrypt prms usr_sec upd react_ct));
    ( "idtre-encrypt",
      fun () ->
        ignore (Id_tre.encrypt prms id_pub "bench-user" ~release_time:t_label rng msg32) );
    ("idtre-decrypt", fun () -> ignore (Id_tre.decrypt prms ~private_key:id_priv id_upd id_ct));
    ("update-generate", fun () -> ignore (Tre.issue_update prms srv_sec t_label));
    ("update-verify", fun () -> ignore (Tre.verify_update prms srv_pub upd));
    ("validate-receiver-key", fun () -> ignore (Tre.validate_receiver_key prms srv_pub usr_pub));
    ("pairing", fun () -> ignore (Pairing.pairing prms prms.Pairing.g prms.Pairing.g));
    ("hash-to-g1", fun () -> ignore (Pairing.hash_to_g1 prms t_label));
  ]

let e1_tests =
  Test.make_grouped ~name:"e1" ~fmt:"%s/%s"
    (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) e1_ops)

(* Allocation meter alone (the timing for these rows comes from bechamel). *)
let alloc_words_of f = snd (median_time_alloc ~samples:3 f)

let e1_report results =
  heading "E1: operation costs (mid128: 128-bit q, 256-bit p; 32-byte message)";
  Printf.printf "%-28s %12s %10s\n" "operation" "time/op" "words/op";
  List.iter
    (fun (name, f) ->
      let ns = ns_of results ("e1/" ^ name) in
      let w = alloc_words_of f in
      record "E1" [ ("operation", S name); ("ns", F ns); ("alloc_words", F w) ];
      Printf.printf "%-28s %12s %10s\n" name (pp_time ns) (pp_words w))
    e1_ops;
  Printf.printf
    "shape check: enc/dec are within small factors of one pairing; update\n\
     generation is one hash-to-G1 + one scalar mult; verification ~2 pairings.\n"

(* =========================================================================
   E2 - TRE vs the hybrid PKE+IBE construction (the "50% reduction" claim)
   ========================================================================= *)

let e2_tests =
  Test.make_grouped ~name:"e2" ~fmt:"%s/%s"
    [
      Test.make ~name:"hybrid-encrypt"
        (Staged.stage (fun () ->
             Hybrid_baseline.encrypt prms srv_pub hyb_pub ~release_time:t_label rng msg32));
      Test.make ~name:"hybrid-decrypt"
        (Staged.stage (fun () -> Hybrid_baseline.decrypt prms hyb_sec upd hyb_ct));
    ]

let e2_report results =
  heading "E2: TRE vs hybrid PKE+IBE (footnote 3) - the ~50% reduction claim";
  ignore results;
  (* Median timing keeps the ratios consistent under load (the bechamel
     single-op estimates above can drift between groups). *)
  let tre_enc =
    median_time_alloc (fun () ->
        ignore (Tre.encrypt prms srv_pub usr_pub ~release_time:t_label rng msg32))
  in
  let tre_enc_pre =
    median_time_alloc (fun () ->
        ignore (Tre.encrypt_prevalidated prms srv_pub usr_pub ~release_time:t_label rng msg32))
  in
  let tre_dec = median_time_alloc (fun () -> ignore (Tre.decrypt prms usr_sec upd tre_ct)) in
  let hyb_enc =
    median_time_alloc (fun () ->
        ignore (Hybrid_baseline.encrypt prms srv_pub hyb_pub ~release_time:t_label rng msg32))
  in
  let hyb_dec =
    median_time_alloc (fun () -> ignore (Hybrid_baseline.decrypt prms hyb_sec upd hyb_ct))
  in
  Printf.printf "%-22s %12s %12s %9s\n" "operation" "TRE" "hybrid" "hyb/TRE";
  let e2_row name (tre, tre_w) (hyb, hyb_w) =
    record "E2"
      [ ("operation", S name); ("ns_tre", F tre); ("alloc_words_tre", F tre_w);
        ("ns_hybrid", F hyb); ("alloc_words_hybrid", F hyb_w);
        ("ratio", F (hyb /. tre)) ];
    Printf.printf "%-22s %12s %12s %8.2fx\n" name (pp_time tre) (pp_time hyb)
      (hyb /. tre)
  in
  e2_row "encrypt (1st msg)" tre_enc hyb_enc;
  e2_row "encrypt (validated)" tre_enc_pre hyb_enc;
  e2_row "decrypt" tre_dec hyb_dec;
  Printf.printf "\n%-12s %10s %10s %10s %10s %10s\n" "msg bytes" "TRE ct" "hybrid ct"
    "FO ct" "REACT ct" "hyb/TRE";
  List.iter
    (fun n ->
      let m = String.make n 'x' in
      let tre_sz =
        String.length
          (Tre.ciphertext_to_bytes prms
             (Tre.encrypt prms srv_pub usr_pub ~release_time:t_label rng m))
      in
      let fo_sz =
        String.length
          (Tre_fo.ciphertext_to_bytes prms
             (Tre_fo.encrypt prms srv_pub usr_pub ~release_time:t_label rng m))
      in
      let react_sz =
        String.length
          (Tre_react.ciphertext_to_bytes prms
             (Tre_react.encrypt prms srv_pub usr_pub ~release_time:t_label rng m))
      in
      let hyb_sz =
        let ct = Hybrid_baseline.encrypt prms srv_pub hyb_pub ~release_time:t_label rng m in
        Hybrid_baseline.ciphertext_overhead prms
        + String.length ct.Hybrid_baseline.body
        + String.length t_label
      in
      record "E2-size"
        [ ("msg_bytes", I n); ("tre_ct", I tre_sz); ("hybrid_ct", I hyb_sz);
          ("fo_ct", I fo_sz); ("react_ct", I react_sz) ];
      Printf.printf "%-12d %10d %10d %10d %10d %9.2fx\n" n tre_sz hyb_sz fo_sz react_sz
        (float_of_int hyb_sz /. float_of_int tre_sz))
    [ 32; 256; 1024; 4096 ];
  Printf.printf
    "shape check: hybrid carries 2 encapsulations vs TRE's 1; overhead ratio\n\
     is ~2x for short messages (the paper's 50%% reduction), converging to 1\n\
     as the body dominates.\n"

(* =========================================================================
   E3 - scalability in the number of receivers (simulation, toy64 params)
   ========================================================================= *)

let e3_simulate n_users =
  let epochs = 3 in
  (* TRE: passive server, one broadcast per epoch. *)
  let net = Simnet.create ~seed:(Printf.sprintf "e3-tre-%d" n_users) () in
  let tl = Timeline.create ~granularity:10.0 () in
  let server = Passive_server.create toy ~net ~timeline:tl ~name:"server" in
  let clients =
    List.init n_users (fun i ->
        Client.create toy ~net ~server:(Passive_server.public server)
          ~name:(Printf.sprintf "c%d" i))
  in
  Passive_server.start server ~net ~first_epoch:1 ~epochs
    ~recipients:(List.map (fun c -> (Client.name c, Client.on_wire c)) clients);
  Simnet.run net;
  let tre_msgs = Passive_server.updates_issued server in
  let tre_bytes = Passive_server.bytes_broadcast server in
  (* Mont IBE: per-user delivery. *)
  let net2 = Simnet.create ~seed:(Printf.sprintf "e3-mont-%d" n_users) () in
  let vault = Mont_ibe.create toy ~net:net2 ~timeline:tl ~name:"vault" in
  for i = 0 to n_users - 1 do
    Mont_ibe.register vault ~identity:(Printf.sprintf "u%d" i) (fun _ _ -> ())
  done;
  Simnet.run net2;
  Mont_ibe.start_epoch_deliveries vault ~first_epoch:1 ~epochs;
  Simnet.run net2;
  let mont = Mont_ibe.report vault in
  (* May escrow: one deposit per user (everyone receives one sealed item). *)
  let net3 = Simnet.create ~seed:(Printf.sprintf "e3-may-%d" n_users) () in
  let agent = May_escrow.create ~net:net3 ~timeline:tl ~name:"agent" in
  for i = 0 to n_users - 1 do
    May_escrow.deposit agent ~sender:"s" ~receiver:(Printf.sprintf "u%d" i)
      ~deliver:ignore ~release_epoch:2 (String.make 64 'm')
  done;
  Simnet.run net3;
  let may = May_escrow.report agent in
  (* COT: each user decrypts once -> one protocol run each. *)
  let net4 = Simnet.create ~seed:(Printf.sprintf "e3-cot-%d" n_users) () in
  let cot = Cot_server.create ~net:net4 ~name:"cot" ~time_parameter_bits:20 in
  Cot_server.set_current_epoch cot 10;
  for i = 0 to n_users - 1 do
    Cot_server.request_decryption cot ~receiver:(Printf.sprintf "u%d" i)
      ~release_epoch:2 ~payload_bytes:64 ~granted:ignore
  done;
  Simnet.run net4;
  let cot_r = Cot_server.report cot in
  (tre_msgs, tre_bytes, mont, may, cot_r)

let e3_report () =
  heading "E3: server cost vs number of receivers (3 epochs, toy64 params)";
  Printf.printf "%-8s | %-19s | %-19s | %-19s | %-19s\n" "users" "TRE (passive)"
    "Mont IBE" "May escrow" "COT";
  Printf.printf "%-8s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n" "" "msgs" "bytes"
    "msgs" "bytes" "msgs" "bytes" "msgs" "bytes";
  let sizes = if quick then [ 1; 10; 100 ] else [ 1; 10; 100; 1000; 10000 ] in
  List.iter
    (fun n ->
      let tre_msgs, tre_bytes, mont, may, cot = e3_simulate n in
      record "E3"
        [ ("users", I n); ("tre_msgs", I tre_msgs); ("tre_bytes", I tre_bytes);
          ("mont_msgs", I mont.Baseline_report.server_messages);
          ("may_msgs", I may.Baseline_report.server_messages);
          ("cot_msgs", I cot.Baseline_report.server_messages) ];
      Printf.printf "%-8d | %9d %9d | %9d %9d | %9d %9d | %9d %9d\n" n tre_msgs
        tre_bytes mont.Baseline_report.server_messages mont.Baseline_report.server_bytes
        may.Baseline_report.server_messages may.Baseline_report.server_bytes
        cot.Baseline_report.server_messages cot.Baseline_report.server_bytes)
    sizes;
  Printf.printf
    "shape check: TRE's column is CONSTANT in users (one update per epoch);\n\
     every baseline grows linearly (per-user unicasts / deposits / sessions).\n";
  let _, _, mont, may, cot = e3_simulate 100 in
  heading "E3b: interaction and anonymity (100 users)";
  Printf.printf "%-16s %12s %12s  %s\n" "scheme" "sender-int" "recv-int" "server learns";
  Printf.printf "%-16s %12d %12d  %s\n" "tre-passive" 0 0 "nothing";
  List.iter
    (fun (r : Baseline_report.t) ->
      Printf.printf "%-16s %12d %12d  %s\n" r.Baseline_report.scheme
        r.Baseline_report.sender_server_interactions
        r.Baseline_report.receiver_server_interactions
        (Baseline_report.leaks_to_string r.Baseline_report.leaks))
    [ mont; may; cot ]

(* =========================================================================
   E4 - release-time precision: time-lock puzzles vs the passive server
   ========================================================================= *)

let e4_report () =
  heading "E4: release precision - time-lock puzzle vs TRE broadcast";
  let rate = Timelock.calibrate ~modulus_bits:256 ~sample:(if quick then 500 else 3000) () in
  Printf.printf "calibrated solver: %.0f squarings/s (256-bit modulus)\n" rate;
  (* Real end-to-end validation at small scale: target ~0.3s. *)
  let target = if quick then 0.05 else 0.3 in
  let t = Timelock.squarings_for ~rate ~seconds:target in
  let puzzle = Timelock.create ~rng ~modulus_bits:256 ~squarings:t "precision-probe" in
  let start = Sys.time () in
  let solved = Timelock.solve puzzle in
  let actual = Sys.time () -. start in
  assert (solved = "precision-probe");
  Printf.printf "real solve: intended %.2fs, actual %.2fs (error %+.0f%%)\n" target actual
    ((actual -. target) /. target *. 100.0);
  Printf.printf "\n%-14s %-12s %-16s %-12s\n" "solver speed" "start delay"
    "actual release" "error";
  let intended = 3600.0 in
  List.iter
    (fun (speed, delay) ->
      let p =
        Timelock.release_precision ~intended_delay:intended ~speed_factor:speed
          ~start_delay:delay
      in
      record "E4"
        [ ("speed_factor", F speed); ("start_delay_s", F delay);
          ("actual_release_s", F p.Timelock.actual_release);
          ("error_s", F p.Timelock.error) ];
      Printf.printf "%-14s %-12s %13.0f s %+9.0f s\n"
        (Printf.sprintf "%.2fx" speed)
        (Printf.sprintf "%.0f s" delay)
        p.Timelock.actual_release p.Timelock.error)
    [
      (0.25, 0.0); (0.5, 0.0); (1.0, 0.0); (2.0, 0.0); (4.0, 0.0);
      (1.0, 1800.0); (1.0, 3600.0); (2.0, 1800.0);
    ];
  (* TRE's error: broadcast latency only, measured in the simulator. *)
  let net = Simnet.create ~seed:"e4-tre" ~latency:0.05 ~jitter:0.02 () in
  let tl = Timeline.create ~granularity:100.0 () in
  let server = Passive_server.create toy ~net ~timeline:tl ~name:"server" in
  let client = Client.create toy ~net ~server:(Passive_server.public server) ~name:"c" in
  Passive_server.start server ~net ~first_epoch:1 ~epochs:1
    ~recipients:[ (Client.name client, Client.on_wire client) ];
  let ct =
    Tre.encrypt toy (Passive_server.public server) (Client.public_key client)
      ~release_time:(Timeline.label tl 1) (Simnet.rng net) "x"
  in
  Client.enqueue_ciphertext client ct;
  Simnet.run net;
  (match Client.deliveries client with
  | [ d ] ->
      Printf.printf
        "\nTRE (any machine, any start): release error = broadcast latency = %+.3f s\n"
        (d.Client.decrypted_at -. Timeline.start_of tl 1)
  | _ -> print_endline "TRE simulation failed");
  Printf.printf
    "shape check: puzzle error scales with machine speed and start delay\n\
     (relative, uncontrollable); TRE error is network latency only (absolute).\n"

(* =========================================================================
   E5 - multi-server overhead
   ========================================================================= *)

let e5_fixture n =
  let servers =
    List.init n (fun i ->
        let g = Curve.mul prms.Pairing.curve (Bigint.of_int (23 + i)) prms.Pairing.g in
        Tre.Server.keygen ~g prms rng)
  in
  let secs = List.map fst servers and pubs = List.map snd servers in
  let a, pk = Multi_server.receiver_keygen prms pubs rng in
  let ct = Multi_server.encrypt prms pubs pk ~release_time:t_label rng msg32 in
  let updates = List.map (fun s -> Tre.issue_update prms s t_label) secs in
  (pubs, pk, a, ct, updates)

let e5_cases = [ 1; 2; 4; 8 ]

let e5_tests =
  Test.make_grouped ~name:"e5" ~fmt:"%s/%s"
    (List.concat_map
       (fun n ->
         let pubs, pk, a, ct, updates = e5_fixture n in
         [
           Test.make ~name:(Printf.sprintf "encrypt-n%d" n)
             (Staged.stage (fun () ->
                  Multi_server.encrypt prms pubs pk ~release_time:t_label rng msg32));
           Test.make ~name:(Printf.sprintf "decrypt-n%d" n)
             (Staged.stage (fun () -> Multi_server.decrypt prms a updates ct));
         ])
       e5_cases)

let e5_report results =
  heading "E5: multi-server TRE - cost per additional server (mid128)";
  Printf.printf "%-10s %12s %12s %14s\n" "servers" "encrypt" "decrypt" "ciphertext B";
  List.iter
    (fun n ->
      let pubs, pk, a, ct, updates = e5_fixture n in
      let size =
        4
        + (Array.length ct.Multi_server.us * Pairing.point_bytes prms)
        + String.length ct.Multi_server.v
      in
      let enc = ns_of results (Printf.sprintf "e5/encrypt-n%d" n) in
      let dec = ns_of results (Printf.sprintf "e5/decrypt-n%d" n) in
      let w_enc =
        alloc_words_of (fun () ->
            ignore (Multi_server.encrypt prms pubs pk ~release_time:t_label rng msg32))
      in
      let w_dec =
        alloc_words_of (fun () -> ignore (Multi_server.decrypt prms a updates ct))
      in
      record "E5"
        [ ("servers", I n); ("ns_encrypt", F enc); ("alloc_words_encrypt", F w_enc);
          ("ns_decrypt", F dec); ("alloc_words_decrypt", F w_dec);
          ("ciphertext_bytes", I size) ];
      Printf.printf "%-10d %12s %12s %14d\n" n (pp_time enc) (pp_time dec) size)
    e5_cases;
  Printf.printf
    "shape check: ciphertext grows by exactly one G1 point per server;\n\
     decryption by ~one pairing per server; collusion resistance N-1 (tested).\n"

(* =========================================================================
   E6 - self-authenticated updates (BLS) vs update + separate signature
   ========================================================================= *)

let e6_batch =
  List.init 32 (fun i ->
      let m = Printf.sprintf "epoch-%d" i in
      (m, Tre.issue_update prms srv_sec m))

let e6_tests =
  let bls_pub = { Bls.g = srv_pub.Tre.Server.g; pk = srv_pub.Tre.Server.sg } in
  let pairs = List.map (fun (m, u) -> (m, u.Tre.update_value)) e6_batch in
  Test.make_grouped ~name:"e6" ~fmt:"%s/%s"
    [
      Test.make ~name:"verify-single"
        (Staged.stage (fun () -> Tre.verify_update prms srv_pub upd));
      Test.make ~name:"verify-batch32"
        (Staged.stage (fun () -> Bls.verify_batch prms bls_pub pairs));
    ]

let e6_report results =
  heading "E6: key updates are self-authenticating BLS signatures";
  let upd_bytes = String.length (Tre.update_to_bytes prms upd) in
  let sig_bytes = Bls.signature_bytes prms in
  Printf.printf "update wire size:                   %4d bytes\n" upd_bytes;
  Printf.printf "strawman update + separate BLS sig: %4d bytes (+%d%%)\n"
    (upd_bytes + sig_bytes)
    (100 * sig_bytes / upd_bytes);
  let single = ns_of results "e6/verify-single" in
  let batch = ns_of results "e6/verify-batch32" in
  let bls_pub = { Bls.g = srv_pub.Tre.Server.g; pk = srv_pub.Tre.Server.sg } in
  let pairs = List.map (fun (m, u) -> (m, u.Tre.update_value)) e6_batch in
  let w_single = alloc_words_of (fun () -> ignore (Tre.verify_update prms srv_pub upd)) in
  let w_batch = alloc_words_of (fun () -> ignore (Bls.verify_batch prms bls_pub pairs)) in
  record "E6"
    [ ("update_bytes", I upd_bytes); ("sig_bytes", I sig_bytes);
      ("ns_verify_single", F single); ("alloc_words_verify_single", F w_single);
      ("ns_verify_batch32", F batch); ("alloc_words_verify_batch32", F w_batch);
      ("batch_speedup", F (32.0 *. single /. batch)) ];
  Printf.printf "verify single update: %12s\n" (pp_time single);
  Printf.printf "verify batch of 32:   %12s (%s/update, %.1fx faster than 32 singles)\n"
    (pp_time batch)
    (pp_time (batch /. 32.0))
    (32.0 *. single /. batch);
  Printf.printf
    "shape check: authenticity costs zero extra bytes (the update IS the\n\
     signature); same-signer batching amortizes to ~2 pairings per batch.\n"

(* =========================================================================
   E7 - no pre-established future keys: storage vs horizon
   ========================================================================= *)

let e7_report () =
  heading "E7: pre-publication storage - Rivest offline list vs TRE";
  let point = Pairing.point_bytes prms in
  Printf.printf "%-12s %-14s %18s %18s\n" "horizon" "granularity" "offline list (B)"
    "TRE future (B)";
  let day = 86400.0 in
  List.iter
    (fun (horizon_s, gran_s, label) ->
      let epochs = int_of_float (horizon_s /. gran_s) in
      record "E7"
        [ ("horizon", S label); ("granularity_s", F gran_s);
          ("offline_list_bytes", I (epochs * point)); ("tre_future_bytes", I 0) ];
      Printf.printf "%-12s %-14s %18d %18d\n" label
        (if gran_s >= day then Printf.sprintf "%.0f d" (gran_s /. day)
         else if gran_s >= 3600.0 then Printf.sprintf "%.0f h" (gran_s /. 3600.0)
         else Printf.sprintf "%.0f s" gran_s)
        (epochs * point) 0)
    [
      (day, 60.0, "1 day");
      (30.0 *. day, 60.0, "30 days");
      (365.0 *. day, 60.0, "1 year");
      (365.0 *. day, 1.0, "1 year");
      (10.0 *. 365.0 *. day, 1.0, "10 years");
    ];
  let net = Simnet.create ~seed:"e7" () in
  let tl = Timeline.create ~granularity:10.0 () in
  let off =
    Rivest_server.Offline_list.create prms ~net ~timeline:tl ~name:"off" ~seed:"s"
      ~horizon_epochs:1000
  in
  Printf.printf "implementation check (1000 epochs): %d bytes pre-published\n"
    (Rivest_server.Offline_list.prepublication_bytes off);
  Printf.printf
    "shape check: the offline list is O(horizon/granularity) and caps the\n\
     usable release times; TRE pre-publishes NOTHING (senders pick any future\n\
     T; the archive only ever holds elapsed epochs).\n"

(* =========================================================================
   E8 - interaction per decryption: COT vs TRE
   ========================================================================= *)

let e8_report () =
  heading "E8: per-decryption interaction - conditional OT vs TRE";
  Printf.printf "%-14s %10s %14s %16s\n" "time space" "rounds" "bytes/decrypt"
    "TRE rounds";
  List.iter
    (fun bits ->
      let net = Simnet.create ~seed:(Printf.sprintf "e8-%d" bits) () in
      let cot = Cot_server.create ~net ~name:"cot" ~time_parameter_bits:bits in
      Cot_server.set_current_epoch cot 100;
      Cot_server.request_decryption cot ~receiver:"r" ~release_epoch:1
        ~payload_bytes:64 ~granted:ignore;
      Simnet.run net;
      let rounds = Cot_server.rounds_per_decryption cot in
      let bytes = Simnet.total_bytes_by net "cot" + Simnet.total_bytes_by net "r" in
      record "E8"
        [ ("time_bits", I bits); ("cot_rounds", I rounds);
          ("cot_bytes_per_decrypt", I bytes); ("tre_rounds", I 0) ];
      Printf.printf "%-14s %10d %14d %16d\n"
        (Printf.sprintf "T = 2^%d" bits)
        rounds bytes 0)
    [ 10; 16; 20; 24; 32 ];
  let net = Simnet.create ~seed:"e8-dos" () in
  let cot = Cot_server.create ~net ~name:"cot" ~time_parameter_bits:20 in
  Cot_server.flood cot ~attacker:"mallory" ~queries:100;
  Simnet.run net;
  Printf.printf
    "DoS: 100 far-future queries cost the server %d protocol messages\n\
     (it cannot filter them without learning the release time); the passive\n\
     TRE server processes 0 messages under the same attack.\n"
    (Cot_server.protocol_messages cot);
  Printf.printf
    "shape check: COT interaction grows as 2*log2(T)+2 and keeps the server\n\
     online per decryption; TRE decryption is fully offline.\n"

(* =========================================================================
   E9 - key insulation overhead
   ========================================================================= *)

let e9_tests =
  Test.make_grouped ~name:"e9" ~fmt:"%s/%s"
    [
      Test.make ~name:"decrypt-with-a"
        (Staged.stage (fun () -> Tre.decrypt prms usr_sec upd tre_ct));
      Test.make ~name:"decrypt-with-epoch-key"
        (Staged.stage (fun () -> Key_insulation.decrypt prms epoch_key tre_ct));
      Test.make ~name:"derive-epoch-key"
        (Staged.stage (fun () -> Key_insulation.derive prms usr_sec upd));
    ]

let e9_report results =
  heading "E9: key insulation - epoch-key decryption vs direct secret use";
  Printf.printf "%-26s %12s %10s\n" "operation" "time/op" "words/op";
  List.iter
    (fun (n, f) ->
      let ns = ns_of results ("e9/" ^ n) in
      let w = alloc_words_of f in
      record "E9" [ ("operation", S n); ("ns", F ns); ("alloc_words", F w) ];
      Printf.printf "%-26s %12s %10s\n" n (pp_time ns) (pp_words w))
    [
      ("decrypt-with-a", fun () -> ignore (Tre.decrypt prms usr_sec upd tre_ct));
      ( "decrypt-with-epoch-key",
        fun () -> ignore (Key_insulation.decrypt prms epoch_key tre_ct) );
      ("derive-epoch-key", fun () -> ignore (Key_insulation.derive prms usr_sec upd));
    ];
  (* Exposure simulation: compromise the epoch-3 key out of 10 epochs. *)
  let epochs = List.init 10 (fun i -> Printf.sprintf "ep-%d" i) in
  let cts =
    List.map
      (fun e -> (e, Tre.encrypt prms srv_pub usr_pub ~release_time:e rng ("m@" ^ e)))
      epochs
  in
  let stolen = Key_insulation.derive prms usr_sec (Tre.issue_update prms srv_sec "ep-3") in
  let opened =
    List.filter
      (fun (_, ct) ->
        match Key_insulation.decrypt prms stolen ct with
        | m -> String.length m > 2 && String.sub m 0 2 = "m@"
        | exception Tre.Update_mismatch -> false)
      cts
  in
  Printf.printf "exposure containment: adversary with epoch-3 key opens %d/10 epochs\n"
    (List.length opened);
  Printf.printf
    "shape check: epoch-key decryption is CHEAPER than direct decryption\n\
     (one pairing, no exponentiation by a) and exposure stays confined to\n\
     the compromised epoch.\n"

(* =========================================================================
   E1b - parameter sweep (manual median timing, all three sets)
   ========================================================================= *)

let e1b_report () =
  heading "E1b: parameter sweep (median timing; q/p bits per set)";
  Printf.printf "%-24s" "operation";
  List.iter
    (fun name ->
      match Pairing.by_name name with
      | Some p ->
          Printf.printf " %16s"
            (Printf.sprintf "%s(%d/%d)" name
               (Bigint.bit_length p.Pairing.q)
               (Bigint.bit_length p.Pairing.p))
      | None -> ())
    Pairing.all_names;
  print_newline ();
  let per_set name =
    let p = Option.get (Pairing.by_name name) in
    let rng = Hashing.Drbg.create ~seed:("sweep-" ^ name) () in
    let ssec, spub = Tre.Server.keygen p rng in
    let usec, upub = Tre.User.keygen p spub rng in
    let u = Tre.issue_update p ssec t_label in
    let ct = Tre.encrypt p spub upub ~release_time:t_label rng msg32 in
    [
      ("pairing", fun () -> ignore (Pairing.pairing p p.Pairing.g p.Pairing.g));
      ( "tre-encrypt (validated)",
        fun () ->
          ignore (Tre.encrypt_prevalidated p spub upub ~release_time:t_label rng msg32) );
      ("tre-decrypt", fun () -> ignore (Tre.decrypt p usec u ct));
      ("update-generate", fun () -> ignore (Tre.issue_update p ssec t_label));
      ("update-verify", fun () -> ignore (Tre.verify_update p spub u));
    ]
  in
  let tables = List.map (fun n -> (n, per_set n)) Pairing.all_names in
  List.iter
    (fun op ->
      Printf.printf "%-24s" op;
      List.iter
        (fun (set_name, ops) ->
          let f = List.assoc op ops in
          let t, w = median_time_alloc f in
          record "E1b"
            [ ("operation", S op); ("params", S set_name); ("ns", F t);
              ("alloc_words", F w) ];
          Printf.printf " %16s" (String.trim (pp_time t)))
        tables;
      print_newline ())
    [ "pairing"; "tre-encrypt (validated)"; "tre-decrypt"; "update-generate";
      "update-verify" ];
  Printf.printf
    "shape check: costs grow with field size (quadratic limb work per\n\
     multiplication x linear loop length), uniformly across operations.\n\
     The *b columns (y^2 = x^3 + 1 family) run the reference affine Miller\n\
     loop with denominators - the gap to the same-size y^2 = x^3 + x\n\
     column is what denominator elimination + Jacobian coordinates buy.\n"

(* =========================================================================
   E1-opt - precomputation & windowing: reference vs optimized hot paths
   ========================================================================= *)

(* Each row pits the straightforward reference algorithm against the
   precomputed/windowed one that the schemes actually run, and asserts the
   two return the SAME value before timing anything — a speedup that
   changes the answer is a bug, not an optimization. *)
type opt_row = {
  row_name : string;
  reference : unit -> unit;
  optimized : unit -> unit;
  agree : unit -> bool;
}

let e1opt_rows () =
  let curve = prms.Pairing.curve in
  let g = prms.Pairing.g in
  let fp = prms.Pairing.fp in
  let rng = Hashing.Drbg.create ~seed:"e1opt" () in
  let k = Pairing.random_scalar prms rng in
  let table = Lazy.force prms.Pairing.g_table in
  let g_prep = Lazy.force prms.Pairing.g_prep in
  let h = Pairing.hash_to_g1 prms "e1opt-variable-base" in
  (* Field/bigint fixtures at the size actually in play (256-bit p). *)
  let n = Bigint.magnitude prms.Pairing.p in
  let mont = Modarith.Mont.create prms.Pairing.p in
  let mbase = Modarith.Mont.of_bigint mont (Bigint.of_int 0xC0FFEE) in
  let e = Bigint.pred prms.Pairing.p in
  let a2 = Fp2.make ~re:(Fp.of_int fp 7) ~im:(Fp.of_int fp 11) in
  let verifier = Tre.make_verifier prms srv_pub in
  let enc = Tre.Encryptor.create prms srv_pub usr_pub in
  (* Warm the per-release-time cache so the timed loop measures the
     steady state (every encryption after the first to the same T). *)
  ignore (Tre.Encryptor.encrypt enc ~release_time:t_label rng msg32);
  [
    {
      row_name = "scalar-mult fixed-base";
      reference = (fun () -> ignore (Curve.mul_double_add curve k g));
      optimized = (fun () -> ignore (Curve.Table.mul table k));
      agree =
        (fun () ->
          Curve.equal (Curve.mul_double_add curve k g) (Curve.Table.mul table k));
    };
    {
      row_name = "scalar-mult variable-base";
      reference = (fun () -> ignore (Curve.mul_double_add curve k h));
      optimized = (fun () -> ignore (Curve.mul curve k h));
      agree =
        (fun () -> Curve.equal (Curve.mul_double_add curve k h) (Curve.mul curve k h));
    };
    {
      row_name = "mont-pow 255-bit exp";
      reference = (fun () -> ignore (Modarith.Mont.pow_binary mont mbase e));
      optimized = (fun () -> ignore (Modarith.Mont.pow mont mbase e));
      agree =
        (fun () ->
          Modarith.Mont.equal
            (Modarith.Mont.pow_binary mont mbase e)
            (Modarith.Mont.pow mont mbase e));
    };
    {
      row_name = "fp2-pow (GT exponent)";
      reference = (fun () -> ignore (Fp2.pow_binary fp a2 e));
      optimized = (fun () -> ignore (Fp2.pow fp a2 e));
      agree = (fun () -> Fp2.equal (Fp2.pow_binary fp a2 e) (Fp2.pow fp a2 e));
    };
    {
      row_name = "nat-sqr 256-bit";
      reference = (fun () -> ignore (Nat.mul n n));
      optimized = (fun () -> ignore (Nat.sqr n));
      agree = (fun () -> Nat.equal (Nat.mul n n) (Nat.sqr n));
    };
    {
      row_name = "pairing (prepared G)";
      reference = (fun () -> ignore (Pairing.pairing prms g h));
      optimized = (fun () -> ignore (Pairing.pairing_prepared prms g_prep h));
      agree =
        (fun () ->
          Fp2.equal (Pairing.pairing prms g h) (Pairing.pairing_prepared prms g_prep h));
    };
    {
      row_name = "update-verify";
      reference = (fun () -> ignore (Tre.verify_update prms srv_pub upd));
      optimized = (fun () -> ignore (Tre.verify_update_with prms verifier upd));
      agree =
        (fun () ->
          Tre.verify_update prms srv_pub upd && Tre.verify_update_with prms verifier upd);
    };
    {
      row_name = "tre-encrypt (same T)";
      reference =
        (fun () -> ignore (Tre.encrypt prms srv_pub usr_pub ~release_time:t_label rng msg32));
      optimized = (fun () -> ignore (Tre.Encryptor.encrypt enc ~release_time:t_label rng msg32));
      agree =
        (fun () ->
          (* Same-seeded DRBGs draw the same r, so the two paths must
             produce bit-identical ciphertexts. *)
          let r1 = Hashing.Drbg.create ~seed:"e1opt-enc" () in
          let r2 = Hashing.Drbg.create ~seed:"e1opt-enc" () in
          Tre.ciphertext_to_bytes prms
            (Tre.encrypt prms srv_pub usr_pub ~release_time:t_label r1 msg32)
          = Tre.ciphertext_to_bytes prms
              (Tre.Encryptor.encrypt enc ~release_time:t_label r2 msg32));
    };
  ]

let e1opt_check rows =
  List.iter
    (fun r ->
      if not (r.agree ()) then
        failwith (Printf.sprintf "E1-opt: %s: optimized path disagrees with reference"
                    r.row_name))
    rows

let e1opt_report () =
  heading "E1-opt: precomputation & windowing - reference vs optimized (mid128)";
  let rows = e1opt_rows () in
  e1opt_check rows;
  Printf.printf "%-26s %12s %12s %9s\n" "operation" "reference" "optimized" "speedup";
  List.iter
    (fun r ->
      let t_ref, w_ref = median_time_alloc r.reference
      and t_opt, w_opt = median_time_alloc r.optimized in
      record "E1opt"
        [ ("operation", S r.row_name); ("ns_reference", F t_ref);
          ("alloc_words_reference", F w_ref); ("ns_optimized", F t_opt);
          ("alloc_words_optimized", F w_opt); ("speedup", F (t_ref /. t_opt)) ];
      Printf.printf "%-26s %12s %12s %8.2fx\n" r.row_name (pp_time t_ref) (pp_time t_opt)
        (t_ref /. t_opt))
    rows;
  Printf.printf
    "shape check: every optimized path returns bit-identical results\n\
     (asserted above); fixed-base mult amortizes all doublings into the\n\
     one-time table, prepared pairings skip the first-argument point\n\
     arithmetic, and the encryptor cache removes the pairing entirely\n\
     from repeat encryptions to the same release time.\n"

(* [--smoke]: assert agreement and print one stable OK line per row (the
   ratio is masked by the cram test; it is printed for humans only). *)
let e1opt_smoke () =
  Printf.printf "E1-opt smoke: optimized vs reference at mid128\n";
  let rows = e1opt_rows () in
  e1opt_check rows;
  List.iter
    (fun r ->
      let t_ref = median_time r.reference and t_opt = median_time r.optimized in
      Printf.printf "%-26s OK (%.2fx)\n" r.row_name (t_ref /. t_opt))
    rows;
  Printf.printf "all optimized paths agree with reference\n"

(* =========================================================================
   E1-kernel - fixed-limb in-place kernels vs the generic Mont reference
   ========================================================================= *)

(* Each row pits the variable-length generic path (Modarith.Mont, or the
   functional curve/pairing formulas built on it in spirit) against the
   fixed-limb in-place kernel path the schemes now run, asserts
   bit-identity first, then reports time AND allocated words per op for
   both. The end-to-end scheme rows have no surviving reference variant
   (the kernels are wired under everything), so they report the kernel
   column only — their trajectory across PRs lives in the JSON dump. *)
type kernel_row = {
  krow_name : string;
  kref : (unit -> unit) option;
  kker : unit -> unit;
  kagree : unit -> bool;
}

let e1kernel_sets = [ "toy64"; "toy64b"; "mid128"; "mid128b"; "std160" ]

let e1kernel_rows set_name =
  let p = Option.get (Pairing.by_name set_name) in
  let fp = p.Pairing.fp in
  let curve = p.Pairing.curve in
  let g = p.Pairing.g in
  let rng = Hashing.Drbg.create ~seed:("e1k-" ^ set_name) () in
  let mont = Modarith.Mont.create p.Pairing.p in
  let rand_elt () =
    Bigint.erem
      (Bigint.of_bytes_be (Hashing.Drbg.generate rng (Fp.byte_length fp + 3)))
      p.Pairing.p
  in
  (* A deterministic non-generator first argument for the Miller-loop
     row, so it measures the plain NAF kernel loop rather than the
     generator fast-path through the prepared schedule (the "pairing"
     row already covers that path). *)
  let pm = Pairing.mul_g p (Bigint.of_int 12345) in
  let mv = Pairing.miller_loop_ref p g g in
  let xb = rand_elt () and yb = rand_elt () in
  let xk = Fp.of_bigint fp xb and yk = Fp.of_bigint fp yb in
  let xm = Modarith.Mont.of_bigint mont xb
  and ym = Modarith.Mont.of_bigint mont yb in
  let dst = Fp.Mut.alloc fp in
  let steps = 64 in
  let srng = Hashing.Drbg.create ~seed:("e1k-tre-" ^ set_name) () in
  let ssec, spub = Tre.Server.keygen p srng in
  let usec, upub = Tre.User.keygen p spub srng in
  let u = Tre.issue_update p ssec t_label in
  let ct = Tre.encrypt p spub upub ~release_time:t_label srng msg32 in
  (* The paper's client-side update verification e(sG, H1(T)) = e(G, I_T),
     in both shapes: two separate prepared kernel pairings compared in GT
     (the pre-product best path) vs one interleaved Miller product with
     the GF(p)-membership decision. *)
  let h_t = Pairing.hash_to_g1 p t_label in
  let iv = u.Tre.update_value in
  let iv_bad = Curve.add curve iv g in
  let vsg = Pairing.prepare p spub.Tre.Server.sg in
  let vg = Pairing.prepare p spub.Tre.Server.g in
  let separate_says pt =
    Pairing.gt_equal
      (Pairing.pairing_prepared p vsg h_t)
      (Pairing.pairing_prepared p vg pt)
  in
  let product_says pt =
    Pairing.check_product_one_mixed p
      [ (Pairing.Prepared vsg, h_t);
        (Pairing.Prepared vg, Curve.neg curve pt) ]
  in
  [
    {
      krow_name = "field-mul";
      kref = Some (fun () -> ignore (Modarith.Mont.mul mont xm ym));
      kker = (fun () -> Fp.Mut.mul_into fp dst xk yk);
      kagree =
        (fun () ->
          Bigint.equal
            (Modarith.Mont.to_bigint mont (Modarith.Mont.mul mont xm ym))
            (Fp.to_bigint fp (Fp.mul fp xk yk)));
    };
    {
      krow_name = "field-sqr";
      kref = Some (fun () -> ignore (Modarith.Mont.sqr mont xm));
      kker = (fun () -> Fp.Mut.sqr_into fp dst xk);
      kagree =
        (fun () ->
          Bigint.equal
            (Modarith.Mont.to_bigint mont (Modarith.Mont.sqr mont xm))
            (Fp.to_bigint fp (Fp.sqr fp xk)));
    };
    {
      krow_name = "field-inv";
      kref = Some (fun () -> ignore (Modarith.Mont.inv mont xm));
      kker = (fun () -> ignore (Fp.inv fp xk));
      kagree =
        (fun () ->
          Bigint.equal
            (Modarith.Mont.to_bigint mont (Modarith.Mont.inv mont xm))
            (Fp.to_bigint fp (Fp.inv fp xk)));
    };
    {
      krow_name = Printf.sprintf "curve-steps (%d dbl+add)" steps;
      kref = Some (fun () -> ignore (Curve.jac_steps_ref curve g steps));
      kker = (fun () -> ignore (Curve.jac_steps_kernel curve g steps));
      kagree =
        (fun () ->
          Curve.equal
            (Curve.jac_steps_ref curve g steps)
            (Curve.jac_steps_kernel curve g steps));
    };
    {
      krow_name = "pairing";
      kref = Some (fun () -> ignore (Pairing.pairing_ref p g g));
      kker = (fun () -> ignore (Pairing.pairing p g g));
      kagree =
        (fun () -> Fp2.equal (Pairing.pairing_ref p g g) (Pairing.pairing p g g));
    };
    {
      krow_name = "miller-loop";
      kref = Some (fun () -> ignore (Pairing.miller_loop_ref p pm g));
      kker = (fun () -> ignore (Pairing.miller_loop p pm g));
      kagree =
        (fun () ->
          (* Raw Miller values differ by GF(p)* factors between the two
             schedules; agreement is defined after final exponentiation. *)
          Fp2.equal
            (Pairing.final_exponentiation_ref p (Pairing.miller_loop_ref p pm g))
            (Pairing.final_exponentiation_ref p (Pairing.miller_loop p pm g)));
    };
    {
      krow_name = "final-exp";
      kref = Some (fun () -> ignore (Pairing.final_exponentiation_ref p mv));
      kker = (fun () -> ignore (Pairing.final_exponentiation p mv));
      kagree =
        (fun () ->
          Fp2.equal
            (Pairing.final_exponentiation_ref p mv)
            (Pairing.final_exponentiation p mv));
    };
    {
      krow_name = "verify-2pair";
      kref = Some (fun () -> ignore (separate_says iv));
      kker = (fun () -> ignore (product_says iv));
      kagree =
        (fun () ->
          (* Same verdicts as two full pairings, on the honest update AND
             a tampered one — the product-vs-separate agreement assert. *)
          product_says iv && separate_says iv
          && (not (product_says iv_bad))
          && not (separate_says iv_bad));
    };
    {
      krow_name = "tre-encrypt";
      kref = None;
      kker =
        (fun () ->
          ignore
            (Tre.encrypt_prevalidated p spub upub ~release_time:t_label srng msg32));
      kagree = (fun () -> true);
    };
    {
      krow_name = "tre-decrypt";
      kref = None;
      kker = (fun () -> ignore (Tre.decrypt p usec u ct));
      kagree = (fun () -> true);
    };
  ]

let e1kernel_check rows =
  List.iter
    (fun r ->
      if not (r.kagree ()) then
        failwith
          (Printf.sprintf "E1-kernel: %s: kernel path disagrees with reference"
             r.krow_name))
    rows

let e1kernel_report () =
  heading "E1-kernel: fixed-limb in-place kernels vs generic Mont reference";
  let kernel_rows = ref [] in
  List.iter
    (fun set_name ->
      let rows = e1kernel_rows set_name in
      e1kernel_check rows;
      Printf.printf "\n[%s]\n" set_name;
      Printf.printf "%-26s %12s %9s %12s %9s %9s\n" "operation" "reference"
        "ref w/op" "kernel" "ker w/op" "speedup";
      List.iter
        (fun r ->
          let (t_ref, w_ref), (t_ker, w_ker) =
            match r.kref with
            | Some f -> paired_time_alloc f r.kker
            | None -> ((nan, nan), median_time_alloc r.kker)
          in
          let fields =
            [ ("params", S set_name); ("operation", S r.krow_name);
              ("ns_reference", F t_ref); ("alloc_words_reference", F w_ref);
              ("ns_kernel", F t_ker); ("alloc_words_kernel", F w_ker);
              ("speedup", F (t_ref /. t_ker)) ]
          in
          record "E1-kernel" fields;
          kernel_rows := ("E1-kernel", fields) :: !kernel_rows;
          match r.kref with
          | Some _ ->
              Printf.printf "%-26s %12s %9s %12s %9s %8.2fx\n" r.krow_name
                (pp_time t_ref) (pp_words w_ref) (pp_time t_ker)
                (pp_words w_ker) (t_ref /. t_ker)
          | None ->
              Printf.printf "%-26s %12s %9s %12s %9s %9s\n" r.krow_name "-" "-"
                (pp_time t_ker) (pp_words w_ker) "-")
        rows)
    e1kernel_sets;
  write_json "BENCH_E1_KERNEL.json" (List.rev !kernel_rows);
  Printf.printf "\nwrote %d rows to BENCH_E1_KERNEL.json\n"
    (List.length !kernel_rows);
  Printf.printf
    "shape check: the in-place product-scanning kernel multiplies >=2x faster at\n\
     mid128 with ~zero allocated words/op (the generic reference pays\n\
     scratch + Array.sub copies + a normalization pass per call); the\n\
     gap compounds up the stack through the curve step and the Miller\n\
     loop into the end-to-end scheme operations. The miller-loop and\n\
     final-exp rows split the pairing: the NAF kernel loop wins the\n\
     Miller half, the cyclotomic window the exponentiation, and the\n\
     full-pairing row adds the generator fast-path on top (the >=2x\n\
     std160 target of the pairing-gap PR). The verify-2pair row is the\n\
     product kernel: the paper's two-pairing update verification as ONE\n\
     interleaved Miller loop with a shared squaring chain and the GF(p)\n\
     membership decision in place of any final exponentiation — >=1.4x\n\
     over two separate prepared kernel pairings at mid128 and std160\n\
     (tools/bench_guard.ml holds these ratios as CI floors).\n"

(* [--smoke]: bit-identity of every kernel path against the generic
   reference, across all five named parameter sets. *)
let e1kernel_smoke () =
  Printf.printf "E1-kernel smoke: in-place kernels vs generic reference\n";
  List.iter
    (fun set_name ->
      let rows = e1kernel_rows set_name in
      e1kernel_check rows;
      Printf.printf "kernel-vs-ref %-12s OK\n" set_name)
    e1kernel_sets;
  Printf.printf "all kernel paths agree with the generic reference\n"

(* --- E14: verifiable pairing delegation — thin client vs on-device ---

   Client-side cost of outsourcing pairings to two untrusted helpers
   (Delegate, hardened Liu-Cao-resistant check) against computing the
   same result on-device with the kernel pairing stack. The helpers run
   in-process; their serve time — and the offline blinding-tuple
   generation — accumulates on an instrumented clock and is subtracted
   INSIDE each sample window, so the client rows measure exactly the
   thin client's online arithmetic (wrap, unwrap, the membership and
   secret-exponent cross-run checks), not helper or precompute work.
   Reference and client batches alternate as in [paired_time_alloc].

   Before any timing, each set runs the forgery gate: the Liu-Cao
   mu-shift MUST pass the published check (that bug is a reproduction
   target, pinned here and in test_delegate.ml) and MUST be rejected by
   the hardened check. A bench run on a build where either direction
   flipped dies instead of reporting numbers for a broken protocol. *)

let e14_paired_client ?(samples = 5) ~subtract fref fker =
  let calibrate f =
    ignore (f ());
    let t0 = Sys.time () in
    ignore (f ());
    let once = Stdlib.max 1e-7 (Sys.time () -. t0) in
    Stdlib.max 1 (int_of_float (0.02 /. once))
  in
  let iref = calibrate fref in
  let iker = calibrate fker in
  let one_ref () =
    let t0 = Sys.time () in
    for _ = 1 to iref do
      ignore (fref ())
    done;
    (Sys.time () -. t0) /. float_of_int iref
  in
  let one_ker () =
    let s0 = !subtract in
    let t0 = Sys.time () in
    for _ = 1 to iker do
      ignore (fker ())
    done;
    (Sys.time () -. t0 -. (!subtract -. s0)) /. float_of_int iker
  in
  let sref = ref [] and sker = ref [] in
  for _ = 1 to samples do
    sref := one_ref () :: !sref;
    sker := one_ker () :: !sker
  done;
  let best l = List.fold_left Stdlib.min infinity l *. 1e9 in
  (best !sref, best !sker)

let e14_forgery_gate p dctx drbg =
  let a = Pairing.mul_g p (Pairing.random_scalar p drbg) in
  let b = Pairing.mul_g p (Pairing.random_scalar p drbg) in
  let expected = Pairing.pairing p a b in
  let mu =
    Pairing.gt_pow p (Pairing.pairing p p.Pairing.g p.Pairing.g)
      (Bigint.of_int 271829)
  in
  let evil q =
    let r = Delegate.serve p q in
    r.(0) <- Pairing.gt_mul p r.(0) mu;
    r
  in
  let honest q = Delegate.serve p q in
  (match
     Delegate.pair dctx ~mode:Delegate.Published drbg ~helper1:evil
       ~helper2:honest ~a ~b
   with
  | Ok v when Pairing.gt_equal v (Pairing.gt_mul p expected mu) -> ()
  | Ok _ -> failwith "E14: forgery produced an unexpected value"
  | Error _ ->
      failwith
        "E14: published check rejected the Liu-Cao forgery (it must accept)");
  match
    Delegate.pair dctx ~mode:Delegate.Hardened drbg ~helper1:evil ~helper2:honest
      ~a ~b
  with
  | Ok _ -> failwith "E14: hardened check accepted the Liu-Cao forgery"
  | Error _ -> ()

let e14delegate_report () =
  heading "E14: pairing delegation — thin-client outsourcing vs on-device";
  let e14_rows = ref [] in
  let emit set_name op t_ref t_ker =
    let fields =
      [ ("params", S set_name); ("operation", S op); ("ns_reference", F t_ref);
        ("ns_kernel", F t_ker); ("speedup", F (t_ref /. t_ker)) ]
    in
    record "E14-delegate" fields;
    e14_rows := ("E14-delegate", fields) :: !e14_rows;
    if Float.is_nan t_ref then
      Printf.printf "%-26s %12s %12s %9s\n" op "-" (pp_time t_ker) "-"
    else
      Printf.printf "%-26s %12s %12s %8.2fx\n" op (pp_time t_ref) (pp_time t_ker)
        (t_ref /. t_ker)
  in
  List.iter
    (fun set_name ->
      let p =
        match Pairing.by_name set_name with
        | Some p -> p
        | None -> failwith ("E14: unknown set " ^ set_name)
      in
      let dctx = Delegate.make p in
      let drbg = Hashing.Drbg.create ~seed:("e14|" ^ set_name) () in
      e14_forgery_gate p dctx drbg;
      Printf.printf "\n[%s]  forgery gate: published accepts, hardened rejects\n"
        set_name;
      Printf.printf "%-26s %12s %12s %9s\n" "operation" "on-device" "client"
        "speedup";
      let a = Pairing.mul_g p (Pairing.random_scalar p drbg) in
      let b = Pairing.mul_g p (Pairing.random_scalar p drbg) in
      (* everything on [clock] is NOT client online work *)
      let clock = ref 0.0 in
      let timed_serve q =
        let t0 = Sys.time () in
        let r = Delegate.serve p q in
        clock := !clock +. (Sys.time () -. t0);
        r
      in
      let blinds () =
        let t0 = Sys.time () in
        let bls = (Delegate.blind dctx drbg, Delegate.blind dctx drbg) in
        clock := !clock +. (Sys.time () -. t0);
        bls
      in
      (* raw pairing: on-device kernel vs delegated (hardened) *)
      let tr, tk =
        e14_paired_client ~subtract:clock
          (fun () -> Pairing.pairing p a b)
          (fun () ->
            match
              Delegate.pair dctx ~mode:Delegate.Hardened ~blindings:(blinds ())
                drbg ~helper1:timed_serve ~helper2:timed_serve ~a ~b
            with
            | Ok v -> v
            | Error e -> failwith ("E14 delegated pair: " ^ e))
      in
      emit set_name "delegate-pair-client" tr tk;
      (* the scheme's verification equation: prepared 2-pair product
         kernel on-device vs two delegated wraps (c folded into the
         cofactor clearing) *)
      let srv_sec14, srv_pub14 = Tre.Server.keygen p drbg in
      let vrf = Tre.Verifier.create p srv_pub14 in
      let upd14 = Tre.issue_update p srv_sec14 "e14-epoch" in
      let tr, tk =
        e14_paired_client ~subtract:clock
          (fun () ->
            if not (Tre.verify_update_with p vrf upd14) then
              failwith "E14: on-device verify rejected a valid update")
          (fun () ->
            if
              not
                (Tre.Verifier.verify_update_delegated p vrf
                   ~blindings:(blinds ()) drbg ~helper1:timed_serve
                   ~helper2:timed_serve upd14)
            then failwith "E14: delegated verify rejected a valid update")
      in
      emit set_name "delegate-verify" tr tk;
      (* offline phase: one delegated operation's worth of tuples *)
      let t_off =
        median_time (fun () ->
            (Delegate.blind dctx drbg, Delegate.blind dctx drbg))
      in
      emit set_name "delegate-offline (2 tuples)" nan t_off;
      (* helper-side work for one wrap (its 2 + 3 query slots) *)
      let w = Delegate.wrap dctx (Delegate.blind dctx drbg) ~a ~b in
      let q1 = Delegate.queries1 w and q2 = Delegate.queries2 w in
      let t_helper =
        median_time (fun () -> (Delegate.serve p q1, Delegate.serve p q2))
      in
      emit set_name "delegate-helper (1 wrap)" nan t_helper)
    e1kernel_sets;
  write_json "BENCH_E14_DELEGATE.json" (List.rev !e14_rows);
  Printf.printf "\nwrote %d rows to BENCH_E14_DELEGATE.json\n"
    (List.length !e14_rows);
  Printf.printf
    "shape check: delegate-pair-client is the thin client's ONLINE cost of\n\
     one outsourced pairing under the hardened check (helper serve time\n\
     and offline blinding excluded). It wins from toy64b up and most\n\
     clearly on the sparse-order sets (mid128b ~2x, std160 ~1.5x), where\n\
     the avoided Miller loop is expensive relative to the check's GT\n\
     work. delegate-verify is the deployed shape — the whole two-pairing\n\
     update verification as two wraps, the secret exponent folded into\n\
     cofactor clearing — and sits at parity or better everywhere except\n\
     toy64; its client cost is dominated by the two full-width GT\n\
     membership exponentiations the hardened check needs for soundness\n\
     against non-subgroup shifts. tools/bench_guard.ml floors every row\n\
     pair (lenient on the toys, where losing is the honest result).\n"

(* [--smoke] for the batch/parallel layer: every batched or pool-sharded
   path must agree EXACTLY with its serial reference — same verdicts, same
   bytes, same network trace. One stable OK line per check (cram-tested). *)
let batch_smoke () =
  Printf.printf "Batch/parallel smoke: 2-domain pool vs serial\n";
  let pool = Pool.create ~domains:2 () in
  let xs = List.init 1000 Fun.id in
  let f x = (x * x) + 7 in
  assert (Pool.map pool f xs = List.map f xs);
  assert (Pool.map pool f [] = [] && Pool.map pool f [ 3 ] = [ f 3 ]);
  Printf.printf "%-26s OK\n" "pool-map determinism";
  let verifier = Tre.make_verifier prms srv_pub in
  let updates =
    List.init 8 (fun i -> Tre.issue_update prms srv_sec (Printf.sprintf "smoke-ep-%d" i))
  in
  let forged =
    match updates with
    | u :: rest -> { u with Tre.update_value = prms.Pairing.g } :: rest
    | [] -> []
  in
  assert (List.for_all (Tre.verify_update_with prms verifier) updates);
  assert (Tre.Verifier.verify_updates prms verifier updates);
  assert (Tre.Verifier.verify_updates ~pool prms verifier updates);
  assert (not (Tre.Verifier.verify_updates prms verifier forged));
  assert (not (Tre.Verifier.verify_updates ~pool prms verifier forged));
  Printf.printf "%-26s OK\n" "verify-updates batch";
  let bls_pub = { Bls.g = srv_pub.Tre.Server.g; pk = srv_pub.Tre.Server.sg } in
  let pairs = List.map (fun u -> (u.Tre.update_time, u.Tre.update_value)) updates in
  assert (Bls.verify_batch prms bls_pub pairs);
  assert (Bls.verify_batch ~pool prms bls_pub pairs);
  let poisoned = ("smoke-ep-0", prms.Pairing.g) :: List.tl pairs in
  assert (not (Bls.verify_batch prms bls_pub poisoned));
  assert (not (Bls.verify_batch ~pool prms bls_pub poisoned));
  Printf.printf "%-26s OK\n" "bls-verify-batch";
  let cts =
    List.map
      (fun u ->
        ( u,
          Tre.encrypt_prevalidated prms srv_pub usr_pub
            ~release_time:u.Tre.update_time rng msg32 ))
      updates
  in
  let serial_pts = List.map (fun (u, ct) -> Tre.decrypt prms usr_sec u ct) cts in
  assert (Tre.decrypt_batch ~pool prms usr_sec cts = serial_pts);
  Printf.printf "%-26s OK\n" "tre-decrypt-batch";
  (* Same seed, serial vs pooled delivery: trace and plaintexts must be
     identical (delivery timestamps legitimately differ — the pooled drain
     collapses per-recipient jitter, see Simnet.broadcast). *)
  let run_sim pool =
    let net = Simnet.create ~seed:"smoke-drain" ~loss:0.2 () in
    let tl = Timeline.create ~granularity:10.0 () in
    let server = Passive_server.create toy ~net ~timeline:tl ~name:"server" in
    let clients =
      List.init 8 (fun i ->
          Client.create toy ~net ~server:(Passive_server.public server)
            ~name:(Printf.sprintf "c%d" i))
    in
    List.iter
      (fun c ->
        Client.enqueue_ciphertext c
          (Tre.encrypt toy (Passive_server.public server) (Client.public_key c)
             ~release_time:(Timeline.label tl 1) (Simnet.rng net) "drain"))
      clients;
    Passive_server.start ?pool server ~net ~first_epoch:1 ~epochs:2
      ~recipients:(List.map (fun c -> (Client.name c, Client.on_wire c)) clients);
    Simnet.run net;
    ( Simnet.trace net,
      List.map
        (fun c ->
          List.map
            (fun d -> (d.Client.plaintext, d.Client.release_label))
            (Client.deliveries c))
        clients )
  in
  let trace_s, deliv_s = run_sim None in
  let trace_p, deliv_p = run_sim (Some pool) in
  assert (trace_s = trace_p);
  assert (deliv_s = deliv_p);
  assert (List.exists (fun ds -> ds <> []) deliv_s);
  Printf.printf "%-26s OK\n" "simnet parallel drain";
  Pool.shutdown pool;
  Printf.printf "all parallel paths agree with serial\n"

(* =========================================================================
   A1 - ablation: implementation choices (pairing products)
   ========================================================================= *)

let a1_report () =
  heading "A1 (ablation): shared final exponentiation in verification";
  let naive_verify () =
    (* The pre-optimization verification: two full pairings compared. *)
    ignore
      (Pairing.gt_equal
         (Pairing.pairing prms srv_pub.Tre.Server.sg
            (Pairing.hash_to_g1 prms upd.Tre.update_time))
         (Pairing.pairing prms srv_pub.Tre.Server.g upd.Tre.update_value))
  in
  let h1t = Pairing.hash_to_g1 prms upd.Tre.update_time in
  let naive_eq () =
    ignore
      (Pairing.gt_equal
         (Pairing.pairing prms srv_pub.Tre.Server.sg h1t)
         (Pairing.pairing prms srv_pub.Tre.Server.g upd.Tre.update_value))
  in
  let product_verify () =
    ignore
      (Pairing.pairing_equal_check prms
         ~lhs:(srv_pub.Tre.Server.sg, h1t)
         ~rhs:(srv_pub.Tre.Server.g, upd.Tre.update_value))
  in
  ignore naive_verify;
  let naive_verify = naive_eq in
  let t_naive, w_naive = median_time_alloc naive_verify
  and t_prod, w_prod = median_time_alloc product_verify in
  record "A1"
    [ ("operation", S "update-verify"); ("ns_naive", F t_naive);
      ("alloc_words_naive", F w_naive); ("ns_product", F t_prod);
      ("alloc_words_product", F w_prod); ("speedup", F (t_naive /. t_prod)) ];
  Printf.printf "update verification:  2 pairings %s | product+1 final-exp %s (%.2fx)\n"
    (String.trim (pp_time t_naive))
    (String.trim (pp_time t_prod))
    (t_naive /. t_prod);
  let _, _, a4, ct4, upds4 = e5_fixture 4 in
  let naive_ms () =
    let scalar = Tre.User.secret_to_scalar a4 in
    let k =
      List.fold_left
        (fun (acc, i) (u : Tre.update) ->
          ( Pairing.gt_mul prms acc
              (Pairing.gt_pow prms
                 (Pairing.pairing prms ct4.Multi_server.us.(i) u.Tre.update_value)
                 scalar),
            i + 1 ))
        (Pairing.gt_one prms, 0)
        upds4
      |> fst
    in
    ignore
      (Hashing.Kdf.xor ct4.Multi_server.v
         (Pairing.h2 prms k (String.length ct4.Multi_server.v)))
  in
  let product_ms () = ignore (Multi_server.decrypt prms a4 upds4 ct4) in
  let t_naive, w_naive = median_time_alloc naive_ms
  and t_prod, w_prod = median_time_alloc product_ms in
  record "A1"
    [ ("operation", S "multi-server-decrypt-n4"); ("ns_naive", F t_naive);
      ("alloc_words_naive", F w_naive); ("ns_product", F t_prod);
      ("alloc_words_product", F w_prod); ("speedup", F (t_naive /. t_prod)) ];
  Printf.printf "multi-server dec n=4: 4 pairings %s | product form       %s (%.2fx)\n"
    (String.trim (pp_time t_naive))
    (String.trim (pp_time t_prod))
    (t_naive /. t_prod)

(* =========================================================================
   E10 - multicore batch engine: batched + parallel verification & decryption
   ========================================================================= *)

let e10_batch_n = if quick then 16 else 32

let e10_report () =
  heading
    (Printf.sprintf "E10: multicore batch engine (mid128, batch of %d, host cores: %d)"
       e10_batch_n (Pool.recommended ()));
  let verifier = Tre.make_verifier prms srv_pub in
  let updates =
    List.init e10_batch_n (fun i ->
        Tre.issue_update prms srv_sec (Printf.sprintf "e10-epoch-%d" i))
  in
  let n = float_of_int e10_batch_n in
  (* Correctness before timing: the batched verdict must agree with
     per-item verification, and one forged update must poison the batch. *)
  assert (List.for_all (Tre.verify_update_with prms verifier) updates);
  assert (Tre.Verifier.verify_updates prms verifier updates);
  let forged =
    match updates with
    | u :: rest ->
        { u with
          Tre.update_value =
            Curve.add prms.Pairing.curve u.Tre.update_value prms.Pairing.g }
        :: rest
    | [] -> []
  in
  assert (not (Tre.Verifier.verify_updates prms verifier forged));
  let e10_rows = ref [] in
  let t_serial, w_serial =
    median_time_alloc ~samples:11 (fun () ->
        ignore (List.for_all (Tre.verify_update_with prms verifier) updates))
  in
  Printf.printf "%-22s %8s %13s %13s %9s\n" "verify mode" "domains" "time/batch"
    "updates/s" "speedup";
  let row mode domains (t, w) =
    let fields =
      [ ("mode", S mode); ("domains", S domains); ("batch", I e10_batch_n);
        ("ns_per_batch", F t); ("alloc_words_per_batch", F w);
        ("updates_per_sec", F (n /. (t /. 1e9)));
        ("speedup_vs_serial", F (t_serial /. t)) ]
    in
    record "E10" fields;
    e10_rows := ("E10", fields) :: !e10_rows;
    Printf.printf "%-22s %8s %13s %13.1f %8.2fx\n" mode domains (pp_time t)
      (n /. (t /. 1e9)) (t_serial /. t)
  in
  (* Context row: what a verifier WITHOUT prepared pairings pays (the
     plain public API). The speedup column stays anchored to the
     stronger prepared-serial baseline below. *)
  row "serial (cold verifier)" "-"
    (median_time_alloc ~samples:11 (fun () ->
         ignore (List.for_all (Tre.verify_update prms srv_pub) updates)));
  row "serial per-item" "-" (t_serial, w_serial);
  row "batched (2 pairings)" "-"
    (median_time_alloc ~samples:11 (fun () ->
         ignore (Tre.Verifier.verify_updates prms verifier updates)));
  List.iter
    (fun d ->
      let pool = Pool.create ~domains:d () in
      (* The pooled verdict must be the serial one, for good and forged
         batches alike, before its timing means anything. *)
      assert (Tre.Verifier.verify_updates ~pool prms verifier updates);
      assert (not (Tre.Verifier.verify_updates ~pool prms verifier forged));
      row "batched + pool" (string_of_int d)
        (median_time_alloc ~samples:11 (fun () ->
             ignore (Tre.Verifier.verify_updates ~pool prms verifier updates)));
      Pool.shutdown pool)
    [ 1; 2; 4; 8 ];
  (* Oversubscribed rows BOUND the cost of lanes beyond the core count
     instead of asserting it: same batch, cap lifted, so the slowdown
     relative to the capped rows above is the measured GC-handshake tax. *)
  List.iter
    (fun d ->
      let pool = Pool.create ~domains:d ~oversubscribe:true () in
      assert (Tre.Verifier.verify_updates ~pool prms verifier updates);
      row "batched + oversub" (string_of_int d)
        (median_time_alloc ~samples:11 (fun () ->
             ignore (Tre.Verifier.verify_updates ~pool prms verifier updates)));
      Pool.shutdown pool)
    [ 2; 4 ];
  (* Scheduling evidence (replaces the old "unproven on a 1-core host"
     caveat): Pool.stats counts the chunks and items each lane actually
     retired, so the JSON records whether the batch truly spread across
     domains — on a 1-core host every item lands on lane 0 and the pool
     rows above are READ as overhead-free fallback, not as scaling. *)
  Printf.printf "\n%-22s %8s %13s %22s\n" "scheduling" "domains" "par.batches"
    "items per lane";
  let sched_row mode pool reps =
    Pool.reset_stats pool;
    for _ = 1 to reps do
      ignore (Tre.Verifier.verify_updates ~pool prms verifier updates)
    done;
    let st = Pool.stats pool in
    let lanes =
      String.concat ","
        (Array.to_list (Array.map string_of_int st.Pool.items_by_lane))
    in
    let fields =
      [ ("mode", S mode); ("domains", I (Pool.size pool));
        ("batches", I st.Pool.batches);
        ("parallel_batches", I st.Pool.parallel_batches);
        ("items_by_lane", S lanes); ("host_cores", I (Pool.recommended ())) ]
    in
    record "E10-sched" fields;
    e10_rows := ("E10-sched", fields) :: !e10_rows;
    Printf.printf "%-22s %8d %13d %22s\n" mode (Pool.size pool)
      st.Pool.parallel_batches lanes
  in
  List.iter
    (fun d ->
      let pool = Pool.create ~domains:d () in
      sched_row "capped (default)" pool 5;
      Pool.shutdown pool)
    [ 2; 4 ];
  List.iter
    (fun d ->
      let pool = Pool.create ~domains:d ~oversubscribe:true () in
      sched_row "oversubscribed" pool 5;
      Pool.shutdown pool)
    [ 2; 4 ];
  (* decrypt_batch: no algebraic collapse exists here (each ciphertext
     needs its own pairing), so this row shows the pool sharding alone. *)
  let cts =
    List.map
      (fun u ->
        ( u,
          Tre.encrypt_prevalidated prms srv_pub usr_pub
            ~release_time:u.Tre.update_time rng msg32 ))
      updates
  in
  let serial_pts = List.map (fun (u, ct) -> Tre.decrypt prms usr_sec u ct) cts in
  let t_dec_serial =
    median_time_alloc ~samples:11 (fun () ->
        ignore (List.map (fun (u, ct) -> Tre.decrypt prms usr_sec u ct) cts))
  in
  let pool = Pool.create ~domains:4 () in
  assert (Tre.decrypt_batch ~pool prms usr_sec cts = serial_pts);
  let t_dec_pool =
    median_time_alloc ~samples:11 (fun () ->
        ignore (Tre.decrypt_batch ~pool prms usr_sec cts))
  in
  Pool.shutdown pool;
  let dec_row mode domains (t, w) =
    let fields =
      [ ("mode", S mode); ("domains", S domains); ("batch", I e10_batch_n);
        ("ns_per_batch", F t); ("alloc_words_per_batch", F w);
        ("ops_per_sec", F (n /. (t /. 1e9))) ]
    in
    record "E10-decrypt" fields;
    e10_rows := ("E10-decrypt", fields) :: !e10_rows;
    Printf.printf "%-22s %8s %13s %13.1f\n" mode domains (pp_time t)
      (n /. (t /. 1e9))
  in
  Printf.printf "\n%-22s %8s %13s %13s\n" "decrypt mode" "domains" "time/batch"
    "decrypts/s";
  dec_row "serial per-item" "-" t_dec_serial;
  dec_row "decrypt_batch + pool" "4" t_dec_pool;
  write_json "BENCH_E10.json" (List.rev !e10_rows);
  Printf.printf "wrote %d rows to BENCH_E10.json\n" (List.length !e10_rows);
  Printf.printf
    "shape check: batching collapses 2n pairings into 2, hoists H1's\n\
     per-item cofactor clearing into one h-mult on the sum, and replaces\n\
     n subgroup checks with one q-mult on the sum — so the batched rows\n\
     beat serial on one core; pool rows add whatever true parallelism the\n\
     host provides (lanes are capped at the core count, so oversized\n\
     pools match the best lane count instead of thrashing the GC).\n"

(* =========================================================================
   E12 - the missing-update-resilient extension (section 6 future work)
   ========================================================================= *)

let e12_report () =
  heading "E12: missing-update resilience (time-tree extension, mid128)";
  let depths = [ 4; 8; 12; 16 ] in
  Printf.printf "%-8s %10s %14s %16s %16s\n" "depth" "epochs" "ct overhead B"
    "avg cover size" "max cover size";
  List.iter
    (fun d ->
      let tree = Time_tree.create ~depth:d in
      let sample_epochs =
        if Time_tree.epochs tree <= 4096 then List.init (Time_tree.epochs tree) Fun.id
        else List.init 4096 (fun i -> i * (Time_tree.epochs tree / 4096))
      in
      let sizes = List.map (fun e -> List.length (Time_tree.cover tree e)) sample_epochs in
      let total = List.fold_left ( + ) 0 sizes in
      record "E12"
        [ ("depth", I d); ("epochs", I (Time_tree.epochs tree));
          ("ct_overhead_bytes", I (Resilient_tre.ciphertext_overhead prms tree));
          ("avg_cover", F (float_of_int total /. float_of_int (List.length sizes)));
          ("max_cover", I (List.fold_left Stdlib.max 0 sizes)) ];
      Printf.printf "%-8d %10d %14d %16.2f %16d\n" d (Time_tree.epochs tree)
        (Resilient_tre.ciphertext_overhead prms tree)
        (float_of_int total /. float_of_int (List.length sizes))
        (List.fold_left Stdlib.max 0 sizes))
    depths;
  (* Timing at depth 8 vs plain TRE. *)
  let tree = Time_tree.create ~depth:8 in
  let ct = Resilient_tre.encrypt prms tree srv_pub usr_pub ~release_epoch:100 rng msg32 in
  let cover = Resilient_tre.issue_cover prms tree srv_sec ~epoch:200 in
  let t_enc, w_enc =
    median_time_alloc (fun () ->
        ignore (Resilient_tre.encrypt prms tree srv_pub usr_pub ~release_epoch:100 rng msg32))
  in
  let t_dec, w_dec =
    median_time_alloc (fun () -> ignore (Resilient_tre.decrypt prms tree usr_sec ~cover ct))
  in
  let t_cover, w_cover =
    median_time_alloc (fun () ->
        ignore (Resilient_tre.issue_cover prms tree srv_sec ~epoch:200))
  in
  record "E12-timing"
    [ ("depth", I 8); ("ns_encrypt", F t_enc); ("alloc_words_encrypt", F w_enc);
      ("ns_decrypt", F t_dec); ("alloc_words_decrypt", F w_dec);
      ("ns_issue_cover", F t_cover); ("alloc_words_issue_cover", F w_cover) ];
  Printf.printf
    "depth 8: encrypt %s (%d headers), decrypt %s, server cover issue %s\n"
    (String.trim (pp_time t_enc))
    (Time_tree.depth tree + 1)
    (String.trim (pp_time t_dec))
    (String.trim (pp_time t_cover));
  Printf.printf
    "shape check: receivers need only the LATEST broadcast (tested); the\n\
     price is depth+1 pairings/headers at encryption and <= depth+1 updates\n\
     per epoch broadcast - all still independent of the number of users.\n"

(* =========================================================================
   E11 - threshold time server (extension): cost of k-of-n issuance
   ========================================================================= *)

let e11_report () =
  heading "E11: threshold (k-of-n) update issuance (mid128)";
  Printf.printf "%-10s %14s %14s %14s %16s\n" "(k, n)" "partial issue"
    "partial verify" "combine k" "single server";
  let single = median_time (fun () -> ignore (Tre.issue_update prms srv_sec t_label)) in
  List.iter
    (fun (k, n) ->
      let rng = Hashing.Drbg.create ~seed:(Printf.sprintf "e11-%d-%d" k n) () in
      let system, servers = Threshold_server.setup prms rng ~k ~n in
      let partials =
        List.map (fun s -> Threshold_server.issue_partial prms s t_label) servers
      in
      let quorum = List.filteri (fun i _ -> i < k) partials in
      let t_issue, w_issue =
        median_time_alloc (fun () ->
            ignore (Threshold_server.issue_partial prms (List.hd servers) t_label))
      in
      let t_verify, w_verify =
        median_time_alloc (fun () ->
            ignore (Threshold_server.verify_partial prms system t_label (List.hd partials)))
      in
      let t_combine, w_combine =
        median_time_alloc (fun () ->
            ignore (Threshold_server.combine prms system t_label quorum))
      in
      record "E11"
        [ ("k", I k); ("n", I n); ("ns_partial_issue", F t_issue);
          ("alloc_words_partial_issue", F w_issue);
          ("ns_partial_verify", F t_verify);
          ("alloc_words_partial_verify", F w_verify);
          ("ns_combine", F t_combine); ("alloc_words_combine", F w_combine);
          ("ns_single_server", F single) ];
      Printf.printf "%-10s %14s %14s %14s %16s\n"
        (Printf.sprintf "(%d, %d)" k n)
        (String.trim (pp_time t_issue))
        (String.trim (pp_time t_verify))
        (String.trim (pp_time t_combine))
        (String.trim (pp_time single)))
    [ (2, 3); (3, 5); (5, 9) ];
  Printf.printf
    "shape check: the combined update is bit-identical to the single-server\n\
     one (receivers unchanged, tested); issuance parallelizes across the\n\
     quorum, and combination costs k scalar mults - availability n-k,\n\
     early-release threshold k.\n"

(* --- driver --- *)


let () =
  if smoke then begin
    e1opt_smoke ();
    e1kernel_smoke ();
    batch_smoke ();
    exit 0
  end;
  if e1kernel_only then begin
    e1kernel_report ();
    exit 0
  end;
  if e14delegate_only then begin
    e14delegate_report ();
    exit 0
  end;
  Printf.printf "timed-release-crypto benchmark harness%s\n"
    (if quick then " (quick mode)" else "");
  Printf.printf "parameters: mid128 (q %d bits, p %d bits), toy64 for simulations\n"
    (Bigint.bit_length prms.Pairing.q)
    (Bigint.bit_length prms.Pairing.p);
  print_string "\nrunning bechamel micro-benchmarks...\n";
  flush stdout;
  let groups = [ e1_tests; e2_tests; e5_tests; e6_tests; e9_tests ] in
  let results = run_benchmarks (Test.make_grouped ~name:"" ~fmt:"%s%s" groups) in
  e1_report results;
  e1opt_report ();
  e1kernel_report ();
  e1b_report ();
  e2_report results;
  e3_report ();
  e4_report ();
  e5_report results;
  e6_report results;
  e7_report ();
  e8_report ();
  e9_report results;
  e10_report ();
  e11_report ();
  e12_report ();
  a1_report ();
  (match json_path with
  | Some path ->
      write_json path (List.rev !json_rows);
      Printf.printf "wrote %d JSON rows to %s\n" (List.length !json_rows) path
  | None -> ());
  print_endline "\nall experiments complete."
