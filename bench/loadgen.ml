(* loadgen: the E13 client-load harness for the socket daemon.

     dune exec bench/loadgen.exe -- --clients 100000 --ticks 200
     dune exec bench/loadgen.exe -- --backend epoll --conns 9000 --ticks 30

   Drives 10^5..10^6 {e simulated} clients against {!Net_server} through a
   pool of real connections. On the select backend real descriptors are
   capped by FD_SETSIZE (the harness enforces its historical 900-conn
   bound); on the epoll backend both the server shards and the harness's
   own pump run on {!Poller}, so real connections scale to the process fd
   limit (the harness raises RLIMIT_NOFILE itself — both socket ends
   live in this one process, so N conns cost ~2N descriptors). Whatever
   the bound, [--clients] models [clients/conns] simulated clients per
   socket — honest for the {e server}, whose per-epoch work is one encode
   plus one queued reference per connection either way (that is the
   encode-once property under test), and reported explicitly in the JSON
   so nobody mistakes a sample for a census.

   Phases:
   1. subscribe [--conns] readers (+ [--slow-readers] that never read);
   2. broadcast [--ticks] epochs back-to-back, measuring sustained
      updates/sec and client-observed tick->update latency;
   3. burst extra epochs until back-pressure evicts every slow reader
      (bounded-memory evidence);
   4. archive phase: [--archive-conns] pull [--archive-lookups] past
      epochs (plus one future + one foreign label, both refused);
   5. client-side work, sampled: batch-verify the distinct updates
      (Bellare-Garay-Rabin; what a real client would run per epoch) and
      decrypt [--decrypt-sample] ciphertexts end-to-end;
   6. query stats over the wire, assert encode-once, write BENCH_E13.json.

   [--quiet] suppresses every nondeterministic line (timings, stamps) so
   the cram smoke test can pin the output. *)

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("loadgen: " ^ s); exit 1) fmt

(* ---------------------------------------------------------------- args *)

let clients = ref 100_000
let conns = ref 256
let slow_readers = ref 16
let archive_conns = ref 4
let archive_lookups = ref 1_000
let ticks = ref 50
let params = ref "mid128"
let seed = ref "loadgen-e13"
let max_queue = ref 64
let shards = ref 0
let verify_sample = ref 16
let decrypt_sample = ref 8
let json_path = ref "BENCH_E13.json"
let json_append = ref false
let unix_path = ref ""
let backend_str = ref "auto"
let no_writev = ref false
let client_tier = ref "full"
let quiet = ref false

let spec =
  [
    ("--clients", Arg.Set_int clients, "N simulated clients (default 100000)");
    ("--conns", Arg.Set_int conns, "N real subscriber sockets (default 256)");
    ("--slow-readers", Arg.Set_int slow_readers,
     "N subscribers that never read (default 16)");
    ("--archive-conns", Arg.Set_int archive_conns,
     "N concurrent archive pullers (default 4)");
    ("--archive-lookups", Arg.Set_int archive_lookups,
     "N total archive lookups (default 1000)");
    ("--ticks", Arg.Set_int ticks, "N epochs to broadcast (default 50)");
    ("--params", Arg.Set_string params, "NAME parameter set (default mid128)");
    ("--seed", Arg.Set_string seed, "STRING DRBG seed (default loadgen-e13)");
    ("--max-queue", Arg.Set_int max_queue,
     "N server per-connection queue bound, frames (default 64)");
    ("--shards", Arg.Set_int shards, "N server shards (default: core count)");
    ("--verify-sample", Arg.Set_int verify_sample,
     "N single-update verifies to time (default 16)");
    ("--decrypt-sample", Arg.Set_int decrypt_sample,
     "N end-to-end encrypt/decrypt round trips (default 8)");
    ("--json", Arg.Set_string json_path,
     "PATH output table (default BENCH_E13.json; empty = none)");
    ("--append", Arg.Set json_append,
     " append this run as a row of a JSON array at --json PATH");
    ("--unix", Arg.Set_string unix_path,
     "PATH socket path (default: private path under /tmp)");
    ("--backend", Arg.Set_string backend_str,
     "NAME server event backend: auto|select|epoll (default auto)");
    ("--no-writev", Arg.Set no_writev,
     " server sends one write per frame (the PR 6 baseline)");
    ("--client-tier", Arg.Set_string client_tier,
     "TIER sampled single verifies: full = on-device pairings, thin = \
      blinded delegation to two helper daemons over sockets (default full)");
    ("--quiet", Arg.Set quiet, " deterministic output only (for cram)");
  ]

(* ------------------------------------------------------------- helpers *)

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let rss_peak_kb () =
  (* VmHWM: the process's resident-set high-water mark. *)
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
          else scan ()
        in
        scan ())
  with _ -> 0

let say fmt = Printf.ksprintf (fun s -> if not !quiet then print_string s) fmt
(* deterministic lines: printed in quiet mode too *)
let pin fmt = Printf.ksprintf print_string fmt

(* ------------------------------------------------------- connection state *)

type role = Subscriber | Slow | Archive

type conn = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  role : role;
  mutable hello : Netmsg.hello option;
  mutable tick_stamp : int; (* sent_at_us of the last Net_tick preamble *)
  mutable last_epoch : int;
  mutable sent_at : int; (* archive: stamp of the in-flight query *)
  mutable replies : int; (* archive: responses received *)
  mutable misses : int;
  mutable alive : bool;
}

let connect path role =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  {
    fd;
    dec = Frame.Decoder.create ();
    role;
    hello = None;
    tick_stamp = 0;
    last_epoch = 0;
    sent_at = 0;
    replies = 0;
    misses = 0;
    alive = true;
  }

let send_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* --------------------------------------------- delegation helper daemons

   The thin-client tier outsources the sampled single verifies: two
   helper daemons, each its own Unix socket, each blindly computing the
   pairings of whatever Delegate queries arrive. They run the honest
   [Delegate.serve] — the adversarial paths live in test_delegate.ml;
   this harness measures the honest protocol over real sockets. *)

let start_helper prms path =
  if Sys.file_exists path then Sys.remove path;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 16;
  let serve_client fd =
    let dec = Frame.Decoder.create () in
    let buf = Bytes.create 65536 in
    let rec loop () =
      let n = try Unix.read fd buf 0 (Bytes.length buf) with _ -> 0 in
      if n > 0 then begin
        (match Frame.Decoder.feed dec buf 0 n with
        | Error _ -> ()
        | Ok () ->
            let rec drain () =
              match Frame.Decoder.pop dec with
              | Some p ->
                  (match Netmsg.delegate_query_of_bytes prms p with
                  | Ok q ->
                      let values = Delegate.serve prms q.Netmsg.pairs in
                      send_all fd
                        (Frame.encode
                           (Netmsg.delegate_response_to_bytes prms
                              { Netmsg.response_id = q.Netmsg.query_id; values }))
                  | Error e -> die "helper: undecodable query: %s" e);
                  drain ()
              | None -> ()
            in
            drain ());
        loop ()
      end
    in
    (try loop () with _ -> ());
    try Unix.close fd with _ -> ()
  in
  let accepter =
    Thread.create
      (fun () ->
        try
          while true do
            let fd, _ = Unix.accept lfd in
            ignore (Thread.create serve_client fd)
          done
        with _ -> ())
      ()
  in
  (lfd, accepter)

(* One blocking request/response round trip per transport call — a thin
   client pays two of these per delegated pairing wrap, in sequence,
   which is the honest (unpipelined) cost the E13 row reports. *)
let helper_transport prms fd : Delegate.transport =
  let dec = Frame.Decoder.create () in
  let buf = Bytes.create 65536 in
  let qid = ref 0 in
  fun pairs ->
    incr qid;
    send_all fd
      (Frame.encode
         (Netmsg.delegate_query_to_bytes prms { Netmsg.query_id = !qid; pairs }));
    let rec await () =
      match Frame.Decoder.pop dec with
      | Some p -> (
          match Netmsg.delegate_response_of_bytes prms p with
          | Ok r when r.Netmsg.response_id = !qid -> r.Netmsg.values
          | Ok _ -> await () (* stale id: keep draining *)
          | Error e -> die "helper: undecodable response: %s" e)
      | None ->
          let n = Unix.read fd buf 0 (Bytes.length buf) in
          if n = 0 then die "helper connection closed mid-query";
          (match Frame.Decoder.feed dec buf 0 n with
          | Ok () -> ()
          | Error e -> die "helper framing: %s" e);
          await ()
    in
    await ()

(* ------------------------------------------------------------------ main *)

let () =
  Arg.parse spec (fun a -> die "stray argument %S" a) "loadgen [options]";
  let backend =
    match Poller.backend_of_string !backend_str with
    | Ok b -> b
    | Error e -> die "--backend: %s" e
  in
  let effective_backend =
    match backend with
    | Some b -> b
    | None -> if Poller.epoll_available () then Poller.Epoll else Poller.Select
  in
  if effective_backend = Poller.Epoll && not (Poller.epoll_available ()) then
    die "--backend epoll: unavailable on this platform";
  if !conns < 1 then die "--conns must be >= 1";
  if !client_tier <> "full" && !client_tier <> "thin" then
    die "--client-tier must be full or thin";
  (match effective_backend with
  | Poller.Select ->
      (* The shard select loops cap real descriptors at FD_SETSIZE. *)
      if !conns > 900 then
        die "--conns must be <= 900 on the select backend (FD_SETSIZE)";
      if !conns + !slow_readers + !archive_conns > 960 then
        die "total sockets exceed the select/FD_SETSIZE bound"
  | Poller.Epoll ->
      if !conns > 16_000 then die "--conns must be <= 16000";
      (* Both socket ends live in this process: ~2 fds per connection
         plus listeners, pipes, epoll fds and stdio. *)
      let need = (2 * (!conns + !slow_readers + !archive_conns)) + 128 in
      let got = Poller.raise_fd_limit need in
      if got < need then
        die "fd limit %d < %d needed for %d connections (raise ulimit -n)"
          got need !conns);
  let prms =
    match Pairing.by_name !params with
    | Some p -> p
    | None -> die "unknown parameter set %S" !params
  in
  let timeline = Timeline.create ~origin:"utc" ~granularity:1.0 () in
  let path =
    if !unix_path <> "" then !unix_path
    else Filename.temp_file "tre-loadgen" ".sock"
  in
  if Sys.file_exists path then Sys.remove path;
  let cfg =
    {
      (Net_server.default_config prms timeline) with
      Net_server.unix_path = Some path;
      shards = (if !shards > 0 then !shards else Pool.recommended ());
      max_queue_frames = !max_queue;
      backend;
      vectored = not !no_writev;
    }
  in
  let rng = Hashing.Drbg.create ~seed:!seed ~personalization:"loadgen" () in
  let srv = Net_server.create cfg rng in
  Net_server.start srv;
  pin "loadgen: %d simulated clients over %d connections (+%d slow, %d archive)\n"
    !clients !conns !slow_readers !archive_conns;

  (* -------- phase 1: subscribe ------------------------------------- *)
  let sub_frame = Frame.encode (Netmsg.subscribe_to_bytes prms) in
  let subs = Array.init !conns (fun _ -> connect path Subscriber) in
  let slows = Array.init !slow_readers (fun _ -> connect path Slow) in
  Array.iter (fun c -> send_all c.fd sub_frame) subs;
  Array.iter (fun c -> send_all c.fd sub_frame) slows;

  (* Shared decode cache: every connection receives the identical frame
     bytes (the encode-once property), so the harness decodes each epoch's
     update exactly once however many connections deliver it. *)
  let updates : (string, Tre.update) Hashtbl.t = Hashtbl.create 256 in
  (* tick->update latency histogram. Scoped to the PACED broadcast phase
     only: the slow-reader burst (phase 3) ticks in a tight loop to force
     eviction, and sampling it would pollute the tail with flood epochs —
     how many burst epochs eviction takes depends on the send path (one
     skb per frame fills the peer's kernel buffer far sooner than
     coalesced writev sends), so the pollution would differ by backend. *)
  let lat_samples = ref [] in
  let measuring = ref true in
  let n_samples = ref 0 in
  let frames_rcvd = ref 0 in
  let server_pub = ref None in

  let on_frame c payload =
    incr frames_rcvd;
    match Codec.peek_kind payload with
    | Ok Codec.Net_hello -> (
        match Netmsg.hello_of_bytes prms payload with
        | Ok h ->
            c.hello <- Some h;
            if !server_pub = None then
              server_pub :=
                Some { Tre.Server.g = h.Netmsg.server_g; sg = h.Netmsg.server_sg }
        | Error e -> die "bad hello: %s" e)
    | Ok Codec.Net_tick -> (
        match Netmsg.tick_of_bytes prms payload with
        | Ok t -> c.tick_stamp <- t.Netmsg.sent_at_us
        | Error e -> die "bad tick: %s" e)
    | Ok Codec.Key_update ->
        let upd =
          match Hashtbl.find_opt updates payload with
          | Some u -> u
          | None -> (
              match Tre.update_of_bytes prms payload with
              | Ok u ->
                  Hashtbl.replace updates payload u;
                  u
              | Error e -> die "bad update: %s" e)
        in
        (match Timeline.epoch_of_label timeline upd.Tre.update_time with
        | Some e -> c.last_epoch <- max c.last_epoch e
        | None -> ());
        if c.role = Archive then
          (* RTT goes to [arch_rtts], reported separately — archive pulls
             are a different measurement than broadcast delivery *)
          c.replies <- c.replies + 1
        else if !measuring && c.tick_stamp > 0 then begin
          lat_samples := float_of_int (now_us () - c.tick_stamp) :: !lat_samples;
          incr n_samples
        end
    | Ok Codec.Net_archive_miss ->
        c.replies <- c.replies + 1;
        c.misses <- c.misses + 1
    | Ok Codec.Net_stats -> () (* handled synchronously below *)
    | Ok k -> die "unexpected frame kind %s" (Codec.kind_label k)
    | Error e -> die "undecodable frame: %s" e
  in

  let rbuf = Bytes.create 65536 in
  let pump_conn c =
    if c.alive then begin
      let n = try Unix.read c.fd rbuf 0 (Bytes.length rbuf) with _ -> 0 in
      if n = 0 then c.alive <- false
      else
        match Frame.Decoder.feed c.dec rbuf 0 n with
        | Error e -> die "framing: %s" e
        | Ok () ->
            let rec drain () =
              match Frame.Decoder.pop c.dec with
              | Some p ->
                  on_frame c p;
                  drain ()
              | None -> ()
            in
            drain ()
    end
  in
  (* The harness's own event loop rides the same Poller abstraction as
     the server, so the client side scales past FD_SETSIZE too: one
     poller per connection group, read interest registered once at
     group creation, dead sockets deregistered as they are found. *)
  let make_pump cs =
    let p = Poller.create () in
    let tbl = Hashtbl.create (2 * Array.length cs) in
    Array.iter
      (fun (c : conn) ->
        Poller.add p c.fd ~read:true ~write:false;
        Hashtbl.replace tbl c.fd c)
      cs;
    (p, tbl)
  in
  let pump_ready (p, tbl) timeout_ms =
    Poller.wait p ~timeout_ms (fun fd ~readable ~writable:_ ->
        if readable then
          match Hashtbl.find_opt tbl fd with
          | Some c ->
              if c.alive then pump_conn c;
              if not c.alive then begin
                Poller.del p fd;
                Hashtbl.remove tbl fd
              end
          | None -> ())
    > 0
  in
  let sub_pump = make_pump subs in
  (* wait for every hello *)
  let deadline = Unix.gettimeofday () +. 60.0 in
  while
    Array.exists (fun c -> c.hello = None) subs && Unix.gettimeofday () < deadline
  do
    ignore (pump_ready sub_pump 100)
  done;
  Array.iter (fun c -> if c.hello = None then die "subscriber got no hello") subs;
  pin "subscribed %d connections\n" !conns;

  (* -------- phase 2: measured broadcast ----------------------------- *)
  let epoch = ref 0 in
  let all_caught_up e = Array.for_all (fun c -> c.last_epoch >= e) subs in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to !ticks do
    incr epoch;
    Net_server.tick srv !epoch;
    let deadline = Unix.gettimeofday () +. 60.0 in
    while (not (all_caught_up !epoch)) && Unix.gettimeofday () < deadline do
      ignore (pump_ready sub_pump 50)
    done;
    if not (all_caught_up !epoch) then die "epoch %d never reached all conns" !epoch
  done;
  let bcast_s = Unix.gettimeofday () -. t0 in
  (* give in-flight final-epoch updates a moment to land in the histogram,
     then stop sampling before the burst phase *)
  while pump_ready sub_pump 0 do () done;
  measuring := false;
  let main_epochs = !epoch in
  pin "broadcast %d epochs to all connections\n" main_epochs;
  say "  sustained: %.0f updates/s, %.0f real frames/s, %.3g client deliveries/s\n"
    (float_of_int main_epochs /. bcast_s)
    (float_of_int (main_epochs * !conns) /. bcast_s)
    (float_of_int (main_epochs * !clients) /. bcast_s);

  (* -------- phase 3: slow-reader burst ------------------------------ *)
  let burst_epochs = ref 0 in
  let burst_cap = 50_000 in
  if !slow_readers > 0 then begin
    let evicted () = (Net_server.stats srv).Netmsg.slow_disconnects in
    while evicted () < !slow_readers && !burst_epochs < burst_cap do
      incr epoch;
      incr burst_epochs;
      Net_server.tick srv !epoch;
      (* Gate each burst tick on the honest subscribers having seen it.
         [tick] is asynchronous — shard domains drain their broadcast
         inboxes on their own clock — so an unthrottled burst loop can
         flood ANY reader's bounded queue once ticks get cheap relative
         to shard scheduling (a drain-every-16-ticks cadence held only
         as long as the pairing kernels kept ticks slow). Only the
         deliberately-unread slow conns may back up, or the eviction
         count this phase pins picks up honest readers. *)
      let deadline = Unix.gettimeofday () +. 60.0 in
      while (not (all_caught_up !epoch)) && Unix.gettimeofday () < deadline do
        ignore (pump_ready sub_pump 1)
      done
    done;
    while pump_ready sub_pump 0 do () done;
    if evicted () < !slow_readers then
      die "burst cap hit with %d/%d slow readers evicted" (evicted ())
        !slow_readers;
    pin "slow readers evicted %d/%d under bounded queues\n" (evicted ())
      !slow_readers
  end;

  (* -------- phase 4: archive ---------------------------------------- *)
  let arch_t0 = Unix.gettimeofday () in
  let arch_rtts = ref [] in
  let arch_done = ref 0 in
  let archives = Array.init !archive_conns (fun _ -> connect path Archive) in
  let arch_pump = make_pump archives in
  let next_query = ref 0 in
  let send_query (c : conn) =
    if !next_query < !archive_lookups then begin
      incr next_query;
      let e = 1 + (!next_query mod main_epochs) in
      let q = Netmsg.archive_query_to_bytes prms (Timeline.label timeline e) in
      c.sent_at <- now_us ();
      send_all c.fd (Frame.encode q)
    end
  in
  if !archive_conns > 0 && !archive_lookups > 0 then begin
    let hits0 = (Net_server.stats srv).Netmsg.archive_hits in
    Array.iter send_query archives;
    let deadline = Unix.gettimeofday () +. 60.0 in
    let served = Array.map (fun (c : conn) -> c.replies) archives in
    while !arch_done < !archive_lookups && Unix.gettimeofday () < deadline do
      ignore (pump_ready arch_pump 50);
      Array.iteri
        (fun i c ->
          while c.replies > served.(i) do
            served.(i) <- served.(i) + 1;
            incr arch_done;
            arch_rtts := float_of_int (now_us () - c.sent_at) :: !arch_rtts;
            send_query c
          done)
        archives
    done;
    if !arch_done < !archive_lookups then
      die "archive phase timed out at %d/%d" !arch_done !archive_lookups;
    (* negative lookups: a future epoch and a foreign label, both refused *)
    let c = archives.(0) in
    send_all c.fd
      (Frame.encode
         (Netmsg.archive_query_to_bytes prms (Timeline.label timeline (!epoch + 64))));
    send_all c.fd
      (Frame.encode (Netmsg.archive_query_to_bytes prms "mars#1"));
    let deadline = Unix.gettimeofday () +. 10.0 in
    while c.misses < 2 && Unix.gettimeofday () < deadline do
      ignore (pump_ready arch_pump 50)
    done;
    if c.misses <> 2 then die "archive refusals missing (%d/2)" c.misses;
    let hits = (Net_server.stats srv).Netmsg.archive_hits - hits0 in
    pin "archive served %d lookups (%d hits), refused future + foreign labels\n"
      !arch_done hits
  end;
  let arch_s = Unix.gettimeofday () -. arch_t0 in

  (* -------- phase 5: sampled client-side work ----------------------- *)
  let pub = match !server_pub with Some p -> p | None -> die "no hello seen" in
  let all_updates = Hashtbl.fold (fun _ u acc -> u :: acc) updates [] in
  let verifier = Tre.Verifier.create prms pub in
  let vb_t0 = Unix.gettimeofday () in
  if not (Tre.Verifier.verify_updates prms verifier all_updates) then
    die "batch verification failed";
  let vb_s = Unix.gettimeofday () -. vb_t0 in
  let single_n = min !verify_sample (List.length all_updates) in
  let thin = !client_tier = "thin" in
  (* Thin tier: two helper daemons come up on their own sockets and the
     sampled singles go through blinded delegation (hardened check)
     instead of on-device pairings — the same verdicts, no Miller loop
     on the client. *)
  let helpers =
    if not thin then None
    else begin
      let h1 = start_helper prms (path ^ ".h1") in
      let h2 = start_helper prms (path ^ ".h2") in
      let c1 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect c1 (Unix.ADDR_UNIX (path ^ ".h1"));
      let c2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect c2 (Unix.ADDR_UNIX (path ^ ".h2"));
      pin "thin tier: 2 delegation helpers up, hardened check active\n";
      Some (h1, h2, c1, c2, helper_transport prms c1, helper_transport prms c2)
    end
  in
  let vs_t0 = Unix.gettimeofday () in
  List.iteri
    (fun i u ->
      if i < single_n then
        let ok =
          match helpers with
          | Some (_, _, _, _, t1, t2) ->
              Tre.Verifier.verify_update_delegated prms verifier rng ~helper1:t1
                ~helper2:t2 u
          | None -> Tre.verify_update_with prms verifier u
        in
        if not ok then die "single verification failed")
    all_updates;
  let vs_s = Unix.gettimeofday () -. vs_t0 in
  if thin then
    pin "verified every distinct update (one BGR batch + %d delegated singles)\n"
      single_n
  else pin "verified every distinct update (one BGR batch + %d singles)\n" single_n;
  say "  batch of %d updates in %.3f ms\n" (List.length all_updates)
    (vb_s *. 1000.0);

  let dec_n = min !decrypt_sample main_epochs in
  let dec_s =
    if dec_n = 0 then 0.0
    else begin
      let usec, upub = Tre.User.keygen prms pub rng in
      let enc = Tre.Encryptor.create prms pub upub in
      let by_label = Hashtbl.create 16 in
      List.iter (fun u -> Hashtbl.replace by_label u.Tre.update_time u) all_updates;
      let pairs =
        List.init dec_n (fun i ->
            let lbl = Timeline.label timeline (1 + (i mod main_epochs)) in
            let msg = Printf.sprintf "E13 message %d" i in
            (msg, Tre.Encryptor.encrypt enc ~release_time:lbl rng msg, lbl))
      in
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun (msg, ct, lbl) ->
          let u = Hashtbl.find by_label lbl in
          if Tre.decrypt prms usec u ct <> msg then die "decrypt mismatch")
        pairs;
      let dt = Unix.gettimeofday () -. t0 in
      pin "decrypted %d ciphertexts end-to-end\n" dec_n;
      dt
    end
  in

  (* -------- phase 6: stats over the wire, assertions, report --------- *)
  let stat_conn = connect path Archive in
  send_all stat_conn.fd (Frame.encode (Netmsg.stats_query_to_bytes prms));
  let wire_stats = ref None in
  (* after thousands of subscriber sockets this fd is far above
     FD_SETSIZE, so even a one-fd wait must go through the poller *)
  let stat_poll = Poller.create () in
  Poller.add stat_poll stat_conn.fd ~read:true ~write:false;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while !wire_stats = None && Unix.gettimeofday () < deadline do
    let readable =
      let r = ref false in
      ignore
        (Poller.wait stat_poll ~timeout_ms:100 (fun _ ~readable ~writable:_ ->
             if readable then r := true));
      !r
    in
    if readable then begin
      let n = Unix.read stat_conn.fd rbuf 0 (Bytes.length rbuf) in
      if n = 0 then die "stats connection closed"
      else
        match Frame.Decoder.feed stat_conn.dec rbuf 0 n with
        | Error e -> die "framing: %s" e
        | Ok () -> (
            match Frame.Decoder.pop stat_conn.dec with
            | Some p -> (
                match Netmsg.stats_of_bytes prms p with
                | Ok s -> wire_stats := Some s
                | Error e -> die "bad stats: %s" e)
            | None -> ())
    end
  done;
  Poller.close stat_poll;
  let st =
    match !wire_stats with Some s -> s | None -> die "no stats reply"
  in
  let epochs_total = !epoch in
  if st.Netmsg.updates_encoded <> epochs_total then
    die "encode-once violated: %d frames built for %d epochs"
      st.Netmsg.updates_encoded epochs_total;
  (* A load run sends only well-formed traffic: any protocol error is a
     server or harness bug, not noise. CI greps the JSON for this too. *)
  if st.Netmsg.protocol_errors > 0 then
    die "server counted %d protocol errors on clean traffic"
      st.Netmsg.protocol_errors;
  if List.fold_left ( + ) 0 st.Netmsg.shard_conns < 0 then
    die "negative shard connection count";
  (* Client-side cross-check: every connection received byte-identical
     frames, so the distinct-frame count equals the epochs observed (some
     burst-phase frames may still be in flight at drain time). *)
  let distinct = Hashtbl.length updates in
  if distinct < main_epochs || distinct > epochs_total then
    die "distinct update frames %d outside [%d, %d]" distinct main_epochs
      epochs_total;
  pin "encode-once: one frame per epoch, byte-identical across %d subscribers\n"
    (!conns + !slow_readers);
  say "  %d frames built for %d epochs; harness received %d update copies\n"
    st.Netmsg.updates_encoded epochs_total !frames_rcvd;

  let lat = Array.of_list !lat_samples in
  Array.sort compare lat;
  let ms v = v /. 1000.0 in
  let p50 = ms (percentile lat 0.50)
  and p99 = ms (percentile lat 0.99)
  and p999 = ms (percentile lat 0.999) in
  let rtts = Array.of_list !arch_rtts in
  Array.sort compare rtts;
  let qpeak = st.Netmsg.queue_bytes_peak in
  let frame_ref = Hashtbl.fold (fun k _ m -> max m (String.length k + 4)) updates 0 in
  let queue_bound = (!conns + !slow_readers) * !max_queue * (frame_ref + 64) in
  say "  latency (tick->update, %d samples, each standing for ~%d clients): \
       p50 %.3f ms, p99 %.3f ms, p99.9 %.3f ms\n"
    (Array.length lat)
    (max 1 (!clients / max 1 !conns))
    p50 p99 p999;
  say "  archive: %.0f lookups/s, rtt p50 %.3f ms\n"
    (float_of_int !arch_done /. arch_s)
    (ms (percentile rtts 0.50));
  say "  back-pressure: queue peak %d B (analytic ceiling %d B), RSS peak %d kB\n"
    qpeak queue_bound (rss_peak_kb ());
  say "  syscalls: %d sends (%.2f frames/send, %.1f sends/epoch), %d poll wakeups\n"
    st.Netmsg.send_syscalls
    (float_of_int st.Netmsg.frames_sent
    /. float_of_int (max 1 st.Netmsg.send_syscalls))
    (float_of_int st.Netmsg.send_syscalls /. float_of_int epochs_total)
    st.Netmsg.poll_wakeups;

  if !json_path <> "" then begin
    let b = Buffer.create 2048 in
    let field k fmt = Buffer.add_string b (Printf.sprintf "  %S: " k); Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_string b ",\n") fmt in
    Buffer.add_string b "{\n";
    field "experiment" "%S" "E13";
    field "params" "%S" !params;
    field "backend" "%S" (Poller.backend_name effective_backend);
    field "vectored_writes" "%b" (not !no_writev && Poller.writev_available);
    field "clients_simulated" "%d" !clients;
    field "real_connections" "%d" !conns;
    field "clients_per_connection" "%d" (!clients / max 1 !conns);
    field "slow_readers" "%d" !slow_readers;
    field "epochs_measured" "%d" main_epochs;
    field "epochs_total" "%d" epochs_total;
    field "updates_per_sec" "%.1f" (float_of_int main_epochs /. bcast_s);
    field "real_frames_per_sec" "%.1f"
      (float_of_int (main_epochs * !conns) /. bcast_s);
    field "client_deliveries_per_sec" "%.1f"
      (float_of_int (main_epochs * !clients) /. bcast_s);
    field "latency_ms_p50" "%.3f" p50;
    field "latency_ms_p99" "%.3f" p99;
    field "latency_ms_p999" "%.3f" p999;
    field "latency_samples" "%d" (Array.length lat);
    field "latency_note" "%S"
      "one sample per connection per epoch; each stands for clients_per_connection simulated clients sharing the socket";
    field "archive_lookups" "%d" !arch_done;
    field "archive_lookups_per_sec" "%.1f" (float_of_int !arch_done /. arch_s);
    field "archive_rtt_ms_p50" "%.3f" (ms (percentile rtts 0.50));
    field "archive_rtt_ms_p99" "%.3f" (ms (percentile rtts 0.99));
    field "verify_batch_size" "%d" (List.length all_updates);
    field "verify_batch_ms" "%.3f" (vb_s *. 1000.0);
    field "verify_batch_us_per_update" "%.1f"
      (vb_s *. 1e6 /. float_of_int (max 1 (List.length all_updates)));
    field "client_tier" "%S" !client_tier;
    field "verify_single_us" "%.1f" (vs_s *. 1e6 /. float_of_int (max 1 single_n));
    field "decrypt_sample" "%d" dec_n;
    field "decrypt_ms_each" "%.3f" (dec_s *. 1000.0 /. float_of_int (max 1 dec_n));
    field "updates_encoded" "%d" st.Netmsg.updates_encoded;
    field "encode_once" "%b" (st.Netmsg.updates_encoded = epochs_total);
    field "slow_disconnects" "%d" st.Netmsg.slow_disconnects;
    field "queue_bytes_peak" "%d" qpeak;
    field "queue_bytes_ceiling" "%d" queue_bound;
    field "protocol_errors" "%d" st.Netmsg.protocol_errors;
    field "bytes_sent" "%d" st.Netmsg.bytes_sent;
    field "send_syscalls" "%d" st.Netmsg.send_syscalls;
    field "send_syscalls_per_epoch" "%.1f"
      (float_of_int st.Netmsg.send_syscalls /. float_of_int epochs_total);
    field "frames_per_send_syscall" "%.2f"
      (float_of_int st.Netmsg.frames_sent
      /. float_of_int (max 1 st.Netmsg.send_syscalls));
    field "poll_wakeups" "%d" st.Netmsg.poll_wakeups;
    field "rss_peak_kb" "%d" (rss_peak_kb ());
    Buffer.add_string b (Printf.sprintf "  %S: %d\n}\n" "shards" cfg.Net_server.shards);
    let obj = Buffer.contents b in
    let out =
      if not !json_append then obj
      else begin
        (* Accumulate runs as a JSON array so one file can hold the
           select baseline next to the epoll scaling rows. *)
        let existing =
          if Sys.file_exists !json_path then begin
            let ic = open_in_bin !json_path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          end
          else ""
        in
        let trimmed = String.trim existing in
        if trimmed = "" then "[\n" ^ obj ^ "]\n"
        else if trimmed.[String.length trimmed - 1] = ']' then
          String.sub trimmed 0 (String.length trimmed - 1) ^ ",\n" ^ obj ^ "]\n"
        else die "--append: %s is not a JSON array" !json_path
      end
    in
    let oc = open_out !json_path in
    output_string oc out;
    close_out oc;
    say "  wrote %s\n" !json_path
  end;

  Array.iter (fun c -> try Unix.close c.fd with _ -> ()) subs;
  Array.iter (fun c -> try Unix.close c.fd with _ -> ()) slows;
  Array.iter (fun (c : conn) -> try Unix.close c.fd with _ -> ()) archives;
  (match helpers with
  | Some ((l1, _), (l2, _), c1, c2, _, _) ->
      List.iter (fun fd -> try Unix.close fd with _ -> ()) [ c1; c2; l1; l2 ];
      List.iter
        (fun p -> try Sys.remove p with _ -> ())
        [ path ^ ".h1"; path ^ ".h2" ]
  | None -> ());
  (try Unix.close stat_conn.fd with _ -> ());
  Net_server.stop srv;
  (try Sys.remove path with _ -> ());
  pin "clean shutdown\n"
